// Benchmarks regenerating every experiment table of the reproduction (one
// per claim of Feng & Yin, PODC 2018; see DESIGN.md's experiment index and
// EXPERIMENTS.md for recorded outputs), plus microbenchmarks of the
// underlying substrates. Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/decay"
	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/experiment"
	"repro/internal/gibbs"
	"repro/internal/glauber"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/model"
	"repro/internal/netdecomp"
	"repro/internal/psample"
	"repro/internal/run"
	"repro/internal/sampler"
	"repro/internal/state"
)

// reportTable runs an experiment builder once per iteration and surfaces a
// single headline metric.
func reportTable(b *testing.B, build func() (*experiment.Table, error), metric string, pick func(*experiment.Table) float64) {
	b.Helper()
	var last *experiment.Table
	for i := 0; i < b.N; i++ {
		t, err := build()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	if last != nil && pick != nil {
		b.ReportMetric(pick(last), metric)
	}
}

func parseCell(b *testing.B, t *experiment.Table, row, col int) float64 {
	b.Helper()
	if row >= len(t.Rows) || col >= len(t.Rows[row]) {
		b.Fatalf("cell (%d,%d) out of range", row, col)
	}
	x, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell %q: %v", t.Rows[row][col], err)
	}
	return x
}

// BenchmarkE1InferenceToSampling regenerates E1 (Theorem 3.2): LOCAL rounds
// of the inference-to-sampling reduction across sizes; the reported metric
// is rounds/log³n at the largest size (bounded ⇔ polylog claim).
func BenchmarkE1InferenceToSampling(b *testing.B) {
	reportTable(b, func() (*experiment.Table, error) {
		return experiment.E1InferenceToSampling([]int{16, 32, 64}, 1.0, 0.1, 1)
	}, "rounds/log3n", func(t *experiment.Table) float64 {
		return parseCell(b, t, len(t.Rows)-1, 4)
	})
}

// BenchmarkE2SamplingToInference regenerates E2 (Theorem 3.4): inference
// reconstructed from sampling; metric is the worst marginal TV error.
func BenchmarkE2SamplingToInference(b *testing.B) {
	reportTable(b, func() (*experiment.Table, error) {
		return experiment.E2SamplingToInference(10, 1.0, 0.02, 2000, 2)
	}, "worstTV", func(t *experiment.Table) float64 {
		worst := 0.0
		for i := range t.Rows {
			if v := parseCell(b, t, i, 3); v > worst {
				worst = v
			}
		}
		return worst
	})
}

// BenchmarkE3Boosting regenerates E3 (Lemma 4.1); metric is the measured
// multiplicative error at the tightest ε.
func BenchmarkE3Boosting(b *testing.B) {
	reportTable(b, func() (*experiment.Table, error) {
		return experiment.E3Boosting(10, 1.0, []float64{0.5, 0.2, 0.1}, 3)
	}, "multErr", func(t *experiment.Table) float64 {
		return parseCell(b, t, len(t.Rows)-1, 2)
	})
}

// BenchmarkE4LocalJVV regenerates E4 (Theorem 4.2); metric is the TV
// distance between the JVV output distribution and brute-force truth.
func BenchmarkE4LocalJVV(b *testing.B) {
	reportTable(b, func() (*experiment.Table, error) {
		return experiment.E4LocalJVV([]int{6, 8}, 1.0, 1500, 4)
	}, "TVvsExact", func(t *experiment.Table) float64 {
		return parseCell(b, t, 0, 1)
	})
}

// BenchmarkE5SSMInference regenerates E5 (Theorem 5.1 converse); metric is
// the inference error at the largest radius.
func BenchmarkE5SSMInference(b *testing.B) {
	reportTable(b, func() (*experiment.Table, error) {
		return experiment.E5SSMInference(14, 1.0, []int{1, 2, 3, 4, 5})
	}, "TVatR5", func(t *experiment.Table) float64 {
		return parseCell(b, t, len(t.Rows)-1, 1)
	})
}

// BenchmarkE6InferenceImpliesSSM regenerates E6 (Theorem 5.1 forward);
// metric is the measured SSM at the largest distance.
func BenchmarkE6InferenceImpliesSSM(b *testing.B) {
	reportTable(b, func() (*experiment.Table, error) {
		return experiment.E6InferenceImpliesSSM(13, 1.0, 6)
	}, "worstTV", func(t *experiment.Table) float64 {
		return parseCell(b, t, len(t.Rows)-1, 1)
	})
}

// BenchmarkE7TVvsMultiplicativeDecay regenerates E7 (Corollary 5.2); metric
// is the multiplicative error at the largest distance.
func BenchmarkE7TVvsMultiplicativeDecay(b *testing.B) {
	reportTable(b, func() (*experiment.Table, error) {
		return experiment.E7TVvsMult(13, 1.0, 6)
	}, "multAtMax", func(t *experiment.Table) float64 {
		return parseCell(b, t, len(t.Rows)-1, 2)
	})
}

// BenchmarkE8HardcorePhaseTransition regenerates E8 (the headline phase
// transition); metric is the supercritical/subcritical correlation ratio at
// the deepest tree — large ⇔ dichotomy.
func BenchmarkE8HardcorePhaseTransition(b *testing.B) {
	reportTable(b, func() (*experiment.Table, error) {
		return experiment.E8PhaseTransition(3, []float64{0.25, 4.0}, []int{4, 8, 12, 16})
	}, "corrRatio", func(t *experiment.Table) float64 {
		col := len(t.Columns) - 2
		sub := parseCell(b, t, 0, col)
		sup := parseCell(b, t, 1, col)
		if sub == 0 {
			return 1e9
		}
		return sup / sub
	})
}

// BenchmarkE9Matchings regenerates E9 (the √Δ matching scaling); metric is
// depth/√Δ at the largest Δ.
func BenchmarkE9Matchings(b *testing.B) {
	reportTable(b, func() (*experiment.Table, error) {
		return experiment.E9Matchings([]int{3, 5, 9, 17, 33}, 1.0, 1e-4, 0)
	}, "depthPerSqrtΔ", func(t *experiment.Table) float64 {
		return parseCell(b, t, len(t.Rows)-1, 4)
	})
}

// BenchmarkE10ColoringsAndTwoSpin regenerates E10 (colorings + Ising +
// hypergraph matchings); metric is the coloring depth at the largest q.
func BenchmarkE10ColoringsAndTwoSpin(b *testing.B) {
	reportTable(b, func() (*experiment.Table, error) {
		if _, err := experiment.E10Ising(4, []float64{0.3, 1.0, 3.0}, []int{4, 6}); err != nil {
			return nil, err
		}
		if _, err := experiment.E10Hypergraph(3, 4, []float64{0.5, 1.5}, []int{2, 3}); err != nil {
			return nil, err
		}
		return experiment.E10Colorings(4, []int{5, 8, 10}, 1e-3, 0)
	}, "depthAtQmax", func(t *experiment.Table) float64 {
		return parseCell(b, t, len(t.Rows)-1, 2)
	})
}

// BenchmarkE11Counting regenerates E11 (chain-rule counting); metric is the
// lnZ error at the largest size.
func BenchmarkE11Counting(b *testing.B) {
	reportTable(b, func() (*experiment.Table, error) {
		return experiment.E11Counting([]int{8, 12, 16}, 1.0, 1e-6)
	}, "lnZerr", func(t *experiment.Table) float64 {
		return parseCell(b, t, len(t.Rows)-1, 3)
	})
}

// --- Substrate microbenchmarks ---

// BenchmarkSAWMarginal measures one Weitz SAW-tree marginal on a cycle at
// logarithmic depth.
func BenchmarkSAWMarginal(b *testing.B) {
	g := graph.Cycle(256)
	est, err := decay.NewHardcoreSAW(g, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	pin := dist.NewConfig(g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Marginal(pin, i%g.N(), 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSAWMarginalDegree4 measures the SAW recursion where branching
// matters (4-regular torus, depth 8).
func BenchmarkSAWMarginalDegree4(b *testing.B) {
	g := graph.Torus(16, 16)
	est, err := decay.NewHardcoreSAW(g, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	pin := dist.NewConfig(g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Marginal(pin, i%g.N(), 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalJVVSample measures one full three-pass JVV run on a cycle
// with the SAW oracle.
func BenchmarkLocalJVVSample(b *testing.B) {
	g := graph.Cycle(24)
	spec, err := model.Hardcore(g, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		b.Fatal(err)
	}
	est, err := decay.NewHardcoreSAW(g, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	o := &core.DecayOracle{Est: est, Rate: 0.5, N: g.N()}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.LocalJVV(in, o, core.JVVConfig{}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBallCarving measures one network decomposition of a 4-regular
// torus.
func BenchmarkBallCarving(b *testing.B) {
	g := graph.Torus(16, 16)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := netdecomp.BallCarving(g, netdecomp.Params{}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGather measures the goroutine-per-node flooding of radius-4
// ball views on a torus.
func BenchmarkGather(b *testing.B) {
	net := local.NewNetwork(graph.Torus(12, 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := net.Gather(4, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactPartition measures the brute-force referee (hardcore on a
// 4x4 grid) — the incremental compiled-table enumeration path.
func BenchmarkExactPartition(b *testing.B) {
	g := graph.Grid(4, 4)
	spec, err := model.Hardcore(g, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		b.Fatal(err)
	}
	in.Spec.Compiled() // compile outside the timed loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exact.Partition(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGlauberStep measures one steady-state heat-bath update on a
// 4-regular torus through the compiled conditional kernel. The acceptance
// bar for the compiled engine is 0 allocs/op here.
func BenchmarkGlauberStep(b *testing.B) {
	g := graph.Torus(16, 16)
	spec, err := model.Hardcore(g, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		b.Fatal(err)
	}
	chain, err := glauber.New(in)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := chain.Step(rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCondWeights isolates the conditional-weights kernel: the
// compiled dense-table path against the equivalent closure-dispatch loop it
// replaced.
func BenchmarkCondWeights(b *testing.B) {
	g := graph.Torus(16, 16)
	spec, err := model.Hardcore(g, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	eng := spec.Compiled()
	cfg, err := eng.GreedyCompletion(dist.NewConfig(g.N()))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("compiled", func(b *testing.B) {
		buf := make([]float64, spec.Q)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.CondWeights(cfg, i%g.N(), buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("closure", func(b *testing.B) {
		buf := make([]float64, spec.Q)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v := i % g.N()
			saved := cfg[v]
			for x := 0; x < spec.Q; x++ {
				cfg[v] = x
				wx := 1.0
				for _, fi := range spec.FactorsAt(v) {
					f := spec.Factors[fi]
					assign := make([]int, len(f.Scope))
					for j, u := range f.Scope {
						assign[j] = cfg[u]
					}
					wx *= f.Eval(assign)
				}
				buf[x] = wx
			}
			cfg[v] = saved
		}
	})
}

// BenchmarkCondLookup isolates the single-chain heat-bath update: the
// conditional-CDF cache lookup (lut) against the sweep-plan walk it
// replaces (plan). Both run the same glauber.HeatBathX update — only the
// engine's cache mode differs.
func BenchmarkCondLookup(b *testing.B) {
	g := graph.Torus(16, 16)
	spec, err := model.Hardcore(g, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	eng := spec.Compiled()
	cfg, err := eng.GreedyCompletion(dist.NewConfig(g.N()))
	if err != nil {
		b.Fatal(err)
	}
	step := func(b *testing.B) {
		lat, err := state.Pack(g.N(), spec.Q, []dist.Config{cfg})
		if err != nil {
			b.Fatal(err)
		}
		cond := make([]float64, spec.Q)
		rng := dist.NewXoshiro(7, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := glauber.HeatBathX(eng, lat, 0, i%g.N(), cond, &rng); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("lut", step)
	b.Run("plan", func(b *testing.B) {
		eng.SetCondMode(gibbs.CondOff)
		defer eng.SetCondMode(gibbs.CondAuto)
		step(b)
	})
}

// BenchmarkE12RoundsToMix regenerates E12 (LubyGlauber / LocalMetropolis
// vs sequential Glauber); metric is the LocalMetropolis TV at the largest
// sweep-equivalent budget.
func BenchmarkE12RoundsToMix(b *testing.B) {
	reportTable(b, func() (*experiment.Table, error) {
		return experiment.E12RoundsToMix(6, 1.0, []int{1, 4, 8}, 1200, 5)
	}, "metroTVatMax", func(t *experiment.Table) float64 {
		return parseCell(b, t, len(t.Rows)-1, 5)
	})
}

// --- Distributed sampler benchmarks (internal/psample) ---

// benchSamplerSetup builds the throughput workload: hardcore on a 4-regular
// torus with n = 576 ≥ 512 vertices.
func benchSamplerSetup(b *testing.B) (*gibbs.Instance, *psample.Rules) {
	b.Helper()
	g := graph.Torus(24, 24)
	spec, err := model.Hardcore(g, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		b.Fatal(err)
	}
	rules, err := psample.NewRules(in)
	if err != nil {
		b.Fatal(err)
	}
	return in, rules
}

// BenchmarkSamplerSweep compares one sweep-equivalent of every registered
// dynamic on the same instance, selected through the internal/sampler
// registry: n sequential heat-bath updates for glauber, Δ+1 LubyGlauber
// phases (a vertex wins a phase with probability ≥ 1/(Δ+1), so Δ+1 rounds
// perform ≈ n updates), one LocalMetropolis round (every vertex proposes),
// and one χ-stage ChromaticGlauber sweep. The sharded engines run on the
// default worker pool — on a multi-core machine they spread the sweep
// across CPUs while the sequential baseline cannot.
func BenchmarkSamplerSweep(b *testing.B) {
	in, _ := benchSamplerSetup(b)
	for _, name := range sampler.Names() {
		b.Run(name, func(b *testing.B) {
			s, err := sampler.Create(name, in, sampler.Options{Seed: 11})
			if err != nil {
				b.Fatal(err)
			}
			sweep, err := sampler.SweepRounds(name, in)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Run(sweep); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if u, ok := s.(interface{ Updates() int64 }); ok && s.Rounds() > 0 {
				b.ReportMetric(float64(u.Updates())/float64(s.Rounds()), "updates/round")
			}
			if a, ok := s.(interface{ Accepts() int64 }); ok && s.Rounds() > 0 {
				b.ReportMetric(float64(a.Accepts())/float64(s.Rounds()), "accepts/round")
			}
		})
	}
}

// BenchmarkBatchSweep measures the batched multi-chain engine on the same
// 576-vertex torus: one full chromatic sweep of B independent chains per
// iteration. The headline metric is ns/chain-sweep — the amortized cost of
// sweeping one chain — which must drop as B grows: the per-vertex factor
// walk, mixed-radix index computation, and table cache misses are shared
// across the B chains of a vertex block.
func BenchmarkBatchSweep(b *testing.B) {
	_, rules := benchSamplerSetup(b)
	runSweep := func(b *testing.B, B int) {
		bt, err := sampler.NewBatch(rules, B, 11)
		if err != nil {
			b.Fatal(err)
		}
		// Warm up once so the lazily built sweep plan, the conditional-CDF
		// cache, the worker pool, and the lattice preflight land outside the
		// timed region — on a 1x CI run the first subtest would otherwise
		// absorb the whole plan compilation.
		if err := bt.Run(1); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := bt.Run(1); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*B), "ns/chain-sweep")
	}
	for _, B := range []int{1, 8, 32, 128, 512} {
		b.Run(fmt.Sprintf("B=%d", B), func(b *testing.B) { runSweep(b, B) })
	}
	// The cond=off / cond=on pair isolates the conditional-CDF cache at the
	// headline width: off forces every draw back onto the sweep-plan walk,
	// on uses the cache and reports its footprint as cond-bytes (per-chain
	// samples are bit-identical either way).
	eng := rules.Engine()
	b.Run("cond=off/B=32", func(b *testing.B) {
		eng.SetCondMode(gibbs.CondOff)
		defer eng.SetCondMode(gibbs.CondAuto)
		runSweep(b, 32)
	})
	b.Run("cond=on/B=32", func(b *testing.B) {
		runSweep(b, 32)
		st := eng.CondStats()
		b.ReportMetric(float64(st.Bytes), "cond-bytes")
	})
}

// batchRound times one round per iteration of a single- or multi-chain
// engine and reports ns/chain-round — the amortized cost of advancing one
// chain by one round, the number the batched engines exist to shrink.
func batchRound(b *testing.B, s interface{ Run(int) error }, chains int) {
	b.Helper()
	// Warm up once so lazily built sweep plans, worker pools, and the
	// lattice preflight land outside the timed region.
	if err := s.Run(1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Run(1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*chains), "ns/chain-round")
}

// BenchmarkBatchLubySweep measures the batched multi-chain LubyGlauber
// engine on the 576-vertex torus: one round (one Luby phase across all B
// chains) per iteration, against the sequential single-chain engine
// ("single"). ns/chain-round must drop as B grows — the per-vertex plan
// walk, neighbor scan, and factor-table traffic of the masked subset
// kernel are shared across the winning chains of a vertex.
func BenchmarkBatchLubySweep(b *testing.B) {
	_, rules := benchSamplerSetup(b)
	b.Run("single", func(b *testing.B) {
		s, err := psample.NewLubyGlauber(rules, 11)
		if err != nil {
			b.Fatal(err)
		}
		batchRound(b, s, 1)
	})
	for _, B := range []int{1, 8, 32, 128} {
		b.Run(fmt.Sprintf("B=%d", B), func(b *testing.B) {
			s, err := psample.NewBatchLubyGlauber(rules, B, 11)
			if err != nil {
				b.Fatal(err)
			}
			batchRound(b, s, B)
		})
	}
}

// BenchmarkBatchMetropolisSweep measures the batched multi-chain
// LocalMetropolis engine on the same instance: one round (every free
// vertex proposes in every chain) per iteration, against the sequential
// single-chain engine ("single"). The batched filter amortizes each
// acceptance factor's mixed-radix bases and table rows across a whole
// chain block, and proposals/adoptions run over contiguous chain-major
// rows.
func BenchmarkBatchMetropolisSweep(b *testing.B) {
	_, rules := benchSamplerSetup(b)
	b.Run("single", func(b *testing.B) {
		s, err := psample.NewLocalMetropolis(rules, 11)
		if err != nil {
			b.Fatal(err)
		}
		batchRound(b, s, 1)
	})
	for _, B := range []int{1, 8, 32, 128} {
		b.Run(fmt.Sprintf("B=%d", B), func(b *testing.B) {
			s, err := psample.NewBatchLocalMetropolis(rules, B, 11)
			if err != nil {
				b.Fatal(err)
			}
			batchRound(b, s, B)
		})
	}
}

// BenchmarkLubyGlauberLOCAL measures the message-passing harness (4 rounds
// of LubyGlauber on a 12×12 torus through the LOCAL simulator) — the
// simulator overhead the sharded engine removes.
func BenchmarkLubyGlauberLOCAL(b *testing.B) {
	g := graph.Torus(12, 12)
	spec, err := model.Hardcore(g, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		b.Fatal(err)
	}
	rules, err := psample.NewRules(in)
	if err != nil {
		b.Fatal(err)
	}
	net := local.NewNetwork(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := psample.LubyGlauberLOCAL(net, rules, 4, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDriverConverge measures the adaptive run controller end to end:
// one full drive-to-convergence per iteration on a 36-vertex torus Ising
// instance inside the uniqueness regime (Δ = 4 interval is (1/2, 2)),
// chromatic dynamics, stopping at worst-vertex R̂ < 1.05. The benchmark
// fails if any run exhausts the budget instead of converging, so it doubles
// as a CI check that the stop rule actually fires; sweeps-to-converge is
// the decision-quality metric next to the wall-clock one.
func BenchmarkDriverConverge(b *testing.B) {
	g := graph.Torus(6, 6)
	spec, err := model.Ising(g, 0.8, 1)
	if err != nil {
		b.Fatal(err)
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		b.Fatal(err)
	}
	p := run.Policy{
		Chains:     8,
		MaxSweeps:  4096,
		CheckEvery: 4,
		Rhat:       1.05,
	}
	b.ReportAllocs()
	b.ResetTimer()
	sweeps := 0
	for i := 0; i < b.N; i++ {
		rep, _, err := run.One(in, "chromatic", 11, p)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Converged {
			b.Fatalf("driver did not converge: stop=%s after %d sweeps", rep.Reason, rep.Sweeps)
		}
		sweeps = rep.Sweeps
	}
	b.StopTimer()
	b.ReportMetric(float64(sweeps), "sweeps-to-converge")
}
