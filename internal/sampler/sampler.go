// Package sampler unifies every dynamics of the repo behind one interface
// and one registry, and adds the batched multi-chain engine.
//
// The paper (Feng & Yin, PODC 2018) gives several dynamics with the same
// stationary Gibbs distribution — sequential Glauber, LubyGlauber,
// LocalMetropolis — and this package adds a fourth, ChromaticGlauber.
// Before it existed, every consumer (experiments, cmd/lsample, the
// benchmarks) reached each dynamic through its own ad-hoc entry point and
// its own switch statement; they now select dynamics by name through
// Lookup/Create, and per-dynamic knowledge (how many rounds make one
// "sweep-equivalent") lives in the registry entry instead of being
// re-derived at every call site.
//
// The interface is deliberately small: a dynamic is something that can be
// restarted from the instance's canonical start (Reset), advanced by whole
// rounds (Run), and observed (State, Rounds). What a "round" is differs
// per dynamic — one single-site update for Glauber, one phase for
// LubyGlauber, one all-vertex proposal round for LocalMetropolis, one full
// χ-stage sweep for ChromaticGlauber — and Info.SweepRounds converts
// between them: Run(SweepRounds(in)) performs ≈ one expected update per
// free vertex for every registered dynamic, which is what makes mixing
// budgets comparable across dynamics.
package sampler

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/state"
)

// Sampler is the common control surface of every dynamic. All four
// built-in dynamics implement it: the two psample engines natively, the
// sequential chain and the chromatic engine through thin adapters.
type Sampler interface {
	// Reset restarts the dynamic from the instance's canonical start (the
	// greedy feasible completion of the pinning) with fresh RNG streams
	// derived from seed.
	Reset(seed int64) error
	// Run advances the dynamic by the given number of its own rounds.
	Run(rounds int) error
	// State returns a copy of the current configuration.
	State() dist.Config
	// Rounds returns the rounds executed since construction or the last
	// Reset.
	Rounds() int
}

// MultiChain is a Sampler advancing B independent chains in lockstep over
// one chain-major state lattice — the control surface of every batched
// engine (the chromatic Batch and the batched LubyGlauber and
// LocalMetropolis engines of internal/psample). State() is chain 0's
// configuration, so a MultiChain at B = 1 drops into any single-chain
// consumer; diagnostics that want all chains (the R̂ accumulator) read
// Chains/Chain/Lattice.
type MultiChain interface {
	Sampler
	// Chains returns B, the number of independent chains.
	Chains() int
	// Chain returns a copy of chain c's current configuration.
	Chain(c int) dist.Config
	// Lattice exposes the chain-major state container (read-only for
	// callers).
	Lattice() *state.Lattice
}

// Info is one registry entry: a named dynamic plus the per-dynamic
// knowledge its consumers need.
type Info struct {
	// Name is the registry key (also the cmd/lsample -algo value).
	Name string
	// Synopsis is a one-line description for CLI help output.
	Synopsis string
	// New constructs the dynamic on the instance, started from the greedy
	// completion of the pinning, with RNG streams derived from seed.
	New func(in *gibbs.Instance, seed int64) (Sampler, error)
	// SweepRounds returns how many rounds of this dynamic make one
	// sweep-equivalent (≈ one expected update per free vertex).
	SweepRounds func(in *gibbs.Instance) int
	// NewBatch constructs the batched multi-chain form of the dynamic
	// (nil for dynamics without one, e.g. the sequential baseline).
	NewBatch func(in *gibbs.Instance, chains int, seed int64) (MultiChain, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Info{}
)

// Register adds a dynamic to the registry. It panics on an empty name, a
// duplicate, or a nil constructor — registration is an init-time
// programming act, not a runtime input.
func Register(info Info) {
	if info.Name == "" || info.New == nil || info.SweepRounds == nil {
		panic("sampler: Register needs a name, a constructor, and a sweep measure")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[info.Name]; dup {
		panic(fmt.Sprintf("sampler: dynamic %q registered twice", info.Name))
	}
	registry[info.Name] = info
}

// Lookup returns the registry entry for name.
func Lookup(name string) (Info, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	info, ok := registry[name]
	return info, ok
}

// Names returns the registered dynamic names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Options configures Create, the registry's single creation path.
type Options struct {
	// Chains selects the engine: 0 is the dynamic's single-chain engine;
	// B ≥ 1 is its batched multi-chain engine advancing B independent
	// chains in lockstep (an error for dynamics without one). A batched
	// result implements MultiChain.
	Chains int
	// Seed derives every RNG stream of the dynamic.
	Seed int64
}

// Create constructs the named dynamic on the instance. It is the one
// creation path consumers (cmd/lsample, the experiments, the adaptive run
// driver, the sampling service) call.
func Create(name string, in *gibbs.Instance, o Options) (Sampler, error) {
	info, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("sampler: unknown dynamic %q (have %v)", name, Names())
	}
	if o.Chains == 0 {
		return info.New(in, o.Seed)
	}
	if info.NewBatch == nil {
		return nil, fmt.Errorf("sampler: dynamic %q has no batched multi-chain form (have %v)", name, MultiNames())
	}
	return info.NewBatch(in, o.Chains, o.Seed)
}

// MultiNames returns the registered dynamics with a batched multi-chain
// form, sorted.
func MultiNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name, info := range registry {
		if info.NewBatch != nil {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// SweepRounds returns the rounds-per-sweep-equivalent of the named dynamic
// on the instance.
func SweepRounds(name string, in *gibbs.Instance) (int, error) {
	info, ok := Lookup(name)
	if !ok {
		return 0, fmt.Errorf("sampler: unknown dynamic %q (have %v)", name, Names())
	}
	return max(info.SweepRounds(in), 1), nil
}
