package sampler

// stationary_test.go pins ChromaticGlauber exactly, the same way
// internal/psample pins LubyGlauber and LocalMetropolis: on instances
// small enough to enumerate, the one-round (one full sweep) transition
// kernel P is built by brute force — the sweep is the composition of the
// color-class stage kernels, and each stage kernel is the product of the
// class's heat-bath conditionals — and µP = µ is checked against the exact
// Gibbs distribution µ from internal/exact to 1e-9 in TV.

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/psample"
)

// tinyInstances mirrors the psample stationarity suite: soft and hard
// constraints, pairwise and arity-3 factors, and pinning.
func tinyInstances(t *testing.T) map[string]*gibbs.Instance {
	t.Helper()
	out := make(map[string]*gibbs.Instance)
	mk := func(name string, spec *gibbs.Spec, err error, pinned dist.Config) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		in, err := gibbs.NewInstance(spec, pinned)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = in
	}

	hc, err := model.Hardcore(graph.Path(3), 1.3)
	mk("hardcore-path3", hc, err, nil)

	hcPin, err := model.Hardcore(graph.Path(3), 0.8)
	mk("hardcore-pinned", hcPin, err, dist.Config{model.Out, dist.Unset, dist.Unset})

	is, err := model.Ising(graph.Cycle(3), 0.6, 1.4)
	mk("ising-triangle", is, err, nil)

	m, err := model.Matching(graph.Star(3), 1.1)
	if err != nil {
		t.Fatal(err)
	}
	mk("matching-star3", m.Spec, nil, nil)

	col, err := model.Coloring(graph.Cycle(4), 3)
	mk("coloring-cycle4", col, err, nil)

	// A genuine arity-3 factor: a soft not-all-equal constraint on a
	// triangle plus a mild field.
	tri := graph.Complete(3)
	table := make([]float64, 8)
	for idx := range table {
		a, b, c := idx>>2&1, idx>>1&1, idx&1
		if a == b && b == c {
			table[idx] = 0.3
		} else {
			table[idx] = 1.0
		}
	}
	factors := []gibbs.Factor{
		{Scope: []int{0, 1, 2}, Table: table, Name: "nae"},
		gibbs.UnaryTable(0, []float64{1, 1.7}, "field"),
	}
	spec, err := gibbs.NewSpec(tri, 2, factors)
	mk("triangle-arity3", spec, err, nil)

	return out
}

// applyClassKernel returns µ·P_k where P_k simultaneously heat-bath
// updates every vertex of the class. The class is an independent set and
// factor scopes are cliques, so each vertex's conditional depends only on
// vertices outside the class and the joint update factorizes into a
// product of single-vertex conditionals — exactly what the engine's stage
// executes.
func applyClassKernel(t *testing.T, eng *gibbs.Compiled, q int, class []int, mu *dist.Joint) *dist.Joint {
	t.Helper()
	out := dist.NewJoint(mu.N())
	buf := make([]float64, q)
	for _, sigma := range mu.Support() {
		p := mu.Prob(sigma)
		if p == 0 {
			continue
		}
		tau := sigma.Clone()
		var rec func(i int, pu float64)
		rec = func(i int, pu float64) {
			if pu == 0 {
				return
			}
			if i == len(class) {
				out.Add(tau.Clone(), pu)
				return
			}
			v := class[i]
			w, err := eng.CondWeights(sigma, v, buf)
			if err != nil {
				t.Fatal(err)
			}
			d, err := dist.FromWeights(w)
			if err != nil {
				t.Fatal(err)
			}
			for x := 0; x < q; x++ {
				tau[v] = x
				rec(i+1, pu*d[x])
			}
			tau[v] = sigma[v]
		}
		rec(0, p)
	}
	if err := out.Normalize(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestChromaticGlauberStationaryExact checks TV(µP, µ) < 1e-9 where P is
// one full ChromaticGlauber sweep (the engine's schedule, stage by stage),
// and also that every intermediate stage kernel preserves µ.
func TestChromaticGlauberStationaryExact(t *testing.T) {
	for name, in := range tinyInstances(t) {
		t.Run(name, func(t *testing.T) {
			r, err := psample.NewRules(in)
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewChromaticGlauber(r, 1)
			if err != nil {
				t.Fatal(err)
			}
			truth, err := exact.JointDistribution(in)
			if err != nil {
				t.Fatal(err)
			}
			eng := r.Engine()
			mu := truth
			for k, class := range s.Batch().Classes() {
				mu = applyClassKernel(t, eng, in.Q(), class, mu)
				tv, err := dist.TVJoint(truth, mu)
				if err != nil {
					t.Fatal(err)
				}
				if tv > 1e-9 || math.IsNaN(tv) {
					t.Errorf("stage %d (class %v) moves the stationary distribution: TV = %g", k, class, tv)
				}
			}
		})
	}
}

// TestChromaticScheduleCoversFreeVertices checks the schedule invariants
// the stationarity argument rests on: every free vertex appears in exactly
// one class, no pinned vertex appears, and every class is an independent
// set of the interaction graph.
func TestChromaticScheduleCoversFreeVertices(t *testing.T) {
	for name, in := range tinyInstances(t) {
		t.Run(name, func(t *testing.T) {
			r, err := psample.NewRules(in)
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewChromaticGlauber(r, 1)
			if err != nil {
				t.Fatal(err)
			}
			g := in.Spec.G
			seen := make(map[int]int)
			for _, class := range s.Batch().Classes() {
				for i, v := range class {
					seen[v]++
					if !r.Free(v) {
						t.Errorf("pinned vertex %d scheduled", v)
					}
					for _, u := range class[i+1:] {
						if g.HasEdge(v, u) {
							t.Errorf("class %v is not independent: edge (%d,%d)", class, v, u)
						}
					}
				}
			}
			for _, v := range in.FreeVertices() {
				if seen[v] != 1 {
					t.Errorf("free vertex %d scheduled %d times", v, seen[v])
				}
			}
		})
	}
}
