package sampler

// batch.go is the batched multi-chain engine: B independent chains over
// one shared compiled engine, advanced in lockstep under the deterministic
// chromatic schedule. The configurations live in a state.Lattice
// (chain-major per vertex, cell (v,c) at vals[v*B+c], one byte per cell
// for every model this repo builds) so that updating one vertex across all
// chains touches contiguous memory and amortizes the per-vertex factor
// bookkeeping — the mixed-radix index computation and factor-table cache
// misses that dominate single-chain sweeps (per the PR 2 measurements) are
// paid once per vertex instead of once per chain, and the compact cells
// keep the whole B×n working set in cache at large B, which together are
// the biggest throughput levers for many-chain workloads (independent
// replicas for empirical TV estimates, the cross-chain R̂ diagnostic in
// rhat.go, or simply saturating a core with less bookkeeping).
//
// The stage schedule is adaptive: the engine colors the interaction graph
// both by natural-order greedy and by the degeneracy (smallest-last) order
// and keeps whichever uses fewer classes — on sparse graphs the degeneracy
// bound d+1 undercuts greedy's Δ+1, and fewer classes mean fewer barriers
// per sweep.
//
// Correctness: a stage updates one greedy color class simultaneously in
// every chain. Within a chain the class is an independent set of the
// interaction graph, and factor scopes are cliques (enforced by
// psample.NewRules), so no two simultaneous updates share a factor and the
// stage is a product of ordinary heat-bath kernels — exactly the
// LubyGlauber argument with the random independent set replaced by a
// deterministic one. Across chains there is no interaction at all. The
// psample worker pool (RunRounds) partitions the stage's chains×vertices
// item grid statically across workers.

import (
	"fmt"
	"math/rand"

	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/psample"
	"repro/internal/state"
)

// batchChainBlock is the number of chains one work item advances: chains
// are processed in groups of this size so the conditional-weight buffer
// stays small enough to live in L1 while still amortizing the per-vertex
// factor walk across many chains.
const batchChainBlock = 32

// Batch advances B independent chains of ChromaticGlauber dynamics in
// lockstep over one shared gibbs.Compiled engine.
type Batch struct {
	// Workers overrides the worker count when positive (default: one per
	// CPU, bounded so per-stage blocks stay coarse).
	Workers int

	rules *psample.Rules
	// chains is B, the number of independent chains.
	chains int
	// lat is the chain-major state lattice: cell (v, c) is chain c at v.
	lat *state.Lattice
	// classes is the coloring schedule over free vertices (greedy or
	// degeneracy order, whichever used fewer classes).
	classes [][]int
	sweeps  int
	workers []batchWorker
	seed    int64
}

// batchWorker is the per-worker mutable state: an RNG stream and the
// batched conditional-weight buffers.
type batchWorker struct {
	rng *rand.Rand
	buf []float64
	sc  *gibbs.BatchScratch
}

// NewBatch returns a batched engine of the given number of chains, every
// chain started from the greedy feasible completion of the instance
// pinning, with per-worker RNG streams derived from seed. The schedule is
// a proper coloring of the interaction graph restricted to free vertices —
// natural-order greedy or the degeneracy (smallest-last) order, whichever
// yields fewer classes — so one sweep is at most min(Δ, d)+1
// barrier-separated stages.
// A nonpositive chain count surfaces as the state container's typed
// *state.DomainError.
func NewBatch(r *psample.Rules, chains int, seed int64) (*Batch, error) {
	g := r.Instance().Spec.G
	// Compare the schedules AFTER restricting to free vertices: a coloring
	// that needs more colors on the full graph may still have fewer
	// surviving classes once the pinned vertices are dropped.
	freeClasses := func(colors []int) [][]int {
		for v := range colors {
			if !r.Free(v) {
				colors[v] = -1
			}
		}
		return graph.ColorClasses(colors)
	}
	gc, _ := g.GreedyColoring()
	classes := freeClasses(gc)
	dc, _ := g.DegeneracyColoring()
	if dcl := freeClasses(dc); len(dcl) < len(classes) {
		classes = dcl
	}
	b := &Batch{
		rules:   r,
		chains:  chains,
		classes: classes,
	}
	if err := b.Reset(seed); err != nil {
		return nil, err
	}
	return b, nil
}

// Reset restarts every chain from the greedy start with fresh RNG streams.
func (b *Batch) Reset(seed int64) error {
	lat, err := b.rules.ResetLattice(b.lat, b.chains)
	if err != nil {
		return err
	}
	b.lat = lat
	b.seed = seed
	b.sweeps = 0
	b.workers = b.workers[:0]
	return nil
}

// Chains returns B, the number of independent chains.
func (b *Batch) Chains() int { return b.chains }

// Classes returns the stage schedule (free vertices grouped by greedy
// color). The slices alias engine state and must not be modified.
func (b *Batch) Classes() [][]int { return b.classes }

// Rounds returns the number of full sweeps executed since the last Reset.
func (b *Batch) Rounds() int { return b.sweeps }

// Chain returns a copy of chain c's current configuration.
func (b *Batch) Chain(c int) dist.Config {
	return b.lat.Chain(c)
}

// Lattice exposes the underlying state container (read-only for callers:
// diagnostics such as the R̂ accumulator read it between runs).
func (b *Batch) Lattice() *state.Lattice { return b.lat }

// ensureWorkers sizes the per-worker state for w workers.
func (b *Batch) ensureWorkers(w int) {
	cb := min(b.chains, batchChainBlock)
	for len(b.workers) < w {
		i := len(b.workers)
		b.workers = append(b.workers, batchWorker{
			rng: dist.SeedStream(b.seed, int64(i)),
			buf: make([]float64, cb*b.rules.Q()),
			sc:  gibbs.NewBatchScratch(cb),
		})
	}
}

// sampleRow draws the heat-bath symbols of chains c0 ≤ c < c1 at vertex v
// from the batched conditional weights into the raw vertex row — the
// width-specialized write-back of one stage item.
func sampleRow[T state.Cells](row []T, wbuf []float64, q, v, c0, c1 int, rng *rand.Rand) error {
	for c := c0; c < c1; c++ {
		x, err := dist.SampleWeights(wbuf[(c-c0)*q:(c-c0+1)*q], rng)
		if err != nil {
			return fmt.Errorf("sampler: heat-bath at vertex %d chain %d: %w", v, c, err)
		}
		row[c] = T(x)
	}
	return nil
}

// Run executes the given number of full sweeps; each sweep is one
// barrier-separated stage per color class, and each stage advances every
// chain at every vertex of the class. The worker pool statically
// partitions the stage's (vertex, chain-group) item grid.
func (b *Batch) Run(sweeps int) error {
	if len(b.classes) == 0 {
		// Fully pinned instance: a sweep is a no-op.
		b.sweeps += sweeps
		return nil
	}
	B := b.chains
	cb := min(B, batchChainBlock)
	groups := (B + cb - 1) / cb
	maxItems := 0
	for _, class := range b.classes {
		maxItems = max(maxItems, len(class)*groups)
	}
	workers := b.Workers
	if workers <= 0 {
		// Scale the worker heuristic by the scalar updates per item (one
		// chain group ≈ cb single-vertex updates).
		workers = psample.DefaultWorkers(maxItems * cb)
	}
	workers = max(min(workers, maxItems), 1)
	b.ensureWorkers(workers)
	eng := b.rules.Engine()
	q := b.rules.Q()
	stages := make([]func(w, round int) error, len(b.classes))
	for k, class := range b.classes {
		items := len(class) * groups
		stages[k] = func(w, round int) error {
			lo, hi := psample.BlockOf(items, workers, w)
			wk := &b.workers[w]
			for it := lo; it < hi; it++ {
				v := class[it/groups]
				c0 := (it % groups) * cb
				c1 := min(c0+cb, B)
				wbuf, err := eng.CondWeightsBatch(b.lat, v, c0, c1, wk.buf, wk.sc)
				if err != nil {
					return err
				}
				// Write through the raw vertex row: one representation
				// branch per item instead of one per chain.
				if row := b.lat.Row8(v); row != nil {
					err = sampleRow(row, wbuf, q, v, c0, c1, wk.rng)
				} else {
					err = sampleRow(b.lat.RowWide(v), wbuf, q, v, c0, c1, wk.rng)
				}
				if err != nil {
					return err
				}
			}
			return nil
		}
	}
	if err := psample.RunRounds(workers, sweeps, stages); err != nil {
		return err
	}
	b.sweeps += sweeps
	return nil
}
