package sampler

// batch.go is the batched multi-chain engine: B independent chains over
// one shared compiled engine, advanced in lockstep under the deterministic
// chromatic schedule. The configurations live in a structure-of-arrays
// layout (chain-major per vertex, vals[v*B+c]) so that updating one vertex
// across all chains touches contiguous memory and amortizes the per-vertex
// factor bookkeeping — the mixed-radix index computation and factor-table
// cache misses that dominate single-chain sweeps (per the PR 2
// measurements) are paid once per vertex instead of once per chain, which
// is the single biggest throughput lever for many-chain workloads
// (independent replicas for empirical TV estimates, R̂-style diagnostics,
// or simply saturating a core with less bookkeeping).
//
// Correctness: a stage updates one greedy color class simultaneously in
// every chain. Within a chain the class is an independent set of the
// interaction graph, and factor scopes are cliques (enforced by
// psample.NewRules), so no two simultaneous updates share a factor and the
// stage is a product of ordinary heat-bath kernels — exactly the
// LubyGlauber argument with the random independent set replaced by a
// deterministic one. Across chains there is no interaction at all. The
// psample worker pool (RunRounds) partitions the stage's chains×vertices
// item grid statically across workers.

import (
	"fmt"
	"math/rand"

	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/psample"
)

// batchChainBlock is the number of chains one work item advances: chains
// are processed in groups of this size so the conditional-weight buffer
// stays small enough to live in L1 while still amortizing the per-vertex
// factor walk across many chains.
const batchChainBlock = 32

// Batch advances B independent chains of ChromaticGlauber dynamics in
// lockstep over one shared gibbs.Compiled engine.
type Batch struct {
	// Workers overrides the worker count when positive (default: one per
	// CPU, bounded so per-stage blocks stay coarse).
	Workers int

	rules *psample.Rules
	// chains is B, the number of independent chains.
	chains int
	// vals is the chain-major state: vals[v*chains+c] is chain c at v.
	vals []int
	// classes is the greedy-coloring schedule over free vertices.
	classes [][]int
	sweeps  int
	workers []batchWorker
	seed    int64
}

// batchWorker is the per-worker mutable state: an RNG stream and the
// batched conditional-weight buffers.
type batchWorker struct {
	rng *rand.Rand
	buf []float64
	sc  *gibbs.BatchScratch
}

// NewBatch returns a batched engine of the given number of chains, every
// chain started from the greedy feasible completion of the instance
// pinning, with per-worker RNG streams derived from seed. The schedule is
// the greedy proper coloring of the interaction graph restricted to free
// vertices, so one sweep is at most Δ+1 barrier-separated stages.
func NewBatch(r *psample.Rules, chains int, seed int64) (*Batch, error) {
	if chains <= 0 {
		return nil, fmt.Errorf("sampler: batch needs at least 1 chain, got %d", chains)
	}
	colors, _ := r.Instance().Spec.G.GreedyColoring()
	for v := range colors {
		if !r.Free(v) {
			colors[v] = -1
		}
	}
	b := &Batch{
		rules:   r,
		chains:  chains,
		classes: graph.ColorClasses(colors),
	}
	if err := b.Reset(seed); err != nil {
		return nil, err
	}
	return b, nil
}

// Reset restarts every chain from the greedy start with fresh RNG streams.
func (b *Batch) Reset(seed int64) error {
	start, err := b.rules.Start()
	if err != nil {
		return err
	}
	n := b.rules.N()
	if b.vals == nil {
		b.vals = make([]int, n*b.chains)
	}
	for v := 0; v < n; v++ {
		row := b.vals[v*b.chains : (v+1)*b.chains]
		for c := range row {
			row[c] = start[v]
		}
	}
	b.seed = seed
	b.sweeps = 0
	b.workers = b.workers[:0]
	return nil
}

// Chains returns B, the number of independent chains.
func (b *Batch) Chains() int { return b.chains }

// Classes returns the stage schedule (free vertices grouped by greedy
// color). The slices alias engine state and must not be modified.
func (b *Batch) Classes() [][]int { return b.classes }

// Rounds returns the number of full sweeps executed since the last Reset.
func (b *Batch) Rounds() int { return b.sweeps }

// Chain returns a copy of chain c's current configuration.
func (b *Batch) Chain(c int) dist.Config {
	return gibbs.UnpackChain(b.vals, b.chains, b.rules.N(), c)
}

// ensureWorkers sizes the per-worker state for w workers.
func (b *Batch) ensureWorkers(w int) {
	cb := min(b.chains, batchChainBlock)
	for len(b.workers) < w {
		i := len(b.workers)
		b.workers = append(b.workers, batchWorker{
			rng: dist.SeedStream(b.seed, int64(i)),
			buf: make([]float64, cb*b.rules.Q()),
			sc:  gibbs.NewBatchScratch(cb),
		})
	}
}

// Run executes the given number of full sweeps; each sweep is one
// barrier-separated stage per color class, and each stage advances every
// chain at every vertex of the class. The worker pool statically
// partitions the stage's (vertex, chain-group) item grid.
func (b *Batch) Run(sweeps int) error {
	if len(b.classes) == 0 {
		// Fully pinned instance: a sweep is a no-op.
		b.sweeps += sweeps
		return nil
	}
	B := b.chains
	cb := min(B, batchChainBlock)
	groups := (B + cb - 1) / cb
	maxItems := 0
	for _, class := range b.classes {
		maxItems = max(maxItems, len(class)*groups)
	}
	workers := b.Workers
	if workers <= 0 {
		// Scale the worker heuristic by the scalar updates per item (one
		// chain group ≈ cb single-vertex updates).
		workers = psample.DefaultWorkers(maxItems * cb)
	}
	workers = max(min(workers, maxItems), 1)
	b.ensureWorkers(workers)
	eng := b.rules.Engine()
	q := b.rules.Q()
	stages := make([]func(w, round int) error, len(b.classes))
	for k, class := range b.classes {
		items := len(class) * groups
		stages[k] = func(w, round int) error {
			lo, hi := psample.BlockOf(items, workers, w)
			wk := &b.workers[w]
			for it := lo; it < hi; it++ {
				v := class[it/groups]
				c0 := (it % groups) * cb
				c1 := min(c0+cb, B)
				wbuf, err := eng.CondWeightsBatch(b.vals, B, v, c0, c1, wk.buf, wk.sc)
				if err != nil {
					return err
				}
				row := b.vals[v*B : (v+1)*B]
				for c := c0; c < c1; c++ {
					x, err := dist.SampleWeights(wbuf[(c-c0)*q:(c-c0+1)*q], wk.rng)
					if err != nil {
						return fmt.Errorf("sampler: heat-bath at vertex %d chain %d: %w", v, c, err)
					}
					row[c] = x
				}
			}
			return nil
		}
	}
	if err := psample.RunRounds(workers, sweeps, stages); err != nil {
		return err
	}
	b.sweeps += sweeps
	return nil
}
