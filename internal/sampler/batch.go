package sampler

// batch.go is the batched multi-chain engine: B independent chains over
// one shared compiled engine, advanced in lockstep under the deterministic
// chromatic schedule. The configurations live in a state.Lattice
// (chain-major per vertex, cell (v,c) at vals[v*B+c], one byte per cell
// for every model this repo builds) so that updating one vertex across all
// chains touches contiguous memory and amortizes the per-vertex factor
// bookkeeping — the mixed-radix index computation and factor-table cache
// misses that dominate single-chain sweeps (per the PR 2 measurements) are
// paid once per vertex instead of once per chain, and the compact cells
// keep the whole B×n working set in cache at large B.
//
// The per-stage work runs through the fused sweep-plan kernel
// (gibbs.Compiled.SampleVertexBatch): weights and the heat-bath draw in
// one pass over a flat per-vertex instruction stream, a value-type
// dist.Xoshiro stream per worker instead of *rand.Rand interface calls,
// and lattice validity checked once per Run (state.Lattice.CheckAssigned)
// instead of per cell — sampled symbols are always in range, so one
// preflight covers every subsequent stage.
//
// The stage schedule is the cached psample.Rules.ClassSchedule: the
// interaction graph colored by natural-order greedy and by the degeneracy
// (smallest-last) order, keeping whichever uses fewer classes — fewer
// classes mean fewer barriers per sweep.
//
// Correctness: a stage updates one color class simultaneously in every
// chain. Within a chain the class is an independent set of the interaction
// graph, and factor scopes are cliques (enforced by psample.NewRules), so
// no two simultaneous updates share a factor and the stage is a product of
// ordinary heat-bath kernels — exactly the LubyGlauber argument with the
// random independent set replaced by a deterministic one. Across chains
// there is no interaction at all. Workers partition the stage's item grid
// chain-block-affine: items enumerate groups outermost, so a worker's
// contiguous item range covers contiguous chain columns across the whole
// class — each chain column stays with one worker (and its RNG stream)
// for locality now and the NUMA story later.

import (
	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/psample"
	"repro/internal/state"
)

// Batch advances B independent chains of ChromaticGlauber dynamics in
// lockstep over one shared gibbs.Compiled engine.
type Batch struct {
	// Workers overrides the worker count when positive (default: one per
	// CPU, bounded so per-stage blocks stay coarse).
	Workers int

	rules *psample.Rules
	// chains is B, the number of independent chains.
	chains int
	// lat is the chain-major state lattice: cell (v, c) is chain c at v.
	lat *state.Lattice
	// classes is the cached chromatic stage schedule of the rules.
	classes [][]int
	sweeps  int
	updates int64
	workers []batchWorker
	seed    int64
	// checked records that the lattice passed its CheckAssigned preflight;
	// stages write only in-range symbols, so one scan per Reset suffices.
	checked bool
}

// batchWorker is the per-worker mutable state: a value-type RNG stream and
// the batched conditional-weight buffers.
type batchWorker struct {
	rng dist.Xoshiro
	buf []float64
	sc  *gibbs.BatchScratch
}

// NewBatch returns a batched engine of the given number of chains, every
// chain started from the greedy feasible completion of the instance
// pinning, with per-worker RNG streams derived from seed. The stage
// schedule is the rules' cached class schedule (at most min(Δ, d)+1
// barrier-separated stages per sweep), so constructing many batches over
// one Rules colors the graph once.
// A nonpositive chain count surfaces as the state container's typed
// *state.DomainError.
func NewBatch(r *psample.Rules, chains int, seed int64) (*Batch, error) {
	b := &Batch{
		rules:   r,
		chains:  chains,
		classes: r.ClassSchedule(),
	}
	if err := b.Reset(seed); err != nil {
		return nil, err
	}
	return b, nil
}

// Reset restarts every chain from the greedy start with fresh RNG streams.
func (b *Batch) Reset(seed int64) error {
	lat, err := b.rules.ResetLattice(b.lat, b.chains)
	if err != nil {
		return err
	}
	b.lat = lat
	b.seed = seed
	b.sweeps = 0
	b.updates = 0
	b.workers = b.workers[:0]
	b.checked = false
	return nil
}

// Chains returns B, the number of independent chains.
func (b *Batch) Chains() int { return b.chains }

// Classes returns the stage schedule (free vertices grouped by greedy
// color). The slices alias engine state and must not be modified.
func (b *Batch) Classes() [][]int { return b.classes }

// Rounds returns the number of full sweeps executed since the last Reset.
func (b *Batch) Rounds() int { return b.sweeps }

// Updates returns the total number of single-site heat-bath updates
// executed across all chains since the last Reset (every scheduled update
// is unconditional — the chromatic schedule has no rejection, so this is
// the update-rate counter of the adaptive driver).
func (b *Batch) Updates() int64 { return b.updates }

// SetWorkers overrides the worker count (nonpositive restores the
// CPU-scaled default). Per-worker RNG streams mean trajectories depend on
// the worker count; callers wanting machine-independent reproducibility
// (the adaptive driver's determinism contract) pin it.
func (b *Batch) SetWorkers(w int) { b.Workers = w }

// Chain returns a copy of chain c's current configuration.
func (b *Batch) Chain(c int) dist.Config {
	return b.lat.Chain(c)
}

// State returns a copy of chain 0's configuration (the single-chain view
// of the Sampler interface).
func (b *Batch) State() dist.Config { return b.lat.Chain(0) }

// Lattice exposes the underlying state container (read-only for callers:
// diagnostics such as the R̂ accumulator read it between runs).
func (b *Batch) Lattice() *state.Lattice { return b.lat }

// ensureWorkers sizes the per-worker state for w workers.
func (b *Batch) ensureWorkers(w, cb int) {
	for len(b.workers) < w {
		i := len(b.workers)
		b.workers = append(b.workers, batchWorker{
			rng: dist.NewXoshiro(b.seed, int64(i)),
			buf: make([]float64, cb*b.rules.Q()),
			sc:  gibbs.NewBatchScratch(cb),
		})
	}
}

// Run executes the given number of full sweeps; each sweep is one
// barrier-separated stage per color class, and each stage advances every
// chain at every vertex of the class through the fused sweep-plan kernel.
// The worker pool statically partitions the stage's (chain-group, vertex)
// item grid with groups outermost, so each worker owns contiguous chain
// columns.
func (b *Batch) Run(sweeps int) error {
	if len(b.classes) == 0 {
		// Fully pinned instance: a sweep is a no-op.
		b.sweeps += sweeps
		return nil
	}
	// One preflight scan replaces the per-cell validity checks of the
	// fused kernel: every symbol the stages write is in range, so the
	// invariant survives until the next Reset.
	if !b.checked {
		if err := b.lat.CheckAssigned(); err != nil {
			return err
		}
		b.checked = true
	}
	B := b.chains
	// Chains are processed in groups of psample.ChainBlock(q) so the
	// conditional-weight buffer stays L1-resident while still amortizing
	// the per-vertex plan walk across many chains.
	cb := min(B, psample.ChainBlock(b.rules.Q()))
	groups := (B + cb - 1) / cb
	maxItems := 0
	for _, class := range b.classes {
		maxItems = max(maxItems, len(class)*groups)
	}
	workers := b.Workers
	if workers <= 0 {
		// Scale the worker heuristic by the scalar updates per item (one
		// chain group ≈ cb single-vertex updates).
		workers = psample.DefaultWorkers(maxItems * cb)
	}
	workers = max(min(workers, maxItems), 1)
	b.ensureWorkers(workers, cb)
	eng := b.rules.Engine()
	stages := make([]func(w, round int) error, len(b.classes))
	for k, class := range b.classes {
		nclass := len(class)
		items := nclass * groups
		stages[k] = func(w, round int) error {
			lo, hi := psample.BlockOf(items, workers, w)
			wk := &b.workers[w]
			for it := lo; it < hi; it++ {
				// Groups outermost: a contiguous item range is a run of
				// whole chain-column groups, so the worker (and its RNG
				// stream) owns those columns across every vertex of the
				// class.
				v := class[it%nclass]
				c0 := (it / nclass) * cb
				c1 := min(c0+cb, B)
				if err := eng.SampleVertexBatch(b.lat, v, c0, c1, wk.buf, wk.sc, &wk.rng); err != nil {
					return err
				}
			}
			return nil
		}
	}
	if err := psample.RunRounds(workers, sweeps, stages); err != nil {
		return err
	}
	b.sweeps += sweeps
	classTotal := 0
	for _, class := range b.classes {
		classTotal += len(class)
	}
	b.updates += int64(sweeps) * int64(classTotal) * int64(B)
	return nil
}
