package sampler

// rhat.go: the cross-chain Gelman–Rubin convergence diagnostic on the
// batched engine. B independent lockstep chains are exactly the input the
// potential scale reduction factor R̂ wants: for each vertex, the between-
// chain variance of the per-chain means is compared against the mean
// within-chain variance; R̂ ≈ 1 once every chain explores the same
// distribution, and values well above 1 flag unconverged sweeps. Symbols
// are treated as numeric scores (the standard practice for categorical
// chains — a heuristic but effective stall detector; for q = 2 models it
// is exactly the indicator-mean diagnostic). Per-vertex values are
// exposed, and the worst vertex is the headline number cmd/lsample -rhat
// reports.

import (
	"fmt"
	"math"
)

// Rhat accumulates per-(vertex, chain) running moments of a multi-chain
// engine's state across observations (Welford updates, numerically stable
// over any number of sweeps) and reports the Gelman–Rubin statistic per
// vertex. It works with any MultiChain — the chromatic Batch and the
// batched LubyGlauber and LocalMetropolis engines alike.
type Rhat struct {
	m     MultiChain
	n     int
	count int
	// mean and m2 are chain-major like the lattice: entry v*B+c carries
	// chain c's running mean / centered second moment at vertex v.
	mean []float64
	m2   []float64
}

// NewRhat returns an empty accumulator for the multi-chain engine. The
// diagnostic needs at least two chains.
func NewRhat(m MultiChain) (*Rhat, error) {
	if m.Chains() < 2 {
		return nil, fmt.Errorf("sampler: Gelman–Rubin needs ≥ 2 chains, engine has %d", m.Chains())
	}
	n := m.Lattice().N()
	return &Rhat{
		m:    m,
		n:    n,
		mean: make([]float64, n*m.Chains()),
		m2:   make([]float64, n*m.Chains()),
	}, nil
}

// NewRhat returns an empty accumulator for the batch (the MultiChain
// accumulator specialized to the chromatic engine, kept for callers that
// hold a concrete *Batch).
func (b *Batch) NewRhat() (*Rhat, error) { return NewRhat(b) }

// Observe folds the engine's current state into the running moments. Call
// it between Run chunks (e.g. once per sweep).
func (r *Rhat) Observe() {
	r.count++
	B := r.m.Chains()
	lat := r.m.Lattice()
	for v := 0; v < r.n; v++ {
		row := r.mean[v*B : (v+1)*B]
		m2 := r.m2[v*B : (v+1)*B]
		for c := 0; c < B; c++ {
			x := float64(lat.Get(v, c))
			d := x - row[c]
			row[c] += d / float64(r.count)
			m2[c] += d * (x - row[c])
		}
	}
}

// Count returns the number of observations folded in so far.
func (r *Rhat) Count() int { return r.count }

// At returns the Gelman–Rubin statistic of vertex v over the observations
// so far. A vertex with zero variance everywhere (pinned, or a frozen
// degree of freedom) reports exactly 1; zero within-chain variance with
// disagreeing chains reports +Inf. At least two observations are required.
func (r *Rhat) At(v int) (float64, error) {
	if r.count < 2 {
		return 0, fmt.Errorf("sampler: Gelman–Rubin needs ≥ 2 observations, have %d", r.count)
	}
	B := r.m.Chains()
	T := float64(r.count)
	means := r.mean[v*B : (v+1)*B]
	m2 := r.m2[v*B : (v+1)*B]
	grand := 0.0
	for _, m := range means {
		grand += m
	}
	grand /= float64(B)
	within, between := 0.0, 0.0
	for c := 0; c < B; c++ {
		within += m2[c] / (T - 1)
		d := means[c] - grand
		between += d * d
	}
	within /= float64(B)
	between = between * T / float64(B-1)
	if within == 0 {
		if between == 0 {
			return 1, nil
		}
		return math.Inf(1), nil
	}
	varPlus := (T-1)/T*within + between/T
	return math.Sqrt(varPlus / within), nil
}

// Worst returns the vertex with the largest R̂ and its value — the
// headline convergence number (all chains converged ⇒ every vertex near
// 1).
func (r *Rhat) Worst() (v int, rhat float64, err error) {
	if r.n == 0 {
		return 0, 1, nil
	}
	v, rhat = -1, math.Inf(-1)
	for u := 0; u < r.n; u++ {
		x, aerr := r.At(u)
		if aerr != nil {
			return 0, 0, aerr
		}
		if x > rhat {
			v, rhat = u, x
		}
	}
	return v, rhat, nil
}
