package sampler

// rhat.go: the cross-chain convergence diagnostics on the batched engines.
// B independent lockstep chains are exactly the input the potential scale
// reduction factor R̂ wants: for each vertex, the between-chain variance of
// the per-chain means is compared against the mean within-chain variance;
// R̂ ≈ 1 once every chain explores the same distribution, and values well
// above 1 flag unconverged sweeps. Symbols are treated as numeric scores
// (the standard practice for categorical chains — a heuristic but
// effective stall detector; for q = 2 models it is exactly the
// indicator-mean diagnostic). Per-vertex values are exposed, and the worst
// vertex is the headline number cmd/lsample and the internal/run driver
// report.
//
// Two accumulation structures back the diagnostics:
//
//   - running Welford moments per (vertex, chain), numerically stable over
//     any number of observations, behind the classic whole-chain statistic
//     (At, Worst);
//   - a bounded, evenly thinned observation buffer per (vertex, chain),
//     behind the split statistic (SplitAt, WorstSplit — each retained
//     chain series is split into halves, so a chain that wandered between
//     two modes shows up even when the whole-chain means agree) and the
//     per-vertex effective sample size (ESSAt, MinESS — Geyer
//     initial-monotone autocorrelation sums on the retained series). The
//     buffer holds at most a fixed number of observations per series; when
//     it fills, every other retained observation is dropped and the
//     retention stride doubles, so the retained series stays evenly spaced
//     across the whole history and memory stays bounded no matter how long
//     the run.

import (
	"fmt"
	"math"
)

// DefaultRetain is the per-(vertex, chain) observation-buffer capacity:
// enough resolution for the split and autocorrelation statistics while
// keeping the buffer a few bytes per cell even on large instances.
const DefaultRetain = 256

// Rhat accumulates per-(vertex, chain) observation statistics of a
// multi-chain engine's state and reports the Gelman–Rubin statistic
// (classic and split forms) and the effective sample size per vertex. It
// works with any MultiChain — the chromatic Batch and the batched
// LubyGlauber and LocalMetropolis engines alike.
type Rhat struct {
	m     MultiChain
	n     int
	count int
	// mean and m2 are chain-major like the lattice: entry v*B+c carries
	// chain c's running mean / centered second moment at vertex v.
	mean []float64
	m2   []float64

	// obs is the thinned observation buffer: series (v, c) occupies
	// obs[(v*B+c)*retain : (v*B+c)*retain+rlen], evenly spaced every
	// `stride` observations across the history, most recent last.
	obs    []int32
	retain int
	rlen   int
	stride int
	skip   int

	// seqMean/seqVar are the 2B-sequence scratch of the split statistic,
	// reused across vertices so Worst-style sweeps do not allocate.
	seqMean []float64
	seqVar  []float64
}

// NewRhat returns an empty accumulator for the multi-chain engine with the
// default observation-buffer capacity. The diagnostics need at least two
// chains.
func NewRhat(m MultiChain) (*Rhat, error) { return NewRhatRetain(m, DefaultRetain) }

// NewRhatRetain returns an empty accumulator retaining at most `retain`
// thinned observations per (vertex, chain) series. retain must be an even
// number ≥ 8 (thinning halves the buffer in place).
func NewRhatRetain(m MultiChain, retain int) (*Rhat, error) {
	if m.Chains() < 2 {
		return nil, fmt.Errorf("sampler: Gelman–Rubin needs ≥ 2 chains, engine has %d", m.Chains())
	}
	if retain < 8 || retain%2 != 0 {
		return nil, fmt.Errorf("sampler: observation buffer capacity must be an even number ≥ 8, got %d", retain)
	}
	n := m.Lattice().N()
	B := m.Chains()
	return &Rhat{
		m:       m,
		n:       n,
		mean:    make([]float64, n*B),
		m2:      make([]float64, n*B),
		obs:     make([]int32, n*B*retain),
		retain:  retain,
		stride:  1,
		seqMean: make([]float64, 2*B),
		seqVar:  make([]float64, 2*B),
	}, nil
}

// NewRhat returns an empty accumulator for the batch (the MultiChain
// accumulator specialized to the chromatic engine, kept for callers that
// hold a concrete *Batch).
func (b *Batch) NewRhat() (*Rhat, error) { return NewRhat(b) }

// Observe folds the engine's current state into the running moments and,
// on retention strides, into the observation buffer. Call it between Run
// chunks (e.g. once per sweep-equivalent).
func (r *Rhat) Observe() {
	r.count++
	B := r.m.Chains()
	lat := r.m.Lattice()
	keep := r.skip == 0
	for v := 0; v < r.n; v++ {
		row := r.mean[v*B : (v+1)*B]
		m2 := r.m2[v*B : (v+1)*B]
		for c := 0; c < B; c++ {
			x := lat.Get(v, c)
			xf := float64(x)
			d := xf - row[c]
			row[c] += d / float64(r.count)
			m2[c] += d * (xf - row[c])
			if keep {
				r.obs[(v*B+c)*r.retain+r.rlen] = int32(x)
			}
		}
	}
	if !keep {
		r.skip--
		return
	}
	r.rlen++
	if r.rlen == r.retain {
		// Thin: keep every other retained observation (the most recent one
		// stays retained), double the stride. The retained set remains the
		// multiples of the stride, so the series stays evenly spaced.
		half := r.retain / 2
		for s := 0; s < r.n*B; s++ {
			row := r.obs[s*r.retain : (s+1)*r.retain]
			for i := 0; i < half; i++ {
				row[i] = row[2*i+1]
			}
		}
		r.rlen = half
		r.stride *= 2
	}
	r.skip = r.stride - 1
}

// Count returns the number of observations folded in so far.
func (r *Rhat) Count() int { return r.count }

// Retained returns the number of thinned observations currently buffered
// per (vertex, chain) series and their spacing in observations.
func (r *Rhat) Retained() (length, stride int) { return r.rlen, r.stride }

// SplitReady reports whether enough observations are buffered for the
// split statistic and the effective sample size (≥ 4 retained).
func (r *Rhat) SplitReady() bool { return r.rlen >= 4 }

// series returns the retained observation series of (v, c).
func (r *Rhat) series(v, c int) []int32 {
	B := r.m.Chains()
	off := (v*B + c) * r.retain
	return r.obs[off : off+r.rlen]
}

// At returns the classic whole-chain Gelman–Rubin statistic of vertex v
// over the observations so far. A vertex with zero variance everywhere
// (pinned, or a frozen degree of freedom) reports exactly 1; zero
// within-chain variance with disagreeing chains reports +Inf. At least two
// observations are required.
func (r *Rhat) At(v int) (float64, error) {
	if r.count < 2 {
		return 0, fmt.Errorf("sampler: Gelman–Rubin needs ≥ 2 observations, have %d", r.count)
	}
	B := r.m.Chains()
	T := float64(r.count)
	means := r.mean[v*B : (v+1)*B]
	m2 := r.m2[v*B : (v+1)*B]
	grand := 0.0
	for _, m := range means {
		grand += m
	}
	grand /= float64(B)
	within, between := 0.0, 0.0
	for c := 0; c < B; c++ {
		within += m2[c] / (T - 1)
		d := means[c] - grand
		between += d * d
	}
	within /= float64(B)
	between = between * T / float64(B-1)
	if within == 0 {
		if between == 0 {
			return 1, nil
		}
		return math.Inf(1), nil
	}
	varPlus := (T-1)/T*within + between/T
	return math.Sqrt(varPlus / within), nil
}

// SplitAt returns the split Gelman–Rubin statistic of vertex v: every
// retained chain series is split into first and second halves, and the
// classic statistic is computed over the resulting 2B sequences — so a
// chain drifting within itself (e.g. wandering between modes) inflates
// the statistic even when whole-chain means agree. Conventions match At:
// all-constant sequences report exactly 1, zero within-sequence variance
// with disagreeing sequences reports +Inf. SplitReady must hold.
func (r *Rhat) SplitAt(v int) (float64, error) {
	if !r.SplitReady() {
		return 0, fmt.Errorf("sampler: split R̂ needs ≥ 4 retained observations, have %d", r.rlen)
	}
	B := r.m.Chains()
	m := r.rlen / 2
	mf := float64(m)
	nseq := 2 * B
	grand := 0.0
	for c := 0; c < B; c++ {
		s := r.series(v, c)
		halves := [2][]int32{s[:m], s[len(s)-m:]}
		for h, seq := range halves {
			sum := 0.0
			for _, x := range seq {
				sum += float64(x)
			}
			mean := sum / mf
			vsum := 0.0
			for _, x := range seq {
				d := float64(x) - mean
				vsum += d * d
			}
			r.seqMean[2*c+h] = mean
			r.seqVar[2*c+h] = vsum / (mf - 1)
			grand += mean
		}
	}
	grand /= float64(nseq)
	within, between := 0.0, 0.0
	for i := 0; i < nseq; i++ {
		within += r.seqVar[i]
		d := r.seqMean[i] - grand
		between += d * d
	}
	within /= float64(nseq)
	between = between * mf / float64(nseq-1)
	if within == 0 {
		if between == 0 {
			return 1, nil
		}
		return math.Inf(1), nil
	}
	varPlus := (mf-1)/mf*within + between/mf
	return math.Sqrt(varPlus / within), nil
}

// ESSAt returns the effective sample size of vertex v pooled across
// chains: B·T/τ, where τ is the integrated autocorrelation time estimated
// on the retained series by Geyer's initial-monotone-sequence rule over
// the multi-chain autocorrelations (the Stan estimator: within-chain
// autocovariances against the pooled var⁺, so chains frozen at different
// values drive the ESS to 0 rather than hiding in per-chain terms). When
// the buffer has thinned, the estimate is scaled by the retention stride —
// the retained series stands in for the evenly spaced history it samples.
// A vertex with no variance anywhere (pinned, or frozen identically in
// every chain) is perfectly estimated and reports the full pooled count
// B·Count. SplitReady must hold.
func (r *Rhat) ESSAt(v int) (float64, error) {
	if !r.SplitReady() {
		return 0, fmt.Errorf("sampler: ESS needs ≥ 4 retained observations, have %d", r.rlen)
	}
	B := r.m.Chains()
	L := r.rlen
	Lf := float64(L)
	total := float64(B) * float64(r.count)
	means := r.seqMean[:B]
	grand, W := 0.0, 0.0
	for c := 0; c < B; c++ {
		s := r.series(v, c)
		sum := 0.0
		for _, x := range s {
			sum += float64(x)
		}
		mean := sum / Lf
		means[c] = mean
		grand += mean
		vsum := 0.0
		for _, x := range s {
			d := float64(x) - mean
			vsum += d * d
		}
		W += vsum / (Lf - 1)
	}
	grand /= float64(B)
	W /= float64(B)
	between := 0.0
	for c := 0; c < B; c++ {
		d := means[c] - grand
		between += d * d
	}
	between /= float64(B - 1)
	varPlus := (Lf-1)/Lf*W + between
	if varPlus == 0 {
		// Frozen everywhere: the constant is known exactly.
		return total, nil
	}
	if W == 0 {
		// Chains frozen apart: no amount of further observation helps.
		return 0, nil
	}
	// gamma(l): within-chain autocovariance at lag l, averaged over chains
	// (biased 1/L scaling, per the standard estimator).
	gamma := func(l int) float64 {
		s := 0.0
		for c := 0; c < B; c++ {
			series := r.series(v, c)
			mc := means[c]
			for t := 0; t+l < L; t++ {
				s += (float64(series[t]) - mc) * (float64(series[t+l]) - mc)
			}
		}
		return s / (float64(B) * Lf)
	}
	rho := func(l int) float64 { return 1 - (W-gamma(l))/varPlus }
	// Geyer: sum lag-pair autocorrelations while the pair sums stay
	// non-negative, enforcing monotone non-increase.
	sum, prev := 0.0, math.Inf(1)
	for k := 1; k+1 < L; k += 2 {
		p := rho(k) + rho(k+1)
		if p < 0 {
			break
		}
		if p > prev {
			p = prev
		}
		prev = p
		sum += p
	}
	tau := 1 + 2*sum
	ess := float64(B) * float64(r.stride*L) / tau
	return math.Min(ess, total), nil
}

// Worst returns the vertex with the largest whole-chain R̂ and its value.
func (r *Rhat) Worst() (v int, rhat float64, err error) {
	return r.worstOf(r.At)
}

// WorstSplit returns the vertex with the largest split R̂ and its value —
// the headline convergence number of the adaptive driver (all chains
// converged ⇒ every vertex near 1).
func (r *Rhat) WorstSplit() (v int, rhat float64, err error) {
	return r.worstOf(r.SplitAt)
}

func (r *Rhat) worstOf(at func(int) (float64, error)) (v int, rhat float64, err error) {
	if r.n == 0 {
		return 0, 1, nil
	}
	v, rhat = -1, math.Inf(-1)
	for u := 0; u < r.n; u++ {
		x, aerr := at(u)
		if aerr != nil {
			return 0, 0, aerr
		}
		if x > rhat {
			v, rhat = u, x
		}
	}
	return v, rhat, nil
}

// MinESS returns the vertex with the smallest effective sample size and
// its value — the bottleneck against a min-ESS target. An empty instance
// reports the full pooled count.
func (r *Rhat) MinESS() (v int, ess float64, err error) {
	if r.n == 0 {
		return 0, float64(r.m.Chains()) * float64(r.count), nil
	}
	v, ess = -1, math.Inf(1)
	for u := 0; u < r.n; u++ {
		x, aerr := r.ESSAt(u)
		if aerr != nil {
			return 0, 0, aerr
		}
		if x < ess {
			v, ess = u, x
		}
	}
	return v, ess, nil
}
