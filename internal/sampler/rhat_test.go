package sampler

// rhat_test.go: the Gelman–Rubin accumulator against hand-computed values
// and against its qualitative contract — near 1 on well-mixed chains,
// large when chains are frozen apart.

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/psample"
)

func rhatBatch(t *testing.T, spec *gibbs.Spec, pin dist.Config, B int, seed int64) *Batch {
	t.Helper()
	in, err := gibbs.NewInstance(spec, pin)
	if err != nil {
		t.Fatal(err)
	}
	r, err := psample.NewRules(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatch(r, B, seed)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRhatHandComputed pins the statistic on a fabricated two-chain
// two-observation history by writing the lattice directly.
func TestRhatHandComputed(t *testing.T) {
	spec, err := model.Coloring(graph.Path(2), 5)
	if err != nil {
		t.Fatal(err)
	}
	b := rhatBatch(t, spec, nil, 2, 1)
	acc, err := b.NewRhat()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := acc.At(0); err == nil {
		t.Error("At with <2 observations accepted")
	}
	// Vertex 0 history: chain 0 sees 0,2 (mean 1, var 2); chain 1 sees
	// 4,2 (mean 3, var 2). W=2, B=T·var(means)=2·2=4 → wait: var of
	// {1,3} with m−1=1 denominator is 2, times T=2 gives 4. varPlus =
	// (1/2)·2 + 4/2 = 3; R̂ = sqrt(3/2).
	lat := b.Lattice()
	lat.Set(0, 0, 0)
	lat.Set(0, 1, 4)
	lat.Set(1, 0, 1)
	lat.Set(1, 1, 1)
	acc.Observe()
	lat.Set(0, 0, 2)
	lat.Set(0, 1, 2)
	acc.Observe()
	got, err := acc.At(0)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(1.5)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("R̂(0) = %v, want %v", got, want)
	}
	// Vertex 1 never moved in any chain: exactly 1.
	if got, err := acc.At(1); err != nil || got != 1 {
		t.Errorf("R̂(frozen vertex) = %v, %v; want 1", got, err)
	}
	v, worst, err := acc.Worst()
	if err != nil || v != 0 || worst != got0(t, acc) {
		t.Errorf("Worst() = %d, %v, %v; want vertex 0", v, worst, err)
	}
}

func got0(t *testing.T, acc *Rhat) float64 {
	t.Helper()
	x, err := acc.At(0)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// TestRhatConvergedNearOne runs a well-mixing instance long enough that
// every vertex's R̂ lands near 1.
func TestRhatConvergedNearOne(t *testing.T) {
	spec, err := model.Ising(graph.Cycle(10), 1.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	b := rhatBatch(t, spec, nil, 8, 3)
	acc, err := b.NewRhat()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := b.Run(1); err != nil {
			t.Fatal(err)
		}
		acc.Observe()
	}
	_, worst, err := acc.Worst()
	if err != nil {
		t.Fatal(err)
	}
	if worst > 1.2 || worst < 1 {
		t.Errorf("worst R̂ after 200 sweeps of a fast-mixing chain = %v, want ≈ 1", worst)
	}
}

// TestRhatFrozenChainsDiverge fabricates chains frozen at different values
// — the diagnostic must blow up, not average it away.
func TestRhatFrozenChainsDiverge(t *testing.T) {
	spec, err := model.Coloring(graph.Path(2), 3)
	if err != nil {
		t.Fatal(err)
	}
	b := rhatBatch(t, spec, nil, 2, 1)
	acc, err := b.NewRhat()
	if err != nil {
		t.Fatal(err)
	}
	lat := b.Lattice()
	for i := 0; i < 5; i++ {
		lat.Set(0, 0, 0)
		lat.Set(0, 1, 2)
		acc.Observe()
	}
	got, err := acc.At(0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Errorf("R̂ of frozen disagreeing chains = %v, want +Inf", got)
	}
}

func TestRhatNeedsTwoChains(t *testing.T) {
	spec, err := model.Coloring(graph.Path(2), 3)
	if err != nil {
		t.Fatal(err)
	}
	b := rhatBatch(t, spec, nil, 1, 1)
	if _, err := b.NewRhat(); err == nil {
		t.Error("single-chain R̂ accepted")
	}
}

// TestRhatPinnedVertexIsOne checks the pinned-vertex convention through a
// real run.
func TestRhatPinnedVertexIsOne(t *testing.T) {
	spec, err := model.Hardcore(graph.Cycle(6), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	pin := dist.NewConfig(6)
	pin[3] = model.Out
	b := rhatBatch(t, spec, pin, 4, 7)
	acc, err := b.NewRhat()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := b.Run(1); err != nil {
			t.Fatal(err)
		}
		acc.Observe()
	}
	if got, err := acc.At(3); err != nil || got != 1 {
		t.Errorf("R̂(pinned vertex) = %v, %v; want exactly 1", got, err)
	}
	if acc.Count() != 20 {
		t.Errorf("Count() = %d, want 20", acc.Count())
	}
}
