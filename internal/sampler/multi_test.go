package sampler

// multi_test.go validates the multi-chain side of the registry: NewMulti
// constructs the batched form of every dynamic that has one, reports a
// descriptive error (naming the dynamics that do) for the rest, and the
// generalized R̂ accumulator works on the batched LubyGlauber and
// LocalMetropolis engines exactly as it does on the chromatic Batch.

import (
	"strings"
	"testing"

	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
)

func multiTestInstance(t *testing.T) *gibbs.Instance {
	t.Helper()
	spec, err := model.Hardcore(graph.Cycle(8), 1.1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestMultiNames(t *testing.T) {
	want := []string{"chromatic", "luby", "metropolis"}
	got := MultiNames()
	if len(got) != len(want) {
		t.Fatalf("MultiNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MultiNames() = %v, want %v", got, want)
		}
	}
}

// TestNewMultiBuildsEveryBatchedDynamic constructs each batched dynamic
// through the registry, runs it, and checks the MultiChain surface is
// coherent: B chains, a lattice of matching shape, and State() equal to
// chain 0.
func TestNewMultiBuildsEveryBatchedDynamic(t *testing.T) {
	in := multiTestInstance(t)
	const chains = 4
	for _, name := range MultiNames() {
		t.Run(name, func(t *testing.T) {
			s, err := Create(name, in, Options{Chains: chains, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			m := s.(MultiChain)
			if m.Chains() != chains {
				t.Fatalf("Chains() = %d, want %d", m.Chains(), chains)
			}
			if err := m.Run(10); err != nil {
				t.Fatal(err)
			}
			lat := m.Lattice()
			if lat.N() != in.N() || lat.Chains() != chains {
				t.Errorf("lattice shape %d×%d, want %d×%d", lat.N(), lat.Chains(), in.N(), chains)
			}
			st, c0 := m.State(), m.Chain(0)
			for v := range st {
				if st[v] != c0[v] {
					t.Errorf("State() and Chain(0) disagree at vertex %d: %v vs %v", v, st, c0)
					break
				}
			}
		})
	}
}

// TestNewMultiErrors pins the failure modes: an unknown dynamic, and a
// dynamic without a batched form (the sequential baseline) whose error
// names the dynamics that have one.
func TestNewMultiErrors(t *testing.T) {
	in := multiTestInstance(t)
	if _, err := Create("nosuch", in, Options{Chains: 4, Seed: 1}); err == nil {
		t.Error("unknown dynamic accepted")
	}
	_, err := Create("glauber", in, Options{Chains: 4, Seed: 1})
	if err == nil {
		t.Fatal("sequential baseline accepted as a multi-chain dynamic")
	}
	for _, name := range MultiNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not name batched dynamic %q", err, name)
		}
	}
}

// TestRhatOnBatchedEngines runs the generalized R̂ accumulator over the
// batched LubyGlauber and LocalMetropolis engines: after a healthy burn-in
// on a small well-mixing instance, every vertex must sit near 1.
func TestRhatOnBatchedEngines(t *testing.T) {
	in := multiTestInstance(t)
	for _, name := range []string{"luby", "metropolis"} {
		t.Run(name, func(t *testing.T) {
			s, err := Create(name, in, Options{Chains: 8, Seed: 23})
			if err != nil {
				t.Fatal(err)
			}
			m := s.(MultiChain)
			r, err := NewRhat(m)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Run(50); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 200; i++ {
				if err := m.Run(2); err != nil {
					t.Fatal(err)
				}
				r.Observe()
			}
			v, worst, err := r.Worst()
			if err != nil {
				t.Fatal(err)
			}
			if worst > 1.2 {
				t.Errorf("R̂ = %v at vertex %d after burn-in on a well-mixing chain", worst, v)
			}
		})
	}
}
