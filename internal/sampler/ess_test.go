package sampler

// ess_test.go: the split-R̂ and effective-sample-size surface of the Rhat
// accumulator against analytic expectations on fabricated histories — iid
// chains (ESS ≈ pooled count), perfectly correlated chains (ESS collapses
// by the block length), frozen-apart chains (ESS 0, split R̂ +Inf) — and
// the pinned-vertex convention through real batched LubyGlauber and
// LocalMetropolis runs.

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/psample"
)

// fabric returns a 2-vertex q=16 coloring batch whose lattice the test
// writes directly, plus its accumulator (observations are fabricated, the
// engine never runs).
func fabric(t *testing.T, B int) (*Batch, *Rhat) {
	t.Helper()
	spec, err := model.Coloring(graph.Path(2), 16)
	if err != nil {
		t.Fatal(err)
	}
	b := rhatBatch(t, spec, nil, B, 1)
	acc, err := b.NewRhat()
	if err != nil {
		t.Fatal(err)
	}
	return b, acc
}

// TestESSIIDChains: independent uniform draws have integrated
// autocorrelation time τ = 1, so ESS must come out near the pooled
// observation count B·T (the Geyer estimator is noisy but unbiased-ish;
// a generous band around 1 suffices to separate it from any correlated
// regime).
func TestESSIIDChains(t *testing.T) {
	const B, T = 4, 200
	b, acc := fabric(t, B)
	lat := b.Lattice()
	rng := dist.NewXoshiro(99, 0)
	for i := 0; i < T; i++ {
		for c := 0; c < B; c++ {
			lat.Set(0, c, int(rng.Uint64()%16))
			lat.Set(1, c, int(rng.Uint64()%16))
		}
		acc.Observe()
	}
	if !acc.SplitReady() {
		t.Fatal("SplitReady false after 200 observations")
	}
	for v := 0; v < 2; v++ {
		ess, err := acc.ESSAt(v)
		if err != nil {
			t.Fatal(err)
		}
		ratio := ess / float64(B*T)
		if ratio < 0.5 || ratio > 1.05 {
			t.Errorf("iid ESS(%d)/(B·T) = %v, want ≈ 1", v, ratio)
		}
		rh, err := acc.SplitAt(v)
		if err != nil {
			t.Fatal(err)
		}
		if rh < 0.9 || rh > 1.15 {
			t.Errorf("iid split R̂(%d) = %v, want ≈ 1", v, rh)
		}
	}
}

// TestESSCorrelatedChains: repeating every iid draw k times multiplies the
// integrated autocorrelation time by ≈ k, so ESS must shrink to about
// B·T/k — the statistic the whole adaptive-stopping layer leans on.
func TestESSCorrelatedChains(t *testing.T) {
	const B, T, k = 4, 240, 4
	b, acc := fabric(t, B)
	lat := b.Lattice()
	rng := dist.NewXoshiro(7, 0)
	held := make([]int, B)
	for i := 0; i < T; i++ {
		if i%k == 0 {
			for c := 0; c < B; c++ {
				held[c] = int(rng.Uint64() % 16)
			}
		}
		for c := 0; c < B; c++ {
			lat.Set(0, c, held[c])
			lat.Set(1, c, held[c])
		}
		acc.Observe()
	}
	ess, err := acc.ESSAt(0)
	if err != nil {
		t.Fatal(err)
	}
	ratio := ess / float64(B*T)
	// τ ≈ k ⇒ ratio ≈ 1/k; allow the estimator slack on either side while
	// keeping it clearly below the iid band.
	if ratio < 1.0/(2.5*k) || ratio > 2.5/k {
		t.Errorf("block-correlated ESS/(B·T) = %v, want ≈ 1/%d", ratio, k)
	}
}

// TestESSFrozenApart: chains constant at different values — no further
// observation can reconcile them, so ESS is 0 and split R̂ +Inf.
func TestESSFrozenApart(t *testing.T) {
	const B, T = 2, 40
	b, acc := fabric(t, B)
	lat := b.Lattice()
	for i := 0; i < T; i++ {
		lat.Set(0, 0, 1)
		lat.Set(0, 1, 9)
		lat.Set(1, 0, 3)
		lat.Set(1, 1, 3)
		acc.Observe()
	}
	if ess, err := acc.ESSAt(0); err != nil || ess != 0 {
		t.Errorf("frozen-apart ESS = %v, %v; want 0", ess, err)
	}
	if rh, err := acc.SplitAt(0); err != nil || !math.IsInf(rh, 1) {
		t.Errorf("frozen-apart split R̂ = %v, %v; want +Inf", rh, err)
	}
	// Vertex 1 is constant and identical everywhere: perfectly estimated.
	if ess, err := acc.ESSAt(1); err != nil || ess != float64(B*T) {
		t.Errorf("identical-constant ESS = %v, %v; want %d", ess, err, B*T)
	}
	if rh, err := acc.SplitAt(1); err != nil || rh != 1 {
		t.Errorf("identical-constant split R̂ = %v, %v; want 1", rh, err)
	}
	if v, ess, err := acc.MinESS(); err != nil || v != 0 || ess != 0 {
		t.Errorf("MinESS() = %d, %v, %v; want vertex 0, 0", v, ess, err)
	}
	if v, rh, err := acc.WorstSplit(); err != nil || v != 0 || !math.IsInf(rh, 1) {
		t.Errorf("WorstSplit() = %d, %v, %v; want vertex 0, +Inf", v, rh, err)
	}
}

// TestESSThinningKeepsScale: past the buffer capacity the retained series
// thins but the ESS stays on the full-history scale (stride-scaled), so an
// iid history still reports ESS ≈ B·Count even when Count ≫ retain.
func TestESSThinningKeepsScale(t *testing.T) {
	const B, T = 2, 600 // > DefaultRetain, forces at least one thinning
	b, acc := fabric(t, B)
	lat := b.Lattice()
	rng := dist.NewXoshiro(42, 1)
	for i := 0; i < T; i++ {
		for c := 0; c < B; c++ {
			lat.Set(0, c, int(rng.Uint64()%16))
			lat.Set(1, c, int(rng.Uint64()%16))
		}
		acc.Observe()
	}
	rlen, stride := acc.Retained()
	if stride < 2 || rlen >= DefaultRetain {
		t.Fatalf("Retained() = %d, %d; expected a thinned buffer", rlen, stride)
	}
	ess, err := acc.ESSAt(0)
	if err != nil {
		t.Fatal(err)
	}
	ratio := ess / float64(B*T)
	if ratio < 0.4 || ratio > 1.05 {
		t.Errorf("thinned iid ESS/(B·T) = %v, want ≈ 1", ratio)
	}
}

// TestESSPinnedVertexBatchedEngines runs the real batched LubyGlauber and
// LocalMetropolis engines with a pinned vertex: the pinned vertex never
// moves in any chain, so its split R̂ is exactly 1 and its ESS the full
// pooled count, while free vertices report positive ESS.
func TestESSPinnedVertexBatchedEngines(t *testing.T) {
	spec, err := model.Hardcore(graph.Cycle(6), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	pin := dist.NewConfig(6)
	pin[3] = model.Out
	in, err := gibbs.NewInstance(spec, pin)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"luby", "metropolis"} {
		t.Run(name, func(t *testing.T) {
			s, err := Create(name, in, Options{Chains: 4, Seed: 13})
			if err != nil {
				t.Fatal(err)
			}
			m := s.(MultiChain)
			acc, err := NewRhat(m)
			if err != nil {
				t.Fatal(err)
			}
			sweep, err := SweepRounds(name, in)
			if err != nil {
				t.Fatal(err)
			}
			const obs = 40
			for i := 0; i < obs; i++ {
				if err := m.Run(sweep); err != nil {
					t.Fatal(err)
				}
				acc.Observe()
			}
			if rh, err := acc.SplitAt(3); err != nil || rh != 1 {
				t.Errorf("split R̂(pinned) = %v, %v; want exactly 1", rh, err)
			}
			if ess, err := acc.ESSAt(3); err != nil || ess != float64(4*obs) {
				t.Errorf("ESS(pinned) = %v, %v; want %d", ess, err, 4*obs)
			}
			for _, v := range []int{0, 1} {
				ess, err := acc.ESSAt(v)
				if err != nil {
					t.Fatal(err)
				}
				if ess <= 0 || ess > float64(4*obs) {
					t.Errorf("ESS(free vertex %d) = %v, want in (0, %d]", v, ess, 4*obs)
				}
			}
			// Also pin the per-vertex counters the psample engines expose:
			// counters advanced, so the driver's rate signal is live.
			switch e := m.(type) {
			case *psample.BatchLubyGlauber:
				if e.Updates() <= 0 {
					t.Error("BatchLubyGlauber.Updates() = 0 after runs")
				}
			case *psample.BatchLocalMetropolis:
				if e.Accepts() <= 0 {
					t.Error("BatchLocalMetropolis.Accepts() = 0 after runs")
				}
			}
		})
	}
}

// TestBatchUpdatesCounter: the chromatic engine's update counter is exactly
// sweeps × free vertices × chains (every scheduled update unconditional).
func TestBatchUpdatesCounter(t *testing.T) {
	spec, err := model.Hardcore(graph.Cycle(6), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	pin := dist.NewConfig(6)
	pin[3] = model.Out
	b := rhatBatch(t, spec, pin, 3, 5)
	if err := b.Run(7); err != nil {
		t.Fatal(err)
	}
	want := int64(7 * 5 * 3) // 7 sweeps × 5 free vertices × 3 chains
	if got := b.Updates(); got != want {
		t.Errorf("Updates() = %d, want %d", got, want)
	}
	if err := b.Reset(5); err != nil {
		t.Fatal(err)
	}
	if got := b.Updates(); got != 0 {
		t.Errorf("Updates() after Reset = %d, want 0", got)
	}
}
