package sampler

// chromatic.go: ChromaticGlauber, the single-chain view of the batched
// engine. Where LubyGlauber randomizes its independent sets (paying one
// phase of Luby's algorithm per round and selecting each vertex only with
// probability ≥ 1/(deg+1)), ChromaticGlauber fixes them up front: a greedy
// proper coloring of the interaction graph, computed once, gives a
// deterministic schedule of at most Δ+1 stages per sweep in which *every*
// free vertex is heat-bathed exactly once. The correctness argument is the
// same — each stage updates an independent set, so the simultaneous
// conditionals coincide with the sequential ones and the target Gibbs
// distribution is exactly stationary (pinned by the transition-matrix
// tests) — but the selection overhead and the per-round selection loss are
// gone. The trade against LubyGlauber is symmetry: the coloring is a
// global precomputation, so on the LOCAL model the schedule only runs
// with the coloring distributed as node input
// (psample.ChromaticGlauberLOCAL) — χ rounds per sweep instead of one.

import (
	"repro/internal/dist"
	"repro/internal/psample"
)

// ChromaticGlauber runs one chain of the chromatic heat-bath dynamics.
// One round is one full sweep: χ barrier-separated color-class stages
// updating every free vertex exactly once.
type ChromaticGlauber struct {
	b *Batch
}

// NewChromaticGlauber returns a sampler started from the greedy feasible
// completion of the instance pinning.
func NewChromaticGlauber(r *psample.Rules, seed int64) (*ChromaticGlauber, error) {
	b, err := NewBatch(r, 1, seed)
	if err != nil {
		return nil, err
	}
	return &ChromaticGlauber{b: b}, nil
}

// Batch exposes the underlying single-chain engine (worker override,
// schedule inspection).
func (s *ChromaticGlauber) Batch() *Batch { return s.b }

// Reset restarts the chain from the greedy start with fresh RNG streams.
func (s *ChromaticGlauber) Reset(seed int64) error { return s.b.Reset(seed) }

// Run executes the given number of full sweeps.
func (s *ChromaticGlauber) Run(rounds int) error { return s.b.Run(rounds) }

// State returns a copy of the current configuration.
func (s *ChromaticGlauber) State() dist.Config { return s.b.Chain(0) }

// Rounds returns the number of sweeps executed since the last Reset.
func (s *ChromaticGlauber) Rounds() int { return s.b.Rounds() }
