package sampler

// sampler_test.go validates the registry and the batched engine end to
// end: every registered dynamic must drive every model builder to the
// exact Gibbs distribution within the sampling-noise envelope, the batch
// engine must do so for all of its chains at once (including with a
// forced multi-worker pool, so the chains×blocks partition runs under the
// race detector), and pinning/feasibility invariants must hold throughout.

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/psample"
)

func TestRegistryHasBuiltins(t *testing.T) {
	want := []string{"chromatic", "glauber", "luby", "metropolis"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, name := range want {
		info, ok := Lookup(name)
		if !ok || info.Synopsis == "" {
			t.Errorf("Lookup(%q) = %+v, %v", name, info, ok)
		}
	}
}

func TestNewUnknownDynamic(t *testing.T) {
	spec, err := model.Hardcore(graph.Path(2), 1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Create("nosuch", in, Options{Seed: 1}); err == nil {
		t.Error("unknown dynamic accepted")
	}
	if _, err := SweepRounds("nosuch", in); err == nil {
		t.Error("unknown dynamic accepted by SweepRounds")
	}
}

// TestCreateSelectsEngine pins Create's Options contract: Chains = 0 is
// the single-chain engine, Chains ≥ 1 the batched multi-chain engine
// (which must implement MultiChain), a batched request on a dynamic
// without one is a descriptive error, and the deprecated New/NewMulti
// wrappers agree with Create.
func TestCreateSelectsEngine(t *testing.T) {
	spec, err := model.Hardcore(graph.Cycle(6), 1.2)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Create("nosuch", in, Options{}); err == nil {
		t.Error("unknown dynamic accepted")
	}
	for _, name := range Names() {
		single, err := Create(name, in, Options{Seed: 5})
		if err != nil {
			t.Fatalf("Create(%q, Chains: 0) = %v", name, err)
		}
		if err := single.Run(3); err != nil {
			t.Fatalf("%q single-chain Run: %v", name, err)
		}
	}
	for _, name := range MultiNames() {
		s, err := Create(name, in, Options{Chains: 4, Seed: 5})
		if err != nil {
			t.Fatalf("Create(%q, Chains: 4) = %v", name, err)
		}
		m, ok := s.(MultiChain)
		if !ok {
			t.Fatalf("batched Create(%q) does not implement MultiChain", name)
		}
		if m.Chains() != 4 {
			t.Errorf("Create(%q).Chains() = %d, want 4", name, m.Chains())
		}
		// Construction is a pure function of (name, chains, seed): a second
		// engine must follow the same chain-0 trajectory.
		again, err := Create(name, in, Options{Chains: 4, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		twin := again.(MultiChain)
		if err := m.Run(5); err != nil {
			t.Fatal(err)
		}
		if err := twin.Run(5); err != nil {
			t.Fatal(err)
		}
		got, want := m.Chain(0), twin.Chain(0)
		for v := range got {
			if got[v] != want[v] {
				t.Errorf("two Create calls diverge for %q at vertex %d", name, v)
				break
			}
		}
	}
	// Dynamics without a batched form: a descriptive error, not a panic.
	if _, err := Create("glauber", in, Options{Chains: 4}); err == nil {
		t.Error("Create(glauber, Chains: 4) accepted")
	}
}

func TestSweepRoundsPerDynamic(t *testing.T) {
	spec, err := model.Hardcore(graph.Cycle(8), 1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"glauber": 8, "luby": 3, "metropolis": 1, "chromatic": 1}
	for name, w := range want {
		got, err := SweepRounds(name, in)
		if err != nil || got != w {
			t.Errorf("SweepRounds(%q) = %d, %v; want %d", name, got, err, w)
		}
	}
}

// TestEveryDynamicMatchesExact runs each registered dynamic through the
// uniform interface on a hardcore cycle and pins its output distribution
// to the brute-force referee. This is the registry-level analogue of the
// per-engine TV tests in internal/psample.
func TestEveryDynamicMatchesExact(t *testing.T) {
	spec, err := model.Hardcore(graph.Cycle(6), 1.2)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := exact.JointDistribution(in)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 4000
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			s, err := Create(name, in, Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			sweep, err := SweepRounds(name, in)
			if err != nil {
				t.Fatal(err)
			}
			emp := dist.NewEmpirical(in.N())
			for i := 0; i < trials; i++ {
				if err := s.Reset(int64(2000 + i)); err != nil {
					t.Fatal(err)
				}
				if err := s.Run(40 * sweep); err != nil {
					t.Fatal(err)
				}
				emp.Observe(s.State())
			}
			got, err := emp.Joint()
			if err != nil {
				t.Fatal(err)
			}
			tv, err := dist.TVJoint(truth, got)
			if err != nil {
				t.Fatal(err)
			}
			tol := 2.5 * dist.ExpectedTVNoise(truth.Len(), trials)
			if tv > tol {
				t.Errorf("TV vs exact = %v > envelope %v", tv, tol)
			}
			if s.Rounds() != 40*sweep {
				t.Errorf("Rounds() = %d, want %d", s.Rounds(), 40*sweep)
			}
		})
	}
}

// TestBatchMatchesExact drives B chains at once and pins the pooled
// output distribution: chains draw from disjoint parts of the worker RNG
// streams, so all B final states of one run are independent samples.
func TestBatchMatchesExact(t *testing.T) {
	type specCase struct {
		name string
		spec *gibbs.Spec
		err  error
	}
	hc, hcErr := model.Hardcore(graph.Cycle(6), 1.2)
	is, isErr := model.Ising(graph.Cycle(6), 0.5, 0.8)
	col, colErr := model.Coloring(graph.Path(3), 4)
	cases := []specCase{
		{"hardcore", hc, hcErr},
		{"ising", is, isErr},
		{"coloring", col, colErr},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.err != nil {
				t.Fatal(c.err)
			}
			in, err := gibbs.NewInstance(c.spec, nil)
			if err != nil {
				t.Fatal(err)
			}
			truth, err := exact.JointDistribution(in)
			if err != nil {
				t.Fatal(err)
			}
			r, err := psample.NewRules(in)
			if err != nil {
				t.Fatal(err)
			}
			const B, runs = 16, 400
			b, err := NewBatch(r, B, 1)
			if err != nil {
				t.Fatal(err)
			}
			emp := dist.NewEmpirical(in.N())
			for i := 0; i < runs; i++ {
				if err := b.Reset(int64(3000 + i)); err != nil {
					t.Fatal(err)
				}
				if err := b.Run(40); err != nil {
					t.Fatal(err)
				}
				for ch := 0; ch < B; ch++ {
					emp.Observe(b.Chain(ch))
				}
			}
			got, err := emp.Joint()
			if err != nil {
				t.Fatal(err)
			}
			tv, err := dist.TVJoint(truth, got)
			if err != nil {
				t.Fatal(err)
			}
			tol := 2.5 * dist.ExpectedTVNoise(truth.Len(), B*runs)
			if tv > tol {
				t.Errorf("TV vs exact = %v > envelope %v", tv, tol)
			}
		})
	}
}

// TestBatchForcedWorkers forces a multi-worker pool on an instance small
// enough that the default heuristic would run inline, so the
// chains×blocks partition and its barriers execute under the race
// detector, and checks feasibility and pinning of every chain throughout.
func TestBatchForcedWorkers(t *testing.T) {
	spec, err := model.Hardcore(graph.Cycle(7), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	pin := dist.NewConfig(7)
	pin[2] = model.Out
	in, err := gibbs.NewInstance(spec, pin)
	if err != nil {
		t.Fatal(err)
	}
	r, err := psample.NewRules(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3} {
		for _, B := range []int{1, 5, 33} {
			b, err := NewBatch(r, B, 17)
			if err != nil {
				t.Fatal(err)
			}
			b.Workers = workers
			for batch := 0; batch < 6; batch++ {
				if err := b.Run(4); err != nil {
					t.Fatal(err)
				}
				for ch := 0; ch < B; ch++ {
					cfg := b.Chain(ch)
					if cfg[2] != model.Out {
						t.Fatalf("workers=%d B=%d chain %d: pinning violated: %v", workers, B, ch, cfg)
					}
					w, err := spec.Weight(cfg)
					if err != nil || w <= 0 {
						t.Fatalf("workers=%d B=%d chain %d: infeasible %v (w=%v err=%v)", workers, B, ch, cfg, w, err)
					}
				}
			}
			if b.Rounds() != 24 {
				t.Errorf("Rounds() = %d, want 24", b.Rounds())
			}
		}
	}
}

// TestBatchChainsDecorrelated checks that distinct chains actually evolve
// independently: after a few sweeps on a large-entropy instance the B
// chains must not all agree (they start identical, so any RNG-stream
// aliasing across chains would keep them in lockstep).
func TestBatchChainsDecorrelated(t *testing.T) {
	spec, err := model.Ising(graph.Cycle(12), 1.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := psample.NewRules(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatch(r, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Run(10); err != nil {
		t.Fatal(err)
	}
	first := b.Chain(0)
	distinct := false
	for ch := 1; ch < b.Chains(); ch++ {
		if !b.Chain(ch).Equal(first) {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Error("all 8 chains identical after 10 sweeps — chain randomness is aliased")
	}
}

func TestBatchRejectsBadChainCount(t *testing.T) {
	spec, err := model.Hardcore(graph.Path(2), 1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := psample.NewRules(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBatch(r, 0, 1); err == nil {
		t.Error("0 chains accepted")
	}
}

// TestBatchFullyPinned checks the degenerate schedule: with every vertex
// pinned there are no stages and sweeps are counted no-ops.
func TestBatchFullyPinned(t *testing.T) {
	spec, err := model.Hardcore(graph.Path(2), 1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(spec, dist.Config{model.Out, model.Out})
	if err != nil {
		t.Fatal(err)
	}
	r, err := psample.NewRules(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatch(r, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Run(5); err != nil {
		t.Fatal(err)
	}
	if b.Rounds() != 5 {
		t.Errorf("Rounds() = %d, want 5", b.Rounds())
	}
	if cfg := b.Chain(1); cfg[0] != model.Out || cfg[1] != model.Out {
		t.Errorf("pinned state moved: %v", cfg)
	}
}
