package sampler

// adapters.go plugs the existing dynamics into the Sampler interface and
// registers all four built-ins. The psample engines already satisfy the
// interface; the sequential chain needs a thin adapter that owns its RNG
// stream (glauber.Chain takes the generator per call), and the chromatic
// engine is the single-chain view of the batched engine.

import (
	"math/rand"

	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/glauber"
	"repro/internal/psample"
)

func init() {
	Register(Info{
		Name:     "glauber",
		Synopsis: "sequential random-scan heat-bath (the Θ(n log n)-update baseline); one round = one single-site update",
		New:      newSeqGlauber,
		SweepRounds: func(in *gibbs.Instance) int {
			return max(in.N(), 1)
		},
	})
	Register(Info{
		Name:     "luby",
		Synopsis: "LubyGlauber: one Luby phase picks an independent set, simultaneous heat-bath updates; one round = one phase",
		New: func(in *gibbs.Instance, seed int64) (Sampler, error) {
			r, err := psample.NewRules(in)
			if err != nil {
				return nil, err
			}
			s, err := psample.NewLubyGlauber(r, seed)
			if err != nil {
				return nil, err
			}
			return s, nil
		},
		SweepRounds: func(in *gibbs.Instance) int {
			// A vertex wins a phase with probability ≥ 1/(Δ+1).
			return in.Spec.G.MaxDegree() + 1
		},
		NewBatch: func(in *gibbs.Instance, chains int, seed int64) (MultiChain, error) {
			r, err := psample.NewRules(in)
			if err != nil {
				return nil, err
			}
			return psample.NewBatchLubyGlauber(r, chains, seed)
		},
	})
	Register(Info{
		Name:     "metropolis",
		Synopsis: "LocalMetropolis: every vertex proposes every round, per-factor filter acceptance; one round = one proposal round",
		New: func(in *gibbs.Instance, seed int64) (Sampler, error) {
			r, err := psample.NewRules(in)
			if err != nil {
				return nil, err
			}
			s, err := psample.NewLocalMetropolis(r, seed)
			if err != nil {
				return nil, err
			}
			return s, nil
		},
		SweepRounds: func(in *gibbs.Instance) int { return 1 },
		NewBatch: func(in *gibbs.Instance, chains int, seed int64) (MultiChain, error) {
			r, err := psample.NewRules(in)
			if err != nil {
				return nil, err
			}
			return psample.NewBatchLocalMetropolis(r, chains, seed)
		},
	})
	Register(Info{
		Name:     "chromatic",
		Synopsis: "ChromaticGlauber: deterministic greedy-coloring schedule, one color class heat-bathed per stage; one round = one full χ-stage sweep",
		New: func(in *gibbs.Instance, seed int64) (Sampler, error) {
			r, err := psample.NewRules(in)
			if err != nil {
				return nil, err
			}
			s, err := NewChromaticGlauber(r, seed)
			if err != nil {
				return nil, err
			}
			return s, nil
		},
		SweepRounds: func(in *gibbs.Instance) int { return 1 },
		NewBatch: func(in *gibbs.Instance, chains int, seed int64) (MultiChain, error) {
			r, err := psample.NewRules(in)
			if err != nil {
				return nil, err
			}
			return NewBatch(r, chains, seed)
		},
	})
}

// seqGlauber adapts glauber.Chain to the Sampler interface: it owns the
// RNG stream (stream 0 of the seed) and counts single-site updates as
// rounds.
type seqGlauber struct {
	chain  *glauber.Chain
	rng    *rand.Rand
	rounds int
}

func newSeqGlauber(in *gibbs.Instance, seed int64) (Sampler, error) {
	chain, err := glauber.New(in)
	if err != nil {
		return nil, err
	}
	return &seqGlauber{chain: chain, rng: dist.SeedStream(seed, 0)}, nil
}

func (s *seqGlauber) Reset(seed int64) error {
	if err := s.chain.Reset(); err != nil {
		return err
	}
	s.rng = dist.SeedStream(seed, 0)
	s.rounds = 0
	return nil
}

func (s *seqGlauber) Run(rounds int) error {
	if err := s.chain.Run(rounds, s.rng); err != nil {
		return err
	}
	s.rounds += rounds
	return nil
}

func (s *seqGlauber) State() dist.Config { return s.chain.State() }

func (s *seqGlauber) Rounds() int { return s.rounds }
