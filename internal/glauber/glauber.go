// Package glauber implements single-site Glauber dynamics (heat-bath
// updates) for Gibbs distributions — the classical sequential MCMC sampler
// that the paper's distributed samplers are measured against. Glauber
// dynamics is the natural baseline: it is inherently sequential
// (Θ(n log n) single-site updates even when rapidly mixing, and each update
// conditions on the current global state), whereas the paper's point is
// that in the uniqueness regime the same distributions admit O(polylog n)
// *round* samplers with exact output. The package also provides mixing
// diagnostics used by the ablation benchmarks.
package glauber

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
	"repro/internal/state"
)

// Chain is a Glauber dynamics chain over a Gibbs instance: pinned vertices
// never move; free vertices are resampled from their exact conditional
// marginal given the rest of the current state. The configuration lives in
// a single-chain state.Lattice (one byte per vertex for every model this
// repo builds) and each update runs on the compiled evaluation engine,
// performing no heap allocation as long as every factor at the updated
// vertex is table-backed (always true for the internal/model builders;
// closure factors above the table cap allocate a scope buffer per
// evaluation).
type Chain struct {
	in    *gibbs.Instance
	eng   *gibbs.Compiled
	state *state.Lattice
	free  []int
	steps int
	// cond is the reusable conditional-weight buffer of length q.
	cond []float64
}

// ErrNoFeasibleStart indicates that no feasible initial state could be
// constructed.
var ErrNoFeasibleStart = errors.New("glauber: no feasible initial state")

// New returns a chain started from the greedy feasible completion of the
// instance pinning (for locally admissible distributions this always
// exists).
func New(in *gibbs.Instance) (*Chain, error) {
	eng := in.Spec.Compiled()
	start, err := eng.GreedyCompletion(in.Pinned)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoFeasibleStart, err)
	}
	w, err := eng.Weight(start)
	if err != nil {
		return nil, err
	}
	if w <= 0 {
		return nil, ErrNoFeasibleStart
	}
	lat, err := state.New(in.N(), 1, in.Q())
	if err != nil {
		return nil, err
	}
	if err := lat.SetChain(0, start); err != nil {
		return nil, err
	}
	return &Chain{
		in:    in,
		eng:   eng,
		state: lat,
		free:  in.FreeVertices(),
		cond:  make([]float64, in.Q()),
	}, nil
}

// State returns a copy of the current configuration.
func (c *Chain) State() dist.Config { return c.state.Chain(0) }

// Steps returns the number of single-site updates performed.
func (c *Chain) Steps() int { return c.steps }

// Reset restarts the chain from the greedy feasible completion of the
// instance pinning and zeroes the step counter, mirroring the Reset of the
// distributed engines so all dynamics restart the same way.
func (c *Chain) Reset() error {
	start, err := c.eng.GreedyCompletion(c.in.Pinned)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNoFeasibleStart, err)
	}
	if err := c.state.SetChain(0, start); err != nil {
		return err
	}
	c.steps = 0
	return nil
}

// HeatBath performs one heat-bath update at vertex v of chain `chain` in
// place: the conditional distribution of v given the rest of the chain is
// proportional to the product of the factors containing v (all other
// factors cancel), computed by the compiled CondWeightsLattice kernel into
// cond (length ≥ q) and drawn by dist.SampleWeights — zero heap
// allocations in steady state. This single update rule is shared by the
// sequential chain and by the distributed LubyGlauber sampler
// (internal/psample) in both its harnesses.
func HeatBath(eng *gibbs.Compiled, l *state.Lattice, chain, v int, cond []float64, rng *rand.Rand) error {
	if cum, last, ok := eng.CondLookupLattice(l, chain, v); ok {
		// The conditional-CDF cache covers this neighborhood: the cached
		// cumulative row replaces the factor walk, and CondDrawCum maps the
		// same single uniform to the same symbol dist.SampleWeights would
		// return (uncovered calls — including bad rows — fall through and
		// keep the uncached path's diagnostics).
		l.Set(v, chain, gibbs.CondDrawCum(cum, last, rng.Float64()))
		return nil
	}
	w, err := eng.CondWeightsLattice(l, chain, v, cond)
	if err != nil {
		return fmt.Errorf("glauber: conditional at %d: %w", v, err)
	}
	x, err := dist.SampleWeights(w, rng)
	if err != nil {
		return fmt.Errorf("glauber: conditional at %d: %w", v, err)
	}
	l.Set(v, chain, x)
	return nil
}

// HeatBathX is HeatBath drawing from a value-type dist.Xoshiro stream —
// the variant the sharded psample engines run so their hot loops make no
// *rand.Rand interface calls. Identical weights, identical walk: for equal
// uniforms the two variants update to the same symbol.
func HeatBathX(eng *gibbs.Compiled, l *state.Lattice, chain, v int, cond []float64, rng *dist.Xoshiro) error {
	if cum, last, ok := eng.CondLookupLattice(l, chain, v); ok {
		l.Set(v, chain, gibbs.CondDrawCum(cum, last, rng.Float64()))
		return nil
	}
	w, err := eng.CondWeightsLattice(l, chain, v, cond)
	if err != nil {
		return fmt.Errorf("glauber: conditional at %d: %w", v, err)
	}
	x, err := dist.SampleWeightsX(w, rng)
	if err != nil {
		return fmt.Errorf("glauber: conditional at %d: %w", v, err)
	}
	l.Set(v, chain, x)
	return nil
}

// Step performs one heat-bath update at a uniformly random free vertex.
func (c *Chain) Step(rng *rand.Rand) error {
	if len(c.free) == 0 {
		c.steps++
		return nil
	}
	v := c.free[rng.Intn(len(c.free))]
	if err := HeatBath(c.eng, c.state, 0, v, c.cond, rng); err != nil {
		return err
	}
	c.steps++
	return nil
}

// Run performs k single-site updates.
func (c *Chain) Run(k int, rng *rand.Rand) error {
	for i := 0; i < k; i++ {
		if err := c.Step(rng); err != nil {
			return err
		}
	}
	return nil
}

// Sample runs a fresh chain for the given number of sweeps (n single-site
// updates per sweep) and returns the final state — the standard approximate
// MCMC sampler.
func Sample(in *gibbs.Instance, sweeps int, rng *rand.Rand) (dist.Config, error) {
	c, err := New(in)
	if err != nil {
		return nil, err
	}
	if err := c.Run(sweeps*max(1, in.N()), rng); err != nil {
		return nil, err
	}
	return c.State(), nil
}

// MixingPoint is one measurement of empirical mixing: TV distance between
// the chain's marginal state distribution after `Sweeps` sweeps and the
// exact distribution.
type MixingPoint struct {
	Sweeps int
	TV     float64
}

// MeasureMixing estimates the TV distance between the chain's joint state
// distribution after each sweep budget and the exact distribution, using
// `trials` independent chains per budget (small instances only: needs the
// brute-force referee).
func MeasureMixing(in *gibbs.Instance, sweepBudgets []int, trials int, rng *rand.Rand) ([]MixingPoint, error) {
	truth, err := exact.JointDistribution(in)
	if err != nil {
		return nil, err
	}
	var out []MixingPoint
	for _, sweeps := range sweepBudgets {
		emp := dist.NewEmpirical(in.N())
		for i := 0; i < trials; i++ {
			cfg, err := Sample(in, sweeps, rng)
			if err != nil {
				return nil, err
			}
			emp.Observe(cfg)
		}
		got, err := emp.Joint()
		if err != nil {
			return nil, err
		}
		tv, err := dist.TVJoint(truth, got)
		if err != nil {
			return nil, err
		}
		out = append(out, MixingPoint{Sweeps: sweeps, TV: tv})
	}
	return out, nil
}
