// Package glauber implements single-site Glauber dynamics (heat-bath
// updates) for Gibbs distributions — the classical sequential MCMC sampler
// that the paper's distributed samplers are measured against. Glauber
// dynamics is the natural baseline: it is inherently sequential
// (Θ(n log n) single-site updates even when rapidly mixing, and each update
// conditions on the current global state), whereas the paper's point is
// that in the uniqueness regime the same distributions admit O(polylog n)
// *round* samplers with exact output. The package also provides mixing
// diagnostics used by the ablation benchmarks.
package glauber

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
)

// Chain is a Glauber dynamics chain over a Gibbs instance: pinned vertices
// never move; free vertices are resampled from their exact conditional
// marginal given the rest of the current state.
type Chain struct {
	in    *gibbs.Instance
	state dist.Config
	free  []int
	steps int
}

// ErrNoFeasibleStart indicates that no feasible initial state could be
// constructed.
var ErrNoFeasibleStart = errors.New("glauber: no feasible initial state")

// New returns a chain started from the greedy feasible completion of the
// instance pinning (for locally admissible distributions this always
// exists).
func New(in *gibbs.Instance) (*Chain, error) {
	start, err := in.Spec.GreedyCompletion(in.Pinned)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoFeasibleStart, err)
	}
	w, err := in.Spec.Weight(start)
	if err != nil {
		return nil, err
	}
	if w <= 0 {
		return nil, ErrNoFeasibleStart
	}
	return &Chain{in: in, state: start, free: in.FreeVertices()}, nil
}

// State returns a copy of the current configuration.
func (c *Chain) State() dist.Config { return c.state.Clone() }

// Steps returns the number of single-site updates performed.
func (c *Chain) Steps() int { return c.steps }

// conditional computes the heat-bath distribution of vertex v given the
// current values of all other vertices: proportional to the product of the
// factors containing v (all other factors cancel).
func (c *Chain) conditional(v int) (dist.Dist, error) {
	q := c.in.Q()
	w := make([]float64, q)
	saved := c.state[v]
	for x := 0; x < q; x++ {
		c.state[v] = x
		wx := 1.0
		for _, fi := range c.in.Spec.FactorsAt(v) {
			f := c.in.Spec.Factors[fi]
			assign := make([]int, len(f.Scope))
			for j, u := range f.Scope {
				assign[j] = c.state[u]
			}
			wx *= f.Eval(assign)
			if wx == 0 {
				break
			}
		}
		w[x] = wx
	}
	c.state[v] = saved
	d, err := dist.FromWeights(w)
	if err != nil {
		return nil, fmt.Errorf("glauber: conditional at %d: %w", v, err)
	}
	return d, nil
}

// Step performs one heat-bath update at a uniformly random free vertex.
func (c *Chain) Step(rng *rand.Rand) error {
	if len(c.free) == 0 {
		c.steps++
		return nil
	}
	v := c.free[rng.Intn(len(c.free))]
	d, err := c.conditional(v)
	if err != nil {
		return err
	}
	c.state[v] = d.Sample(rng)
	c.steps++
	return nil
}

// Run performs k single-site updates.
func (c *Chain) Run(k int, rng *rand.Rand) error {
	for i := 0; i < k; i++ {
		if err := c.Step(rng); err != nil {
			return err
		}
	}
	return nil
}

// Sample runs a fresh chain for the given number of sweeps (n single-site
// updates per sweep) and returns the final state — the standard approximate
// MCMC sampler.
func Sample(in *gibbs.Instance, sweeps int, rng *rand.Rand) (dist.Config, error) {
	c, err := New(in)
	if err != nil {
		return nil, err
	}
	if err := c.Run(sweeps*max(1, in.N()), rng); err != nil {
		return nil, err
	}
	return c.State(), nil
}

// MixingPoint is one measurement of empirical mixing: TV distance between
// the chain's marginal state distribution after `Sweeps` sweeps and the
// exact distribution.
type MixingPoint struct {
	Sweeps int
	TV     float64
}

// MeasureMixing estimates the TV distance between the chain's joint state
// distribution after each sweep budget and the exact distribution, using
// `trials` independent chains per budget (small instances only: needs the
// brute-force referee).
func MeasureMixing(in *gibbs.Instance, sweepBudgets []int, trials int, rng *rand.Rand) ([]MixingPoint, error) {
	truth, err := exact.JointDistribution(in)
	if err != nil {
		return nil, err
	}
	var out []MixingPoint
	for _, sweeps := range sweepBudgets {
		emp := dist.NewEmpirical(in.N())
		for i := 0; i < trials; i++ {
			cfg, err := Sample(in, sweeps, rng)
			if err != nil {
				return nil, err
			}
			emp.Observe(cfg)
		}
		got, err := emp.Joint()
		if err != nil {
			return nil, err
		}
		tv, err := dist.TVJoint(truth, got)
		if err != nil {
			return nil, err
		}
		out = append(out, MixingPoint{Sweeps: sweeps, TV: tv})
	}
	return out, nil
}
