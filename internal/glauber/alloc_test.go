//go:build !race

package glauber

import (
	"math/rand"
	"testing"

	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
)

// TestStepZeroAllocs enforces the compiled-engine guarantee that a
// steady-state heat-bath update allocates nothing — the regression gate
// behind BenchmarkGlauberStep's 0 allocs/op. Excluded under the race
// detector, whose instrumentation perturbs allocation accounting.
func TestStepZeroAllocs(t *testing.T) {
	g := graph.Torus(8, 8)
	spec, err := model.Hardcore(g, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	avg := testing.AllocsPerRun(1000, func() {
		if err := chain.Step(rng); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("Glauber Step allocates %.2f objects/op, want 0", avg)
	}
}
