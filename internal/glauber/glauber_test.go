package glauber

import (
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
)

func hardcoreInstance(t *testing.T, g *graph.Graph, lambda float64, pinned dist.Config) *gibbs.Instance {
	t.Helper()
	s, err := model.Hardcore(g, lambda)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(s, pinned)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestChainStaysFeasible(t *testing.T) {
	g := graph.Cycle(8)
	in := hardcoreInstance(t, g, 1.5, nil)
	c, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(101))
	for i := 0; i < 500; i++ {
		if err := c.Step(rng); err != nil {
			t.Fatal(err)
		}
		w, err := in.Spec.Weight(c.State())
		if err != nil || w <= 0 {
			t.Fatalf("step %d: infeasible state %v (w=%v err=%v)", i, c.State(), w, err)
		}
	}
	if c.Steps() != 500 {
		t.Errorf("steps = %d", c.Steps())
	}
}

func TestChainRespectsPinning(t *testing.T) {
	g := graph.Path(5)
	pin := dist.Config{1, dist.Unset, dist.Unset, dist.Unset, 0}
	in := hardcoreInstance(t, g, 1, pin)
	c, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(102))
	if err := c.Run(300, rng); err != nil {
		t.Fatal(err)
	}
	s := c.State()
	if s[0] != 1 || s[4] != 0 {
		t.Errorf("pinning violated: %v", s)
	}
}

func TestStationaryDistribution(t *testing.T) {
	// On a rapidly mixing instance, long runs should match the Gibbs
	// distribution.
	g := graph.Cycle(5)
	in := hardcoreInstance(t, g, 1.2, nil)
	truth, err := exact.JointDistribution(in)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(103))
	emp := dist.NewEmpirical(5)
	const trials = 6000
	for i := 0; i < trials; i++ {
		cfg, err := Sample(in, 20, rng)
		if err != nil {
			t.Fatal(err)
		}
		emp.Observe(cfg)
	}
	got, err := emp.Joint()
	if err != nil {
		t.Fatal(err)
	}
	tv, err := dist.TVJoint(truth, got)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.05 {
		t.Errorf("Glauber stationary TV = %v", tv)
	}
}

func TestMeasureMixingMonotone(t *testing.T) {
	g := graph.Cycle(6)
	in := hardcoreInstance(t, g, 1, nil)
	rng := rand.New(rand.NewSource(104))
	points, err := MeasureMixing(in, []int{0, 4, 32}, 3000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %v", points)
	}
	// TV after a long run must be far smaller than at the (deterministic)
	// start.
	if points[2].TV > 0.5*points[0].TV {
		t.Errorf("mixing not observed: %v", points)
	}
}

func TestNoFeasibleStart(t *testing.T) {
	// 1-coloring of an edge cannot start.
	g := graph.Path(2)
	s, err := model.Coloring(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(in); err == nil {
		t.Error("infeasible model started")
	}
}

func TestFullyPinnedChain(t *testing.T) {
	g := graph.Path(2)
	in := hardcoreInstance(t, g, 1, dist.Config{0, 1})
	c, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(105))
	if err := c.Run(10, rng); err != nil {
		t.Fatal(err)
	}
	if s := c.State(); s[0] != 0 || s[1] != 1 {
		t.Errorf("fully pinned chain moved: %v", s)
	}
}

func TestColoringChain(t *testing.T) {
	// Glauber on proper colorings with q ≥ Δ+2 is ergodic; check
	// stationarity on a small instance.
	s, err := model.Coloring(graph.Cycle(4), 4)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := exact.JointDistribution(in)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(106))
	emp := dist.NewEmpirical(4)
	for i := 0; i < 6000; i++ {
		cfg, err := Sample(in, 15, rng)
		if err != nil {
			t.Fatal(err)
		}
		emp.Observe(cfg)
	}
	got, err := emp.Joint()
	if err != nil {
		t.Fatal(err)
	}
	tv, err := dist.TVJoint(truth, got)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.06 {
		t.Errorf("coloring Glauber TV = %v", tv)
	}
}
