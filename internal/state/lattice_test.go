package state

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dist"
)

func TestNewPicksRepresentation(t *testing.T) {
	small, err := New(4, 3, 5)
	if err != nil || !small.Compact() {
		t.Fatalf("New(4,3,5) = %v, %v; want compact", small, err)
	}
	big, err := New(4, 3, MaxCompactQ+1)
	if err != nil || big.Compact() {
		t.Fatalf("New with q=%d = %v, %v; want wide", MaxCompactQ+1, big, err)
	}
	edge, err := New(4, 1, MaxCompactQ)
	if err != nil || !edge.Compact() {
		t.Fatalf("New with q=%d = %v, %v; want compact", MaxCompactQ, edge, err)
	}
}

func TestDomainErrors(t *testing.T) {
	cases := []struct{ n, chains, q int }{
		{-1, 1, 2}, {4, 0, 2}, {4, 1, 0}, {4, 1, -3},
	}
	for _, c := range cases {
		_, err := New(c.n, c.chains, c.q)
		var de *DomainError
		if !errors.As(err, &de) {
			t.Errorf("New(%d,%d,%d) error %v, want *DomainError", c.n, c.chains, c.q, err)
		}
	}
	var de *DomainError
	if _, err := NewCompact(4, 1, MaxCompactQ+1); !errors.As(err, &de) {
		t.Errorf("NewCompact over the limit: %v, want *DomainError", de)
	}
	if _, err := NewWide(4, 1, MaxCompactQ+1); err != nil {
		t.Errorf("NewWide over the compact limit must work: %v", err)
	}
}

func TestSetGetRoundtrip(t *testing.T) {
	for _, mk := range []func(n, chains, q int) (*Lattice, error){NewCompact, NewWide} {
		l, err := mk(3, 2, 7)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 3; v++ {
			for c := 0; c < 2; c++ {
				if got := l.Get(v, c); got != dist.Unset {
					t.Fatalf("fresh cell (%d,%d) = %d, want Unset", v, c, got)
				}
			}
		}
		l.Set(1, 1, 6)
		l.Set(2, 0, 0)
		if l.Get(1, 1) != 6 || l.Get(2, 0) != 0 || l.Get(1, 0) != dist.Unset {
			t.Fatalf("roundtrip failed: %v %v %v", l.Get(1, 1), l.Get(2, 0), l.Get(1, 0))
		}
		l.Set(1, 1, dist.Unset)
		if l.Get(1, 1) != dist.Unset {
			t.Fatalf("unset did not stick: %d", l.Get(1, 1))
		}
	}
}

func TestChainPackUnpack(t *testing.T) {
	chains := []dist.Config{{0, 1, 2}, {2, 0, 1}}
	l, err := Pack(3, 3, chains)
	if err != nil {
		t.Fatal(err)
	}
	for c := range chains {
		if got := l.Chain(c); !got.Equal(chains[c]) {
			t.Errorf("chain %d roundtrips to %v", c, got)
		}
	}
	dst := dist.NewConfig(3)
	l.ReadChain(1, dst)
	if !dst.Equal(chains[1]) {
		t.Errorf("ReadChain = %v", dst)
	}
	if _, err := Pack(3, 3, []dist.Config{{0, 1}}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Pack(3, 3, []dist.Config{{0, 1, 3}}); err == nil {
		t.Error("out-of-domain symbol accepted")
	}
	if err := l.SetChain(0, dist.Config{0, dist.Unset, 2}); err != nil {
		t.Fatal(err)
	}
	if got := l.Get(1, 0); got != dist.Unset {
		t.Errorf("SetChain kept Unset as %d", got)
	}
}

func TestBroadcastAndClone(t *testing.T) {
	for _, mk := range []func(n, chains, q int) (*Lattice, error){NewCompact, NewWide} {
		l, err := mk(3, 4, 5)
		if err != nil {
			t.Fatal(err)
		}
		cfg := dist.Config{4, 0, 2}
		if err := l.Broadcast(cfg); err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 4; c++ {
			if got := l.Chain(c); !got.Equal(cfg) {
				t.Fatalf("chain %d = %v after broadcast", c, got)
			}
		}
		cl := l.Clone()
		cl.Set(0, 0, 1)
		if l.Get(0, 0) != 4 {
			t.Error("Clone aliases the original")
		}
	}
}

func TestValid(t *testing.T) {
	if !Valid(uint8(3), 5) || Valid(uint8(5), 5) || Valid(uint8(unset8), 255) {
		t.Error("compact Valid wrong")
	}
	if !Valid(4, 5) || Valid(5, 5) || Valid(dist.Unset, 5) {
		t.Error("wide Valid wrong")
	}
}

func TestCompactLimitHook(t *testing.T) {
	restore := SetCompactLimitForTest(0)
	l, err := New(2, 1, 2)
	restore()
	if err != nil || l.Compact() {
		t.Fatalf("forced-wide New = %v, %v", l, err)
	}
	l2, err := New(2, 1, 2)
	if err != nil || !l2.Compact() {
		t.Fatalf("restore failed: %v, %v", l2, err)
	}
}

func TestCheckAssigned(t *testing.T) {
	for _, compact := range []bool{true, false} {
		limit := MaxCompactQ
		if !compact {
			limit = 0
		}
		restore := SetCompactLimitForTest(limit)
		l, err := New(3, 2, 4)
		restore()
		if err != nil {
			t.Fatal(err)
		}
		if l.Compact() != compact {
			t.Fatalf("representation: compact=%v want %v", l.Compact(), compact)
		}
		if err := l.CheckAssigned(); err == nil {
			t.Error("all-Unset lattice passed CheckAssigned")
		}
		for v := 0; v < 3; v++ {
			for c := 0; c < 2; c++ {
				l.Set(v, c, (v+c)%4)
			}
		}
		if err := l.CheckAssigned(); err != nil {
			t.Errorf("fully assigned lattice failed: %v", err)
		}
		l.Set(2, 1, dist.Unset)
		err = l.CheckAssigned()
		if err == nil {
			t.Fatal("unset cell passed CheckAssigned")
		}
		if want := "vertex 2, chain 1"; !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %q", err, want)
		}
	}
}
