// Package state is the compact state container shared by every sampling
// engine of the repo: a Lattice holds the configurations of B independent
// chains over n vertices in one chain-major structure-of-arrays block —
// cell (v, c) lives at vals[v*B+c] — so that updating one vertex across
// many chains touches contiguous memory, and the whole B×n working set is
// as small as the domain allows.
//
// Every model this repo builds (hardcore, Ising, colorings, matchings,
// hypergraph matchings) has a domain size q far below 256, so the default
// cell representation is one byte: symbols 0..q−1 are stored verbatim in a
// []uint8 and the Unset sentinel of dist.Config maps to 0xFF (which is why
// compact storage requires q ≤ MaxCompactQ = 255 — 0xFF must stay free).
// Alphabets above that fall back to []int cells with dist.Unset itself as
// the sentinel. Both representations are behind the same accessors;
// engines that need the raw cells for a hot loop branch once on Compact()
// and specialize via the Cells type-set constraint.
//
// The package sits below the Gibbs machinery: it imports only
// internal/dist, and pack/unpack to dist.Config happens here, at the API
// boundary, so no engine hand-rolls its own state layout.
package state

import (
	"fmt"

	"repro/internal/dist"
)

// MaxCompactQ is the largest alphabet stored in uint8 cells: 0xFF is
// reserved as the compact Unset sentinel, leaving symbols 0..254.
const MaxCompactQ = 255

// unset8 is the compact-cell Unset sentinel. uint8(dist.Unset) == unset8 by
// two's-complement truncation, which is what lets Set store dist.Unset
// without branching on it.
const unset8 = 0xFF

// Cells is the type-set constraint of the two cell representations. Generic
// kernels instantiated over it compile to genuinely specialized code for
// each width (uint8 and int are distinct gcshapes).
type Cells interface{ ~uint8 | ~int }

// Valid reports whether cell x holds an assigned symbol of a q-ary domain.
// One unsigned compare covers both sentinels: the wide Unset (−1) wraps to
// a huge unsigned value and the compact Unset (0xFF) is ≥ q because
// compact storage caps q at 255.
func Valid[T Cells](x T, q int) bool {
	return uint(int(x)) < uint(q)
}

// DomainError is the typed construction error of a Lattice: the requested
// shape (vertices, chains, alphabet) is not a lattice this package can
// represent. Callers surface it to users instead of panicking on absurd
// inputs.
type DomainError struct {
	N, Chains, Q int
	Reason       string
}

func (e *DomainError) Error() string {
	return fmt.Sprintf("state: invalid lattice n=%d chains=%d q=%d: %s", e.N, e.Chains, e.Q, e.Reason)
}

// compactLimit is the largest q stored compactly by New. Tests lower it via
// SetCompactLimitForTest to force the wide fallback on small alphabets.
var compactLimit = MaxCompactQ

// SetCompactLimitForTest overrides the q threshold below which New picks
// compact cells, returning a restore func. It exists so property tests can
// run the same model through both representations; production code must
// never call it.
func SetCompactLimitForTest(limit int) (restore func()) {
	old := compactLimit
	compactLimit = limit
	return func() { compactLimit = old }
}

// Lattice is the chain-major state of `chains` configurations over n
// vertices with symbols in 0..q−1. Exactly one of the two backing slices is
// non-nil. All cells start Unset.
type Lattice struct {
	n      int
	chains int
	q      int
	u8     []uint8
	wide   []int
}

// validate checks the lattice shape, returning a *DomainError on the first
// violation. q bounds are validated once, here — every engine that builds
// its state through this package inherits the check.
func validate(n, chains, q int) error {
	switch {
	case n < 0:
		return &DomainError{N: n, Chains: chains, Q: q, Reason: "negative vertex count"}
	case chains <= 0:
		return &DomainError{N: n, Chains: chains, Q: q, Reason: "need at least one chain"}
	case q <= 0:
		return &DomainError{N: n, Chains: chains, Q: q, Reason: "domain size must be positive"}
	}
	if cells := int64(n) * int64(chains); cells > int64(1)<<40 {
		return &DomainError{N: n, Chains: chains, Q: q, Reason: "lattice exceeds 2^40 cells"}
	}
	return nil
}

// New returns an all-Unset lattice, compact (uint8 cells) when q ≤
// MaxCompactQ and wide ([]int cells) above.
func New(n, chains, q int) (*Lattice, error) {
	if q <= compactLimit {
		return NewCompact(n, chains, q)
	}
	return NewWide(n, chains, q)
}

// NewCompact returns an all-Unset lattice with uint8 cells, failing with a
// *DomainError when q > MaxCompactQ. Unlike New it ignores the test
// override — callers that transmit raw cells as bytes (the LOCAL
// message-passing harness) use it to guarantee the representation.
func NewCompact(n, chains, q int) (*Lattice, error) {
	if err := validate(n, chains, q); err != nil {
		return nil, err
	}
	if q > MaxCompactQ {
		return nil, &DomainError{N: n, Chains: chains, Q: q, Reason: fmt.Sprintf("compact cells hold q ≤ %d", MaxCompactQ)}
	}
	u8 := make([]uint8, n*chains)
	for i := range u8 {
		u8[i] = unset8
	}
	return &Lattice{n: n, chains: chains, q: q, u8: u8}, nil
}

// NewWide returns an all-Unset lattice with int cells regardless of q —
// the fallback representation, constructible directly for tests and for
// alphabets above MaxCompactQ.
func NewWide(n, chains, q int) (*Lattice, error) {
	if err := validate(n, chains, q); err != nil {
		return nil, err
	}
	wide := make([]int, n*chains)
	for i := range wide {
		wide[i] = dist.Unset
	}
	return &Lattice{n: n, chains: chains, q: q, wide: wide}, nil
}

// Pack lays the given configurations (all of length n, symbols Unset or
// 0..q−1) out as the chains of a fresh lattice.
func Pack(n, q int, chains []dist.Config) (*Lattice, error) {
	l, err := New(n, len(chains), q)
	if err != nil {
		return nil, err
	}
	for c, cfg := range chains {
		if err := l.SetChain(c, cfg); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// N returns the number of vertices.
func (l *Lattice) N() int { return l.n }

// Chains returns B, the number of chains.
func (l *Lattice) Chains() int { return l.chains }

// Q returns the alphabet size.
func (l *Lattice) Q() int { return l.q }

// Compact reports whether cells are stored as uint8.
func (l *Lattice) Compact() bool { return l.u8 != nil }

// Raw8 returns the whole compact backing array (vals[v*Chains()+c]), nil
// for wide lattices. The slice aliases lattice state.
func (l *Lattice) Raw8() []uint8 { return l.u8 }

// RawWide returns the whole wide backing array, nil for compact lattices.
// The slice aliases lattice state.
func (l *Lattice) RawWide() []int { return l.wide }

// Row8 returns vertex v's chain row of a compact lattice (nil when wide).
// The slice aliases lattice state.
func (l *Lattice) Row8(v int) []uint8 {
	if l.u8 == nil {
		return nil
	}
	return l.u8[v*l.chains : (v+1)*l.chains]
}

// RowWide returns vertex v's chain row of a wide lattice (nil when
// compact). The slice aliases lattice state.
func (l *Lattice) RowWide(v int) []int {
	if l.wide == nil {
		return nil
	}
	return l.wide[v*l.chains : (v+1)*l.chains]
}

// Get returns the symbol of chain c at vertex v, or dist.Unset.
func (l *Lattice) Get(v, c int) int {
	if l.u8 != nil {
		x := l.u8[v*l.chains+c]
		if x == unset8 {
			return dist.Unset
		}
		return int(x)
	}
	return l.wide[v*l.chains+c]
}

// Set stores symbol x (dist.Unset or 0..q−1, the caller's contract — out of
// range symbols are not diagnosed on this hot path) for chain c at vertex
// v. Storing dist.Unset in a compact cell truncates to the 0xFF sentinel.
func (l *Lattice) Set(v, c, x int) {
	if l.u8 != nil {
		l.u8[v*l.chains+c] = uint8(x)
		return
	}
	l.wide[v*l.chains+c] = x
}

// SetChain copies cfg (length n, symbols Unset or 0..q−1) into chain c.
func (l *Lattice) SetChain(c int, cfg dist.Config) error {
	if len(cfg) != l.n {
		return fmt.Errorf("state: chain %d: configuration has %d vertices, lattice has %d", c, len(cfg), l.n)
	}
	for v, x := range cfg {
		if x != dist.Unset && (x < 0 || x >= l.q) {
			return fmt.Errorf("state: chain %d: symbol %d at vertex %d outside domain 0..%d", c, x, v, l.q-1)
		}
		l.Set(v, c, x)
	}
	return nil
}

// Broadcast copies cfg into every chain.
func (l *Lattice) Broadcast(cfg dist.Config) error {
	if err := l.SetChain(0, cfg); err != nil {
		return err
	}
	if l.u8 != nil {
		for v := range cfg {
			row := l.Row8(v)
			for c := 1; c < l.chains; c++ {
				row[c] = row[0]
			}
		}
		return nil
	}
	for v := range cfg {
		row := l.RowWide(v)
		for c := 1; c < l.chains; c++ {
			row[c] = row[0]
		}
	}
	return nil
}

// Chain extracts chain c into a fresh configuration.
func (l *Lattice) Chain(c int) dist.Config {
	out := make(dist.Config, l.n)
	l.ReadChain(c, out)
	return out
}

// ReadChain copies chain c into dst (length n), the allocation-free
// unpack.
func (l *Lattice) ReadChain(c int, dst dist.Config) {
	dst = dst[:l.n]
	for v := 0; v < l.n; v++ {
		dst[v] = l.Get(v, c)
	}
}

// CheckAssigned reports the first cell whose value is not an assigned
// symbol of the q-ary domain — Unset or corrupted. It is the once-per-stage
// preflight of the fused sweep kernels: a single O(n·B) scan here lets the
// innermost loops drop their per-cell Valid checks and index tables and
// rows with symbols that are known to be in range.
func (l *Lattice) CheckAssigned() error {
	if l.u8 != nil {
		for i, x := range l.u8 {
			if !Valid(x, l.q) {
				return fmt.Errorf("state: cell (vertex %d, chain %d) is unset or out of range", i/l.chains, i%l.chains)
			}
		}
		return nil
	}
	for i, x := range l.wide {
		if !Valid(x, l.q) {
			return fmt.Errorf("state: cell (vertex %d, chain %d) is unset or out of range", i/l.chains, i%l.chains)
		}
	}
	return nil
}

// CopyFrom overwrites every cell with the corresponding cell of src. The
// lattices must agree on shape (vertices, chains, alphabet); the cell
// representations may differ — it is the handoff primitive between engines
// (the adaptive run driver carries the chains of one dynamic into the
// next), and two engines over one instance always agree on shape even if
// one stores wide cells.
func (l *Lattice) CopyFrom(src *Lattice) error {
	if l.n != src.n || l.chains != src.chains || l.q != src.q {
		return fmt.Errorf("state: CopyFrom shape mismatch: dst n=%d chains=%d q=%d, src n=%d chains=%d q=%d",
			l.n, l.chains, l.q, src.n, src.chains, src.q)
	}
	switch {
	case l.u8 != nil && src.u8 != nil:
		copy(l.u8, src.u8)
	case l.wide != nil && src.wide != nil:
		copy(l.wide, src.wide)
	default:
		for i := 0; i < l.n*l.chains; i++ {
			l.Set(i/l.chains, i%l.chains, src.Get(i/l.chains, i%l.chains))
		}
	}
	return nil
}

// Clone returns an independent copy of the lattice.
func (l *Lattice) Clone() *Lattice {
	out := *l
	if l.u8 != nil {
		out.u8 = append([]uint8(nil), l.u8...)
	}
	if l.wide != nil {
		out.wide = append([]int(nil), l.wide...)
	}
	return &out
}
