package dist

// xoshiro.go is the value-type fast PRNG of the fused batch kernels.
// math/rand draws cost an interface-free but still pointer-chasing call
// per sample; in the batched sweep engine one heat-bath draw happens per
// (vertex, chain) and the generator call is a measurable slice of the
// whole sweep. Xoshiro is Blackman & Vigna's xoshiro256++ — four words of
// state, two rotates and a handful of xors per draw, passes BigCrush —
// embedded by value in per-worker state so the hot loop touches no
// extra cache line and the compiler can keep the state in registers.
//
// Seeding routes through the same SplitMix64 mixing as SeedStream (the
// fix for the correlated-stream bug of PR 4): NewXoshiro(seed, stream)
// derives the stream's base from StreamSeed and expands it into the four
// state words with the SplitMix64 sequence, per the xoshiro authors'
// recommendation — any two distinct (seed, stream) pairs yield
// decorrelated generators, even for small consecutive integers.

// golden is the SplitMix64 increment (2^64 / φ, forced odd).
const golden uint64 = 0x9E3779B97F4A7C15

// Xoshiro is a xoshiro256++ generator. The zero value is NOT a valid
// generator (all-zero state is the fixed point); construct with
// NewXoshiro. Not safe for concurrent use; give each goroutine its own
// stream, exactly like SeedStream.
type Xoshiro struct {
	s0, s1, s2, s3 uint64
}

// NewXoshiro returns the generator of stream `stream` under the base
// seed, decorrelated from every other (seed, stream) pair.
func NewXoshiro(seed, stream int64) Xoshiro {
	z := uint64(StreamSeed(seed, stream))
	var x Xoshiro
	x.s0 = Mix64(z)
	z += golden
	x.s1 = Mix64(z)
	z += golden
	x.s2 = Mix64(z)
	z += golden
	x.s3 = Mix64(z)
	if x.s0|x.s1|x.s2|x.s3 == 0 {
		// Unreachable for SplitMix64 outputs in practice, but the all-zero
		// state would stay zero forever; nudge it off the fixed point.
		x.s3 = golden
	}
	return x
}

// rotl64 is a left bit rotation (compiles to a single ROL).
func rotl64(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniform bits.
func (x *Xoshiro) Uint64() uint64 {
	result := rotl64(x.s0+x.s3, 23) + x.s0
	t := x.s1 << 17
	x.s2 ^= x.s0
	x.s3 ^= x.s1
	x.s1 ^= x.s2
	x.s0 ^= x.s3
	x.s2 ^= t
	x.s3 = rotl64(x.s3, 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1) built from the top 53 bits
// of one Uint64 — the standard multiply-by-2^-53 construction, matching
// the resolution of math/rand's Float64 without its rejection loop.
func (x *Xoshiro) Float64() float64 {
	return float64(x.Uint64()>>11) * 0x1p-53
}
