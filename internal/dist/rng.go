package dist

// rng.go derives independent math/rand streams from a single seed. Every
// concurrent component of the repo (per-node randomness on the LOCAL
// simulator, per-worker streams of the sharded and batched engines) needs
// many generators from one user-visible seed; feeding `seed + i*K` or
// `seed ^ i*K` straight into rand.NewSource produces correlated streams,
// because math/rand's seeding only scrambles the low bits weakly and
// nearby seeds share state. SeedStream routes the (seed, stream) pair
// through a SplitMix64 finalizer first, so any two distinct pairs yield
// decorrelated generators.

import "math/rand"

// Mix64 is the SplitMix64 finalizer: a bijective avalanche mixer whose
// output bits each depend on every input bit. It is the standard way to
// turn structured integers (counters, vertex ids, stream indices) into
// high-entropy seeds.
func Mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// StreamSeed derives the int64 seed of stream i from the base seed: two
// rounds of SplitMix64 over the pair, so that (seed, i) and (seed', i')
// collide only with birthday probability even when both arguments are
// small consecutive integers.
func StreamSeed(seed, stream int64) int64 {
	return int64(Mix64(Mix64(uint64(seed)) + uint64(stream)))
}

// SeedStream returns a fresh rand.Rand for stream i of the base seed. The
// returned generator is not safe for concurrent use; give each goroutine
// (or LOCAL node) its own stream index.
func SeedStream(seed, stream int64) *rand.Rand {
	return rand.New(rand.NewSource(StreamSeed(seed, stream)))
}
