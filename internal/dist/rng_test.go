package dist

import "testing"

// TestMix64Reference pins the mixer to the published SplitMix64 sequence:
// seeding with 0 and stepping by the golden-gamma increment must reproduce
// the reference outputs of Steele, Lea & Flood's generator.
func TestMix64Reference(t *testing.T) {
	want := []uint64{
		0xE220A8397B1DCDAF,
		0x6E789E6AA1B965F4,
		0x06C45D188009454F,
	}
	var state uint64
	for i, w := range want {
		state += 0x9E3779B97F4A7C15
		// Mix64 adds the increment itself, so rewind by one step.
		if got := Mix64(state - 0x9E3779B97F4A7C15); got != w {
			t.Errorf("Mix64 step %d = %#x, want %#x", i, got, w)
		}
	}
}

// TestStreamSeedDecorrelated checks the failure mode the helper exists to
// prevent: consecutive stream indices (and consecutive base seeds) must not
// produce near-identical raw seeds the way seed+i*K or seed^i*K do.
func TestStreamSeedDecorrelated(t *testing.T) {
	seen := make(map[int64]bool)
	for seed := int64(0); seed < 8; seed++ {
		for stream := int64(0); stream < 64; stream++ {
			s := StreamSeed(seed, stream)
			if seen[s] {
				t.Fatalf("StreamSeed(%d, %d) = %d collides", seed, stream, s)
			}
			seen[s] = true
		}
	}
	// Adjacent streams should differ in roughly half their bits.
	for stream := int64(0); stream < 16; stream++ {
		a := uint64(StreamSeed(1, stream))
		b := uint64(StreamSeed(1, stream+1))
		diff := popcount(a ^ b)
		if diff < 12 || diff > 52 {
			t.Errorf("streams %d and %d differ in only %d bits", stream, stream+1, diff)
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// TestSeedStreamIndependentDraws spot-checks that two adjacent streams do
// not emit the same leading draws (the observable symptom of correlated
// math/rand sources).
func TestSeedStreamIndependentDraws(t *testing.T) {
	a := SeedStream(7, 0)
	b := SeedStream(7, 1)
	same := 0
	for i := 0; i < 32; i++ {
		if a.Intn(1000) == b.Intn(1000) {
			same++
		}
	}
	if same > 4 {
		t.Errorf("adjacent streams agree on %d/32 draws", same)
	}
}
