package dist

import (
	"math"
	"testing"
)

// TestCDFMatchesSampleWalk pins CDF.SampleU to sampleWalk over a grid of
// uniforms on weight vectors with zeros, leading zeros, trailing zeros,
// and point masses — the exact-identity contract the batched proposal
// draws rely on.
func TestCDFMatchesSampleWalk(t *testing.T) {
	rows := []Dist{
		{0.5, 0.5},
		{1},
		{0, 1},
		{1, 0},
		{0.25, 0, 0.75},
		{0, 0, 1},
		{0.2, 0.3, 0, 0.5},
		{0.1, 0.2, 0.3, 0.4},
		{0, 0.5, 0.5, 0},
	}
	for ri, d := range rows {
		c := NewCDF(d)
		if c.K() != len(d) {
			t.Fatalf("row %d: K() = %d, want %d", ri, c.K(), len(d))
		}
		for i := 0; i <= 1000; i++ {
			u := float64(i) / 1000 * (1 - 1e-12)
			if got, want := c.SampleU(u), sampleWalk(d, u); got != want {
				t.Fatalf("row %d u=%v: CDF %d, sampleWalk %d", ri, u, got, want)
			}
		}
		// The exact cumulative boundaries are where off-by-one slips hide.
		acc := 0.0
		for _, x := range d {
			if x > 0 {
				acc += x
			}
			for _, u := range []float64{acc, math.Nextafter(acc, 0), math.Nextafter(acc, 2)} {
				if u < 0 || u >= 1 {
					continue
				}
				if got, want := c.SampleU(u), sampleWalk(d, u); got != want {
					t.Fatalf("row %d boundary u=%v: CDF %d, sampleWalk %d", ri, u, got, want)
				}
			}
		}
	}
}

// TestCDFDrawMatchesSampleX runs a shadow generator: Draw and Dist.SampleX
// consume one uniform each, so identical streams must yield identical
// symbol sequences.
func TestCDFDrawMatchesSampleX(t *testing.T) {
	d := Dist{0.1, 0, 0.4, 0.5}
	c := NewCDF(d)
	a := NewXoshiro(42, 7)
	b := a
	for i := 0; i < 2000; i++ {
		if got, want := c.Draw(&a), d.SampleX(&b); got != want {
			t.Fatalf("draw %d: CDF %d, SampleX %d", i, got, want)
		}
	}
}

// TestCDFZeroMass checks the degenerate rows: an all-zero or empty row has
// no positive symbol to fall back to.
func TestCDFZeroMass(t *testing.T) {
	for _, d := range []Dist{nil, {}, {0, 0, 0}} {
		c := NewCDF(d)
		if got := c.SampleU(0.5); got != -1 {
			t.Errorf("zero-mass row %v: SampleU = %d, want -1", d, got)
		}
	}
}

// TestSampleWeightsXMatchesSampleWeights checks that the Xoshiro variant
// validates like SampleWeights and draws the same symbol for the same
// uniform (via the frozen-walk identity on a normalized row).
func TestSampleWeightsXMatchesSampleWeights(t *testing.T) {
	rng := NewXoshiro(1, 0)
	if _, err := SampleWeightsX(nil, &rng); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := SampleWeightsX([]float64{0, 0}, &rng); err == nil {
		t.Error("zero-mass weights accepted")
	}
	if _, err := SampleWeightsX([]float64{1, -1}, &rng); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := SampleWeightsX([]float64{1, math.Inf(1)}, &rng); err == nil {
		t.Error("infinite weight accepted")
	}
	w := []float64{2, 0, 6}
	counts := make([]int, len(w))
	for i := 0; i < 4000; i++ {
		x, err := SampleWeightsX(w, &rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[x]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight symbol drawn %d times", counts[1])
	}
	if counts[0] == 0 || counts[2] == 0 {
		t.Errorf("positive symbols starved: %v", counts)
	}
}
