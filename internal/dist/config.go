// Package dist is the probability kernel shared by every layer of the
// reproduction: partial configurations (pinned assignments with an Unset
// sentinel), finite distributions over a symbol alphabet, sparse joint
// distributions over configurations, empirical estimators, and the error
// combinators (total variation, multiplicative error, sampling-noise
// envelopes) that the paper's reductions and experiments are stated in.
//
// Everything upstream — the Gibbs machinery, the brute-force referee, the
// correlation-decay oracles, the reductions of Sections 3–5 and the
// experiment suite — imports this package and nothing in this package
// imports anything above it.
package dist

// Unset marks a vertex that carries no pinned value in a partial
// configuration. Symbols are always nonnegative, so -1 is unambiguous.
const Unset = -1

// Config is a (partial) configuration: Config[v] is the symbol assigned to
// vertex v, or Unset when v is free. A configuration with no Unset entries
// is "total".
type Config []int

// NewConfig returns the empty partial configuration on n vertices (all
// entries Unset).
func NewConfig(n int) Config {
	c := make(Config, n)
	for i := range c {
		c[i] = Unset
	}
	return c
}

// Clone returns an independent copy of the configuration.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	copy(out, c)
	return out
}

// IsTotal reports whether every vertex is assigned.
func (c Config) IsTotal() bool {
	for _, x := range c {
		if x == Unset {
			return false
		}
	}
	return true
}

// Assigned returns the vertices carrying a value, in increasing order.
func (c Config) Assigned() []int {
	var out []int
	for v, x := range c {
		if x != Unset {
			out = append(out, v)
		}
	}
	return out
}

// Free returns the unassigned vertices, in increasing order.
func (c Config) Free() []int {
	var out []int
	for v, x := range c {
		if x == Unset {
			out = append(out, v)
		}
	}
	return out
}

// Merge returns the union of the receiver and base: base's values filled in
// wherever the receiver is Unset, the receiver winning on conflicts. The
// result has the length of the longer configuration.
func (c Config) Merge(base Config) Config {
	n := len(c)
	if len(base) > n {
		n = len(base)
	}
	out := NewConfig(n)
	copy(out, base)
	for v, x := range c {
		if x != Unset {
			out[v] = x
		}
	}
	return out
}

// Equal reports whether the two configurations have the same length and
// agree everywhere (Unset included).
func (c Config) Equal(o Config) bool {
	if len(c) != len(o) {
		return false
	}
	for v, x := range c {
		if x != o[v] {
			return false
		}
	}
	return true
}

// DiffersAt returns the vertices at which the two configurations disagree,
// in increasing order. Positions beyond the shorter configuration count as
// disagreements.
func (c Config) DiffersAt(o Config) []int {
	var out []int
	long := c
	if len(o) > len(long) {
		long = o
	}
	for v := range long {
		switch {
		case v >= len(c) || v >= len(o):
			out = append(out, v)
		case c[v] != o[v]:
			out = append(out, v)
		}
	}
	return out
}
