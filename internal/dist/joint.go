package dist

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
)

// Joint is a sparse distribution over total configurations of n vertices,
// stored as a weight table. Build it with Add and finish with Normalize;
// support order is insertion order, so deterministic producers (the
// enumeration referee) yield deterministic tables.
type Joint struct {
	n       int
	index   map[string]int
	configs []Config
	weights []float64
	total   float64
	err     error
}

// NewJoint returns an empty joint table over configurations of n vertices.
func NewJoint(n int) *Joint {
	return &Joint{n: n, index: make(map[string]int)}
}

// key encodes a configuration for table lookup.
func key(c Config) string {
	buf := make([]byte, 0, 2*len(c))
	for _, x := range c {
		buf = binary.AppendVarint(buf, int64(x))
	}
	return string(buf)
}

// Add accumulates weight w onto configuration c. The configuration is
// copied, so callers may reuse the slice between calls (the enumeration
// visitors do). Invalid additions (wrong length, negative or non-finite
// weight) are recorded and surfaced by Normalize.
func (j *Joint) Add(c Config, w float64) {
	if j.err != nil {
		return
	}
	if len(c) != j.n {
		j.err = fmt.Errorf("dist: joint over %d vertices given config of length %d", j.n, len(c))
		return
	}
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		j.err = fmt.Errorf("dist: joint weight %v", w)
		return
	}
	if w == 0 {
		return
	}
	k := key(c)
	i, ok := j.index[k]
	if !ok {
		i = len(j.configs)
		j.index[k] = i
		j.configs = append(j.configs, c.Clone())
		j.weights = append(j.weights, 0)
	}
	j.weights[i] += w
	j.total += w
	if math.IsInf(j.total, 0) {
		j.err = fmt.Errorf("dist: joint total mass overflows to +Inf")
	}
}

// N returns the number of vertices the configurations range over.
func (j *Joint) N() int { return j.n }

// Len returns the support size (configurations of positive weight).
func (j *Joint) Len() int { return len(j.configs) }

// Total returns the unnormalized total mass (1 after Normalize).
func (j *Joint) Total() float64 { return j.total }

// Normalize scales the table to total mass 1. It reports any invalid Add
// recorded earlier, and ErrZeroMass when nothing carries positive weight
// (an infeasible pinning at the enumeration referee). Idempotent.
func (j *Joint) Normalize() error {
	if j.err != nil {
		return j.err
	}
	if j.total <= 0 {
		return ErrZeroMass
	}
	if j.total == 1 {
		return nil
	}
	for i := range j.weights {
		j.weights[i] /= j.total
	}
	j.total = 1
	return nil
}

// Prob returns the probability (or, before Normalize, the mass fraction) of
// configuration c; 0 when c is outside the support.
func (j *Joint) Prob(c Config) float64 {
	if j.total <= 0 || len(c) != j.n {
		return 0
	}
	i, ok := j.index[key(c)]
	if !ok {
		return 0
	}
	return j.weights[i] / j.total
}

// Support returns the configurations of positive weight in insertion order.
// The slice and its entries are shared internal state and must not be
// modified.
func (j *Joint) Support() []Config { return j.configs }

// Sample draws a configuration proportionally to its weight. The returned
// configuration is a copy.
func (j *Joint) Sample(rng *rand.Rand) (Config, error) {
	if j.err != nil {
		return nil, j.err
	}
	if j.total <= 0 || len(j.configs) == 0 {
		return nil, ErrZeroMass
	}
	i := sampleWalk(j.weights, rng.Float64()*j.total)
	if i < 0 {
		return nil, ErrZeroMass
	}
	return j.configs[i].Clone(), nil
}

// Marginal returns the marginal distribution of vertex v over the alphabet
// 0..q-1.
func (j *Joint) Marginal(v, q int) (Dist, error) {
	if v < 0 || v >= j.n {
		return nil, fmt.Errorf("dist: marginal vertex %d outside 0..%d", v, j.n-1)
	}
	if q <= 0 {
		return nil, fmt.Errorf("dist: marginal over alphabet %d", q)
	}
	if j.err != nil {
		return nil, j.err
	}
	w := make([]float64, q)
	for i, c := range j.configs {
		if x := c[v]; x < 0 || x >= q {
			return nil, fmt.Errorf("dist: symbol %d at vertex %d outside alphabet %d", x, v, q)
		} else {
			w[x] += j.weights[i]
		}
	}
	return FromWeights(w)
}

// TVJoint returns the total variation distance ½·Σ_σ |a(σ) − b(σ)| between
// two joint tables over the same vertex set, summing over the union of
// supports.
func TVJoint(a, b *Joint) (float64, error) {
	if a == nil || b == nil {
		return 0, fmt.Errorf("dist: TVJoint of nil table")
	}
	if a.n != b.n {
		return 0, fmt.Errorf("dist: TVJoint over %d and %d vertices", a.n, b.n)
	}
	if a.err != nil {
		return 0, a.err
	}
	if b.err != nil {
		return 0, b.err
	}
	if a.total <= 0 || b.total <= 0 {
		return 0, ErrZeroMass
	}
	s := 0.0
	for i, c := range a.configs {
		s += math.Abs(a.weights[i]/a.total - b.Prob(c))
	}
	for i, c := range b.configs {
		if _, seen := a.index[key(c)]; !seen {
			s += b.weights[i] / b.total
		}
	}
	return s / 2, nil
}
