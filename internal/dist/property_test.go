package dist_test

// Cross-layer property test: the empirical estimator, fed exact samples,
// lands within the ExpectedTVNoise envelope of the brute-force joint
// distribution. This pins the noise envelope to reality — every "TV within
// sampling noise ⇒ exact" conclusion in the experiment suite rests on it.

import (
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
)

func TestEmpiricalTracksExactJointWithinNoise(t *testing.T) {
	cases := []struct {
		name   string
		g      *graph.Graph
		lambda float64
		trials int
	}{
		{name: "cycle8", g: graph.Cycle(8), lambda: 1.2, trials: 20000},
		{name: "path6", g: graph.Path(6), lambda: 2.0, trials: 10000},
		{name: "grid3x3", g: graph.Grid(3, 3), lambda: 0.8, trials: 20000},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spec, err := model.Hardcore(c.g, c.lambda)
			if err != nil {
				t.Fatal(err)
			}
			in, err := gibbs.NewInstance(spec, nil)
			if err != nil {
				t.Fatal(err)
			}
			truth, err := exact.JointDistribution(in)
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(1); seed <= 3; seed++ {
				rng := rand.New(rand.NewSource(seed))
				emp := dist.NewEmpirical(c.g.N())
				for i := 0; i < c.trials; i++ {
					cfg, err := truth.Sample(rng)
					if err != nil {
						t.Fatal(err)
					}
					emp.Observe(cfg)
				}
				got, err := emp.Joint()
				if err != nil {
					t.Fatal(err)
				}
				tv, err := dist.TVJoint(truth, got)
				if err != nil {
					t.Fatal(err)
				}
				envelope := dist.ExpectedTVNoise(truth.Len(), emp.Total())
				if tv > envelope {
					t.Errorf("seed %d: TV %v exceeds noise envelope %v (support %d, samples %d)",
						seed, tv, envelope, truth.Len(), emp.Total())
				}
				// The envelope must also be honest work, not a blank check:
				// the measured TV should not be vanishingly far below it.
				if tv < envelope/100 {
					t.Errorf("seed %d: TV %v suspiciously far below envelope %v", seed, tv, envelope)
				}
			}
			// Empirical marginals agree with exact marginals within the
			// (much tighter) per-vertex noise.
			rng := rand.New(rand.NewSource(99))
			emp := dist.NewEmpirical(c.g.N())
			for i := 0; i < c.trials; i++ {
				cfg, err := truth.Sample(rng)
				if err != nil {
					t.Fatal(err)
				}
				emp.Observe(cfg)
			}
			for v := 0; v < c.g.N(); v++ {
				got, err := emp.Marginal(v, 2)
				if err != nil {
					t.Fatal(err)
				}
				want, err := exact.Marginal(in, v)
				if err != nil {
					t.Fatal(err)
				}
				tv, err := dist.TV(got, want)
				if err != nil {
					t.Fatal(err)
				}
				if margin := dist.ExpectedTVNoise(2, c.trials); tv > margin {
					t.Errorf("vertex %d: marginal TV %v exceeds %v", v, tv, margin)
				}
			}
		})
	}
}
