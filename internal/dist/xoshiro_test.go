package dist

import "testing"

// TestXoshiroReference pins the update rule to the published xoshiro256++
// sequence: from the state {1, 2, 3, 4} the generator must reproduce the
// reference outputs of Blackman & Vigna's implementation.
func TestXoshiroReference(t *testing.T) {
	x := Xoshiro{s0: 1, s1: 2, s2: 3, s3: 4}
	want := []uint64{
		41943041,
		58720359,
		3588806011781223,
		3591011842654386,
		9228616714210784205,
	}
	for i, w := range want {
		if got := x.Uint64(); got != w {
			t.Fatalf("output %d = %d, want %d", i, got, w)
		}
	}
}

// TestXoshiroFloat64Range checks the unit-interval construction: every
// draw lies in [0, 1) and the generator is not stuck.
func TestXoshiroFloat64Range(t *testing.T) {
	x := NewXoshiro(3, 0)
	var sum float64
	for i := 0; i < 4096; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("draw %d = %v outside [0,1)", i, f)
		}
		sum += f
	}
	// Mean of 4096 uniform draws concentrates near 1/2; a catastrophic
	// seeding bug (constant or near-constant output) lands far away.
	if mean := sum / 4096; mean < 0.4 || mean > 0.6 {
		t.Errorf("mean of 4096 draws = %v, want ≈ 0.5", mean)
	}
}

// TestXoshiroStreamsDecorrelated is the stream-decorrelation property the
// PR 4 SeedStream test pins for math/rand, applied to the fast PRNG:
// consecutive stream indices and consecutive base seeds must yield
// generators that disagree on their leading draws, and adjacent streams'
// first outputs must differ in roughly half their bits.
func TestXoshiroStreamsDecorrelated(t *testing.T) {
	seen := make(map[uint64]bool)
	for seed := int64(0); seed < 8; seed++ {
		for stream := int64(0); stream < 64; stream++ {
			x := NewXoshiro(seed, stream)
			first := x.Uint64()
			if seen[first] {
				t.Fatalf("NewXoshiro(%d, %d) first draw %d collides", seed, stream, first)
			}
			seen[first] = true
		}
	}
	for stream := int64(0); stream < 16; stream++ {
		a := NewXoshiro(1, stream)
		b := NewXoshiro(1, stream+1)
		diff := popcount(a.Uint64() ^ b.Uint64())
		if diff < 12 || diff > 52 {
			t.Errorf("streams %d and %d first draws differ in only %d bits", stream, stream+1, diff)
		}
	}
	// The observable symptom of aliased streams: matching leading draws.
	a := NewXoshiro(7, 0)
	b := NewXoshiro(7, 1)
	same := 0
	for i := 0; i < 32; i++ {
		if a.Uint64()%1000 == b.Uint64()%1000 {
			same++
		}
	}
	if same > 4 {
		t.Errorf("adjacent streams agree on %d/32 draws", same)
	}
}

// TestXoshiroZeroGuard checks the all-zero-state escape hatch directly.
func TestXoshiroZeroGuard(t *testing.T) {
	x := Xoshiro{}
	if x.s0|x.s1|x.s2|x.s3 != 0 {
		t.Fatal("zero value not zero state")
	}
	if x.Uint64() != 0 {
		t.Fatal("all-zero state should be the fixed point (documented invalid)")
	}
}
