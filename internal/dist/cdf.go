package dist

// cdf.go: precomputed cumulative rows for repeated categorical draws —
// the batched-draw primitive of the batched LocalMetropolis engine. A
// proposal distribution is fixed per vertex for the lifetime of the
// rules, but the single-chain path re-walks the density on every draw
// (Dist.Sample is a linear scan with a branch per symbol). Precomputing
// the running sums turns each draw into a scan over a monotone row with
// one compare per symbol and no accumulation in the loop, and lets one
// CDF serve a whole chain block back to back while the row is cache-hot.
//
// The draw is bit-identical to Dist.Sample for the same uniform: the
// cumulative row freezes exactly the accumulator sequence of sampleWalk
// (nonpositive entries add nothing and can never be hit first, because
// their cumulative value equals their predecessor's), and rounding slack
// falls to the recorded last positive symbol. The B=1 agreement tests
// between the single-chain and batched engines rest on this identity.

// CDF is the frozen cumulative form of a Dist. The zero value draws -1
// from an empty alphabet; build with NewCDF. Immutable after
// construction and safe for concurrent use by any number of readers.
type CDF struct {
	// cum[i] is the running sum of the positive weights at indices ≤ i.
	cum []float64
	// last is the last index with positive weight (-1 when none) — the
	// rounding-slack target of sampleWalk.
	last int
}

// NewCDF freezes the distribution's cumulative row.
func NewCDF(d Dist) CDF {
	c := CDF{cum: make([]float64, len(d)), last: -1}
	acc := 0.0
	for i, x := range d {
		if x > 0 {
			acc += x
			c.last = i
		}
		c.cum[i] = acc
	}
	return c
}

// K returns the alphabet size.
func (c *CDF) K() int { return len(c.cum) }

// SampleU returns the symbol of uniform u ∈ [0, 1): the first index whose
// cumulative weight exceeds u. Exactly sampleWalk(d, u): a nonpositive
// symbol shares its predecessor's cumulative value, so it can never be
// the first hit, and slack falls to the last positive symbol.
func (c *CDF) SampleU(u float64) int {
	for i, acc := range c.cum {
		if u < acc {
			return i
		}
	}
	return c.last
}

// Draw samples one symbol from a value-type Xoshiro stream.
func (c *CDF) Draw(rng *Xoshiro) int {
	return c.SampleU(rng.Float64())
}

// Fill8 draws len(dst) symbols back to back into a byte row — the
// batched proposal stage's primitive for 8-bit lattices. Each entry is
// exactly uint8(c.Draw(rng)): the caller owns the K ≤ 256 bound (and a
// nonempty support, so Draw never yields -1). A two-symbol alphabet
// whose upper symbol carries weight collapses to one branchless
// threshold compare per draw — u ≥ cum[0] is symbol 1 whether u lands in
// the upper mass or in the rounding slack above it, which is where
// SampleU's walk would fall through to last — skipping the walk and its
// per-symbol branch on the proposal coin.
func (c *CDF) Fill8(rng *Xoshiro, dst []uint8) {
	if len(c.cum) == 2 && c.last == 1 {
		t := c.cum[0]
		for i := range dst {
			var x uint8
			if rng.Float64() >= t {
				x = 1
			}
			dst[i] = x
		}
		return
	}
	for i := range dst {
		dst[i] = uint8(c.SampleU(rng.Float64()))
	}
}
