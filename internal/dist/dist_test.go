package dist

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestFromWeightsTable(t *testing.T) {
	cases := []struct {
		name    string
		w       []float64
		want    Dist
		wantErr bool
	}{
		{name: "empty", w: nil, wantErr: true},
		{name: "all zero", w: []float64{0, 0, 0}, wantErr: true},
		{name: "negative", w: []float64{1, -0.5}, wantErr: true},
		{name: "NaN", w: []float64{1, math.NaN()}, wantErr: true},
		{name: "Inf", w: []float64{math.Inf(1), 1}, wantErr: true},
		{name: "finite weights overflow the total", w: []float64{math.MaxFloat64, math.MaxFloat64}, wantErr: true},
		{name: "single support point", w: []float64{0, 3, 0}, want: Dist{0, 1, 0}},
		{name: "normalizes", w: []float64{1, 3}, want: Dist{0.25, 0.75}},
		{name: "already normal", w: []float64{0.5, 0.5}, want: Dist{0.5, 0.5}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := FromWeights(c.w)
			if c.wantErr {
				if err == nil {
					t.Fatalf("FromWeights(%v) = %v, want error", c.w, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("FromWeights(%v): %v", c.w, err)
			}
			if err := got.Validate(1e-12); err != nil {
				t.Fatal(err)
			}
			for i := range c.want {
				if math.Abs(got[i]-c.want[i]) > 1e-12 {
					t.Fatalf("FromWeights(%v) = %v, want %v", c.w, got, c.want)
				}
			}
		})
	}
}

func TestAllZeroWeightsIsErrZeroMass(t *testing.T) {
	if _, err := FromWeights([]float64{0, 0}); !errors.Is(err, ErrZeroMass) {
		t.Fatalf("want ErrZeroMass, got %v", err)
	}
}

func TestMixTable(t *testing.T) {
	cases := []struct {
		name    string
		a, b    Dist
		w       float64
		want    Dist
		wantErr bool
	}{
		{name: "length mismatch", a: Dist{1}, b: Dist{0.5, 0.5}, w: 0.5, wantErr: true},
		{name: "weight below range", a: Dist{1, 0}, b: Dist{0, 1}, w: -0.1, wantErr: true},
		{name: "weight above range", a: Dist{1, 0}, b: Dist{0, 1}, w: 1.1, wantErr: true},
		{name: "weight zero keeps a", a: Dist{0.3, 0.7}, b: Dist{1, 0}, w: 0, want: Dist{0.3, 0.7}},
		{name: "weight one takes b", a: Dist{0.3, 0.7}, b: Dist{1, 0}, w: 1, want: Dist{1, 0}},
		{name: "point masses blend", a: Dist{1, 0}, b: Dist{0, 1}, w: 0.25, want: Dist{0.75, 0.25}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := Mix(c.a, c.b, c.w)
			if c.wantErr {
				if err == nil {
					t.Fatalf("Mix = %v, want error", got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := got.Validate(1e-12); err != nil {
				t.Fatal(err)
			}
			for i := range c.want {
				if math.Abs(got[i]-c.want[i]) > 1e-12 {
					t.Fatalf("Mix = %v, want %v", got, c.want)
				}
			}
		})
	}
}

func TestMultErrTable(t *testing.T) {
	cases := []struct {
		name    string
		a, b    Dist
		want    float64
		wantInf bool
		wantErr bool
	}{
		{name: "length mismatch", a: Dist{1}, b: Dist{0.5, 0.5}, wantErr: true},
		{name: "identical", a: Dist{0.25, 0.75}, b: Dist{0.25, 0.75}, want: 0},
		{name: "same single support point", a: Dist{0, 1}, b: Dist{0, 1}, want: 0},
		{name: "disjoint support", a: Dist{1, 0}, b: Dist{0, 1}, wantInf: true},
		{name: "one-sided zero", a: Dist{0.5, 0.5}, b: Dist{0, 1}, wantInf: true},
		{name: "factor of two", a: Dist{0.5, 0.5}, b: Dist{0.25, 0.75}, want: math.Log(2)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := MultErr(c.a, c.b)
			if c.wantErr {
				if err == nil {
					t.Fatalf("MultErr = %v, want error", got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if c.wantInf {
				if !math.IsInf(got, 1) {
					t.Fatalf("MultErr = %v, want +Inf", got)
				}
				return
			}
			if math.Abs(got-c.want) > 1e-12 {
				t.Fatalf("MultErr = %v, want %v", got, c.want)
			}
		})
	}
}

func TestTV(t *testing.T) {
	if _, err := TV(Dist{1}, Dist{0.5, 0.5}); err == nil {
		t.Error("TV accepted mismatched alphabets")
	}
	tv, err := TV(Dist{1, 0}, Dist{0, 1})
	if err != nil || tv != 1 {
		t.Errorf("TV of disjoint point masses = %v, %v", tv, err)
	}
	tv, err = TV(Dist{0.5, 0.5}, Dist{0.5, 0.5})
	if err != nil || tv != 0 {
		t.Errorf("TV of equal dists = %v, %v", tv, err)
	}
}

func TestPointUniformArgMaxSample(t *testing.T) {
	p := Point(3, 1)
	if p.ArgMax() != 1 {
		t.Errorf("Point ArgMax = %d", p.ArgMax())
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if p.Sample(rng) != 1 {
			t.Fatal("Point sampled off-support")
		}
	}
	u := Uniform(4)
	if err := u.Validate(1e-12); err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	const trials = 40000
	for i := 0; i < trials; i++ {
		counts[u.Sample(rng)]++
	}
	for x, c := range counts {
		if f := float64(c) / trials; math.Abs(f-0.25) > 0.02 {
			t.Errorf("uniform sample frequency of %d = %v", x, f)
		}
	}
}

func TestConfigBasics(t *testing.T) {
	c := NewConfig(4)
	if c.IsTotal() || len(c.Assigned()) != 0 || len(c.Free()) != 4 {
		t.Fatalf("fresh config wrong: %v", c)
	}
	c[1] = 2
	clone := c.Clone()
	clone[1] = 3
	if c[1] != 2 {
		t.Error("Clone aliases the original")
	}
	if got := c.Assigned(); len(got) != 1 || got[0] != 1 {
		t.Errorf("Assigned = %v", got)
	}
	base := Config{0, 0, 0, 0}
	merged := c.Merge(base)
	if want := (Config{0, 2, 0, 0}); !merged.Equal(want) {
		t.Errorf("Merge = %v, want %v", merged, want)
	}
	if !merged.IsTotal() {
		t.Error("merged config should be total")
	}
	a := Config{1, 0, 1}
	b := Config{1, 1, 0}
	if a.Equal(b) {
		t.Error("unequal configs reported equal")
	}
	if diff := a.DiffersAt(b); len(diff) != 2 || diff[0] != 1 || diff[1] != 2 {
		t.Errorf("DiffersAt = %v", diff)
	}
}

func TestJointNormalizeProbMarginal(t *testing.T) {
	j := NewJoint(2)
	cfg := Config{0, 0}
	j.Add(cfg, 1)
	cfg[1] = 1 // reuse the slice: Add must have copied it
	j.Add(cfg, 3)
	if j.Len() != 2 {
		t.Fatalf("Len = %d", j.Len())
	}
	if err := j.Normalize(); err != nil {
		t.Fatal(err)
	}
	if p := j.Prob(Config{0, 0}); math.Abs(p-0.25) > 1e-12 {
		t.Errorf("Prob(0,0) = %v", p)
	}
	if p := j.Prob(Config{1, 1}); p != 0 {
		t.Errorf("off-support Prob = %v", p)
	}
	m, err := j.Marginal(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m[1]-0.75) > 1e-12 {
		t.Errorf("marginal = %v", m)
	}
	if _, err := j.Marginal(5, 2); err == nil {
		t.Error("out-of-range marginal accepted")
	}
	// Zero-mass table refuses to normalize.
	empty := NewJoint(2)
	if err := empty.Normalize(); !errors.Is(err, ErrZeroMass) {
		t.Errorf("empty Normalize err = %v", err)
	}
	// Finite additions whose total overflows poison the table loudly.
	over := NewJoint(1)
	over.Add(Config{0}, math.MaxFloat64)
	over.Add(Config{0}, math.MaxFloat64)
	if err := over.Normalize(); err == nil {
		t.Error("overflowing joint normalized silently")
	}
}

func TestTVJoint(t *testing.T) {
	a := NewJoint(1)
	a.Add(Config{0}, 1)
	a.Add(Config{1}, 1)
	b := NewJoint(1)
	b.Add(Config{1}, 1)
	b.Add(Config{2}, 1)
	if err := a.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := b.Normalize(); err != nil {
		t.Fatal(err)
	}
	tv, err := TVJoint(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tv-0.5) > 1e-12 {
		t.Errorf("TVJoint = %v, want 0.5", tv)
	}
	mismatch := NewJoint(2)
	mismatch.Add(Config{0, 0}, 1)
	if _, err := TVJoint(a, mismatch); err == nil {
		t.Error("TVJoint accepted mismatched vertex counts")
	}
}

func TestEmpirical(t *testing.T) {
	e := NewEmpirical(2)
	if _, err := e.Joint(); !errors.Is(err, ErrZeroMass) {
		t.Errorf("empty Joint err = %v", err)
	}
	e.Observe(Config{0, 1})
	e.Observe(Config{0, 1})
	e.Observe(Config{1, 0})
	if e.Total() != 3 {
		t.Fatalf("Total = %d", e.Total())
	}
	j, err := e.Joint()
	if err != nil {
		t.Fatal(err)
	}
	if p := j.Prob(Config{0, 1}); math.Abs(p-2.0/3) > 1e-12 {
		t.Errorf("Prob = %v", p)
	}
	m, err := e.Marginal(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m[0]-2.0/3) > 1e-12 {
		t.Errorf("Marginal = %v", m)
	}
	// A partial observation poisons the estimator loudly, not silently.
	bad := NewEmpirical(2)
	bad.Observe(Config{0, Unset})
	if _, err := bad.Joint(); err == nil {
		t.Error("partial observation accepted")
	}
}

func TestExpectedTVNoise(t *testing.T) {
	if n := ExpectedTVNoise(10, 0); n != 1 {
		t.Errorf("no samples noise = %v", n)
	}
	if n := ExpectedTVNoise(1000, 10); n != 1 {
		t.Errorf("clamp failed: %v", n)
	}
	big := ExpectedTVNoise(16, 100)
	small := ExpectedTVNoise(16, 100000)
	if small >= big {
		t.Errorf("noise should shrink with samples: %v vs %v", small, big)
	}
	if small <= 0 {
		t.Errorf("noise must stay positive: %v", small)
	}
}

func TestJointSampleMatchesWeights(t *testing.T) {
	j := NewJoint(1)
	j.Add(Config{0}, 3)
	j.Add(Config{1}, 1)
	rng := rand.New(rand.NewSource(5))
	counts := map[int]int{}
	const trials = 40000
	for i := 0; i < trials; i++ {
		c, err := j.Sample(rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[c[0]]++
	}
	if f := float64(counts[0]) / trials; math.Abs(f-0.75) > 0.02 {
		t.Errorf("sample frequency = %v, want 0.75", f)
	}
}
