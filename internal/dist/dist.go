package dist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Dist is a probability distribution over the symbols 0..len-1.
type Dist []float64

// ErrZeroMass indicates a weight vector (or joint table) with no positive
// mass to normalize.
var ErrZeroMass = errors.New("dist: zero total mass")

// FromWeights normalizes a vector of nonnegative weights into a
// distribution. It rejects empty vectors, negative or non-finite weights,
// and all-zero vectors (the infeasible-pinning signal the enumeration
// referee relies on).
func FromWeights(w []float64) (Dist, error) {
	if len(w) == 0 {
		return nil, errors.New("dist: empty weight vector")
	}
	total := 0.0
	for i, x := range w {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("dist: weight %v at index %d", x, i)
		}
		total += x
	}
	if total <= 0 {
		return nil, ErrZeroMass
	}
	if math.IsInf(total, 0) {
		return nil, errors.New("dist: total weight overflows to +Inf")
	}
	d := make(Dist, len(w))
	for i, x := range w {
		d[i] = x / total
	}
	return d, nil
}

// Uniform returns the uniform distribution over n symbols. It panics when
// n <= 0 (a programmer error at every call site).
func Uniform(n int) Dist {
	if n <= 0 {
		panic(fmt.Sprintf("dist: Uniform(%d)", n))
	}
	d := make(Dist, n)
	for i := range d {
		d[i] = 1 / float64(n)
	}
	return d
}

// Point returns the point mass at symbol x over an alphabet of q symbols.
// It panics when x is outside 0..q-1 (pinned values are validated upstream,
// so this is a programmer error).
func Point(q, x int) Dist {
	if x < 0 || x >= q {
		panic(fmt.Sprintf("dist: Point(%d, %d)", q, x))
	}
	d := make(Dist, q)
	d[x] = 1
	return d
}

// Mix returns (1-w)·a + w·b, the mixture of two distributions on the same
// alphabet with weight w toward b.
func Mix(a, b Dist, w float64) (Dist, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("dist: mixing alphabets %d and %d", len(a), len(b))
	}
	if w < 0 || w > 1 || math.IsNaN(w) {
		return nil, fmt.Errorf("dist: mixture weight %v outside [0,1]", w)
	}
	out := make(Dist, len(a))
	for i := range out {
		out[i] = (1-w)*a[i] + w*b[i]
	}
	return out, nil
}

// sampleWalk returns the first index whose running weight total exceeds u,
// skipping nonpositive entries. Rounding slack falls to the last positive
// index, so the result always has positive weight (-1 only when no entry
// does). Shared by Dist.Sample, Joint.Sample, and SampleWeights so the
// tie-breaking semantics stay in one place.
func sampleWalk(w []float64, u float64) int {
	acc := 0.0
	last := -1
	for i, x := range w {
		if x <= 0 {
			continue
		}
		last = i
		acc += x
		if u < acc {
			return i
		}
	}
	return last
}

// Sample draws a symbol from the distribution. Rounding slack falls to the
// last positive symbol, so the result always has positive probability.
func (d Dist) Sample(rng *rand.Rand) int {
	return sampleWalk(d, rng.Float64())
}

// SampleX is Sample drawing its uniform variate from a value-type Xoshiro
// stream — the same walk, so for equal uniforms the two draws agree
// exactly (the agreement contract between the single-chain and batched
// sampler engines rests on this).
func (d Dist) SampleX(rng *Xoshiro) int {
	return sampleWalk(d, rng.Float64())
}

// weightsTotal validates a weight vector exactly like FromWeights and
// returns its total mass — the shared front half of the SampleWeights
// variants.
func weightsTotal(w []float64) (float64, error) {
	if len(w) == 0 {
		return 0, errors.New("dist: empty weight vector")
	}
	total := 0.0
	for i, x := range w {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return 0, fmt.Errorf("dist: weight %v at index %d", x, i)
		}
		total += x
	}
	if total <= 0 {
		return 0, ErrZeroMass
	}
	if math.IsInf(total, 0) {
		return 0, errors.New("dist: total weight overflows to +Inf")
	}
	return total, nil
}

// SampleWeights draws an index proportional to the given nonnegative,
// not-necessarily-normalized weights without allocating — the hot-path
// companion of FromWeights(w).Sample for callers that reuse a weight
// buffer (the Glauber heat-bath step). It applies the same validation as
// FromWeights.
func SampleWeights(w []float64, rng *rand.Rand) (int, error) {
	total, err := weightsTotal(w)
	if err != nil {
		return -1, err
	}
	return sampleWalk(w, rng.Float64()*total), nil
}

// SampleWeightsX is SampleWeights drawing from a value-type Xoshiro
// stream: identical validation, identical walk, so for equal uniforms the
// two draws agree exactly.
func SampleWeightsX(w []float64, rng *Xoshiro) (int, error) {
	total, err := weightsTotal(w)
	if err != nil {
		return -1, err
	}
	return sampleWalk(w, rng.Float64()*total), nil
}

// ArgMax returns the most probable symbol (smallest index on ties), or -1
// for an empty distribution.
func (d Dist) ArgMax() int {
	best := -1
	bestP := math.Inf(-1)
	for i, p := range d {
		if p > bestP {
			best, bestP = i, p
		}
	}
	return best
}

// Validate checks that the entries are nonnegative, finite, and sum to 1
// within tol.
func (d Dist) Validate(tol float64) error {
	if len(d) == 0 {
		return errors.New("dist: empty distribution")
	}
	total := 0.0
	for i, p := range d {
		if p < -tol || math.IsNaN(p) || math.IsInf(p, 0) {
			return fmt.Errorf("dist: entry %v at index %d", p, i)
		}
		total += p
	}
	if math.Abs(total-1) > tol {
		return fmt.Errorf("dist: total mass %v != 1", total)
	}
	return nil
}

// TV returns the total variation distance d_TV(a, b) = ½·Σ|a(c) − b(c)|
// between two distributions on the same alphabet.
func TV(a, b Dist) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("dist: TV over alphabets %d and %d", len(a), len(b))
	}
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s / 2, nil
}

// MultErr returns the multiplicative error err(a, b) = max_c |ln a(c) −
// ln b(c)| of Section 4.1 — the metric in which the boosting lemma states
// its guarantee, and the one whose telescoping product controls the chain
// rule of Theorem 3.2. Symbols carrying zero mass under both distributions
// are outside both supports and are skipped; a symbol in exactly one
// support makes the error +Inf.
func MultErr(a, b Dist) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("dist: MultErr over alphabets %d and %d", len(a), len(b))
	}
	worst := 0.0
	for i := range a {
		pa, pb := a[i], b[i]
		switch {
		case pa == 0 && pb == 0:
			continue
		case pa <= 0 || pb <= 0:
			return math.Inf(1), nil
		}
		if d := math.Abs(math.Log(pa) - math.Log(pb)); d > worst {
			worst = d
		}
	}
	return worst, nil
}

// ExpectedTVNoise is the sampling-noise envelope for comparing an empirical
// distribution built from `samples` draws against a truth with `support`
// support points: E[d_TV] ≤ ½·√(support/samples) (Cauchy–Schwarz over the
// per-cell binomial deviations), plus a 1.5/√samples concentration margin
// (the empirical TV is 1/samples-Lipschitz per draw, so its fluctuations
// are O(1/√samples) by McDiarmid). Experiments treat an empirical TV below
// this envelope as "statistically indistinguishable from exact". Returns 1
// (the maximum TV) when samples <= 0.
func ExpectedTVNoise(support, samples int) float64 {
	if samples <= 0 {
		return 1
	}
	if support < 1 {
		support = 1
	}
	m := float64(samples)
	noise := 0.5*math.Sqrt(float64(support)/m) + 1.5/math.Sqrt(m)
	if noise > 1 {
		return 1
	}
	return noise
}
