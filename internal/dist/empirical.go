package dist

import "fmt"

// Empirical accumulates observed total configurations (sampler outputs)
// into an empirical distribution, the estimator every statistical exactness
// check compares against brute-force truth.
type Empirical struct {
	table *Joint
	count int
	err   error
}

// NewEmpirical returns an empty estimator for configurations of n vertices.
func NewEmpirical(n int) *Empirical {
	return &Empirical{table: NewJoint(n)}
}

// Observe records one observed configuration. Partial or wrong-length
// observations are recorded as an error surfaced by Joint and Marginal, so
// the hot sampling loops stay unconditional.
func (e *Empirical) Observe(c Config) {
	if e.err != nil {
		return
	}
	if len(c) != e.table.n {
		e.err = fmt.Errorf("dist: observed config of length %d, want %d", len(c), e.table.n)
		return
	}
	if !c.IsTotal() {
		e.err = fmt.Errorf("dist: observed partial configuration")
		return
	}
	e.table.Add(c, 1)
	e.count++
}

// Total returns the number of observations.
func (e *Empirical) Total() int { return e.count }

// Joint returns the normalized empirical joint distribution.
func (e *Empirical) Joint() (*Joint, error) {
	if e.err != nil {
		return nil, e.err
	}
	if e.count == 0 {
		return nil, ErrZeroMass
	}
	out := NewJoint(e.table.n)
	for i, c := range e.table.configs {
		out.Add(c, e.table.weights[i])
	}
	if err := out.Normalize(); err != nil {
		return nil, err
	}
	return out, nil
}

// Marginal returns the empirical marginal of vertex v over the alphabet
// 0..q-1.
func (e *Empirical) Marginal(v, q int) (Dist, error) {
	if e.err != nil {
		return nil, e.err
	}
	return e.table.Marginal(v, q)
}
