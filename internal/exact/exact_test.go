package exact

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func hardcoreInstance(t *testing.T, g *graph.Graph, lambda float64, pinned dist.Config) *gibbs.Instance {
	t.Helper()
	s, err := model.Hardcore(g, lambda)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(s, pinned)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestPartitionFibonacci(t *testing.T) {
	// Independent sets of P_n are counted by Fibonacci: 2, 3, 5, 8, 13...
	want := []int{2, 3, 5, 8, 13, 21}
	for i, w := range want {
		n := i + 1
		in := hardcoreInstance(t, graph.Path(n), 1, nil)
		z, err := Partition(in)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(z, float64(w), 1e-9) {
			t.Errorf("P%d: Z = %v, want %d", n, z, w)
		}
	}
}

func TestPartitionConditional(t *testing.T) {
	// P3 hardcore λ=1, pin middle vertex to 1: only {1} occupied-middle
	// configurations: (0,1,0) => Z = 1.
	pin := dist.Config{dist.Unset, 1, dist.Unset}
	in := hardcoreInstance(t, graph.Path(3), 1, pin)
	z, err := Partition(in)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(z, 1, 1e-9) {
		t.Errorf("conditional Z = %v, want 1", z)
	}
}

func TestPartitionBudgetExceeded(t *testing.T) {
	in := hardcoreInstance(t, graph.Path(30), 1, nil)
	if _, err := PartitionBudget(in, 1000); !errors.Is(err, ErrTooLarge) {
		t.Errorf("expected ErrTooLarge, got %v", err)
	}
}

func TestIsFeasible(t *testing.T) {
	// Adjacent occupied pins are infeasible.
	pin := dist.Config{1, 1, dist.Unset}
	in := hardcoreInstance(t, graph.Path(3), 1, pin)
	ok, err := IsFeasible(in)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("adjacent occupied pinning feasible")
	}
	ok, err = IsFeasible(hardcoreInstance(t, graph.Path(3), 1, nil))
	if err != nil || !ok {
		t.Errorf("empty pinning infeasible: %v %v", ok, err)
	}
}

func TestJointDistributionNormalized(t *testing.T) {
	in := hardcoreInstance(t, graph.Cycle(5), 2, nil)
	j, err := JointDistribution(in)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(j.Total(), 1, 1e-9) {
		t.Errorf("joint total = %v", j.Total())
	}
	if j.Len() != 11 {
		t.Errorf("support = %d, want 11 (independent sets of C5)", j.Len())
	}
}

func TestMarginalPinnedVertex(t *testing.T) {
	pin := dist.Config{1, dist.Unset, dist.Unset}
	in := hardcoreInstance(t, graph.Path(3), 1, pin)
	m, err := Marginal(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m[1] != 1 {
		t.Errorf("pinned marginal = %v", m)
	}
}

func TestMarginalMatchesJoint(t *testing.T) {
	in := hardcoreInstance(t, graph.Cycle(6), 1.3, nil)
	j, err := JointDistribution(in)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 6; v++ {
		direct, err := Marginal(in, v)
		if err != nil {
			t.Fatal(err)
		}
		fromJoint, err := j.Marginal(v, 2)
		if err != nil {
			t.Fatal(err)
		}
		tv, _ := dist.TV(direct, fromJoint)
		if tv > 1e-9 {
			t.Errorf("vertex %d: marginal mismatch %v vs %v", v, direct, fromJoint)
		}
	}
}

func TestMarginalErrors(t *testing.T) {
	in := hardcoreInstance(t, graph.Path(2), 1, nil)
	if _, err := Marginal(in, 9); err == nil {
		t.Error("bad vertex accepted")
	}
	// A pinned vertex returns its point mass by contract (Definition 2.2
	// assumes τ feasible, so the instance owner is responsible for
	// feasibility).
	pinOK := dist.Config{1, dist.Unset}
	inst := hardcoreInstance(t, graph.Path(2), 1, pinOK)
	m, err := Marginal(inst, 0)
	if err != nil || m[1] != 1 {
		t.Errorf("pinned vertex marginal = %v err %v", m, err)
	}
	// Querying a free vertex of an infeasible instance is an error (zero
	// total mass).
	pin := dist.Config{1, 1, dist.Unset}
	bad := hardcoreInstance(t, graph.Path(3), 1, pin)
	if _, err := Marginal(bad, 2); err == nil {
		t.Error("infeasible pinning produced a marginal")
	}
}

func TestBallMarginalSeparator(t *testing.T) {
	// On a path, pinning vertex 2 makes {0,1,2} independent of {3,4}: the
	// ball marginal on B = {0,1,2} must equal the global conditional.
	g := graph.Path(5)
	pin := dist.Config{dist.Unset, dist.Unset, 0, dist.Unset, dist.Unset}
	in := hardcoreInstance(t, g, 1.7, pin)
	want, err := Marginal(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := BallMarginal(in, 0, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	tv, _ := dist.TV(want, got)
	if tv > 1e-9 {
		t.Errorf("ball marginal %v, want %v", got, want)
	}
}

func TestBallMarginalPinnedTarget(t *testing.T) {
	pin := dist.Config{1, dist.Unset, dist.Unset}
	in := hardcoreInstance(t, graph.Path(3), 1, pin)
	m, err := BallMarginal(in, 0, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m[1] != 1 {
		t.Errorf("pinned ball marginal = %v", m)
	}
}

func TestBallMarginalTargetOutsideBall(t *testing.T) {
	in := hardcoreInstance(t, graph.Path(3), 1, nil)
	if _, err := BallMarginal(in, 0, []int{1, 2}); err == nil {
		t.Error("target outside ball accepted")
	}
}

func TestSampleMatchesDistribution(t *testing.T) {
	in := hardcoreInstance(t, graph.Cycle(4), 1, nil)
	j, err := JointDistribution(in)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	emp := dist.NewEmpirical(4)
	const trials = 40000
	for i := 0; i < trials; i++ {
		c, err := Sample(in, rng)
		if err != nil {
			t.Fatal(err)
		}
		emp.Observe(c)
	}
	got, err := emp.Joint()
	if err != nil {
		t.Fatal(err)
	}
	tv, err := dist.TVJoint(j, got)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.02 {
		t.Errorf("empirical TV = %v", tv)
	}
}

func TestCountFeasibleColorings(t *testing.T) {
	s, err := model.Coloring(graph.Path(3), 2)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := gibbs.NewInstance(s, nil)
	n, err := CountFeasible(in)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("2-colorings of P3 = %d, want 2", n)
	}
}

func TestLogPartition(t *testing.T) {
	in := hardcoreInstance(t, graph.Path(2), 1, nil)
	lz, err := LogPartition(in)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(lz, math.Log(3), 1e-9) {
		t.Errorf("ln Z = %v, want ln 3", lz)
	}
	bad := hardcoreInstance(t, graph.Path(2), 1, dist.Config{1, 1})
	if _, err := LogPartition(bad); err == nil {
		t.Error("infeasible log partition succeeded")
	}
}

// Property: chain rule. For a random pinning order, the product of
// conditional marginals equals the joint probability (self-reducibility,
// Remark 2.2).
func TestChainRuleProperty(t *testing.T) {
	g := graph.Cycle(5)
	in := hardcoreInstance(t, g, 1.4, nil)
	j, err := JointDistribution(in)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg, err := j.Sample(r)
		if err != nil {
			return false
		}
		order := r.Perm(5)
		prod := 1.0
		cur := in
		for _, v := range order {
			m, err := Marginal(cur, v)
			if err != nil {
				return false
			}
			prod *= m[cfg[v]]
			cur, err = cur.Pin(v, cfg[v])
			if err != nil {
				return false
			}
		}
		return almostEq(prod, j.Prob(cfg), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(22))}); err != nil {
		t.Error(err)
	}
}

// Property: conditional independence across a separator (Proposition 2.1).
func TestConditionalIndependenceProperty(t *testing.T) {
	// Path 0-1-2-3-4; C = {2} separates A = {0,1} and B = {3,4}.
	g := graph.Path(5)
	in := hardcoreInstance(t, g, 1.2, nil)
	j, err := JointDistribution(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, c2 := range []int{0, 1} {
		// P[Y0=a, Y3=b | Y2=c] should factor.
		cond := dist.NewConfig(5)
		cond[2] = c2
		pAB := make(map[[2]int]float64)
		pA := make(map[int]float64)
		pB := make(map[int]float64)
		total := 0.0
		for _, cfg := range j.Support() {
			if cfg[2] != c2 {
				continue
			}
			p := j.Prob(cfg)
			total += p
			pAB[[2]int{cfg[0], cfg[3]}] += p
			pA[cfg[0]] += p
			pB[cfg[3]] += p
		}
		for ab, p := range pAB {
			want := pA[ab[0]] * pB[ab[1]] / total
			if !almostEq(p, want, 1e-9) {
				t.Errorf("c2=%d: P[%v]=%v want %v", c2, ab, p, want)
			}
		}
	}
}
