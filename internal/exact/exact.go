// Package exact provides brute-force ground truth for small instances:
// partition functions, exact joint distributions, exact (conditional)
// marginals, and exact samplers, all by exhaustive enumeration. The
// distributed algorithms never rely on this package for efficiency — it is
// the referee against which the paper's exactness and accuracy claims
// (Theorems 3.2, 4.2, 5.1) are verified, and it implements the exact
// within-ball marginal computations that the paper's local algorithms
// perform after pinning a boundary shell (Sections 4.1 and 5).
package exact

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/state"
)

// ErrTooLarge indicates that enumeration would exceed the configured budget.
var ErrTooLarge = errors.New("exact: enumeration too large")

// DefaultBudget is the default maximum number of configurations enumerated.
const DefaultBudget = 1 << 24

// enumerate iterates over all positive-weight total extensions of the
// instance pinning, calling visit with the single-chain lattice holding the
// configuration and its weight (visit must not retain the lattice's cells
// across calls).
//
// The assignment walk runs on a compact state.Lattice (one byte per vertex
// for q ≤ 255) and the weight is maintained incrementally on the compiled
// engine: assigning free vertex v multiplies the running product by
// PartialWeightAtLattice — the factors whose last unassigned scope vertex
// is v — so each factor is accounted exactly once along a root-to-leaf path
// and a zero delta prunes the subtree. No per-leaf full re-evaluation, no
// allocation in the recursion.
func enumerate(in *gibbs.Instance, budget int, visit func(l *state.Lattice, w float64)) error {
	eng := in.Spec.Compiled()
	free := in.FreeVertices()
	q := in.Q()
	total := 1.0
	for range free {
		total *= float64(q)
		if total > float64(budget) {
			return fmt.Errorf("%w: q^free = %.0f > budget %d", ErrTooLarge, total, budget)
		}
	}
	lat, err := state.New(in.N(), 1, q)
	if err != nil {
		return err
	}
	if err := lat.SetChain(0, in.Pinned); err != nil {
		return err
	}
	// Factors fully determined by the pinning contribute once, up front.
	base := eng.PartialWeightLattice(lat, 0)
	if base == 0 {
		return nil
	}
	if u8 := lat.Raw8(); u8 != nil {
		enumerateCells(eng, lat, u8, free, q, base, visit)
	} else {
		enumerateCells(eng, lat, lat.RawWide(), free, q, base, visit)
	}
	return nil
}

// enumerateCells is the width-specialized recursion of enumerate: the
// representation is dispatched once, and the single-chain cell writes
// (layout cells[v], B = 1) and incremental weight deltas run on the raw
// cells. T(dist.Unset) is the representation's own Unset sentinel (−1
// truncates to the compact 0xFF).
func enumerateCells[T state.Cells](eng *gibbs.Compiled, lat *state.Lattice, cells []T, free []int, q int, base float64, visit func(l *state.Lattice, w float64)) {
	unset := dist.Unset // variable, so T(unset) truncates to the cell sentinel
	var rec func(i int, w float64)
	rec = func(i int, w float64) {
		if i == len(free) {
			visit(lat, w)
			return
		}
		v := free[i]
		for x := 0; x < q; x++ {
			cells[v] = T(x)
			d := gibbs.PartialWeightAtCells1(eng, cells, v)
			if d == 0 {
				continue
			}
			rec(i+1, w*d)
		}
		cells[v] = T(unset)
	}
	rec(0, base)
}

// Partition returns Z(τ) = Σ_{σ ⊇ τ} w(σ), the conditional partition
// function of the instance.
func Partition(in *gibbs.Instance) (float64, error) {
	return PartitionBudget(in, DefaultBudget)
}

// PartitionBudget is Partition with an explicit enumeration budget.
func PartitionBudget(in *gibbs.Instance, budget int) (float64, error) {
	z := 0.0
	err := enumerate(in, budget, func(_ *state.Lattice, w float64) { z += w })
	if err != nil {
		return 0, err
	}
	return z, nil
}

// IsFeasible reports whether the pinning of the instance is feasible with
// respect to the Gibbs distribution, i.e. extends to a configuration of
// positive weight (the global notion of Definition 2.5).
func IsFeasible(in *gibbs.Instance) (bool, error) {
	z, err := Partition(in)
	if err != nil {
		return false, err
	}
	return z > 0, nil
}

// JointDistribution returns the exact conditional joint distribution µ^τ as
// a sparse table over total configurations.
func JointDistribution(in *gibbs.Instance) (*dist.Joint, error) {
	j := dist.NewJoint(in.N())
	scratch := dist.NewConfig(in.N())
	err := enumerate(in, DefaultBudget, func(l *state.Lattice, w float64) {
		l.ReadChain(0, scratch)
		j.Add(scratch, w) // Add clones the key
	})
	if err != nil {
		return nil, err
	}
	if err := j.Normalize(); err != nil {
		return nil, fmt.Errorf("exact: %w (infeasible pinning?)", err)
	}
	return j, nil
}

// Marginal returns the exact conditional marginal µ^τ_v of vertex v.
// If v is pinned the result is the point mass at its pinned value.
func Marginal(in *gibbs.Instance, v int) (dist.Dist, error) {
	return MarginalBudget(in, v, DefaultBudget)
}

// MarginalBudget is Marginal with an explicit enumeration budget.
func MarginalBudget(in *gibbs.Instance, v int, budget int) (dist.Dist, error) {
	if v < 0 || v >= in.N() {
		return nil, fmt.Errorf("exact: marginal vertex %d out of range", v)
	}
	if x := in.Pinned[v]; x != dist.Unset {
		return dist.Point(in.Q(), x), nil
	}
	w := make([]float64, in.Q())
	err := enumerate(in, budget, func(l *state.Lattice, wt float64) {
		w[l.Get(v, 0)] += wt
	})
	if err != nil {
		return nil, err
	}
	d, err := dist.FromWeights(w)
	if err != nil {
		return nil, fmt.Errorf("exact: marginal at %d: %w", v, err)
	}
	return d, nil
}

// BallMarginal computes the marginal of v within the induced subgraph on the
// vertex set ball, treating every vertex outside the ball as absent and
// every pinned vertex inside the ball as fixed. By the conditional
// independence property (Proposition 2.1), when the pinned vertices inside
// the ball separate v from the outside, this equals the true conditional
// marginal µ^τ_v. This is exactly the within-ball computation performed by
// the algorithms of Lemma 4.1 and Theorem 5.1.
func BallMarginal(in *gibbs.Instance, v int, ball []int) (dist.Dist, error) {
	return BallMarginalBudget(in, v, ball, DefaultBudget)
}

// BallMarginalBudget is BallMarginal with an explicit enumeration budget.
func BallMarginalBudget(in *gibbs.Instance, v int, ball []int, budget int) (dist.Dist, error) {
	n := in.N()
	if v < 0 || v >= n {
		return nil, fmt.Errorf("exact: ball marginal target %d out of range", v)
	}
	if x := in.Pinned[v]; x != dist.Unset {
		return dist.Point(in.Q(), x), nil
	}
	eng := in.Spec.Compiled()
	inBall := make([]bool, n)
	for _, u := range ball {
		if u < 0 || u >= n {
			return nil, fmt.Errorf("exact: ball vertex %d out of range", u)
		}
		inBall[u] = true
	}
	if !inBall[v] {
		return nil, fmt.Errorf("exact: ball marginal target %d not in ball", v)
	}
	// Free variables restricted to the ball; factors restricted to scopes
	// fully inside the ball (w_B in the paper).
	var free []int
	for _, u := range ball {
		if in.Pinned[u] == dist.Unset {
			free = append(free, u)
		}
	}
	active := make([]bool, len(in.Spec.Factors))
	for i, f := range in.Spec.Factors {
		inside := true
		for _, u := range f.Scope {
			if !inBall[u] {
				inside = false
				break
			}
		}
		active[i] = inside
	}
	q := in.Q()
	total := 1.0
	for range free {
		total *= float64(q)
		if total > float64(budget) {
			return nil, fmt.Errorf("%w: ball enumeration q^%d", ErrTooLarge, len(free))
		}
	}
	weights := make([]float64, q)
	lat, err := state.New(n, 1, q)
	if err != nil {
		return nil, err
	}
	if err := lat.SetChain(0, in.Pinned); err != nil {
		return nil, err
	}
	// As in enumerate, the within-ball weight w_B is maintained
	// incrementally on the lattice: active factors fully determined by the
	// pinning contribute to the root weight, and each active factor at u
	// that became fully assigned when u was assigned contributes at u.
	base := 1.0
	for i := range in.Spec.Factors {
		if !active[i] {
			continue
		}
		val, ok := eng.EvalFullLattice(i, lat, 0)
		if !ok {
			continue
		}
		base *= val
		if base == 0 {
			return nil, fmt.Errorf("exact: ball marginal at %d: %w (infeasible pinning)", v, dist.ErrZeroMass)
		}
	}
	if u8 := lat.Raw8(); u8 != nil {
		ballWalkCells(eng, u8, active, free, v, q, base, weights)
	} else {
		ballWalkCells(eng, lat.RawWide(), active, free, v, q, base, weights)
	}
	d, err := dist.FromWeights(weights)
	if err != nil {
		return nil, fmt.Errorf("exact: ball marginal at %d: %w", v, err)
	}
	return d, nil
}

// ballWalkCells is the width-specialized within-ball assignment walk of
// BallMarginal: only the active (fully inside the ball) factors
// contribute, via the incremental per-vertex delta.
func ballWalkCells[T state.Cells](eng *gibbs.Compiled, cells []T, active []bool, free []int, v, q int, base float64, weights []float64) {
	unset := dist.Unset // variable, so T(unset) truncates to the cell sentinel
	deltaAt := func(u int) float64 {
		w := 1.0
		for _, fi := range eng.FactorsAt(u) {
			if !active[fi] {
				continue
			}
			val, ok := gibbs.EvalFullCells1(eng, int(fi), cells)
			if !ok {
				continue
			}
			w *= val
			if w == 0 {
				return 0
			}
		}
		return w
	}
	var rec func(i int, w float64)
	rec = func(i int, w float64) {
		if i == len(free) {
			weights[int(cells[v])] += w
			return
		}
		u := free[i]
		for x := 0; x < q; x++ {
			cells[u] = T(x)
			d := deltaAt(u)
			if d == 0 {
				continue
			}
			rec(i+1, w*d)
		}
		cells[u] = T(unset)
	}
	rec(0, base)
}

// Sample draws an exact sample from µ^τ by enumeration (ground truth for
// statistical tests).
func Sample(in *gibbs.Instance, rng *rand.Rand) (dist.Config, error) {
	j, err := JointDistribution(in)
	if err != nil {
		return nil, err
	}
	return j.Sample(rng)
}

// CountFeasible returns the number of feasible total configurations (for
// uniform/Boolean-factor distributions this is the counting quantity |Ω_I|
// of the introduction).
func CountFeasible(in *gibbs.Instance) (int, error) {
	n := 0
	err := enumerate(in, DefaultBudget, func(_ *state.Lattice, _ float64) { n++ })
	if err != nil {
		return 0, err
	}
	return n, nil
}

// LogPartition returns ln Z(τ). It errs on infeasible pinnings.
func LogPartition(in *gibbs.Instance) (float64, error) {
	z, err := Partition(in)
	if err != nil {
		return 0, err
	}
	if z <= 0 {
		return 0, gibbs.ErrInfeasible
	}
	return math.Log(z), nil
}
