package netdecomp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/local"
)

func TestBallCarvingValid(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, g := range []*graph.Graph{
		graph.Cycle(20),
		graph.Grid(6, 6),
		graph.Path(30),
		graph.Complete(8),
		graph.CompleteTree(2, 4),
	} {
		d, err := BallCarving(g, Params{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Validate(g, 0); err != nil {
			t.Errorf("%v: %v", g, err)
		}
	}
}

func TestBallCarvingBounds(t *testing.T) {
	// On moderately sized graphs, colors and diameters should be
	// logarithmic with overwhelming probability.
	rng := rand.New(rand.NewSource(52))
	g := graph.Torus(8, 8)
	n := g.N()
	logn := math.Log2(float64(n + 1))
	failTotal := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		d, err := BallCarving(g, Params{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Validate(g, 0); err != nil {
			t.Fatal(err)
		}
		if float64(d.Colors) > 4*logn+2 {
			t.Errorf("colors = %d exceeds budget", d.Colors)
		}
		if float64(d.Diameter) > 4*logn+2 {
			t.Errorf("diameter = %d exceeds bound", d.Diameter)
		}
		failTotal += d.FailureCount()
	}
	// Failures should be extremely rare (expected < 1/n² per run).
	if failTotal > 1 {
		t.Errorf("%d failures over %d trials", failTotal, trials)
	}
}

func TestBallCarvingEmptyGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	if _, err := BallCarving(graph.New(0), Params{}, rng); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestBallCarvingSingleton(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	d, err := BallCarving(graph.New(1), Params{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(graph.New(1), 0); err != nil {
		t.Fatal(err)
	}
	if d.Cluster[0] < 0 {
		t.Error("singleton unassigned")
	}
}

func TestBallCarvingTinyBudgetFails(t *testing.T) {
	// With one phase and radius 1 on a long path, many vertices should
	// remain uncarved and be flagged as failed — failures must be certified,
	// never silent.
	rng := rand.New(rand.NewSource(55))
	g := graph.Path(200)
	sawFailure := false
	for i := 0; i < 10 && !sawFailure; i++ {
		d, err := BallCarving(g, Params{ColorBudget: 1, RadiusBudget: 1}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Validate(g, 0); err != nil {
			t.Fatal(err)
		}
		sawFailure = d.FailureCount() > 0
	}
	if !sawFailure {
		t.Error("starved decomposition never reported failures")
	}
}

func TestScheduleOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	g := graph.Grid(5, 5)
	d, err := BallCarving(g, Params{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	order := d.ScheduleOrder()
	if len(order) != g.N() {
		t.Fatalf("order length %d", len(order))
	}
	seen := make([]bool, g.N())
	for _, v := range order {
		if v < 0 || v >= g.N() || seen[v] {
			t.Fatalf("order not a permutation: %v", order)
		}
		seen[v] = true
	}
	// Colors must appear in nondecreasing order.
	lastColor := -1
	for _, v := range order {
		c := d.Color[d.Cluster[v]]
		if c < lastColor {
			t.Fatal("schedule order violates color monotonicity")
		}
		lastColor = c
	}
}

func TestSimulationRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	g := graph.Cycle(16)
	d, err := BallCarving(g, Params{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	r0 := d.SimulationRounds(0)
	r2 := d.SimulationRounds(2)
	if r2 <= r0 {
		t.Errorf("rounds should grow with locality: %d vs %d", r2, r0)
	}
	if r0 <= 0 {
		t.Errorf("rounds = %d", r0)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	g := graph.Cycle(10)
	d, err := BallCarving(g, Params{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: move vertex 0 to a bogus cluster.
	d.Cluster[0] = 999
	if err := d.Validate(g, 0); err == nil {
		t.Error("corrupted decomposition validated")
	}
}

func TestPowerGraphDecomposition(t *testing.T) {
	// The Lemma 3.1 use case: decompose G^(r+1).
	rng := rand.New(rand.NewSource(59))
	g := graph.Cycle(24)
	p := g.Power(3)
	d, err := BallCarving(p, Params{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(p, 0); err != nil {
		t.Fatal(err)
	}
	// Same-color clusters are non-adjacent in G^3, i.e. at distance > 3
	// in G — exactly the independence the chromatic scheduler needs.
	for _, e := range p.Edges() {
		cu, cv := d.Cluster[e.U], d.Cluster[e.V]
		if cu != cv && d.Color[cu] == d.Color[cv] {
			t.Fatalf("power-graph adjacency violated")
		}
	}
}

// Property: on random graphs of every density, ball carving yields a valid
// decomposition whose schedule order is a permutation.
func TestBallCarvingRandomGraphsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		g := graph.ErdosRenyi(n, r.Float64(), r)
		d, err := BallCarving(g, Params{}, r)
		if err != nil {
			return false
		}
		if err := d.Validate(g, 0); err != nil {
			return false
		}
		order := d.ScheduleOrder()
		seen := make([]bool, n)
		for _, v := range order {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(order) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: cluster diameters never exceed twice the radius budget (each
// cluster sits inside a carved ball).
func TestBallCarvingDiameterProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := graph.ErdosRenyi(24, 0.15, r)
		p := Params{RadiusBudget: 3}
		d, err := BallCarving(g, p, r)
		if err != nil {
			return false
		}
		for c, members := range d.Members {
			failed := false
			for _, v := range members {
				if d.Failed[v] {
					failed = true
				}
			}
			if failed {
				continue
			}
			if dd := g.SetDiameter(members); dd > 2*p.RadiusBudget {
				_ = c
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestDistributedBallCarvingValid(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for _, g := range []*graph.Graph{
		graph.Cycle(18),
		graph.Grid(5, 5),
		graph.CompleteTree(2, 4),
		graph.Complete(6),
	} {
		net := local.NewNetwork(g)
		d, err := DistributedBallCarving(net, Params{}, rng)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if err := d.Validate(g, 0); err != nil {
			t.Errorf("%v: %v", g, err)
		}
		if d.Rounds <= 0 {
			t.Errorf("%v: no rounds executed", g)
		}
	}
}

func TestDistributedMatchesCentralizedGuarantees(t *testing.T) {
	// Both constructions must satisfy the same structural bounds; the
	// distributed one additionally reports genuinely executed rounds.
	rng := rand.New(rand.NewSource(63))
	g := graph.Torus(6, 6)
	logn := math.Log2(float64(g.N() + 1))
	net := local.NewNetwork(g)
	for i := 0; i < 5; i++ {
		dd, err := DistributedBallCarving(net, Params{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := dd.Validate(g, 0); err != nil {
			t.Fatal(err)
		}
		if float64(dd.Colors) > 4*logn+2 || float64(dd.Diameter) > 4*logn+2 {
			t.Errorf("distributed bounds violated: colors=%d diam=%d", dd.Colors, dd.Diameter)
		}
		if dd.FailureCount() > 0 {
			t.Errorf("unexpected failures: %d", dd.FailureCount())
		}
	}
}

func TestDistributedBallCarvingEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	if _, err := DistributedBallCarving(local.NewNetwork(graph.New(0)), Params{}, rng); err == nil {
		t.Error("empty graph accepted")
	}
}
