// Package netdecomp implements randomized (O(log n), O(log n)) network
// decompositions in the style of Linial–Saks ball carving, and the
// chromatic scheduler that realizes Lemma 3.1 of Feng & Yin, PODC 2018 (the
// SLOCAL-to-LOCAL transformation of Ghaffari, Kuhn and Maus): a LOCAL
// algorithm computes a decomposition of the power graph G^(r+1), then
// simulates a locality-r SLOCAL algorithm cluster by cluster in color order,
// yielding time complexity O(r · C · D) = O(r log² n) with locally
// certifiable failures of total expectation < 1/n².
package netdecomp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Decomposition is a (colors, diameter) network decomposition: a partition
// of the vertices into clusters, each assigned a color, such that clusters
// of the same color are pairwise non-adjacent, the number of colors is at
// most Colors, and every cluster has weak diameter at most Diameter.
type Decomposition struct {
	// Cluster[v] is the cluster index of vertex v.
	Cluster []int
	// Color[c] is the color of cluster c.
	Color []int
	// Members[c] lists the vertices of cluster c, sorted.
	Members [][]int
	// Colors is the number of colors used.
	Colors int
	// Diameter is the maximum weak diameter over clusters (measured in the
	// decomposed graph).
	Diameter int
	// Failed[v] marks vertices whose cluster violated the promised bounds;
	// these correspond to the locally certifiable failures F''_v of Lemma
	// 3.1. Failure detection is local: a vertex sees its own cluster.
	Failed []bool
	// Rounds is the number of LOCAL rounds charged for constructing the
	// decomposition distributively (on the decomposed graph).
	Rounds int
}

// Params tunes the ball-carving construction.
type Params struct {
	// ColorBudget bounds the number of phases (colors); defaults to
	// ceil(4·log2(n)) + 1.
	ColorBudget int
	// RadiusBudget bounds the carving radius per phase (cluster radius);
	// defaults to ceil(2·log2(n)) + 1.
	RadiusBudget int
}

func (p Params) withDefaults(n int) Params {
	logn := int(math.Ceil(math.Log2(float64(n + 1))))
	if logn < 1 {
		logn = 1
	}
	if p.ColorBudget <= 0 {
		p.ColorBudget = 4*logn + 1
	}
	if p.RadiusBudget <= 0 {
		p.RadiusBudget = 2*logn + 1
	}
	return p
}

// ErrEmptyGraph indicates a decomposition request on an empty graph.
var ErrEmptyGraph = errors.New("netdecomp: empty graph")

// BallCarving computes a randomized (O(log n), O(log n)) decomposition of g
// by Linial–Saks ball carving: in each phase, every live vertex draws a
// radius from a truncated geometric distribution; every live vertex joins
// the ball of the live vertex with the largest (radius − distance, ID) that
// covers it, and the vertices strictly inside their chosen ball are carved
// out as clusters of the current color. Each phase removes at least half of
// the live vertices in expectation, so O(log n) phases suffice with high
// probability; leftover live vertices after the color budget are marked
// Failed.
func BallCarving(g *graph.Graph, p Params, rng *rand.Rand) (*Decomposition, error) {
	n := g.N()
	if n == 0 {
		return nil, ErrEmptyGraph
	}
	p = p.withDefaults(n)
	d := &Decomposition{
		Cluster: make([]int, n),
		Failed:  make([]bool, n),
	}
	for v := range d.Cluster {
		d.Cluster[v] = -1
	}
	live := make([]bool, n)
	liveCount := n
	for v := range live {
		live[v] = true
	}
	for phase := 0; phase < p.ColorBudget && liveCount > 0; phase++ {
		// Each live vertex draws a truncated geometric radius: r_v counts
		// fair-coin successes, capped at RadiusBudget.
		radius := make([]int, n)
		for v := 0; v < n; v++ {
			if !live[v] {
				continue
			}
			r := 0
			for r < p.RadiusBudget && rng.Intn(2) == 0 {
				r++
			}
			radius[v] = r
		}
		// Every live vertex computes distances to live candidates within the
		// radius budget (a 2·RadiusBudget-round LOCAL computation on the
		// carved graph).
		owner := make([]int, n)
		interior := make([]bool, n)
		for v := range owner {
			owner[v] = -1
		}
		for v := 0; v < n; v++ {
			if !live[v] {
				continue
			}
			// Winner rule (classic Linial–Saks): among the live candidates u
			// whose ball covers v (dist(u, v) <= r_u in the live graph), the
			// one with the largest ID wins. v is carved this phase iff it
			// lies strictly inside the winner's ball. If adjacent vertices v
			// and w are both carved, the max-ID winner of v also covers w
			// (its distance grows by at most one), so both pick the same
			// owner — which is what makes same-color clusters non-adjacent.
			bestID := -1
			bestInterior := false
			for u, du := range liveBallDist(g, live, v, p.RadiusBudget) {
				if !live[u] || radius[u] < du {
					continue
				}
				if u > bestID {
					bestID = u
					bestInterior = radius[u] > du
				}
			}
			owner[v] = bestID
			interior[v] = bestInterior
		}
		// Interior vertices of each ball form a cluster of this phase's
		// color; boundary vertices stay live for later phases.
		byOwner := make(map[int][]int)
		for v := 0; v < n; v++ {
			if live[v] && owner[v] >= 0 && interior[v] {
				byOwner[owner[v]] = append(byOwner[owner[v]], v)
			}
		}
		owners := make([]int, 0, len(byOwner))
		for o := range byOwner {
			owners = append(owners, o)
		}
		sort.Ints(owners)
		for _, o := range owners {
			members := byOwner[o]
			sort.Ints(members)
			c := len(d.Members)
			d.Members = append(d.Members, members)
			d.Color = append(d.Color, phase)
			for _, v := range members {
				d.Cluster[v] = c
				live[v] = false
				liveCount--
			}
		}
		if phase+1 > d.Colors {
			d.Colors = phase + 1
		}
		// Each phase costs O(RadiusBudget) rounds: radius draws are local,
		// ball discovery floods to distance RadiusBudget, and carving
		// decisions flow back.
		d.Rounds += 2*p.RadiusBudget + 1
	}
	for v := 0; v < n; v++ {
		if d.Cluster[v] == -1 {
			d.Failed[v] = true
			// Failed vertices form singleton clusters, each with its own
			// fresh color, so downstream schedulers can still place them
			// deterministically and the color-class independence invariant
			// holds unconditionally.
			c := len(d.Members)
			d.Members = append(d.Members, []int{v})
			d.Color = append(d.Color, d.Colors)
			d.Cluster[v] = c
			d.Colors++
		}
	}
	// Measure the realized maximum weak cluster diameter.
	for _, members := range d.Members {
		if dd := g.SetDiameter(members); dd > d.Diameter {
			d.Diameter = dd
		}
	}
	return d, nil
}

// liveBallDist returns distances from v to vertices within the given radius
// using only live intermediate vertices (carving happens in the graph
// induced by live vertices).
func liveBallDist(g *graph.Graph, live []bool, v, r int) map[int]int {
	dist := map[int]int{v: 0}
	queue := []int{v}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if dist[u] == r {
			continue
		}
		for _, w := range g.Neighbors(u) {
			if !live[w] {
				continue
			}
			if _, seen := dist[w]; !seen {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Validate checks the structural guarantees of the decomposition on g:
// clusters partition the vertex set, same-color clusters are non-adjacent,
// and non-failed clusters obey the diameter bound.
func (d *Decomposition) Validate(g *graph.Graph, maxDiameter int) error {
	n := g.N()
	if len(d.Cluster) != n {
		return fmt.Errorf("netdecomp: cluster array length %d != n %d", len(d.Cluster), n)
	}
	seen := make([]bool, n)
	for c, members := range d.Members {
		for _, v := range members {
			if v < 0 || v >= n || seen[v] {
				return fmt.Errorf("netdecomp: vertex %d repeated or out of range in cluster %d", v, c)
			}
			seen[v] = true
			if d.Cluster[v] != c {
				return fmt.Errorf("netdecomp: vertex %d cluster mismatch", v)
			}
		}
	}
	for v := 0; v < n; v++ {
		if !seen[v] {
			return fmt.Errorf("netdecomp: vertex %d unassigned", v)
		}
	}
	// Same-color clusters must be non-adjacent in g.
	for _, e := range g.Edges() {
		cu, cv := d.Cluster[e.U], d.Cluster[e.V]
		if cu != cv && d.Color[cu] == d.Color[cv] {
			return fmt.Errorf("netdecomp: same-color adjacent clusters %d, %d via edge (%d,%d)", cu, cv, e.U, e.V)
		}
	}
	if maxDiameter > 0 {
		for c, members := range d.Members {
			failed := false
			for _, v := range members {
				if d.Failed[v] {
					failed = true
				}
			}
			if failed {
				continue
			}
			if dd := g.SetDiameter(members); dd > maxDiameter {
				return fmt.Errorf("netdecomp: cluster %d diameter %d exceeds %d", c, dd, maxDiameter)
			}
		}
	}
	return nil
}

// FailureCount returns the number of failed vertices.
func (d *Decomposition) FailureCount() int {
	c := 0
	for _, f := range d.Failed {
		if f {
			c++
		}
	}
	return c
}

// ScheduleOrder returns the node processing order induced by the chromatic
// scheduler: clusters sorted by (color, smallest member), members in
// increasing vertex order within a cluster. Simulating an SLOCAL algorithm
// along this order, color class by color class, is exactly the parallel
// simulation of Lemma 3.1 — same-color clusters are non-adjacent in the
// decomposed power graph, so their sequential scans do not interact and the
// joint output distribution equals the sequential run on this ordering.
func (d *Decomposition) ScheduleOrder() []int {
	type clusterKey struct {
		color, minV, idx int
	}
	keys := make([]clusterKey, 0, len(d.Members))
	for c, members := range d.Members {
		if len(members) == 0 {
			continue
		}
		keys = append(keys, clusterKey{color: d.Color[c], minV: members[0], idx: c})
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].color != keys[j].color {
			return keys[i].color < keys[j].color
		}
		return keys[i].minV < keys[j].minV
	})
	var order []int
	for _, k := range keys {
		order = append(order, d.Members[k.idx]...)
	}
	return order
}

// SimulationRounds returns the LOCAL round complexity charged for simulating
// a locality-r SLOCAL algorithm through this decomposition of G^(r+1):
// construction rounds (scaled by r+1 because the decomposition is computed
// on the power graph) plus C·(D+1)·(r+1) rounds of chromatic scheduling.
func (d *Decomposition) SimulationRounds(r int) int {
	scale := r + 1
	return d.Rounds*scale + d.Colors*(d.Diameter+1)*scale
}
