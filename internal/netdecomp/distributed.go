package netdecomp

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/local"
)

// DistributedBallCarving runs the same Linial–Saks ball carving as
// BallCarving, but as a genuine message-passing protocol on a
// local.Network: in each phase every live node draws a truncated geometric
// radius, floods (ID, radius, distance) tokens through live nodes for
// RadiusBudget rounds, locally selects the max-ID covering candidate, and
// carves itself when strictly inside the winner's ball. The returned
// Rounds field is the exact number of synchronous rounds the network
// executed (not an analytical estimate).
//
// The centralized BallCarving remains the fast path for the reductions;
// this function exists to witness that the decomposition really is a LOCAL
// algorithm, and the tests check both produce decompositions with the same
// structural guarantees.
func DistributedBallCarving(net *local.Network, p Params, rng *rand.Rand) (*Decomposition, error) {
	g := net.G
	n := g.N()
	if n == 0 {
		return nil, ErrEmptyGraph
	}
	p = p.withDefaults(n)
	d := &Decomposition{
		Cluster: make([]int, n),
		Failed:  make([]bool, n),
	}
	for v := range d.Cluster {
		d.Cluster[v] = -1
	}
	live := make([]bool, n)
	for v := range live {
		live[v] = true
	}
	liveCount := n
	totalRounds := 0
	for phase := 0; phase < p.ColorBudget && liveCount > 0; phase++ {
		owner, interior, rounds, err := carvePhase(net, p, live, rng)
		if err != nil {
			return nil, err
		}
		totalRounds += rounds
		byOwner := make(map[int][]int)
		for v := 0; v < n; v++ {
			if live[v] && owner[v] >= 0 && interior[v] {
				byOwner[owner[v]] = append(byOwner[owner[v]], v)
			}
		}
		owners := make([]int, 0, len(byOwner))
		for o := range byOwner {
			owners = append(owners, o)
		}
		sort.Ints(owners)
		for _, o := range owners {
			members := byOwner[o]
			sort.Ints(members)
			c := len(d.Members)
			d.Members = append(d.Members, members)
			d.Color = append(d.Color, phase)
			for _, v := range members {
				d.Cluster[v] = c
				live[v] = false
				liveCount--
			}
		}
		if phase+1 > d.Colors {
			d.Colors = phase + 1
		}
	}
	for v := 0; v < n; v++ {
		if d.Cluster[v] == -1 {
			d.Failed[v] = true
			c := len(d.Members)
			d.Members = append(d.Members, []int{v})
			d.Color = append(d.Color, d.Colors)
			d.Cluster[v] = c
			d.Colors++
		}
	}
	for _, members := range d.Members {
		if dd := g.SetDiameter(members); dd > d.Diameter {
			d.Diameter = dd
		}
	}
	d.Rounds = totalRounds
	return d, nil
}

// carveToken is the flooded unit: a candidate's ID-bearing ball
// announcement.
type carveToken struct {
	origin int
	radius int
	dist   int
}

// carveState is the per-node state of one carving phase.
type carveState struct {
	live    bool
	radius  int
	known   map[int]carveToken // best (smallest) distance per origin
	horizon int
}

// carvePhase floods candidate tokens through live vertices for the radius
// budget and returns each live vertex's chosen owner and interior flag.
func carvePhase(net *local.Network, p Params, live []bool, rng *rand.Rand) (owner []int, interior []bool, rounds int, err error) {
	n := net.G.N()
	// Private radius draws (the nodes' local randomness; drawn up front so
	// the simulation is deterministic given the stream).
	radius := make([]int, n)
	for v := 0; v < n; v++ {
		if !live[v] {
			continue
		}
		r := 0
		for r < p.RadiusBudget && rng.Intn(2) == 0 {
			r++
		}
		radius[v] = r
	}
	init := func(v int) any {
		st := &carveState{live: live[v], radius: radius[v], known: map[int]carveToken{}, horizon: p.RadiusBudget}
		if st.live {
			st.known[v] = carveToken{origin: v, radius: st.radius, dist: 0}
		}
		return st
	}
	step := func(v, round int, state any, inbox []local.Message) (any, []local.Message, bool) {
		st, ok := state.(*carveState)
		if !ok {
			return state, nil, true
		}
		if !st.live {
			// Dead nodes do not relay: carving distances are measured in
			// the live-induced graph.
			return st, nil, true
		}
		for _, m := range inbox {
			tokens, ok := m.Payload.([]carveToken)
			if !ok {
				continue
			}
			for _, tk := range tokens {
				if cur, seen := st.known[tk.origin]; !seen || tk.dist < cur.dist {
					st.known[tk.origin] = tk
				}
			}
		}
		if round >= st.horizon {
			return st, nil, true
		}
		// Relay everything known, one hop farther.
		payload := make([]carveToken, 0, len(st.known))
		for _, tk := range st.known {
			if tk.dist < st.horizon {
				payload = append(payload, carveToken{origin: tk.origin, radius: tk.radius, dist: tk.dist + 1})
			}
		}
		var out []local.Message
		for _, u := range net.G.Neighbors(v) {
			if live[u] {
				out = append(out, local.Message{From: v, To: u, Payload: payload})
			}
		}
		return st, out, false
	}
	res, err := net.Run(p.RadiusBudget+1, init, step)
	if err != nil {
		return nil, nil, 0, err
	}
	owner = make([]int, n)
	interior = make([]bool, n)
	for v := range owner {
		owner[v] = -1
	}
	for v := 0; v < n; v++ {
		if !live[v] {
			continue
		}
		st, ok := res.States[v].(*carveState)
		if !ok {
			return nil, nil, 0, fmt.Errorf("netdecomp: bad carve state at %d", v)
		}
		bestID := -1
		bestInterior := false
		for _, tk := range st.known {
			if tk.radius < tk.dist {
				continue
			}
			if tk.origin > bestID {
				bestID = tk.origin
				bestInterior = tk.radius > tk.dist
			}
		}
		owner[v] = bestID
		interior[v] = bestInterior
	}
	return owner, interior, res.Rounds, nil
}
