package construct

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/model"
)

func TestLubyMISOnFamilies(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle9", graph.Cycle(9)},
		{"path17", graph.Path(17)},
		{"grid5x5", graph.Grid(5, 5)},
		{"complete7", graph.Complete(7)},
		{"star12", graph.Star(12)},
		{"tree", graph.CompleteTree(3, 3)},
		{"isolated", graph.New(5)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net := local.NewNetwork(tc.g)
			for seed := int64(0); seed < 5; seed++ {
				res, err := LubyMIS(net, seed, 0)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := Verify(tc.g, res); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

func TestLubyMISRoundsLogarithmic(t *testing.T) {
	// Rounds should grow far slower than n (O(log n) phases w.h.p.).
	small := graph.Cycle(32)
	big := graph.Cycle(512)
	rs, err := LubyMIS(local.NewNetwork(small), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := LubyMIS(local.NewNetwork(big), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if float64(rb.Rounds) > 4*float64(rs.Rounds)*math.Log2(512)/math.Log2(32) {
		t.Errorf("rounds grew too fast: %d (n=32) vs %d (n=512)", rs.Rounds, rb.Rounds)
	}
}

func TestLubyMISCompleteGraphIsSingleton(t *testing.T) {
	g := graph.Complete(6)
	res, err := LubyMIS(local.NewNetwork(g), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set()) != 1 {
		t.Errorf("MIS of K6 = %v", res.Set())
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	g := graph.Path(3)
	// Not independent.
	if err := Verify(g, &MISResult{InSet: []bool{true, true, false}}); err == nil {
		t.Error("dependent set verified")
	}
	// Not maximal.
	if err := Verify(g, &MISResult{InSet: []bool{false, false, false}}); err == nil {
		t.Error("non-maximal set verified")
	}
	// Wrong size.
	if err := Verify(g, &MISResult{InSet: []bool{true}}); err == nil {
		t.Error("size mismatch verified")
	}
	// Valid.
	if err := Verify(g, &MISResult{InSet: []bool{true, false, true}}); err != nil {
		t.Errorf("valid MIS rejected: %v", err)
	}
}

// TestConstructionIsNotSampling demonstrates the paper's motivating
// distinction: Luby's MIS constructs feasible configurations of the
// hardcore support, but its output distribution is biased — maximal sets
// only, so e.g. the empty independent set never appears although the
// hardcore measure (λ=1: uniform over ALL independent sets) charges it.
func TestConstructionIsNotSampling(t *testing.T) {
	g := graph.Cycle(6)
	spec, err := model.Hardcore(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := exact.JointDistribution(in)
	if err != nil {
		t.Fatal(err)
	}
	emp := dist.NewEmpirical(6)
	net := local.NewNetwork(g)
	const trials = 2000
	for seed := int64(0); seed < trials; seed++ {
		res, err := LubyMIS(net, seed, 0)
		if err != nil {
			t.Fatal(err)
		}
		cfg := make(dist.Config, 6)
		for v, inSet := range res.InSet {
			if inSet {
				cfg[v] = model.In
			} else {
				cfg[v] = model.Out
			}
		}
		// Every output is feasible for the hardcore model...
		w, err := spec.Weight(cfg)
		if err != nil || w <= 0 {
			t.Fatalf("MIS output infeasible: %v", cfg)
		}
		emp.Observe(cfg)
	}
	got, err := emp.Joint()
	if err != nil {
		t.Fatal(err)
	}
	tv, err := dist.TVJoint(truth, got)
	if err != nil {
		t.Fatal(err)
	}
	// ...but far from the hardcore distribution: C6 has 18 independent
	// sets of which only 5 are maximal, so TV is bounded well away from 0.
	if tv < 0.3 {
		t.Errorf("construction unexpectedly close to the Gibbs measure: TV = %v", tv)
	}
	empty := dist.Config{0, 0, 0, 0, 0, 0}
	if got.Prob(empty) != 0 {
		t.Error("MIS produced the empty set")
	}
	if truth.Prob(empty) == 0 {
		t.Error("hardcore measure should charge the empty set")
	}
}

// TestBeats pins the phase rule shared with the psample LubyGlauber
// sampler: strictly larger draw wins, ties break toward the larger ID, and
// the relation is a strict total order (exactly one side beats the other).
func TestBeats(t *testing.T) {
	if !Beats(0.7, 1, 0.3, 2) {
		t.Error("larger draw must win")
	}
	if Beats(0.3, 9, 0.7, 0) {
		t.Error("smaller draw must lose regardless of ID")
	}
	if !Beats(0.5, 3, 0.5, 1) || Beats(0.5, 1, 0.5, 3) {
		t.Error("exact ties must break toward the larger ID")
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		d1, d2 := rng.Float64(), rng.Float64()
		if Beats(d1, 1, d2, 2) == Beats(d2, 2, d1, 1) {
			t.Fatalf("Beats is not a strict total order at (%v, %v)", d1, d2)
		}
	}
}

// TestFinalizeAcceptsMaximalPartialRun covers the round-budget bugfix: an
// undecided node that is already dominated by a joined neighbor must not
// trigger ErrNotConverged — the set is maximal, only the departure
// bookkeeping was cut off by the budget.
func TestFinalizeAcceptsMaximalPartialRun(t *testing.T) {
	g := graph.Path(3)
	// Node 1 never processed its departure, but both endpoints joined: the
	// set {0, 2} is already a maximal independent set.
	res, err := finalize(g, []int{1, 0, 1}, 6)
	if err != nil {
		t.Fatalf("maximal partial run rejected: %v", err)
	}
	if !res.InSet[0] || res.InSet[1] || !res.InSet[2] {
		t.Errorf("InSet = %v, want {0, 2}", res.InSet)
	}
	if err := Verify(g, res); err != nil {
		t.Errorf("finalized set fails verification: %v", err)
	}
	// Node 1 undecided with no joined neighbor: genuinely not converged.
	if _, err := finalize(g, []int{2, 0, 2}, 6); !errors.Is(err, ErrNotConverged) {
		t.Errorf("undominated undecided node returned %v, want ErrNotConverged", err)
	}
}
