// Package construct implements classic constructive LOCAL algorithms — the
// "construction" task of the paper's introduction (exhibit *a* feasible
// solution), against which distributed *sampling* is contrasted. Luby's
// maximal-independent-set algorithm is the canonical example: it
// constructs a feasible configuration of the hardcore model's support in
// O(log n) rounds w.h.p., but its output distribution is nothing like the
// hardcore measure — sampling genuinely requires the machinery of the
// paper (the package tests demonstrate the bias).
package construct

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/local"
)

// MISResult reports a maximal independent set construction.
type MISResult struct {
	// InSet[v] reports membership of v.
	InSet []bool
	// Rounds is the number of LOCAL rounds consumed.
	Rounds int
}

// Set returns the members of the MIS in increasing order.
func (r *MISResult) Set() []int {
	var out []int
	for v, in := range r.InSet {
		if in {
			out = append(out, v)
		}
	}
	return out
}

// ErrNotConverged indicates the round budget was exhausted (probability
// vanishing in n for the default budget) with the partial set not yet
// maximal.
var ErrNotConverged = errors.New("construct: Luby MIS did not converge")

// Beats reports whether the phase draw (draw, id) defeats the rival draw
// (rivalDraw, rivalID) in one phase of Luby's algorithm: the strictly
// larger draw wins, with exact ties broken toward the larger ID. A vertex
// joins the phase's independent set iff its draw beats every competing
// rival's — the per-phase selection rule reused verbatim by the
// LubyGlauber sampler (internal/psample) in both of its harnesses.
func Beats(draw float64, id int, rivalDraw float64, rivalID int) bool {
	return draw > rivalDraw || (draw == rivalDraw && id > rivalID)
}

// lubyState is the per-node state of Luby's algorithm.
type lubyState struct {
	status int // 0 undecided, 1 in MIS, 2 out (dominated)
	draw   float64
	// liveNeighbors tracks the undecided neighbors.
	liveNeighbors map[int]bool
}

type lubyMsg struct {
	kind string // "draw", "joined", "out"
	val  float64
}

// LubyMIS runs Luby's algorithm on the network with genuine synchronous
// message passing (three rounds per phase: exchange random draws, announce
// joins, announce removals). The random draws come from per-node RNGs
// seeded from the given seed, preserving the LOCAL model's private
// randomness.
func LubyMIS(net *local.Network, seed int64, maxPhases int) (*MISResult, error) {
	n := net.G.N()
	if maxPhases <= 0 {
		maxPhases = 16 * (bitLen(n) + 1)
	}
	rngs := make([]*rand.Rand, n)
	for v := 0; v < n; v++ {
		// One SplitMix64-derived stream per node: raw seed^v*K seeding
		// feeds correlated values into math/rand, and Luby's convergence
		// argument needs independent per-node coins.
		rngs[v] = dist.SeedStream(seed, int64(v))
	}
	init := func(v int) any {
		st := &lubyState{liveNeighbors: make(map[int]bool)}
		for _, u := range net.G.Neighbors(v) {
			st.liveNeighbors[u] = true
		}
		if len(st.liveNeighbors) == 0 {
			// Isolated vertices join immediately.
			st.status = 1
		}
		return st
	}
	step := func(v, round int, state any, inbox []local.Message) (any, []local.Message, bool) {
		st, ok := state.(*lubyState)
		if !ok {
			return state, nil, true
		}
		phaseStep := round % 3
		var out []local.Message
		switch phaseStep {
		case 0:
			// Exchange draws among undecided nodes.
			if st.status == 0 {
				st.draw = rngs[v].Float64()
				for u := range st.liveNeighbors {
					out = append(out, local.Message{From: v, To: u, Payload: lubyMsg{kind: "draw", val: st.draw}})
				}
			}
		case 1:
			// Join if the local draw beats every live neighbor's.
			if st.status == 0 {
				win := true
				for _, m := range inbox {
					msg, ok := m.Payload.(lubyMsg)
					if !ok || msg.kind != "draw" {
						continue
					}
					if Beats(msg.val, m.From, st.draw, v) {
						win = false
					}
				}
				if win {
					st.status = 1
					for u := range st.liveNeighbors {
						out = append(out, local.Message{From: v, To: u, Payload: lubyMsg{kind: "joined"}})
					}
				}
			}
		case 2:
			// Nodes adjacent to a joiner leave; everyone prunes dead
			// neighbors.
			for _, m := range inbox {
				msg, ok := m.Payload.(lubyMsg)
				if !ok {
					continue
				}
				if msg.kind == "joined" && st.status == 0 {
					st.status = 2
				}
			}
			if st.status != 0 {
				for u := range st.liveNeighbors {
					out = append(out, local.Message{From: v, To: u, Payload: lubyMsg{kind: "out"}})
				}
				// Deliver the departure notice, then halt next phase.
			}
		}
		// Prune neighbors that announced departure.
		for _, m := range inbox {
			if msg, ok := m.Payload.(lubyMsg); ok && msg.kind == "out" {
				delete(st.liveNeighbors, m.From)
			}
		}
		halt := st.status != 0 && phaseStep == 2
		return st, out, halt
	}
	res, err := net.Run(3*maxPhases, init, step)
	if err != nil && !errors.Is(err, local.ErrMaxRounds) {
		return nil, err
	}
	status := make([]int, n)
	for v := 0; v < n; v++ {
		st, ok := res.States[v].(*lubyState)
		if !ok {
			return nil, fmt.Errorf("construct: bad state at %d", v)
		}
		status[v] = st.status
	}
	return finalize(net.G, status, res.Rounds)
}

// finalize classifies the per-node Luby statuses into an MIS result. A node
// still undecided when the round budget ran out is harmless as long as it is
// dominated by a joined neighbor (the set is already maximal, only the
// departure bookkeeping was cut off); round-budget exhaustion is an error
// only when some undecided node is genuinely undominated, i.e. the set is
// not maximal.
func finalize(g *graph.Graph, status []int, rounds int) (*MISResult, error) {
	out := &MISResult{InSet: make([]bool, len(status)), Rounds: rounds}
	for v, s := range status {
		out.InSet[v] = s == 1
	}
	for v, s := range status {
		if s != 0 {
			continue
		}
		dominated := false
		for _, u := range g.Neighbors(v) {
			if out.InSet[u] {
				dominated = true
				break
			}
		}
		if !dominated {
			return nil, fmt.Errorf("%w: node %d undecided and undominated after %d rounds", ErrNotConverged, v, rounds)
		}
	}
	return out, nil
}

// Verify checks that the result is an independent dominating set (i.e. a
// maximal independent set) of g.
func Verify(g *graph.Graph, r *MISResult) error {
	if len(r.InSet) != g.N() {
		return fmt.Errorf("construct: result size %d != n %d", len(r.InSet), g.N())
	}
	for _, e := range g.Edges() {
		if r.InSet[e.U] && r.InSet[e.V] {
			return fmt.Errorf("construct: edge (%d,%d) inside the set", e.U, e.V)
		}
	}
	for v := 0; v < g.N(); v++ {
		if r.InSet[v] {
			continue
		}
		dominated := false
		for _, u := range g.Neighbors(v) {
			if r.InSet[u] {
				dominated = true
				break
			}
		}
		if !dominated {
			return fmt.Errorf("construct: vertex %d neither in the set nor dominated", v)
		}
	}
	return nil
}

func bitLen(n int) int {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	return b
}
