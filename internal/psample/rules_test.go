package psample

// rules_test.go pins the cached chromatic class schedule: ClassSchedule
// must be a proper partition of the free vertices into independent sets of
// the interaction graph, computed exactly once per Rules (repeated batch
// construction must not recolor the graph).

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
)

func TestClassScheduleCachedAndProper(t *testing.T) {
	spec, err := model.Hardcore(graph.Torus(4, 5), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	pin := dist.NewConfig(spec.N())
	pin[3] = model.Out
	in, err := gibbs.NewInstance(spec, pin)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRules(in)
	if err != nil {
		t.Fatal(err)
	}
	classes := r.ClassSchedule()
	// Caching: the second call must hand back the same backing schedule,
	// not a recoloring.
	again := r.ClassSchedule()
	if len(classes) == 0 || len(again) != len(classes) || &again[0] != &classes[0] {
		t.Fatalf("ClassSchedule not cached: %p/%d vs %p/%d", &again[0], len(again), &classes[0], len(classes))
	}
	// Partition: every free vertex in exactly one class, pinned in none.
	seen := make(map[int]int)
	for k, class := range classes {
		if len(class) == 0 {
			t.Errorf("class %d empty", k)
		}
		for _, v := range class {
			if !r.Free(v) {
				t.Errorf("pinned vertex %d scheduled in class %d", v, k)
			}
			seen[v]++
		}
	}
	for v := 0; v < r.N(); v++ {
		want := 0
		if r.Free(v) {
			want = 1
		}
		if seen[v] != want {
			t.Errorf("vertex %d scheduled %d times, want %d", v, seen[v], want)
		}
	}
	// Independence: no interaction edge inside a class (the correctness
	// requirement of simultaneous heat-bath updates).
	g := in.Spec.G
	for k, class := range classes {
		for i, u := range class {
			for _, w := range class[i+1:] {
				if g.HasEdge(u, w) {
					t.Errorf("class %d contains edge (%d,%d)", k, u, w)
				}
			}
		}
	}
}
