package psample

// stationary_test.go pins the correctness of both dynamics exactly, not
// just statistically: on instances small enough to enumerate, it builds the
// one-round transition kernel P of each sampler by brute force (every
// proposal combination, every coin pattern, every Luby draw ordering, every
// joint heat-bath outcome) and checks µP = µ for the exact Gibbs
// distribution µ from internal/exact.

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
)

// tinyInstances enumerates small instances covering soft and hard
// constraints, pairwise and higher-arity factors, and pinning.
func tinyInstances(t *testing.T) map[string]*gibbs.Instance {
	t.Helper()
	out := make(map[string]*gibbs.Instance)
	mk := func(name string, spec *gibbs.Spec, err error, pinned dist.Config) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		in, err := gibbs.NewInstance(spec, pinned)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = in
	}

	hc, err := model.Hardcore(graph.Path(3), 1.3)
	mk("hardcore-path3", hc, err, nil)

	hcPin, err := model.Hardcore(graph.Path(3), 0.8)
	mk("hardcore-pinned", hcPin, err, dist.Config{model.Out, dist.Unset, dist.Unset})

	is, err := model.Ising(graph.Cycle(3), 0.6, 1.4)
	mk("ising-triangle", is, err, nil)

	m, err := model.Matching(graph.Star(3), 1.1)
	if err != nil {
		t.Fatal(err)
	}
	mk("matching-star3", m.Spec, nil, nil)

	// A genuine arity-3 factor (exercises the subset filter beyond the
	// pairwise three-term rule): a soft not-all-equal constraint on a
	// triangle plus a mild field.
	tri := graph.Complete(3)
	table := make([]float64, 8)
	for idx := range table {
		a, b, c := idx>>2&1, idx>>1&1, idx&1
		if a == b && b == c {
			table[idx] = 0.3
		} else {
			table[idx] = 1.0
		}
	}
	factors := []gibbs.Factor{
		{Scope: []int{0, 1, 2}, Table: table, Name: "nae"},
		gibbs.UnaryTable(0, []float64{1, 1.7}, "field"),
	}
	spec, err := gibbs.NewSpec(tri, 2, factors)
	mk("triangle-arity3", spec, err, nil)

	return out
}

// pushMetropolisRow adds weight·P(σ, ·) for one LocalMetropolis round to
// out, enumerating proposals and coin patterns exactly.
func pushMetropolisRow(t *testing.T, r *Rules, sigma dist.Config, weight float64, out *dist.Joint) {
	t.Helper()
	free := r.in.FreeVertices()
	prop := sigma.Clone()
	var rec func(i int, p float64)
	coins := make([]float64, len(r.acc))
	rec = func(i int, p float64) {
		if p == 0 {
			return
		}
		if i < len(free) {
			v := free[i]
			for x := 0; x < r.q; x++ {
				prop[v] = x
				rec(i+1, p*r.proposal[v][x])
			}
			prop[v] = sigma[v]
			return
		}
		// All proposals fixed: coin probabilities per acceptance factor.
		for j := range r.acc {
			pj, err := r.FilterProb(j, sigma, prop)
			if err != nil {
				t.Fatal(err)
			}
			coins[j] = pj
		}
		for mask := 0; mask < 1<<len(r.acc); mask++ {
			pm := p
			for j := range r.acc {
				if mask&(1<<j) != 0 {
					pm *= coins[j]
				} else {
					pm *= 1 - coins[j]
				}
			}
			if pm == 0 {
				continue
			}
			tau := sigma.Clone()
			for _, v := range free {
				ok := true
				for _, j := range r.AccAt(v) {
					if mask&(1<<int(j)) == 0 {
						ok = false
						break
					}
				}
				if ok {
					tau[v] = prop[v]
				}
			}
			out.Add(tau, pm)
		}
	}
	rec(0, weight)
}

// pushLubyRow adds weight·P(σ, ·) for one LubyGlauber round to out: draw
// orderings are uniform over permutations of the free vertices (exact ties
// have probability zero), the winners form the phase's independent set, and
// the winners' heat-bath updates are conditionally independent.
func pushLubyRow(t *testing.T, r *Rules, sigma dist.Config, weight float64, out *dist.Joint) {
	t.Helper()
	free := r.in.FreeVertices()
	g := r.in.Spec.G
	rank := make(map[int]int, len(free))
	buf := make([]float64, r.q)
	var conds []dist.Dist
	var winners []int

	perm := make([]int, len(free))
	copy(perm, free)
	var permute func(k int, p float64)
	pushUpdates := func(p float64) {
		// Enumerate the winners' joint heat-bath outcome.
		tau := sigma.Clone()
		var rec func(i int, pu float64)
		rec = func(i int, pu float64) {
			if pu == 0 {
				return
			}
			if i == len(winners) {
				out.Add(tau.Clone(), pu)
				return
			}
			v := winners[i]
			for x := 0; x < r.q; x++ {
				tau[v] = x
				rec(i+1, pu*conds[i][x])
			}
			tau[v] = sigma[v]
		}
		rec(0, p)
	}
	handleOrdering := func(p float64) {
		for i, v := range perm {
			rank[v] = i
		}
		winners = winners[:0]
		for _, v := range free {
			win := true
			for _, u := range g.Neighbors(v) {
				if r.free[u] && rank[u] > rank[v] {
					win = false
					break
				}
			}
			if win {
				winners = append(winners, v)
			}
		}
		conds = conds[:0]
		for _, v := range winners {
			w, err := r.eng.CondWeights(sigma, v, buf)
			if err != nil {
				t.Fatal(err)
			}
			d, err := dist.FromWeights(w)
			if err != nil {
				t.Fatal(err)
			}
			conds = append(conds, d)
		}
		pushUpdates(p)
	}
	permute = func(k int, p float64) {
		if k == len(perm) {
			handleOrdering(p)
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			permute(k+1, p)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	fact := 1.0
	for i := 2; i <= len(free); i++ {
		fact *= float64(i)
	}
	permute(0, weight/fact)
}

// checkStationary verifies µP = µ for the given row-pusher.
func checkStationary(t *testing.T, in *gibbs.Instance, push func(t *testing.T, r *Rules, sigma dist.Config, weight float64, out *dist.Joint)) {
	t.Helper()
	r, err := NewRules(in)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := exact.JointDistribution(in)
	if err != nil {
		t.Fatal(err)
	}
	after := dist.NewJoint(in.N())
	for _, sigma := range truth.Support() {
		push(t, r, sigma, truth.Prob(sigma), after)
	}
	if err := after.Normalize(); err != nil {
		t.Fatal(err)
	}
	tv, err := dist.TVJoint(truth, after)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 1e-9 || math.IsNaN(tv) {
		t.Errorf("one round moves the stationary distribution: TV(µP, µ) = %g", tv)
	}
}

func TestLocalMetropolisStationaryExact(t *testing.T) {
	for name, in := range tinyInstances(t) {
		t.Run(name, func(t *testing.T) {
			r, err := NewRules(in)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.MetropolisReady(); err != nil {
				t.Fatal(err)
			}
			checkStationary(t, in, pushMetropolisRow)
		})
	}
}

func TestLubyGlauberStationaryExact(t *testing.T) {
	for name, in := range tinyInstances(t) {
		t.Run(name, func(t *testing.T) {
			checkStationary(t, in, pushLubyRow)
		})
	}
}

// checkBatchTiny drives a batched engine over a tiny instance and checks
// that every chain stays feasible and pinned — this is what forces the
// batched kernels (the masked subset heat-bath, the batched filter's
// mask walk) through the arity-3 and pinning cases the enumerations cover.
func checkBatchTiny(t *testing.T, in *gibbs.Instance, s interface {
	Run(rounds int) error
	Chains() int
	Chain(c int) dist.Config
}) {
	t.Helper()
	if err := s.Run(20); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < s.Chains(); c++ {
		cfg := s.Chain(c)
		w, err := in.Spec.Weight(cfg)
		if err != nil || w <= 0 {
			t.Errorf("chain %d infeasible state %v (w=%v err=%v)", c, cfg, w, err)
		}
		for v, x := range in.Pinned {
			if x != dist.Unset && cfg[v] != x {
				t.Errorf("chain %d pinning violated at vertex %d: %v", c, v, cfg)
			}
		}
	}
}

// TestBatchLubyGlauberStationaryExact pins the batched LubyGlauber
// engine's one-round kernel: chains of the batched engine do not interact
// (disjoint lattice columns, disjoint draws), and the B = 1 agreement test
// in batch_test.go ties its per-chain trajectory symbol for symbol to the
// single-chain engine — so the enumerated single-chain kernel checked here
// IS the batched engine's per-chain kernel, and µP = µ per chain implies
// stationarity of the whole lattice product. The batched engine itself is
// then driven over each tiny instance to exercise the masked subset kernel
// on the arity-3 and pinned cases.
func TestBatchLubyGlauberStationaryExact(t *testing.T) {
	for name, in := range tinyInstances(t) {
		t.Run(name, func(t *testing.T) {
			checkStationary(t, in, pushLubyRow)
			r, err := NewRules(in)
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewBatchLubyGlauber(r, 4, 5)
			if err != nil {
				t.Fatal(err)
			}
			checkBatchTiny(t, in, s)
		})
	}
}

// TestBatchLocalMetropolisStationaryExact is the LocalMetropolis analogue:
// the enumerated proposal/coin kernel is the batched engine's per-chain
// kernel (B = 1 agreement in batch_test.go, non-interacting chains), and
// the engine run exercises the batched filter's mask walk on the genuine
// arity-3 factor and the pinned instance.
func TestBatchLocalMetropolisStationaryExact(t *testing.T) {
	for name, in := range tinyInstances(t) {
		t.Run(name, func(t *testing.T) {
			r, err := NewRules(in)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.MetropolisReady(); err != nil {
				t.Fatal(err)
			}
			checkStationary(t, in, pushMetropolisRow)
			s, err := NewBatchLocalMetropolis(r, 4, 5)
			if err != nil {
				t.Fatal(err)
			}
			checkBatchTiny(t, in, s)
		})
	}
}
