package psample

// network.go runs the two samplers as genuine message-passing algorithms on
// the local.Network simulator, charging synchronous rounds the way the
// LOCAL model does. Both harnesses reuse the exact update rules of the
// sharded engines — construct.Beats + glauber.HeatBath for LubyGlauber and
// Rules.Propose + Rules.FilterProb for LocalMetropolis — so the two
// harnesses cannot drift apart.
//
// The implementations pipeline one dynamics round per LOCAL round: the
// message a node sends in LOCAL round t carries its state after t dynamics
// rounds plus the randomness for round t+1, so R dynamics rounds cost
// exactly R+1 LOCAL rounds. Factor scopes are cliques of G (enforced by
// NewRules), so every quantity a node needs — neighbor spins, neighbor
// proposals, and the shared per-factor filter coin flipped by the
// factor's smallest scope vertex — arrives from direct neighbors.

import (
	"fmt"
	"math/rand"

	"repro/internal/construct"
	"repro/internal/dist"
	"repro/internal/glauber"
	"repro/internal/local"
)

// networkFor validates that the network matches the rules' interaction
// graph and returns the per-node RNGs (private randomness: one
// SplitMix64-derived stream per node, shared with the sharded engines via
// dist.SeedStream so no harness hand-rolls its own seed arithmetic).
func networkFor(net *local.Network, r *Rules, seed int64) ([]*rand.Rand, error) {
	if net.G.N() != r.n {
		return nil, fmt.Errorf("psample: network has %d nodes, instance has %d", net.G.N(), r.n)
	}
	rngs := make([]*rand.Rand, r.n)
	for v := range rngs {
		rngs[v] = dist.SeedStream(seed, int64(v))
	}
	return rngs, nil
}

// lgNodeState is the per-node state of the LubyGlauber LOCAL harness.
type lgNodeState struct {
	val  int
	draw float64
	// cfg is the node's view of its closed neighborhood: cfg[u] for
	// neighbors u is u's spin as of the previous round.
	cfg  dist.Config
	cond []float64
	done int
	// err records a failed update; the simulator has no error channel for
	// steps, so it is surfaced through the final state.
	err error
}

// lgMsg is the LubyGlauber round message: the sender's spin after the
// current round and its draw for the next phase.
type lgMsg struct {
	val  int
	draw float64
}

// LubyGlauberLOCAL runs R rounds of LubyGlauber by message passing on the
// network (which must be the instance's interaction graph) and returns the
// final configuration together with the LOCAL rounds consumed (R+1: the
// harness pipelines one dynamics round per LOCAL round plus the initial
// exchange).
func LubyGlauberLOCAL(net *local.Network, r *Rules, R int, seed int64) (dist.Config, int, error) {
	rngs, err := networkFor(net, r, seed)
	if err != nil {
		return nil, 0, err
	}
	start, err := r.Start()
	if err != nil {
		return nil, 0, err
	}
	if R <= 0 {
		return start, 0, nil
	}
	g := net.G
	init := func(v int) any {
		st := &lgNodeState{
			val:  start[v],
			cfg:  dist.NewConfig(r.n),
			cond: make([]float64, r.q),
		}
		st.cfg[v] = st.val
		return st
	}
	step := func(v, round int, state any, inbox []local.Message) (any, []local.Message, bool) {
		st := state.(*lgNodeState)
		if round > 0 {
			// Deliver neighbor spins and decide the phase drawn last round.
			win := r.free[v]
			for _, m := range inbox {
				msg := m.Payload.(lgMsg)
				st.cfg[m.From] = msg.val
				if win && r.free[m.From] && construct.Beats(msg.draw, m.From, st.draw, v) {
					win = false
				}
			}
			if win {
				st.cfg[v] = st.val
				if err := glauber.HeatBath(r.eng, st.cfg, v, st.cond, rngs[v]); err != nil {
					st.err = err
					return st, nil, true
				}
				st.val = st.cfg[v]
			}
			st.done++
			if st.done >= R {
				return st, nil, true
			}
		}
		if r.free[v] {
			st.draw = rngs[v].Float64()
		}
		out := make([]local.Message, 0, g.Degree(v))
		for _, u := range g.Neighbors(v) {
			out = append(out, local.Message{From: v, To: u, Payload: lgMsg{val: st.val, draw: st.draw}})
		}
		return st, out, false
	}
	res, err := net.Run(R+1, init, step)
	if err != nil {
		return nil, 0, err
	}
	out := dist.NewConfig(r.n)
	for v := 0; v < r.n; v++ {
		st := res.States[v].(*lgNodeState)
		if st.err != nil {
			return nil, 0, fmt.Errorf("psample: heat-bath update failed at node %d: %w", v, st.err)
		}
		out[v] = st.val
	}
	return out, res.Rounds, nil
}

// lmCoin is one filter coin flipped by the owning (smallest toggled) vertex
// of acceptance factor j.
type lmCoin struct {
	j int
	u float64
}

// lmMsg is the LocalMetropolis round message: the sender's current spin,
// its proposal for the next round, and the coins of the factors it owns.
type lmMsg struct {
	val   int
	prop  int
	coins []lmCoin
}

// lmNodeState is the per-node state of the LocalMetropolis LOCAL harness.
type lmNodeState struct {
	val   int
	prop  int
	coins []lmCoin
	// cfg and props are the node's views of its closed neighborhood:
	// spins as of the previous round and proposals for this round.
	cfg   dist.Config
	props dist.Config
	// coinAt[j] is the coin of acceptance factor j this round (only the
	// factors toggling this node are ever read).
	coinAt map[int]float64
	done   int
	// err records a failed filter evaluation, surfaced after the run.
	err error
}

// LocalMetropolisLOCAL runs R rounds of LocalMetropolis by message passing
// on the network (which must be the instance's interaction graph) and
// returns the final configuration together with the LOCAL rounds consumed
// (R+1). Each acceptance factor's shared coin is flipped by its smallest
// toggled vertex and broadcast with that vertex's proposal; every scope
// vertex then evaluates the same deterministic filter predicate, so the
// factor's verdict is consistent across its clique without extra rounds.
func LocalMetropolisLOCAL(net *local.Network, r *Rules, R int, seed int64) (dist.Config, int, error) {
	if err := r.MetropolisReady(); err != nil {
		return nil, 0, err
	}
	rngs, err := networkFor(net, r, seed)
	if err != nil {
		return nil, 0, err
	}
	start, err := r.Start()
	if err != nil {
		return nil, 0, err
	}
	if R <= 0 {
		return start, 0, nil
	}
	// owner[j] is the vertex that flips acceptance factor j's coin.
	owner := make([]int, len(r.acc))
	owned := make([][]int, r.n)
	for j, af := range r.acc {
		o := af.verts[0]
		for _, v := range af.verts[1:] {
			if v < o {
				o = v
			}
		}
		owner[j] = o
		owned[o] = append(owned[o], j)
	}
	g := net.G
	init := func(v int) any {
		st := &lmNodeState{
			val:    start[v],
			cfg:    dist.NewConfig(r.n),
			props:  dist.NewConfig(r.n),
			coinAt: make(map[int]float64, len(r.AccAt(v))),
		}
		st.cfg[v] = st.val
		return st
	}
	step := func(v, round int, state any, inbox []local.Message) (any, []local.Message, bool) {
		st := state.(*lmNodeState)
		if round > 0 {
			for _, m := range inbox {
				msg := m.Payload.(lmMsg)
				st.cfg[m.From] = msg.val
				st.props[m.From] = msg.prop
				for _, c := range msg.coins {
					st.coinAt[c.j] = c.u
				}
			}
			st.cfg[v] = st.val
			st.props[v] = st.prop
			for _, c := range st.coins {
				st.coinAt[c.j] = c.u
			}
			if r.free[v] {
				accept := true
				for _, j := range r.AccAt(v) {
					p, err := r.FilterProb(int(j), st.cfg, st.props)
					if err != nil {
						st.err = err
						return st, nil, true
					}
					if st.coinAt[int(j)] >= p {
						accept = false
						break
					}
				}
				if accept {
					st.val = st.prop
				}
			}
			st.done++
			if st.done >= R {
				return st, nil, true
			}
		}
		// Draw next round's proposal and owned coins, then broadcast. The
		// coin slice must be fresh each round: the outgoing message aliases
		// it and is only read by neighbors during the next round.
		st.prop = r.Propose(v, rngs[v])
		st.coins = make([]lmCoin, 0, len(owned[v]))
		for _, j := range owned[v] {
			st.coins = append(st.coins, lmCoin{j: j, u: rngs[v].Float64()})
		}
		out := make([]local.Message, 0, g.Degree(v))
		for _, u := range g.Neighbors(v) {
			out = append(out, local.Message{From: v, To: u, Payload: lmMsg{val: st.val, prop: st.prop, coins: st.coins}})
		}
		return st, out, false
	}
	res, err := net.Run(R+1, init, step)
	if err != nil {
		return nil, 0, err
	}
	out := dist.NewConfig(r.n)
	for v := 0; v < r.n; v++ {
		st := res.States[v].(*lmNodeState)
		if st.err != nil {
			return nil, 0, fmt.Errorf("psample: filter evaluation failed at node %d: %w", v, st.err)
		}
		out[v] = st.val
	}
	return out, res.Rounds, nil
}
