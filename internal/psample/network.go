package psample

// network.go runs the two samplers as genuine message-passing algorithms on
// the local.Network simulator, charging synchronous rounds the way the
// LOCAL model does. Both harnesses reuse the exact update rules of the
// sharded engines — construct.Beats + glauber.HeatBath for LubyGlauber and
// Rules.Propose + Rules.FilterProb for LocalMetropolis — so the two
// harnesses cannot drift apart.
//
// The implementations pipeline one dynamics round per LOCAL round: the
// message a node sends in LOCAL round t carries its state after t dynamics
// rounds plus the randomness for round t+1, so R dynamics rounds cost
// exactly R+1 LOCAL rounds. Factor scopes are cliques of G (enforced by
// NewRules), so every quantity a node needs — neighbor spins, neighbor
// proposals, and the shared per-factor filter coin flipped by the
// factor's smallest scope vertex — arrives from direct neighbors.
//
// Node payloads carry spins as single bytes and each node's view of its
// neighborhood is a compact (uint8-cell) state.Lattice, so the harness
// requires q ≤ state.MaxCompactQ — far above any model this repo builds;
// the wide []int fallback is an in-process-engine concern only.

import (
	"fmt"

	"repro/internal/construct"
	"repro/internal/dist"
	"repro/internal/glauber"
	"repro/internal/local"
	"repro/internal/state"
)

// networkFor validates that the network matches the rules' interaction
// graph and returns the per-node RNGs (private randomness: one
// SplitMix64-seeded xoshiro256++ stream per node, the same value-type
// generator the sharded engines run, so no harness hand-rolls its own
// seed arithmetic).
func networkFor(net *local.Network, r *Rules, seed int64) ([]dist.Xoshiro, error) {
	if net.G.N() != r.n {
		return nil, fmt.Errorf("psample: network has %d nodes, instance has %d", net.G.N(), r.n)
	}
	if r.q > state.MaxCompactQ {
		return nil, &state.DomainError{N: r.n, Chains: 1, Q: r.q,
			Reason: fmt.Sprintf("the LOCAL harness transmits spins as bytes and needs q ≤ %d", state.MaxCompactQ)}
	}
	rngs := make([]dist.Xoshiro, r.n)
	for v := range rngs {
		rngs[v] = dist.NewXoshiro(seed, int64(v))
	}
	return rngs, nil
}

// nodeView returns a node's all-Unset compact view of the configuration.
func nodeView(n, q int) (*state.Lattice, error) {
	return state.NewCompact(n, 1, q)
}

// lgNodeState is the per-node state of the LubyGlauber LOCAL harness.
type lgNodeState struct {
	val  uint8
	draw float64
	// cfg is the node's view of its closed neighborhood: the cell at u for
	// neighbors u is u's spin as of the previous round.
	cfg  *state.Lattice
	cond []float64
	done int
	// err records a failed update; the simulator has no error channel for
	// steps, so it is surfaced through the final state.
	err error
}

// lgMsg is the LubyGlauber round message: the sender's spin after the
// current round (one byte, the raw compact cell) and its draw for the next
// phase.
type lgMsg struct {
	val  uint8
	draw float64
}

// LubyGlauberLOCAL runs R rounds of LubyGlauber by message passing on the
// network (which must be the instance's interaction graph) and returns the
// final configuration together with the LOCAL rounds consumed (R+1: the
// harness pipelines one dynamics round per LOCAL round plus the initial
// exchange).
func LubyGlauberLOCAL(net *local.Network, r *Rules, R int, seed int64) (dist.Config, int, error) {
	rngs, err := networkFor(net, r, seed)
	if err != nil {
		return nil, 0, err
	}
	start, err := r.Start()
	if err != nil {
		return nil, 0, err
	}
	if R <= 0 {
		return start, 0, nil
	}
	g := net.G
	init := func(v int) any {
		view, err := nodeView(r.n, r.q)
		st := &lgNodeState{
			val:  uint8(start[v]),
			cfg:  view,
			cond: make([]float64, r.q),
		}
		if err != nil {
			st.err = err
			return st
		}
		st.cfg.Set(v, 0, int(st.val))
		return st
	}
	step := func(v, round int, nodeState any, inbox []local.Message) (any, []local.Message, bool) {
		st := nodeState.(*lgNodeState)
		if st.err != nil {
			return st, nil, true
		}
		if round > 0 {
			// Deliver neighbor spins and decide the phase drawn last round.
			win := r.free[v]
			for _, m := range inbox {
				msg := m.Payload.(lgMsg)
				st.cfg.Set(m.From, 0, int(msg.val))
				if win && r.free[m.From] && construct.Beats(msg.draw, m.From, st.draw, v) {
					win = false
				}
			}
			if win {
				st.cfg.Set(v, 0, int(st.val))
				if err := glauber.HeatBathX(r.eng, st.cfg, 0, v, st.cond, &rngs[v]); err != nil {
					st.err = err
					return st, nil, true
				}
				st.val = uint8(st.cfg.Get(v, 0))
			}
			st.done++
			if st.done >= R {
				return st, nil, true
			}
		}
		if r.free[v] {
			st.draw = rngs[v].Float64()
		}
		out := make([]local.Message, 0, g.Degree(v))
		for _, u := range g.Neighbors(v) {
			out = append(out, local.Message{From: v, To: u, Payload: lgMsg{val: st.val, draw: st.draw}})
		}
		return st, out, false
	}
	res, err := net.Run(R+1, init, step)
	if err != nil {
		return nil, 0, err
	}
	out := dist.NewConfig(r.n)
	for v := 0; v < r.n; v++ {
		st := res.States[v].(*lgNodeState)
		if st.err != nil {
			return nil, 0, fmt.Errorf("psample: heat-bath update failed at node %d: %w", v, st.err)
		}
		out[v] = int(st.val)
	}
	return out, res.Rounds, nil
}

// lmCoin is one filter coin flipped by the owning (smallest toggled) vertex
// of acceptance factor j.
type lmCoin struct {
	j int
	u float64
}

// lmMsg is the LocalMetropolis round message: the sender's current spin and
// its proposal for the next round (single bytes, the raw compact cells),
// and the coins of the factors it owns.
type lmMsg struct {
	val   uint8
	prop  uint8
	coins []lmCoin
}

// lmNodeState is the per-node state of the LocalMetropolis LOCAL harness.
type lmNodeState struct {
	val   uint8
	prop  uint8
	coins []lmCoin
	// cfg and props are the node's views of its closed neighborhood:
	// spins as of the previous round and proposals for this round.
	cfg   *state.Lattice
	props *state.Lattice
	// coinAt[j] is the coin of acceptance factor j this round (only the
	// factors toggling this node are ever read).
	coinAt map[int]float64
	done   int
	// err records a failed filter evaluation, surfaced after the run.
	err error
}

// LocalMetropolisLOCAL runs R rounds of LocalMetropolis by message passing
// on the network (which must be the instance's interaction graph) and
// returns the final configuration together with the LOCAL rounds consumed
// (R+1). Each acceptance factor's shared coin is flipped by its smallest
// toggled vertex and broadcast with that vertex's proposal; every scope
// vertex then evaluates the same deterministic filter predicate, so the
// factor's verdict is consistent across its clique without extra rounds.
func LocalMetropolisLOCAL(net *local.Network, r *Rules, R int, seed int64) (dist.Config, int, error) {
	if err := r.MetropolisReady(); err != nil {
		return nil, 0, err
	}
	rngs, err := networkFor(net, r, seed)
	if err != nil {
		return nil, 0, err
	}
	start, err := r.Start()
	if err != nil {
		return nil, 0, err
	}
	if R <= 0 {
		return start, 0, nil
	}
	// owner[j] is the vertex that flips acceptance factor j's coin.
	owner := make([]int, len(r.acc))
	owned := make([][]int, r.n)
	for j, af := range r.acc {
		o := af.verts[0]
		for _, v := range af.verts[1:] {
			if v < o {
				o = v
			}
		}
		owner[j] = o
		owned[o] = append(owned[o], j)
	}
	g := net.G
	init := func(v int) any {
		st := &lmNodeState{
			val:    uint8(start[v]),
			coinAt: make(map[int]float64, len(r.AccAt(v))),
		}
		var err error
		if st.cfg, err = nodeView(r.n, r.q); err != nil {
			st.err = err
			return st
		}
		if st.props, err = nodeView(r.n, r.q); err != nil {
			st.err = err
			return st
		}
		st.cfg.Set(v, 0, int(st.val))
		return st
	}
	step := func(v, round int, nodeState any, inbox []local.Message) (any, []local.Message, bool) {
		st := nodeState.(*lmNodeState)
		if st.err != nil {
			return st, nil, true
		}
		if round > 0 {
			for _, m := range inbox {
				msg := m.Payload.(lmMsg)
				st.cfg.Set(m.From, 0, int(msg.val))
				st.props.Set(m.From, 0, int(msg.prop))
				for _, c := range msg.coins {
					st.coinAt[c.j] = c.u
				}
			}
			st.cfg.Set(v, 0, int(st.val))
			st.props.Set(v, 0, int(st.prop))
			for _, c := range st.coins {
				st.coinAt[c.j] = c.u
			}
			if r.free[v] {
				accept := true
				for _, j := range r.AccAt(v) {
					p, err := r.FilterProbLattice(int(j), st.cfg, st.props, 0)
					if err != nil {
						st.err = err
						return st, nil, true
					}
					if st.coinAt[int(j)] >= p {
						accept = false
						break
					}
				}
				if accept {
					st.val = st.prop
				}
			}
			st.done++
			if st.done >= R {
				return st, nil, true
			}
		}
		// Draw next round's proposal and owned coins, then broadcast. The
		// coin slice must be fresh each round: the outgoing message aliases
		// it and is only read by neighbors during the next round.
		st.prop = uint8(r.Propose(v, &rngs[v]))
		st.coins = make([]lmCoin, 0, len(owned[v]))
		for _, j := range owned[v] {
			st.coins = append(st.coins, lmCoin{j: j, u: rngs[v].Float64()})
		}
		out := make([]local.Message, 0, g.Degree(v))
		for _, u := range g.Neighbors(v) {
			out = append(out, local.Message{From: v, To: u, Payload: lmMsg{val: st.val, prop: st.prop, coins: st.coins}})
		}
		return st, out, false
	}
	res, err := net.Run(R+1, init, step)
	if err != nil {
		return nil, 0, err
	}
	out := dist.NewConfig(r.n)
	for v := 0; v < r.n; v++ {
		st := res.States[v].(*lmNodeState)
		if st.err != nil {
			return nil, 0, fmt.Errorf("psample: filter evaluation failed at node %d: %w", v, st.err)
		}
		out[v] = int(st.val)
	}
	return out, res.Rounds, nil
}
