package psample

// batch_test.go validates the batched multi-chain engines end to end:
// at B = 1 with a single worker both batched engines must reproduce their
// single-chain counterparts symbol for symbol (same seed, same RNG
// consumption order, bit-identical kernels), the pooled output of all B
// chains must match the exact Gibbs distribution for every model builder,
// pinning must hold in every chain, and the forced multi-worker pool must
// stay feasible under the race detector.

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
)

// multiChain abstracts the two batched engines for the shared harnesses.
type multiChain interface {
	Reset(seed int64) error
	Run(rounds int) error
	State() dist.Config
	Chains() int
	Chain(c int) dist.Config
}

// TestBatchLubyGlauberMatchesSingleChain pins the B = 1 trajectory of the
// batched engine to the single-chain engine, chunk by chunk. The seed
// policy that makes this exact: both engines derive per-worker streams as
// dist.NewXoshiro(seed, worker), so at Workers = 1 they share one stream;
// stage 1 draws one uniform per free vertex in increasing order on both
// sides, and stage 2 heat-baths the winners in increasing vertex order
// with one uniform each against bit-identical conditional weights (the
// subset kernel's identity with the single-cell path is pinned in
// internal/gibbs). Any divergence in kernel order or draw semantics shows
// up here as a symbol mismatch.
func TestBatchLubyGlauberMatchesSingleChain(t *testing.T) {
	for _, c := range buildTVCases(t) {
		t.Run(c.name, func(t *testing.T) {
			r, err := NewRules(c.in)
			if err != nil {
				t.Fatal(err)
			}
			single, err := NewLubyGlauber(r, 42)
			if err != nil {
				t.Fatal(err)
			}
			single.Workers = 1
			batch, err := NewBatchLubyGlauber(r, 1, 42)
			if err != nil {
				t.Fatal(err)
			}
			batch.Workers = 1
			for chunk := 0; chunk < 5; chunk++ {
				if err := single.Run(9); err != nil {
					t.Fatal(err)
				}
				if err := batch.Run(9); err != nil {
					t.Fatal(err)
				}
				ss, bs := single.State(), batch.State()
				for v := range ss {
					if ss[v] != bs[v] {
						t.Fatalf("chunk %d vertex %d: single %d, batched %d\nsingle  %v\nbatched %v",
							chunk, v, ss[v], bs[v], ss, bs)
					}
				}
			}
			if single.Updates() != batch.Updates() {
				t.Errorf("updates diverged: single %d, batched %d", single.Updates(), batch.Updates())
			}
			if single.Updates() == 0 {
				t.Error("no heat-bath updates recorded")
			}
		})
	}
}

// TestBatchLocalMetropolisMatchesSingleChain is the LocalMetropolis B = 1
// agreement test: one proposal draw per free vertex in increasing order,
// then one filter coin per acceptance factor in factor order (the batched
// filter weight is bit-identical to the single-cell filter, pinned in
// internal/gibbs), and a deterministic adoption stage.
func TestBatchLocalMetropolisMatchesSingleChain(t *testing.T) {
	for _, c := range buildTVCases(t) {
		t.Run(c.name, func(t *testing.T) {
			r, err := NewRules(c.in)
			if err != nil {
				t.Fatal(err)
			}
			single, err := NewLocalMetropolis(r, 42)
			if err != nil {
				t.Fatal(err)
			}
			single.Workers = 1
			batch, err := NewBatchLocalMetropolis(r, 1, 42)
			if err != nil {
				t.Fatal(err)
			}
			batch.Workers = 1
			for chunk := 0; chunk < 5; chunk++ {
				if err := single.Run(9); err != nil {
					t.Fatal(err)
				}
				if err := batch.Run(9); err != nil {
					t.Fatal(err)
				}
				ss, bs := single.State(), batch.State()
				for v := range ss {
					if ss[v] != bs[v] {
						t.Fatalf("chunk %d vertex %d: single %d, batched %d\nsingle  %v\nbatched %v",
							chunk, v, ss[v], bs[v], ss, bs)
					}
				}
			}
			if single.Accepts() != batch.Accepts() {
				t.Errorf("accepts diverged: single %d, batched %d", single.Accepts(), batch.Accepts())
			}
			if single.Accepts() == 0 {
				t.Error("no accepted proposals recorded")
			}
		})
	}
}

// checkTVMulti is the multi-chain TV harness: every trial contributes all
// B final chain states (the chains consume disjoint draws of the worker
// streams, so they are independent samples), and the noise envelope is
// sized to the pooled observation count.
func checkTVMulti(t *testing.T, in *gibbs.Instance, s multiChain, rounds, trials int) {
	t.Helper()
	truth, err := exact.JointDistribution(in)
	if err != nil {
		t.Fatal(err)
	}
	emp := dist.NewEmpirical(in.N())
	for i := 0; i < trials; i++ {
		if err := s.Reset(int64(1000 + i)); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(rounds); err != nil {
			t.Fatal(err)
		}
		for c := 0; c < s.Chains(); c++ {
			emp.Observe(s.Chain(c))
		}
	}
	got, err := emp.Joint()
	if err != nil {
		t.Fatal(err)
	}
	tv, err := dist.TVJoint(truth, got)
	if err != nil {
		t.Fatal(err)
	}
	n := trials * s.Chains()
	tol := 2.5 * dist.ExpectedTVNoise(truth.Len(), n)
	if tv > tol {
		t.Errorf("TV vs exact = %v > envelope %v (support %d, observations %d)", tv, tol, truth.Len(), n)
	}
}

// TestBatchLubyGlauberMatchesExact pins the pooled B = 16 output of the
// batched LubyGlauber engine to the brute-force referee for every model
// builder (hypergraph matching drives the general, non-pairwise subset
// kernel path).
func TestBatchLubyGlauberMatchesExact(t *testing.T) {
	const chains = 16
	for _, c := range buildTVCases(t) {
		t.Run(c.name, func(t *testing.T) {
			r, err := NewRules(c.in)
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewBatchLubyGlauber(r, chains, 1)
			if err != nil {
				t.Fatal(err)
			}
			checkTVMulti(t, c.in, s, c.rounds, c.trials/chains)
			if s.Updates() == 0 {
				t.Error("no heat-bath updates recorded")
			}
		})
	}
}

// TestBatchLocalMetropolisMatchesExact pins the pooled B = 16 output of
// the batched LocalMetropolis engine to the brute-force referee for every
// model builder (the arity-3 hypergraph-matching factors drive the
// batched filter's mask walk beyond the pairwise case).
func TestBatchLocalMetropolisMatchesExact(t *testing.T) {
	const chains = 16
	for _, c := range buildTVCases(t) {
		t.Run(c.name, func(t *testing.T) {
			r, err := NewRules(c.in)
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewBatchLocalMetropolis(r, chains, 1)
			if err != nil {
				t.Fatal(err)
			}
			// Same longer schedule as the single-chain engine: per-round
			// acceptance losses.
			checkTVMulti(t, c.in, s, 2*c.rounds, c.trials/chains)
			if s.Accepts() == 0 {
				t.Error("no accepted proposals recorded")
			}
		})
	}
}

// TestBatchRespectsPinning checks that pinned vertices never move in any
// chain of either batched engine.
func TestBatchRespectsPinning(t *testing.T) {
	spec, err := model.Hardcore(graph.Path(6), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	pin := dist.Config{model.In, dist.Unset, dist.Unset, dist.Unset, dist.Unset, model.Out}
	in, err := gibbs.NewInstance(spec, pin)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRules(in)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := NewBatchLubyGlauber(r, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := NewBatchLocalMetropolis(r, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []multiChain{lg, lm} {
		if err := s.Run(60); err != nil {
			t.Fatal(err)
		}
		for c := 0; c < s.Chains(); c++ {
			cfg := s.Chain(c)
			if cfg[0] != model.In || cfg[5] != model.Out {
				t.Errorf("chain %d pinning violated: %v", c, cfg)
			}
			w, err := spec.Weight(cfg)
			if err != nil || w <= 0 {
				t.Errorf("chain %d infeasible state %v (w=%v err=%v)", c, cfg, w, err)
			}
		}
	}
}

// TestBatchMultiWorker exercises the chain-block-affine worker partition
// (barriers, groups-outermost item grid, per-worker RNG streams) of both
// batched engines on a larger instance at B = 32 with a forced pool, and
// checks every chain stays feasible throughout. The race-detector CI job
// makes this a synchronization test as much as a correctness one.
func TestBatchMultiWorker(t *testing.T) {
	g := graph.Torus(8, 8)
	spec, err := model.Hardcore(g, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRules(in)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := NewBatchLubyGlauber(r, 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	lg.Workers = 4
	lm, err := NewBatchLocalMetropolis(r, 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	lm.Workers = 4
	for _, s := range []multiChain{lg, lm} {
		for i := 0; i < 6; i++ {
			if err := s.Run(5); err != nil {
				t.Fatal(err)
			}
			for c := 0; c < s.Chains(); c++ {
				cfg := s.Chain(c)
				w, err := spec.Weight(cfg)
				if err != nil || w <= 0 {
					t.Fatalf("chain %d infeasible after %d rounds (w=%v err=%v)", c, (i+1)*5, w, err)
				}
			}
		}
	}
}

// TestBatchEnginesFullyPinned checks that a fully pinned instance is a
// no-op round for both batched engines (the empty free list short-circuits
// before any kernel runs).
func TestBatchEnginesFullyPinned(t *testing.T) {
	spec, err := model.Hardcore(graph.Path(2), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	pin := dist.Config{model.Out, model.In}
	in, err := gibbs.NewInstance(spec, pin)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRules(in)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := NewBatchLubyGlauber(r, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := NewBatchLocalMetropolis(r, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []multiChain{lg, lm} {
		if err := s.Run(10); err != nil {
			t.Fatal(err)
		}
		for c := 0; c < s.Chains(); c++ {
			cfg := s.Chain(c)
			if cfg[0] != model.Out || cfg[1] != model.In {
				t.Errorf("chain %d moved on a fully pinned instance: %v", c, cfg)
			}
		}
	}
	if lg.Rounds() != 10 || lm.Rounds() != 10 {
		t.Errorf("rounds not counted: luby %d, metropolis %d", lg.Rounds(), lm.Rounds())
	}
}
