package psample

// psample_test.go validates the samplers end to end: the direct sharded
// engines must reproduce the exact Gibbs distribution (TV distance against
// internal/exact within the dist.ExpectedTVNoise envelope) for every
// internal/model builder, stay feasible, respect pinning, and behave
// identically across worker counts.

import (
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
)

// tvCase is one model-builder validation instance: small enough for the
// brute-force referee, parameterized inside the ergodic regime of both
// dynamics (for colorings this means q ≥ Δ+2 so single-site moves are
// never frozen).
type tvCase struct {
	name   string
	in     *gibbs.Instance
	rounds int
	trials int
}

func buildTVCases(t *testing.T) []tvCase {
	t.Helper()
	var cases []tvCase
	add := func(name string, spec *gibbs.Spec, err error, rounds, trials int) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		in, err := gibbs.NewInstance(spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, tvCase{name: name, in: in, rounds: rounds, trials: trials})
	}

	hc, err := model.Hardcore(graph.Cycle(6), 1.2)
	add("hardcore", hc, err, 40, 6000)

	is, err := model.Ising(graph.Cycle(6), 0.5, 0.8)
	add("ising", is, err, 40, 6000)

	col, err := model.Coloring(graph.Path(3), 4)
	add("coloring", col, err, 40, 6000)

	lc, err := model.ListColoring(graph.Path(3), 4, [][]int{{0, 1, 2}, {1, 2, 3}, {0, 1, 3}})
	add("list-coloring", lc, err, 40, 6000)

	m, err := model.Matching(graph.Path(5), 1.3)
	if err != nil {
		t.Fatal(err)
	}
	add("matching", m.Spec, nil, 40, 6000)

	h := graph.NewHypergraph(6)
	for _, e := range [][]int{{0, 1, 2}, {2, 3, 4}, {3, 4, 5}} {
		if err := h.AddEdge(e...); err != nil {
			t.Fatal(err)
		}
	}
	hm, err := model.HypergraphMatching(h, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	add("hypergraph-matching", hm.Spec, nil, 40, 6000)

	return cases
}

// sampler abstracts the two direct engines for the shared TV harness.
type sampler interface {
	Reset(seed int64) error
	Run(rounds int) error
	State() dist.Config
}

func checkTV(t *testing.T, in *gibbs.Instance, s sampler, rounds, trials int) {
	t.Helper()
	truth, err := exact.JointDistribution(in)
	if err != nil {
		t.Fatal(err)
	}
	emp := dist.NewEmpirical(in.N())
	for i := 0; i < trials; i++ {
		if err := s.Reset(int64(1000 + i)); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(rounds); err != nil {
			t.Fatal(err)
		}
		emp.Observe(s.State())
	}
	got, err := emp.Joint()
	if err != nil {
		t.Fatal(err)
	}
	tv, err := dist.TVJoint(truth, got)
	if err != nil {
		t.Fatal(err)
	}
	tol := 2.5 * dist.ExpectedTVNoise(truth.Len(), trials)
	if tv > tol {
		t.Errorf("TV vs exact = %v > envelope %v (support %d, trials %d)", tv, tol, truth.Len(), trials)
	}
}

// TestLubyGlauberMatchesExact pins the LubyGlauber output distribution to
// the brute-force referee for every model builder.
func TestLubyGlauberMatchesExact(t *testing.T) {
	for _, c := range buildTVCases(t) {
		t.Run(c.name, func(t *testing.T) {
			r, err := NewRules(c.in)
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewLubyGlauber(r, 1)
			if err != nil {
				t.Fatal(err)
			}
			checkTV(t, c.in, s, c.rounds, c.trials)
			if s.Updates() == 0 {
				t.Error("no heat-bath updates recorded")
			}
		})
	}
}

// TestLocalMetropolisMatchesExact pins the LocalMetropolis output
// distribution to the brute-force referee for every model builder.
func TestLocalMetropolisMatchesExact(t *testing.T) {
	for _, c := range buildTVCases(t) {
		t.Run(c.name, func(t *testing.T) {
			r, err := NewRules(c.in)
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewLocalMetropolis(r, 1)
			if err != nil {
				t.Fatal(err)
			}
			// LocalMetropolis pays per-round acceptance losses; give it a
			// longer schedule than LubyGlauber.
			checkTV(t, c.in, s, 2*c.rounds, c.trials)
			if s.Accepts() == 0 {
				t.Error("no accepted proposals recorded")
			}
		})
	}
}

// TestShardedRespectsPinning checks that pinned vertices never move under
// either engine.
func TestShardedRespectsPinning(t *testing.T) {
	spec, err := model.Hardcore(graph.Path(6), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	pin := dist.Config{model.In, dist.Unset, dist.Unset, dist.Unset, dist.Unset, model.Out}
	in, err := gibbs.NewInstance(spec, pin)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRules(in)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := NewLubyGlauber(r, 7)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := NewLocalMetropolis(r, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []sampler{lg, lm} {
		if err := s.Run(60); err != nil {
			t.Fatal(err)
		}
		cfg := s.State()
		if cfg[0] != model.In || cfg[5] != model.Out {
			t.Errorf("pinning violated: %v", cfg)
		}
		w, err := spec.Weight(cfg)
		if err != nil || w <= 0 {
			t.Errorf("infeasible state %v (w=%v err=%v)", cfg, w, err)
		}
	}
}

// TestShardedMultiWorker exercises the worker-pool path (barriers, block
// partition, per-worker RNG streams) on a larger instance and checks the
// chain stays feasible throughout. The race-detector CI job makes this a
// synchronization test as much as a correctness one.
func TestShardedMultiWorker(t *testing.T) {
	g := graph.Torus(8, 8)
	spec, err := model.Hardcore(g, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRules(in)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := NewLubyGlauber(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	lg.Workers = 4
	lm, err := NewLocalMetropolis(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	lm.Workers = 4
	for _, s := range []sampler{lg, lm} {
		for i := 0; i < 10; i++ {
			if err := s.Run(5); err != nil {
				t.Fatal(err)
			}
			w, err := spec.Weight(s.State())
			if err != nil || w <= 0 {
				t.Fatalf("infeasible state after batch %d (w=%v err=%v)", i, w, err)
			}
		}
	}
	if lg.Rounds() != 50 || lm.Rounds() != 50 {
		t.Errorf("rounds = %d, %d, want 50", lg.Rounds(), lm.Rounds())
	}
}

// TestShardedForcedWorkersSmall forces a multi-worker pool on instances so
// small that DefaultWorkers would collapse them to the inline 1-worker
// path, so the barrier and block-partition code runs under the race
// detector even for tiny cases. Correctness is checked by feasibility and
// pinning invariants after every batch.
func TestShardedForcedWorkersSmall(t *testing.T) {
	spec, err := model.Hardcore(graph.Cycle(7), 1.1)
	if err != nil {
		t.Fatal(err)
	}
	pin := dist.NewConfig(7)
	pin[3] = model.Out
	in, err := gibbs.NewInstance(spec, pin)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRules(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 5} {
		lg, err := NewLubyGlauber(r, 42)
		if err != nil {
			t.Fatal(err)
		}
		lg.Workers = workers
		lm, err := NewLocalMetropolis(r, 42)
		if err != nil {
			t.Fatal(err)
		}
		lm.Workers = workers
		for _, s := range []sampler{lg, lm} {
			for batch := 0; batch < 8; batch++ {
				if err := s.Run(10); err != nil {
					t.Fatal(err)
				}
				cfg := s.State()
				if cfg[3] != model.Out {
					t.Fatalf("workers=%d: pinning violated: %v", workers, cfg)
				}
				w, err := spec.Weight(cfg)
				if err != nil || w <= 0 {
					t.Fatalf("workers=%d: infeasible state %v (w=%v err=%v)", workers, cfg, w, err)
				}
			}
		}
	}
}

// TestRulesRejectsWideFilterFactor pins the 1<<k overflow fix: a factor
// with ≥ 63 free scope vertices must be rejected by NewRules with a
// descriptive error instead of silently computing a garbage filter scale.
func TestRulesRejectsWideFilterFactor(t *testing.T) {
	const k = 63
	g := graph.Complete(k)
	scope := make([]int, k)
	for i := range scope {
		scope[i] = i
	}
	f := []gibbs.Factor{{
		Scope: scope,
		Eval:  func([]int) float64 { return 1 },
		Name:  "wide",
	}}
	spec, err := gibbs.NewSpec(g, 2, f)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewRules(in)
	if err == nil {
		t.Fatal("63-free-vertex filter factor accepted")
	}
	if !strings.Contains(err.Error(), "overflow") {
		t.Errorf("error %q does not describe the overflow", err)
	}
}

// TestRulesRejectsNonCliqueScope checks the locality precondition both
// harnesses rely on.
func TestRulesRejectsNonCliqueScope(t *testing.T) {
	g := graph.Path(3) // 0-1-2; 0 and 2 are not adjacent
	f := []gibbs.Factor{{Scope: []int{0, 2}, Table: []float64{1, 1, 1, 0.5}, Name: "nonlocal"}}
	spec, err := gibbs.NewSpec(g, 2, f)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRules(in); err == nil {
		t.Fatal("non-clique scope accepted")
	}
}

// TestProposalMatchesConditional sanity-checks the proposal construction:
// for an isolated free vertex the proposal is exactly its conditional
// marginal, so one LocalMetropolis round samples it perfectly.
func TestProposalMatchesConditional(t *testing.T) {
	g := graph.New(1)
	spec, err := model.Hardcore(g, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRules(in)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exact.Marginal(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < r.Q(); x++ {
		if diff := r.proposal[0][x] - want[x]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("proposal %v != marginal %v", r.proposal[0], want)
		}
	}
	rng := dist.NewXoshiro(1, 0)
	if x := r.Propose(0, &rng); x < 0 || x >= r.Q() {
		t.Fatalf("proposal symbol %d out of range", x)
	}
}
