package psample

// batchmetropolis.go is the batched multi-chain LocalMetropolis engine: B
// independent chains of the paper's fully-parallel proposal dynamics over
// two chain-major state lattices (current and proposal). Each round keeps
// the three stages of the single-chain engine, batched across chains:
//
//  1. proposal draws — each free vertex fills its contiguous proposal
//     row for a chain group from its precomputed cumulative proposal row
//     (dist.CDF.Fill8 on byte lattices — branchless for two-symbol
//     alphabets — and the generic walk on wide ones, both bit-identical
//     to the Dist walk);
//  2. filter coins — each acceptance factor evaluates its subset-product
//     weight for a run of chain columns in one batched pass
//     (gibbs.Compiled.FilterWeightBatch: mixed-radix bases and table rows
//     amortized across the run), flips one coin per chain, and ANDs the
//     verdict into the adoption-mask row of every vertex it toggles;
//  3. adoption — each free vertex applies its contiguous adoption-mask
//     row as a write mask between the two chain-major rows, resetting
//     the mask to all-ones for the next round in the same pass.
//
// The adoption mask replaces a per-factor verdict matrix: stage 3 used
// to gather deg(v) scattered verdict bytes per (vertex, chain), which
// profiled as the round's largest single cost. ANDing verdicts into
// per-vertex rows as they are produced makes every stage-3 access
// contiguous. The AND makes stage-2 writes overlap per vertex, so stage
// 2 partitions work by chain columns — each worker owns a contiguous
// column range across all factors — instead of by (factor, group) items;
// mask rows are then worker-disjoint byte ranges.
//
// Pinned vertices never change: both lattices start from the canonical
// greedy completion at Reset, so pinned proposal cells are pre-filled
// once and no stage revisits them (their mask rows stay all-ones,
// untouched). Correctness is the single-chain argument per chain (the
// filter coins of a chain are independent across factors, and the
// adoption predicate of a chain reads only that chain's coins); across
// chains there is no interaction at all.
//
// At B = 1 with Workers = 1 the engine consumes its RNG stream in
// exactly the order of the single-chain LocalMetropolis (one proposal
// draw per free vertex in increasing order, then one coin per acceptance
// factor in factor order) against bit-identical filter weights, so the
// two trajectories agree symbol for symbol — the agreement tests pin
// this.

import (
	"errors"

	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/state"
)

// BatchLocalMetropolis advances B independent LocalMetropolis chains in
// lockstep over one shared compiled engine.
type BatchLocalMetropolis struct {
	// Workers overrides the worker count when positive (default: one per
	// CPU, bounded so per-stage blocks stay coarse).
	Workers int

	rules *Rules
	// chains is B, the number of independent chains.
	chains int
	// lat and prop are the chain-major current and proposal lattices.
	lat  *state.Lattice
	prop *state.Lattice
	// mask is the chain-major adoption mask: mask[v*B+c] is 1 while every
	// filter coin seen so far this round accepts chain c's proposal at v.
	// Stage 2 ANDs each factor's verdicts into the rows of the vertices
	// it toggles; stage 3 applies each free vertex's row as a write mask
	// and resets it to all-ones in the same pass. Rows of pinned vertices
	// are never touched after Reset.
	mask    []uint8
	rounds  int
	accepts int64
	workers []blmWorker
	seed    int64
	// checked records that both lattices passed their CheckAssigned
	// preflight; stages write only in-range symbols, so one scan per
	// Reset suffices.
	checked bool
}

// blmWorker is the per-worker mutable state: a value-type RNG stream,
// the batched filter's weight buffer and scratch, and the per-factor
// verdict row stage 2 ANDs into the adoption mask.
type blmWorker struct {
	rng  dist.Xoshiro
	wbuf []float64
	sc   *gibbs.BatchScratch
	ok   []uint8
}

// NewBatchLocalMetropolis returns a batched engine of the given number of
// chains, every chain started from the greedy feasible completion of the
// instance pinning, with per-worker RNG streams derived from seed. It
// fails if the instance does not support the filter (closure-backed
// acceptance factors); a nonpositive chain count surfaces as the state
// container's typed *state.DomainError.
func NewBatchLocalMetropolis(r *Rules, chains int, seed int64) (*BatchLocalMetropolis, error) {
	if err := r.MetropolisReady(); err != nil {
		return nil, err
	}
	s := &BatchLocalMetropolis{rules: r, chains: chains}
	if err := s.Reset(seed); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset restarts every chain from the greedy start with fresh RNG
// streams. Both lattices are refilled from the same start, which
// pre-fills the pinned proposal cells once: stage 1 only ever rewrites
// free cells.
func (s *BatchLocalMetropolis) Reset(seed int64) error {
	lat, err := s.rules.ResetLattice(s.lat, s.chains)
	if err != nil {
		return err
	}
	s.lat = lat
	prop, err := s.rules.ResetLattice(s.prop, s.chains)
	if err != nil {
		return err
	}
	s.prop = prop
	if n := s.rules.n * s.chains; len(s.mask) < n {
		s.mask = make([]uint8, n)
	}
	for i := range s.mask {
		s.mask[i] = 1
	}
	s.seed = seed
	s.rounds = 0
	s.accepts = 0
	s.workers = s.workers[:0]
	s.checked = false
	return nil
}

// Chains returns B, the number of independent chains.
func (s *BatchLocalMetropolis) Chains() int { return s.chains }

// Chain returns a copy of chain c's current configuration.
func (s *BatchLocalMetropolis) Chain(c int) dist.Config { return s.lat.Chain(c) }

// State returns a copy of chain 0's configuration (the single-chain view).
func (s *BatchLocalMetropolis) State() dist.Config { return s.lat.Chain(0) }

// Lattice exposes the underlying state container (read-only for callers:
// diagnostics such as the R̂ accumulator read it between runs).
func (s *BatchLocalMetropolis) Lattice() *state.Lattice { return s.lat }

// Rounds returns the number of rounds executed since the last Reset.
func (s *BatchLocalMetropolis) Rounds() int { return s.rounds }

// Accepts returns the total number of adopted proposals across all
// chains and rounds (proposals equal to the current value count as
// adopted).
func (s *BatchLocalMetropolis) Accepts() int64 { return s.accepts }

// SetWorkers overrides the worker count (nonpositive restores the
// CPU-scaled default). Per-worker RNG streams mean trajectories depend on
// the worker count; callers wanting machine-independent reproducibility
// (the adaptive run driver) pin it.
func (s *BatchLocalMetropolis) SetWorkers(w int) { s.Workers = w }

// ensureWorkers sizes the per-worker state for w workers and chain
// groups of cb.
func (s *BatchLocalMetropolis) ensureWorkers(w, cb int) {
	for len(s.workers) < w {
		i := len(s.workers)
		s.workers = append(s.workers, blmWorker{
			rng:  dist.NewXoshiro(s.seed, int64(i)),
			wbuf: make([]float64, cb),
			sc:   gibbs.NewBatchScratch(cb),
			ok:   make([]uint8, cb),
		})
	}
}

// proposeItems is the width-specialized stage-1 body for one (vertex,
// chain group) item: fill v's proposal row for the group from its frozen
// cumulative proposal row.
func proposeItems[T state.Cells](cells []T, B int, cdf *dist.CDF, v, c0, c1 int, rng *dist.Xoshiro) {
	row := cells[v*B+c0 : v*B+c1]
	for i := range row {
		row[i] = T(cdf.Draw(rng))
	}
}

// adoptItems is the width-specialized stage-3 body for one (vertex, chain
// group) item: apply v's adoption-mask row as a write mask between the
// proposal and current rows, reset the mask row to all-ones for the next
// round, and return the number of adoptions. The accept/reject pattern
// of a chain is a coin flip, so a branch per (vertex, chain) would
// mispredict half the time — the mask byte becomes an XOR write mask
// instead.
func adoptItems[T state.Cells](latC, propC []T, B int, mask []uint8, v, c0, c1 int) int64 {
	dst := latC[v*B+c0 : v*B+c1]
	src := propC[v*B+c0 : v*B+c0+(c1-c0)]
	mrow := mask[v*B+c0 : v*B+c0+(c1-c0)]
	n := int64(0)
	for i := range dst {
		ok := mrow[i]
		mrow[i] = 1
		m := -T(ok)
		d := dst[i]
		dst[i] = d ^ ((d ^ src[i]) & m)
		n += int64(ok)
	}
	return n
}

// Run executes the given number of rounds on the worker pool. Stages 1
// and 3 statically partition the (vertex, chain group) item grid with
// groups outermost; stage 2 partitions chain columns directly (all
// factors per column range) so its adoption-mask writes stay
// worker-disjoint. Either way each worker owns contiguous chain columns.
func (s *BatchLocalMetropolis) Run(rounds int) error {
	r := s.rules
	free := r.freeList
	if len(free) == 0 {
		// Fully pinned instance: a round is a no-op.
		s.rounds += rounds
		return nil
	}
	if !s.checked {
		if err := s.lat.CheckAssigned(); err != nil {
			return err
		}
		if err := s.prop.CheckAssigned(); err != nil {
			return err
		}
		s.checked = true
	}
	lat8, prop8 := s.lat.Raw8(), s.prop.Raw8()
	latW, propW := s.lat.RawWide(), s.prop.RawWide()
	if (lat8 == nil) != (prop8 == nil) {
		return errors.New("psample: batch lattices have mixed cell representations")
	}
	B := s.chains
	cb := min(B, ChainBlock(r.q))
	groups := (B + cb - 1) / cb
	nfree := len(free)
	nacc := len(r.acc)
	vItems := nfree * groups
	fItems := nacc * groups
	workers := s.Workers
	if workers <= 0 {
		workers = DefaultWorkers(max(vItems, fItems) * cb)
	}
	workers = max(min(workers, vItems), 1)
	s.ensureWorkers(workers, cb)
	eng := r.eng
	accepts := make([]int64, workers)
	stages := []func(w, round int) error{
		func(w, round int) error {
			lo, hi := BlockOf(vItems, workers, w)
			rng := &s.workers[w].rng
			for it := lo; it < hi; it++ {
				v := free[it%nfree]
				c0 := (it / nfree) * cb
				c1 := min(c0+cb, B)
				cdf := &r.propCDF[v]
				if prop8 != nil {
					cdf.Fill8(rng, prop8[v*B+c0:v*B+c1])
				} else {
					proposeItems(propW, B, cdf, v, c0, c1, rng)
				}
			}
			return nil
		},
		func(w, round int) error {
			// Column partition: this worker owns chain columns [b0, b1)
			// across every acceptance factor, chunked at chain-group
			// boundaries so the weight buffer and scratch stay within cb.
			// Mask-row writes of distinct workers are disjoint byte
			// ranges. At Workers = 1 the (group, factor, chain) coin
			// order is identical to the per-factor-item partition this
			// replaces, preserving the B = 1 agreement.
			wk := &s.workers[w]
			mask := s.mask
			b0, b1 := BlockOf(B, workers, w)
			for cc0 := b0; cc0 < b1; {
				cc1 := min((cc0/cb+1)*cb, b1)
				nb := cc1 - cc0
				for j := 0; j < nacc; j++ {
					af := &r.acc[j]
					if err := eng.FilterWeightBatch(af.fi, s.lat, s.prop, cc0, cc1, af.verts, wk.wbuf, wk.sc); err != nil {
						return err
					}
					ok := wk.ok[:nb]
					scale := af.scale
					for i := range ok {
						var o uint8
						if wk.rng.Float64() < wk.wbuf[i]*scale {
							o = 1
						}
						ok[i] = o
					}
					for _, d := range af.verts {
						row := mask[d*B+cc0 : d*B+cc1]
						for i := range row {
							row[i] &= ok[i]
						}
					}
				}
				cc0 = cc1
			}
			return nil
		},
		func(w, round int) error {
			lo, hi := BlockOf(vItems, workers, w)
			for it := lo; it < hi; it++ {
				v := free[it%nfree]
				c0 := (it / nfree) * cb
				c1 := min(c0+cb, B)
				if lat8 != nil {
					accepts[w] += adoptItems(lat8, prop8, B, s.mask, v, c0, c1)
				} else {
					accepts[w] += adoptItems(latW, propW, B, s.mask, v, c0, c1)
				}
			}
			return nil
		},
	}
	if err := RunRounds(workers, rounds, stages); err != nil {
		return err
	}
	s.rounds += rounds
	for _, a := range accepts {
		s.accepts += a
	}
	return nil
}
