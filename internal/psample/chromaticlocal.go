package psample

// chromaticlocal.go runs ChromaticGlauber as a genuine message-passing
// algorithm on the local.Network simulator. The chromatic schedule itself
// is a global precomputation — the coloring — but the LOCAL model allows
// precomputed input at the nodes, so each node is handed its own color
// (its class index in the cached Rules.ClassSchedule) as node input, and
// from there the dynamics is purely local: in stage s every node of color
// s heat-baths on its neighbors' last-broadcast spins, everyone else
// relays. One stage is pipelined per LOCAL round exactly like the other
// harnesses — the message of round t carries the sender's spin after
// stage t — so R sweeps over a χ-class schedule cost χ·R+1 LOCAL rounds
// (χ stages per sweep plus the initial exchange).
//
// Correctness is the same independent-set argument as the in-process
// engine: a stage updates one color class, an independent set of the
// interaction graph whose factor scopes are cliques, so simultaneous
// updates never share a factor and each stage is a product of ordinary
// heat-bath kernels. The harness reuses glauber.HeatBathX — the exact
// update rule of the sharded engine — so the two cannot drift apart.

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/glauber"
	"repro/internal/local"
	"repro/internal/state"
)

// cgNodeState is the per-node state of the ChromaticGlauber LOCAL harness.
type cgNodeState struct {
	val uint8
	// color is the node's precomputed class index (node input), -1 for
	// pinned vertices, which never update and only relay.
	color int
	// cfg is the node's view of its closed neighborhood: the cell at u for
	// neighbor u is u's spin as of the previous stage.
	cfg  *state.Lattice
	cond []float64
	done int
	// err records a failed update; the simulator has no error channel for
	// steps, so it is surfaced through the final state.
	err error
}

// cgMsg is the round message: the sender's spin after the current stage
// (one byte, the raw compact cell).
type cgMsg struct {
	val uint8
}

// ChromaticGlauberLOCAL runs R sweeps of ChromaticGlauber by message
// passing on the network (which must be the instance's interaction graph)
// and returns the final configuration together with the LOCAL rounds
// consumed (χ·R+1 for a χ-class schedule: one stage per LOCAL round plus
// the initial exchange). The coloring is the rules' cached class schedule,
// distributed to each node as its node input.
func ChromaticGlauberLOCAL(net *local.Network, r *Rules, R int, seed int64) (dist.Config, int, error) {
	rngs, err := networkFor(net, r, seed)
	if err != nil {
		return nil, 0, err
	}
	start, err := r.Start()
	if err != nil {
		return nil, 0, err
	}
	classes := r.ClassSchedule()
	chi := len(classes)
	if R <= 0 || chi == 0 {
		// Nothing to sweep (or a fully pinned instance, whose sweeps are
		// no-ops): the start is the answer, no rounds consumed.
		return start, 0, nil
	}
	color := make([]int, r.n)
	for v := range color {
		color[v] = -1
	}
	for s, class := range classes {
		for _, v := range class {
			color[v] = s
		}
	}
	stages := chi * R
	g := net.G
	init := func(v int) any {
		view, err := nodeView(r.n, r.q)
		st := &cgNodeState{
			val:   uint8(start[v]),
			color: color[v],
			cfg:   view,
			cond:  make([]float64, r.q),
		}
		if err != nil {
			st.err = err
			return st
		}
		st.cfg.Set(v, 0, int(st.val))
		return st
	}
	step := func(v, round int, nodeState any, inbox []local.Message) (any, []local.Message, bool) {
		st := nodeState.(*cgNodeState)
		if st.err != nil {
			return st, nil, true
		}
		if round > 0 {
			for _, m := range inbox {
				st.cfg.Set(m.From, 0, int(m.Payload.(cgMsg).val))
			}
			if st.color == (round-1)%chi {
				st.cfg.Set(v, 0, int(st.val))
				if err := glauber.HeatBathX(r.eng, st.cfg, 0, v, st.cond, &rngs[v]); err != nil {
					st.err = err
					return st, nil, true
				}
				st.val = uint8(st.cfg.Get(v, 0))
			}
			st.done++
			if st.done >= stages {
				return st, nil, true
			}
		}
		out := make([]local.Message, 0, g.Degree(v))
		for _, u := range g.Neighbors(v) {
			out = append(out, local.Message{From: v, To: u, Payload: cgMsg{val: st.val}})
		}
		return st, out, false
	}
	res, err := net.Run(stages+1, init, step)
	if err != nil {
		return nil, 0, err
	}
	out := dist.NewConfig(r.n)
	for v := 0; v < r.n; v++ {
		st := res.States[v].(*cgNodeState)
		if st.err != nil {
			return nil, 0, fmt.Errorf("psample: heat-bath update failed at node %d: %w", v, st.err)
		}
		out[v] = int(st.val)
	}
	return out, res.Rounds, nil
}
