package psample

// shard_test.go exercises the worker-pool substrate directly: the static
// partition, the barrier ordering guarantees, error propagation, and the
// panic-recovery path (a panicking stage must not strand the surviving
// workers at the barrier).

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestBlockOfCoversAll(t *testing.T) {
	for _, total := range []int{0, 1, 5, 64, 577} {
		for _, workers := range []int{1, 2, 3, 7, 16} {
			prev := 0
			for w := 0; w < workers; w++ {
				lo, hi := BlockOf(total, workers, w)
				if lo != prev {
					t.Fatalf("BlockOf(%d,%d,%d) = [%d,%d): gap after %d", total, workers, w, lo, hi, prev)
				}
				if hi < lo {
					t.Fatalf("BlockOf(%d,%d,%d) = [%d,%d): negative block", total, workers, w, lo, hi)
				}
				prev = hi
			}
			if prev != total {
				t.Fatalf("BlockOf(%d,%d,·) covers %d items", total, workers, prev)
			}
		}
	}
}

// TestRunRoundsStageOrdering checks the barrier contract: across workers,
// stage s+1 of a round never starts before every worker finished stage s.
func TestRunRoundsStageOrdering(t *testing.T) {
	const workers, rounds = 4, 25
	var inStage [2]atomic.Int32
	stages := []func(w, round int) error{
		func(w, round int) error {
			inStage[0].Add(1)
			if inStage[1].Load() != 0 {
				t.Error("stage 1 ran concurrently with stage 0")
			}
			inStage[0].Add(-1)
			return nil
		},
		func(w, round int) error {
			inStage[1].Add(1)
			if inStage[0].Load() != 0 {
				t.Error("stage 0 ran concurrently with stage 1")
			}
			inStage[1].Add(-1)
			return nil
		},
	}
	if err := RunRounds(workers, rounds, stages); err != nil {
		t.Fatal(err)
	}
}

func TestRunRoundsError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		ran := atomic.Int32{}
		err := RunRounds(workers, 10, []func(w, round int) error{
			func(w, round int) error {
				ran.Add(1)
				if w == 0 && round == 2 {
					return boom
				}
				return nil
			},
		})
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: err = %v, want boom", workers, err)
		}
	}
}

// TestRunRoundsPanicRecovered is the regression test for the barrier
// deadlock: before the fix, a stage panic killed its worker goroutine
// mid-round and every surviving worker blocked forever at the next
// barrier. The panic must come back as an error carrying the panic value,
// within a bounded time.
func TestRunRoundsPanicRecovered(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- RunRounds(4, 50, []func(w, round int) error{
			func(w, round int) error { return nil },
			func(w, round int) error {
				if w == 2 && round == 3 {
					panic("kaboom")
				}
				return nil
			},
		})
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "kaboom") {
			t.Fatalf("err = %v, want recovered panic mentioning kaboom", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunRounds deadlocked after a stage panic")
	}
}

// TestRunRoundsPanicInline checks the 1-worker inline path too: the
// contract (stage panics come back as errors) must not depend on the
// worker count the DefaultWorkers heuristic happens to pick.
func TestRunRoundsPanicInline(t *testing.T) {
	err := RunRounds(1, 1, []func(w, round int) error{
		func(w, round int) error { panic("inline") },
	})
	if err == nil || !strings.Contains(err.Error(), "inline") {
		t.Fatalf("err = %v, want recovered panic mentioning inline", err)
	}
}
