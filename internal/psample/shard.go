package psample

// shard.go is the direct in-process execution substrate shared by the two
// sharded sampler engines: a static block partition of vertices (and
// factors) across a bounded worker pool, with a reusable generation
// barrier between the stages of each round. With one worker the stage
// functions run inline — no goroutines, no barriers — so small instances
// and single-CPU machines pay zero synchronization overhead.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers picks the worker count for an instance with total work
// items: one worker per available CPU, but never so many that a worker's
// block drops below minBlock items (barrier crossings would dominate).
func defaultWorkers(total int) int {
	const minBlock = 64
	w := min(runtime.GOMAXPROCS(0), total/minBlock)
	return max(w, 1)
}

// blockOf returns worker w's half-open item range under the static
// partition of total items across workers blocks.
func blockOf(total, workers, w int) (lo, hi int) {
	return total * w / workers, total * (w + 1) / workers
}

// barrier is a reusable generation barrier for a fixed party count.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	arrived int
	gen     int
}

func newBarrier(parties int) *barrier {
	b := &barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all parties have arrived, then releases them together.
func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	gen := b.gen
	for b.gen == gen {
		b.cond.Wait()
	}
}

// runRounds executes rounds iterations of the stage functions on the given
// number of workers. Within a round every worker runs stage 0 on its own
// blocks, crosses a barrier, runs stage 1, and so on — so a stage may read
// anything written by earlier stages of the same round but two workers
// never write the same item (the static partition guarantees it). A stage
// error aborts the work (remaining stages become no-ops on every worker)
// and the first error observed is returned.
func runRounds(workers, rounds int, stages []func(w, round int) error) error {
	if workers <= 1 {
		for r := 0; r < rounds; r++ {
			for _, stage := range stages {
				if err := stage(0, r); err != nil {
					return err
				}
			}
		}
		return nil
	}
	bar := newBarrier(workers)
	errs := make([]error, workers)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds && !failed.Load(); r++ {
				for _, stage := range stages {
					if errs[w] == nil && !failed.Load() {
						if err := stage(w, r); err != nil {
							errs[w] = err
							failed.Store(true)
						}
					}
					bar.await()
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
