package psample

// shard.go is the direct in-process execution substrate shared by the
// sharded sampler engines (and by the batched multi-chain engine in
// internal/sampler): a static block partition of work items across a
// bounded worker pool, with a reusable generation barrier between the
// stages of each round. With one worker the stage functions run inline —
// no goroutines, no barriers — so small instances and single-CPU machines
// pay zero synchronization overhead.

import (
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// DefaultWorkers picks the worker count for an instance with total work
// items: one worker per available CPU, but never so many that a worker's
// block drops below minBlock items (barrier crossings would dominate).
func DefaultWorkers(total int) int {
	const minBlock = 64
	w := min(runtime.GOMAXPROCS(0), total/minBlock)
	return max(w, 1)
}

// BlockOf returns worker w's half-open item range under the static
// partition of total items across workers blocks.
func BlockOf(total, workers, w int) (lo, hi int) {
	return total * w / workers, total * (w + 1) / workers
}

// ChainBlock picks the chain-group width of the batched multi-chain
// engines: weight rows for a (vertex, chain group) item stay within a
// few kB of scratch (512 floats) regardless of q, clamped to [16, 256]
// so groups neither thrash the scratch nor degenerate to single chains.
func ChainBlock(q int) int {
	if q < 1 {
		q = 1
	}
	return min(max(512/q, 16), 256)
}

// barrier is a reusable generation barrier for a fixed party count.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	arrived int
	gen     int
}

func newBarrier(parties int) *barrier {
	b := &barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all parties have arrived, then releases them together.
func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	gen := b.gen
	for b.gen == gen {
		b.cond.Wait()
	}
}

// RunRounds executes rounds iterations of the stage functions on the given
// number of workers. Within a round every worker runs stage 0 on its own
// blocks, crosses a barrier, runs stage 1, and so on — so a stage may read
// anything written by earlier stages of the same round but two workers
// never write the same item (the static partition guarantees it). A stage
// error aborts the work (remaining stages become no-ops on every worker)
// and the first error observed is returned. A stage panic is recovered and
// converted into an error the same way: the panicking worker keeps
// attending the round's barriers so the surviving workers drain instead of
// deadlocking, and the error (with the panic's stack) is returned after
// the pool has stopped.
func RunRounds(workers, rounds int, stages []func(w, round int) error) error {
	if workers <= 1 {
		// The inline path has no barrier to strand, but panics are still
		// converted so the exported contract does not depend on the
		// machine-dependent worker count.
		for r := 0; r < rounds; r++ {
			for _, stage := range stages {
				if err := runStage(stage, 0, r); err != nil {
					return err
				}
			}
		}
		return nil
	}
	bar := newBarrier(workers)
	errs := make([]error, workers)
	// failedRound is the earliest round in which a stage failed (MaxInt64
	// while none has). Workers may only stop at a barrier-aligned point
	// every worker agrees on, and "end of round failedRound" is the unique
	// such point: a failure in round ≤ r is stored before the failing
	// worker attends that round's remaining barriers, so it is visible to
	// every worker by the end of round r, while a failure from round r+1
	// (set by a worker that raced ahead through the last barrier of round
	// r) can never make the predicate failedRound ≤ r true. A plain "stop
	// as soon as a failure is visible" flag has no such agreement — one
	// worker sees it a round earlier than another, leaves the pool, and
	// strands the rest at the barrier.
	const never = int64(math.MaxInt64)
	var failedRound atomic.Int64
	failedRound.Store(never)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for _, stage := range stages {
					if errs[w] == nil && failedRound.Load() == never {
						if err := runStage(stage, w, r); err != nil {
							errs[w] = err
							for {
								cur := failedRound.Load()
								if cur <= int64(r) || failedRound.CompareAndSwap(cur, int64(r)) {
									break
								}
							}
						}
					}
					bar.await()
				}
				if failedRound.Load() <= int64(r) {
					break
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runStage invokes one stage call, converting a panic into an error so the
// worker can keep crossing barriers.
func runStage(stage func(w, round int) error, w, r int) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("psample: worker %d: stage panicked in round %d: %v\n%s", w, r, p, debug.Stack())
		}
	}()
	return stage(w, r)
}
