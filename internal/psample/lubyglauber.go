package psample

// lubyglauber.go is the direct sharded LubyGlauber engine. Each round has
// two stages: (1) every free vertex draws a phase value; (2) every free
// vertex that wins the Luby phase against its free neighbors performs a
// heat-bath update through glauber.HeatBath. Winners form an independent
// set, so no two simultaneous updates share a factor and the round is a
// product of ordinary Glauber kernels — the target distribution is exactly
// stationary. A vertex is selected with probability at least 1/(deg+1) per
// round, which is what gives the paper's O(Δ log n)-style round bounds.

import (
	"repro/internal/dist"
	"repro/internal/glauber"
	"repro/internal/state"
)

// LubyGlauber is the sharded in-process LubyGlauber sampler. Its
// configuration lives in a single-chain state.Lattice — one byte per
// vertex for every model this repo builds.
type LubyGlauber struct {
	// Workers overrides the worker count when positive (default: one per
	// CPU, bounded so blocks stay coarse).
	Workers int

	rules   *Rules
	lat     *state.Lattice
	draws   []float64
	rounds  int
	updates int64
	workers []lgWorker
	seed    int64
}

// lgWorker is the per-worker mutable state (RNG stream and heat-bath
// buffer); worker w exclusively owns vertex block w. The generator is a
// value-type xoshiro256++ stream, so the hot loops draw uniforms without
// interface calls.
type lgWorker struct {
	rng  dist.Xoshiro
	cond []float64
}

// NewLubyGlauber returns a sampler started from the greedy feasible
// completion of the instance pinning, with per-worker RNG streams derived
// from seed.
func NewLubyGlauber(r *Rules, seed int64) (*LubyGlauber, error) {
	s := &LubyGlauber{rules: r, draws: make([]float64, r.n)}
	if err := s.Reset(seed); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset restarts the sampler from the greedy start with fresh RNG streams.
func (s *LubyGlauber) Reset(seed int64) error {
	lat, err := s.rules.ResetLattice(s.lat, 1)
	if err != nil {
		return err
	}
	s.lat = lat
	s.seed = seed
	s.rounds = 0
	s.updates = 0
	s.workers = s.workers[:0]
	return nil
}

// State returns a copy of the current configuration.
func (s *LubyGlauber) State() dist.Config { return s.lat.Chain(0) }

// Rounds returns the number of rounds executed.
func (s *LubyGlauber) Rounds() int { return s.rounds }

// Updates returns the total number of heat-bath updates performed (the sum
// of the independent-set sizes over all rounds).
func (s *LubyGlauber) Updates() int64 { return s.updates }

// ensureWorkers sizes the per-worker state for w workers.
func (s *LubyGlauber) ensureWorkers(w int) {
	for len(s.workers) < w {
		i := len(s.workers)
		s.workers = append(s.workers, lgWorker{
			rng:  dist.NewXoshiro(s.seed, int64(i)),
			cond: make([]float64, s.rules.q),
		})
	}
}

// Run executes the given number of rounds on the worker pool.
func (s *LubyGlauber) Run(rounds int) error {
	r := s.rules
	workers := s.Workers
	if workers <= 0 {
		workers = DefaultWorkers(r.n)
	}
	workers = max(min(workers, r.n), 1)
	s.ensureWorkers(workers)
	g := r.in.Spec.G
	updates := make([]int64, workers)
	stages := []func(w, round int) error{
		func(w, round int) error {
			lo, hi := BlockOf(r.n, workers, w)
			rng := &s.workers[w].rng
			for v := lo; v < hi; v++ {
				if r.free[v] {
					s.draws[v] = rng.Float64()
				}
			}
			return nil
		},
		func(w, round int) error {
			lo, hi := BlockOf(r.n, workers, w)
			wk := &s.workers[w]
			for v := lo; v < hi; v++ {
				if !r.free[v] || !r.winsPhase(v, s.draws, g.Neighbors(v)) {
					continue
				}
				if err := glauber.HeatBathX(r.eng, s.lat, 0, v, wk.cond, &wk.rng); err != nil {
					return err
				}
				updates[w]++
			}
			return nil
		},
	}
	if err := RunRounds(workers, rounds, stages); err != nil {
		return err
	}
	s.rounds += rounds
	for _, u := range updates {
		s.updates += u
	}
	return nil
}
