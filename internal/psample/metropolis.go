package psample

// metropolis.go is the direct sharded LocalMetropolis engine. Each round
// has three stages: (1) every free vertex draws a proposal from its
// unary-weight distribution; (2) every acceptance factor independently
// flips its filter coin (Rules.FilterProb); (3) every free vertex adopts
// its proposal iff all of its factors accepted. All three stages are
// embarrassingly parallel — LocalMetropolis is the paper's "every vertex
// every round" dynamics, trading per-round acceptance losses for maximal
// parallelism.
//
// Pinned vertices never change, so their proposal cells are filled once
// at Reset (the proposal lattice starts as a copy of the canonical start,
// whose pinned cells are the pinned symbols) and stage 1 touches only
// free vertices — no per-round re-copying of pinned state.

import (
	"repro/internal/dist"
	"repro/internal/state"
)

// LocalMetropolis is the sharded in-process LocalMetropolis sampler. The
// current configuration and the round's proposals live in single-chain
// state lattices (one byte per vertex for every model this repo builds).
type LocalMetropolis struct {
	// Workers overrides the worker count when positive (default: one per
	// CPU, bounded so blocks stay coarse).
	Workers int

	rules   *Rules
	lat     *state.Lattice
	prop    *state.Lattice
	accOK   []bool
	rounds  int
	accepts int64
	rngs    []dist.Xoshiro
	seed    int64
}

// NewLocalMetropolis returns a sampler started from the greedy feasible
// completion of the instance pinning. It fails if the instance does not
// support the filter (closure-backed acceptance factors).
func NewLocalMetropolis(r *Rules, seed int64) (*LocalMetropolis, error) {
	if err := r.MetropolisReady(); err != nil {
		return nil, err
	}
	s := &LocalMetropolis{
		rules: r,
		accOK: make([]bool, len(r.acc)),
	}
	if err := s.Reset(seed); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset restarts the sampler from the greedy start with fresh RNG streams.
// The proposal lattice is refilled from the same start, which pre-fills
// the pinned cells once: stage 1 only ever rewrites free cells.
func (s *LocalMetropolis) Reset(seed int64) error {
	lat, err := s.rules.ResetLattice(s.lat, 1)
	if err != nil {
		return err
	}
	s.lat = lat
	prop, err := s.rules.ResetLattice(s.prop, 1)
	if err != nil {
		return err
	}
	s.prop = prop
	s.seed = seed
	s.rounds = 0
	s.accepts = 0
	s.rngs = s.rngs[:0]
	return nil
}

// State returns a copy of the current configuration.
func (s *LocalMetropolis) State() dist.Config { return s.lat.Chain(0) }

// Rounds returns the number of rounds executed.
func (s *LocalMetropolis) Rounds() int { return s.rounds }

// Accepts returns the total number of adopted proposals across all rounds
// (proposals equal to the current value count as adopted).
func (s *LocalMetropolis) Accepts() int64 { return s.accepts }

func (s *LocalMetropolis) ensureWorkers(w int) {
	for len(s.rngs) < w {
		i := len(s.rngs)
		s.rngs = append(s.rngs, dist.NewXoshiro(s.seed, int64(i)))
	}
}

// Run executes the given number of rounds on the worker pool.
func (s *LocalMetropolis) Run(rounds int) error {
	r := s.rules
	workers := s.Workers
	if workers <= 0 {
		workers = DefaultWorkers(r.n)
	}
	workers = max(min(workers, r.n), 1)
	s.ensureWorkers(workers)
	accepts := make([]int64, workers)
	stages := []func(w, round int) error{
		func(w, round int) error {
			lo, hi := BlockOf(r.n, workers, w)
			rng := &s.rngs[w]
			for v := lo; v < hi; v++ {
				if r.free[v] {
					s.prop.Set(v, 0, r.propCDF[v].Draw(rng))
				}
			}
			return nil
		},
		func(w, round int) error {
			lo, hi := BlockOf(len(r.acc), workers, w)
			return r.FilterStage(s.lat, s.prop, 0, lo, hi, &s.rngs[w], s.accOK)
		},
		func(w, round int) error {
			lo, hi := BlockOf(r.n, workers, w)
			for v := lo; v < hi; v++ {
				if !r.free[v] {
					continue
				}
				ok := true
				for _, j := range r.AccAt(v) {
					if !s.accOK[j] {
						ok = false
						break
					}
				}
				if ok {
					s.lat.Set(v, 0, s.prop.Get(v, 0))
					accepts[w]++
				}
			}
			return nil
		},
	}
	if err := RunRounds(workers, rounds, stages); err != nil {
		return err
	}
	s.rounds += rounds
	for _, a := range accepts {
		s.accepts += a
	}
	return nil
}
