package psample

// network_test.go validates the message-passing harnesses: round
// accounting in the LOCAL model (R dynamics rounds cost exactly R+1
// simulator rounds), locality (every message crosses a graph edge — the
// simulator rejects anything else), and that the harnesses sample the same
// distribution as the brute-force referee.

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/model"
)

func hardcoreRules(t *testing.T, g *graph.Graph, lambda float64, pinned dist.Config) *Rules {
	t.Helper()
	spec, err := model.Hardcore(g, lambda)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(spec, pinned)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRules(in)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestLOCALRoundAccounting(t *testing.T) {
	g := graph.Cycle(8)
	r := hardcoreRules(t, g, 1.0, nil)
	net := local.NewNetwork(g)
	for _, R := range []int{1, 5, 12} {
		cfg, rounds, err := LubyGlauberLOCAL(net, r, R, 42)
		if err != nil {
			t.Fatalf("LubyGlauber R=%d: %v", R, err)
		}
		if rounds != R+1 {
			t.Errorf("LubyGlauber R=%d consumed %d LOCAL rounds, want %d", R, rounds, R+1)
		}
		if w, err := r.Instance().Spec.Weight(cfg); err != nil || w <= 0 {
			t.Errorf("LubyGlauber R=%d: infeasible output %v", R, cfg)
		}
		cfg, rounds, err = LocalMetropolisLOCAL(net, r, R, 42)
		if err != nil {
			t.Fatalf("LocalMetropolis R=%d: %v", R, err)
		}
		if rounds != R+1 {
			t.Errorf("LocalMetropolis R=%d consumed %d LOCAL rounds, want %d", R, rounds, R+1)
		}
		if w, err := r.Instance().Spec.Weight(cfg); err != nil || w <= 0 {
			t.Errorf("LocalMetropolis R=%d: infeasible output %v", R, cfg)
		}
	}
	// R = 0 returns the deterministic start without any simulator rounds.
	cfg, rounds, err := LubyGlauberLOCAL(net, r, 0, 42)
	if err != nil || rounds != 0 {
		t.Fatalf("R=0: cfg=%v rounds=%d err=%v", cfg, rounds, err)
	}
}

func TestLOCALRespectsPinning(t *testing.T) {
	g := graph.Path(6)
	pin := dist.Config{model.In, dist.Unset, dist.Unset, dist.Unset, dist.Unset, model.Out}
	r := hardcoreRules(t, g, 1.0, pin)
	net := local.NewNetwork(g)
	for name, run := range map[string]func() (dist.Config, int, error){
		"luby":       func() (dist.Config, int, error) { return LubyGlauberLOCAL(net, r, 20, 9) },
		"metropolis": func() (dist.Config, int, error) { return LocalMetropolisLOCAL(net, r, 20, 9) },
	} {
		cfg, _, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cfg[0] != model.In || cfg[5] != model.Out {
			t.Errorf("%s: pinning violated: %v", name, cfg)
		}
	}
}

// TestLOCALMatchesExact pins the message-passing harnesses' output
// distribution to the brute-force referee (hardcore on a 5-cycle): the
// LOCAL implementations must sample the same law as the sharded engines.
func TestLOCALMatchesExact(t *testing.T) {
	g := graph.Cycle(5)
	r := hardcoreRules(t, g, 1.2, nil)
	truth, err := exact.JointDistribution(r.Instance())
	if err != nil {
		t.Fatal(err)
	}
	const trials = 2500
	for name, run := range map[string]func(seed int64) (dist.Config, int, error){
		"luby":       func(seed int64) (dist.Config, int, error) { return LubyGlauberLOCAL(net(g), r, 25, seed) },
		"metropolis": func(seed int64) (dist.Config, int, error) { return LocalMetropolisLOCAL(net(g), r, 40, seed) },
	} {
		t.Run(name, func(t *testing.T) {
			emp := dist.NewEmpirical(g.N())
			for i := 0; i < trials; i++ {
				cfg, _, err := run(int64(5000 + i))
				if err != nil {
					t.Fatal(err)
				}
				emp.Observe(cfg)
			}
			got, err := emp.Joint()
			if err != nil {
				t.Fatal(err)
			}
			tv, err := dist.TVJoint(truth, got)
			if err != nil {
				t.Fatal(err)
			}
			tol := 2.5 * dist.ExpectedTVNoise(truth.Len(), trials)
			if tv > tol {
				t.Errorf("TV vs exact = %v > envelope %v", tv, tol)
			}
		})
	}
}

func net(g *graph.Graph) *local.Network { return local.NewNetwork(g) }

// TestLOCALWrongNetwork checks the network/instance size validation.
func TestLOCALWrongNetwork(t *testing.T) {
	r := hardcoreRules(t, graph.Cycle(6), 1.0, nil)
	wrong := local.NewNetwork(graph.Cycle(5))
	if _, _, err := LubyGlauberLOCAL(wrong, r, 3, 1); err == nil {
		t.Error("mismatched network accepted by LubyGlauber")
	}
	if _, _, err := LocalMetropolisLOCAL(wrong, r, 3, 1); err == nil {
		t.Error("mismatched network accepted by LocalMetropolis")
	}
}
