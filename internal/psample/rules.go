// Package psample implements the paper's two distributed samplers on the
// LOCAL runtime — LubyGlauber and LocalMetropolis (Section 1.2) — each in
// two harnesses that share one update-rule implementation:
//
//   - a message-passing harness on local.Network, where only synchronous
//     rounds are charged, validating the O(Δ log n)-style round behavior
//     experimentally, and
//   - a direct sharded in-process engine (a worker pool over vertex and
//     factor blocks with no message overhead) for throughput comparisons
//     against the sequential glauber.Chain baseline, and
//   - a batched multi-chain engine per dynamics (BatchLubyGlauber,
//     BatchLocalMetropolis) advancing B independent chains in lockstep
//     over one chain-major state.Lattice through the masked fused kernels
//     (gibbs.Compiled.SampleVertexSubset, FilterWeightBatch), with
//     per-worker value-type RNG streams; at B = 1 with one worker each
//     batched engine reproduces its single-chain trajectory bit for bit.
//
// LubyGlauber interleaves construction and sampling: each round one phase
// of Luby's MIS algorithm (construct.Beats) picks an independent set of
// free vertices, and every selected vertex performs a heat-bath update
// (glauber.HeatBath) simultaneously — correct because an independent set
// shares no factor, so the simultaneous conditionals coincide with the
// sequential ones. LocalMetropolis is fully parallel: every free vertex
// proposes a fresh spin from its unary-weight distribution each round, and
// every multi-vertex factor independently accepts with the subset-product
// filter probability (gibbs.Compiled.FilterWeight normalized by the
// factor's maximum table entry); a vertex adopts its proposal iff all its
// factors accept.
//
// Both dynamics have the target Gibbs distribution µ^τ as their stationary
// distribution (the package tests pin this exactly by enumerating the
// one-round transition matrix on small instances, and empirically by
// TV-distance tests against internal/exact for every internal/model
// builder).
package psample

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/construct"
	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/state"
)

// Rules is the shared compiled form of an instance's update rules: the
// per-vertex proposal distributions and the acceptance-filtered factors of
// LocalMetropolis, the free-vertex structure used by LubyGlauber's phase
// selection, and the compiled evaluation engine behind both. One Rules
// value is immutable after construction (the lazily built class schedule
// sits behind a sync.Once) and safe for concurrent use by any number of
// samplers.
type Rules struct {
	in  *gibbs.Instance
	eng *gibbs.Compiled
	n   int
	q   int

	// free[v] reports whether v is unpinned.
	free []bool
	// freeList is the free vertices in increasing order — the iteration
	// domain of every engine stage that touches only unpinned vertices.
	freeList []int
	// freeAdj[v] is free vertex v's free neighbors (nil for pinned
	// vertices) — the rivals of its Luby phase, precomputed so the batched
	// phase check sweeps chain rows without re-testing pinning.
	freeAdj [][]int32
	// riv/rivBit is freeAdj padded to exactly four rivals per vertex for
	// the batched engine's fused phase check: riv[4v+j] indexes the rival's
	// row in the shifted-key draw matrix (n, the all-zero sentinel row, for
	// padding), and rivBit[4v+j] is 1 when the rival outranks v in the
	// vertex-order tiebreak (rival id > v). With phase keys stored as
	// (draw53 << 1), the rival beats v exactly when key|bit > keyV — the
	// full construct.Beats order in one branchless unsigned compare.
	// Vertices with more than four free rivals (len(freeAdj[v]) > 4) are
	// not covered and take the engine's generic row-sweep instead.
	riv    []int32
	rivBit []uint64
	// proposal[v] is the normalized LocalMetropolis proposal distribution
	// of free vertex v: the product of every factor that is unary in v
	// under the pinning (nil for pinned vertices).
	proposal []dist.Dist
	// propCDF[v] is proposal[v] frozen into a cumulative row (zero value
	// for pinned vertices): one compare per symbol per draw, bit-identical
	// to proposal[v].Sample for the same uniform, shared by the sharded and
	// batched Metropolis engines so their stage-1 draws agree exactly.
	propCDF []dist.CDF
	// acc lists the acceptance-filtered factors: factors with at least two
	// distinct free scope vertices.
	acc []accFactor
	// accOff/accIdx is the CSR mapping each vertex to the indices (into
	// acc) of the acceptance factors that toggle it.
	accOff []int32
	accIdx []int32
	// accErr defers "LocalMetropolis cannot run on this instance" errors
	// (closure-backed acceptance factors have no enumerable maximum) so
	// that LubyGlauber, which never filters, still works.
	accErr error

	// sched is the chromatic stage schedule over free vertices, colored
	// lazily once (ClassSchedule) so repeated batch construction over one
	// Rules — pooled chains, restarted diagnostics — does not recolor the
	// graph.
	schedOnce sync.Once
	sched     [][]int
}

// accFactor is one acceptance-filtered factor of LocalMetropolis.
type accFactor struct {
	// fi is the factor index in the compiled engine.
	fi int
	// verts are the distinct free scope vertices (the toggled set).
	verts []int
	// scale converts FilterWeight into a probability: (1/max)^(2^k − 1)
	// where max is the factor's largest table entry, so every one of the
	// 2^k − 1 subset terms is at most 1.
	scale float64
}

// ErrNoFeasibleStart indicates that no feasible initial configuration could
// be constructed from the instance pinning.
var ErrNoFeasibleStart = errors.New("psample: no feasible initial state")

// NewRules compiles the shared update rules of both samplers for the
// instance. It fails if some factor scope is not a clique of the
// interaction graph (both samplers rely on factor locality: a vertex's
// factors must be computable from its graph neighborhood) or if some free
// vertex has no feasible proposal.
func NewRules(in *gibbs.Instance) (*Rules, error) {
	s := in.Spec
	r := &Rules{
		in:  in,
		eng: s.Compiled(),
		n:   s.N(),
		q:   s.Q,
	}
	r.free = make([]bool, r.n)
	for v, x := range in.Pinned {
		r.free[v] = x == dist.Unset
		if r.free[v] {
			r.freeList = append(r.freeList, v)
		}
	}
	r.freeAdj = make([][]int32, r.n)
	for _, v := range r.freeList {
		for _, u := range s.G.Neighbors(v) {
			if r.free[u] {
				r.freeAdj[v] = append(r.freeAdj[v], int32(u))
			}
		}
	}
	r.riv = make([]int32, 4*r.n)
	r.rivBit = make([]uint64, 4*r.n)
	for i := range r.riv {
		r.riv[i] = int32(r.n)
	}
	for _, v := range r.freeList {
		adj := r.freeAdj[v]
		if len(adj) > 4 {
			continue
		}
		for j, u := range adj {
			r.riv[4*v+j] = u
			if int(u) > v {
				r.rivBit[4*v+j] = 1
			}
		}
	}
	propW := make([][]float64, r.n)
	var scratch []int
	for fi, f := range s.Factors {
		// Distinct scope vertices, and the free ones among them.
		scratch = scratch[:0]
		for _, u := range f.Scope {
			seen := false
			for _, d := range scratch {
				if d == u {
					seen = true
					break
				}
			}
			if !seen {
				scratch = append(scratch, u)
			}
		}
		for i, u := range scratch {
			for _, w := range scratch[i+1:] {
				if !s.G.HasEdge(u, w) {
					return nil, fmt.Errorf("psample: factor %d (%s): scope vertices %d and %d are not adjacent — scopes must be cliques of G", fi, f.Name, u, w)
				}
			}
		}
		var freeVerts []int
		for _, u := range scratch {
			if r.free[u] {
				freeVerts = append(freeVerts, u)
			}
		}
		switch len(freeVerts) {
		case 0:
			// Constant under the pinning; feasibility of the pinning is
			// checked by Start.
		case 1:
			v := freeVerts[0]
			if propW[v] == nil {
				propW[v] = ones(r.q)
			}
			if err := foldUnary(propW[v], f, in.Pinned, v); err != nil {
				return nil, fmt.Errorf("psample: factor %d (%s): %w", fi, f.Name, err)
			}
		default:
			// The subset-product filter has 2^k − 1 terms over k toggled
			// vertices; at k ≥ 63 the term count itself overflows int64 and
			// the scale exponent silently becomes garbage, so such factors
			// are rejected outright rather than deferred to accErr.
			if k := len(freeVerts); k >= 63 {
				return nil, fmt.Errorf("psample: factor %d (%s) has %d free scope vertices — the 2^k−1 subset-product filter overflows for k ≥ 63; split the factor", fi, f.Name, k)
			}
			af := accFactor{fi: fi, verts: freeVerts}
			if m, ok := r.eng.TableMax(fi); !ok {
				if r.accErr == nil {
					r.accErr = fmt.Errorf("psample: factor %d (%s): %w — LocalMetropolis needs table-backed factors", fi, f.Name, gibbs.ErrNotTabled)
				}
			} else if m <= 0 {
				if r.accErr == nil {
					r.accErr = fmt.Errorf("psample: factor %d (%s) is identically zero", fi, f.Name)
				}
			} else {
				// int64, not int: the k ≥ 63 guard above leaves k up to 62,
				// which still overflows a 32-bit int shift.
				terms := int64(1)<<len(freeVerts) - 1
				af.scale = math.Pow(1/m, float64(terms))
			}
			r.acc = append(r.acc, af)
		}
	}
	r.proposal = make([]dist.Dist, r.n)
	r.propCDF = make([]dist.CDF, r.n)
	for v := 0; v < r.n; v++ {
		if !r.free[v] {
			continue
		}
		w := propW[v]
		if w == nil {
			w = ones(r.q)
		}
		d, err := dist.FromWeights(w)
		if err != nil {
			return nil, fmt.Errorf("%w: vertex %d has no feasible proposal", ErrNoFeasibleStart, v)
		}
		r.proposal[v] = d
		r.propCDF[v] = dist.NewCDF(d)
	}
	// CSR: acceptance factors toggling each vertex.
	counts := make([]int32, r.n+1)
	for _, af := range r.acc {
		for _, v := range af.verts {
			counts[v+1]++
		}
	}
	r.accOff = make([]int32, r.n+1)
	for v := 0; v < r.n; v++ {
		r.accOff[v+1] = r.accOff[v] + counts[v+1]
	}
	r.accIdx = make([]int32, r.accOff[r.n])
	fill := make([]int32, r.n)
	copy(fill, r.accOff[:r.n])
	for j, af := range r.acc {
		for _, v := range af.verts {
			r.accIdx[fill[v]] = int32(j)
			fill[v]++
		}
	}
	return r, nil
}

// ones returns a weight vector of q ones.
func ones(q int) []float64 {
	w := make([]float64, q)
	for i := range w {
		w[i] = 1
	}
	return w
}

// foldUnary multiplies into w the row of factor f as a function of v's
// symbol, with every other scope vertex read from the pinning.
func foldUnary(w []float64, f gibbs.Factor, pinned dist.Config, v int) error {
	assign := make([]int, len(f.Scope))
	for x := range w {
		for j, u := range f.Scope {
			if u == v {
				assign[j] = x
			} else {
				if pinned[u] == dist.Unset {
					return fmt.Errorf("scope vertex %d unexpectedly free", u)
				}
				assign[j] = pinned[u]
			}
		}
		w[x] *= f.Eval(assign)
	}
	return nil
}

// Instance returns the instance the rules were compiled from.
func (r *Rules) Instance() *gibbs.Instance { return r.in }

// Engine returns the compiled evaluation engine shared by the samplers.
func (r *Rules) Engine() *gibbs.Compiled { return r.eng }

// N returns the number of vertices.
func (r *Rules) N() int { return r.n }

// Q returns the alphabet size.
func (r *Rules) Q() int { return r.q }

// Free reports whether v is unpinned.
func (r *Rules) Free(v int) bool { return r.free[v] }

// FreeList returns the free vertices in increasing order. The slice
// aliases internal state and must not be modified.
func (r *Rules) FreeList() []int { return r.freeList }

// ProposalCDF returns free vertex v's frozen proposal cumulative row.
// The returned pointer aliases internal state.
func (r *Rules) ProposalCDF(v int) *dist.CDF { return &r.propCDF[v] }

// Start returns a feasible initial configuration (the greedy completion of
// the pinning), mirroring the sequential chain's start so that mixing
// comparisons share an initial state.
func (r *Rules) Start() (dist.Config, error) {
	start, err := r.eng.GreedyCompletion(r.in.Pinned)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoFeasibleStart, err)
	}
	w, err := r.eng.Weight(start)
	if err != nil {
		return nil, err
	}
	if w <= 0 {
		return nil, ErrNoFeasibleStart
	}
	return start, nil
}

// StartLattice returns a fresh `chains`-chain state lattice with every
// chain at the canonical start — the state container every in-process
// engine runs on. The lattice picks compact (uint8) cells for q ≤ 255 and
// q bounds are validated by its constructor.
func (r *Rules) StartLattice(chains int) (*state.Lattice, error) {
	start, err := r.Start()
	if err != nil {
		return nil, err
	}
	l, err := state.New(r.n, chains, r.q)
	if err != nil {
		return nil, err
	}
	if err := l.Broadcast(start); err != nil {
		return nil, err
	}
	return l, nil
}

// ResetLattice refills l with every chain at the canonical start,
// allocating a fresh `chains`-chain lattice when l is nil — the shared
// Reset path of every in-process engine.
func (r *Rules) ResetLattice(l *state.Lattice, chains int) (*state.Lattice, error) {
	if l == nil {
		return r.StartLattice(chains)
	}
	start, err := r.Start()
	if err != nil {
		return nil, err
	}
	if err := l.Broadcast(start); err != nil {
		return nil, err
	}
	return l, nil
}

// Propose draws a LocalMetropolis proposal for vertex v: a fresh symbol
// from the unary-weight distribution for free vertices, the pinned symbol
// otherwise. The draw goes through the frozen cumulative row, so it is
// bit-identical to proposal[v].Sample for the same uniform.
func (r *Rules) Propose(v int, rng *dist.Xoshiro) int {
	if !r.free[v] {
		return r.in.Pinned[v]
	}
	return r.propCDF[v].Draw(rng)
}

// MetropolisReady reports whether the instance supports LocalMetropolis
// (every acceptance factor is table-backed with a positive maximum); the
// returned error describes the first obstruction.
func (r *Rules) MetropolisReady() error { return r.accErr }

// AccFactors returns the number of acceptance-filtered factors.
func (r *Rules) AccFactors() int { return len(r.acc) }

// AccAt returns the indices (into the acceptance-factor list) of the
// factors toggling vertex v. The slice aliases internal state.
func (r *Rules) AccAt(v int) []int32 {
	return r.accIdx[r.accOff[v]:r.accOff[v+1]]
}

// FilterProb returns the probability with which acceptance factor j passes
// the round's filter, given the current configuration old and the proposal
// prop (both total).
func (r *Rules) FilterProb(j int, old, prop dist.Config) (float64, error) {
	af := &r.acc[j]
	w, err := r.eng.FilterWeight(af.fi, old, prop, af.verts)
	if err != nil {
		return 0, err
	}
	return w * af.scale, nil
}

// FilterProbLattice is FilterProb reading the current configuration and the
// proposal from chain `chain` of two state lattices.
func (r *Rules) FilterProbLattice(j int, old, prop *state.Lattice, chain int) (float64, error) {
	af := &r.acc[j]
	w, err := r.eng.FilterWeightLattice(af.fi, old, prop, chain, af.verts)
	if err != nil {
		return 0, err
	}
	return w * af.scale, nil
}

// FilterStage flips the round's filter coins of acceptance factors
// lo ≤ j < hi against chain `chain` of (old, prop), writing accOK[j] —
// the sharded LocalMetropolis stage-2 hot path, with the lattice
// representation dispatched once per stage instead of once per factor.
func (r *Rules) FilterStage(old, prop *state.Lattice, chain, lo, hi int, rng *dist.Xoshiro, accOK []bool) error {
	if o8, p8 := old.Raw8(), prop.Raw8(); o8 != nil && p8 != nil {
		return filterStage(r, o8, old.Chains(), p8, prop.Chains(), chain, lo, hi, rng, accOK)
	}
	if ow, pw := old.RawWide(), prop.RawWide(); ow != nil && pw != nil {
		return filterStage(r, ow, old.Chains(), pw, prop.Chains(), chain, lo, hi, rng, accOK)
	}
	return errors.New("psample: filter lattices have mixed cell representations")
}

// filterStage is the width-specialized FilterStage body.
func filterStage[T state.Cells](r *Rules, old []T, oB int, prop []T, pB int, chain, lo, hi int, rng *dist.Xoshiro, accOK []bool) error {
	for j := lo; j < hi; j++ {
		af := &r.acc[j]
		w, err := gibbs.FilterWeightCells(r.eng, af.fi, old, oB, prop, pB, chain, af.verts)
		if err != nil {
			return err
		}
		accOK[j] = rng.Float64() < w*af.scale
	}
	return nil
}

// ClassSchedule returns the deterministic chromatic stage schedule: the
// free vertices grouped into independent sets by a proper coloring of the
// interaction graph — natural-order greedy or the degeneracy
// (smallest-last) order, whichever leaves fewer classes after the pinned
// vertices are dropped (a coloring that needs more colors on the full
// graph may still have fewer surviving classes). The schedule is computed
// once per Rules and cached; the returned slices alias that cache and
// must not be modified.
func (r *Rules) ClassSchedule() [][]int {
	r.schedOnce.Do(func() {
		g := r.in.Spec.G
		freeClasses := func(colors []int) [][]int {
			for v := range colors {
				if !r.free[v] {
					colors[v] = -1
				}
			}
			return graph.ColorClasses(colors)
		}
		gc, _ := g.GreedyColoring()
		classes := freeClasses(gc)
		dc, _ := g.DegeneracyColoring()
		if dcl := freeClasses(dc); len(dcl) < len(classes) {
			classes = dcl
		}
		r.sched = classes
	})
	return r.sched
}

// winsPhase reports whether free vertex v wins the round's Luby phase: its
// draw beats the draw of every free neighbor (construct.Beats is the single
// source of truth for the phase rule, shared with the MIS construction).
func (r *Rules) winsPhase(v int, draws []float64, neighbors []int) bool {
	for _, u := range neighbors {
		if r.free[u] && construct.Beats(draws[u], u, draws[v], v) {
			return false
		}
	}
	return true
}
