package psample

// batchluby.go is the batched multi-chain LubyGlauber engine: B
// independent chains of the paper's interleaved construct-and-sample
// dynamics advanced in lockstep over one chain-major state.Lattice. Each
// round keeps the two stages of the single-chain engine, batched across
// the chain dimension:
//
//  1. every free vertex draws one phase value per chain — a contiguous
//     row of the chain-major draw matrix per (vertex, chain group) item;
//  2. every free vertex computes the subset of its chains in which it
//     wins the Luby phase and heat-baths exactly those chains through the
//     masked fused kernel gibbs.Compiled.SampleVertexSubset — plan walk
//     and weight rows amortized across the winning chains, one uniform
//     per winner, symbols written straight into the lattice.
//
// The phase check is the batched engine's own hot loop, so the draw
// matrix stores each phase value as the shifted 53-bit key
// (Uint64()>>11)<<1 rather than the float the single-chain engine
// derives from the same raw word. The map is an order isomorphism onto
// the float draws (same 53 bits, same ties), and the free low bit
// absorbs the vertex-order tiebreak: rival u beats v exactly when
// keyU|bit > keyV, where bit — precomputed per rival in Rules.rivBit —
// is 1 iff u > v. That turns the full construct.Beats order into one
// branchless unsigned compare, so the common case (at most four free
// rivals, Rules.riv padded with an all-zero sentinel row that never
// wins) runs as a single fused pass per (vertex, chain group): four
// compares, no mask buffer, winners compacted in place with a
// branch-free index bump. Vertices with more than four free rivals take
// a rival-major sweep over Rules.freeAdj with the same key compare. The
// naive chain-major port of the single-chain check — re-deriving the
// rival set, re-testing pinning, and taking an unpredictable branch per
// rival per chain — was measured to dominate the whole round.
//
// Correctness is the single-chain argument applied per chain: within any
// chain the winners form an independent set, so the simultaneous subset
// updates share no factor and the round restricted to that chain is a
// product of ordinary heat-bath kernels; across chains there is no
// interaction at all. The work grid enumerates chain groups outermost
// (exactly like the chromatic sampler.Batch), so a worker's contiguous
// item range covers contiguous chain columns and each column stays with
// one worker and its RNG stream.
//
// At B = 1 with Workers = 1 the engine consumes its RNG stream in
// exactly the order of the single-chain LubyGlauber (one raw word per
// free vertex in increasing order — the key above and the single-chain
// float are the same draw — then one heat-bath uniform per winner in
// increasing vertex order) against bit-identical weights, so the two
// trajectories agree symbol for symbol — the agreement tests pin this.

import (
	"math/bits"

	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/state"
)

// BatchLubyGlauber advances B independent LubyGlauber chains in lockstep
// over one shared compiled engine.
type BatchLubyGlauber struct {
	// Workers overrides the worker count when positive (default: one per
	// CPU, bounded so per-stage blocks stay coarse).
	Workers int

	rules *Rules
	// chains is B, the number of independent chains.
	chains int
	// lat is the chain-major state lattice: cell (v, c) is chain c at v.
	lat *state.Lattice
	// draws is the chain-major phase matrix: draws[v*B+c] is vertex v's
	// shifted 53-bit phase key in chain c this round. Row n (one past the
	// vertices) is the all-zero sentinel the padded rival plan points at —
	// stages never write it, and zero never beats a real key.
	draws   []uint64
	rounds  int
	updates int64
	workers []blgWorker
	seed    int64
	// checked records that the lattice passed its CheckAssigned preflight;
	// stages write only in-range symbols, so one scan per Reset suffices.
	checked bool
	// sample is the subset kernel bound to lat (gibbs.BindVertexSubset),
	// rebound alongside the preflight whenever Reset replaces the lattice.
	sample gibbs.VertexSubsetFn
}

// blgWorker is the per-worker mutable state: a value-type RNG stream, the
// subset kernel's weight buffer and scratch, the phase-survival mask, and
// the winning-chain list.
type blgWorker struct {
	rng dist.Xoshiro
	buf []float64
	sc  *gibbs.BatchScratch
	won []uint8
	win []int32
}

// NewBatchLubyGlauber returns a batched engine of the given number of
// chains, every chain started from the greedy feasible completion of the
// instance pinning, with per-worker RNG streams derived from seed. A
// nonpositive chain count surfaces as the state container's typed
// *state.DomainError.
func NewBatchLubyGlauber(r *Rules, chains int, seed int64) (*BatchLubyGlauber, error) {
	s := &BatchLubyGlauber{rules: r, chains: chains}
	if err := s.Reset(seed); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset restarts every chain from the greedy start with fresh RNG streams.
func (s *BatchLubyGlauber) Reset(seed int64) error {
	lat, err := s.rules.ResetLattice(s.lat, s.chains)
	if err != nil {
		return err
	}
	s.lat = lat
	if len(s.draws) < (s.rules.n+1)*s.chains {
		s.draws = make([]uint64, (s.rules.n+1)*s.chains)
	}
	s.seed = seed
	s.rounds = 0
	s.updates = 0
	s.workers = s.workers[:0]
	s.checked = false
	s.sample = nil
	return nil
}

// Chains returns B, the number of independent chains.
func (s *BatchLubyGlauber) Chains() int { return s.chains }

// Chain returns a copy of chain c's current configuration.
func (s *BatchLubyGlauber) Chain(c int) dist.Config { return s.lat.Chain(c) }

// State returns a copy of chain 0's configuration (the single-chain view).
func (s *BatchLubyGlauber) State() dist.Config { return s.lat.Chain(0) }

// Lattice exposes the underlying state container (read-only for callers:
// diagnostics such as the R̂ accumulator read it between runs).
func (s *BatchLubyGlauber) Lattice() *state.Lattice { return s.lat }

// Rounds returns the number of rounds executed since the last Reset.
func (s *BatchLubyGlauber) Rounds() int { return s.rounds }

// Updates returns the total number of heat-bath updates performed across
// all chains (the sum of the per-chain independent-set sizes over all
// rounds).
func (s *BatchLubyGlauber) Updates() int64 { return s.updates }

// SetWorkers overrides the worker count (nonpositive restores the
// CPU-scaled default). Per-worker RNG streams mean trajectories depend on
// the worker count; callers wanting machine-independent reproducibility
// (the adaptive run driver) pin it.
func (s *BatchLubyGlauber) SetWorkers(w int) { s.Workers = w }

// ensureWorkers sizes the per-worker state for w workers and chain
// groups of cb.
func (s *BatchLubyGlauber) ensureWorkers(w, cb int) {
	for len(s.workers) < w {
		i := len(s.workers)
		s.workers = append(s.workers, blgWorker{
			rng: dist.NewXoshiro(s.seed, int64(i)),
			buf: make([]float64, cb*s.rules.q),
			sc:  gibbs.NewBatchScratch(cb),
			won: make([]uint8, cb),
			win: make([]int32, 0, cb),
		})
	}
}

// Run executes the given number of rounds on the worker pool. Both stages
// statically partition the (vertex, chain-group) item grid with groups
// outermost, so each worker owns contiguous chain columns.
func (s *BatchLubyGlauber) Run(rounds int) error {
	r := s.rules
	free := r.freeList
	if len(free) == 0 {
		// Fully pinned instance: a round is a no-op.
		s.rounds += rounds
		return nil
	}
	if !s.checked {
		if err := s.lat.CheckAssigned(); err != nil {
			return err
		}
		fn, err := r.eng.BindVertexSubset(s.lat)
		if err != nil {
			return err
		}
		s.sample = fn
		s.checked = true
	}
	B := s.chains
	cb := min(B, ChainBlock(r.q))
	groups := (B + cb - 1) / cb
	nfree := len(free)
	items := nfree * groups
	workers := s.Workers
	if workers <= 0 {
		workers = DefaultWorkers(items * cb)
	}
	workers = max(min(workers, items), 1)
	s.ensureWorkers(workers, cb)
	sample := s.sample
	draws := s.draws
	updates := make([]int64, workers)
	stages := []func(w, round int) error{
		func(w, round int) error {
			lo, hi := BlockOf(items, workers, w)
			rng := &s.workers[w].rng
			if groups == 1 && nfree == r.n {
				// Fully unpinned, single chain group: the worker's rows
				// form one contiguous region, filled in the same
				// (vertex, chain) order as the general walk below.
				row := draws[lo*B : hi*B]
				for i := range row {
					row[i] = rng.Uint64() >> 11 << 1
				}
				return nil
			}
			g := lo / nfree
			k := lo - g*nfree
			for it := lo; it < hi; it++ {
				v := free[k]
				c0 := g * cb
				row := draws[v*B+c0 : v*B+min(c0+cb, B)]
				for i := range row {
					row[i] = rng.Uint64() >> 11 << 1
				}
				if k++; k == nfree {
					k = 0
					g++
				}
			}
			return nil
		},
		func(w, round int) error {
			lo, hi := BlockOf(items, workers, w)
			wk := &s.workers[w]
			g := lo / nfree
			k := lo - g*nfree
			for it := lo; it < hi; it++ {
				v := free[k]
				c0 := g * cb
				c1 := min(c0+cb, B)
				if k++; k == nfree {
					k = 0
					g++
				}
				rowv := draws[v*B+c0 : v*B+c1]
				var win []int32
				if adj := r.freeAdj[v]; len(adj) <= 4 {
					// Fused padded-rival pass: four branchless key
					// compares per chain, winners compacted in place.
					rv := r.riv[4*v : 4*v+4]
					bb := r.rivBit[4*v : 4*v+4]
					o0 := int(rv[0])*B + c0
					o1 := int(rv[1])*B + c0
					o2 := int(rv[2])*B + c0
					o3 := int(rv[3])*B + c0
					r0 := draws[o0 : o0+len(rowv)]
					r1 := draws[o1 : o1+len(rowv)]
					r2 := draws[o2 : o2+len(rowv)]
					r3 := draws[o3 : o3+len(rowv)]
					b0, b1, b2, b3 := bb[0], bb[1], bb[2], bb[3]
					win = wk.win[:len(rowv)]
					idx := 0
					for base := 0; base < len(rowv); base += 64 {
						end := min(base+64, len(rowv))
						// Keys are 54-bit, so dv − key keeps bit 63 clear
						// exactly when dv survives that rival (a
						// compare-and-branch would mispredict on the ~even
						// phase outcomes). The word loop keeps the pass
						// pure ALU — winners land in a bitmask, and only
						// the ~1/(deg+1) survivors pay the indexed store.
						var m uint64
						for i := base; i < end; i++ {
							dv := rowv[i]
							won := ^((dv - (r0[i] | b0)) |
								(dv - (r1[i] | b1)) |
								(dv - (r2[i] | b2)) |
								(dv - (r3[i] | b3))) >> 63
							m |= won << (i - base)
						}
						for m != 0 {
							i := bits.TrailingZeros64(m)
							m &= m - 1
							win[idx] = int32(c0 + base + i)
							idx++
						}
					}
					win = win[:idx]
				} else {
					// High-degree fallback: rival-major row sweep with
					// the same shifted-key compare.
					won := wk.won[:len(rowv)]
					for i := range won {
						won[i] = 1
					}
					for _, u := range adj {
						var bit uint64
						if int(u) > v {
							bit = 1
						}
						rowu := draws[int(u)*B+c0:]
						for i, dv := range rowv {
							won[i] &^= uint8((dv - (rowu[i] | bit)) >> 63)
						}
					}
					win = wk.win[:0]
					for i, ok := range won {
						if ok != 0 {
							win = append(win, int32(c0+i))
						}
					}
				}
				if len(win) == 0 {
					continue
				}
				if err := sample(v, win, wk.buf, wk.sc, &wk.rng); err != nil {
					return err
				}
				updates[w] += int64(len(win))
			}
			return nil
		},
	}
	if err := RunRounds(workers, rounds, stages); err != nil {
		return err
	}
	s.rounds += rounds
	for _, u := range updates {
		s.updates += u
	}
	return nil
}
