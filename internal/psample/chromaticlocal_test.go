package psample

// chromaticlocal_test.go validates the ChromaticGlauber message-passing
// harness: round accounting (R sweeps over a χ-class schedule cost χ·R+1
// LOCAL rounds), pinning, determinism under a fixed seed, and agreement
// with the brute-force referee.

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/model"
)

func TestChromaticLOCALRoundAccounting(t *testing.T) {
	g := graph.Cycle(8)
	r := hardcoreRules(t, g, 1.0, nil)
	chi := len(r.ClassSchedule())
	if chi < 2 {
		t.Fatalf("cycle schedule has %d classes, expected ≥ 2", chi)
	}
	for _, R := range []int{1, 5, 12} {
		cfg, rounds, err := ChromaticGlauberLOCAL(net(g), r, R, 42)
		if err != nil {
			t.Fatalf("R=%d: %v", R, err)
		}
		if rounds != chi*R+1 {
			t.Errorf("R=%d consumed %d LOCAL rounds, want χ·R+1 = %d", R, rounds, chi*R+1)
		}
		if w, err := r.Instance().Spec.Weight(cfg); err != nil || w <= 0 {
			t.Errorf("R=%d: infeasible output %v", R, cfg)
		}
	}
	if cfg, rounds, err := ChromaticGlauberLOCAL(net(g), r, 0, 42); err != nil || rounds != 0 {
		t.Fatalf("R=0: cfg=%v rounds=%d err=%v", cfg, rounds, err)
	}
}

func TestChromaticLOCALRespectsPinning(t *testing.T) {
	g := graph.Path(6)
	pin := dist.Config{model.In, dist.Unset, dist.Unset, dist.Unset, dist.Unset, model.Out}
	r := hardcoreRules(t, g, 1.0, pin)
	cfg, _, err := ChromaticGlauberLOCAL(net(g), r, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	if cfg[0] != model.In || cfg[5] != model.Out {
		t.Errorf("pinning violated: %v", cfg)
	}
}

// TestChromaticLOCALDeterministic: the harness is a pure function of
// (rules, R, seed) — the determinism contract the adaptive driver's
// property test leans on.
func TestChromaticLOCALDeterministic(t *testing.T) {
	g := graph.Cycle(7)
	r := hardcoreRules(t, g, 1.3, nil)
	a, ra, err := ChromaticGlauberLOCAL(net(g), r, 15, 77)
	if err != nil {
		t.Fatal(err)
	}
	b, rb, err := ChromaticGlauberLOCAL(net(g), r, 15, 77)
	if err != nil {
		t.Fatal(err)
	}
	if ra != rb {
		t.Fatalf("round counts differ: %d vs %d", ra, rb)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("same seed, different configurations: %v vs %v", a, b)
		}
	}
}

// TestChromaticLOCALMatchesExact pins the harness's output distribution to
// the brute-force referee (hardcore on a 5-cycle), like the other two
// LOCAL harnesses.
func TestChromaticLOCALMatchesExact(t *testing.T) {
	g := graph.Cycle(5)
	r := hardcoreRules(t, g, 1.2, nil)
	truth, err := exact.JointDistribution(r.Instance())
	if err != nil {
		t.Fatal(err)
	}
	const trials = 2500
	emp := dist.NewEmpirical(g.N())
	for i := 0; i < trials; i++ {
		cfg, _, err := ChromaticGlauberLOCAL(net(g), r, 25, int64(9000+i))
		if err != nil {
			t.Fatal(err)
		}
		emp.Observe(cfg)
	}
	got, err := emp.Joint()
	if err != nil {
		t.Fatal(err)
	}
	tv, err := dist.TVJoint(truth, got)
	if err != nil {
		t.Fatal(err)
	}
	tol := 2.5 * dist.ExpectedTVNoise(truth.Len(), trials)
	if tv > tol {
		t.Errorf("TV vs exact = %v > envelope %v", tv, tol)
	}
}

func TestChromaticLOCALWrongNetwork(t *testing.T) {
	r := hardcoreRules(t, graph.Cycle(6), 1.0, nil)
	wrong := local.NewNetwork(graph.Cycle(5))
	if _, _, err := ChromaticGlauberLOCAL(wrong, r, 3, 1); err == nil {
		t.Error("mismatched network accepted")
	}
}
