// Package experiment implements the reproduction experiments E1–E10 defined
// in DESIGN.md, one per theorem/corollary/application claim of Feng & Yin,
// PODC 2018. Each experiment returns a structured table whose rows mirror
// what the paper's claims predict (round-complexity shapes, error bounds,
// acceptance rates, decay rates, and the uniqueness phase transition), so
// the same code backs the lbench CLI, the root-level testing.B benchmarks,
// and EXPERIMENTS.md.
package experiment

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result: a header, column names and rows.
type Table struct {
	// ID is the experiment identifier (E1..E10).
	ID string
	// Title describes the claim being reproduced.
	Title string
	// Claim is the paper's prediction, quoted for the report.
	Claim string
	// Columns are the column names.
	Columns []string
	// Rows are the result rows, one formatted cell per column.
	Rows [][]string
	// Notes collects free-form observations (e.g. fitted exponents).
	Notes []string
}

// String renders the table in a fixed-width layout.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "paper claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// f formats a float compactly for table cells.
func f(x float64) string { return fmt.Sprintf("%.4g", x) }

// d formats an int for table cells.
func d(x int) string { return fmt.Sprintf("%d", x) }
