package experiment

import "fmt"

// SuiteParams scales the full experiment suite; Quick shrinks workloads for
// smoke runs.
type SuiteParams struct {
	// Quick selects reduced sizes/trials (CI-friendly).
	Quick bool
	// Seed seeds all randomized experiments.
	Seed int64
}

// RunSuite executes every experiment E1–E12 with canonical parameters and
// returns the tables in order. Each table corresponds to one row of the
// per-experiment index in DESIGN.md.
func RunSuite(p SuiteParams) ([]*Table, error) {
	sizes := []int{16, 32, 64, 128}
	jvvSizes := []int{6, 8, 10}
	jvvTrials := 6000
	e2Runs := 20000
	e12Trials := 4000
	if p.Quick {
		sizes = []int{16, 32, 64}
		jvvSizes = []int{6, 8}
		jvvTrials = 1500
		e2Runs = 4000
		e12Trials = 1200
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	var tables []*Table
	run := func(name string, f func() (*Table, error)) error {
		t, err := f()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		tables = append(tables, t)
		return nil
	}
	steps := []struct {
		name string
		f    func() (*Table, error)
	}{
		{"E1", func() (*Table, error) { return E1InferenceToSampling(sizes, 1.0, 0.1, p.Seed) }},
		{"E2", func() (*Table, error) { return E2SamplingToInference(12, 1.0, 0.02, e2Runs, p.Seed) }},
		{"E3", func() (*Table, error) { return E3Boosting(10, 1.0, []float64{0.5, 0.2, 0.1}, p.Seed) }},
		{"E4", func() (*Table, error) { return E4LocalJVV(jvvSizes, 1.0, jvvTrials, p.Seed) }},
		{"E4b", func() (*Table, error) { return E4FailureScaling(jvvSizes, 1.0, jvvTrials, p.Seed) }},
		{"E5", func() (*Table, error) { return E5SSMInference(14, 1.0, []int{1, 2, 3, 4, 5}) }},
		{"E6", func() (*Table, error) { return E6InferenceImpliesSSM(13, 1.0, 6) }},
		{"E7", func() (*Table, error) { return E7TVvsMult(13, 1.0, 6) }},
		{"E8", func() (*Table, error) {
			return E8PhaseTransition(3, []float64{0.25, 0.5, 1.0, 2.0, 4.0}, []int{4, 8, 12, 16})
		}},
		{"E8b", func() (*Table, error) {
			return E8RequiredRadius(3, []float64{0.25, 0.5, 2.0, 4.0}, 14, 0.02)
		}},
		{"E9", func() (*Table, error) { return E9Matchings([]int{3, 5, 9, 17, 33}, 1.0, 1e-4, 0) }},
		{"E10", func() (*Table, error) { return E10Colorings(4, []int{5, 6, 7, 8, 10}, 1e-3, 0) }},
		{"E10b", func() (*Table, error) {
			return E10Ising(4, []float64{0.3, 0.5, 0.7, 1.0, 1.5, 2.0, 3.0}, []int{4, 6, 8})
		}},
		{"E10c", func() (*Table, error) {
			return E10Hypergraph(3, 4, []float64{0.5, 0.9, 1.5}, []int{2, 3, 4})
		}},
		{"E11", func() (*Table, error) { return E11Counting([]int{8, 12, 16, 20}, 1.0, 1e-6) }},
		{"E12", func() (*Table, error) {
			return E12RoundsToMix(6, 1.0, []int{1, 2, 4, 8, 16}, e12Trials, p.Seed)
		}},
	}
	for _, s := range steps {
		if err := run(s.name, s.f); err != nil {
			return tables, err
		}
	}
	return tables, nil
}
