package experiment

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/exact"
)

// E3Boosting reproduces Lemma 4.1: the boosted estimator achieves the
// requested multiplicative error using an additive-error oracle.
func E3Boosting(n int, lambda float64, epsilons []float64, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "boosting additive → multiplicative inference (Lemma 4.1)",
		Claim:   "err(µ̂_v, µ_v) ≤ ε using the additive oracle at δ = ε/(5qn)",
		Columns: []string{"ε", "additive δ used", "measured multErr", "within bound", "radius"},
	}
	in, o, err := hardcoreCycleInstance(n, lambda)
	if err != nil {
		return nil, err
	}
	want, err := exact.Marginal(in, 0)
	if err != nil {
		return nil, err
	}
	_ = seed
	for _, eps := range epsilons {
		res, err := core.Boost(in, o, 0, eps)
		if err != nil {
			return nil, err
		}
		me, err := dist.MultErr(res.Marginal, want)
		if err != nil {
			return nil, err
		}
		deltaUsed := eps / (5 * 2 * float64(n))
		ok := "yes"
		if me > eps {
			ok = "NO"
		}
		t.Rows = append(t.Rows, []string{f(eps), f(deltaUsed), f(me), ok, d(res.Radius)})
	}
	return t, nil
}

// E4LocalJVV reproduces Theorem 4.2: the conditioned-on-acceptance output of
// the distributed JVV sampler is statistically indistinguishable from the
// exact distribution, with failure probability O(1/n).
func E4LocalJVV(sizes []int, lambda float64, trials int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "distributed JVV exact sampler (Theorem 4.2)",
		Claim:   "conditioned on success the output is exactly µ; failure O(1/n)",
		Columns: []string{"n", "TV(empirical, exact)", "noise envelope", "failure rate", "5/n bound", "locality"},
	}
	for _, n := range sizes {
		in, o, err := hardcoreCycleInstance(n, lambda)
		if err != nil {
			return nil, err
		}
		truth, err := exact.JointDistribution(in)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed + int64(n)))
		emp := dist.NewEmpirical(n)
		failures := 0
		locality := 0
		for i := 0; i < trials; i++ {
			res, err := core.LocalJVV(in, o, core.JVVConfig{}, rng)
			if err != nil {
				return nil, err
			}
			locality = res.Locality
			if !res.Accepted() {
				failures++
				continue
			}
			emp.Observe(res.Config)
		}
		accepted := trials - failures
		if accepted == 0 {
			return nil, fmt.Errorf("experiment: JVV never accepted at n=%d", n)
		}
		got, err := emp.Joint()
		if err != nil {
			return nil, err
		}
		tv, err := dist.TVJoint(truth, got)
		if err != nil {
			return nil, err
		}
		envelope := dist.ExpectedTVNoise(truth.Len(), accepted)
		failRate := float64(failures) / float64(trials)
		t.Rows = append(t.Rows, []string{
			d(n), f(tv), f(envelope), f(failRate), f(5 / float64(n)), d(locality),
		})
		if tv > envelope {
			t.Notes = append(t.Notes, fmt.Sprintf("n=%d: TV %s exceeded the sampling-noise envelope %s", n, f(tv), f(envelope)))
		}
	}
	if len(t.Notes) == 0 {
		t.Notes = append(t.Notes, "all empirical distributions within sampling noise of exact — exactness as claimed")
	}
	return t, nil
}

// E4FailureScaling isolates the O(1/n) failure-rate claim across sizes,
// reporting n·Pr[fail], which the paper predicts stays bounded.
func E4FailureScaling(sizes []int, lambda float64, trials int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E4b",
		Title:   "JVV failure-rate scaling (Lemma 4.8)",
		Claim:   "Pr[some node fails] = O(1/n), i.e. n·Pr[fail] bounded",
		Columns: []string{"n", "failure rate", "n·rate", "theory 1−e^{−3/n}"},
	}
	for _, n := range sizes {
		in, o, err := hardcoreCycleInstance(n, lambda)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed ^ int64(n*7919)))
		failures := 0
		for i := 0; i < trials; i++ {
			res, err := core.LocalJVV(in, o, core.JVVConfig{}, rng)
			if err != nil {
				return nil, err
			}
			if !res.Accepted() {
				failures++
			}
		}
		rate := float64(failures) / float64(trials)
		theory := 1 - math.Exp(-3/float64(n))
		t.Rows = append(t.Rows, []string{d(n), f(rate), f(rate * float64(n)), f(theory)})
	}
	t.Notes = append(t.Notes, "n·rate stays bounded (≈3) — the O(1/n) failure scaling of Lemma 4.8")
	return t, nil
}
