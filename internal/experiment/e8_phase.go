package experiment

import (
	"fmt"

	"repro/internal/decay"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/model"
)

// E8PhaseTransition reproduces the headline result: the computational phase
// transition for distributed sampling at the hardcore uniqueness threshold
// λc(Δ) = (Δ−1)^(Δ−1)/(Δ−2)^Δ.
//
// On the depth-d complete (Δ−1)-ary tree, it pins the leaves to the two
// extremal boundary conditions (all-Out, all-In) and computes the exact
// root marginal under each (the SAW recursion is exact on trees). The total
// variation distance between the two root marginals is the boundary-to-root
// correlation:
//
//   - λ < λc: the correlation decays exponentially in d — strong spatial
//     mixing, so inference needs radius O(log n) and exact sampling runs in
//     O(log³ n) rounds (Corollary 5.3);
//   - λ > λc: the correlation stays bounded away from zero for even depths
//     — long-range order, so any approximate sampler needs Ω(diam) rounds
//     (the lower bound of [FSY17] quoted in Section 5).
//
// The table reports the correlation as a function of depth for a sweep of
// λ/λc; the phase transition is visible as the decay-vs-no-decay dichotomy
// across the λ = λc row.
func E8PhaseTransition(delta int, lambdaRatios []float64, depths []int) (*Table, error) {
	if delta < 3 {
		return nil, fmt.Errorf("experiment: phase transition needs Δ ≥ 3, got %d", delta)
	}
	lc := model.LambdaC(delta)
	t := &Table{
		ID:    "E8",
		Title: fmt.Sprintf("hardcore phase transition at λc(%d) = %s (Section 5 + [FSY17])", delta, f(lc)),
		Claim: "λ<λc: correlation decays (O(log³n) sampling); λ>λc: correlation persists (Ω(diam) lower bound)",
	}
	t.Columns = []string{"λ/λc"}
	for _, dep := range depths {
		t.Columns = append(t.Columns, fmt.Sprintf("corr@depth %d", dep))
	}
	t.Columns = append(t.Columns, "decaying")
	for _, ratio := range lambdaRatios {
		lambda := ratio * lc
		row := []string{f(ratio)}
		var corr []float64
		for _, dep := range depths {
			c, err := treeBoundaryCorrelation(delta, dep, lambda)
			if err != nil {
				return nil, err
			}
			corr = append(corr, c)
			row = append(row, f(c))
		}
		// Judge decay on the two deepest same-parity entries (the hardcore
		// model oscillates with boundary parity above λc, so same-parity
		// comparison is the honest test): exponential decay shows as a
		// clear shrink between them; long-range order as a plateau.
		verdict := "yes"
		if len(corr) >= 2 {
			prev, last := corr[len(corr)-2], corr[len(corr)-1]
			if last > 0.75*prev && last > 1e-3 {
				verdict = "NO (long-range order)"
			}
		}
		row = append(row, verdict)
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"decay for λ/λc < 1 and persistence for λ/λc > 1 is the first computational phase transition for distributed sampling",
		"at λ = λc exactly, the decay is sub-exponential (critical slowing down), so the verdict column reports NO there too — the uniqueness regime of Corollary 5.3 is the open interval λ < λc")
	return t, nil
}

// treeBoundaryCorrelation builds the complete (Δ−1)-ary tree of the given
// depth, pins the leaves to all-Out and all-In, and returns the TV distance
// between the two exact root marginals.
func treeBoundaryCorrelation(delta, depth int, lambda float64) (float64, error) {
	b := delta - 1
	g := graph.CompleteTree(b, depth)
	est, err := decay.NewHardcoreSAW(g, lambda)
	if err != nil {
		return 0, err
	}
	// Leaves are the vertices of degree 1 other than the root (for depth
	// ≥ 1 the root has degree b).
	var leaves []int
	for v := 1; v < g.N(); v++ {
		if g.Degree(v) == 1 {
			leaves = append(leaves, v)
		}
	}
	pinOut := dist.NewConfig(g.N())
	pinIn := dist.NewConfig(g.N())
	for _, u := range leaves {
		pinOut[u] = model.Out
		pinIn[u] = model.In
	}
	// Full-depth SAW on a tree is the exact marginal.
	mOut, err := est.Marginal(pinOut, 0, g.N())
	if err != nil {
		return 0, err
	}
	mIn, err := est.Marginal(pinIn, 0, g.N())
	if err != nil {
		return 0, err
	}
	return dist.TV(mOut, mIn)
}

// E8RequiredRadius reports, for the same sweep, the radius needed by the
// truncated SAW estimator to reach a fixed accuracy on the tree — the
// operational meaning of the transition: below λc the radius is flat in
// depth; above λc it grows with the tree depth (i.e. with the diameter).
func E8RequiredRadius(delta int, lambdaRatios []float64, depth int, eps float64) (*Table, error) {
	lc := model.LambdaC(delta)
	t := &Table{
		ID:      "E8b",
		Title:   "locality required for ε-accurate root inference",
		Claim:   "radius O(log(1/ε)) below λc; Ω(depth) above λc",
		Columns: []string{"λ/λc", "required radius", "tree depth"},
	}
	b := delta - 1
	g := graph.CompleteTree(b, depth)
	for _, ratio := range lambdaRatios {
		lambda := ratio * lc
		est, err := decay.NewHardcoreSAW(g, lambda)
		if err != nil {
			return nil, err
		}
		pin := dist.NewConfig(g.N())
		for v := 1; v < g.N(); v++ {
			if g.Degree(v) == 1 {
				pin[v] = model.In
			}
		}
		exactM, err := est.Marginal(pin, 0, g.N())
		if err != nil {
			return nil, err
		}
		// The hardcore recursion oscillates with parity above λc, so a
		// single small error can be a coincidental crossing; the required
		// radius is the smallest r from which the error stays ≤ ε.
		errs := make([]float64, depth+2)
		for r := 1; r <= depth+1; r++ {
			m, err := est.Marginal(pin, 0, r)
			if err != nil {
				return nil, err
			}
			tv, err := dist.TV(m, exactM)
			if err != nil {
				return nil, err
			}
			errs[r] = tv
		}
		required := depth + 1
		for r := depth + 1; r >= 1; r-- {
			if errs[r] <= eps {
				required = r
			} else {
				break
			}
		}
		t.Rows = append(t.Rows, []string{f(ratio), d(required), d(depth)})
	}
	t.Notes = append(t.Notes, "a required radius equal to the tree depth reproduces the Ω(diam) lower bound regime")
	return t, nil
}
