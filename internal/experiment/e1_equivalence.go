package experiment

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/decay"
	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/slocal"
)

func hardcoreCycleInstance(n int, lambda float64) (*gibbs.Instance, *core.DecayOracle, error) {
	g := graph.Cycle(n)
	spec, err := model.Hardcore(g, lambda)
	if err != nil {
		return nil, nil, err
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		return nil, nil, err
	}
	est, err := decay.NewHardcoreSAW(g, lambda)
	if err != nil {
		return nil, nil, err
	}
	rate := model.HardcoreDecayRate(lambda, g.MaxDegree())
	return in, &core.DecayOracle{Est: est, Rate: rate, N: n}, nil
}

// E1InferenceToSampling reproduces Theorem 3.2: rounds of the LOCAL sampler
// built from an inference oracle, as a function of n, against the
// O(t(n, δ/n)·log² n) = O(log³ n) shape.
func E1InferenceToSampling(sizes []int, lambda, delta float64, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "inference ⇒ sampling (Theorem 3.2)",
		Claim:   "O(t(n, δ/n)·log² n) rounds; output within δ of µ in TV",
		Columns: []string{"n", "oracleRadius", "rounds", "c·log³n", "rounds/log³n"},
	}
	rng := rand.New(rand.NewSource(seed))
	var ratios []float64
	for _, n := range sizes {
		in, o, err := hardcoreCycleInstance(n, lambda)
		if err != nil {
			return nil, err
		}
		res, err := core.SampleLOCAL(in, o, delta, rng)
		if err != nil {
			return nil, err
		}
		_, radius, err := o.Marginal(in, 0, delta/float64(n))
		if err != nil {
			return nil, err
		}
		log3 := core.TheoreticalLog3N(n, 1)
		ratio := float64(res.Rounds) / log3
		ratios = append(ratios, ratio)
		t.Rows = append(t.Rows, []string{d(n), d(radius), d(res.Rounds), f(log3), f(ratio)})
	}
	// The rounds/log³n ratio should stay bounded (no polynomial growth).
	lo, hi := minMax(ratios)
	t.Notes = append(t.Notes,
		fmt.Sprintf("rounds/log³n stays within [%s, %s] across a %dx size range — polylog scaling as claimed",
			f(lo), f(hi), sizes[len(sizes)-1]/sizes[0]))
	return t, nil
}

// E2SamplingToInference reproduces Theorem 3.4: marginals reconstructed from
// the approximate sampler are within δ + ε₀ (+ Monte Carlo noise) of truth.
func E2SamplingToInference(n int, lambda, delta float64, runs int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "sampling ⇒ inference (Theorem 3.4)",
		Claim:   "inference error ≤ δ + ε₀ with the sampler's radius",
		Columns: []string{"vertex", "reconstructed P[In]", "exact P[In]", "TV error", "bound δ+noise"},
	}
	in, o, err := hardcoreCycleInstance(n, lambda)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	order := slocal.IdentityOrder(n)
	sample := func(r *rand.Rand) (*core.SampleResult, error) {
		cfg, rad, err := core.SequentialSample(in, o, order, delta, r)
		if err != nil {
			return nil, err
		}
		return &core.SampleResult{Config: cfg, Failed: make([]bool, n), Rounds: rad}, nil
	}
	noise := 3 / math.Sqrt(float64(runs))
	for _, v := range []int{0, n / 3, n / 2} {
		got, err := core.InferenceFromSampling(in, sample, v, runs, rng)
		if err != nil {
			return nil, err
		}
		want, err := exact.Marginal(in, v)
		if err != nil {
			return nil, err
		}
		tv, err := dist.TV(got, want)
		if err != nil {
			return nil, err
		}
		bound := delta + noise
		t.Rows = append(t.Rows, []string{
			d(v), f(got[model.In]), f(want[model.In]), f(tv), f(bound),
		})
		if tv > bound {
			t.Notes = append(t.Notes, fmt.Sprintf("vertex %d exceeded the bound (%s > %s)", v, f(tv), f(bound)))
		}
	}
	if len(t.Notes) == 0 {
		t.Notes = append(t.Notes, "all reconstructed marginals within δ + Monte Carlo noise, as claimed")
	}
	return t, nil
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
