package experiment

import (
	"fmt"
	"math"

	"repro/internal/decay"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/model"
)

// E9Matchings reproduces the O(√Δ log³ n) matching sampler claim: the
// truncation depth the BGKNT recursion needs for a fixed accuracy grows
// like √Δ, because the SSM rate is 1 − Θ(1/√(λΔ)). The required depth is
// measured via the recursion on the infinite Δ-regular tree (the worst case
// for the monomer–dimer model), p_{k+1} = 1/(1 + λ(Δ−1)·p_k), iterated from
// the truncation base p₀ = 1 until it is within ε of its fixed point; the
// reported depth/√Δ stays bounded, which is the √Δ factor of the paper's
// bound. A small-Δ cross-check against the explicit-graph estimator is in
// the package tests.
func E9Matchings(deltas []int, lambda, eps float64, maxDepth int) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "matchings: √Δ-scaling of the SSM radius (Section 5, [BGKNT07])",
		Claim:   "decay rate 1 − Ω(1/√Δ) ⇒ O(√Δ·log³n)-round exact sampling",
		Columns: []string{"Δ", "rate 1−Ω(1/√(λΔ))", "1/(1−rate)", "required depth", "depth/√Δ"},
	}
	if maxDepth <= 0 {
		maxDepth = 4096
	}
	for _, delta := range deltas {
		required, err := matchingTreeDepth(delta, lambda, eps, maxDepth)
		if err != nil {
			return nil, err
		}
		rate := model.MatchingDecayRate(lambda, delta)
		t.Rows = append(t.Rows, []string{
			d(delta), f(rate), f(1 / (1 - rate)), d(required),
			f(float64(required) / math.Sqrt(float64(delta))),
		})
	}
	t.Notes = append(t.Notes, "depth/√Δ stays bounded while depth grows — the √Δ factor in O(√Δ log³n)")
	return t, nil
}

// matchingTreeDepth iterates the regular-tree recursion until ε-convergence
// to its fixed point and returns the iteration count.
func matchingTreeDepth(delta int, lambda, eps float64, maxDepth int) (int, error) {
	if delta < 2 {
		return 0, fmt.Errorf("experiment: matching depth needs Δ ≥ 2, got %d", delta)
	}
	b := float64(delta - 1)
	step := func(p float64) float64 { return 1 / (1 + lambda*b*p) }
	// Fixed point by damped iteration.
	star := 0.5
	for i := 0; i < 10000; i++ {
		star = 0.5*star + 0.5*step(star)
	}
	p := 1.0 // truncation base: isolated free vertex
	for k := 1; k <= maxDepth; k++ {
		p = step(p)
		if math.Abs(p-star) <= eps {
			return k, nil
		}
	}
	return maxDepth, nil
}

// E10Colorings reproduces the coloring application: on triangle-free
// graphs, the GKM recursion converges once q ≥ αΔ with α > α* ≈ 1.763;
// the table sweeps q around α*Δ and reports the truncation depth needed for
// a fixed accuracy (diverging as q drops toward Δ).
func E10Colorings(deltaDeg int, qs []int, eps float64, girthGraphN int) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   fmt.Sprintf("colorings of triangle-free graphs (Section 5, [GKM13]); α*Δ = %s", f(model.AlphaStar()*float64(deltaDeg))),
		Claim:   "q ≥ αΔ, α > α* ≈ 1.763 ⇒ SSM ⇒ O(log³n) exact sampling",
		Columns: []string{"q", "q/Δ", "required depth", "converged"},
	}
	// A (Δ−1)-ary tree is triangle-free with max degree Δ; depth 6 leaves
	// room for the required depth to vary with q.
	g := graph.CompleteTree(deltaDeg-1, 6)
	if !g.IsTriangleFree() {
		return nil, fmt.Errorf("experiment: workload graph is not triangle-free")
	}
	_ = girthGraphN
	for _, q := range qs {
		est, err := decay.NewColoringEstimator(g, q, nil)
		if err != nil {
			return nil, err
		}
		pin := dist.NewConfig(g.N())
		// Pin the leaves adversarially to color 0 to create boundary
		// influence.
		for v := 1; v < g.N(); v++ {
			if g.Degree(v) == 1 {
				pin[v] = 0
			}
		}
		exactM, err := est.Marginal(pin, 0, g.N())
		if err != nil {
			return nil, err
		}
		required := -1
		for r := 1; r <= 14; r++ {
			got, err := est.Marginal(pin, 0, r)
			if err != nil {
				return nil, err
			}
			tv, err := dist.TV(got, exactM)
			if err != nil {
				return nil, err
			}
			if tv <= eps {
				required = r
				break
			}
		}
		conv := "yes"
		if required < 0 {
			conv = "NO"
			required = 14
		}
		t.Rows = append(t.Rows, []string{d(q), f(float64(q) / float64(deltaDeg)), d(required), conv})
	}
	t.Notes = append(t.Notes, "required depth shrinks as q/Δ passes α* — the GKM regime of Corollary 5.3")
	return t, nil
}

// E10Ising sweeps the antiferromagnetic Ising edge activity across the
// uniqueness interval ((Δ−2)/Δ, Δ/(Δ−2)) and reports boundary-to-root
// correlation decay on the Δ-regular tree, reproducing the 2-spin
// application of Section 5 ([LLY13]).
func E10Ising(delta int, bRatios []float64, depths []int) (*Table, error) {
	lo, hi := model.IsingUniquenessInterval(delta)
	t := &Table{
		ID:    "E10b",
		Title: fmt.Sprintf("antiferro Ising uniqueness interval (%s, %s) on the Δ=%d tree", f(lo), f(hi), delta),
		Claim: "uniqueness regime ⇒ SSM ⇒ O(log³n) exact sampling; outside it, long-range order",
	}
	t.Columns = []string{"b", "inside uniqueness"}
	for _, dep := range depths {
		t.Columns = append(t.Columns, fmt.Sprintf("corr@depth %d", dep))
	}
	b := delta - 1
	for _, r := range bRatios {
		// Sweep b multiplicatively from below lo to above: b = lo^(1-r)... use
		// direct values: r is the actual edge activity here.
		activity := r
		inside := "no"
		if activity > lo && activity < hi {
			inside = "yes"
		}
		row := []string{f(activity), inside}
		for _, dep := range depths {
			g := graph.CompleteTree(b, dep)
			est, err := decay.NewTwoSpinSAW(g, model.TwoSpinParams{Beta: activity, Gamma: activity, Lambda: 1})
			if err != nil {
				return nil, err
			}
			pinOut := dist.NewConfig(g.N())
			pinIn := dist.NewConfig(g.N())
			for v := 1; v < g.N(); v++ {
				if g.Degree(v) == 1 {
					pinOut[v] = model.Out
					pinIn[v] = model.In
				}
			}
			mOut, err := est.Marginal(pinOut, 0, g.N())
			if err != nil {
				return nil, err
			}
			mIn, err := est.Marginal(pinIn, 0, g.N())
			if err != nil {
				return nil, err
			}
			tv, err := dist.TV(mOut, mIn)
			if err != nil {
				return nil, err
			}
			row = append(row, f(tv))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "correlation decays inside the uniqueness interval and persists outside it")
	return t, nil
}

// E10Hypergraph sweeps the hypergraph matching activity across the
// Song–Yin–Zhao threshold λc(r, Δ) and reports the measured decay of
// boundary influence on the intersection-graph representation (small
// instances, exact computation through the hardcore duality).
func E10Hypergraph(rank, delta int, lambdaRatios []float64, depths []int) (*Table, error) {
	lc := model.LambdaCHypergraph(rank, delta)
	t := &Table{
		ID:    "E10c",
		Title: fmt.Sprintf("hypergraph matchings: threshold λc(%d,%d) = %s (Section 5, [SYZ16])", rank, delta, f(lc)),
		Claim: "λ < λc(r,Δ) ⇒ SSM ⇒ O(log³n) exact sampling",
	}
	t.Columns = []string{"λ/λc"}
	for _, dep := range depths {
		t.Columns = append(t.Columns, fmt.Sprintf("corr@depth %d", dep))
	}
	// The intersection graph of a rank-r, degree-Δ hypergraph tree is a
	// tree of branching (Δ−1)·(r−1); correlations through the hardcore
	// duality live on that tree.
	branch := (delta - 1) * (rank - 1)
	for _, ratio := range lambdaRatios {
		lambda := ratio * lc
		row := []string{f(ratio)}
		for _, dep := range depths {
			g := graph.CompleteTree(branch, dep)
			est, err := decay.NewHardcoreSAW(g, lambda)
			if err != nil {
				return nil, err
			}
			pinOut := dist.NewConfig(g.N())
			pinIn := dist.NewConfig(g.N())
			for v := 1; v < g.N(); v++ {
				if g.Degree(v) == 1 {
					pinOut[v] = model.Out
					pinIn[v] = model.In
				}
			}
			mOut, err := est.Marginal(pinOut, 0, g.N())
			if err != nil {
				return nil, err
			}
			mIn, err := est.Marginal(pinIn, 0, g.N())
			if err != nil {
				return nil, err
			}
			tv, err := dist.TV(mOut, mIn)
			if err != nil {
				return nil, err
			}
			row = append(row, f(tv))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "decay below the SYZ threshold mirrors the hardcore picture through the intersection-graph duality")
	return t, nil
}
