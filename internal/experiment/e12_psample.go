package experiment

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/run"
	"repro/internal/sampler"
)

// e12Dynamics is the comparison order: the sequential baseline first, then
// the paper's two parallel dynamics, then the deterministic-schedule
// chromatic dynamics. Every dynamic is constructed through the
// internal/sampler registry; adding a dynamic there and here is all it
// takes to extend the experiment.
var e12Dynamics = []string{"glauber", "luby", "metropolis", "chromatic"}

// E12RoundsToMix compares the empirical mixing of the registered dynamics
// on one instance on a common "sweep-equivalent" axis: budget b means
// b·SweepRounds rounds of each dynamic (b·n single-site updates for
// Glauber, b·(Δ+1) LubyGlauber phases, b LocalMetropolis rounds, b
// ChromaticGlauber sweeps). For each budget the TV distance between the
// empirical joint distribution over `trials` independent runs and the
// brute-force truth is reported; the notes record the first budget at
// which each dynamics drops below the sampling-noise envelope — the
// paper's point being that the parallel dynamics reach it in
// O(Δ log n) / O(log n) rounds while Glauber needs Θ(n log n) updates.
func E12RoundsToMix(n int, lambda float64, budgets []int, trials int, seed int64) (*Table, error) {
	g, err := graph.Build("cycle", n)
	if err != nil {
		return nil, err
	}
	spec, err := model.Hardcore(g, lambda)
	if err != nil {
		return nil, err
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		return nil, err
	}
	truth, err := exact.JointDistribution(in)
	if err != nil {
		return nil, err
	}
	samplers := make(map[string]sampler.Sampler, len(e12Dynamics))
	sweeps := make(map[string]int, len(e12Dynamics))
	for _, name := range e12Dynamics {
		s, err := sampler.Create(name, in, sampler.Options{Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("E12: %s: %w", name, err)
		}
		samplers[name] = s
		sweeps[name], err = sampler.SweepRounds(name, in)
		if err != nil {
			return nil, err
		}
	}
	noise := dist.ExpectedTVNoise(truth.Len(), trials)
	t := &Table{
		ID:    "E12",
		Title: fmt.Sprintf("rounds-to-mix: Glauber vs LubyGlauber vs LocalMetropolis vs ChromaticGlauber (hardcore cycle n=%d, λ=%g)", n, lambda),
		Claim: "the parallel dynamics mix in O(Δ log n)-style rounds; sequential Glauber needs Θ(n log n) single-site updates",
		Columns: []string{
			"sweep-eq", "glauber TV", "luby rounds", "luby TV", "metro rounds", "metro TV", "chrom rounds", "chrom TV",
		},
	}
	firstBelow := map[string]int{}
	measure := func(di int, name string, budget, rounds int) (float64, error) {
		s := samplers[name]
		emp := dist.NewEmpirical(n)
		for i := 0; i < trials; i++ {
			// One stream per (trial, dynamic) pair keeps every run
			// independent across trials and across dynamics.
			if err := s.Reset(dist.StreamSeed(seed, int64(i*len(e12Dynamics)+di))); err != nil {
				return 0, err
			}
			if err := s.Run(rounds); err != nil {
				return 0, err
			}
			emp.Observe(s.State())
		}
		got, err := emp.Joint()
		if err != nil {
			return 0, err
		}
		tv, err := dist.TVJoint(truth, got)
		if err != nil {
			return 0, err
		}
		if _, done := firstBelow[name]; !done && tv <= noise {
			firstBelow[name] = budget
		}
		return tv, nil
	}
	for _, b := range budgets {
		row := []string{d(b)}
		for di, name := range e12Dynamics {
			rounds := b * sweeps[name]
			tv, err := measure(di, name, b, rounds)
			if err != nil {
				return nil, fmt.Errorf("E12: %s: %w", name, err)
			}
			if name != "glauber" {
				// The baseline's round count is the sweep budget itself;
				// parallel dynamics also report their native round counts.
				row = append(row, d(rounds))
			}
			row = append(row, f(tv))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("sampling-noise envelope ≈ %s at %d trials", f(noise), trials))
	for _, name := range e12Dynamics {
		if b, ok := firstBelow[name]; ok {
			t.Notes = append(t.Notes, fmt.Sprintf("%s reaches the envelope at sweep-equivalent budget %d", name, b))
		} else {
			t.Notes = append(t.Notes, fmt.Sprintf("%s stays above the envelope within the tested budgets", name))
		}
	}
	// The adaptive driver's view of the same race: rounds until the
	// cross-chain stop rule (worst-vertex R̂ < 1.05) fires, per batched
	// dynamic. The TV columns above need the brute-force truth; this
	// stopping time is what a practitioner gets without it.
	for di, name := range e12Dynamics {
		if name == "glauber" {
			t.Notes = append(t.Notes, "glauber: sequential baseline, no batched engine — the adaptive driver does not apply")
			continue
		}
		rep, _, err := run.One(in, name, dist.StreamSeed(seed, int64(1000+di)), run.Policy{
			Chains:     16,
			Rhat:       1.05,
			MaxSweeps:  4096,
			CheckEvery: 1,
		})
		if err != nil {
			return nil, fmt.Errorf("E12: driver %s: %w", name, err)
		}
		if rep.Converged {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s stops at R̂ < 1.05 after sweep-equivalent budget %d (%d native rounds, 16 chains)",
				name, rep.Sweeps, rep.Stages[0].Rounds))
		} else {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s misses R̂ < 1.05 within %d sweep-equivalents (16 chains)", name, rep.Sweeps))
		}
	}
	return t, nil
}
