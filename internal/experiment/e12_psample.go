package experiment

import (
	"fmt"
	"math/rand"

	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
	"repro/internal/glauber"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/psample"
)

// E12RoundsToMix compares the empirical mixing of the three dynamics on one
// instance — sequential Glauber, LubyGlauber, and LocalMetropolis (Section
// 1.2) — on a common "sweep-equivalent" axis: budget b means b sweeps of n
// single-site updates for Glauber, b·(Δ+1) rounds for LubyGlauber (a vertex
// wins a phase with probability ≥ 1/(Δ+1)), and b rounds for
// LocalMetropolis (every vertex proposes every round). For each budget the
// TV distance between the empirical joint distribution over `trials`
// independent runs and the brute-force truth is reported; the note records
// the first budget at which each dynamics drops below the sampling-noise
// envelope — the paper's point being that the parallel dynamics reach it
// in O(Δ log n) / O(log n) rounds while Glauber needs Θ(n log n) updates.
func E12RoundsToMix(n int, lambda float64, budgets []int, trials int, seed int64) (*Table, error) {
	g := graph.Cycle(n)
	spec, err := model.Hardcore(g, lambda)
	if err != nil {
		return nil, err
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		return nil, err
	}
	truth, err := exact.JointDistribution(in)
	if err != nil {
		return nil, err
	}
	rules, err := psample.NewRules(in)
	if err != nil {
		return nil, err
	}
	lg, err := psample.NewLubyGlauber(rules, seed)
	if err != nil {
		return nil, err
	}
	lm, err := psample.NewLocalMetropolis(rules, seed)
	if err != nil {
		return nil, err
	}
	delta := g.MaxDegree()
	noise := dist.ExpectedTVNoise(truth.Len(), trials)
	t := &Table{
		ID:    "E12",
		Title: fmt.Sprintf("rounds-to-mix: Glauber vs LubyGlauber vs LocalMetropolis (hardcore cycle n=%d, λ=%g)", n, lambda),
		Claim: "the parallel dynamics mix in O(Δ log n)-style rounds; sequential Glauber needs Θ(n log n) single-site updates",
		Columns: []string{
			"sweep-eq", "glauber TV", "luby rounds", "luby TV", "metro rounds", "metro TV",
		},
	}
	firstBelow := map[string]int{}
	measure := func(name string, budget int, sample func(trial int) (dist.Config, error)) (float64, error) {
		emp := dist.NewEmpirical(n)
		for i := 0; i < trials; i++ {
			cfg, err := sample(i)
			if err != nil {
				return 0, err
			}
			emp.Observe(cfg)
		}
		got, err := emp.Joint()
		if err != nil {
			return 0, err
		}
		tv, err := dist.TVJoint(truth, got)
		if err != nil {
			return 0, err
		}
		if _, done := firstBelow[name]; !done && tv <= noise {
			firstBelow[name] = budget
		}
		return tv, nil
	}
	rng := rand.New(rand.NewSource(seed))
	for _, b := range budgets {
		glauberTV, err := measure("glauber", b, func(int) (dist.Config, error) {
			return glauber.Sample(in, b, rng)
		})
		if err != nil {
			return nil, err
		}
		lubyRounds := b * (delta + 1)
		lubyTV, err := measure("luby", b, func(trial int) (dist.Config, error) {
			if err := lg.Reset(seed + int64(trial)*7919); err != nil {
				return nil, err
			}
			if err := lg.Run(lubyRounds); err != nil {
				return nil, err
			}
			return lg.State(), nil
		})
		if err != nil {
			return nil, err
		}
		metroTV, err := measure("metropolis", b, func(trial int) (dist.Config, error) {
			if err := lm.Reset(seed + int64(trial)*104729); err != nil {
				return nil, err
			}
			if err := lm.Run(b); err != nil {
				return nil, err
			}
			return lm.State(), nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			d(b), f(glauberTV), d(lubyRounds), f(lubyTV), d(b), f(metroTV),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("sampling-noise envelope ≈ %s at %d trials", f(noise), trials))
	for _, name := range []string{"glauber", "luby", "metropolis"} {
		if b, ok := firstBelow[name]; ok {
			t.Notes = append(t.Notes, fmt.Sprintf("%s reaches the envelope at sweep-equivalent budget %d", name, b))
		} else {
			t.Notes = append(t.Notes, fmt.Sprintf("%s stays above the envelope within the tested budgets", name))
		}
	}
	return t, nil
}
