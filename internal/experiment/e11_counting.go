package experiment

import (
	"math"

	"repro/internal/core"
	"repro/internal/exact"
)

// E11Counting reproduces the counting side of the paper's title: the global
// log partition function decomposes by self-reducibility into the local
// marginals computed by distributed inference (Section 1, via Jerrum [9]):
// ln Z = ln w(σ) − Σ_i ln µ^{σ<i}_{v_i}(σ_{v_i}). With an ε-multiplicative
// inference oracle the estimate carries error ≤ n·ε. The workload counts
// independent sets of cycles (hardcore λ=1), whose exact counts are the
// Lucas numbers.
func E11Counting(sizes []int, lambda, eps float64) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "counting via the chain rule of local marginals (Section 1, [9])",
		Claim:   "ln Z from n inference calls, error ≤ n·ε with an ε-mult oracle",
		Columns: []string{"n", "estimated Z", "exact Z", "|lnZ err|", "n·ε bound", "radius"},
	}
	for _, n := range sizes {
		in, o, err := hardcoreCycleInstance(n, lambda)
		if err != nil {
			return nil, err
		}
		res, err := core.EstimateLogPartition(in, o, nil, eps)
		if err != nil {
			return nil, err
		}
		want, err := exact.LogPartition(in)
		if err != nil {
			return nil, err
		}
		diff := math.Abs(res.LogZ - want)
		t.Rows = append(t.Rows, []string{
			d(n), f(math.Exp(res.LogZ)), f(math.Exp(want)), f(diff),
			f(float64(n) * eps), d(res.MaxRadius),
		})
		if diff > float64(n)*eps {
			t.Notes = append(t.Notes, "n="+d(n)+": lnZ error exceeded the n·ε bound")
		}
	}
	if len(t.Notes) == 0 {
		t.Notes = append(t.Notes, "all lnZ estimates within n·ε — global counting from local inference, as the paper's framing promises")
	}
	return t, nil
}
