package experiment

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/decay"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/model"
)

func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("cell (%d,%d) out of range in %s", row, col, tab.ID)
	}
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not a number", row, col, tab.Rows[row][col])
	}
	return v
}

func TestTableString(t *testing.T) {
	tab := &Table{
		ID:      "EX",
		Title:   "demo",
		Claim:   "claim",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   []string{"note"},
	}
	s := tab.String()
	for _, want := range []string{"EX", "demo", "claim", "a", "1", "note"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}

func TestE1PolylogScaling(t *testing.T) {
	tab, err := E1InferenceToSampling([]int{16, 32, 64}, 1.0, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// rounds/log³n must not blow up across sizes (polylog claim).
	first := cell(t, tab, 0, 4)
	last := cell(t, tab, len(tab.Rows)-1, 4)
	if last > 8*first {
		t.Errorf("rounds/log³n grew from %v to %v — not polylog", first, last)
	}
}

func TestE2WithinBound(t *testing.T) {
	tab, err := E2SamplingToInference(10, 1.0, 0.02, 4000, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		tv := cell(t, tab, i, 3)
		bound := cell(t, tab, i, 4)
		if tv > bound {
			t.Errorf("row %d: error %v exceeds bound %v", i, tv, bound)
		}
	}
}

func TestE3AllWithinBound(t *testing.T) {
	tab, err := E3Boosting(8, 1.0, []float64{0.5, 0.2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tab.Rows {
		if row[3] != "yes" {
			t.Errorf("row %d not within bound: %v", i, row)
		}
	}
}

func TestE4Exactness(t *testing.T) {
	tab, err := E4LocalJVV([]int{6}, 1.0, 2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	tv := cell(t, tab, 0, 1)
	envelope := cell(t, tab, 0, 2)
	if tv > envelope {
		t.Errorf("TV %v exceeds noise envelope %v", tv, envelope)
	}
	fail := cell(t, tab, 0, 3)
	if fail > cell(t, tab, 0, 4) {
		t.Errorf("failure rate %v exceeds 5/n", fail)
	}
}

func TestE4FailureScalingBounded(t *testing.T) {
	tab, err := E4FailureScaling([]int{6, 8}, 1.0, 1500, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		if nr := cell(t, tab, i, 2); nr > 6 {
			t.Errorf("n·rate = %v too large", nr)
		}
	}
}

func TestE5ErrorBelowEnvelope(t *testing.T) {
	tab, err := E5SSMInference(12, 1.0, []int{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		tv := cell(t, tab, i, 1)
		env := cell(t, tab, i, 2)
		if tv > env {
			t.Errorf("radius row %d: error %v above envelope %v", i, tv, env)
		}
	}
	// Error must decrease with radius.
	if cell(t, tab, len(tab.Rows)-1, 1) > cell(t, tab, 0, 1)+1e-12 {
		t.Error("error not decreasing with radius")
	}
}

func TestE6MeasuredBelowCertified(t *testing.T) {
	tab, err := E6InferenceImpliesSSM(11, 1.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tab.Rows {
		if row[3] != "yes" {
			t.Errorf("row %d: measured SSM above certified bound: %v", i, row)
		}
	}
}

func TestE7RatesAgree(t *testing.T) {
	tab, err := E7TVvsMult(11, 1.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 3 {
		t.Fatalf("too few rows")
	}
	// Both error measures decay along rows.
	for i := 1; i < len(tab.Rows); i++ {
		if cell(t, tab, i, 1) > cell(t, tab, i-1, 1)+1e-12 {
			t.Error("TV not decaying")
		}
		if cell(t, tab, i, 2) > cell(t, tab, i-1, 2)+1e-12 {
			t.Error("mult err not decaying")
		}
	}
}

func TestE8PhaseTransitionDichotomy(t *testing.T) {
	tab, err := E8PhaseTransition(3, []float64{0.25, 4.0}, []int{4, 8, 12, 16})
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 (λ = λc/2): decaying. Row 1 (λ = 2λc): long-range order.
	lastCol := len(tab.Columns) - 1
	if tab.Rows[0][lastCol] != "yes" {
		t.Errorf("subcritical row should decay: %v", tab.Rows[0])
	}
	if tab.Rows[1][lastCol] == "yes" {
		t.Errorf("supercritical row should persist: %v", tab.Rows[1])
	}
	// Quantitative dichotomy: final-depth correlation tiny below, large
	// above.
	subCorr := cell(t, tab, 0, len(tab.Columns)-2)
	supCorr := cell(t, tab, 1, len(tab.Columns)-2)
	if subCorr > 0.02 {
		t.Errorf("subcritical correlation %v did not decay", subCorr)
	}
	if supCorr < 0.1 {
		t.Errorf("supercritical correlation %v decayed unexpectedly", supCorr)
	}
	if _, err := E8PhaseTransition(2, []float64{1}, []int{2}); err == nil {
		t.Error("Δ<3 accepted")
	}
}

func TestE8RequiredRadiusDiverges(t *testing.T) {
	tab, err := E8RequiredRadius(3, []float64{0.25, 4.0}, 14, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	sub := cell(t, tab, 0, 1)
	sup := cell(t, tab, 1, 1)
	if sub >= sup {
		t.Errorf("required radius should diverge above λc: sub=%v sup=%v", sub, sup)
	}
	if int(sup) < 14 {
		t.Errorf("supercritical radius %v should reach the tree depth", sup)
	}
}

func TestE9SqrtDeltaScaling(t *testing.T) {
	tab, err := E9Matchings([]int{3, 5, 9, 17, 33}, 1.0, 1e-4, 0)
	if err != nil {
		t.Fatal(err)
	}
	// depth/√Δ bounded: max/min ratio across a 11x degree range small.
	var ratios []float64
	for i := range tab.Rows {
		ratios = append(ratios, cell(t, tab, i, 4))
	}
	lo, hi := minMax(ratios)
	if hi/lo > 3 {
		t.Errorf("depth/√Δ varies too much: %v", ratios)
	}
	// Depth itself grows with Δ.
	if cell(t, tab, len(tab.Rows)-1, 3) <= cell(t, tab, 0, 3) {
		t.Error("required depth should grow with Δ")
	}
}

func TestE9CrossCheckExplicitGraph(t *testing.T) {
	// The scalar regular-tree recursion and the explicit-graph BGKNT
	// estimator must agree on a small tree: required depth for ε within ±2.
	delta, lambda, eps := 3, 1.0, 1e-3
	scalar, err := matchingTreeDepth(delta, lambda, eps, 100)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.CompleteTree(delta-1, 10)
	m, err := model.Matching(g, lambda)
	if err != nil {
		t.Fatal(err)
	}
	est := decay.NewMatchingEstimator(m)
	pin := dist.NewConfig(m.Spec.N())
	exactM, err := est.Marginal(pin, 0, g.N())
	if err != nil {
		t.Fatal(err)
	}
	explicit := 20
	for r := 1; r <= 20; r++ {
		got, err := est.Marginal(pin, 0, r)
		if err != nil {
			t.Fatal(err)
		}
		tv, err := dist.TV(got, exactM)
		if err != nil {
			t.Fatal(err)
		}
		if tv <= eps {
			explicit = r
			break
		}
	}
	if math.Abs(float64(scalar-explicit)) > 3 {
		t.Errorf("scalar depth %d vs explicit-graph depth %d diverge", scalar, explicit)
	}
}

func TestE10ColoringsDepthShrinks(t *testing.T) {
	tab, err := E10Colorings(4, []int{5, 8, 10}, 1e-3, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Larger palettes need no more depth.
	if cell(t, tab, len(tab.Rows)-1, 2) > cell(t, tab, 0, 2) {
		t.Errorf("required depth should shrink with q: %v", tab.Rows)
	}
}

func TestE10IsingUniquenessDichotomy(t *testing.T) {
	tab, err := E10Ising(4, []float64{0.3, 1.0, 3.0}, []int{4, 6})
	if err != nil {
		t.Fatal(err)
	}
	// b=1 (inside) decays to ~0; b=0.3 (outside, strong antiferro) keeps
	// correlation.
	insideCorr := cell(t, tab, 1, len(tab.Columns)-1)
	outsideCorr := cell(t, tab, 0, len(tab.Columns)-1)
	if insideCorr > 0.01 {
		t.Errorf("uniqueness-regime correlation %v did not decay", insideCorr)
	}
	if outsideCorr < 0.05 {
		t.Errorf("non-uniqueness correlation %v decayed", outsideCorr)
	}
	if tab.Rows[1][1] != "yes" || tab.Rows[0][1] != "no" {
		t.Errorf("uniqueness labels wrong: %v", tab.Rows)
	}
}

func TestE10HypergraphDecayBelowThreshold(t *testing.T) {
	tab, err := E10Hypergraph(3, 4, []float64{0.5, 1.5}, []int{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	below := cell(t, tab, 0, len(tab.Columns)-1)
	above := cell(t, tab, 1, len(tab.Columns)-1)
	if below >= above {
		t.Errorf("correlation below threshold (%v) should be smaller than above (%v)", below, above)
	}
}

func TestE11CountingWithinBound(t *testing.T) {
	tab, err := E11Counting([]int{8, 12}, 1.0, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		if cell(t, tab, i, 3) > cell(t, tab, i, 4) {
			t.Errorf("row %d: lnZ error above n·ε: %v", i, tab.Rows[i])
		}
	}
	// Lucas numbers: Z(C8) = 47, Z(C12) = 322.
	if math.Abs(cell(t, tab, 0, 1)-47) > 0.01 || math.Abs(cell(t, tab, 1, 1)-322) > 0.05 {
		t.Errorf("Lucas numbers not reproduced: %v", tab.Rows)
	}
}

func TestRunSuiteQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run is slow")
	}
	tables, err := RunSuite(SuiteParams{Quick: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 16 {
		t.Fatalf("suite produced %d tables, want 16", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Errorf("%s has no rows", tab.ID)
		}
		if tab.String() == "" {
			t.Errorf("%s renders empty", tab.ID)
		}
	}
}

// TestE12ParallelDynamicsMix checks that both parallel dynamics actually
// approach the truth with budget: the final-budget TV must be far below the
// initial one and near the sampling-noise envelope.
func TestE12ParallelDynamicsMix(t *testing.T) {
	trials := 2500
	tab, err := E12RoundsToMix(5, 1.0, []int{0, 2, 8}, trials, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, col := range []int{3, 5, 7} { // luby TV, metro TV, chrom TV
		start := cell(t, tab, 0, col)
		end := cell(t, tab, len(tab.Rows)-1, col)
		if end > 0.5*start {
			t.Errorf("col %d: TV %v -> %v — no mixing observed", col, start, end)
		}
		if end > 0.15 {
			t.Errorf("col %d: final TV %v too far from the envelope", col, end)
		}
	}
	// Glauber with the same sweep budget must also be mixed (sanity that
	// the sweep-equivalent axis is fair).
	if got := cell(t, tab, len(tab.Rows)-1, 1); got > 0.15 {
		t.Errorf("glauber final TV %v", got)
	}
	// The adaptive-driver notes: a stopping time per batched dynamic and
	// the not-applicable marker for the sequential baseline.
	joined := strings.Join(tab.Notes, "\n")
	for _, name := range []string{"luby", "metropolis", "chromatic"} {
		want := name + " stops at R̂ < 1.05"
		if !strings.Contains(joined, want) {
			t.Errorf("notes missing %q:\n%s", want, joined)
		}
	}
	if !strings.Contains(joined, "glauber: sequential baseline") {
		t.Errorf("notes missing the glauber not-applicable marker:\n%s", joined)
	}
}
