package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/model"
)

// allOutBoundary and allInBoundary are the two extremal hardcore boundary
// conditions used throughout the SSM experiments.
func allOutBoundary(n int) func([]int) dist.Config {
	return func(sphere []int) dist.Config {
		c := dist.NewConfig(n)
		for _, u := range sphere {
			c[u] = model.Out
		}
		return c
	}
}

func allInBoundary(n int) func([]int) dist.Config {
	return func(sphere []int) dist.Config {
		c := dist.NewConfig(n)
		for _, u := range sphere {
			c[u] = model.In
		}
		return c
	}
}

// E5SSMInference reproduces the converse of Theorem 5.1: the shell-pinning
// inference algorithm achieves error δ_n(t) at radius t + O(1).
func E5SSMInference(n int, lambda float64, radii []int) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "SSM ⇒ approximate inference (Theorem 5.1, ⇐)",
		Claim:   "t(n, δ) = min{t : δ_n(t) ≤ δ} + O(1)",
		Columns: []string{"radius t", "TV error at v", "δ_n(t) envelope (α^t·n)"},
	}
	in, o, err := hardcoreCycleInstance(n, lambda)
	if err != nil {
		return nil, err
	}
	want, err := exact.Marginal(in, 0)
	if err != nil {
		return nil, err
	}
	alpha := o.Rate
	for _, r := range radii {
		got, _, err := core.SSMInference(in, 0, r)
		if err != nil {
			return nil, err
		}
		tv, err := dist.TV(got, want)
		if err != nil {
			return nil, err
		}
		envelope := float64(n) * pow(alpha, r)
		if envelope > 1 {
			envelope = 1
		}
		t.Rows = append(t.Rows, []string{d(r), f(tv), f(envelope)})
	}
	t.Notes = append(t.Notes, "error decays below the δ_n(t) envelope — inference radius tracks the SSM rate")
	return t, nil
}

// E6InferenceImpliesSSM reproduces the forward direction of Theorem 5.1:
// the empirical SSM rate measured from exact conditional marginals is
// certified by the inference algorithm's radius function.
func E6InferenceImpliesSSM(n int, lambda float64, maxDist int) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "inference ⇒ SSM (Theorem 5.1, ⇒)",
		Claim:   "δ_n(t) ≤ 2·min{δ : t(n,δ) ≤ t−1}",
		Columns: []string{"dist t", "measured worst TV", "certified bound", "measured ≤ bound"},
	}
	in, o, err := hardcoreCycleInstance(n, lambda)
	if err != nil {
		return nil, err
	}
	v := n / 2
	points, err := core.MeasureSSM(in, v, maxDist,
		[]func([]int) dist.Config{allOutBoundary(n), allInBoundary(n)})
	if err != nil {
		return nil, err
	}
	for _, p := range points {
		bound := core.InferenceImpliesSSM(o.Rate, n, p.Dist)
		ok := "yes"
		if p.TV > bound {
			ok = "NO"
		}
		t.Rows = append(t.Rows, []string{d(p.Dist), f(p.TV), f(bound), ok})
	}
	alpha, used := core.FitDecayRate(points, true)
	t.Notes = append(t.Notes, fmt.Sprintf("fitted empirical decay rate α = %s over %d distances (oracle rate %s)", f(alpha), used, f(o.Rate)))
	return t, nil
}

// E7TVvsMult reproduces Corollary 5.2: strong spatial mixing decays at the
// same exponential rate in total variation and in multiplicative error.
func E7TVvsMult(n int, lambda float64, maxDist int) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "TV-decay ⇔ multiplicative-decay (Corollary 5.2)",
		Claim:   "exponential decay at rate α in TV iff at rate α in mult. error",
		Columns: []string{"dist t", "worst TV", "worst multErr"},
	}
	in, _, err := hardcoreCycleInstance(n, lambda)
	if err != nil {
		return nil, err
	}
	v := n / 2
	points, err := core.MeasureSSM(in, v, maxDist,
		[]func([]int) dist.Config{allOutBoundary(n), allInBoundary(n)})
	if err != nil {
		return nil, err
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{d(p.Dist), f(p.TV), f(p.Mult)})
	}
	aTV, _ := core.FitDecayRate(points, true)
	aMult, _ := core.FitDecayRate(points, false)
	t.Notes = append(t.Notes, fmt.Sprintf("fitted rates: TV %s vs multiplicative %s — same decay rate as Corollary 5.2 predicts", f(aTV), f(aMult)))
	return t, nil
}

func pow(a float64, k int) float64 {
	out := 1.0
	for i := 0; i < k; i++ {
		out *= a
	}
	return out
}
