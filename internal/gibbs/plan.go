package gibbs

// plan.go compiles the per-vertex factor walk of batch.go into flat sweep
// plans and fuses heat-bath sampling into the weight computation — the
// "run the hot loop at hardware speed" layer on top of the chain-major
// lattice of PR 5.
//
// CondWeightsBatch interprets the factor graph on every call: it walks
// FactorsAt(v), re-derives which scope entries are v, re-reads unary
// factors that cannot differ between chains, and validates every cell it
// touches. A SweepPlan does that interpretation exactly once per Compiled:
// for each vertex the prefix run of unary factors is folded into a single
// precomputed per-symbol prior row, each dense pair factor is lowered to a
// flat gather (neighbor row, accumulated strides, table), factors of
// three or more distinct vertices keep a generic entry, and closure-backed
// factors keep a fallback entry — so the hot loop is a straight run over a
// flat instruction stream with no dispatch and no per-cell checks. Every
// multiplication happens in the same order as the interpreted kernel, so
// planned weights are bit-identical to CondWeightsBatch (pinned by the
// root-level property test across all model builders).
//
// The fused kernel SampleVertexBatch draws the heat-bath symbol in the
// same pass that computes the weight row, through the value-type
// dist.Xoshiro generator instead of the *rand.Rand interface, with a
// division-free threshold draw at q = 2. Validity is the caller's
// contract: the lattice must pass state.Lattice.CheckAssigned before a
// stage (sampled symbols are always in range, so one preflight per Run
// covers every subsequent stage), which is what lets the innermost loops
// drop the per-(neighbor, chain) checks of the interpreted kernel.

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/state"
)

// planOpKind discriminates the flat instruction stream of a vertexPlan.
type planOpKind uint8

const (
	// opUnary multiplies a precomputed chain-independent per-symbol row —
	// a unary factor that appears after the first non-unary factor, so it
	// cannot be folded into the prior without reordering multiplications.
	opUnary planOpKind = iota
	// opPair is a dense table factor with exactly one distinct scope
	// vertex besides v: one gather per chain.
	opPair
	// opGeneric is a dense table factor with two or more distinct scope
	// vertices besides v: mixed-radix base accumulation per chain.
	opGeneric
	// opClosure evaluates an uncompiled factor through its closure.
	opClosure
)

// planOp is one instruction of a vertex's sweep plan. Fields are populated
// by kind; slices alias the Compiled engine and are never written.
type planOp struct {
	kind planOpKind
	// u is the neighbor vertex (opPair) or the plan's own vertex
	// (opClosure, where the scope needs the candidate symbol substituted).
	u int32
	// su is the accumulated stride of u's scope occurrences (opPair); the
	// per-chain table base is cell(u)·su, exactly the occurrence-by-
	// occurrence sum of the interpreted kernel (int32 distributivity).
	su int32
	// sv is the accumulated stride of v's occurrences (opPair, opGeneric).
	sv int32
	// row is the per-symbol factor row (opUnary).
	row []float64
	// table is the dense factor table (opPair, opGeneric).
	table []float64
	// scope/strides are the non-v scope occurrences (opGeneric), in scope
	// order so the base accumulates in the interpreted kernel's order.
	scope   []int32
	strides []int32
	// f is the compiled factor (opClosure).
	f *cfactor
}

// vertexPlan is the compiled conditional of one vertex: weights start at
// the prior row (all-ones when nil) and each op multiplies in, in factor
// index order. pairOnly marks plans whose every op is a pair gather or a
// unary row — the all-pairwise case (hardcore, Ising, colorings) — which
// the fused sampler runs chain-major with the weights held in registers
// instead of round-tripping through the weight buffer.
type vertexPlan struct {
	prior    []float64
	ops      []planOp
	pairOnly bool
}

// SweepPlan holds one vertexPlan per vertex of a Compiled engine. It is
// immutable after construction and safe for concurrent use.
type SweepPlan struct {
	q     int
	verts []vertexPlan
}

// Plan returns the engine's sweep plan, building it on first call.
func (c *Compiled) Plan() *SweepPlan {
	c.planOnce.Do(func() { c.plan = buildPlan(c) })
	return c.plan
}

// buildPlan lowers every vertex's factor list into a vertexPlan.
func buildPlan(c *Compiled) *SweepPlan {
	p := &SweepPlan{q: c.q, verts: make([]vertexPlan, c.n)}
	for v := 0; v < c.n; v++ {
		vp := &p.verts[v]
		for _, fi := range c.FactorsAt(v) {
			f := &c.factors[fi]
			sv := int32(0)
			var others []int32  // distinct non-v scope vertices
			var gScope []int32  // non-v occurrences, in scope order
			var gStride []int32 // their strides
			su := int32(0)
			for j, u := range f.scope {
				if int(u) == v {
					sv += f.strides[j]
					continue
				}
				gScope = append(gScope, u)
				gStride = append(gStride, f.strides[j])
				su += f.strides[j]
				seen := false
				for _, o := range others {
					if o == u {
						seen = true
						break
					}
				}
				if !seen {
					others = append(others, u)
				}
			}
			if len(others) == 0 {
				// Unary in v: the factor row is chain-independent, so it is
				// evaluated once here. While no other op has been emitted,
				// fold it into the prior — weights start at 1 and 1·a = a
				// exactly, so prior[x] accumulates the same float sequence
				// the interpreted kernel produces. A unary factor appearing
				// after a non-unary one keeps its stream position as opUnary.
				row := unaryRow(f, c.q, sv)
				if len(vp.ops) == 0 {
					if vp.prior == nil {
						vp.prior = row
					} else {
						for x := range vp.prior {
							vp.prior[x] *= row[x]
						}
					}
					continue
				}
				vp.ops = append(vp.ops, planOp{kind: opUnary, row: row})
				continue
			}
			if f.table == nil {
				// Closure ops keep the whole scope; u records v itself so
				// the evaluation loop can substitute the candidate symbol.
				vp.ops = append(vp.ops, planOp{kind: opClosure, f: f, u: int32(v)})
				continue
			}
			if len(others) == 1 {
				vp.ops = append(vp.ops, planOp{kind: opPair, u: others[0], su: su, sv: sv, table: f.table})
				continue
			}
			vp.ops = append(vp.ops, planOp{kind: opGeneric, sv: sv, table: f.table, scope: gScope, strides: gStride})
		}
		vp.pairOnly = true
		for _, op := range vp.ops {
			if op.kind != opPair && op.kind != opUnary {
				vp.pairOnly = false
				break
			}
		}
	}
	return p
}

// unaryRow materializes the per-symbol row of a factor unary in its vertex
// (sv is the accumulated stride of the vertex's occurrences).
func unaryRow(f *cfactor, q int, sv int32) []float64 {
	row := make([]float64, q)
	if f.table != nil {
		for x := int32(0); x < int32(q); x++ {
			row[x] = f.table[x*sv]
		}
		return row
	}
	assign := make([]int, len(f.scope))
	for x := 0; x < q; x++ {
		for j := range assign {
			assign[j] = x
		}
		row[x] = f.eval(assign)
	}
	return row
}

// planWeightRow fills w (length (c1−c0)·q) with the conditional weight
// rows of vertex v's plan for chains c0 ≤ c < c1 — the width-specialized
// straight-line body shared by CondWeightsBatchPlan and the fused sampler.
// Every cell the plan reads must hold an assigned in-range symbol
// (state.Lattice.CheckAssigned); the only diagnostics left in here are
// Go's bounds checks.
func planWeightRow[T state.Cells](q int, vp *vertexPlan, cells []T, B, c0, c1 int, w []float64, sc *BatchScratch) {
	nb := c1 - c0
	if vp.prior == nil {
		for i := range w {
			w[i] = 1
		}
	} else {
		for i := 0; i < nb; i++ {
			copy(w[i*q:(i+1)*q], vp.prior)
		}
	}
	q32 := int32(q)
	for oi := range vp.ops {
		op := &vp.ops[oi]
		switch op.kind {
		case opUnary:
			urow := op.row
			for i := 0; i < nb; i++ {
				row := w[i*q : (i+1)*q]
				for x := range row {
					row[x] *= urow[x]
				}
			}
		case opPair:
			nrow := cells[int(op.u)*B+c0 : int(op.u)*B+c1]
			table, su, sv := op.table, op.su, op.sv
			switch q32 {
			case 2:
				for i, xu := range nrow {
					bi := int32(xu) * su
					row := w[2*i : 2*i+2 : 2*i+2]
					row[0] *= table[bi]
					row[1] *= table[bi+sv]
				}
			case 3:
				for i, xu := range nrow {
					bi := int32(xu) * su
					row := w[3*i : 3*i+3 : 3*i+3]
					row[0] *= table[bi]
					row[1] *= table[bi+sv]
					row[2] *= table[bi+2*sv]
				}
			default:
				for i, xu := range nrow {
					bi := int32(xu) * su
					row := w[i*q : (i+1)*q]
					for x := int32(0); x < q32; x++ {
						row[x] *= table[bi+x*sv]
					}
				}
			}
		case opGeneric:
			base := sc.base[:nb]
			for i := range base {
				base[i] = 0
			}
			for j, u := range op.scope {
				nrow := cells[int(u)*B+c0 : int(u)*B+c1]
				st := op.strides[j]
				for i, x := range nrow {
					base[i] += int32(x) * st
				}
			}
			table, sv := op.table, op.sv
			switch q32 {
			case 2:
				for i := 0; i < nb; i++ {
					bi := base[i]
					row := w[2*i : 2*i+2 : 2*i+2]
					row[0] *= table[bi]
					row[1] *= table[bi+sv]
				}
			case 3:
				for i := 0; i < nb; i++ {
					bi := base[i]
					row := w[3*i : 3*i+3 : 3*i+3]
					row[0] *= table[bi]
					row[1] *= table[bi+sv]
					row[2] *= table[bi+2*sv]
				}
			default:
				for i := 0; i < nb; i++ {
					bi := base[i]
					row := w[i*q : (i+1)*q]
					for x := int32(0); x < q32; x++ {
						row[x] *= table[bi+x*sv]
					}
				}
			}
		case opClosure:
			f := op.f
			if len(sc.assign) < len(f.scope) {
				sc.assign = make([]int, len(f.scope))
			}
			assign := sc.assign[:len(f.scope)]
			for i := 0; i < nb; i++ {
				ch := c0 + i
				for x := 0; x < q; x++ {
					for j, u := range f.scope {
						if u == op.u {
							assign[j] = x
							continue
						}
						assign[j] = int(cells[int(u)*B+ch])
					}
					w[i*q+x] *= f.eval(assign)
				}
			}
		}
	}
}

// CondWeightsBatchPlan is CondWeightsBatch evaluated through the sweep
// plan: identical contract, bit-identical weights, but the lattice must
// already have passed CheckAssigned — the plan kernels do not diagnose
// unset cells. It exists for the bit-identity property tests and for
// callers that want weights without sampling.
func (c *Compiled) CondWeightsBatchPlan(l *state.Lattice, v, c0, c1 int, buf []float64, sc *BatchScratch) ([]float64, error) {
	nb, err := c.planArgs(l, v, c0, c1, len(buf))
	if err != nil {
		return nil, err
	}
	if sc == nil || len(sc.base) < nb {
		sc = NewBatchScratch(nb)
	}
	w := buf[:nb*c.q]
	vp := &c.Plan().verts[v]
	if u8 := l.Raw8(); u8 != nil {
		planWeightRow(c.q, vp, u8, l.Chains(), c0, c1, w, sc)
	} else {
		planWeightRow(c.q, vp, l.RawWide(), l.Chains(), c0, c1, w, sc)
	}
	return w, nil
}

// SampleVertexBatch is the fused stage kernel of the batched sampler: it
// computes the heat-bath conditional weight rows of vertex v for chains
// c0 ≤ c < c1 through the sweep plan and immediately draws each chain's
// new symbol into the lattice, one rng.Float64 per chain. buf needs
// (c1−c0)·q entries and sc must come from NewBatchScratch; the lattice
// must have passed CheckAssigned (the kernel writes only in-range
// symbols, so one preflight covers any number of subsequent stages).
// Vertices covered by the conditional-CDF cache (cond.go) skip the plan
// walk for a per-code table lookup; weights, draws, uniforms consumed,
// and errors are bit-identical on both paths.
func (c *Compiled) SampleVertexBatch(l *state.Lattice, v, c0, c1 int, buf []float64, sc *BatchScratch, rng *dist.Xoshiro) error {
	nb, err := c.planArgs(l, v, c0, c1, len(buf))
	if err != nil {
		return err
	}
	if sc == nil || len(sc.base) < nb {
		sc = NewBatchScratch(nb)
	}
	if cc := c.condForSample(); cc != nil {
		if cv := cc.at(v); cv != nil {
			if u8 := l.Raw8(); u8 != nil {
				return condSampleDense(c.q, cv, u8, l.Chains(), v, c0, c1, sc, rng)
			}
			return condSampleDense(c.q, cv, l.RawWide(), l.Chains(), v, c0, c1, sc, rng)
		}
	}
	w := buf[:nb*c.q]
	vp := &c.Plan().verts[v]
	if u8 := l.Raw8(); u8 != nil {
		return sampleVertexCells(c.q, vp, u8, l.Chains(), v, c0, c1, w, sc, rng)
	}
	return sampleVertexCells(c.q, vp, l.RawWide(), l.Chains(), v, c0, c1, w, sc, rng)
}

// planArgs validates the shared argument contract of the plan kernels,
// returning the block width c1−c0.
func (c *Compiled) planArgs(l *state.Lattice, v, c0, c1, bufLen int) (int, error) {
	if v < 0 || v >= c.n {
		return 0, fmt.Errorf("gibbs: batch conditional vertex %d out of range", v)
	}
	nb := c1 - c0
	if c0 < 0 || c1 > l.Chains() || nb <= 0 {
		return 0, fmt.Errorf("gibbs: batch chain range [%d,%d) invalid for B=%d", c0, c1, l.Chains())
	}
	if l.N() < c.n {
		return 0, fmt.Errorf("gibbs: batch lattice has %d vertices, need %d", l.N(), c.n)
	}
	if bufLen < nb*c.q {
		return 0, fmt.Errorf("gibbs: batch buffer has %d entries, need (c1−c0)·q = %d", bufLen, nb*c.q)
	}
	return nb, nil
}

// sampleVertexCells is the width-specialized fused body: weight rows, then
// one threshold draw per chain written straight into v's lattice row. The
// draw reproduces dist.SampleWeights semantics — nonpositive entries carry
// no mass, rounding slack falls to the last positive symbol, and bad rows
// (negative, NaN, infinite, or zero-mass) surface as errors built in the
// cold path.
func sampleVertexCells[T state.Cells](q int, vp *vertexPlan, cells []T, B, v, c0, c1 int, w []float64, sc *BatchScratch, rng *dist.Xoshiro) error {
	if vp.pairOnly {
		switch q {
		case 2:
			return samplePairOnlyQ2(vp, cells, B, v, c0, c1, rng)
		case 3:
			return samplePairOnlyQ3(vp, cells, B, v, c0, c1, rng)
		}
	}
	planWeightRow(q, vp, cells, B, c0, c1, w, sc)
	out := cells[v*B+c0 : v*B+c1]
	if q == 2 {
		// Division-free threshold draw: u ~ U[0, total) lands in [0, w0)
		// for symbol 0, exactly sampleWalk with the slack falling to the
		// last positive symbol.
		for i := range out {
			w0, w1 := w[2*i], w[2*i+1]
			total := w0 + w1
			if !(w0 >= 0 && w1 >= 0 && total > 0 && total <= math.MaxFloat64) {
				return rowError(w[2*i:2*i+2], v, c0+i)
			}
			u := rng.Float64() * total
			x := T(0)
			if w0 > 0 && u < w0 {
				x = 0
			} else if w1 > 0 {
				x = 1
			}
			out[i] = x
		}
		return nil
	}
	for i := range out {
		row := w[i*q : (i+1)*q]
		total := 0.0
		ok := true
		for _, x := range row {
			if !(x >= 0) {
				ok = false
				break
			}
			total += x
		}
		if !ok || !(total > 0 && total <= math.MaxFloat64) {
			return rowError(row, v, c0+i)
		}
		u := rng.Float64() * total
		acc := 0.0
		last := -1
		for x, wx := range row {
			if wx <= 0 {
				continue
			}
			last = x
			acc += wx
			if u < acc {
				break
			}
		}
		out[i] = T(last)
	}
	return nil
}

// samplePairOnlyQ2 is the chain-major register path at q = 2: for each
// chain the weight pair starts at the prior, every op multiplies in
// (prior, then ops, in factor order — the multiplication sequence of the
// buffered path, so the weights are bit-identical; the float64 registers
// round-trip through nothing), and the threshold draw happens in place.
func samplePairOnlyQ2[T state.Cells](vp *vertexPlan, cells []T, B, v, c0, c1 int, rng *dist.Xoshiro) error {
	p0, p1 := 1.0, 1.0
	if vp.prior != nil {
		p0, p1 = vp.prior[0], vp.prior[1]
	}
	ops := vp.ops
	out := cells[v*B+c0 : v*B+c1]
	for i := range out {
		w0, w1 := p0, p1
		for oi := range ops {
			op := &ops[oi]
			if op.kind == opPair {
				bi := int32(cells[int(op.u)*B+c0+i]) * op.su
				w0 *= op.table[bi]
				w1 *= op.table[bi+op.sv]
			} else {
				w0 *= op.row[0]
				w1 *= op.row[1]
			}
		}
		total := w0 + w1
		if !(w0 >= 0 && w1 >= 0 && total > 0 && total <= math.MaxFloat64) {
			return rowError([]float64{w0, w1}, v, c0+i)
		}
		u := rng.Float64() * total
		x := T(0)
		if w0 > 0 && u < w0 {
			x = 0
		} else if w1 > 0 {
			x = 1
		}
		out[i] = x
	}
	return nil
}

// samplePairOnlyQ3 is samplePairOnlyQ2 at q = 3, with the three-symbol
// walk inlined (sampleWalk semantics: nonpositive symbols carry no mass,
// slack falls to the last positive one).
func samplePairOnlyQ3[T state.Cells](vp *vertexPlan, cells []T, B, v, c0, c1 int, rng *dist.Xoshiro) error {
	p0, p1, p2 := 1.0, 1.0, 1.0
	if vp.prior != nil {
		p0, p1, p2 = vp.prior[0], vp.prior[1], vp.prior[2]
	}
	ops := vp.ops
	out := cells[v*B+c0 : v*B+c1]
	for i := range out {
		w0, w1, w2 := p0, p1, p2
		for oi := range ops {
			op := &ops[oi]
			if op.kind == opPair {
				bi := int32(cells[int(op.u)*B+c0+i]) * op.su
				w0 *= op.table[bi]
				w1 *= op.table[bi+op.sv]
				w2 *= op.table[bi+2*op.sv]
			} else {
				w0 *= op.row[0]
				w1 *= op.row[1]
				w2 *= op.row[2]
			}
		}
		total := w0 + w1 + w2
		if !(w0 >= 0 && w1 >= 0 && w2 >= 0 && total > 0 && total <= math.MaxFloat64) {
			return rowError([]float64{w0, w1, w2}, v, c0+i)
		}
		// u ≥ 0, so u < prefix-sum subsumes the nonpositive-skip of
		// sampleWalk (zero weights add nothing to the prefix); only the
		// rounding-slack branch needs the last-positive rule.
		u := rng.Float64() * total
		var x T
		switch {
		case u < w0:
			x = 0
		case u < w0+w1:
			x = 1
		case w2 > 0:
			x = 2
		case w1 > 0:
			x = 1
		default:
			x = 0
		}
		out[i] = x
	}
	return nil
}

// rowError diagnoses a bad weight row off the hot path, mirroring the
// errors of dist.SampleWeights (including dist.ErrZeroMass) wrapped with
// the (vertex, chain) site.
func rowError(row []float64, v, chain int) error {
	var err error = dist.ErrZeroMass
	for i, x := range row {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			err = fmt.Errorf("dist: weight %v at index %d", x, i)
			break
		}
	}
	total := 0.0
	for _, x := range row {
		total += x
	}
	if math.IsInf(total, 1) {
		err = fmt.Errorf("dist: total weight overflows to +Inf")
	}
	return fmt.Errorf("gibbs: heat-bath at vertex %d chain %d: %w", v, chain, err)
}
