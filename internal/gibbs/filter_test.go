package gibbs

import (
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
)

// filterSpec builds a spec mixing a pairwise table factor, an arity-3
// factor, and a factor with a repeated scope vertex, on a triangle.
func filterSpec(t *testing.T, rng *rand.Rand) *Spec {
	t.Helper()
	g := graph.Complete(3)
	table3 := make([]float64, 27)
	for i := range table3 {
		table3[i] = rng.Float64() + 0.1
	}
	pair := make([]float64, 9)
	for i := range pair {
		pair[i] = rng.Float64() + 0.1
	}
	rep := make([]float64, 9)
	for i := range rep {
		rep[i] = rng.Float64() + 0.1
	}
	s, err := NewSpec(g, 3, []Factor{
		{Scope: []int{0, 1, 2}, Table: table3, Name: "t3"},
		PairTable(0, 1, pair, "pair"),
		{Scope: []int{2, 2}, Table: rep, Name: "repeated"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFilterWeightTableMatchesClosure checks the dense-table filter walk
// against the closure fallback (forced via a zero table cap) and against a
// direct subset-product reference.
func TestFilterWeightTableMatchesClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := filterSpec(t, rng)
	tabled := Compile(s)
	closured := CompileCap(s, 0)
	n, q := s.N(), s.Q
	vertsPerFactor := [][]int{{0, 1, 2}, {0, 1}, {2}}
	for trial := 0; trial < 200; trial++ {
		old := dist.NewConfig(n)
		prop := dist.NewConfig(n)
		for v := 0; v < n; v++ {
			old[v] = rng.Intn(q)
			prop[v] = rng.Intn(q)
		}
		for fi, verts := range vertsPerFactor {
			got, err := tabled.FilterWeight(fi, old, prop, verts)
			if err != nil {
				t.Fatal(err)
			}
			want, err := closured.FilterWeight(fi, old, prop, verts)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("factor %d: table filter %v != closure filter %v (old %v prop %v)", fi, got, want, old, prop)
			}
			// Direct reference: product over nonempty toggle subsets.
			ref := 1.0
			mixed := old.Clone()
			for mask := 1; mask < 1<<len(verts); mask++ {
				copy(mixed, old)
				for b, v := range verts {
					if mask&(1<<b) != 0 {
						mixed[v] = prop[v]
					}
				}
				val, ok := tabled.EvalFull(fi, mixed)
				if !ok {
					t.Fatalf("factor %d not evaluable", fi)
				}
				ref *= val
			}
			if diff := got - ref; diff > 1e-12*ref || diff < -1e-12*ref {
				t.Fatalf("factor %d: filter %v != reference %v", fi, got, ref)
			}
		}
	}
}

func TestFilterWeightValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s := filterSpec(t, rng)
	c := Compile(s)
	total := dist.Config{0, 1, 2}
	partial := dist.Config{0, dist.Unset, 2}
	if _, err := c.FilterWeight(0, partial, total, []int{0, 1}); err == nil {
		t.Error("unassigned current configuration accepted")
	}
	if _, err := c.FilterWeight(1, total, total, []int{2}); err == nil {
		t.Error("toggle vertex outside scope accepted")
	}
	if _, err := c.FilterWeight(9, total, total, []int{0}); err == nil {
		t.Error("factor index out of range accepted")
	}
	if w, err := c.FilterWeight(0, total, total, nil); err != nil || w != 1 {
		t.Errorf("empty toggle set: w=%v err=%v, want 1", w, err)
	}
}

func TestTableMax(t *testing.T) {
	g := graph.Path(2)
	s, err := NewSpec(g, 2, []Factor{
		PairTable(0, 1, []float64{0.2, 3.5, 1, 0}, "p"),
		{Scope: []int{0, 1}, Eval: func(a []int) float64 { return 1 }, Name: "closure"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A cap of 0 keeps the closure factor un-tabled.
	c := CompileCap(s, 0)
	if m, ok := c.TableMax(0); !ok || m != 3.5 {
		t.Errorf("TableMax(0) = %v, %v; want 3.5, true", m, ok)
	}
	if _, ok := c.TableMax(1); ok {
		t.Error("TableMax reported ok for a closure factor")
	}
	if _, ok := c.TableMax(-1); ok {
		t.Error("TableMax reported ok for an out-of-range index")
	}
}
