package gibbs

// subset.go: the masked variants of the fused sweep-plan kernels for the
// batched LubyGlauber engine. A Luby phase selects a random independent
// set per chain, so the set of chains in which a given vertex updates is
// an arbitrary subset of the chain block — SampleVertexSubset is
// SampleVertexBatch over an explicit chain-index list instead of a dense
// [c0,c1) range. The plan walk, the multiplication order, and the draw
// semantics are those of the dense kernel (bit-identical weights, the
// sampleWalk draw of dist.SampleWeights), so a one-chain subset produces
// exactly the update of the single-chain heat-bath path. The same
// contract applies: every cell the plan reads must already hold an
// assigned in-range symbol (state.Lattice.CheckAssigned preflight), the
// kernel writes only in-range symbols, and all diagnostics for bad weight
// rows are built off the hot path by rowError.
//
// FilterWeightBatch is the LocalMetropolis companion: the subset-product
// filter weight of one acceptance factor evaluated for a dense chain
// block in one pass, amortizing the mixed-radix base and the per-toggled-
// vertex index deltas across the block the way CondWeightsBatch amortizes
// the factor walk. The per-chain mask walk keeps the order and the
// early-exit-on-zero of the single-chain filterCells body, so the weights
// are bit-identical per chain.

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/state"
)

// SampleVertexSubset heat-baths vertex v in exactly the listed chains:
// conditional weight rows through the sweep plan, then one rng.Float64
// draw per listed chain, written straight into the lattice. chains must
// be in-range chain indices (engines pass them ascending so the RNG
// consumption order is deterministic, but the kernel does not require
// order); buf needs len(chains)·q entries. The lattice must have passed
// CheckAssigned. An empty subset is a no-op.
func (c *Compiled) SampleVertexSubset(l *state.Lattice, v int, chains []int32, buf []float64, sc *BatchScratch, rng *dist.Xoshiro) error {
	nb := len(chains)
	if nb == 0 {
		return nil
	}
	if v < 0 || v >= c.n {
		return fmt.Errorf("gibbs: batch conditional vertex %d out of range", v)
	}
	B := l.Chains()
	for _, ch := range chains {
		if ch < 0 || int(ch) >= B {
			return fmt.Errorf("gibbs: subset chain %d out of range for B=%d", ch, B)
		}
	}
	if l.N() < c.n {
		return fmt.Errorf("gibbs: batch lattice has %d vertices, need %d", l.N(), c.n)
	}
	if len(buf) < nb*c.q {
		return fmt.Errorf("gibbs: batch buffer has %d entries, need len(chains)·q = %d", len(buf), nb*c.q)
	}
	if sc == nil || len(sc.base) < nb {
		sc = NewBatchScratch(nb)
	}
	if cc := c.condForSample(); cc != nil {
		if cv := cc.at(v); cv != nil {
			if u8 := l.Raw8(); u8 != nil {
				return condSampleSubset(c.q, cv, u8, B, v, chains, sc, rng)
			}
			return condSampleSubset(c.q, cv, l.RawWide(), B, v, chains, sc, rng)
		}
	}
	w := buf[:nb*c.q]
	vp := &c.Plan().verts[v]
	if u8 := l.Raw8(); u8 != nil {
		return sampleSubsetCells(c.q, vp, u8, B, v, chains, w, sc, rng)
	}
	return sampleSubsetCells(c.q, vp, l.RawWide(), B, v, chains, w, sc, rng)
}

// VertexSubsetFn is a subset kernel bound to one lattice by
// BindVertexSubset: SampleVertexSubset with the argument validation and
// the cell-width dispatch hoisted out of the per-vertex call.
type VertexSubsetFn func(v int, chains []int32, buf []float64, sc *BatchScratch, rng *dist.Xoshiro) error

// BindVertexSubset validates the lattice against the engine once and
// returns the width-specialized subset kernel bound to its cells — the
// per-round fast path of the batched LubyGlauber engine, which calls the
// kernel once per free vertex. The returned function skips the per-call
// checks of SampleVertexSubset, so the caller owns their contracts: v is
// a valid vertex, chains lists in-range chain indices (ascending for a
// deterministic RNG order), buf holds len(chains)·q entries, sc is a
// scratch of the block size, and the lattice has passed CheckAssigned
// and keeps its backing arrays (no grow) for the lifetime of the
// binding. Weights, draws, and errors are exactly those of
// SampleVertexSubset.
func (c *Compiled) BindVertexSubset(l *state.Lattice) (VertexSubsetFn, error) {
	if l.N() < c.n {
		return nil, fmt.Errorf("gibbs: batch lattice has %d vertices, need %d", l.N(), c.n)
	}
	B := l.Chains()
	verts := c.Plan().verts
	q := c.q
	// The cache gate is hoisted with the rest of the validation: the bound
	// kernel keeps the mode it was bound with.
	cc := c.condForSample()
	if u8 := l.Raw8(); u8 != nil {
		return func(v int, chains []int32, buf []float64, sc *BatchScratch, rng *dist.Xoshiro) error {
			if len(chains) == 0 {
				return nil
			}
			if cc != nil {
				if cv := cc.at(v); cv != nil {
					return condSampleSubset(q, cv, u8, B, v, chains, sc, rng)
				}
			}
			return sampleSubsetCells(q, &verts[v], u8, B, v, chains, buf, sc, rng)
		}, nil
	}
	wide := l.RawWide()
	return func(v int, chains []int32, buf []float64, sc *BatchScratch, rng *dist.Xoshiro) error {
		if len(chains) == 0 {
			return nil
		}
		if cc != nil {
			if cv := cc.at(v); cv != nil {
				return condSampleSubset(q, cv, wide, B, v, chains, sc, rng)
			}
		}
		return sampleSubsetCells(q, &verts[v], wide, B, v, chains, buf, sc, rng)
	}, nil
}

// sampleSubsetCells is the width-specialized masked fused body, the
// subset twin of sampleVertexCells: straight-line register paths for the
// pair-only plans at q = 2 and q = 3, the buffered plan walk plus
// per-chain draw otherwise.
func sampleSubsetCells[T state.Cells](q int, vp *vertexPlan, cells []T, B, v int, chains []int32, w []float64, sc *BatchScratch, rng *dist.Xoshiro) error {
	if vp.pairOnly {
		switch q {
		case 2:
			return subsetPairOnlyQ2(vp, cells, B, v, chains, w, rng)
		case 3:
			return subsetPairOnlyQ3(vp, cells, B, v, chains, rng)
		}
	}
	subsetWeightRow(q, vp, cells, B, chains, w, sc)
	vbase := v * B
	if q == 2 {
		for i, ch := range chains {
			w0, w1 := w[2*i], w[2*i+1]
			total := w0 + w1
			if !(w0 >= 0 && w1 >= 0 && total > 0 && total <= math.MaxFloat64) {
				return rowError(w[2*i:2*i+2], v, int(ch))
			}
			// w0 ≥ 0 was just validated, so "w0 > 0 && u < w0" is
			// exactly "u < w0" (u ≥ 0 can never undercut a zero w0) and
			// the select is two set-flags ANDed — no branch to mispredict
			// on the random threshold outcome.
			u := rng.Float64() * total
			var ge, pos uint8
			if u >= w0 {
				ge = 1
			}
			if w1 > 0 {
				pos = 1
			}
			cells[vbase+int(ch)] = T(ge & pos)
		}
		return nil
	}
	for i, ch := range chains {
		row := w[i*q : (i+1)*q]
		total := 0.0
		ok := true
		for _, x := range row {
			if !(x >= 0) {
				ok = false
				break
			}
			total += x
		}
		if !ok || !(total > 0 && total <= math.MaxFloat64) {
			return rowError(row, v, int(ch))
		}
		u := rng.Float64() * total
		acc := 0.0
		last := -1
		for x, wx := range row {
			if wx <= 0 {
				continue
			}
			last = x
			acc += wx
			if u < acc {
				break
			}
		}
		cells[vbase+int(ch)] = T(last)
	}
	return nil
}

// subsetWeightRow is planWeightRow over an explicit chain-index list: the
// same op stream and multiplication order, with every per-chain access an
// indexed gather cells[u·B + chains[i]] instead of a contiguous slice.
func subsetWeightRow[T state.Cells](q int, vp *vertexPlan, cells []T, B int, chains []int32, w []float64, sc *BatchScratch) {
	nb := len(chains)
	if vp.prior == nil {
		for i := range w[:nb*q] {
			w[i] = 1
		}
	} else {
		for i := 0; i < nb; i++ {
			copy(w[i*q:(i+1)*q], vp.prior)
		}
	}
	q32 := int32(q)
	for oi := range vp.ops {
		op := &vp.ops[oi]
		switch op.kind {
		case opUnary:
			urow := op.row
			for i := 0; i < nb; i++ {
				row := w[i*q : (i+1)*q]
				for x := range row {
					row[x] *= urow[x]
				}
			}
		case opPair:
			ubase := int(op.u) * B
			table, su, sv := op.table, op.su, op.sv
			switch q32 {
			case 2:
				for i, ch := range chains {
					bi := int32(cells[ubase+int(ch)]) * su
					row := w[2*i : 2*i+2 : 2*i+2]
					row[0] *= table[bi]
					row[1] *= table[bi+sv]
				}
			case 3:
				for i, ch := range chains {
					bi := int32(cells[ubase+int(ch)]) * su
					row := w[3*i : 3*i+3 : 3*i+3]
					row[0] *= table[bi]
					row[1] *= table[bi+sv]
					row[2] *= table[bi+2*sv]
				}
			default:
				for i, ch := range chains {
					bi := int32(cells[ubase+int(ch)]) * su
					row := w[i*q : (i+1)*q]
					for x := int32(0); x < q32; x++ {
						row[x] *= table[bi+x*sv]
					}
				}
			}
		case opGeneric:
			base := sc.base[:nb]
			for i := range base {
				base[i] = 0
			}
			for j, u := range op.scope {
				ubase := int(u) * B
				st := op.strides[j]
				for i, ch := range chains {
					base[i] += int32(cells[ubase+int(ch)]) * st
				}
			}
			table, sv := op.table, op.sv
			switch q32 {
			case 2:
				for i := 0; i < nb; i++ {
					bi := base[i]
					row := w[2*i : 2*i+2 : 2*i+2]
					row[0] *= table[bi]
					row[1] *= table[bi+sv]
				}
			case 3:
				for i := 0; i < nb; i++ {
					bi := base[i]
					row := w[3*i : 3*i+3 : 3*i+3]
					row[0] *= table[bi]
					row[1] *= table[bi+sv]
					row[2] *= table[bi+2*sv]
				}
			default:
				for i := 0; i < nb; i++ {
					bi := base[i]
					row := w[i*q : (i+1)*q]
					for x := int32(0); x < q32; x++ {
						row[x] *= table[bi+x*sv]
					}
				}
			}
		case opClosure:
			f := op.f
			if len(sc.assign) < len(f.scope) {
				sc.assign = make([]int, len(f.scope))
			}
			assign := sc.assign[:len(f.scope)]
			for i, ch := range chains {
				for x := 0; x < q; x++ {
					for j, u := range f.scope {
						if u == op.u {
							assign[j] = x
							continue
						}
						assign[j] = int(cells[int(u)*B+int(ch)])
					}
					w[i*q+x] *= f.eval(assign)
				}
			}
		}
	}
}

// subsetPairOnlyQ2 is samplePairOnlyQ2 over a chain-index list. The walk
// runs ops-outer over the subset — op fields decoded once, the per-chain
// four-deep dependent multiply chains of the register version pipelined
// across chains in the two buffer columns — but each chain still sees
// prior then ops in factor order (bit-identical weights), and the
// threshold draws still consume one uniform per chain in list order.
func subsetPairOnlyQ2[T state.Cells](vp *vertexPlan, cells []T, B, v int, chains []int32, buf []float64, rng *dist.Xoshiro) error {
	p0, p1 := 1.0, 1.0
	if vp.prior != nil {
		p0, p1 = vp.prior[0], vp.prior[1]
	}
	nb := len(chains)
	w0 := buf[:nb]
	w1 := buf[nb : 2*nb]
	for j := range w0 {
		w0[j] = p0
		w1[j] = p1
	}
	ops := vp.ops
	for oi := range ops {
		op := &ops[oi]
		if op.kind == opPair {
			table, su, sv := op.table, op.su, op.sv
			ubase := int(op.u) * B
			if len(table) == 4 {
				// The 2×2 pair table as a fixed array: masked indices
				// (always < 4 — cells hold symbols below q) let every
				// lookup run without a bounds check.
				t := (*[4]float64)(table)
				for j, ch := range chains {
					bi := (int32(cells[ubase+int(ch)]) * su) & 3
					w0[j] *= t[bi]
					w1[j] *= t[(bi+sv)&3]
				}
				continue
			}
			for j, ch := range chains {
				bi := int32(cells[ubase+int(ch)]) * su
				w0[j] *= table[bi]
				w1[j] *= table[bi+sv]
			}
		} else {
			r0, r1 := op.row[0], op.row[1]
			for j := range w0 {
				w0[j] *= r0
				w1[j] *= r1
			}
		}
	}
	vbase := v * B
	for j, ch := range chains {
		a, b := w0[j], w1[j]
		total := a + b
		if !(a >= 0 && b >= 0 && total > 0 && total <= math.MaxFloat64) {
			return rowError([]float64{a, b}, v, int(ch))
		}
		// Same branchless select as the generic q = 2 loop: a ≥ 0 is
		// validated, so the drawn symbol is 1 exactly when u clears a and
		// symbol 1 carries weight.
		u := rng.Float64() * total
		var ge, pos uint8
		if u >= a {
			ge = 1
		}
		if b > 0 {
			pos = 1
		}
		cells[vbase+int(ch)] = T(ge & pos)
	}
	return nil
}

// subsetPairOnlyQ3 is samplePairOnlyQ3 over a chain-index list.
func subsetPairOnlyQ3[T state.Cells](vp *vertexPlan, cells []T, B, v int, chains []int32, rng *dist.Xoshiro) error {
	p0, p1, p2 := 1.0, 1.0, 1.0
	if vp.prior != nil {
		p0, p1, p2 = vp.prior[0], vp.prior[1], vp.prior[2]
	}
	ops := vp.ops
	vbase := v * B
	for _, ch := range chains {
		c := int(ch)
		w0, w1, w2 := p0, p1, p2
		for oi := range ops {
			op := &ops[oi]
			if op.kind == opPair {
				bi := int32(cells[int(op.u)*B+c]) * op.su
				w0 *= op.table[bi]
				w1 *= op.table[bi+op.sv]
				w2 *= op.table[bi+2*op.sv]
			} else {
				w0 *= op.row[0]
				w1 *= op.row[1]
				w2 *= op.row[2]
			}
		}
		total := w0 + w1 + w2
		if !(w0 >= 0 && w1 >= 0 && w2 >= 0 && total > 0 && total <= math.MaxFloat64) {
			return rowError([]float64{w0, w1, w2}, v, c)
		}
		u := rng.Float64() * total
		var x T
		switch {
		case u < w0:
			x = 0
		case u < w0+w1:
			x = 1
		case w2 > 0:
			x = 2
		case w1 > 0:
			x = 1
		default:
			x = 0
		}
		cells[vbase+c] = x
	}
	return nil
}

// FilterWeightBatch fills out[0:c1−c0] with the LocalMetropolis filter
// weights of acceptance factor i between chains c of old (current) and
// prop (proposal), c0 ≤ c < c1 — the batched equivalent of calling
// FilterWeightCells once per chain, bit-identical per chain. The factor
// must be table-backed (ErrNotTabled otherwise; closure-backed acceptance
// factors are rejected upstream by the rules compiler). Both lattices
// must have passed CheckAssigned — the batch kernel drops the per-cell
// validity checks of the single-chain body, exactly like the plan
// kernels. sc amortizes the base and delta rows (nil allocates).
func (c *Compiled) FilterWeightBatch(i int, old, prop *state.Lattice, c0, c1 int, verts []int, out []float64, sc *BatchScratch) error {
	if i < 0 || i >= len(c.factors) {
		return fmt.Errorf("gibbs: filter factor %d out of range", i)
	}
	nb := c1 - c0
	if c0 < 0 || nb <= 0 || c1 > old.Chains() || c1 > prop.Chains() {
		return fmt.Errorf("gibbs: filter chain range [%d,%d) invalid for B=%d/%d", c0, c1, old.Chains(), prop.Chains())
	}
	if old.N() < c.n || prop.N() < c.n {
		return fmt.Errorf("gibbs: filter lattices have %d/%d vertices, need %d", old.N(), prop.N(), c.n)
	}
	if len(out) < nb {
		return fmt.Errorf("gibbs: filter output has %d entries, need c1−c0 = %d", len(out), nb)
	}
	k := len(verts)
	if k == 0 {
		for i := range out[:nb] {
			out[i] = 1
		}
		return nil
	}
	if k > filterMaxToggle {
		return fmt.Errorf("gibbs: filter over %d toggled vertices (max %d)", k, filterMaxToggle)
	}
	f := &c.factors[i]
	if f.table == nil {
		return fmt.Errorf("gibbs: filter factor %d: %w", i, ErrNotTabled)
	}
	if sc == nil || len(sc.base) < nb {
		sc = NewBatchScratch(nb)
	}
	if o8, p8 := old.Raw8(), prop.Raw8(); o8 != nil && p8 != nil {
		return filterBatchCells(f, o8, old.Chains(), p8, prop.Chains(), c0, c1, verts, out[:nb], sc)
	}
	if ow, pw := old.RawWide(), prop.RawWide(); ow != nil && pw != nil {
		return filterBatchCells(f, ow, old.Chains(), pw, prop.Chains(), c0, c1, verts, out[:nb], sc)
	}
	return fmt.Errorf("gibbs: filter lattices have mixed cell representations")
}

// filterBatchCells is the width-specialized batched filter body: the
// all-old base index accumulates vectorized over the chain block (one
// multiply-add per scope occurrence per chain, contiguous reads), each
// toggled vertex's index delta likewise, and then each chain runs the
// single-chain mask walk — same mask order, same multiplication order,
// same early exit on a zero term as filterCells.
func filterBatchCells[T state.Cells](f *cfactor, old []T, oB int, prop []T, pB int, c0, c1 int, verts []int, out []float64, sc *BatchScratch) error {
	nb := c1 - c0
	if len(verts) == 2 && len(f.scope) == 2 &&
		((int(f.scope[0]) == verts[0] && int(f.scope[1]) == verts[1]) ||
			(int(f.scope[0]) == verts[1] && int(f.scope[1]) == verts[0])) {
		// Pair factor with both scope vertices toggled — the whole grid
		// of every pairwise interaction model. The three mask terms are
		// direct table lookups at the mixed old/new indices, so the walk
		// collapses to one pass over the four cell rows: no base or
		// delta scratch, no per-mask bit loop. Multiplication order is
		// the mask order 01, 10, 11 of the generic walk (bit-identical
		// for the finite nonnegative tables the compiler admits).
		var s0, s1 int32
		if int(f.scope[0]) == verts[0] {
			s0, s1 = f.strides[0], f.strides[1]
		} else {
			s0, s1 = f.strides[1], f.strides[0]
		}
		o0 := old[verts[0]*oB+c0 : verts[0]*oB+c1]
		o1 := old[verts[1]*oB+c0 : verts[1]*oB+c1]
		n0 := prop[verts[0]*pB+c0 : verts[0]*pB+c0+nb]
		n1 := prop[verts[1]*pB+c0 : verts[1]*pB+c0+nb]
		res := out[:nb]
		if t := f.table; len(t) == 4 {
			// 2×2 table as a fixed array: masked indices (always < 4 —
			// cells hold symbols below q) skip the bounds checks.
			ta := (*[4]float64)(t)
			for i := range res {
				a0 := int32(o0[i]) * s0
				a1 := int32(o1[i]) * s1
				b0 := int32(n0[i]) * s0
				b1 := int32(n1[i]) * s1
				w := ta[(b0+a1)&3]
				w *= ta[(a0+b1)&3]
				w *= ta[(b0+b1)&3]
				res[i] = w
			}
			return nil
		}
		t := f.table
		for i := range res {
			a0 := int32(o0[i]) * s0
			a1 := int32(o1[i]) * s1
			b0 := int32(n0[i]) * s0
			b1 := int32(n1[i]) * s1
			w := t[b0+a1]
			w *= t[a0+b1]
			w *= t[b0+b1]
			res[i] = w
		}
		return nil
	}
	base := sc.base[:nb]
	for i := range base {
		base[i] = 0
	}
	for j, u := range f.scope {
		row := old[int(u)*oB+c0 : int(u)*oB+c1]
		st := f.strides[j]
		for i, x := range row {
			base[i] += int32(x) * st
		}
	}
	k := len(verts)
	deltas := sc.deltaBuf(k * nb)
	for b, d := range verts {
		drow := deltas[b*nb : (b+1)*nb]
		for i := range drow {
			drow[i] = 0
		}
		found := false
		for j, u := range f.scope {
			if int(u) != d {
				continue
			}
			found = true
			st := f.strides[j]
			orow := old[d*oB+c0 : d*oB+c1]
			prow := prop[d*pB+c0 : d*pB+c1]
			for i := range orow {
				drow[i] += (int32(prow[i]) - int32(orow[i])) * st
			}
		}
		if !found {
			return fmt.Errorf("gibbs: filter: vertex %d not in factor scope", d)
		}
	}
	table := f.table
	for i := 0; i < nb; i++ {
		w := 1.0
		bi := base[i]
		for mask := 1; mask < 1<<k; mask++ {
			idx := bi
			for b := 0; b < k; b++ {
				if mask&(1<<b) != 0 {
					idx += deltas[b*nb+i]
				}
			}
			w *= table[idx]
			if w == 0 {
				break
			}
		}
		out[i] = w
	}
	return nil
}
