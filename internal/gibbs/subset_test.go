package gibbs

// subset_test.go pins the masked kernels to their per-chain references:
// SampleVertexSubset must draw exactly what the reference walk over the
// interpreted weights draws for the same uniforms, touch only the listed
// chains, and agree bit-for-bit with the single-chain heat-bath on a
// one-chain subset; FilterWeightBatch must reproduce FilterWeightLattice
// per chain across arities and representations.

import (
	"errors"
	"testing"

	"repro/internal/dist"
	"repro/internal/state"
)

// TestSampleVertexSubsetMatchesReference drives the masked fused kernel
// over irregular chain subsets on all three plan paths (q=2 register,
// q=3 register, buffered mixed-arity) and both representations, checking
// each listed chain against the reference walk and each unlisted chain
// for bit-exact preservation.
func TestSampleVertexSubsetMatchesReference(t *testing.T) {
	for _, spec := range []struct {
		name string
		s    *Spec
	}{{"q2", unaryFirstSpec(t)}, {"q3-pair", pairSpecQ3(t)}, {"q3-mixed", batchSpec(t)}} {
		t.Run(spec.name, func(t *testing.T) {
			for _, rep := range []struct {
				name string
				wide bool
			}{{"compact", false}, {"wide", true}} {
				t.Run(rep.name, func(t *testing.T) {
					eng := Compile(spec.s)
					n, q := eng.N(), eng.Q()
					const B = 8
					if rep.wide {
						defer state.SetCompactLimitForTest(0)()
					}
					lat, err := state.Pack(n, q, randomChains(n, q, B, 31))
					if err != nil {
						t.Fatal(err)
					}
					if lat.Compact() == rep.wide {
						t.Fatalf("lattice Compact() = %v with wide=%v", lat.Compact(), rep.wide)
					}
					if err := lat.CheckAssigned(); err != nil {
						t.Fatal(err)
					}
					subsets := [][]int32{
						{0}, {B - 1}, {2, 5}, {0, 3, 4, 7}, {1, 2, 3, 4, 5, 6}, {0, 1, 2, 3, 4, 5, 6, 7},
					}
					sc := NewBatchScratch(B)
					buf := make([]float64, B*q)
					ref := make([]float64, B*q)
					before := make([]int, B)
					rng := dist.NewXoshiro(11, 0)
					for sweep := 0; sweep < 8; sweep++ {
						for v := 0; v < n; v++ {
							sub := subsets[(sweep*n+v)%len(subsets)]
							in := make(map[int32]bool, len(sub))
							for _, ch := range sub {
								in[ch] = true
							}
							for c := 0; c < B; c++ {
								before[c] = lat.Get(v, c)
							}
							// The reference draw replays the same generator
							// against the interpreted weights.
							shadow := rng
							w, err := eng.CondWeightsBatch(lat, v, 0, B, ref, sc)
							if err != nil {
								t.Fatal(err)
							}
							want := make(map[int32]int, len(sub))
							for _, ch := range sub {
								row := w[int(ch)*q : (int(ch)+1)*q]
								total := 0.0
								for _, x := range row {
									total += x
								}
								u := shadow.Float64() * total
								acc := 0.0
								pick := -1
								for x, wx := range row {
									if wx <= 0 {
										continue
									}
									pick = x
									acc += wx
									if u < acc {
										break
									}
								}
								want[ch] = pick
							}
							if err := eng.SampleVertexSubset(lat, v, sub, buf, sc, &rng); err != nil {
								t.Fatal(err)
							}
							for c := 0; c < B; c++ {
								got := lat.Get(v, c)
								if in[int32(c)] {
									if got != want[int32(c)] {
										t.Fatalf("sweep %d v=%d chain %d: subset drew %d, reference walk %d", sweep, v, c, got, want[int32(c)])
									}
								} else if got != before[c] {
									t.Fatalf("sweep %d v=%d chain %d: unlisted chain changed %d -> %d", sweep, v, c, before[c], got)
								}
							}
						}
					}
				})
			}
		})
	}
}

// TestSampleVertexSubsetMatchesHeatBath is the gibbs-layer half of the
// B=1 agreement contract: a one-chain subset must update exactly like the
// single-chain heat-bath consuming the same uniform.
func TestSampleVertexSubsetMatchesHeatBath(t *testing.T) {
	for _, spec := range []struct {
		name string
		s    *Spec
	}{{"q2", unaryFirstSpec(t)}, {"q3-mixed", batchSpec(t)}} {
		t.Run(spec.name, func(t *testing.T) {
			eng := Compile(spec.s)
			n, q := eng.N(), eng.Q()
			const B = 4
			chains := randomChains(n, q, B, 53)
			lat, err := state.Pack(n, q, chains)
			if err != nil {
				t.Fatal(err)
			}
			mirror, err := state.Pack(n, q, chains)
			if err != nil {
				t.Fatal(err)
			}
			if err := lat.CheckAssigned(); err != nil {
				t.Fatal(err)
			}
			buf := make([]float64, q)
			cond := make([]float64, q)
			rng := dist.NewXoshiro(99, 1)
			shadow := rng
			for sweep := 0; sweep < 10; sweep++ {
				for v := 0; v < n; v++ {
					c := (sweep + v) % B
					if err := eng.SampleVertexSubset(lat, v, []int32{int32(c)}, buf, nil, &rng); err != nil {
						t.Fatal(err)
					}
					w, err := eng.CondWeightsLattice(mirror, c, v, cond)
					if err != nil {
						t.Fatal(err)
					}
					x, err := dist.SampleWeightsX(w, &shadow)
					if err != nil {
						t.Fatal(err)
					}
					mirror.Set(v, c, x)
					if got := lat.Get(v, c); got != x {
						t.Fatalf("sweep %d v=%d chain %d: subset %d != heat-bath %d", sweep, v, c, got, x)
					}
				}
			}
		})
	}
}

// TestSampleVertexSubsetRejectsBadInput covers the argument checks and the
// empty-subset no-op.
func TestSampleVertexSubsetRejectsBadInput(t *testing.T) {
	eng := Compile(batchSpec(t))
	n, q := eng.N(), eng.Q()
	const B = 3
	lat, err := state.Pack(n, q, randomChains(n, q, B, 3))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, B*q)
	rng := dist.NewXoshiro(1, 0)
	if err := eng.SampleVertexSubset(lat, 0, nil, buf, nil, &rng); err != nil {
		t.Errorf("empty subset: err = %v, want nil", err)
	}
	if err := eng.SampleVertexSubset(lat, -1, []int32{0}, buf, nil, &rng); err == nil {
		t.Error("negative vertex accepted")
	}
	if err := eng.SampleVertexSubset(lat, 0, []int32{int32(B)}, buf, nil, &rng); err == nil {
		t.Error("out-of-range chain accepted")
	}
	if err := eng.SampleVertexSubset(lat, 0, []int32{-1}, buf, nil, &rng); err == nil {
		t.Error("negative chain accepted")
	}
	if err := eng.SampleVertexSubset(lat, 0, []int32{0, 1}, buf[:1], nil, &rng); err == nil {
		t.Error("short buffer accepted")
	}
	short, err := state.New(n-1, B, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SampleVertexSubset(short, 0, []int32{0}, buf, nil, &rng); err == nil {
		t.Error("short lattice accepted")
	}
}

// TestFilterWeightBatchMatchesSingle pins the batched filter to
// FilterWeightLattice per chain on every tabled factor, across toggled
// subsets of each factor's scope, chain spans, and representations.
func TestFilterWeightBatchMatchesSingle(t *testing.T) {
	for _, rep := range []struct {
		name string
		wide bool
	}{{"compact", false}, {"wide", true}} {
		t.Run(rep.name, func(t *testing.T) {
			eng := Compile(batchSpec(t))
			n, q := eng.N(), eng.Q()
			const B = 7
			if rep.wide {
				defer state.SetCompactLimitForTest(0)()
			}
			old, err := state.Pack(n, q, randomChains(n, q, B, 17))
			if err != nil {
				t.Fatal(err)
			}
			prop, err := state.Pack(n, q, randomChains(n, q, B, 18))
			if err != nil {
				t.Fatal(err)
			}
			sc := NewBatchScratch(B)
			out := make([]float64, B)
			for i := range eng.factors {
				f := &eng.factors[i]
				if f.table == nil {
					continue
				}
				// Distinct scope vertices, then every nonempty prefix of them
				// as the toggled set (covers k = 1..arity).
				var scope []int
				for _, u := range f.scope {
					seen := false
					for _, s := range scope {
						if s == int(u) {
							seen = true
							break
						}
					}
					if !seen {
						scope = append(scope, int(u))
					}
				}
				for k := 1; k <= len(scope); k++ {
					verts := scope[:k]
					for _, span := range [][2]int{{0, B}, {2, 5}, {B - 1, B}} {
						c0, c1 := span[0], span[1]
						if err := eng.FilterWeightBatch(i, old, prop, c0, c1, verts, out, sc); err != nil {
							t.Fatal(err)
						}
						for c := c0; c < c1; c++ {
							want, err := eng.FilterWeightLattice(i, old, prop, c, verts)
							if err != nil {
								t.Fatal(err)
							}
							if out[c-c0] != want {
								t.Fatalf("factor %d verts %v chain %d: batch %v != single %v", i, verts, c, out[c-c0], want)
							}
						}
					}
				}
			}
		})
	}
}

// TestFilterWeightBatchValidation covers the argument and capability
// checks: bad factor index, bad range, short output, closure factors
// (ErrNotTabled), oversized toggle sets, vertices outside the scope, and
// the empty-toggle identity row.
func TestFilterWeightBatchValidation(t *testing.T) {
	eng := CompileCap(batchSpec(t), 0) // every factor closure-backed
	n, q := eng.N(), eng.Q()
	const B = 3
	old, err := state.Pack(n, q, randomChains(n, q, B, 5))
	if err != nil {
		t.Fatal(err)
	}
	prop, err := state.Pack(n, q, randomChains(n, q, B, 6))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, B)
	closure := -1
	for i := range eng.factors {
		if eng.factors[i].table == nil && len(eng.factors[i].scope) > 0 {
			closure = i
			break
		}
	}
	if closure < 0 {
		t.Fatal("capped compile produced no closure-backed factor")
	}
	cv := int(eng.factors[closure].scope[0])
	if err := eng.FilterWeightBatch(closure, old, prop, 0, B, []int{cv}, out, nil); !errors.Is(err, ErrNotTabled) {
		t.Errorf("closure factor: err = %v, want ErrNotTabled", err)
	}
	eng = Compile(batchSpec(t))
	if err := eng.FilterWeightBatch(-1, old, prop, 0, B, []int{0}, out, nil); err == nil {
		t.Error("negative factor accepted")
	}
	if err := eng.FilterWeightBatch(0, old, prop, 2, 1, []int{0}, out, nil); err == nil {
		t.Error("empty chain range accepted")
	}
	if err := eng.FilterWeightBatch(0, old, prop, 0, B+1, []int{0}, out, nil); err == nil {
		t.Error("over-range chains accepted")
	}
	if err := eng.FilterWeightBatch(0, old, prop, 0, B, []int{0}, out[:1], nil); err == nil {
		t.Error("short output accepted")
	}
	big := make([]int, filterMaxToggle+1)
	if err := eng.FilterWeightBatch(0, old, prop, 0, B, big, out, nil); err == nil {
		t.Error("oversized toggle set accepted")
	}
	// Factor 0 is "tri" with scope {0,1,2}: vertex 4 is outside it.
	if err := eng.FilterWeightBatch(0, old, prop, 0, B, []int{4}, out, nil); err == nil {
		t.Error("out-of-scope vertex accepted")
	}
	if err := eng.FilterWeightBatch(0, old, prop, 0, B, nil, out, nil); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < B; c++ {
		if out[c] != 1 {
			t.Errorf("empty toggle set: out[%d] = %v, want 1", c, out[c])
		}
	}
}
