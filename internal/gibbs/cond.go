package gibbs

// cond.go: the conditional-CDF cache — per-vertex lookup tables that
// replace the sweep-plan walk of the fused batch kernels with a single
// indexed load per chain. A vertex's heat-bath conditional depends only on
// its neighborhood (the distinct non-v vertices across its factor scopes),
// so when q^deg(v) is small every weight row the plan walk can ever
// produce is enumerable up front: the cache stores one cumulative weight
// row per big-endian mixed-radix neighborhood code, built by running the
// existing planWeightRow per code so each row's partial sums are
// bit-identical (math.Float64bits) to the accumulation the plan path
// performs at draw time. The hot loop for a cached vertex is: gather the
// neighbor cells of the chain block into codes (one multiply-accumulate
// per (neighbor, chain), a shift-or at q = 2), index the CDF row, and do
// one branchless threshold draw per chain — no factor walk, no per-draw
// validation, no weight buffer.
//
// Draw equivalence (the load-bearing argument): dist.sampleWalk returns
// the first positive-weight symbol whose running total exceeds
// u = Float64()·total, with rounding slack falling to the last positive
// symbol. The stored row cum[x] = Σ_{j≤x} w[j] accumulates zeros too, but
// adding 0.0 to a nonnegative float is the exact identity, so cum[x]
// equals the walk's accumulator bitwise, and the first x with u < cum[x]
// necessarily has w[x] > 0 (a zero-weight symbol repeats the previous
// cumulative value, so any u below it was already caught). Overflow
// (u lands at or past cum[q−1] through rounding) falls to the precomputed
// last positive symbol. Every path consumes exactly one uniform per chain,
// so the RNG streams — and therefore the engine-equivalence and B = 1
// bit-reproducibility contracts of PRs 6–7 — are unchanged no matter
// which vertices are cached.
//
// Rows whose plan weights are invalid (zero-mass, negative, NaN, or
// infinite — reachable codes need not be feasible) are marked bad and
// store the raw weight row instead of cumulative sums; a draw landing on
// one rebuilds the plan path's exact error through rowError without
// consuming a uniform, exactly like the plan kernels' validate-then-draw
// order.
//
// The cache is built lazily and sync.Once-shared alongside Plan(), is
// invalidation-free (the compiled engine is immutable), and reports its
// footprint through CondStats for benchmarks and cmd/lsample.

import (
	"math"
	"slices"

	"repro/internal/dist"
	"repro/internal/state"
)

// DefaultCondCap is the default per-vertex entry cap of the conditional-CDF
// cache: a vertex is cacheable when q^deg(v) · q — one q-wide row per
// neighborhood code — fits under it. It is the cache's analogue of
// DefaultTableCap (see the shared powSize arithmetic in gibbs.go): the
// table cap bounds one factor's assignment space, the cond cap bounds one
// vertex's joint neighborhood space. Bounded-degree small-q models (the
// whole corpus) sit far below both.
const DefaultCondCap = 1 << 16

// DefaultCondBytes is the default per-instance byte budget of the cache:
// vertices are admitted greedily in vertex order until their rows, code
// metadata, and neighbor lists would exceed it; the rest stay on the plan
// walk. CondOn lifts this budget (the entry cap still applies per vertex).
const DefaultCondBytes = 16 << 20

// condEntryCap and condByteBudget are the live limits, overridable by
// SetCondCapForTest.
var (
	condEntryCap   = DefaultCondCap
	condByteBudget = int64(DefaultCondBytes)
)

// SetCondCapForTest overrides the per-vertex entry cap and the per-instance
// byte budget used by subsequently built caches and returns a restore
// function — the cache twin of state.SetCompactLimitForTest. It must not
// run concurrently with cache builds; already-built caches are unaffected
// (the cache is invalidation-free).
func SetCondCapForTest(entries int, bytes int64) (restore func()) {
	oldE, oldB := condEntryCap, condByteBudget
	condEntryCap, condByteBudget = entries, bytes
	return func() { condEntryCap, condByteBudget = oldE, oldB }
}

// CondMode selects whether the fused sampling kernels consult the
// conditional-CDF cache.
type CondMode int32

const (
	// CondAuto caches every vertex under DefaultCondCap entries, greedily
	// in vertex order within the DefaultCondBytes instance budget — the
	// default.
	CondAuto CondMode = iota
	// CondOn caches every vertex under the entry cap regardless of the
	// instance byte budget.
	CondOn
	// CondOff disables the cache: every draw runs the plan walk.
	CondOff
)

// SetCondMode sets the engine's cache mode. CondOff takes effect on the
// next kernel call (subset kernels bound by BindVertexSubset keep the mode
// they were bound with); CondAuto vs CondOn is read once when the cache is
// first built, so set it before the first sampling call or Cond use.
func (c *Compiled) SetCondMode(m CondMode) { c.condMode.Store(int32(m)) }

// CondMode returns the engine's current cache mode.
func (c *Compiled) CondMode() CondMode { return CondMode(c.condMode.Load()) }

// condBad marks a neighborhood code whose weight row is invalid
// (zero-mass or non-finite); its row slot stores the raw weights so the
// fallback error is built from exactly the values the plan walk produces.
const condBad = 0xFF

// condVertex is one vertex's lookup table: rows holds ncodes = q^deg(v)
// cumulative weight rows of q entries each, indexed by the big-endian
// mixed-radix code over the ascending neighbor list, and meta holds each
// code's last positive symbol (the rounding-slack target) or condBad.
// rows == nil means the vertex is not cached.
type condVertex struct {
	nbrs []int32
	rows []float64
	meta []uint8
}

// CondCache is the conditional-CDF cache of a Compiled engine: one
// condVertex per vertex, immutable after construction and safe for
// concurrent use.
type CondCache struct {
	q      int
	verts  []condVertex
	cached int
	bytes  int64
}

// CondStats summarizes a cache for footprint reporting: how many vertices
// carry tables, out of how many, at what byte cost.
type CondStats struct {
	Cached int
	Total  int
	Bytes  int64
}

// Cond returns the engine's conditional-CDF cache, building it on first
// call (which also builds the sweep plan). The build honors the mode,
// entry cap, and byte budget in effect at that moment and is never
// invalidated.
func (c *Compiled) Cond() *CondCache {
	c.condOnce.Do(func() { c.cond = buildCond(c, c.CondMode()) })
	return c.cond
}

// CondStats reports the cache footprint, building the cache if needed.
// Under CondOff nothing is cached and no build happens.
func (c *Compiled) CondStats() CondStats {
	if c.CondMode() == CondOff {
		return CondStats{Total: c.n}
	}
	cc := c.Cond()
	return CondStats{Cached: cc.cached, Total: c.n, Bytes: cc.bytes}
}

// condForSample returns the cache when the engine's mode enables it, nil
// under CondOff — the per-call gate of the sampling kernels.
func (c *Compiled) condForSample() *CondCache {
	if c.CondMode() == CondOff {
		return nil
	}
	return c.Cond()
}

// at returns vertex v's table, nil when v is not cached.
func (cc *CondCache) at(v int) *condVertex {
	cv := &cc.verts[v]
	if cv.rows == nil {
		return nil
	}
	return cv
}

// buildCond enumerates the eligible vertices' conditionals through the
// sweep plan. Each code's row is produced by planWeightRow on a synthetic
// single-chain cell array holding the decoded neighborhood — the exact
// generic body both lattice widths run, so the stored partial sums match
// the plan path's draw-time accumulation bitwise on compact and wide
// lattices alike.
func buildCond(c *Compiled, mode CondMode) *CondCache {
	cc := &CondCache{q: c.q, verts: make([]condVertex, c.n)}
	if c.q < 1 || c.q > condBad {
		// meta bytes hold last positive symbols, so q must stay below the
		// condBad sentinel; alphabets past 254 symbols are uncacheable.
		return cc
	}
	p := c.Plan()
	cells := make([]uint8, c.n)
	w := make([]float64, c.q)
	sc := NewBatchScratch(1)
	for v := 0; v < c.n; v++ {
		vp := &p.verts[v]
		nbrs := condNeighbors(vp, v)
		entries, ok := powSize(c.q, len(nbrs)+1, int64(condEntryCap))
		if !ok {
			continue
		}
		ncodes := int(entries) / c.q
		sz := entries*8 + int64(ncodes) + int64(len(nbrs))*4
		if mode != CondOn && cc.bytes+sz > condByteBudget {
			continue
		}
		cv := &cc.verts[v]
		cv.nbrs = nbrs
		cv.rows = make([]float64, int(entries))
		cv.meta = make([]uint8, ncodes)
		for code := 0; code < ncodes; code++ {
			rem := code
			for j := len(nbrs) - 1; j >= 0; j-- {
				cells[nbrs[j]] = uint8(rem % c.q)
				rem /= c.q
			}
			planWeightRow(c.q, vp, cells, 1, 0, 1, w, sc)
			row := cv.rows[code*c.q : (code+1)*c.q]
			acc := 0.0
			last := -1
			ok := true
			for x, wx := range w {
				if !(wx >= 0) || math.IsInf(wx, 0) {
					ok = false
				}
				if wx > 0 {
					last = x
				}
				acc += wx
				row[x] = acc
			}
			if !ok || !(acc > 0 && acc <= math.MaxFloat64) {
				copy(row, w)
				cv.meta[code] = condBad
				continue
			}
			cv.meta[code] = uint8(last)
		}
		cc.bytes += sz
		cc.cached++
	}
	return cc
}

// condNeighbors returns the distinct non-v vertices across all of the
// vertex plan's op scopes, ascending — the variables the conditional
// actually reads (unary ops and the prior are chain-independent).
func condNeighbors(vp *vertexPlan, v int) []int32 {
	var nbrs []int32
	add := func(u int32) {
		if int(u) == v || slices.Contains(nbrs, u) {
			return
		}
		nbrs = append(nbrs, u)
	}
	for i := range vp.ops {
		op := &vp.ops[i]
		switch op.kind {
		case opPair:
			add(op.u)
		case opGeneric:
			for _, u := range op.scope {
				add(u)
			}
		case opClosure:
			for _, u := range op.f.scope {
				add(u)
			}
		}
	}
	slices.Sort(nbrs)
	return nbrs
}

// condGatherDense fills codes[0:c1−c0] with the neighborhood codes of the
// dense chain block: big-endian mixed-radix accumulation, neighbor-outer
// over contiguous cell rows, strength-reduced to a shift-or at q = 2 and a
// constant-multiply at q = 3.
func condGatherDense[T state.Cells](q int, nbrs []int32, cells []T, B, c0, c1 int, codes []int32) {
	for i := range codes {
		codes[i] = 0
	}
	switch q {
	case 2:
		for _, u := range nbrs {
			nrow := cells[int(u)*B+c0 : int(u)*B+c1]
			for i, x := range nrow {
				codes[i] = codes[i]<<1 | int32(x)
			}
		}
	case 3:
		for _, u := range nbrs {
			nrow := cells[int(u)*B+c0 : int(u)*B+c1]
			for i, x := range nrow {
				codes[i] = codes[i]*3 + int32(x)
			}
		}
	default:
		q32 := int32(q)
		for _, u := range nbrs {
			nrow := cells[int(u)*B+c0 : int(u)*B+c1]
			for i, x := range nrow {
				codes[i] = codes[i]*q32 + int32(x)
			}
		}
	}
}

// condGatherSubset is condGatherDense over an explicit chain-index list.
func condGatherSubset[T state.Cells](q int, nbrs []int32, cells []T, B int, chains []int32, codes []int32) {
	for i := range codes {
		codes[i] = 0
	}
	switch q {
	case 2:
		for _, u := range nbrs {
			ubase := int(u) * B
			for i, ch := range chains {
				codes[i] = codes[i]<<1 | int32(cells[ubase+int(ch)])
			}
		}
	case 3:
		for _, u := range nbrs {
			ubase := int(u) * B
			for i, ch := range chains {
				codes[i] = codes[i]*3 + int32(cells[ubase+int(ch)])
			}
		}
	default:
		q32 := int32(q)
		for _, u := range nbrs {
			ubase := int(u) * B
			for i, ch := range chains {
				codes[i] = codes[i]*q32 + int32(cells[ubase+int(ch)])
			}
		}
	}
}

// condSampleDense is the cached twin of sampleVertexCells: codes for the
// chain block (into the sc.base scratch the plan walk would otherwise
// use), then one threshold draw per chain against the indexed cumulative
// row. A bad code surfaces the plan path's exact rowError before its
// chain's uniform is drawn.
func condSampleDense[T state.Cells](q int, cv *condVertex, cells []T, B, v, c0, c1 int, sc *BatchScratch, rng *dist.Xoshiro) error {
	nb := c1 - c0
	if nb == 1 {
		// Single-chain block (B = 1 engines, ragged tails): the code is a
		// scalar accumulation — no scratch row, no per-neighbor slicing.
		code := 0
		for _, u := range cv.nbrs {
			code = code*q + int(cells[int(u)*B+c0])
		}
		m := cv.meta[code]
		row := cv.rows[code*q : (code+1)*q]
		if m == condBad {
			return rowError(row, v, c0)
		}
		cells[v*B+c0] = T(CondDrawCum(row, int(m), rng.Float64()))
		return nil
	}
	codes := sc.base[:nb]
	condGatherDense(q, cv.nbrs, cells, B, c0, c1, codes)
	rows, meta := cv.rows, cv.meta
	out := cells[v*B+c0 : v*B+c1]
	switch q {
	case 2:
		for i := range out {
			code := codes[i]
			m := meta[code]
			if m == condBad {
				return rowError(rows[2*code:2*code+2], v, c0+i)
			}
			cum0, total := rows[2*code], rows[2*code+1]
			// Branchless select, exactly the q = 2 plan draw: the symbol is
			// 1 iff u clears cum0 and symbol 1 carries weight (m is the
			// last positive symbol, 0 or 1).
			u := rng.Float64() * total
			var ge uint8
			if u >= cum0 {
				ge = 1
			}
			out[i] = T(ge & m)
		}
	case 3:
		for i := range out {
			code := codes[i]
			m := meta[code]
			if m == condBad {
				return rowError(rows[3*code:3*code+3], v, c0+i)
			}
			cum0, cum1, total := rows[3*code], rows[3*code+1], rows[3*code+2]
			u := rng.Float64() * total
			var x T
			switch {
			case u < cum0:
				x = 0
			case u < cum1:
				x = 1
			default:
				x = T(m)
			}
			out[i] = x
		}
	default:
		for i := range out {
			code := int(codes[i])
			m := meta[code]
			row := rows[code*q : (code+1)*q]
			if m == condBad {
				return rowError(row, v, c0+i)
			}
			u := rng.Float64() * row[q-1]
			x := int(m)
			for j, cum := range row {
				if u < cum {
					x = j
					break
				}
			}
			out[i] = T(x)
		}
	}
	return nil
}

// condSampleSubset is condSampleDense over an explicit chain-index list —
// the cached twin of sampleSubsetCells.
func condSampleSubset[T state.Cells](q int, cv *condVertex, cells []T, B, v int, chains []int32, sc *BatchScratch, rng *dist.Xoshiro) error {
	nb := len(chains)
	codes := sc.base[:nb]
	condGatherSubset(q, cv.nbrs, cells, B, chains, codes)
	rows, meta := cv.rows, cv.meta
	vbase := v * B
	switch q {
	case 2:
		for i, ch := range chains {
			code := codes[i]
			m := meta[code]
			if m == condBad {
				return rowError(rows[2*code:2*code+2], v, int(ch))
			}
			cum0, total := rows[2*code], rows[2*code+1]
			u := rng.Float64() * total
			var ge uint8
			if u >= cum0 {
				ge = 1
			}
			cells[vbase+int(ch)] = T(ge & m)
		}
	case 3:
		for i, ch := range chains {
			code := codes[i]
			m := meta[code]
			if m == condBad {
				return rowError(rows[3*code:3*code+3], v, int(ch))
			}
			cum0, cum1, total := rows[3*code], rows[3*code+1], rows[3*code+2]
			u := rng.Float64() * total
			var x T
			switch {
			case u < cum0:
				x = 0
			case u < cum1:
				x = 1
			default:
				x = T(m)
			}
			cells[vbase+int(ch)] = x
		}
	default:
		for i, ch := range chains {
			code := int(codes[i])
			m := meta[code]
			row := rows[code*q : (code+1)*q]
			if m == condBad {
				return rowError(row, v, int(ch))
			}
			u := rng.Float64() * row[q-1]
			x := int(m)
			for j, cum := range row {
				if u < cum {
					x = j
					break
				}
			}
			cells[vbase+int(ch)] = T(x)
		}
	}
	return nil
}

// CondLookupLattice returns the cached cumulative conditional row of
// vertex v under chain `chain`'s neighborhood, with the row's last
// positive symbol — the B = 1 entry point of the single-chain heat-bath
// step. ok is false whenever the lookup cannot serve the call (mode off,
// uncached vertex, out-of-range arguments, an unassigned neighbor cell,
// or a bad row); the caller then falls back to CondWeightsLattice +
// dist.SampleWeights, which reproduces the uncached path's exact
// diagnostics without a uniform having been consumed.
func (c *Compiled) CondLookupLattice(l *state.Lattice, chain, v int) (cum []float64, lastPos int, ok bool) {
	if v < 0 || v >= c.n || l.N() < c.n || chain < 0 || chain >= l.Chains() {
		return nil, 0, false
	}
	cc := c.condForSample()
	if cc == nil {
		return nil, 0, false
	}
	cv := cc.at(v)
	if cv == nil {
		return nil, 0, false
	}
	B, q := l.Chains(), c.q
	code := 0
	if u8 := l.Raw8(); u8 != nil {
		for _, u := range cv.nbrs {
			x := u8[int(u)*B+chain]
			if !state.Valid(x, q) {
				return nil, 0, false
			}
			code = code*q + int(x)
		}
	} else {
		wide := l.RawWide()
		for _, u := range cv.nbrs {
			x := wide[int(u)*B+chain]
			if !state.Valid(x, q) {
				return nil, 0, false
			}
			code = code*q + int(x)
		}
	}
	m := cv.meta[code]
	if m == condBad {
		return nil, 0, false
	}
	return cv.rows[code*q : (code+1)*q], int(m), true
}

// CondDrawCum maps one uniform u ∈ [0,1) through a cached cumulative row:
// the first symbol whose cumulative weight exceeds u·total, rounding slack
// falling to lastPos. For equal uniforms it returns exactly what
// dist.SampleWeights returns on the raw weight row (see the equivalence
// argument at the top of this file).
func CondDrawCum(cum []float64, lastPos int, u float64) int {
	t := u * cum[len(cum)-1]
	for j, acc := range cum {
		if t < acc {
			return j
		}
	}
	return lastPos
}
