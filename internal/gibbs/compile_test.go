package gibbs

import (
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
)

// randomFeasibleHardcore draws a random locally feasible hardcore
// configuration by independent 1-attempts rolled back on violation.
func randomFeasibleHardcore(s *Spec, rng *rand.Rand) dist.Config {
	c := make(dist.Config, s.N())
	for v := range c {
		c[v] = 0
	}
	for v := 0; v < s.N(); v++ {
		if rng.Intn(2) == 1 {
			c[v] = 1
			if !s.LocallyFeasibleAt(c, v) {
				c[v] = 0
			}
		}
	}
	return c
}

func TestCompileTableAdoption(t *testing.T) {
	g := graph.Path(3)
	table := []float64{1, 2, 3, 4}
	s, err := NewSpec(g, 2, []Factor{PairTable(0, 1, table, "t")})
	if err != nil {
		t.Fatal(err)
	}
	c := Compile(s)
	if !c.Tabled(0) {
		t.Fatal("explicit table factor not on table path")
	}
	// Big-endian encoding: (a0, a1) -> a0*2 + a1.
	for a0 := 0; a0 < 2; a0++ {
		for a1 := 0; a1 < 2; a1++ {
			cfg := dist.Config{a0, a1, 0}
			got, ok := c.EvalFull(0, cfg)
			if !ok || got != table[a0*2+a1] {
				t.Fatalf("EvalFull(%d,%d) = %v ok=%v, want %v", a0, a1, got, ok, table[a0*2+a1])
			}
		}
	}
	// The synthesized Eval closure reads the same table.
	if got := s.Factors[0].Eval([]int{1, 0}); got != table[2] {
		t.Fatalf("synthesized Eval = %v, want %v", got, table[2])
	}
}

func TestCompileCapFallback(t *testing.T) {
	g := graph.Cycle(6)
	s := hardcoreSpec(t, g, 2)
	low := CompileCap(s, 1) // q^1 = 2 > 1: everything stays a closure
	full := Compile(s)
	for i := range s.Factors {
		if low.Tabled(i) {
			t.Fatalf("factor %d compiled despite cap", i)
		}
		if !full.Tabled(i) {
			t.Fatalf("factor %d not compiled under default cap", i)
		}
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		cfg := randomFeasibleHardcore(s, rng)
		wSpec, err1 := s.Weight(cfg)
		wLow, err2 := low.Weight(cfg)
		wFull, err3 := full.Weight(cfg)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("weight errors: %v %v %v", err1, err2, err3)
		}
		if wSpec != wLow || wSpec != wFull {
			t.Fatalf("weights disagree: spec %v closure-path %v table-path %v", wSpec, wLow, wFull)
		}
	}
}

func TestCompiledPartialKernels(t *testing.T) {
	g := graph.Cycle(6)
	s := hardcoreSpec(t, g, 3)
	c := Compile(s)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		cfg := dist.NewConfig(s.N())
		for v := range cfg {
			if rng.Intn(3) > 0 {
				cfg[v] = rng.Intn(2)
			}
		}
		if got, want := c.PartialWeight(cfg), s.PartialWeight(cfg); got != want {
			t.Fatalf("PartialWeight = %v, want %v (cfg %v)", got, want, cfg)
		}
		for v := 0; v < s.N(); v++ {
			if got, want := c.LocallyFeasibleAt(cfg, v), s.LocallyFeasibleAt(cfg, v); got != want {
				t.Fatalf("LocallyFeasibleAt(%d) = %v, want %v (cfg %v)", v, got, want, cfg)
			}
		}
	}
}

// Incremental identity: the product of PartialWeightAt deltas over any
// assignment order times the pinned base equals the total weight.
func TestPartialWeightAtTelescopes(t *testing.T) {
	g := graph.Cycle(5)
	s := hardcoreSpec(t, g, 2)
	c := Compile(s)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		target := randomFeasibleHardcore(s, rng)
		order := rng.Perm(s.N())
		cfg := dist.NewConfig(s.N())
		w := 1.0
		for _, v := range order {
			cfg[v] = target[v]
			w *= c.PartialWeightAt(cfg, v)
		}
		want, err := s.Weight(target)
		if err != nil {
			t.Fatal(err)
		}
		if w != want {
			t.Fatalf("telescoped weight %v != Weight %v (order %v, target %v)", w, want, order, target)
		}
	}
}

func TestCondWeights(t *testing.T) {
	g := graph.Cycle(6)
	s := hardcoreSpec(t, g, 2.5)
	c := Compile(s)
	buf := make([]float64, s.Q)
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 100; trial++ {
		cfg := randomFeasibleHardcore(s, rng)
		for v := 0; v < s.N(); v++ {
			w, err := c.CondWeights(cfg, v, buf)
			if err != nil {
				t.Fatal(err)
			}
			// Reference: evaluate the factors at v through the closure path.
			saved := cfg[v]
			for x := 0; x < s.Q; x++ {
				cfg[v] = x
				want := 1.0
				for _, fi := range c.FactorsAt(v) {
					val, ok := s.evalFactor(int(fi), cfg)
					if !ok {
						t.Fatalf("unassigned scope at factor %d", fi)
					}
					want *= val
				}
				if w[x] != want {
					t.Fatalf("CondWeights(%d)[%d] = %v, want %v", v, x, w[x], want)
				}
			}
			cfg[v] = saved
		}
	}
	// Error cases.
	if _, err := c.CondWeights(dist.Config{0, 0, 0, 0, 0, 0}, -1, buf); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	if _, err := c.CondWeights(dist.Config{0, 0, 0, 0, 0, 0}, 0, buf[:0]); err == nil {
		t.Error("short buffer accepted")
	}
	partial := dist.NewConfig(6)
	if _, err := c.CondWeights(partial, 0, buf); err == nil {
		t.Error("unassigned neighbour accepted")
	}
}

func TestCompiledWeightRatioOnBall(t *testing.T) {
	g := graph.Cycle(6)
	s := hardcoreSpec(t, g, 2)
	c := Compile(s)
	sc := c.NewScratch()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		a := randomFeasibleHardcore(s, rng)
		b := a.Clone()
		v := rng.Intn(s.N())
		b[v] = 1 - b[v]
		if !s.LocallyFeasible(b) {
			continue
		}
		want, err1 := s.WeightRatioOnBall(b, a, []int{v})
		got, err2 := c.WeightRatioOnBall(b, a, []int{v}, sc)
		gotNil, err3 := c.WeightRatioOnBall(b, a, []int{v}, nil)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("ratio errors: %v %v %v", err1, err2, err3)
		}
		// Both paths visit factors in sorted index order: bit-identical.
		if got != want || gotNil != want {
			t.Fatalf("ratio = %v / %v, want %v", got, gotNil, want)
		}
	}
	// Zero denominator errors on both paths.
	bad := dist.Config{1, 1, 0, 0, 0, 0}
	good := dist.Config{0, 0, 0, 0, 0, 0}
	if _, err := c.WeightRatioOnBall(good, bad, []int{0, 1}, sc); err == nil {
		t.Error("zero denominator accepted")
	}
}

func TestCompiledGreedyCompletion(t *testing.T) {
	g := graph.Cycle(7)
	s := hardcoreSpec(t, g, 1)
	c := Compile(s)
	pin := dist.NewConfig(7)
	pin[0] = 1
	want, err1 := s.GreedyCompletion(pin)
	got, err2 := c.GreedyCompletion(pin)
	if err1 != nil || err2 != nil {
		t.Fatalf("completion errors: %v %v", err1, err2)
	}
	if !got.Equal(want) {
		t.Fatalf("compiled completion %v != spec completion %v", got, want)
	}
}

// A vertex repeated inside one scope: the compiled CSR deduplicates it, the
// table stride accumulation keeps CondWeights correct, and the ratio kernel
// counts the factor once.
func TestCompiledRepeatedScopeVertex(t *testing.T) {
	g := graph.Path(2)
	f := Factor{
		Scope: []int{0, 0},
		Eval: func(a []int) float64 {
			if a[0] == 1 && a[1] == 1 {
				return 3
			}
			return 1
		},
	}
	s, err := NewSpec(g, 2, []Factor{f})
	if err != nil {
		t.Fatal(err)
	}
	c := Compile(s)
	if got := len(c.FactorsAt(0)); got != 1 {
		t.Fatalf("deduped factor count = %d, want 1", got)
	}
	buf := make([]float64, 2)
	w, err := c.CondWeights(dist.Config{0, 0}, 0, buf)
	if err != nil {
		t.Fatal(err)
	}
	if w[0] != 1 || w[1] != 3 {
		t.Fatalf("CondWeights over repeated scope = %v, want [1 3]", w)
	}
	ratio, err := c.WeightRatioOnBall(dist.Config{1, 0}, dist.Config{0, 0}, []int{0}, nil)
	if err != nil || ratio != 3 {
		t.Fatalf("ratio = %v err %v, want 3", ratio, err)
	}
}

func TestSpecCompiledCachedAndLocalityCached(t *testing.T) {
	g := graph.Cycle(4)
	s := hardcoreSpec(t, g, 1)
	if s.Compiled() != s.Compiled() {
		t.Error("Compiled() not cached")
	}
	ell1, err1 := s.Locality()
	ell2, err2 := s.Locality()
	if err1 != nil || err2 != nil || ell1 != ell2 || ell1 != 1 {
		t.Fatalf("cached locality = %d/%d, errs %v/%v", ell1, ell2, err1, err2)
	}
}

func TestNewSpecTableValidation(t *testing.T) {
	g := graph.Path(2)
	// Wrong table length.
	if _, err := NewSpec(g, 3, []Factor{{Scope: []int{0, 1}, Table: []float64{1, 2}}}); err == nil {
		t.Error("short table accepted")
	}
	// Table with no Eval is legal; Eval synthesized.
	s, err := NewSpec(g, 2, []Factor{{Scope: []int{0}, Table: []float64{1, 5}}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Factors[0].Eval == nil || s.Factors[0].Eval([]int{1}) != 5 {
		t.Error("Eval not synthesized from table")
	}
}
