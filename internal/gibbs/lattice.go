package gibbs

// lattice.go: single-chain kernels over the compact state container
// (internal/state.Lattice). These are the lattice-reading variants of
// CondWeights, EvalFull, PartialWeight(At), and FilterWeight that every
// sampling engine runs on — the dist.Config kernels remain for the API
// boundary (partial configurations with pinning semantics, the referee,
// the decay oracles). Each kernel branches once on the lattice
// representation and runs a width-specialized body (generic over
// state.Cells), so the compact path reads one byte per cell with the
// mixed-radix index math done directly on the cell type.

import (
	"fmt"

	"repro/internal/state"
)

// latticeFor validates that the lattice covers the engine's variables and
// that chain is in range.
func (c *Compiled) latticeFor(l *state.Lattice, chain int) error {
	if l.N() < c.n {
		return fmt.Errorf("gibbs: lattice has %d vertices, engine has %d", l.N(), c.n)
	}
	if chain < 0 || chain >= l.Chains() {
		return fmt.Errorf("gibbs: chain %d out of range for %d-chain lattice", chain, l.Chains())
	}
	return nil
}

// CondWeightsLattice fills buf[0:q] with the unnormalized heat-bath
// conditional weights of vertex v read from chain `chain` of the lattice —
// the lattice equivalent of CondWeights, bit-identical to it on every
// path, with no allocation on the table path.
func (c *Compiled) CondWeightsLattice(l *state.Lattice, chain, v int, buf []float64) ([]float64, error) {
	if v < 0 || v >= c.n {
		return nil, fmt.Errorf("gibbs: conditional vertex %d out of range", v)
	}
	if err := c.latticeFor(l, chain); err != nil {
		return nil, err
	}
	if len(buf) < c.q {
		return nil, fmt.Errorf("gibbs: conditional buffer has %d entries, need q = %d", len(buf), c.q)
	}
	w := buf[:c.q]
	for x := range w {
		w[x] = 1
	}
	if u8 := l.Raw8(); u8 != nil {
		return condWeightsCells(c, u8, l.Chains(), chain, v, w)
	}
	return condWeightsCells(c, l.RawWide(), l.Chains(), chain, v, w)
}

// condWeightsCells is the width-specialized conditional kernel body.
func condWeightsCells[T state.Cells](c *Compiled, cells []T, B, chain, v int, w []float64) ([]float64, error) {
	q := c.q
	for _, fi := range c.FactorsAt(v) {
		f := &c.factors[fi]
		if f.table != nil {
			base := int32(0)
			sv := int32(0)
			for j, u := range f.scope {
				if int(u) == v {
					// Repeated occurrences of v all take the same symbol,
					// so their strides simply accumulate.
					sv += f.strides[j]
					continue
				}
				x := cells[int(u)*B+chain]
				if !state.Valid(x, q) {
					return nil, fmt.Errorf("gibbs: conditional at %d: scope vertex %d unassigned", v, u)
				}
				base += int32(x) * f.strides[j]
			}
			// Straight-line walks for the small alphabets every model
			// builder uses; multiplication order matches the generic loop
			// (bit-identical weights).
			table := f.table
			switch q {
			case 2:
				w[0] *= table[base]
				w[1] *= table[base+sv]
			case 3:
				w[0] *= table[base]
				w[1] *= table[base+sv]
				w[2] *= table[base+2*sv]
			default:
				for x := int32(0); x < int32(q); x++ {
					w[x] *= table[base+x*sv]
				}
			}
			continue
		}
		assign := make([]int, len(f.scope))
		for x := 0; x < q; x++ {
			for j, u := range f.scope {
				if int(u) == v {
					assign[j] = x
					continue
				}
				xu := cells[int(u)*B+chain]
				if !state.Valid(xu, q) {
					return nil, fmt.Errorf("gibbs: conditional at %d: scope vertex %d unassigned", v, u)
				}
				assign[j] = int(xu)
			}
			w[x] *= f.eval(assign)
		}
	}
	return w, nil
}

// EvalFullLattice evaluates factor i on chain `chain` of the lattice,
// requiring every scope vertex assigned; ok is false otherwise — the
// lattice equivalent of EvalFull.
func (c *Compiled) EvalFullLattice(i int, l *state.Lattice, chain int) (val float64, ok bool) {
	if u8 := l.Raw8(); u8 != nil {
		return evalFullCells(c, i, u8, l.Chains(), chain)
	}
	return evalFullCells(c, i, l.RawWide(), l.Chains(), chain)
}

// EvalFullCells is EvalFullLattice on pre-dispatched raw cells (layout
// cells[u*B+chain]) — for callers that branch on the representation once
// per walk instead of once per factor evaluation (the exact enumerator's
// recursion).
func EvalFullCells[T state.Cells](c *Compiled, i int, cells []T, B, chain int) (float64, bool) {
	return evalFullCells(c, i, cells, B, chain)
}

// PartialWeightAtCells is PartialWeightAtLattice on pre-dispatched raw
// cells.
func PartialWeightAtCells[T state.Cells](c *Compiled, cells []T, B, chain, v int) float64 {
	w := 1.0
	for _, i := range c.FactorsAt(v) {
		val, ok := evalFullCells(c, int(i), cells, B, chain)
		if !ok {
			continue
		}
		w *= val
		if w == 0 {
			return 0
		}
	}
	return w
}

// EvalFullCells1 and PartialWeightAtCells1 are the single-chain (B = 1)
// variants: the cell index is the vertex itself, saving the chain-stride
// multiply in the innermost loop — this is the exact enumerator's hot
// call, executed once per (node, symbol) of the assignment tree.
func EvalFullCells1[T state.Cells](c *Compiled, i int, cells []T) (float64, bool) {
	return evalFullCells1(c, i, cells)
}

func evalFullCells1[T state.Cells](c *Compiled, i int, cells []T) (float64, bool) {
	f := &c.factors[i]
	q := c.q
	if f.table != nil {
		idx := int32(0)
		for j, u := range f.scope {
			x := cells[u]
			if !state.Valid(x, q) {
				return 0, false
			}
			idx += int32(x) * f.strides[j]
		}
		return f.table[idx], true
	}
	assign := make([]int, len(f.scope))
	for j, u := range f.scope {
		x := cells[u]
		if !state.Valid(x, q) {
			return 0, false
		}
		assign[j] = int(x)
	}
	return f.eval(assign), true
}

// PartialWeightAtCells1 is PartialWeightAtCells for a single-chain cell
// array.
func PartialWeightAtCells1[T state.Cells](c *Compiled, cells []T, v int) float64 {
	w := 1.0
	for _, i := range c.FactorsAt(v) {
		val, ok := evalFullCells1(c, int(i), cells)
		if !ok {
			continue
		}
		w *= val
		if w == 0 {
			return 0
		}
	}
	return w
}

// evalFullCells is the width-specialized factor evaluation body.
func evalFullCells[T state.Cells](c *Compiled, i int, cells []T, B, chain int) (float64, bool) {
	f := &c.factors[i]
	q := c.q
	if f.table != nil {
		idx := int32(0)
		for j, u := range f.scope {
			x := cells[int(u)*B+chain]
			if !state.Valid(x, q) {
				return 0, false
			}
			idx += int32(x) * f.strides[j]
		}
		return f.table[idx], true
	}
	assign := make([]int, len(f.scope))
	for j, u := range f.scope {
		x := cells[int(u)*B+chain]
		if !state.Valid(x, q) {
			return 0, false
		}
		assign[j] = int(x)
	}
	return f.eval(assign), true
}

// PartialWeightLattice returns the product of the factors whose scopes are
// fully assigned under chain `chain` of the lattice — the lattice
// equivalent of PartialWeight.
func (c *Compiled) PartialWeightLattice(l *state.Lattice, chain int) float64 {
	w := 1.0
	for i := range c.factors {
		val, ok := c.EvalFullLattice(i, l, chain)
		if !ok {
			continue
		}
		w *= val
		if w == 0 {
			return 0
		}
	}
	return w
}

// PartialWeightAtLattice returns the product of the factors containing v
// whose scopes are fully assigned under chain `chain` — the incremental
// enumeration delta of PartialWeightAt, read from the lattice.
func (c *Compiled) PartialWeightAtLattice(l *state.Lattice, chain, v int) float64 {
	if u8 := l.Raw8(); u8 != nil {
		return PartialWeightAtCells(c, u8, l.Chains(), chain, v)
	}
	return PartialWeightAtCells(c, l.RawWide(), l.Chains(), chain, v)
}

// FilterWeightLattice is FilterWeight reading the current configuration and
// the proposal from chain `chain` of two lattices (which must share one
// representation, as lattices built for the same instance do). Both chains
// must assign every scope vertex of factor i.
func (c *Compiled) FilterWeightLattice(i int, old, prop *state.Lattice, chain int, verts []int) (float64, error) {
	if i < 0 || i >= len(c.factors) {
		return 0, fmt.Errorf("gibbs: filter factor %d out of range", i)
	}
	if err := c.latticeFor(old, chain); err != nil {
		return 0, err
	}
	if err := c.latticeFor(prop, chain); err != nil {
		return 0, err
	}
	k := len(verts)
	if k == 0 {
		return 1, nil
	}
	if k > filterMaxToggle {
		return 0, fmt.Errorf("gibbs: filter over %d toggled vertices (max %d)", k, filterMaxToggle)
	}
	if o8, p8 := old.Raw8(), prop.Raw8(); o8 != nil && p8 != nil {
		return filterCells(c, &c.factors[i], o8, old.Chains(), p8, prop.Chains(), chain, verts)
	}
	if ow, pw := old.RawWide(), prop.RawWide(); ow != nil && pw != nil {
		return filterCells(c, &c.factors[i], ow, old.Chains(), pw, prop.Chains(), chain, verts)
	}
	return 0, fmt.Errorf("gibbs: filter lattices have mixed cell representations")
}

// FilterWeightCells is FilterWeight on pre-dispatched raw cells (layouts
// old[u*oB+chain], prop[u*pB+chain]) — for engines that evaluate many
// acceptance factors per round and branch on the representation once per
// stage. The cells must cover the engine's variables; verts must be
// distinct vertices of factor i's scope.
func FilterWeightCells[T state.Cells](c *Compiled, i int, old []T, oB int, prop []T, pB int, chain int, verts []int) (float64, error) {
	if i < 0 || i >= len(c.factors) {
		return 0, fmt.Errorf("gibbs: filter factor %d out of range", i)
	}
	k := len(verts)
	if k == 0 {
		return 1, nil
	}
	if k > filterMaxToggle {
		return 0, fmt.Errorf("gibbs: filter over %d toggled vertices (max %d)", k, filterMaxToggle)
	}
	return filterCells(c, &c.factors[i], old, oB, prop, pB, chain, verts)
}

// filterCells is the width-specialized filter body: on the table path the
// base index encodes the all-old assignment and each toggled vertex
// contributes a fixed index delta; closure factors materialize each mixed
// assignment.
func filterCells[T state.Cells](c *Compiled, f *cfactor, old []T, oB int, prop []T, pB int, chain int, verts []int) (float64, error) {
	q := c.q
	if f.table != nil {
		base := int32(0)
		for j, u := range f.scope {
			x := old[int(u)*oB+chain]
			if !state.Valid(x, q) {
				return 0, fmt.Errorf("gibbs: filter: scope vertex %d unassigned in current configuration", u)
			}
			base += int32(x) * f.strides[j]
		}
		var dbuf [8]int32
		deltas := dbuf[:0]
		if len(verts) > len(dbuf) {
			deltas = make([]int32, 0, len(verts))
		}
		for _, d := range verts {
			xo, xp := old[d*oB+chain], prop[d*pB+chain]
			if !state.Valid(xo, q) || !state.Valid(xp, q) {
				return 0, fmt.Errorf("gibbs: filter: toggled vertex %d unassigned", d)
			}
			delta := int32(0)
			found := false
			for j, u := range f.scope {
				if int(u) == d {
					delta += (int32(xp) - int32(xo)) * f.strides[j]
					found = true
				}
			}
			if !found {
				return 0, fmt.Errorf("gibbs: filter: vertex %d not in factor scope", d)
			}
			deltas = append(deltas, delta)
		}
		w := 1.0
		for mask := 1; mask < 1<<len(deltas); mask++ {
			idx := base
			for b, delta := range deltas {
				if mask&(1<<b) != 0 {
					idx += delta
				}
			}
			w *= f.table[idx]
			if w == 0 {
				return 0, nil
			}
		}
		return w, nil
	}
	toggled := make(map[int]int, len(verts)) // vertex -> bit position
	for b, d := range verts {
		if !state.Valid(prop[d*pB+chain], q) {
			return 0, fmt.Errorf("gibbs: filter: toggled vertex %d unassigned", d)
		}
		toggled[d] = b
	}
	for _, d := range verts {
		found := false
		for _, u := range f.scope {
			if int(u) == d {
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("gibbs: filter: vertex %d not in factor scope", d)
		}
	}
	assign := make([]int, len(f.scope))
	w := 1.0
	for mask := 1; mask < 1<<len(verts); mask++ {
		for j, u := range f.scope {
			xo := old[int(u)*oB+chain]
			if !state.Valid(xo, q) {
				return 0, fmt.Errorf("gibbs: filter: scope vertex %d unassigned in current configuration", u)
			}
			if b, ok := toggled[int(u)]; ok && mask&(1<<b) != 0 {
				assign[j] = int(prop[int(u)*pB+chain])
			} else {
				assign[j] = int(xo)
			}
		}
		w *= f.eval(assign)
		if w == 0 {
			return 0, nil
		}
	}
	return w, nil
}
