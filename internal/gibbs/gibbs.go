// Package gibbs implements Gibbs distributions specified by weighted
// constraint satisfaction problems (Definition 2.3 of Feng & Yin, PODC
// 2018): a tuple (G, Σ, F) of a graph, a finite alphabet, and a collection
// of nonnegative factors over local scopes. It provides configuration
// weights, locality (Definition 2.4), local feasibility and local
// admissibility (Definition 2.5), and instances (G, x, τ) with pinned
// partial configurations realizing the paper's self-reducibility
// (Definition 2.2).
package gibbs

import (
	"errors"
	"fmt"

	"repro/internal/dist"
	"repro/internal/graph"
)

// Factor is a constraint (f, S): a nonnegative function over the
// configurations of its scope S ⊆ V. The function receives the values of
// the scope vertices in scope order. A factor is "hard" if it can evaluate
// to zero.
type Factor struct {
	// Scope lists the vertices the factor reads, in a fixed order.
	Scope []int
	// Eval returns the nonnegative weight of the given assignment to Scope
	// (assignment indexed parallel to Scope).
	Eval func(assign []int) float64
	// Name is an optional human-readable label used in diagnostics.
	Name string
}

// Spec specifies a Gibbs distribution (G, Σ, F).
type Spec struct {
	// G is the underlying interaction graph.
	G *graph.Graph
	// Q is the alphabet size |Σ|; symbols are 0..Q-1.
	Q int
	// Factors is the constraint collection F.
	Factors []Factor

	// factorsAt[v] caches the indices of factors whose scope contains v.
	factorsAt [][]int
}

var (
	// ErrAlphabet indicates a non-positive alphabet size.
	ErrAlphabet = errors.New("gibbs: alphabet size must be positive")
	// ErrScope indicates a factor scope referencing vertices outside the
	// graph.
	ErrScope = errors.New("gibbs: factor scope out of range")
	// ErrInfeasible indicates that a configuration required to be feasible
	// is not.
	ErrInfeasible = errors.New("gibbs: infeasible configuration")
)

// NewSpec validates and returns a Gibbs specification, building the
// per-vertex factor index.
func NewSpec(g *graph.Graph, q int, factors []Factor) (*Spec, error) {
	if q <= 0 {
		return nil, ErrAlphabet
	}
	s := &Spec{G: g, Q: q, Factors: factors}
	s.factorsAt = make([][]int, g.N())
	for i, f := range factors {
		if f.Eval == nil {
			return nil, fmt.Errorf("gibbs: factor %d (%s) has nil Eval", i, f.Name)
		}
		if len(f.Scope) == 0 {
			return nil, fmt.Errorf("gibbs: factor %d (%s) has empty scope", i, f.Name)
		}
		for _, v := range f.Scope {
			if v < 0 || v >= g.N() {
				return nil, fmt.Errorf("%w: factor %d (%s) vertex %d", ErrScope, i, f.Name, v)
			}
			s.factorsAt[v] = append(s.factorsAt[v], i)
		}
	}
	return s, nil
}

// N returns the number of variables (vertices of G).
func (s *Spec) N() int { return s.G.N() }

// FactorsAt returns the indices of factors whose scope contains v. The slice
// is shared internal state and must not be modified.
func (s *Spec) FactorsAt(v int) []int {
	if v < 0 || v >= len(s.factorsAt) {
		return nil
	}
	return s.factorsAt[v]
}

// Locality returns ℓ = max over factors of the diameter of the factor scope
// in G (Definition 2.4). The distribution is "local" when this is O(1); all
// models shipped in internal/model have ℓ ≤ 1. Returns an error when some
// scope spans disconnected parts of G.
func (s *Spec) Locality() (int, error) {
	ell := 0
	for i, f := range s.Factors {
		d := s.G.SetDiameter(f.Scope)
		if d < 0 {
			return 0, fmt.Errorf("gibbs: factor %d (%s) scope disconnected in G", i, f.Name)
		}
		if d > ell {
			ell = d
		}
	}
	return ell, nil
}

// evalFactor evaluates factor i on a configuration, requiring all scope
// variables assigned; ok is false otherwise.
func (s *Spec) evalFactor(i int, c dist.Config) (val float64, ok bool) {
	f := s.Factors[i]
	assign := make([]int, len(f.Scope))
	for j, v := range f.Scope {
		if v >= len(c) || c[v] == dist.Unset {
			return 0, false
		}
		assign[j] = c[v]
	}
	return f.Eval(assign), true
}

// Weight returns w(σ) = Π f(σ_S) over all factors (equation (1) of the
// paper). The configuration must be total.
func (s *Spec) Weight(c dist.Config) (float64, error) {
	if !c.IsTotal() {
		return 0, errors.New("gibbs: Weight requires a total configuration")
	}
	w := 1.0
	for i := range s.Factors {
		val, ok := s.evalFactor(i, c)
		if !ok {
			return 0, errors.New("gibbs: factor scope unassigned")
		}
		w *= val
		if w == 0 {
			return 0, nil
		}
	}
	return w, nil
}

// PartialWeight returns the product of the factors whose scopes are fully
// assigned under the partial configuration σ (the quantity in Definition
// 2.5 when σ's domain is Λ).
func (s *Spec) PartialWeight(c dist.Config) float64 {
	w := 1.0
	for i := range s.Factors {
		val, ok := s.evalFactor(i, c)
		if !ok {
			continue
		}
		w *= val
		if w == 0 {
			return 0
		}
	}
	return w
}

// LocallyFeasible reports whether the partial configuration σ violates no
// constraint that is fully contained in its assigned domain (Definition
// 2.5).
func (s *Spec) LocallyFeasible(c dist.Config) bool {
	return s.PartialWeight(c) > 0
}

// LocallyFeasibleAt reports whether the constraints involving vertex v and
// fully assigned under c are all satisfied. This suffices to check local
// feasibility incrementally when extending a locally feasible configuration
// at v.
func (s *Spec) LocallyFeasibleAt(c dist.Config, v int) bool {
	for _, i := range s.FactorsAt(v) {
		val, ok := s.evalFactor(i, c)
		if ok && val == 0 {
			return false
		}
	}
	return true
}

// WeightRatioOnBall returns w(σ')/w(σ) where σ' and σ are total
// configurations differing only inside the vertex set D. Only factors whose
// scope intersects D contribute, mirroring equation (12) of the paper. The
// denominator factors must be positive; an error is returned otherwise.
func (s *Spec) WeightRatioOnBall(sigmaNew, sigmaOld dist.Config, d []int) (float64, error) {
	inD := make(map[int]bool, len(d))
	for _, v := range d {
		inD[v] = true
	}
	touched := make(map[int]bool)
	for _, v := range d {
		for _, i := range s.FactorsAt(v) {
			touched[i] = true
		}
	}
	ratio := 1.0
	for i := range touched {
		num, ok1 := s.evalFactor(i, sigmaNew)
		den, ok2 := s.evalFactor(i, sigmaOld)
		if !ok1 || !ok2 {
			return 0, errors.New("gibbs: weight ratio on partial configuration")
		}
		if den == 0 {
			return 0, fmt.Errorf("%w: zero factor in ratio denominator", ErrInfeasible)
		}
		ratio *= num / den
	}
	return ratio, nil
}

// GreedyCompletion extends the partial configuration c to a total, locally
// feasible configuration by scanning the free variables in increasing order
// and assigning the smallest symbol that keeps the configuration locally
// feasible. For locally admissible distributions (Definition 2.5) this
// always produces a feasible configuration; it is the "sequential local
// oblivious" construction of Remark 2.3. Returns an error when some vertex
// has no locally feasible symbol.
func (s *Spec) GreedyCompletion(c dist.Config) (dist.Config, error) {
	out := c.Clone()
	for v := 0; v < s.N(); v++ {
		if out[v] != dist.Unset {
			continue
		}
		done := false
		for x := 0; x < s.Q; x++ {
			out[v] = x
			if s.LocallyFeasibleAt(out, v) {
				done = true
				break
			}
		}
		if !done {
			out[v] = dist.Unset
			return nil, fmt.Errorf("%w: no locally feasible value at vertex %d", ErrInfeasible, v)
		}
	}
	return out, nil
}
