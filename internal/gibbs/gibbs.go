// Package gibbs implements Gibbs distributions specified by weighted
// constraint satisfaction problems (Definition 2.3 of Feng & Yin, PODC
// 2018): a tuple (G, Σ, F) of a graph, a finite alphabet, and a collection
// of nonnegative factors over local scopes. It provides configuration
// weights, locality (Definition 2.4), local feasibility and local
// admissibility (Definition 2.5), and instances (G, x, τ) with pinned
// partial configurations realizing the paper's self-reducibility
// (Definition 2.2).
//
// Two evaluation paths exist. The Spec methods (Weight, PartialWeight,
// LocallyFeasibleAt, ...) dispatch through each factor's Eval closure and
// are the reference semantics. The compiled engine (Compile / Spec.Compiled)
// precomputes dense weight tables per factor and a flat CSR factor index,
// exposing zero-allocation kernels (CondWeights, WeightRatioOnBall with
// reusable scratch, PartialWeightAt) used by every hot consumer: the
// Glauber sampler, the brute-force referee, the JVV/boost/SSM reductions,
// and the correlation-decay ball estimator. See compile.go.
//
// Two size caps govern how much the engine precomputes, sharing the
// overflow-safe powSize arithmetic: DefaultTableCap bounds one factor's
// dense table (q^|Scope| entries; larger factors stay on their Eval
// closure), and DefaultCondCap bounds one vertex's conditional-CDF cache
// (q^deg(v)·q entries; larger neighborhoods stay on the sweep-plan walk —
// see cond.go, and SetCondCapForTest to shrink the caps in tests).
package gibbs

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/dist"
	"repro/internal/graph"
)

// Factor is a constraint (f, S): a nonnegative function over the
// configurations of its scope S ⊆ V. The function receives the values of
// the scope vertices in scope order. A factor is "hard" if it can evaluate
// to zero.
type Factor struct {
	// Scope lists the vertices the factor reads, in a fixed order.
	Scope []int
	// Eval returns the nonnegative weight of the given assignment to Scope
	// (assignment indexed parallel to Scope). When Table is set the table
	// is authoritative: NewSpec replaces Eval with a table lookup so the
	// closure and compiled paths cannot diverge, and any caller-supplied
	// Eval is ignored.
	Eval func(assign []int) float64
	// Table optionally gives the factor as a dense weight table over all
	// q^|Scope| scope assignments, indexed by the big-endian mixed-radix
	// encoding index = Σ_j assign[j]·q^(s−1−j). Table-backed factors are
	// adopted verbatim by the compiled engine regardless of the table-size
	// cap, and the table may be shared between factors (it is never
	// modified).
	Table []float64
	// Name is an optional human-readable label used in diagnostics.
	Name string
}

// UnaryTable returns a table-backed factor on the single vertex v with
// weights[x] the weight of symbol x. The slice is retained (and may be
// shared across factors).
func UnaryTable(v int, weights []float64, name string) Factor {
	return Factor{Scope: []int{v}, Table: weights, Name: name}
}

// PairTable returns a table-backed factor on the ordered pair (u, v):
// table[xu*q+xv] is the weight of the assignment (u, v) = (xu, xv) for the
// spec's alphabet size q. The slice is retained (and may be shared across
// factors); its length is validated by NewSpec, the single authority on
// table shape.
func PairTable(u, v int, table []float64, name string) Factor {
	return Factor{Scope: []int{u, v}, Table: table, Name: name}
}

// Spec specifies a Gibbs distribution (G, Σ, F). A Spec must not be
// mutated after first use: Locality and the compiled engine are cached on
// first access.
type Spec struct {
	// G is the underlying interaction graph.
	G *graph.Graph
	// Q is the alphabet size |Σ|; symbols are 0..Q-1.
	Q int
	// Factors is the constraint collection F.
	Factors []Factor

	// Flat CSR per-vertex factor index: the factors whose scope contains v
	// are Factors[i] for i in factorIdx[factorOff[v]:factorOff[v+1]]. Per
	// vertex the indices are increasing; a vertex repeated in one scope
	// contributes one entry per occurrence (mirroring the historical
	// [][]int index).
	factorOff []int32
	factorIdx []int32

	// Locality is cached after the first computation: it is consulted on
	// every Boost/SSM/JVV call but depends only on the immutable factor
	// scopes.
	locOnce sync.Once
	locEll  int
	locErr  error

	// The compiled engine is likewise built once on demand.
	compileOnce sync.Once
	compiled    *Compiled
}

var (
	// ErrAlphabet indicates a non-positive alphabet size.
	ErrAlphabet = errors.New("gibbs: alphabet size must be positive")
	// ErrScope indicates a factor scope referencing vertices outside the
	// graph.
	ErrScope = errors.New("gibbs: factor scope out of range")
	// ErrInfeasible indicates that a configuration required to be feasible
	// is not.
	ErrInfeasible = errors.New("gibbs: infeasible configuration")
)

// NewSpec validates and returns a Gibbs specification, building the
// per-vertex factor index. Table-backed factors get an Eval synthesized
// from their table so the closure path stays available. The factor slice
// is copied (shallowly), so the caller's slice is not written to.
func NewSpec(g *graph.Graph, q int, factors []Factor) (*Spec, error) {
	if q <= 0 {
		return nil, ErrAlphabet
	}
	s := &Spec{G: g, Q: q, Factors: append([]Factor(nil), factors...)}
	counts := make([]int32, g.N()+1)
	for i, f := range factors {
		if len(f.Scope) == 0 {
			return nil, fmt.Errorf("gibbs: factor %d (%s) has empty scope", i, f.Name)
		}
		if f.Table != nil {
			want, err := tableSize(q, len(f.Scope))
			if err != nil {
				return nil, fmt.Errorf("gibbs: factor %d (%s): %v", i, f.Name, err)
			}
			if len(f.Table) != want {
				return nil, fmt.Errorf("gibbs: factor %d (%s) table has %d entries, want q^%d = %d",
					i, f.Name, len(f.Table), len(f.Scope), want)
			}
			// The table is authoritative: both evaluation paths read it.
			s.Factors[i].Eval = tableEval(f.Table, q)
		} else if f.Eval == nil {
			return nil, fmt.Errorf("gibbs: factor %d (%s) has nil Eval", i, f.Name)
		}
		for _, v := range f.Scope {
			if v < 0 || v >= g.N() {
				return nil, fmt.Errorf("%w: factor %d (%s) vertex %d", ErrScope, i, f.Name, v)
			}
			counts[v+1]++
		}
	}
	s.factorOff = make([]int32, g.N()+1)
	for v := 0; v < g.N(); v++ {
		s.factorOff[v+1] = s.factorOff[v] + counts[v+1]
	}
	s.factorIdx = make([]int32, s.factorOff[g.N()])
	fill := make([]int32, g.N())
	copy(fill, s.factorOff[:g.N()])
	for i, f := range factors {
		for _, v := range f.Scope {
			s.factorIdx[fill[v]] = int32(i)
			fill[v]++
		}
	}
	return s, nil
}

// tableSize returns q^s, erroring when the table would be absurdly large.
func tableSize(q, s int) (int, error) {
	size, ok := powSize(q, s, 1<<31)
	if !ok {
		return 0, fmt.Errorf("table over q^%d assignments too large", s)
	}
	return int(size), nil
}

// powSize returns q^s in int64, reporting whether it stays within lim —
// the overflow-safe size arithmetic shared by the factor-table cap
// (DefaultTableCap, via tableSize) and the conditional-CDF cache's
// per-vertex entry cap (DefaultCondCap, see cond.go). The pre-multiply
// guard is exact: it rejects iff the product would exceed lim.
func powSize(q, s int, lim int64) (int64, bool) {
	size := int64(1)
	for j := 0; j < s; j++ {
		if size > lim/int64(q) {
			return 0, false
		}
		size *= int64(q)
	}
	return size, size <= lim
}

// tableEval synthesizes an Eval closure from a dense weight table using the
// big-endian mixed-radix encoding.
func tableEval(table []float64, q int) func([]int) float64 {
	return func(assign []int) float64 {
		idx := 0
		for _, x := range assign {
			idx = idx*q + x
		}
		return table[idx]
	}
}

// N returns the number of variables (vertices of G).
func (s *Spec) N() int { return s.G.N() }

// FactorsAt returns the indices of factors whose scope contains v, in
// increasing order (one entry per scope occurrence). The slice aliases the
// spec's flat CSR index and must not be modified.
func (s *Spec) FactorsAt(v int) []int32 {
	if v < 0 || v+1 >= len(s.factorOff) {
		return nil
	}
	lo, hi := s.factorOff[v], s.factorOff[v+1]
	if lo == hi {
		return nil
	}
	return s.factorIdx[lo:hi]
}

// Compiled returns the compiled evaluation engine for the spec, building
// it on first use with the default table-size cap. The engine is shared;
// its pure kernels are safe for concurrent use.
func (s *Spec) Compiled() *Compiled {
	s.compileOnce.Do(func() { s.compiled = Compile(s) })
	return s.compiled
}

// Locality returns ℓ = max over factors of the diameter of the factor scope
// in G (Definition 2.4). The distribution is "local" when this is O(1); all
// models shipped in internal/model have ℓ ≤ 1. Returns an error when some
// scope spans disconnected parts of G. The result is computed once and
// cached.
func (s *Spec) Locality() (int, error) {
	s.locOnce.Do(func() { s.locEll, s.locErr = s.locality() })
	return s.locEll, s.locErr
}

func (s *Spec) locality() (int, error) {
	ell := 0
	for i, f := range s.Factors {
		d := s.G.SetDiameter(f.Scope)
		if d < 0 {
			return 0, fmt.Errorf("gibbs: factor %d (%s) scope disconnected in G", i, f.Name)
		}
		if d > ell {
			ell = d
		}
	}
	return ell, nil
}

// evalFactor evaluates factor i on a configuration, requiring all scope
// variables assigned; ok is false otherwise.
func (s *Spec) evalFactor(i int, c dist.Config) (val float64, ok bool) {
	f := s.Factors[i]
	assign := make([]int, len(f.Scope))
	for j, v := range f.Scope {
		if v >= len(c) || c[v] == dist.Unset {
			return 0, false
		}
		assign[j] = c[v]
	}
	return f.Eval(assign), true
}

// Weight returns w(σ) = Π f(σ_S) over all factors (equation (1) of the
// paper). The configuration must be total.
func (s *Spec) Weight(c dist.Config) (float64, error) {
	if !c.IsTotal() {
		return 0, errors.New("gibbs: Weight requires a total configuration")
	}
	w := 1.0
	for i := range s.Factors {
		val, ok := s.evalFactor(i, c)
		if !ok {
			return 0, errors.New("gibbs: factor scope unassigned")
		}
		w *= val
		if w == 0 {
			return 0, nil
		}
	}
	return w, nil
}

// PartialWeight returns the product of the factors whose scopes are fully
// assigned under the partial configuration σ (the quantity in Definition
// 2.5 when σ's domain is Λ).
func (s *Spec) PartialWeight(c dist.Config) float64 {
	w := 1.0
	for i := range s.Factors {
		val, ok := s.evalFactor(i, c)
		if !ok {
			continue
		}
		w *= val
		if w == 0 {
			return 0
		}
	}
	return w
}

// LocallyFeasible reports whether the partial configuration σ violates no
// constraint that is fully contained in its assigned domain (Definition
// 2.5).
func (s *Spec) LocallyFeasible(c dist.Config) bool {
	return s.PartialWeight(c) > 0
}

// LocallyFeasibleAt reports whether the constraints involving vertex v and
// fully assigned under c are all satisfied. This suffices to check local
// feasibility incrementally when extending a locally feasible configuration
// at v.
func (s *Spec) LocallyFeasibleAt(c dist.Config, v int) bool {
	for _, i := range s.FactorsAt(v) {
		val, ok := s.evalFactor(int(i), c)
		if ok && val == 0 {
			return false
		}
	}
	return true
}

// WeightRatioOnBall returns w(σ')/w(σ) where σ' and σ are total
// configurations differing only inside the vertex set D. Only factors whose
// scope intersects D contribute, mirroring equation (12) of the paper. The
// factors are visited in increasing index order so the rounded result is
// deterministic. The denominator factors must be positive; an error is
// returned otherwise.
func (s *Spec) WeightRatioOnBall(sigmaNew, sigmaOld dist.Config, d []int) (float64, error) {
	var touched []int
	seen := make(map[int]bool)
	for _, v := range d {
		for _, i := range s.FactorsAt(v) {
			if !seen[int(i)] {
				seen[int(i)] = true
				touched = append(touched, int(i))
			}
		}
	}
	sort.Ints(touched)
	ratio := 1.0
	for _, i := range touched {
		num, ok1 := s.evalFactor(i, sigmaNew)
		den, ok2 := s.evalFactor(i, sigmaOld)
		if !ok1 || !ok2 {
			return 0, errors.New("gibbs: weight ratio on partial configuration")
		}
		if den == 0 {
			return 0, fmt.Errorf("%w: zero factor in ratio denominator", ErrInfeasible)
		}
		ratio *= num / den
	}
	return ratio, nil
}

// GreedyCompletion extends the partial configuration c to a total, locally
// feasible configuration by scanning the free variables in increasing order
// and assigning the smallest symbol that keeps the configuration locally
// feasible. For locally admissible distributions (Definition 2.5) this
// always produces a feasible configuration; it is the "sequential local
// oblivious" construction of Remark 2.3. Returns an error when some vertex
// has no locally feasible symbol.
func (s *Spec) GreedyCompletion(c dist.Config) (dist.Config, error) {
	out := c.Clone()
	for v := 0; v < s.N(); v++ {
		if out[v] != dist.Unset {
			continue
		}
		done := false
		for x := 0; x < s.Q; x++ {
			out[v] = x
			if s.LocallyFeasibleAt(out, v) {
				done = true
				break
			}
		}
		if !done {
			out[v] = dist.Unset
			return nil, fmt.Errorf("%w: no locally feasible value at vertex %d", ErrInfeasible, v)
		}
	}
	return out, nil
}
