package gibbs

// batch_test.go pins the lattice kernels to the dist.Config ones:
// CondWeightsBatch over a chain-major lattice must agree exactly
// (bit-for-bit on the table path) with CondWeights called once per chain,
// on the dense-table and closure fallback paths and on both cell
// representations (compact uint8 and wide int); CondWeightsLattice must do
// the same for a single chain.

import (
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/state"
)

// batchSpec builds a spec mixing unary, pairwise, and arity-3 factors on a
// small clique-friendly graph.
func batchSpec(t *testing.T) *Spec {
	t.Helper()
	g := graph.New(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 2}, {1, 3}} {
		g.MustAddEdge(e[0], e[1])
	}
	q := 3
	tri := make([]float64, 27)
	for i := range tri {
		tri[i] = 0.2 + float64(i%7)*0.13
	}
	pair := []float64{1, 0.5, 0.25, 0.5, 1, 0.5, 0.25, 0.5, 1}
	factors := []Factor{
		{Scope: []int{0, 1, 2}, Table: tri, Name: "tri"},
		{Scope: []int{1, 3}, Table: pair, Name: "p13"},
		{Scope: []int{3, 4}, Table: pair, Name: "p34"},
		UnaryTable(2, []float64{1, 2, 0.5}, "field"),
		{Scope: []int{2, 3}, Eval: func(a []int) float64 {
			return 1 / (1 + float64(a[0]+2*a[1]))
		}, Name: "closure23"},
	}
	s, err := NewSpec(g, q, factors)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// randomChains draws B total configurations on n vertices.
func randomChains(n, q, B int, seed int64) []dist.Config {
	rng := rand.New(rand.NewSource(seed))
	chains := make([]dist.Config, B)
	for c := range chains {
		chains[c] = dist.NewConfig(n)
		for v := range chains[c] {
			chains[c][v] = rng.Intn(q)
		}
	}
	return chains
}

func testBatchAgainstSingle(t *testing.T, eng *Compiled, wide bool) {
	t.Helper()
	n, q := eng.N(), eng.Q()
	const B = 7
	chains := randomChains(n, q, B, 9)
	if wide {
		defer state.SetCompactLimitForTest(0)()
	}
	lat, err := state.Pack(n, q, chains)
	if err != nil {
		t.Fatal(err)
	}
	if lat.Compact() == wide {
		t.Fatalf("lattice Compact() = %v with wide=%v", lat.Compact(), wide)
	}
	sc := NewBatchScratch(B)
	buf := make([]float64, B*q)
	single := make([]float64, q)
	lsingle := make([]float64, q)
	for v := 0; v < n; v++ {
		for _, span := range [][2]int{{0, B}, {2, 5}, {B - 1, B}} {
			c0, c1 := span[0], span[1]
			got, err := eng.CondWeightsBatch(lat, v, c0, c1, buf, sc)
			if err != nil {
				t.Fatal(err)
			}
			for c := c0; c < c1; c++ {
				want, err := eng.CondWeights(chains[c], v, single)
				if err != nil {
					t.Fatal(err)
				}
				lw, err := eng.CondWeightsLattice(lat, c, v, lsingle)
				if err != nil {
					t.Fatal(err)
				}
				for x := 0; x < q; x++ {
					if got[(c-c0)*q+x] != want[x] {
						t.Fatalf("v=%d chain=%d span=[%d,%d) x=%d: batch %v != single %v",
							v, c, c0, c1, x, got[(c-c0)*q+x], want[x])
					}
					if lw[x] != want[x] {
						t.Fatalf("v=%d chain=%d x=%d: lattice %v != config %v", v, c, x, lw[x], want[x])
					}
				}
			}
		}
	}
}

func TestCondWeightsBatchMatchesSingle(t *testing.T) {
	s := batchSpec(t)
	for _, rep := range []struct {
		name string
		wide bool
	}{{"compact", false}, {"wide", true}} {
		t.Run(rep.name, func(t *testing.T) {
			t.Run("tabled", func(t *testing.T) { testBatchAgainstSingle(t, Compile(s), rep.wide) })
			// A cap of 0 forces every closure factor onto the fallback path
			// while explicit tables stay tabled — both kernel paths in one
			// batch.
			t.Run("closure-fallback", func(t *testing.T) { testBatchAgainstSingle(t, CompileCap(s, 0), rep.wide) })
		})
	}
}

// TestLatticePartialKernels pins EvalFullLattice and PartialWeightAtLattice
// to their dist.Config counterparts on partial configurations, for both
// representations.
func TestLatticePartialKernels(t *testing.T) {
	eng := Compile(batchSpec(t))
	n, q := eng.N(), eng.Q()
	rng := rand.New(rand.NewSource(4))
	for _, wide := range []bool{false, true} {
		restore := func() {}
		if wide {
			restore = state.SetCompactLimitForTest(0)
		}
		for trial := 0; trial < 50; trial++ {
			cfg := dist.NewConfig(n)
			for v := range cfg {
				if rng.Intn(3) > 0 {
					cfg[v] = rng.Intn(q)
				}
			}
			lat, err := state.Pack(n, q, []dist.Config{cfg})
			if err != nil {
				t.Fatal(err)
			}
			for i := range eng.factors {
				wv, wok := eng.EvalFull(i, cfg)
				lv, lok := eng.EvalFullLattice(i, lat, 0)
				if wv != lv || wok != lok {
					t.Fatalf("wide=%v factor %d on %v: lattice (%v,%v) != config (%v,%v)", wide, i, cfg, lv, lok, wv, wok)
				}
			}
			for v := 0; v < n; v++ {
				if got, want := eng.PartialWeightAtLattice(lat, 0, v), eng.PartialWeightAt(cfg, v); got != want {
					t.Fatalf("wide=%v PartialWeightAt(%d) on %v: lattice %v != config %v", wide, v, cfg, got, want)
				}
			}
			if got, want := eng.PartialWeightLattice(lat, 0), eng.PartialWeight(cfg); got != want {
				t.Fatalf("wide=%v PartialWeight on %v: lattice %v != config %v", wide, cfg, got, want)
			}
		}
		restore()
	}
}

func TestCondWeightsBatchRejectsBadInput(t *testing.T) {
	eng := Compile(batchSpec(t))
	n, q := eng.N(), eng.Q()
	const B = 3
	full, err := state.Pack(n, q, randomChains(n, q, B, 3))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, B*q)
	if _, err := eng.CondWeightsBatch(full, -1, 0, B, buf, nil); err == nil {
		t.Error("negative vertex accepted")
	}
	if _, err := eng.CondWeightsBatch(full, 0, 2, 1, buf, nil); err == nil {
		t.Error("empty chain range accepted")
	}
	short, err := state.New(n-1, B, q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.CondWeightsBatch(short, 0, 0, B, buf, nil); err == nil {
		t.Error("short lattice accepted")
	}
	if _, err := eng.CondWeightsBatch(full, 0, 0, B, buf[:1], nil); err == nil {
		t.Error("short buffer accepted")
	}
	full.Set(1, 2, dist.Unset)
	if _, err := eng.CondWeightsBatch(full, 0, 0, B, buf, nil); err == nil {
		t.Error("unassigned neighbor accepted")
	}
	if _, err := eng.CondWeightsLattice(full, 2, 0, buf); err == nil {
		t.Error("unassigned neighbor accepted by single-chain kernel")
	}
	if _, err := eng.CondWeightsLattice(full, B, 0, buf); err == nil {
		t.Error("out-of-range chain accepted")
	}
}

// TestFilterWeightLatticeMatchesConfig pins the lattice filter kernel to
// FilterWeight on random (old, proposal) pairs, table and closure paths,
// both representations.
func TestFilterWeightLatticeMatchesConfig(t *testing.T) {
	s := batchSpec(t)
	rng := rand.New(rand.NewSource(12))
	for _, cap := range []int{DefaultTableCap, 0} {
		eng := CompileCap(s, cap)
		n, q := eng.N(), eng.Q()
		for _, wide := range []bool{false, true} {
			restore := func() {}
			if wide {
				restore = state.SetCompactLimitForTest(0)
			}
			for trial := 0; trial < 30; trial++ {
				old := randomChains(n, q, 1, int64(100+trial))[0]
				prop := randomChains(n, q, 1, int64(200+trial))[0]
				lo, err := state.Pack(n, q, []dist.Config{old})
				if err != nil {
					t.Fatal(err)
				}
				lp, err := state.Pack(n, q, []dist.Config{prop})
				if err != nil {
					t.Fatal(err)
				}
				for i, f := range s.Factors {
					verts := make([]int, 0, len(f.Scope))
					for _, u := range f.Scope {
						seen := false
						for _, d := range verts {
							if d == u {
								seen = true
							}
						}
						if !seen && rng.Intn(2) == 0 {
							verts = append(verts, u)
						}
					}
					want, werr := eng.FilterWeight(i, old, prop, verts)
					got, gerr := eng.FilterWeightLattice(i, lo, lp, 0, verts)
					if (werr == nil) != (gerr == nil) {
						t.Fatalf("cap=%d wide=%v factor %d verts %v: err %v vs %v", cap, wide, i, verts, gerr, werr)
					}
					if got != want {
						t.Fatalf("cap=%d wide=%v factor %d verts %v: lattice %v != config %v", cap, wide, i, verts, got, want)
					}
				}
			}
			restore()
		}
	}
}
