package gibbs

// batch_test.go pins the batched conditional kernel to the single-chain
// one: CondWeightsBatch over a chain-major batch must agree exactly
// (bit-for-bit on the table path) with CondWeights called once per chain,
// on both the dense-table and closure fallback paths.

import (
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
)

// batchSpec builds a spec mixing unary, pairwise, and arity-3 factors on a
// small clique-friendly graph.
func batchSpec(t *testing.T) *Spec {
	t.Helper()
	g := graph.New(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 2}, {1, 3}} {
		g.MustAddEdge(e[0], e[1])
	}
	q := 3
	tri := make([]float64, 27)
	for i := range tri {
		tri[i] = 0.2 + float64(i%7)*0.13
	}
	pair := []float64{1, 0.5, 0.25, 0.5, 1, 0.5, 0.25, 0.5, 1}
	factors := []Factor{
		{Scope: []int{0, 1, 2}, Table: tri, Name: "tri"},
		{Scope: []int{1, 3}, Table: pair, Name: "p13"},
		{Scope: []int{3, 4}, Table: pair, Name: "p34"},
		UnaryTable(2, []float64{1, 2, 0.5}, "field"),
		{Scope: []int{2, 3}, Eval: func(a []int) float64 {
			return 1 / (1 + float64(a[0]+2*a[1]))
		}, Name: "closure23"},
	}
	s, err := NewSpec(g, q, factors)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testBatchAgainstSingle(t *testing.T, eng *Compiled) {
	t.Helper()
	n, q := eng.N(), eng.Q()
	rng := rand.New(rand.NewSource(9))
	const B = 7
	chains := make([]dist.Config, B)
	for c := range chains {
		chains[c] = dist.NewConfig(n)
		for v := range chains[c] {
			chains[c][v] = rng.Intn(q)
		}
	}
	vals, err := PackChains(chains, n)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewBatchScratch(B)
	buf := make([]float64, B*q)
	single := make([]float64, q)
	for v := 0; v < n; v++ {
		for _, span := range [][2]int{{0, B}, {2, 5}, {B - 1, B}} {
			c0, c1 := span[0], span[1]
			got, err := eng.CondWeightsBatch(vals, B, v, c0, c1, buf, sc)
			if err != nil {
				t.Fatal(err)
			}
			for c := c0; c < c1; c++ {
				want, err := eng.CondWeights(chains[c], v, single)
				if err != nil {
					t.Fatal(err)
				}
				for x := 0; x < q; x++ {
					if got[(c-c0)*q+x] != want[x] {
						t.Fatalf("v=%d chain=%d span=[%d,%d) x=%d: batch %v != single %v",
							v, c, c0, c1, x, got[(c-c0)*q+x], want[x])
					}
				}
			}
		}
	}
}

func TestCondWeightsBatchMatchesSingle(t *testing.T) {
	s := batchSpec(t)
	t.Run("tabled", func(t *testing.T) { testBatchAgainstSingle(t, Compile(s)) })
	// A cap of 0 forces every closure factor onto the fallback path while
	// explicit tables stay tabled — both kernel paths in one batch.
	t.Run("closure-fallback", func(t *testing.T) { testBatchAgainstSingle(t, CompileCap(s, 0)) })
}

func TestCondWeightsBatchRejectsBadInput(t *testing.T) {
	eng := Compile(batchSpec(t))
	n, q := eng.N(), eng.Q()
	const B = 3
	vals := make([]int, n*B)
	buf := make([]float64, B*q)
	if _, err := eng.CondWeightsBatch(vals, B, -1, 0, B, buf, nil); err == nil {
		t.Error("negative vertex accepted")
	}
	if _, err := eng.CondWeightsBatch(vals, B, 0, 2, 1, buf, nil); err == nil {
		t.Error("empty chain range accepted")
	}
	if _, err := eng.CondWeightsBatch(vals[:n], B, 0, 0, B, buf, nil); err == nil {
		t.Error("short state accepted")
	}
	if _, err := eng.CondWeightsBatch(vals, B, 0, 0, B, buf[:1], nil); err == nil {
		t.Error("short buffer accepted")
	}
	vals[1*B+2] = dist.Unset
	if _, err := eng.CondWeightsBatch(vals, B, 0, 0, B, buf, nil); err == nil {
		t.Error("unassigned neighbor accepted")
	}
}

func TestPackUnpackChains(t *testing.T) {
	chains := []dist.Config{{0, 1, 2}, {2, 0, 1}}
	vals, err := PackChains(chains, 3)
	if err != nil {
		t.Fatal(err)
	}
	for c := range chains {
		if got := UnpackChain(vals, 2, 3, c); !got.Equal(chains[c]) {
			t.Errorf("chain %d roundtrips to %v", c, got)
		}
	}
	if _, err := PackChains([]dist.Config{{0, 1}}, 3); err == nil {
		t.Error("length mismatch accepted")
	}
}
