package gibbs

// cond_test.go pins the conditional-CDF cache to the plan path it
// replaces, mirroring plan_test.go: with identical uniform variates a
// cache-covered engine must write exactly the symbols the plan kernels
// draw (dense blocks, masked subsets, and the B = 1 lattice lookup),
// consume exactly the same number of uniforms, keep partial coverage
// bit-identical, and surface byte-for-byte the same bad-row errors —
// without consuming the erroring chain's uniform.

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/state"
)

// pairSpecQ4 is a purely pairwise q=4 spec (soft proper-coloring-ish
// tables), landing every vertex on the buffered plan walk and the generic
// LUT draw path.
func pairSpecQ4(t *testing.T) *Spec {
	t.Helper()
	g := graph.New(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		g.MustAddEdge(e[0], e[1])
	}
	pair := make([]float64, 16)
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			if a == b {
				pair[a*4+b] = 0.2
			} else {
				pair[a*4+b] = 1 + 0.1*float64(a) + 0.03*float64(b)
			}
		}
	}
	factors := []Factor{
		UnaryTable(1, []float64{1, 0.5, 2, 0.25}, "u1"),
		{Scope: []int{0, 1}, Table: pair, Name: "p01"},
		{Scope: []int{1, 2}, Table: pair, Name: "p12"},
		{Scope: []int{2, 3}, Table: pair, Name: "p23"},
		{Scope: []int{3, 0}, Table: pair, Name: "p30"},
	}
	s, err := NewSpec(g, 4, factors)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// condTestSpecs covers every draw path: q=2 register, q=3 register, q=3
// buffered (mixed arities + closures), q=4 generic.
func condTestSpecs(t *testing.T) []struct {
	name string
	s    *Spec
} {
	t.Helper()
	return []struct {
		name string
		s    *Spec
	}{
		{"q2", unaryFirstSpec(t)},
		{"q3-pair", pairSpecQ3(t)},
		{"q3-mixed", batchSpec(t)},
		{"q4-pair", pairSpecQ4(t)},
	}
}

// condEngines compiles the spec twice — one engine with the cache off, one
// with it on — so the two paths can run the same draws side by side.
func condEngines(t *testing.T, s *Spec, tableCap int) (off, on *Compiled) {
	t.Helper()
	off = CompileCap(s, tableCap)
	off.SetCondMode(CondOff)
	on = CompileCap(s, tableCap)
	return off, on
}

// TestCondSamplingMatchesPlanPath is the shadow-RNG equivalence property:
// the cached dense, subset, and bound-subset kernels must write exactly
// the cells the plan kernels write for identical generator states, on
// compact and forced-wide lattices, on the tabled and closure-fallback
// engines.
func TestCondSamplingMatchesPlanPath(t *testing.T) {
	const B = 6
	for _, spec := range condTestSpecs(t) {
		t.Run(spec.name, func(t *testing.T) {
			for _, rep := range []struct {
				name string
				wide bool
			}{{"compact", false}, {"wide", true}} {
				t.Run(rep.name, func(t *testing.T) {
					for _, cap := range []struct {
						name string
						cap  int
					}{{"tabled", DefaultTableCap}, {"closure-fallback", 0}} {
						t.Run(cap.name, func(t *testing.T) {
							if rep.wide {
								defer state.SetCompactLimitForTest(0)()
							}
							engOff, engOn := condEngines(t, spec.s, cap.cap)
							n, q := engOn.N(), engOn.Q()
							if st := engOn.CondStats(); st.Cached != n {
								t.Fatalf("cache covers %d of %d vertices, want all", st.Cached, n)
							}
							latOff, err := state.Pack(n, q, randomChains(n, q, B, 91))
							if err != nil {
								t.Fatal(err)
							}
							latOn, err := state.Pack(n, q, randomChains(n, q, B, 91))
							if err != nil {
								t.Fatal(err)
							}
							if latOff.Compact() == rep.wide {
								t.Fatalf("lattice Compact() = %v with wide=%v", latOff.Compact(), rep.wide)
							}
							sc := NewBatchScratch(B)
							buf := make([]float64, B*q)
							rngOff := dist.NewXoshiro(13, 4)
							rngOn := rngOff
							same := func(stage string) {
								t.Helper()
								if rngOff != rngOn {
									t.Fatalf("%s: generators diverged (different uniform consumption)", stage)
								}
								for v := 0; v < n; v++ {
									for c := 0; c < B; c++ {
										if a, b := latOff.Get(v, c), latOn.Get(v, c); a != b {
											t.Fatalf("%s: cell (%d,%d) plan=%d cache=%d", stage, v, c, a, b)
										}
									}
								}
							}
							// Dense sweeps over spans including single-chain
							// blocks (the scalar fast path).
							for sweep := 0; sweep < 8; sweep++ {
								for v := 0; v < n; v++ {
									for _, span := range [][2]int{{0, B}, {2, 3}, {B - 1, B}} {
										if err := engOff.SampleVertexBatch(latOff, v, span[0], span[1], buf, sc, &rngOff); err != nil {
											t.Fatal(err)
										}
										if err := engOn.SampleVertexBatch(latOn, v, span[0], span[1], buf, sc, &rngOn); err != nil {
											t.Fatal(err)
										}
									}
								}
							}
							same("dense")
							// Masked subsets, including the unbound entry point.
							subsets := [][]int32{{0}, {1, 3, 4}, {0, 1, 2, 3, 4, 5}, {5}}
							for sweep := 0; sweep < 4; sweep++ {
								for v := 0; v < n; v++ {
									chains := subsets[(sweep+v)%len(subsets)]
									if err := engOff.SampleVertexSubset(latOff, v, chains, buf, sc, &rngOff); err != nil {
										t.Fatal(err)
									}
									if err := engOn.SampleVertexSubset(latOn, v, chains, buf, sc, &rngOn); err != nil {
										t.Fatal(err)
									}
								}
							}
							same("subset")
							bindOff, err := engOff.BindVertexSubset(latOff)
							if err != nil {
								t.Fatal(err)
							}
							bindOn, err := engOn.BindVertexSubset(latOn)
							if err != nil {
								t.Fatal(err)
							}
							for sweep := 0; sweep < 4; sweep++ {
								for v := 0; v < n; v++ {
									chains := subsets[(sweep+v+1)%len(subsets)]
									if err := bindOff(v, chains, buf, sc, &rngOff); err != nil {
										t.Fatal(err)
									}
									if err := bindOn(v, chains, buf, sc, &rngOn); err != nil {
										t.Fatal(err)
									}
								}
							}
							same("bound-subset")
						})
					}
				})
			}
		})
	}
}

// TestCondLookupLatticeMatchesSampleWeights pins the B = 1 path: for the
// same uniform, CondLookupLattice + CondDrawCum must return exactly the
// symbol dist.SampleWeightsX draws from the CondWeightsLattice row.
func TestCondLookupLatticeMatchesSampleWeights(t *testing.T) {
	for _, spec := range condTestSpecs(t) {
		t.Run(spec.name, func(t *testing.T) {
			_, eng := condEngines(t, spec.s, DefaultTableCap)
			n, q := eng.N(), eng.Q()
			lat, err := state.Pack(n, q, randomChains(n, q, 1, 3))
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]float64, q)
			rng := dist.NewXoshiro(99, 0)
			for sweep := 0; sweep < 50; sweep++ {
				for v := 0; v < n; v++ {
					shadow := rng
					w, err := eng.CondWeightsLattice(lat, 0, v, buf)
					if err != nil {
						t.Fatal(err)
					}
					want, err := dist.SampleWeightsX(w, &shadow)
					if err != nil {
						t.Fatal(err)
					}
					cum, last, ok := eng.CondLookupLattice(lat, 0, v)
					if !ok {
						t.Fatalf("vertex %d not served by the cache", v)
					}
					got := CondDrawCum(cum, last, rng.Float64())
					if got != want {
						t.Fatalf("sweep %d v=%d: cache drew %d, SampleWeightsX %d", sweep, v, got, want)
					}
					if rng != shadow {
						t.Fatalf("sweep %d v=%d: uniform consumption diverged", sweep, v)
					}
					lat.Set(v, 0, got)
				}
			}
			// The lookup declines calls it cannot serve instead of guessing.
			eng.SetCondMode(CondOff)
			if _, _, ok := eng.CondLookupLattice(lat, 0, 0); ok {
				t.Error("lookup served a CondOff engine")
			}
			eng.SetCondMode(CondAuto)
			if _, _, ok := eng.CondLookupLattice(lat, 0, -1); ok {
				t.Error("lookup served a negative vertex")
			}
			if _, _, ok := eng.CondLookupLattice(lat, 1, 0); ok {
				t.Error("lookup served an out-of-range chain")
			}
			fresh, err := state.New(n, 1, q)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, ok := eng.CondLookupLattice(fresh, 0, 0); ok {
				t.Error("lookup served an unset neighborhood")
			}
		})
	}
}

// TestCondPartialCoverage shrinks the budgets so only part of the graph is
// cached and checks the mixed cached/uncached sweep stays bit-identical —
// the greedy byte budget must not change semantics, only speed.
func TestCondPartialCoverage(t *testing.T) {
	s := pairSpecQ3(t)
	// Each vertex of the q=3 cycle needs 3²·3 = 27 row entries ≈ 240 bytes;
	// a 500-byte budget caches the first two vertices only.
	restore := SetCondCapForTest(DefaultCondCap, 500)
	defer restore()
	engOff, engOn := condEngines(t, s, DefaultTableCap)
	n, q := engOn.N(), engOn.Q()
	st := engOn.CondStats()
	if st.Cached == 0 || st.Cached == n {
		t.Fatalf("want partial coverage, got %d of %d cached (%d bytes)", st.Cached, n, st.Bytes)
	}
	const B = 5
	latOff, err := state.Pack(n, q, randomChains(n, q, B, 7))
	if err != nil {
		t.Fatal(err)
	}
	latOn, err := state.Pack(n, q, randomChains(n, q, B, 7))
	if err != nil {
		t.Fatal(err)
	}
	sc := NewBatchScratch(B)
	buf := make([]float64, B*q)
	rngOff := dist.NewXoshiro(41, 2)
	rngOn := rngOff
	for sweep := 0; sweep < 10; sweep++ {
		for v := 0; v < n; v++ {
			if err := engOff.SampleVertexBatch(latOff, v, 0, B, buf, sc, &rngOff); err != nil {
				t.Fatal(err)
			}
			if err := engOn.SampleVertexBatch(latOn, v, 0, B, buf, sc, &rngOn); err != nil {
				t.Fatal(err)
			}
		}
	}
	if rngOff != rngOn {
		t.Fatal("generators diverged under partial coverage")
	}
	for v := 0; v < n; v++ {
		for c := 0; c < B; c++ {
			if a, b := latOff.Get(v, c), latOn.Get(v, c); a != b {
				t.Fatalf("cell (%d,%d): plan=%d mixed=%d", v, c, a, b)
			}
		}
	}
}

// TestCondCapGates checks the eligibility caps: a zero entry cap caches
// nothing (kernels fall back to the plan walk), and CondOn lifts the byte
// budget but not the entry cap.
func TestCondCapGates(t *testing.T) {
	t.Run("zero-entry-cap", func(t *testing.T) {
		defer SetCondCapForTest(0, int64(DefaultCondBytes))()
		_, eng := condEngines(t, pairSpecQ3(t), DefaultTableCap)
		if st := eng.CondStats(); st.Cached != 0 || st.Bytes != 0 {
			t.Fatalf("zero cap cached %+v", st)
		}
		// Kernels still work through the plan walk.
		n, q := eng.N(), eng.Q()
		lat, err := state.Pack(n, q, randomChains(n, q, 3, 5))
		if err != nil {
			t.Fatal(err)
		}
		rng := dist.NewXoshiro(1, 0)
		if err := eng.SampleVertexBatch(lat, 0, 0, 3, make([]float64, 3*q), nil, &rng); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("cond-on-lifts-byte-budget", func(t *testing.T) {
		defer SetCondCapForTest(DefaultCondCap, 1)()
		_, eng := condEngines(t, pairSpecQ3(t), DefaultTableCap)
		eng.SetCondMode(CondOn)
		if st := eng.CondStats(); st.Cached != eng.N() {
			t.Fatalf("CondOn under a 1-byte budget cached %d of %d", st.Cached, eng.N())
		}
	})
	t.Run("auto-respects-byte-budget", func(t *testing.T) {
		defer SetCondCapForTest(DefaultCondCap, 1)()
		_, eng := condEngines(t, pairSpecQ3(t), DefaultTableCap)
		if st := eng.CondStats(); st.Cached != 0 {
			t.Fatalf("1-byte budget cached %d vertices", st.Cached)
		}
	})
}

// TestCondBadRowMatchesPlanError forces a reachable zero-mass conditional
// (a two-coloring path pinned to opposite colors around the middle vertex)
// and checks the cached path reproduces the plan path's error byte for
// byte without consuming the erroring chain's uniform.
func TestCondBadRowMatchesPlanError(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	diff := []float64{0, 1, 1, 0}
	s, err := NewSpec(g, 2, []Factor{
		{Scope: []int{0, 1}, Table: diff, Name: "p01"},
		{Scope: []int{1, 2}, Table: diff, Name: "p12"},
	})
	if err != nil {
		t.Fatal(err)
	}
	engOff, engOn := condEngines(t, s, DefaultTableCap)
	mk := func() *state.Lattice {
		cfg := dist.NewConfig(3)
		cfg[0], cfg[1], cfg[2] = 0, 0, 1 // v1's conditional: both colors blocked
		lat, err := state.Pack(3, 2, []dist.Config{cfg})
		if err != nil {
			t.Fatal(err)
		}
		return lat
	}
	buf := make([]float64, 2)
	rngOff := dist.NewXoshiro(3, 0)
	rngOn := rngOff
	errOff := engOff.SampleVertexBatch(mk(), 1, 0, 1, buf, nil, &rngOff)
	errOn := engOn.SampleVertexBatch(mk(), 1, 0, 1, buf, nil, &rngOn)
	if errOff == nil || errOn == nil {
		t.Fatalf("zero-mass row not diagnosed: off=%v on=%v", errOff, errOn)
	}
	if errOff.Error() != errOn.Error() {
		t.Fatalf("errors differ:\noff: %v\non:  %v", errOff, errOn)
	}
	if rngOff != rngOn {
		t.Fatal("generators diverged on the error path")
	}
	// The B = 1 lookup declines bad rows so the fallback rebuilds the same
	// error.
	if _, _, ok := engOn.CondLookupLattice(mk(), 0, 1); ok {
		t.Error("lookup served a zero-mass row")
	}
	// Subset kernel, same contract.
	errOff = engOff.SampleVertexSubset(mk(), 1, []int32{0}, buf, nil, &rngOff)
	errOn = engOn.SampleVertexSubset(mk(), 1, []int32{0}, buf, nil, &rngOn)
	if errOff == nil || errOn == nil || errOff.Error() != errOn.Error() {
		t.Fatalf("subset errors differ:\noff: %v\non:  %v", errOff, errOn)
	}
	if rngOff != rngOn {
		t.Fatal("generators diverged on the subset error path")
	}
}
