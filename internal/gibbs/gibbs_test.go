package gibbs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/graph"
)

// hardcoreSpec builds a hardcore spec by hand (the model package depends on
// gibbs, so tests here construct factors directly).
func hardcoreSpec(t *testing.T, g *graph.Graph, lambda float64) *Spec {
	t.Helper()
	var factors []Factor
	for v := 0; v < g.N(); v++ {
		factors = append(factors, Factor{
			Scope: []int{v},
			Eval: func(a []int) float64 {
				if a[0] == 1 {
					return lambda
				}
				return 1
			},
		})
	}
	for _, e := range g.Edges() {
		factors = append(factors, Factor{
			Scope: []int{e.U, e.V},
			Eval: func(a []int) float64 {
				if a[0] == 1 && a[1] == 1 {
					return 0
				}
				return 1
			},
		})
	}
	s, err := NewSpec(g, 2, factors)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSpecErrors(t *testing.T) {
	g := graph.Path(3)
	if _, err := NewSpec(g, 0, nil); err == nil {
		t.Error("q=0 accepted")
	}
	if _, err := NewSpec(g, 2, []Factor{{Scope: []int{5}, Eval: func([]int) float64 { return 1 }}}); err == nil {
		t.Error("out-of-range scope accepted")
	}
	if _, err := NewSpec(g, 2, []Factor{{Scope: []int{0}}}); err == nil {
		t.Error("nil Eval accepted")
	}
	if _, err := NewSpec(g, 2, []Factor{{Scope: nil, Eval: func([]int) float64 { return 1 }}}); err == nil {
		t.Error("empty scope accepted")
	}
}

func TestWeight(t *testing.T) {
	g := graph.Path(3)
	s := hardcoreSpec(t, g, 2)
	// Independent set {0, 2}: weight λ² = 4.
	w, err := s.Weight(dist.Config{1, 0, 1})
	if err != nil || w != 4 {
		t.Fatalf("w = %v err %v", w, err)
	}
	// Adjacent occupied: weight 0.
	w, _ = s.Weight(dist.Config{1, 1, 0})
	if w != 0 {
		t.Fatalf("infeasible weight = %v", w)
	}
	// Partial configuration is an error.
	if _, err := s.Weight(dist.Config{1, dist.Unset, 0}); err == nil {
		t.Error("partial config weight accepted")
	}
}

func TestLocality(t *testing.T) {
	g := graph.Path(4)
	s := hardcoreSpec(t, g, 1)
	ell, err := s.Locality()
	if err != nil {
		t.Fatal(err)
	}
	if ell != 1 {
		t.Fatalf("pairwise model locality = %d, want 1", ell)
	}
	// A factor spanning distance 3 has diameter 3.
	far, err := NewSpec(g, 2, []Factor{{Scope: []int{0, 3}, Eval: func([]int) float64 { return 1 }}})
	if err != nil {
		t.Fatal(err)
	}
	ell, err = far.Locality()
	if err != nil || ell != 3 {
		t.Fatalf("long factor locality = %d err %v", ell, err)
	}
}

func TestLocallyFeasible(t *testing.T) {
	g := graph.Path(3)
	s := hardcoreSpec(t, g, 1)
	c := dist.NewConfig(3)
	if !s.LocallyFeasible(c) {
		t.Error("empty config infeasible")
	}
	c[0], c[1] = 1, 1
	if s.LocallyFeasible(c) {
		t.Error("adjacent occupied locally feasible")
	}
	c[1] = 0
	if !s.LocallyFeasible(c) {
		t.Error("valid partial config infeasible")
	}
}

func TestLocallyFeasibleAt(t *testing.T) {
	g := graph.Cycle(4)
	s := hardcoreSpec(t, g, 1)
	c := dist.NewConfig(4)
	c[0], c[1] = 1, 1
	if s.LocallyFeasibleAt(c, 0) {
		t.Error("violated factor at 0 not detected")
	}
	if !s.LocallyFeasibleAt(c, 2) {
		t.Error("vertex 2 has no violated factor")
	}
}

func TestFactorsAt(t *testing.T) {
	g := graph.Path(3)
	s := hardcoreSpec(t, g, 1)
	// Vertex 1 appears in its activity factor and two edge factors.
	if got := len(s.FactorsAt(1)); got != 3 {
		t.Fatalf("factors at 1 = %d", got)
	}
	if s.FactorsAt(-1) != nil || s.FactorsAt(9) != nil {
		t.Error("out-of-range factor query should be nil")
	}
}

func TestGreedyCompletion(t *testing.T) {
	g := graph.Cycle(5)
	s := hardcoreSpec(t, g, 1)
	c := dist.NewConfig(5)
	c[0] = 1
	out, err := s.GreedyCompletion(c)
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsTotal() {
		t.Fatal("completion not total")
	}
	if out[0] != 1 {
		t.Fatal("completion changed pinned value")
	}
	w, err := s.Weight(out)
	if err != nil || w <= 0 {
		t.Fatalf("greedy completion infeasible: w=%v err=%v", w, err)
	}
}

func TestGreedyCompletionStuck(t *testing.T) {
	// 1-coloring of an edge has no feasible completion.
	g := graph.Path(2)
	s, err := NewSpec(g, 1, []Factor{{
		Scope: []int{0, 1},
		Eval: func(a []int) float64 {
			if a[0] == a[1] {
				return 0
			}
			return 1
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.GreedyCompletion(dist.NewConfig(2)); err == nil {
		t.Error("impossible completion succeeded")
	}
}

func TestWeightRatioOnBall(t *testing.T) {
	g := graph.Path(4)
	s := hardcoreSpec(t, g, 3)
	a := dist.Config{0, 0, 0, 0}
	b := dist.Config{1, 0, 0, 0}
	r, err := s.WeightRatioOnBall(b, a, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	wa, _ := s.Weight(a)
	wb, _ := s.Weight(b)
	if !almostEq(r, wb/wa, 1e-12) {
		t.Fatalf("ratio = %v, want %v", r, wb/wa)
	}
	// Infeasible old config in the touched region errors.
	bad := dist.Config{1, 1, 0, 0}
	if _, err := s.WeightRatioOnBall(a, bad, []int{0, 1}); err == nil {
		t.Error("zero denominator accepted")
	}
}

// Property: WeightRatioOnBall equals the true weight ratio for random
// feasible pairs differing on the declared set.
func TestWeightRatioProperty(t *testing.T) {
	g := graph.Cycle(6)
	s := hardcoreSpec(t, g, 2)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Random feasible config: greedy from random order of 1-attempts.
		a := dist.Config{0, 0, 0, 0, 0, 0}
		for v := 0; v < 6; v++ {
			if r.Intn(2) == 1 {
				a[v] = 1
				if !s.LocallyFeasibleAt(a, v) {
					a[v] = 0
				}
			}
		}
		// Flip one vertex if feasible.
		v := r.Intn(6)
		b := a.Clone()
		b[v] = 1 - b[v]
		if !s.LocallyFeasible(b) {
			return true // skip infeasible flips
		}
		ratio, err := s.WeightRatioOnBall(b, a, []int{v})
		if err != nil {
			return false
		}
		wa, _ := s.Weight(a)
		wb, _ := s.Weight(b)
		return almostEq(ratio, wb/wa, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(14))}); err != nil {
		t.Error(err)
	}
}

func TestInstancePinning(t *testing.T) {
	g := graph.Path(3)
	s := hardcoreSpec(t, g, 1)
	in, err := NewInstance(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.FreeVertices()) != 3 || len(in.Lambda()) != 0 {
		t.Fatal("fresh instance pinning wrong")
	}
	in2, err := in.Pin(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if in.Pinned[1] != dist.Unset {
		t.Error("Pin mutated original instance")
	}
	if in2.Pinned[1] != 1 {
		t.Error("Pin did not pin")
	}
	// Conflicting repin.
	if _, err := in2.Pin(1, 0); err == nil {
		t.Error("conflicting repin accepted")
	}
	// Identical repin is fine.
	if _, err := in2.Pin(1, 1); err != nil {
		t.Error("identical repin rejected")
	}
	// Bad values.
	if _, err := in.Pin(1, 5); err == nil {
		t.Error("symbol outside alphabet accepted")
	}
	if _, err := in.Pin(-1, 0); err == nil {
		t.Error("vertex out of range accepted")
	}
}

func TestNewInstanceValidation(t *testing.T) {
	g := graph.Path(2)
	s := hardcoreSpec(t, g, 1)
	if _, err := NewInstance(s, dist.Config{0}); err == nil {
		t.Error("short pinning accepted")
	}
	if _, err := NewInstance(s, dist.Config{7, dist.Unset}); err == nil {
		t.Error("out-of-alphabet pinning accepted")
	}
	pin := dist.Config{1, dist.Unset}
	in, err := NewInstance(s, pin)
	if err != nil {
		t.Fatal(err)
	}
	pin[0] = 0
	if in.Pinned[0] != 1 {
		t.Error("instance shares pinning storage with caller")
	}
}

func TestConsistentTotalAndWeightIfConsistent(t *testing.T) {
	g := graph.Path(2)
	s := hardcoreSpec(t, g, 2)
	in, _ := NewInstance(s, dist.Config{1, dist.Unset})
	if !in.ConsistentTotal(dist.Config{1, 0}) {
		t.Error("consistent config rejected")
	}
	if in.ConsistentTotal(dist.Config{0, 0}) {
		t.Error("inconsistent config accepted")
	}
	w, err := in.WeightIfConsistent(dist.Config{0, 1})
	if err != nil || w != 0 {
		t.Fatalf("inconsistent weight = %v err %v", w, err)
	}
	w, err = in.WeightIfConsistent(dist.Config{1, 0})
	if err != nil || w != 2 {
		t.Fatalf("consistent weight = %v err %v", w, err)
	}
}

func TestPinAll(t *testing.T) {
	g := graph.Path(3)
	s := hardcoreSpec(t, g, 1)
	in, _ := NewInstance(s, dist.Config{1, dist.Unset, dist.Unset})
	extra := dist.NewConfig(3)
	extra[2] = 1
	out := in.PinAll(extra)
	if out.Pinned[0] != 1 || out.Pinned[2] != 1 || out.Pinned[1] != dist.Unset {
		t.Fatalf("PinAll = %v", out.Pinned)
	}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
