package gibbs

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/dist"
)

// DefaultTableCap is the default maximum number of entries (q^|Scope|) a
// factor may need before Compile falls back to its Eval closure instead of
// materializing a dense weight table. All pairwise models ship tables of at
// most q² entries, far below the cap.
const DefaultTableCap = 1 << 12

// Compiled is the compiled evaluation engine for a Spec: every factor whose
// assignment space fits under the table cap is precomputed into a dense
// weight table indexed by the big-endian mixed-radix encoding of its scope
// assignment, and the per-vertex factor index is flattened into CSR form
// with duplicates removed. The kernels below evaluate factors without
// allocating and without calling through function pointers on the table
// path.
//
// All kernels are pure with respect to the engine and safe for concurrent
// use, except that WeightRatioOnBall writes into the caller-provided
// Scratch (use one Scratch per goroutine) and CondWeights writes into the
// caller-provided buffer.
type Compiled struct {
	spec *Spec
	q    int
	n    int

	factors []cfactor

	// Deduplicated CSR: factor indices containing v are
	// idx[off[v]:off[v+1]], strictly increasing (a vertex repeated inside
	// one scope yields a single entry, unlike Spec.FactorsAt).
	off []int32
	idx []int32

	// plan is the per-vertex sweep plan of the fused batch kernels (see
	// plan.go), built lazily on first use — Compile stays cheap for callers
	// that never batch.
	planOnce sync.Once
	plan     *SweepPlan

	// cond is the conditional-CDF cache layered on the plan (see cond.go),
	// likewise lazy and immutable; condMode gates its use (CondAuto zero
	// value).
	condOnce sync.Once
	cond     *CondCache
	condMode atomic.Int32
}

// cfactor is one compiled factor: either a dense table (fast path) or the
// original closure (fallback above the cap).
type cfactor struct {
	scope   []int32
	strides []int32 // strides[j] = q^(s−1−j); index = Σ assign[j]·strides[j]
	table   []float64
	eval    func([]int) float64 // non-nil iff table is nil
}

// Compile builds the compiled engine for the spec with the default table
// cap. Factors carrying an explicit Table are adopted verbatim (shared, not
// copied); closure factors with q^|Scope| ≤ DefaultTableCap are enumerated
// into fresh tables; larger closure factors stay on the closure path.
func Compile(s *Spec) *Compiled {
	return CompileCap(s, DefaultTableCap)
}

// CompileCap is Compile with an explicit table-size cap (entries per
// factor). A cap below q leaves every closure factor uncompiled — useful
// for exercising the fallback path in tests.
func CompileCap(s *Spec, tableCap int) *Compiled {
	c := &Compiled{spec: s, q: s.Q, n: s.N()}
	c.factors = make([]cfactor, len(s.Factors))
	for i, f := range s.Factors {
		cf := &c.factors[i]
		cf.scope = make([]int32, len(f.Scope))
		for j, v := range f.Scope {
			cf.scope[j] = int32(v)
		}
		cf.strides = strides(s.Q, len(f.Scope))
		size, sizeErr := tableSize(s.Q, len(f.Scope))
		switch {
		case f.Table != nil:
			cf.table = f.Table
		case sizeErr == nil && size <= tableCap:
			cf.table = enumerateTable(f.Eval, s.Q, size, len(f.Scope))
		default:
			cf.eval = f.Eval
		}
	}
	// Deduplicated CSR built from the spec's (per-vertex increasing) index.
	c.off = make([]int32, c.n+1)
	c.idx = make([]int32, 0, len(s.factorIdx))
	for v := 0; v < c.n; v++ {
		prev := int32(-1)
		for _, fi := range s.FactorsAt(v) {
			if fi != prev {
				c.idx = append(c.idx, fi)
				prev = fi
			}
		}
		c.off[v+1] = int32(len(c.idx))
	}
	return c
}

// strides returns the big-endian mixed-radix strides for a scope of size s.
func strides(q, s int) []int32 {
	st := make([]int32, s)
	acc := int32(1)
	for j := s - 1; j >= 0; j-- {
		st[j] = acc
		acc *= int32(q)
	}
	return st
}

// enumerateTable materializes a closure factor into a dense table of the
// given (pre-validated) size q^s.
func enumerateTable(eval func([]int) float64, q, size, s int) []float64 {
	table := make([]float64, size)
	assign := make([]int, s)
	for idx := 0; idx < size; idx++ {
		rem := idx
		for j := s - 1; j >= 0; j-- {
			assign[j] = rem % q
			rem /= q
		}
		table[idx] = eval(assign)
	}
	return table
}

// Spec returns the specification the engine was compiled from.
func (c *Compiled) Spec() *Spec { return c.spec }

// N returns the number of variables.
func (c *Compiled) N() int { return c.n }

// Q returns the alphabet size.
func (c *Compiled) Q() int { return c.q }

// Tabled reports whether factor i is on the dense-table fast path.
func (c *Compiled) Tabled(i int) bool { return c.factors[i].table != nil }

// FactorsAt returns the indices of factors whose scope contains v, strictly
// increasing and deduplicated. The slice aliases engine state and must not
// be modified.
func (c *Compiled) FactorsAt(v int) []int32 {
	if v < 0 || v >= c.n {
		return nil
	}
	return c.idx[c.off[v]:c.off[v+1]]
}

// EvalFull evaluates factor i on the configuration, requiring every scope
// vertex assigned; ok is false otherwise. Symbols must lie in 0..q−1.
func (c *Compiled) EvalFull(i int, cfg dist.Config) (val float64, ok bool) {
	f := &c.factors[i]
	if f.table != nil {
		idx := int32(0)
		for j, v := range f.scope {
			if int(v) >= len(cfg) {
				return 0, false
			}
			x := cfg[v]
			if x < 0 { // Unset
				return 0, false
			}
			idx += int32(x) * f.strides[j]
		}
		return f.table[idx], true
	}
	assign := make([]int, len(f.scope))
	for j, v := range f.scope {
		if int(v) >= len(cfg) || cfg[v] == dist.Unset {
			return 0, false
		}
		assign[j] = cfg[v]
	}
	return f.eval(assign), true
}

// Weight returns w(σ) = Π f(σ_S) over all factors. The configuration must
// be total. Factors are visited in index order, matching Spec.Weight
// bit-for-bit on table-backed specs.
func (c *Compiled) Weight(cfg dist.Config) (float64, error) {
	if !cfg.IsTotal() {
		return 0, errors.New("gibbs: Weight requires a total configuration")
	}
	w := 1.0
	for i := range c.factors {
		val, ok := c.EvalFull(i, cfg)
		if !ok {
			return 0, errors.New("gibbs: factor scope unassigned")
		}
		w *= val
		if w == 0 {
			return 0, nil
		}
	}
	return w, nil
}

// PartialWeight returns the product of the factors whose scopes are fully
// assigned under the partial configuration σ.
func (c *Compiled) PartialWeight(cfg dist.Config) float64 {
	w := 1.0
	for i := range c.factors {
		val, ok := c.EvalFull(i, cfg)
		if !ok {
			continue
		}
		w *= val
		if w == 0 {
			return 0
		}
	}
	return w
}

// LocallyFeasible reports whether no fully assigned factor evaluates to
// zero under σ.
func (c *Compiled) LocallyFeasible(cfg dist.Config) bool {
	return c.PartialWeight(cfg) > 0
}

// LocallyFeasibleAt reports whether the factors involving vertex v that are
// fully assigned under c are all satisfied.
func (c *Compiled) LocallyFeasibleAt(cfg dist.Config, v int) bool {
	for _, i := range c.FactorsAt(v) {
		val, ok := c.EvalFull(int(i), cfg)
		if ok && val == 0 {
			return false
		}
	}
	return true
}

// PartialWeightAt returns the product of the factors containing v whose
// scopes are fully assigned under cfg — the multiplicative change in
// PartialWeight caused by assigning v after all currently assigned
// vertices. Summed over an assignment order, every factor is accounted
// exactly once (by the last of its scope vertices to be assigned), which is
// what turns exhaustive enumeration into an incremental product.
func (c *Compiled) PartialWeightAt(cfg dist.Config, v int) float64 {
	w := 1.0
	for _, i := range c.FactorsAt(v) {
		val, ok := c.EvalFull(int(i), cfg)
		if !ok {
			continue
		}
		w *= val
		if w == 0 {
			return 0
		}
	}
	return w
}

// CondWeights fills buf[0:q] with the unnormalized heat-bath conditional
// weights of vertex v: buf[x] = Π over factors containing v of the factor
// evaluated with v set to x and every other scope vertex read from cfg
// (which must assign them). It performs no allocation on the table path and
// never writes to cfg; the filled prefix buf[:q] is returned.
func (c *Compiled) CondWeights(cfg dist.Config, v int, buf []float64) ([]float64, error) {
	if v < 0 || v >= c.n {
		return nil, fmt.Errorf("gibbs: conditional vertex %d out of range", v)
	}
	if len(buf) < c.q {
		return nil, fmt.Errorf("gibbs: conditional buffer has %d entries, need q = %d", len(buf), c.q)
	}
	w := buf[:c.q]
	for x := range w {
		w[x] = 1
	}
	for _, fi := range c.FactorsAt(v) {
		f := &c.factors[fi]
		if f.table != nil {
			base := int32(0)
			sv := int32(0)
			for j, u := range f.scope {
				if int(u) == v {
					// Repeated occurrences of v all take the same symbol,
					// so their strides simply accumulate.
					sv += f.strides[j]
					continue
				}
				if int(u) >= len(cfg) || cfg[u] < 0 {
					return nil, fmt.Errorf("gibbs: conditional at %d: scope vertex %d unassigned", v, u)
				}
				base += int32(cfg[u]) * f.strides[j]
			}
			for x := int32(0); x < int32(c.q); x++ {
				w[x] *= f.table[base+x*sv]
			}
			continue
		}
		assign := make([]int, len(f.scope))
		for x := 0; x < c.q; x++ {
			for j, u := range f.scope {
				if int(u) == v {
					assign[j] = x
					continue
				}
				if int(u) >= len(cfg) || cfg[u] == dist.Unset {
					return nil, fmt.Errorf("gibbs: conditional at %d: scope vertex %d unassigned", v, u)
				}
				assign[j] = cfg[u]
			}
			w[x] *= f.eval(assign)
		}
	}
	return w, nil
}

// Scratch holds the reusable buffers of the scratch-taking kernels. Use one
// Scratch per goroutine; a zero-length one is grown on demand by
// NewScratch.
type Scratch struct {
	mark    []int // per-factor visit stamp
	epoch   int
	touched []int32
}

// NewScratch returns scratch space sized for the engine.
func (c *Compiled) NewScratch() *Scratch {
	return &Scratch{mark: make([]int, len(c.factors))}
}

// WeightRatioOnBall returns w(σ')/w(σ) where σ' and σ are total
// configurations differing only inside the vertex set D. Only factors whose
// scope intersects D contribute (equation (12) of the paper), visited in
// increasing factor order so the rounded result is deterministic, matching
// Spec.WeightRatioOnBall. sc may be nil (a throwaway scratch is allocated);
// pass a reused Scratch for the zero-allocation path.
func (c *Compiled) WeightRatioOnBall(sigmaNew, sigmaOld dist.Config, d []int, sc *Scratch) (float64, error) {
	if sc == nil {
		sc = c.NewScratch()
	} else if len(sc.mark) < len(c.factors) {
		// Grow the caller's scratch in place so subsequent calls reuse it.
		sc.mark = make([]int, len(c.factors))
		sc.epoch = 0
	}
	sc.epoch++
	sc.touched = sc.touched[:0]
	for _, v := range d {
		for _, fi := range c.FactorsAt(v) {
			if sc.mark[fi] != sc.epoch {
				sc.mark[fi] = sc.epoch
				sc.touched = append(sc.touched, fi)
			}
		}
	}
	slices.Sort(sc.touched)
	ratio := 1.0
	for _, fi := range sc.touched {
		num, ok1 := c.EvalFull(int(fi), sigmaNew)
		den, ok2 := c.EvalFull(int(fi), sigmaOld)
		if !ok1 || !ok2 {
			return 0, errors.New("gibbs: weight ratio on partial configuration")
		}
		if den == 0 {
			return 0, fmt.Errorf("%w: zero factor in ratio denominator", ErrInfeasible)
		}
		ratio *= num / den
	}
	return ratio, nil
}

// GreedyCompletion extends the partial configuration to a total, locally
// feasible configuration exactly as Spec.GreedyCompletion, using the
// compiled feasibility kernel.
func (c *Compiled) GreedyCompletion(cfg dist.Config) (dist.Config, error) {
	out := cfg.Clone()
	for v := 0; v < c.n; v++ {
		if out[v] != dist.Unset {
			continue
		}
		done := false
		for x := 0; x < c.q; x++ {
			out[v] = x
			if c.LocallyFeasibleAt(out, v) {
				done = true
				break
			}
		}
		if !done {
			out[v] = dist.Unset
			return nil, fmt.Errorf("%w: no locally feasible value at vertex %d", ErrInfeasible, v)
		}
	}
	return out, nil
}
