package gibbs

import (
	"fmt"

	"repro/internal/dist"
)

// Instance is a sampling/counting instance (G, x, τ) per Definition 2.2: a
// Gibbs specification together with a feasible pinned partial configuration
// τ on a subset Λ ⊆ V. The target distribution is µ^τ, the Gibbs
// distribution conditioned on agreeing with τ. Pinning realizes the paper's
// self-reducibility: pinning more vertices of an instance yields another
// instance of the same class (Remark 2.2).
type Instance struct {
	Spec *Spec
	// Pinned is τ: Pinned[v] = Unset for free vertices, otherwise the pinned
	// symbol.
	Pinned dist.Config
}

// NewInstance returns an instance with the given pinning; a nil pinning
// means all vertices free. The pinning is copied.
func NewInstance(s *Spec, pinned dist.Config) (*Instance, error) {
	if pinned == nil {
		pinned = dist.NewConfig(s.N())
	}
	if len(pinned) != s.N() {
		return nil, fmt.Errorf("gibbs: pinning length %d != n %d", len(pinned), s.N())
	}
	for v, x := range pinned {
		if x != dist.Unset && (x < 0 || x >= s.Q) {
			return nil, fmt.Errorf("gibbs: pinned value %d at vertex %d outside alphabet q=%d", x, v, s.Q)
		}
	}
	return &Instance{Spec: s, Pinned: pinned.Clone()}, nil
}

// N returns the number of variables.
func (in *Instance) N() int { return in.Spec.N() }

// Q returns the alphabet size.
func (in *Instance) Q() int { return in.Spec.Q }

// Lambda returns Λ, the pinned vertex set.
func (in *Instance) Lambda() []int { return in.Pinned.Assigned() }

// FreeVertices returns V \ Λ.
func (in *Instance) FreeVertices() []int { return in.Pinned.Free() }

// Pin returns a new instance with vertex v additionally pinned to symbol x
// (self-reduction step). Pinning an already-pinned vertex to a different
// value is an error.
func (in *Instance) Pin(v, x int) (*Instance, error) {
	if v < 0 || v >= in.N() {
		return nil, fmt.Errorf("gibbs: pin vertex %d out of range", v)
	}
	if x < 0 || x >= in.Q() {
		return nil, fmt.Errorf("gibbs: pin value %d outside alphabet q=%d", x, in.Q())
	}
	if in.Pinned[v] != dist.Unset && in.Pinned[v] != x {
		return nil, fmt.Errorf("gibbs: vertex %d already pinned to %d, cannot repin to %d", v, in.Pinned[v], x)
	}
	out := &Instance{Spec: in.Spec, Pinned: in.Pinned.Clone()}
	out.Pinned[v] = x
	return out, nil
}

// PinAll returns a new instance whose pinning is the union of the current
// pinning and the given partial configuration (which wins on conflicts —
// callers ensure consistency).
func (in *Instance) PinAll(extra dist.Config) *Instance {
	out := &Instance{Spec: in.Spec, Pinned: extra.Merge(in.Pinned)}
	return out
}

// LocallyFeasible reports whether the current pinning is locally feasible.
func (in *Instance) LocallyFeasible() bool {
	return in.Spec.LocallyFeasible(in.Pinned)
}

// ConsistentTotal reports whether the total configuration c extends the
// pinning.
func (in *Instance) ConsistentTotal(c dist.Config) bool {
	for v, x := range in.Pinned {
		if x != dist.Unset && c[v] != x {
			return false
		}
	}
	return true
}

// WeightIfConsistent returns w(c) when c extends the pinning and 0
// otherwise.
func (in *Instance) WeightIfConsistent(c dist.Config) (float64, error) {
	if !in.ConsistentTotal(c) {
		return 0, nil
	}
	return in.Spec.Weight(c)
}
