package gibbs

// batch.go is the multi-chain evaluation kernel behind the batched sampler
// engine (internal/sampler.Batch): B independent chains share one Compiled
// engine and store their configurations in a structure-of-arrays layout,
// chain-major per vertex — vals[v*B + c] is chain c's symbol at vertex v.
// Advancing the same vertex in many chains at once lets the kernel fetch
// the per-vertex factor list, scope, and strides once per vertex instead
// of once per chain, and walks each factor's table for all chains while it
// is cache-hot; the mixed-radix index computation (the dominant cost of
// CondWeights, per the PR 2 measurements) is reduced to one
// multiply-accumulate per (neighbor, chain) over contiguous memory.

import (
	"fmt"

	"repro/internal/dist"
)

// BatchScratch holds the per-goroutine buffers of the batched kernels.
type BatchScratch struct {
	base   []int32
	assign []int
}

// NewBatchScratch returns scratch sized for chain groups of up to chains.
func NewBatchScratch(chains int) *BatchScratch {
	return &BatchScratch{base: make([]int32, chains)}
}

// CondWeightsBatch fills buf with the unnormalized heat-bath conditional
// weights of vertex v for the chains c0 ≤ c < c1 of a B-chain batch: on
// return buf[(c-c0)*q+x] is the product over factors containing v of the
// factor evaluated with v set to x and every other scope vertex read from
// chain c of vals (layout vals[u*B+c]). It is the exact batched equivalent
// of calling CondWeights once per chain, performs no allocation on the
// table path (sc must come from NewBatchScratch with capacity ≥ c1−c0),
// and never writes vals. The filled prefix buf[:(c1−c0)*q] is returned.
//
// Distinct vertex rows of vals may be written concurrently by other
// goroutines only if they are not in any factor scope with v — the same
// independence contract as simultaneous heat-bath updates.
func (c *Compiled) CondWeightsBatch(vals []int, B, v, c0, c1 int, buf []float64, sc *BatchScratch) ([]float64, error) {
	if v < 0 || v >= c.n {
		return nil, fmt.Errorf("gibbs: batch conditional vertex %d out of range", v)
	}
	nb := c1 - c0
	if c0 < 0 || c1 > B || nb <= 0 {
		return nil, fmt.Errorf("gibbs: batch chain range [%d,%d) invalid for B=%d", c0, c1, B)
	}
	if len(vals) < c.n*B {
		return nil, fmt.Errorf("gibbs: batch state has %d entries, need n·B = %d", len(vals), c.n*B)
	}
	if len(buf) < nb*c.q {
		return nil, fmt.Errorf("gibbs: batch buffer has %d entries, need (c1−c0)·q = %d", len(buf), nb*c.q)
	}
	if sc == nil || len(sc.base) < nb {
		sc = NewBatchScratch(nb)
	}
	w := buf[:nb*c.q]
	for i := range w {
		w[i] = 1
	}
	base := sc.base[:nb]
	q32 := int32(c.q)
	for _, fi := range c.FactorsAt(v) {
		f := &c.factors[fi]
		if f.table == nil {
			if err := c.condClosureBatch(f, vals, B, v, c0, c1, w, sc); err != nil {
				return nil, err
			}
			continue
		}
		for i := range base {
			base[i] = 0
		}
		sv := int32(0)
		for j, u := range f.scope {
			if int(u) == v {
				// Repeated occurrences of v all take the same symbol, so
				// their strides simply accumulate.
				sv += f.strides[j]
				continue
			}
			row := vals[int(u)*B+c0 : int(u)*B+c1]
			st := f.strides[j]
			for i, x := range row {
				if x < 0 {
					return nil, fmt.Errorf("gibbs: batch conditional at %d: scope vertex %d unassigned in chain %d", v, u, c0+i)
				}
				base[i] += int32(x) * st
			}
		}
		for i := 0; i < nb; i++ {
			bi := base[i]
			row := w[i*c.q : (i+1)*c.q]
			for x := int32(0); x < q32; x++ {
				row[x] *= f.table[bi+x*sv]
			}
		}
	}
	return w, nil
}

// condClosureBatch is the fallback for closure-backed factors: one scope
// assignment per (chain, symbol), evaluated through the closure.
func (c *Compiled) condClosureBatch(f *cfactor, vals []int, B, v, c0, c1 int, w []float64, sc *BatchScratch) error {
	if len(sc.assign) < len(f.scope) {
		sc.assign = make([]int, len(f.scope))
	}
	assign := sc.assign[:len(f.scope)]
	for i := 0; i < c1-c0; i++ {
		ch := c0 + i
		for x := 0; x < c.q; x++ {
			for j, u := range f.scope {
				if int(u) == v {
					assign[j] = x
					continue
				}
				xu := vals[int(u)*B+ch]
				if xu < 0 {
					return fmt.Errorf("gibbs: batch conditional at %d: scope vertex %d unassigned in chain %d", v, u, ch)
				}
				assign[j] = xu
			}
			w[i*c.q+x] *= f.eval(assign)
		}
	}
	return nil
}

// PackChains lays out the given total configurations (all of length n) in
// the chain-major batch layout: out[v*B+c] = chains[c][v].
func PackChains(chains []dist.Config, n int) ([]int, error) {
	B := len(chains)
	out := make([]int, n*B)
	for ci, cfg := range chains {
		if len(cfg) != n {
			return nil, fmt.Errorf("gibbs: chain %d has %d vertices, want %d", ci, len(cfg), n)
		}
		for v, x := range cfg {
			out[v*B+ci] = x
		}
	}
	return out, nil
}

// UnpackChain extracts chain c of a B-chain batch state into a fresh
// configuration.
func UnpackChain(vals []int, B, n, c int) dist.Config {
	out := dist.NewConfig(n)
	for v := 0; v < n; v++ {
		out[v] = vals[v*B+c]
	}
	return out
}
