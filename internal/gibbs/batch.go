package gibbs

// batch.go is the multi-chain evaluation kernel behind the batched sampler
// engine (internal/sampler.Batch): B independent chains share one Compiled
// engine and store their configurations in a state.Lattice — chain-major
// per vertex, cell (v, c) at vals[v*B+c]. Advancing the same vertex in many
// chains at once lets the kernel fetch the per-vertex factor list, scope,
// and strides once per vertex instead of once per chain, and walks each
// factor's table for all chains while it is cache-hot; the mixed-radix
// index computation (the dominant cost of CondWeights, per the PR 2
// measurements) is reduced to one multiply-accumulate per (neighbor, chain)
// over contiguous memory — one byte per cell on the compact lattice, which
// is what keeps the B×n working set in cache at large B. The kernels are
// generic over state.Cells, so the compact and wide paths compile to
// separately specialized loops.

import (
	"fmt"

	"repro/internal/state"
)

// BatchScratch holds the per-goroutine buffers of the batched kernels.
type BatchScratch struct {
	base   []int32
	assign []int
	// delta holds the per-toggled-vertex index-delta rows of
	// FilterWeightBatch (k rows of c1−c0 entries each), grown on demand.
	delta []int32
}

// NewBatchScratch returns scratch sized for chain groups of up to chains.
func NewBatchScratch(chains int) *BatchScratch {
	return &BatchScratch{base: make([]int32, chains)}
}

// deltaBuf returns the delta scratch grown to at least n entries.
func (sc *BatchScratch) deltaBuf(n int) []int32 {
	if len(sc.delta) < n {
		sc.delta = make([]int32, n)
	}
	return sc.delta[:n]
}

// CondWeightsBatch fills buf with the unnormalized heat-bath conditional
// weights of vertex v for the chains c0 ≤ c < c1 of the lattice: on return
// buf[(c-c0)*q+x] is the product over factors containing v of the factor
// evaluated with v set to x and every other scope vertex read from chain c.
// It is the exact batched equivalent of calling CondWeightsLattice once per
// chain, performs no allocation on the table path (sc must come from
// NewBatchScratch with capacity ≥ c1−c0), and never writes the lattice. The
// filled prefix buf[:(c1−c0)*q] is returned.
//
// Distinct vertex rows of the lattice may be written concurrently by other
// goroutines only if they are not in any factor scope with v — the same
// independence contract as simultaneous heat-bath updates.
func (c *Compiled) CondWeightsBatch(l *state.Lattice, v, c0, c1 int, buf []float64, sc *BatchScratch) ([]float64, error) {
	if v < 0 || v >= c.n {
		return nil, fmt.Errorf("gibbs: batch conditional vertex %d out of range", v)
	}
	B := l.Chains()
	nb := c1 - c0
	if c0 < 0 || c1 > B || nb <= 0 {
		return nil, fmt.Errorf("gibbs: batch chain range [%d,%d) invalid for B=%d", c0, c1, B)
	}
	if l.N() < c.n {
		return nil, fmt.Errorf("gibbs: batch lattice has %d vertices, need %d", l.N(), c.n)
	}
	if len(buf) < nb*c.q {
		return nil, fmt.Errorf("gibbs: batch buffer has %d entries, need (c1−c0)·q = %d", len(buf), nb*c.q)
	}
	if sc == nil || len(sc.base) < nb {
		sc = NewBatchScratch(nb)
	}
	w := buf[:nb*c.q]
	for i := range w {
		w[i] = 1
	}
	if u8 := l.Raw8(); u8 != nil {
		return condWeightsBatchCells(c, u8, B, v, c0, c1, w, sc)
	}
	return condWeightsBatchCells(c, l.RawWide(), B, v, c0, c1, w, sc)
}

// condWeightsBatchCells is the width-specialized batch kernel body; cells
// is the lattice backing array (layout cells[u*B+c]) and w is the
// pre-initialized (c1−c0)·q weight buffer.
func condWeightsBatchCells[T state.Cells](c *Compiled, cells []T, B, v, c0, c1 int, w []float64, sc *BatchScratch) ([]float64, error) {
	nb := c1 - c0
	base := sc.base[:nb]
	q := c.q
	q32 := int32(q)
	for _, fi := range c.FactorsAt(v) {
		f := &c.factors[fi]
		if f.table == nil {
			if err := condClosureBatch(c, f, cells, B, v, c0, c1, w, sc); err != nil {
				return nil, err
			}
			continue
		}
		for i := range base {
			base[i] = 0
		}
		sv := int32(0)
		for j, u := range f.scope {
			if int(u) == v {
				// Repeated occurrences of v all take the same symbol, so
				// their strides simply accumulate.
				sv += f.strides[j]
				continue
			}
			row := cells[int(u)*B+c0 : int(u)*B+c1]
			st := f.strides[j]
			for i, x := range row {
				if !state.Valid(x, q) {
					return nil, fmt.Errorf("gibbs: batch conditional at %d: scope vertex %d unassigned in chain %d", v, u, c0+i)
				}
				base[i] += int32(x) * st
			}
		}
		// The per-chain table walk is the hottest loop of the whole batch
		// engine; straight-line bodies for the small alphabets every model
		// builder uses (q = 2 spins, small palettes) drop the loop
		// overhead that dominates at tiny q. The multiplication order
		// matches the generic loop exactly (bit-identical weights).
		table := f.table
		switch q32 {
		case 2:
			for i := 0; i < nb; i++ {
				bi := base[i]
				row := w[2*i : 2*i+2 : 2*i+2]
				row[0] *= table[bi]
				row[1] *= table[bi+sv]
			}
		case 3:
			for i := 0; i < nb; i++ {
				bi := base[i]
				row := w[3*i : 3*i+3 : 3*i+3]
				row[0] *= table[bi]
				row[1] *= table[bi+sv]
				row[2] *= table[bi+2*sv]
			}
		default:
			for i := 0; i < nb; i++ {
				bi := base[i]
				row := w[i*q : (i+1)*q]
				for x := int32(0); x < q32; x++ {
					row[x] *= table[bi+x*sv]
				}
			}
		}
	}
	return w, nil
}

// condClosureBatch is the fallback for closure-backed factors: one scope
// assignment per (chain, symbol), evaluated through the closure.
func condClosureBatch[T state.Cells](c *Compiled, f *cfactor, cells []T, B, v, c0, c1 int, w []float64, sc *BatchScratch) error {
	if len(sc.assign) < len(f.scope) {
		sc.assign = make([]int, len(f.scope))
	}
	assign := sc.assign[:len(f.scope)]
	for i := 0; i < c1-c0; i++ {
		ch := c0 + i
		for x := 0; x < c.q; x++ {
			for j, u := range f.scope {
				if int(u) == v {
					assign[j] = x
					continue
				}
				xu := cells[int(u)*B+ch]
				if !state.Valid(xu, c.q) {
					return fmt.Errorf("gibbs: batch conditional at %d: scope vertex %d unassigned in chain %d", v, u, ch)
				}
				assign[j] = int(xu)
			}
			w[i*c.q+x] *= f.eval(assign)
		}
	}
	return nil
}
