package gibbs

// plan_test.go pins the compiled sweep plans to the interpreted batch
// kernel: CondWeightsBatchPlan must reproduce CondWeightsBatch bit-for-bit
// on the table and closure paths and on both cell representations, the
// fused SampleVertexBatch must draw exactly the symbols SampleWeights
// semantics dictate for the same uniform variates, and the plan builder
// must fold unary prefixes into priors without disturbing factor order.

import (
	"errors"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/state"
)

// unaryFirstSpec puts a unary factor at the head of every vertex's factor
// list (the builders' layout), so the prior prefix fold is exercised, and
// keeps a trailing unary and closure to exercise mid-stream ops too.
func unaryFirstSpec(t *testing.T) *Spec {
	t.Helper()
	g := graph.New(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		g.MustAddEdge(e[0], e[1])
	}
	pair := []float64{1, 0.7, 0.7, 1.4}
	factors := []Factor{
		UnaryTable(0, []float64{1, 0.4}, "u0"),
		UnaryTable(1, []float64{0.9, 1.1}, "u1a"),
		UnaryTable(1, []float64{2, 0.25}, "u1b"),
		UnaryTable(2, []float64{1, 3}, "u2"),
		UnaryTable(3, []float64{0.5, 1}, "u3"),
		{Scope: []int{0, 1}, Table: pair, Name: "p01"},
		{Scope: []int{1, 2}, Table: pair, Name: "p12"},
		UnaryTable(2, []float64{1.5, 0.8}, "u2-late"),
		{Scope: []int{2, 3}, Eval: func(a []int) float64 {
			return 1 / (1 + float64(2*a[0]+a[1]))
		}, Name: "closure23"},
	}
	s, err := NewSpec(g, 2, factors)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// pairSpecQ3 is a purely pairwise q=3 spec (unary prefix + pair tables),
// landing every vertex on the q=3 register path of the fused sampler.
func pairSpecQ3(t *testing.T) *Spec {
	t.Helper()
	g := graph.New(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		g.MustAddEdge(e[0], e[1])
	}
	pair := []float64{1, 0.5, 0.8, 0.5, 1, 0.3, 0.8, 0.3, 1}
	factors := []Factor{
		UnaryTable(0, []float64{1, 2, 0.5}, "u0"),
		UnaryTable(2, []float64{0.25, 1, 4}, "u2"),
		{Scope: []int{0, 1}, Table: pair, Name: "p01"},
		{Scope: []int{1, 2}, Table: pair, Name: "p12"},
		{Scope: []int{2, 3}, Table: pair, Name: "p23"},
		{Scope: []int{3, 0}, Table: pair, Name: "p30"},
	}
	s, err := NewSpec(g, 3, factors)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testPlanAgainstBatch(t *testing.T, eng *Compiled, wide bool) {
	t.Helper()
	n, q := eng.N(), eng.Q()
	const B = 7
	chains := randomChains(n, q, B, 23)
	if wide {
		defer state.SetCompactLimitForTest(0)()
	}
	lat, err := state.Pack(n, q, chains)
	if err != nil {
		t.Fatal(err)
	}
	if lat.Compact() == wide {
		t.Fatalf("lattice Compact() = %v with wide=%v", lat.Compact(), wide)
	}
	sc := NewBatchScratch(B)
	ref := make([]float64, B*q)
	got := make([]float64, B*q)
	for v := 0; v < n; v++ {
		for _, span := range [][2]int{{0, B}, {2, 5}, {B - 1, B}} {
			c0, c1 := span[0], span[1]
			want, err := eng.CondWeightsBatch(lat, v, c0, c1, ref, sc)
			if err != nil {
				t.Fatal(err)
			}
			w, err := eng.CondWeightsBatchPlan(lat, v, c0, c1, got, sc)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if w[i] != want[i] {
					t.Fatalf("v=%d span=[%d,%d) entry %d: plan %v != batch %v", v, c0, c1, i, w[i], want[i])
				}
			}
		}
	}
}

func TestPlanWeightsMatchBatch(t *testing.T) {
	for _, spec := range []struct {
		name string
		s    *Spec
	}{{"mixed-arity", batchSpec(t)}, {"unary-first", unaryFirstSpec(t)}} {
		t.Run(spec.name, func(t *testing.T) {
			for _, rep := range []struct {
				name string
				wide bool
			}{{"compact", false}, {"wide", true}} {
				t.Run(rep.name, func(t *testing.T) {
					t.Run("tabled", func(t *testing.T) { testPlanAgainstBatch(t, Compile(spec.s), rep.wide) })
					t.Run("closure-fallback", func(t *testing.T) { testPlanAgainstBatch(t, CompileCap(spec.s, 0), rep.wide) })
				})
			}
		})
	}
}

// TestPlanFoldsUnaryPrefix is the white-box structural check: with the
// builders' unary-first factor layout every vertex plan gets a non-nil
// prior, mid-stream unaries stay ops, and op count matches the non-unary
// factor count.
func TestPlanFoldsUnaryPrefix(t *testing.T) {
	eng := Compile(unaryFirstSpec(t))
	p := eng.Plan()
	if p != eng.Plan() {
		t.Fatal("Plan() not cached")
	}
	for v := 0; v < eng.N(); v++ {
		if p.verts[v].prior == nil {
			t.Errorf("vertex %d: unary prefix not folded into prior", v)
		}
	}
	// Vertex 1 carries two prefix unaries (u1a, u1b) folded together.
	if got := len(p.verts[1].ops); got != 2 {
		t.Errorf("vertex 1 ops = %d, want 2 (p01, p12)", got)
	}
	// Vertex 2's late unary sits after pair p12, so it must stay an op;
	// closure23 is enumerated into a table under the default cap (opPair)
	// and stays a closure op when compilation is capped off.
	checkKinds := func(eng *Compiled, want []planOpKind) {
		t.Helper()
		var kinds []planOpKind
		for _, op := range eng.Plan().verts[2].ops {
			kinds = append(kinds, op.kind)
		}
		if len(kinds) != len(want) {
			t.Fatalf("vertex 2 ops = %v, want %v", kinds, want)
		}
		for i := range want {
			if kinds[i] != want[i] {
				t.Fatalf("vertex 2 op %d kind = %d, want %d", i, kinds[i], want[i])
			}
		}
	}
	checkKinds(eng, []planOpKind{opPair, opUnary, opPair})
	checkKinds(CompileCap(unaryFirstSpec(t), 0), []planOpKind{opPair, opUnary, opClosure})
}

// TestSampleVertexBatchMatchesSampleWeights pins the fused draw to
// dist.SampleWeights semantics: with identical uniform variates the fused
// kernel must write exactly the symbol the reference walk selects.
func TestSampleVertexBatchMatchesSampleWeights(t *testing.T) {
	// unaryFirstSpec takes the q=2 register path, pairSpecQ3 the q=3 one,
	// and batchSpec (arity-3 + closure factors) the buffered fallback.
	for _, spec := range []struct {
		name string
		s    *Spec
	}{{"q2", unaryFirstSpec(t)}, {"q3-pair", pairSpecQ3(t)}, {"q3-mixed", batchSpec(t)}} {
		t.Run(spec.name, func(t *testing.T) {
			eng := Compile(spec.s)
			n, q := eng.N(), eng.Q()
			const B = 6
			lat, err := state.Pack(n, q, randomChains(n, q, B, 77))
			if err != nil {
				t.Fatal(err)
			}
			if err := lat.CheckAssigned(); err != nil {
				t.Fatal(err)
			}
			sc := NewBatchScratch(B)
			buf := make([]float64, B*q)
			ref := make([]float64, B*q)
			rng := dist.NewXoshiro(5, 0)
			for sweep := 0; sweep < 20; sweep++ {
				for v := 0; v < n; v++ {
					// The reference draw replays the same generator against
					// the interpreted weights: copy the value-type RNG
					// before the kernel consumes it.
					shadow := rng
					w, err := eng.CondWeightsBatch(lat, v, 0, B, ref, sc)
					if err != nil {
						t.Fatal(err)
					}
					want := make([]int, B)
					for c := 0; c < B; c++ {
						row := w[c*q : (c+1)*q]
						total := 0.0
						for _, x := range row {
							total += x
						}
						u := shadow.Float64() * total
						acc := 0.0
						pick := -1
						for x, wx := range row {
							if wx <= 0 {
								continue
							}
							pick = x
							acc += wx
							if u < acc {
								break
							}
						}
						want[c] = pick
					}
					if err := eng.SampleVertexBatch(lat, v, 0, B, buf, sc, &rng); err != nil {
						t.Fatal(err)
					}
					for c := 0; c < B; c++ {
						if got := lat.Get(v, c); got != want[c] {
							t.Fatalf("sweep %d v=%d chain %d: fused drew %d, reference walk %d", sweep, v, c, got, want[c])
						}
					}
				}
			}
		})
	}
}

// TestSampleVertexBatchZeroMass checks the cold error path: an all-zero
// weight row surfaces dist.ErrZeroMass wrapped with the (vertex, chain)
// site instead of writing anything.
func TestSampleVertexBatchZeroMass(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1)
	s, err := NewSpec(g, 2, []Factor{
		{Scope: []int{0, 1}, Table: []float64{0, 0, 0, 0}, Name: "dead"},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := Compile(s)
	lat, err := state.Pack(2, 2, randomChains(2, 2, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 3*2)
	rng := dist.NewXoshiro(1, 0)
	err = eng.SampleVertexBatch(lat, 0, 0, 3, buf, nil, &rng)
	if !errors.Is(err, dist.ErrZeroMass) {
		t.Fatalf("zero-mass row: err = %v, want dist.ErrZeroMass", err)
	}
}

// TestSampleVertexBatchRejectsBadInput mirrors the argument checks of the
// interpreted kernel.
func TestSampleVertexBatchRejectsBadInput(t *testing.T) {
	eng := Compile(batchSpec(t))
	n, q := eng.N(), eng.Q()
	const B = 3
	lat, err := state.Pack(n, q, randomChains(n, q, B, 3))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, B*q)
	rng := dist.NewXoshiro(1, 0)
	if err := eng.SampleVertexBatch(lat, -1, 0, B, buf, nil, &rng); err == nil {
		t.Error("negative vertex accepted")
	}
	if err := eng.SampleVertexBatch(lat, 0, 2, 1, buf, nil, &rng); err == nil {
		t.Error("empty chain range accepted")
	}
	if err := eng.SampleVertexBatch(lat, 0, 0, B, buf[:1], nil, &rng); err == nil {
		t.Error("short buffer accepted")
	}
	short, err := state.New(n-1, B, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SampleVertexBatch(short, 0, 0, B, buf, nil, &rng); err == nil {
		t.Error("short lattice accepted")
	}
}
