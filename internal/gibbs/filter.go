package gibbs

// filter.go implements the evaluation kernel behind the LocalMetropolis
// filter (the fully-parallel proposal dynamics of Section 1.2): for a factor
// f with scope S, a current configuration σ and a proposal σ', each factor
// accepts independently with probability proportional to the product of f
// evaluated at every "mixed" assignment that takes the proposed value on a
// nonempty subset of toggled scope vertices and the current value elsewhere.
// For a pairwise factor on (u, v) this is the classical three-term filter
// f(σ'_u, σ_v)·f(σ_u, σ'_v)·f(σ'_u, σ'_v); the subset product is its
// generalization to arbitrary arity.

import (
	"errors"
	"fmt"

	"repro/internal/dist"
)

// filterMaxToggle bounds the number of toggled vertices: the subset product
// has 2^k − 1 terms, so anything beyond this is certainly a modelling error.
const filterMaxToggle = 20

// ErrNotTabled indicates a kernel that requires the dense-table fast path
// was asked about a closure-backed factor.
var ErrNotTabled = errors.New("gibbs: factor is not table-backed")

// TableMax returns the maximum entry of factor i's dense weight table. It
// reports ok = false for closure-backed factors (whose supremum is not
// enumerable in general).
func (c *Compiled) TableMax(i int) (float64, bool) {
	if i < 0 || i >= len(c.factors) {
		return 0, false
	}
	f := &c.factors[i]
	if f.table == nil {
		return 0, false
	}
	m := 0.0
	for _, v := range f.table {
		if v > m {
			m = v
		}
	}
	return m, true
}

// FilterWeight returns the unnormalized LocalMetropolis filter weight of
// factor i between the current configuration old and the proposal prop:
//
//	Π over nonempty T ⊆ verts of f(prop on T, old elsewhere),
//
// a product of 2^len(verts) − 1 factor evaluations. verts must be a set of
// distinct vertices appearing in the factor's scope (callers typically pass
// the free scope vertices; pinned scope vertices stay at their old = prop
// value in every term). Both configurations must assign every scope vertex.
//
// On the dense-table path the kernel performs no heap allocation for up to
// 8 toggled vertices; closure-backed factors fall back to building the
// mixed assignments explicitly.
func (c *Compiled) FilterWeight(i int, old, prop dist.Config, verts []int) (float64, error) {
	if i < 0 || i >= len(c.factors) {
		return 0, fmt.Errorf("gibbs: filter factor %d out of range", i)
	}
	k := len(verts)
	if k == 0 {
		return 1, nil
	}
	if k > filterMaxToggle {
		return 0, fmt.Errorf("gibbs: filter over %d toggled vertices (max %d)", k, filterMaxToggle)
	}
	f := &c.factors[i]
	if f.table != nil {
		return c.filterTable(f, old, prop, verts)
	}
	return c.filterClosure(f, old, prop, verts)
}

// filterTable walks the 2^k − 1 mixed assignments through the dense table:
// the base index encodes the all-old assignment and each toggled vertex
// contributes a fixed index delta, so a mixed assignment is one integer sum.
func (c *Compiled) filterTable(f *cfactor, old, prop dist.Config, verts []int) (float64, error) {
	base := int32(0)
	for j, u := range f.scope {
		if int(u) >= len(old) || old[u] < 0 {
			return 0, fmt.Errorf("gibbs: filter: scope vertex %d unassigned in current configuration", u)
		}
		base += int32(old[u]) * f.strides[j]
	}
	var dbuf [8]int32
	deltas := dbuf[:0]
	if len(verts) > len(dbuf) {
		deltas = make([]int32, 0, len(verts))
	}
	for _, d := range verts {
		if d >= len(prop) || prop[d] < 0 || old[d] < 0 {
			return 0, fmt.Errorf("gibbs: filter: toggled vertex %d unassigned", d)
		}
		delta := int32(0)
		found := false
		for j, u := range f.scope {
			if int(u) == d {
				delta += int32(prop[d]-old[d]) * f.strides[j]
				found = true
			}
		}
		if !found {
			return 0, fmt.Errorf("gibbs: filter: vertex %d not in factor scope", d)
		}
		deltas = append(deltas, delta)
	}
	w := 1.0
	for mask := 1; mask < 1<<len(deltas); mask++ {
		idx := base
		for b, delta := range deltas {
			if mask&(1<<b) != 0 {
				idx += delta
			}
		}
		w *= f.table[idx]
		if w == 0 {
			return 0, nil
		}
	}
	return w, nil
}

// filterClosure evaluates the subset product through the factor's Eval
// closure, materializing each mixed assignment.
func (c *Compiled) filterClosure(f *cfactor, old, prop dist.Config, verts []int) (float64, error) {
	toggled := make(map[int]int, len(verts)) // vertex -> bit position
	for b, d := range verts {
		if d >= len(prop) || prop[d] < 0 {
			return 0, fmt.Errorf("gibbs: filter: toggled vertex %d unassigned", d)
		}
		toggled[d] = b
	}
	for _, d := range verts {
		found := false
		for _, u := range f.scope {
			if int(u) == d {
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("gibbs: filter: vertex %d not in factor scope", d)
		}
	}
	assign := make([]int, len(f.scope))
	w := 1.0
	for mask := 1; mask < 1<<len(verts); mask++ {
		for j, u := range f.scope {
			if int(u) >= len(old) || old[u] < 0 {
				return 0, fmt.Errorf("gibbs: filter: scope vertex %d unassigned in current configuration", u)
			}
			if b, ok := toggled[int(u)]; ok && mask&(1<<b) != 0 {
				assign[j] = prop[u]
			} else {
				assign[j] = old[u]
			}
		}
		w *= f.eval(assign)
		if w == 0 {
			return 0, nil
		}
	}
	return w, nil
}
