package graph

// coloring.go: deterministic greedy proper coloring, the schedule builder
// of the chromatic sampler engines. Vertices of one color class form an
// independent set, so all of them may perform simultaneous heat-bath
// updates (they share no factor when factor scopes are cliques), giving a
// deterministic O(χ_greedy) ≤ Δ+1 stages-per-sweep schedule.

// GreedyColoring returns a proper coloring of the graph by the standard
// greedy rule in vertex order (each vertex takes the smallest color absent
// from its already-colored neighbors), together with the number of colors
// used. The coloring is deterministic and uses at most Δ+1 colors; classes
// are non-empty and indexed 0..k−1.
func (g *Graph) GreedyColoring() (colors []int, k int) {
	order := make([]int, g.n)
	for v := range order {
		order[v] = v
	}
	return g.GreedyColoringOrder(order)
}

// GreedyColoringOrder is GreedyColoring with an explicit vertex order: the
// i-th vertex of order takes the smallest color absent from its neighbors
// colored earlier in the order. order must be a permutation of 0..n−1.
func (g *Graph) GreedyColoringOrder(order []int) (colors []int, k int) {
	colors = make([]int, g.n)
	for i := range colors {
		colors[i] = -1
	}
	used := make([]bool, g.MaxDegree()+1)
	for _, v := range order {
		for _, u := range g.Neighbors(v) {
			if c := colors[u]; c >= 0 {
				used[c] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[v] = c
		if c+1 > k {
			k = c + 1
		}
		for _, u := range g.Neighbors(v) {
			if cu := colors[u]; cu >= 0 {
				used[cu] = false
			}
		}
	}
	return colors, k
}

// DegeneracyOrder returns a smallest-last ordering and the graph's
// degeneracy d (the Matula–Beck / core-decomposition order): vertices are
// repeatedly removed at minimum remaining degree, and the removal sequence
// is returned. Coloring greedily in the REVERSE of this order uses at most
// d+1 colors, which on sparse graphs (trees, planar, bounded-arboricity)
// beats the Δ+1 bound of the natural-order greedy. Runs in O(n+m) via the
// standard bucket representation.
func (g *Graph) DegeneracyOrder() (order []int, degeneracy int) {
	n := g.n
	order = make([]int, n)
	if n == 0 {
		return order, 0
	}
	deg := make([]int, n)
	md := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		md = max(md, deg[v])
	}
	// bin[d] is the start of the degree-d block of vert; pos[v] is v's
	// index in vert. vert stays sorted by current degree throughout.
	bin := make([]int, md+1)
	for v := 0; v < n; v++ {
		bin[deg[v]]++
	}
	start := 0
	for d := 0; d <= md; d++ {
		cnt := bin[d]
		bin[d] = start
		start += cnt
	}
	pos := make([]int, n)
	vert := make([]int, n)
	for v := 0; v < n; v++ {
		pos[v] = bin[deg[v]]
		vert[pos[v]] = v
		bin[deg[v]]++
	}
	for d := md; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0
	for i := 0; i < n; i++ {
		v := vert[i]
		degeneracy = max(degeneracy, deg[v])
		for _, u := range g.Neighbors(v) {
			if deg[u] > deg[v] {
				// Swap u to the front of its degree block, then shrink the
				// block: u's degree drops by one.
				du, pu := deg[u], pos[u]
				pw := bin[du]
				w := vert[pw]
				if u != w {
					pos[u], pos[w] = pw, pu
					vert[pu], vert[pw] = w, u
				}
				bin[du]++
				deg[u]--
			}
		}
	}
	copy(order, vert)
	return order, degeneracy
}

// DegeneracyColoring colors greedily in the reverse smallest-last order,
// using at most degeneracy+1 colors. The chromatic sampler engines compare
// it against the natural-order greedy and pick whichever yields fewer
// stage classes.
func (g *Graph) DegeneracyColoring() (colors []int, k int) {
	order, _ := g.DegeneracyOrder()
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return g.GreedyColoringOrder(order)
}

// ColorClasses groups 0..n−1 by the given coloring (as returned by
// GreedyColoring), skipping vertices whose color is negative — callers use
// that to drop pinned vertices from a sampler schedule. Classes preserve
// vertex order and empty classes are elided.
func ColorClasses(colors []int) [][]int {
	k := 0
	for _, c := range colors {
		if c+1 > k {
			k = c + 1
		}
	}
	classes := make([][]int, k)
	for v, c := range colors {
		if c >= 0 {
			classes[c] = append(classes[c], v)
		}
	}
	out := classes[:0]
	for _, cl := range classes {
		if len(cl) > 0 {
			out = append(out, cl)
		}
	}
	return out
}
