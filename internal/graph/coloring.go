package graph

// coloring.go: deterministic greedy proper coloring, the schedule builder
// of the chromatic sampler engines. Vertices of one color class form an
// independent set, so all of them may perform simultaneous heat-bath
// updates (they share no factor when factor scopes are cliques), giving a
// deterministic O(χ_greedy) ≤ Δ+1 stages-per-sweep schedule.

// GreedyColoring returns a proper coloring of the graph by the standard
// greedy rule in vertex order (each vertex takes the smallest color absent
// from its already-colored neighbors), together with the number of colors
// used. The coloring is deterministic and uses at most Δ+1 colors; classes
// are non-empty and indexed 0..k−1.
func (g *Graph) GreedyColoring() (colors []int, k int) {
	colors = make([]int, g.n)
	for i := range colors {
		colors[i] = -1
	}
	used := make([]bool, g.MaxDegree()+1)
	for v := 0; v < g.n; v++ {
		for _, u := range g.Neighbors(v) {
			if c := colors[u]; c >= 0 {
				used[c] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[v] = c
		if c+1 > k {
			k = c + 1
		}
		for _, u := range g.Neighbors(v) {
			if cu := colors[u]; cu >= 0 {
				used[cu] = false
			}
		}
	}
	return colors, k
}

// ColorClasses groups 0..n−1 by the given coloring (as returned by
// GreedyColoring), skipping vertices whose color is negative — callers use
// that to drop pinned vertices from a sampler schedule. Classes preserve
// vertex order and empty classes are elided.
func ColorClasses(colors []int) [][]int {
	k := 0
	for _, c := range colors {
		if c+1 > k {
			k = c + 1
		}
	}
	classes := make([][]int, k)
	for v, c := range colors {
		if c >= 0 {
			classes[c] = append(classes[c], v)
		}
	}
	out := classes[:0]
	for _, cl := range classes {
		if len(cl) > 0 {
			out = append(out, cl)
		}
	}
	return out
}
