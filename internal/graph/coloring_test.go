package graph

import "testing"

func TestGreedyColoringProper(t *testing.T) {
	cases := map[string]*Graph{
		"cycle5":  Cycle(5),
		"cycle6":  Cycle(6),
		"path1":   Path(1),
		"torus":   Torus(4, 4),
		"grid":    Grid(3, 5),
		"k5":      Complete(5),
		"empty":   New(4),
		"star":    Star(6),
		"bintree": CompleteTree(2, 3),
	}
	for name, g := range cases {
		colors, k := g.GreedyColoring()
		if len(colors) != g.N() {
			t.Fatalf("%s: %d colors for %d vertices", name, len(colors), g.N())
		}
		for v := 0; v < g.N(); v++ {
			if colors[v] < 0 || colors[v] >= k {
				t.Fatalf("%s: color %d out of range [0,%d)", name, colors[v], k)
			}
			for _, u := range g.Neighbors(v) {
				if colors[u] == colors[v] {
					t.Fatalf("%s: edge (%d,%d) monochromatic", name, v, u)
				}
			}
		}
		if g.N() > 0 && k > g.MaxDegree()+1 {
			t.Errorf("%s: %d colors exceeds Δ+1 = %d", name, k, g.MaxDegree()+1)
		}
		classes := ColorClasses(colors)
		seen := 0
		for _, cl := range classes {
			seen += len(cl)
		}
		if seen != g.N() {
			t.Errorf("%s: classes cover %d of %d vertices", name, seen, g.N())
		}
	}
}

func TestGreedyColoringTightCases(t *testing.T) {
	if _, k := Cycle(6).GreedyColoring(); k != 2 {
		t.Errorf("even cycle colored with %d colors, want 2", k)
	}
	if _, k := Complete(4).GreedyColoring(); k != 4 {
		t.Errorf("K4 colored with %d colors, want 4", k)
	}
	if _, k := New(3).GreedyColoring(); k != 1 {
		t.Errorf("empty graph colored with %d colors, want 1", k)
	}
}

// greedyAdversarialTree returns a tree (a binomial tree laid out children-
// first) on which natural-order greedy burns k+1 colors: the root of a
// B_c subtree appears after its c child-subtree roots, which carry colors
// 0..c−1, forcing color c. Any tree is 1-degenerate, so the degeneracy
// order colors it with 2.
func greedyAdversarialTree(k int) *Graph {
	g := New(1 << k)
	next := 0
	var build func(c int) int
	build = func(c int) int {
		children := make([]int, c)
		for i := 0; i < c; i++ {
			children[i] = build(i)
		}
		root := next
		next++
		for _, ch := range children {
			g.MustAddEdge(root, ch)
		}
		return root
	}
	build(k)
	return g
}

func TestDegeneracyOrder(t *testing.T) {
	cases := map[string]struct {
		g    *Graph
		want int
	}{
		"empty":   {New(4), 0},
		"path":    {Path(6), 1},
		"bintree": {CompleteTree(2, 4), 1},
		"cycle":   {Cycle(7), 2},
		"k5":      {Complete(5), 4},
		"torus":   {Torus(4, 4), 4},
		"star":    {Star(6), 1},
		"none":    {New(0), 0},
	}
	for name, c := range cases {
		order, d := c.g.DegeneracyOrder()
		if d != c.want {
			t.Errorf("%s: degeneracy %d, want %d", name, d, c.want)
		}
		if len(order) != c.g.N() {
			t.Fatalf("%s: order has %d vertices, want %d", name, len(order), c.g.N())
		}
		seen := make([]bool, c.g.N())
		for _, v := range order {
			if v < 0 || v >= c.g.N() || seen[v] {
				t.Fatalf("%s: order %v is not a permutation", name, order)
			}
			seen[v] = true
		}
		// Smallest-last invariant: each vertex has ≤ d neighbors later in
		// the order.
		posOf := make([]int, c.g.N())
		for i, v := range order {
			posOf[v] = i
		}
		for i, v := range order {
			later := 0
			for _, u := range c.g.Neighbors(v) {
				if posOf[u] > i {
					later++
				}
			}
			if later > d {
				t.Errorf("%s: vertex %d keeps %d later neighbors > degeneracy %d", name, v, later, d)
			}
		}
	}
}

func TestDegeneracyColoringProperAndBounded(t *testing.T) {
	cases := map[string]*Graph{
		"cycle5": Cycle(5), "torus": Torus(4, 4), "k5": Complete(5),
		"bintree": CompleteTree(2, 4), "badtree": greedyAdversarialTree(4), "empty": New(3),
	}
	for name, g := range cases {
		colors, k := g.DegeneracyColoring()
		_, d := g.DegeneracyOrder()
		for v := 0; v < g.N(); v++ {
			if colors[v] < 0 || colors[v] >= k {
				t.Fatalf("%s: color %d out of range [0,%d)", name, colors[v], k)
			}
			for _, u := range g.Neighbors(v) {
				if colors[u] == colors[v] {
					t.Fatalf("%s: edge (%d,%d) monochromatic", name, v, u)
				}
			}
		}
		if g.N() > 0 && k > d+1 {
			t.Errorf("%s: %d colors exceeds degeneracy+1 = %d", name, k, d+1)
		}
	}
}

// TestDegeneracyBeatsGreedy pins the case the adaptive schedule exists
// for: natural-order greedy needs k+1 colors on the adversarial tree while
// the degeneracy order gives the optimal 2.
func TestDegeneracyBeatsGreedy(t *testing.T) {
	g := greedyAdversarialTree(4)
	_, kg := g.GreedyColoring()
	_, kd := g.DegeneracyColoring()
	if kg != 5 {
		t.Fatalf("natural greedy on the adversarial tree used %d colors, expected 5", kg)
	}
	if kd != 2 {
		t.Errorf("degeneracy coloring used %d colors, want 2", kd)
	}
}

func TestColorClassesSkipsNegative(t *testing.T) {
	classes := ColorClasses([]int{0, -1, 1, 0, -1})
	if len(classes) != 2 {
		t.Fatalf("got %d classes, want 2", len(classes))
	}
	if len(classes[0]) != 2 || classes[0][0] != 0 || classes[0][1] != 3 {
		t.Errorf("class 0 = %v", classes[0])
	}
	if len(classes[1]) != 1 || classes[1][0] != 2 {
		t.Errorf("class 1 = %v", classes[1])
	}
}
