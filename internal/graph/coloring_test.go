package graph

import "testing"

func TestGreedyColoringProper(t *testing.T) {
	cases := map[string]*Graph{
		"cycle5":  Cycle(5),
		"cycle6":  Cycle(6),
		"path1":   Path(1),
		"torus":   Torus(4, 4),
		"grid":    Grid(3, 5),
		"k5":      Complete(5),
		"empty":   New(4),
		"star":    Star(6),
		"bintree": CompleteTree(2, 3),
	}
	for name, g := range cases {
		colors, k := g.GreedyColoring()
		if len(colors) != g.N() {
			t.Fatalf("%s: %d colors for %d vertices", name, len(colors), g.N())
		}
		for v := 0; v < g.N(); v++ {
			if colors[v] < 0 || colors[v] >= k {
				t.Fatalf("%s: color %d out of range [0,%d)", name, colors[v], k)
			}
			for _, u := range g.Neighbors(v) {
				if colors[u] == colors[v] {
					t.Fatalf("%s: edge (%d,%d) monochromatic", name, v, u)
				}
			}
		}
		if g.N() > 0 && k > g.MaxDegree()+1 {
			t.Errorf("%s: %d colors exceeds Δ+1 = %d", name, k, g.MaxDegree()+1)
		}
		classes := ColorClasses(colors)
		seen := 0
		for _, cl := range classes {
			seen += len(cl)
		}
		if seen != g.N() {
			t.Errorf("%s: classes cover %d of %d vertices", name, seen, g.N())
		}
	}
}

func TestGreedyColoringTightCases(t *testing.T) {
	if _, k := Cycle(6).GreedyColoring(); k != 2 {
		t.Errorf("even cycle colored with %d colors, want 2", k)
	}
	if _, k := Complete(4).GreedyColoring(); k != 4 {
		t.Errorf("K4 colored with %d colors, want 4", k)
	}
	if _, k := New(3).GreedyColoring(); k != 1 {
		t.Errorf("empty graph colored with %d colors, want 1", k)
	}
}

func TestColorClassesSkipsNegative(t *testing.T) {
	classes := ColorClasses([]int{0, -1, 1, 0, -1})
	if len(classes) != 2 {
		t.Fatalf("got %d classes, want 2", len(classes))
	}
	if len(classes[0]) != 2 || classes[0][0] != 0 || classes[0][1] != 3 {
		t.Errorf("class 0 = %v", classes[0])
	}
	if len(classes[1]) != 1 || classes[1][0] != 2 {
		t.Errorf("class 1 = %v", classes[1])
	}
}
