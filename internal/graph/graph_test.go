package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("got n=%d m=%d, want 5, 0", g.N(), g.M())
	}
	if g.MaxDegree() != 0 {
		t.Fatalf("empty graph max degree = %d", g.MaxDegree())
	}
}

func TestNewNegative(t *testing.T) {
	g := New(-3)
	if g.N() != 0 {
		t.Fatalf("negative n should clamp to 0, got %d", g.N())
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 0); err == nil {
		t.Error("self loop accepted")
	}
	if err := g.AddEdge(0, 3); err == nil {
		t.Error("out of range accepted")
	}
	if err := g.AddEdge(-1, 2); err == nil {
		t.Error("negative vertex accepted")
	}
}

func TestAddEdgeIdempotent(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 0)
	if g.M() != 1 {
		t.Fatalf("duplicate edge double counted: m=%d", g.M())
	}
}

func TestHasEdgeAndNeighbors(t *testing.T) {
	g := Path(4)
	if !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Error("HasEdge wrong on path")
	}
	nb := g.NeighborsCopy(1)
	if len(nb) != 2 || nb[0] != 0 || nb[1] != 2 {
		t.Errorf("neighbors of 1 in P4 = %v", nb)
	}
}

func TestDegreeAndMaxDegree(t *testing.T) {
	g := Star(5)
	if g.Degree(0) != 4 {
		t.Errorf("star center degree = %d", g.Degree(0))
	}
	if g.MaxDegree() != 4 {
		t.Errorf("star max degree = %d", g.MaxDegree())
	}
	if g.Degree(-1) != 0 || g.Degree(99) != 0 {
		t.Error("out-of-range degree should be 0")
	}
}

func TestEdgesSorted(t *testing.T) {
	g := Cycle(4)
	es := g.Edges()
	if len(es) != 4 {
		t.Fatalf("C4 has %d edges", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i].U < es[i-1].U || (es[i].U == es[i-1].U && es[i].V <= es[i-1].V) {
			t.Fatalf("edges not sorted: %v", es)
		}
	}
	for _, e := range es {
		if e.U >= e.V {
			t.Fatalf("edge %v not normalized", e)
		}
	}
}

func TestBFSDistances(t *testing.T) {
	g := Path(5)
	d := g.BFSDistances(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Errorf("dist(0,%d) = %d, want %d", i, d[i], want)
		}
	}
	// Disconnected graph.
	g2 := New(3)
	g2.MustAddEdge(0, 1)
	d2 := g2.BFSDistances(0)
	if d2[2] != -1 {
		t.Errorf("unreachable vertex distance = %d, want -1", d2[2])
	}
}

func TestDist(t *testing.T) {
	g := Cycle(6)
	if got := g.Dist(0, 3); got != 3 {
		t.Errorf("C6 dist(0,3) = %d, want 3", got)
	}
	if got := g.Dist(0, 5); got != 1 {
		t.Errorf("C6 dist(0,5) = %d, want 1", got)
	}
	if got := g.Dist(2, 2); got != 0 {
		t.Errorf("dist to self = %d", got)
	}
}

func TestBall(t *testing.T) {
	g := Path(7)
	b := g.Ball(3, 2)
	want := []int{1, 2, 3, 4, 5}
	if len(b) != len(want) {
		t.Fatalf("ball = %v, want %v", b, want)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ball = %v, want %v", b, want)
		}
	}
	if got := g.Ball(3, 0); len(got) != 1 || got[0] != 3 {
		t.Errorf("radius-0 ball = %v", got)
	}
	if got := g.Ball(3, -1); got != nil {
		t.Errorf("negative radius ball = %v", got)
	}
}

func TestBallWithDist(t *testing.T) {
	g := Grid(4, 4)
	bd := g.BallWithDist(0, 2)
	for u, d := range bd {
		if want := g.Dist(0, u); want != d {
			t.Errorf("ball dist of %d = %d, want %d", u, d, want)
		}
		if d > 2 {
			t.Errorf("vertex %d at distance %d in radius-2 ball", u, d)
		}
	}
	if len(bd) != 6 {
		t.Errorf("corner radius-2 ball in grid has %d vertices, want 6", len(bd))
	}
}

func TestDistToSet(t *testing.T) {
	g := Path(6)
	if got := g.DistToSet(0, []int{4, 5}); got != 4 {
		t.Errorf("DistToSet = %d, want 4", got)
	}
	if got := g.DistToSet(4, []int{4}); got != 0 {
		t.Errorf("DistToSet self = %d, want 0", got)
	}
	if got := g.DistToSet(0, nil); got != -1 {
		t.Errorf("DistToSet empty = %d, want -1", got)
	}
}

func TestConnectivity(t *testing.T) {
	if !Cycle(5).IsConnected() {
		t.Error("C5 reported disconnected")
	}
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(2, 3)
	if g.IsConnected() {
		t.Error("two components reported connected")
	}
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
	if comps[0][0] != 0 || comps[1][0] != 2 {
		t.Errorf("component order wrong: %v", comps)
	}
}

func TestDiameter(t *testing.T) {
	if d := Path(5).Diameter(); d != 4 {
		t.Errorf("P5 diameter = %d", d)
	}
	if d := Cycle(6).Diameter(); d != 3 {
		t.Errorf("C6 diameter = %d", d)
	}
	if d := Complete(7).Diameter(); d != 1 {
		t.Errorf("K7 diameter = %d", d)
	}
	g := New(2)
	if d := g.Diameter(); d != -1 {
		t.Errorf("disconnected diameter = %d", d)
	}
}

func TestSetDiameter(t *testing.T) {
	g := Cycle(8)
	if d := g.SetDiameter([]int{0, 4}); d != 4 {
		t.Errorf("set diameter = %d, want 4", d)
	}
	if d := g.SetDiameter([]int{3}); d != 0 {
		t.Errorf("singleton set diameter = %d", d)
	}
	if d := g.SetDiameter(nil); d != 0 {
		t.Errorf("empty set diameter = %d", d)
	}
}

func TestPower(t *testing.T) {
	g := Path(5)
	p2 := g.Power(2)
	if !p2.HasEdge(0, 2) || !p2.HasEdge(0, 1) || p2.HasEdge(0, 3) {
		t.Error("P5^2 edges wrong")
	}
	p0 := g.Power(0)
	if p0.M() != 0 {
		t.Error("G^0 should be edgeless")
	}
	// Power of the complete graph is itself.
	k := Complete(5)
	if !k.Power(3).Equal(k) {
		t.Error("K5^3 != K5")
	}
}

func TestTriangleFreeAndGirth(t *testing.T) {
	if !Cycle(5).IsTriangleFree() {
		t.Error("C5 has no triangle")
	}
	if Complete(3).IsTriangleFree() {
		t.Error("K3 is a triangle")
	}
	if g := Cycle(5).Girth(); g != 5 {
		t.Errorf("C5 girth = %d", g)
	}
	if g := Path(5).Girth(); g != -1 {
		t.Errorf("tree girth = %d", g)
	}
	if g := Complete(4).Girth(); g != 3 {
		t.Errorf("K4 girth = %d", g)
	}
}

func TestLineGraph(t *testing.T) {
	// Line graph of P4 (3 edges in a path) is P3.
	lg, edges := Path(4).LineGraph()
	if lg.N() != 3 || lg.M() != 2 {
		t.Fatalf("L(P4): n=%d m=%d", lg.N(), lg.M())
	}
	if len(edges) != 3 {
		t.Fatalf("edge list %v", edges)
	}
	// Line graph of the star K_{1,3} is the triangle.
	ls, _ := Star(4).LineGraph()
	if ls.N() != 3 || ls.M() != 3 {
		t.Fatalf("L(K_{1,3}): n=%d m=%d, want triangle", ls.N(), ls.M())
	}
	// Line graph of C_n is C_n.
	lc, _ := Cycle(6).LineGraph()
	if lc.N() != 6 || lc.M() != 6 || lc.MaxDegree() != 2 {
		t.Fatalf("L(C6) should be C6: %v", lc)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Cycle(6)
	sub, orig, inv := g.InducedSubgraph([]int{0, 1, 2, 4})
	if sub.N() != 4 {
		t.Fatalf("induced n = %d", sub.N())
	}
	// Edges 0-1, 1-2 survive; vertex 4 is isolated.
	if sub.M() != 2 {
		t.Fatalf("induced m = %d", sub.M())
	}
	if orig[inv[4]] != 4 {
		t.Error("index mapping inconsistent")
	}
	if sub.Degree(inv[4]) != 0 {
		t.Error("vertex 4 should be isolated in induced subgraph")
	}
	// Duplicates and out-of-range entries are cleaned.
	sub2, orig2, _ := g.InducedSubgraph([]int{1, 1, 99, -5, 2})
	if sub2.N() != 2 || len(orig2) != 2 {
		t.Errorf("dedup failed: %v", orig2)
	}
}

func TestCloneAndEqual(t *testing.T) {
	g := Grid(3, 3)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.MustAddEdge(0, 4) // diagonal
	if g.Equal(c) {
		t.Fatal("mutation of clone affected equality check")
	}
	if g.HasEdge(0, 4) {
		t.Fatal("clone shares storage with original")
	}
}

func TestGenerators(t *testing.T) {
	tests := []struct {
		name    string
		g       *Graph
		n, m    int
		maxDeg  int
		connect bool
	}{
		{"path5", Path(5), 5, 4, 2, true},
		{"cycle5", Cycle(5), 5, 5, 2, true},
		{"complete4", Complete(4), 4, 6, 3, true},
		{"star6", Star(6), 6, 5, 5, true},
		{"grid3x4", Grid(3, 4), 12, 17, 4, true},
		{"torus3x3", Torus(3, 3), 9, 18, 4, true},
		{"tree b=2 d=3", CompleteTree(2, 3), 15, 14, 3, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.g.N() != tc.n {
				t.Errorf("n = %d, want %d", tc.g.N(), tc.n)
			}
			if tc.g.M() != tc.m {
				t.Errorf("m = %d, want %d", tc.g.M(), tc.m)
			}
			if tc.g.MaxDegree() != tc.maxDeg {
				t.Errorf("Δ = %d, want %d", tc.g.MaxDegree(), tc.maxDeg)
			}
			if tc.g.IsConnected() != tc.connect {
				t.Errorf("connected = %v", tc.g.IsConnected())
			}
		})
	}
}

func TestTorusIsRegular(t *testing.T) {
	g := Torus(4, 5)
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus vertex %d degree %d", v, g.Degree(v))
		}
	}
}

func TestRandomTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 10, 50} {
		g := RandomTree(n, rng)
		if g.N() != n {
			t.Fatalf("n = %d", g.N())
		}
		if n >= 1 && g.M() != n-1 {
			t.Fatalf("tree on %d vertices has %d edges", n, g.M())
		}
		if !g.IsConnected() {
			t.Fatalf("random tree disconnected, n=%d", n)
		}
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := RandomRegular(20, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("vertex %d degree %d", v, g.Degree(v))
		}
	}
	if _, err := RandomRegular(5, 3, rng); err == nil {
		t.Error("odd n*d accepted")
	}
	if _, err := RandomRegular(4, 4, rng); err == nil {
		t.Error("d >= n accepted")
	}
	if g, err := RandomRegular(6, 0, rng); err != nil || g.M() != 0 {
		t.Error("0-regular should be edgeless")
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if g := ErdosRenyi(10, 0, rng); g.M() != 0 {
		t.Error("G(n,0) has edges")
	}
	if g := ErdosRenyi(10, 1, rng); g.M() != 45 {
		t.Errorf("G(10,1) has %d edges, want 45", g.M())
	}
}

func TestRandomBipartite(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := RandomBipartite(5, 7, 1, rng)
	if g.M() != 35 {
		t.Fatalf("complete bipartite m = %d", g.M())
	}
	// No intra-part edges.
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if g.HasEdge(i, j) {
				t.Fatal("left-part edge")
			}
		}
	}
}

func TestBoundedDegreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := BoundedDegreeRandom(40, 4, 30, rng)
	if g.MaxDegree() > 4 {
		t.Fatalf("degree cap violated: %d", g.MaxDegree())
	}
	if !g.IsConnected() {
		t.Fatal("bounded degree random graph disconnected")
	}
}

// Property: for every graph, Ball(v, r) = {u : dist(v, u) <= r and reachable}.
func TestBallMatchesDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := ErdosRenyi(12, 0.25, r)
		v := r.Intn(12)
		rad := r.Intn(5)
		d := g.BFSDistances(v)
		ball := g.Ball(v, rad)
		inBall := make(map[int]bool)
		for _, u := range ball {
			inBall[u] = true
		}
		for u := 0; u < 12; u++ {
			want := d[u] >= 0 && d[u] <= rad
			if inBall[u] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: power graph adjacency equals bounded distance.
func TestPowerMatchesDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := ErdosRenyi(10, 0.3, r)
		k := 1 + r.Intn(3)
		p := g.Power(k)
		for u := 0; u < 10; u++ {
			for v := u + 1; v < 10; v++ {
				d := g.Dist(u, v)
				want := d > 0 && d <= k
				if p.HasEdge(u, v) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: line graph degree of edge (u,v) is deg(u)+deg(v)-2.
func TestLineGraphDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := ErdosRenyi(9, 0.35, r)
		lg, edges := g.LineGraph()
		for i, e := range edges {
			if lg.Degree(i) != g.Degree(e.U)+g.Degree(e.V)-2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestGirthMatchesKnown(t *testing.T) {
	// Petersen graph has girth 5.
	pet := New(10)
	outer := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	inner := [][2]int{{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5}}
	spokes := [][2]int{{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9}}
	for _, e := range append(append(outer, inner...), spokes...) {
		pet.MustAddEdge(e[0], e[1])
	}
	if g := pet.Girth(); g != 5 {
		t.Errorf("Petersen girth = %d, want 5", g)
	}
	if !pet.IsTriangleFree() {
		t.Error("Petersen graph is triangle-free")
	}
	if d := pet.Diameter(); d != 2 {
		t.Errorf("Petersen diameter = %d, want 2", d)
	}
}

func TestString(t *testing.T) {
	s := Cycle(4).String()
	if s == "" {
		t.Error("empty string")
	}
}
