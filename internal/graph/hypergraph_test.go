package graph

import (
	"math/rand"
	"testing"
)

func TestHypergraphBasics(t *testing.T) {
	h := NewHypergraph(6)
	if err := h.AddEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := h.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := h.AddEdge(4, 5, 3); err != nil {
		t.Fatal(err)
	}
	if h.N() != 6 || h.M() != 3 {
		t.Fatalf("n=%d m=%d", h.N(), h.M())
	}
	if h.Rank() != 3 {
		t.Errorf("rank = %d", h.Rank())
	}
	if h.VertexDegree(2) != 2 {
		t.Errorf("deg(2) = %d", h.VertexDegree(2))
	}
	if h.MaxVertexDegree() != 2 {
		t.Errorf("max degree = %d", h.MaxVertexDegree())
	}
}

func TestHypergraphEdgeErrors(t *testing.T) {
	h := NewHypergraph(3)
	if err := h.AddEdge(); err == nil {
		t.Error("empty hyperedge accepted")
	}
	if err := h.AddEdge(0, 7); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	if err := h.AddEdge(1, 1, 1); err != nil {
		t.Errorf("dedup edge rejected: %v", err)
	}
	if got := h.Edge(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("dedup edge = %v", got)
	}
	if h.Edge(99) != nil {
		t.Error("out-of-range edge index should be nil")
	}
}

func TestIntersectionGraph(t *testing.T) {
	h := NewHypergraph(5)
	_ = h.AddEdge(0, 1, 2) // edge 0
	_ = h.AddEdge(2, 3)    // edge 1 — shares vertex 2 with edge 0
	_ = h.AddEdge(3, 4)    // edge 2 — shares vertex 3 with edge 1
	ig := h.IntersectionGraph()
	if ig.N() != 3 {
		t.Fatalf("intersection graph n = %d", ig.N())
	}
	if !ig.HasEdge(0, 1) || !ig.HasEdge(1, 2) || ig.HasEdge(0, 2) {
		t.Errorf("intersection edges wrong: %v", ig.Edges())
	}
}

func TestRandomUniformHypergraph(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h, err := RandomUniformHypergraph(10, 7, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if h.M() != 7 {
		t.Fatalf("m = %d", h.M())
	}
	for i := 0; i < h.M(); i++ {
		if len(h.Edge(i)) != 3 {
			t.Fatalf("edge %d has size %d", i, len(h.Edge(i)))
		}
	}
	if _, err := RandomUniformHypergraph(3, 1, 5, rng); err == nil {
		t.Error("r > n accepted")
	}
}
