package graph

import (
	"strings"
	"testing"
)

// TestBuildKindsMatchDirectConstructors pins the registry to the direct
// constructors: the registry exists so every entry point describes the
// same graph for the same (kind, n), including the historical n semantics
// of grid/torus (side) and tree (approximate vertex count).
func TestBuildKindsMatchDirectConstructors(t *testing.T) {
	n := 6
	want := map[string]*Graph{
		"cycle":    Cycle(n),
		"path":     Path(n),
		"complete": Complete(n),
		"star":     Star(n),
		"grid":     Grid(n, n),
		"torus":    Torus(n, n),
	}
	// The tree expectation follows the registry's documented rule: the
	// deepest complete binary tree with at most n vertices.
	depth := 1
	for (1<<(depth+2))-1 <= n {
		depth++
	}
	want["tree"] = CompleteTree(2, depth)
	for kind, w := range want {
		g, err := Build(kind, n)
		if err != nil {
			t.Fatalf("Build(%q, %d): %v", kind, n, err)
		}
		if !g.Equal(w) {
			t.Errorf("Build(%q, %d) differs from the direct constructor", kind, n)
		}
	}
}

func TestBuildIsCaseInsensitive(t *testing.T) {
	g, err := Build("Cycle", 5)
	if err != nil || g.N() != 5 {
		t.Fatalf("Build(Cycle, 5) = %v, %v", g, err)
	}
}

func TestBuildRejectsUnknownAndNegative(t *testing.T) {
	if _, err := Build("nosuch", 5); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("unknown kind: err = %v, want the registered alternatives named", err)
	}
	if _, err := Build("cycle", -1); err == nil {
		t.Error("negative size accepted")
	}
}

func TestGeneratorNamesSortedAndComplete(t *testing.T) {
	names := GeneratorNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("GeneratorNames not sorted: %v", names)
		}
	}
	for _, kind := range []string{"cycle", "path", "grid", "torus", "tree", "complete", "star"} {
		if _, ok := LookupGenerator(kind); !ok {
			t.Errorf("builtin %q not registered", kind)
		}
	}
}

func TestRegisterGeneratorPanics(t *testing.T) {
	mustPanic := func(name string, gen Generator) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: RegisterGenerator did not panic", name)
			}
		}()
		RegisterGenerator(gen)
	}
	mustPanic("empty", Generator{})
	mustPanic("duplicate", Generator{Name: "cycle", New: func(n int) (*Graph, error) { return New(n), nil }})
}
