package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Hypergraph is a hypergraph on vertices 0..n-1 with hyperedges given as
// vertex sets. It is the substrate for the weighted hypergraph matching
// model (Song–Yin–Zhao), one of the applications in Section 5 of the paper.
type Hypergraph struct {
	n     int
	edges [][]int
}

// NewHypergraph returns an empty hypergraph on n vertices.
func NewHypergraph(n int) *Hypergraph {
	if n < 0 {
		n = 0
	}
	return &Hypergraph{n: n}
}

// N returns the number of vertices.
func (h *Hypergraph) N() int { return h.n }

// M returns the number of hyperedges.
func (h *Hypergraph) M() int { return len(h.edges) }

// AddEdge inserts a hyperedge over the given vertex set. Duplicated vertices
// within an edge are deduplicated; empty edges and out-of-range vertices are
// errors.
func (h *Hypergraph) AddEdge(vs ...int) error {
	uniq := make(map[int]bool, len(vs))
	for _, v := range vs {
		if v < 0 || v >= h.n {
			return fmt.Errorf("%w: hyperedge vertex %d with n=%d", ErrVertexRange, v, h.n)
		}
		uniq[v] = true
	}
	if len(uniq) == 0 {
		return fmt.Errorf("graph: empty hyperedge")
	}
	e := make([]int, 0, len(uniq))
	for v := range uniq {
		e = append(e, v)
	}
	sort.Ints(e)
	h.edges = append(h.edges, e)
	return nil
}

// Edge returns the i-th hyperedge (sorted vertex list, shared slice).
func (h *Hypergraph) Edge(i int) []int {
	if i < 0 || i >= len(h.edges) {
		return nil
	}
	return h.edges[i]
}

// Rank returns the maximum hyperedge size r (0 for no edges).
func (h *Hypergraph) Rank() int {
	r := 0
	for _, e := range h.edges {
		if len(e) > r {
			r = len(e)
		}
	}
	return r
}

// VertexDegree returns the number of hyperedges containing v.
func (h *Hypergraph) VertexDegree(v int) int {
	d := 0
	for _, e := range h.edges {
		for _, u := range e {
			if u == v {
				d++
			}
		}
	}
	return d
}

// MaxVertexDegree returns the maximum vertex degree Δ.
func (h *Hypergraph) MaxVertexDegree() int {
	deg := make([]int, h.n)
	for _, e := range h.edges {
		for _, u := range e {
			deg[u]++
		}
	}
	d := 0
	for _, x := range deg {
		if x > d {
			d = x
		}
	}
	return d
}

// IntersectionGraph returns the graph on hyperedges where two hyperedges are
// adjacent iff they share a vertex. This is the dual used to express
// hypergraph matchings as a vertex model: a hypergraph matching is exactly
// an independent set of the intersection graph.
func (h *Hypergraph) IntersectionGraph() *Graph {
	g := New(len(h.edges))
	// Bucket edges by vertex so intersecting pairs are found per vertex.
	byVertex := make([][]int, h.n)
	for i, e := range h.edges {
		for _, v := range e {
			byVertex[v] = append(byVertex[v], i)
		}
	}
	for _, bucket := range byVertex {
		for i := 0; i < len(bucket); i++ {
			for j := i + 1; j < len(bucket); j++ {
				_ = g.AddEdge(bucket[i], bucket[j])
			}
		}
	}
	g.SortAdjacency()
	return g
}

// RandomUniformHypergraph returns a hypergraph with m hyperedges, each a
// uniformly random r-subset of the n vertices. It returns an error when
// r > n.
func RandomUniformHypergraph(n, m, r int, rng *rand.Rand) (*Hypergraph, error) {
	if r > n || r <= 0 {
		return nil, fmt.Errorf("graph: random hypergraph requires 0 < r <= n, got r=%d n=%d", r, n)
	}
	h := NewHypergraph(n)
	perm := make([]int, n)
	for k := 0; k < m; k++ {
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		if err := h.AddEdge(perm[:r]...); err != nil {
			return nil, err
		}
	}
	return h, nil
}
