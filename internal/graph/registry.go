package graph

// registry.go is the named graph generator registry. Historically every
// command (cmd/lsample, cmd/linfer) carried its own private switch from a
// -graph flag value to a constructor call, and the switches had drifted
// apart (linfer's "tree" read n as a depth, lsample's as a vertex count).
// The registry is now the single authority: commands, experiments, and the
// declarative instance loader (internal/spec) all resolve a graph kind by
// name through Build, and registering a generator here makes it available
// to every entry point at once — the same move internal/sampler made for
// dynamics.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Generator is one registry entry: a named graph family constructed from a
// single size parameter n. How n is interpreted is part of the generator's
// contract (vertices for the linear kinds, the side for grid/torus, an
// approximate vertex count for tree) and is stated in the Synopsis.
type Generator struct {
	// Name is the registry key (also the -graph flag value and the
	// spec-file "kind").
	Name string
	// Synopsis is a one-line description including the meaning of n.
	Synopsis string
	// New constructs the graph for size parameter n.
	New func(n int) (*Graph, error)
}

var (
	genMu       sync.RWMutex
	genRegistry = map[string]Generator{}
)

// RegisterGenerator adds a generator to the registry. It panics on an
// empty name, a duplicate, or a nil constructor — registration is an
// init-time programming act, not a runtime input.
func RegisterGenerator(gen Generator) {
	if gen.Name == "" || gen.New == nil {
		panic("graph: RegisterGenerator needs a name and a constructor")
	}
	genMu.Lock()
	defer genMu.Unlock()
	if _, dup := genRegistry[gen.Name]; dup {
		panic(fmt.Sprintf("graph: generator %q registered twice", gen.Name))
	}
	genRegistry[gen.Name] = gen
}

// LookupGenerator returns the registry entry for kind (case-insensitive).
func LookupGenerator(kind string) (Generator, bool) {
	genMu.RLock()
	defer genMu.RUnlock()
	gen, ok := genRegistry[strings.ToLower(kind)]
	return gen, ok
}

// Build constructs the named graph family at size parameter n. Kind is
// matched case-insensitively; unknown kinds and negative sizes are errors
// naming the registered alternatives.
func Build(kind string, n int) (*Graph, error) {
	gen, ok := LookupGenerator(kind)
	if !ok {
		return nil, fmt.Errorf("graph: unknown kind %q (have %s)", kind, strings.Join(GeneratorNames(), " | "))
	}
	if n < 0 {
		return nil, fmt.Errorf("graph: kind %q needs a nonnegative size, got %d", kind, n)
	}
	return gen.New(n)
}

// GeneratorNames returns the registered kinds, sorted.
func GeneratorNames() []string {
	genMu.RLock()
	defer genMu.RUnlock()
	out := make([]string, 0, len(genRegistry))
	for name := range genRegistry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// The built-in families. The n semantics reproduce cmd/lsample's historical
// switch exactly, so spec files and legacy flags describe the same graphs.
func init() {
	ok := func(f func(int) *Graph) func(int) (*Graph, error) {
		return func(n int) (*Graph, error) { return f(n), nil }
	}
	RegisterGenerator(Generator{Name: "cycle", Synopsis: "cycle C_n on n vertices", New: ok(Cycle)})
	RegisterGenerator(Generator{Name: "path", Synopsis: "path P_n on n vertices", New: ok(Path)})
	RegisterGenerator(Generator{Name: "complete", Synopsis: "complete graph K_n", New: ok(Complete)})
	RegisterGenerator(Generator{Name: "star", Synopsis: "star K_{1,n-1} with center 0", New: ok(Star)})
	RegisterGenerator(Generator{Name: "grid", Synopsis: "n×n grid (n is the side)", New: ok(func(n int) *Graph { return Grid(n, n) })})
	RegisterGenerator(Generator{Name: "torus", Synopsis: "n×n torus (n is the side)", New: ok(func(n int) *Graph { return Torus(n, n) })})
	RegisterGenerator(Generator{Name: "tree", Synopsis: "complete binary tree with ≈ n vertices", New: ok(func(n int) *Graph {
		depth := 1
		for (1<<(depth+2))-1 <= n {
			depth++
		}
		return CompleteTree(2, depth)
	})})
}
