// Package graph provides the undirected-graph substrate used throughout the
// reproduction of "On Local Distributed Sampling and Counting" (Feng & Yin,
// PODC 2018): simple graphs with adjacency lists, BFS balls and distances,
// power graphs (for the SLOCAL-to-LOCAL transformation on G^(r+1)), line
// graphs (for edge models such as matchings), and induced subgraphs.
//
// Vertices are integers 0..n-1. All graphs are simple (no self loops, no
// parallel edges) and undirected.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Graph is a simple undirected graph on vertices 0..n-1.
//
// The zero value is an empty graph with no vertices. Use New to create a
// graph with a fixed vertex count and AddEdge to insert edges.
type Graph struct {
	n   int
	adj [][]int
	m   int
}

// Edge is an undirected edge {U, V} with U < V.
type Edge struct {
	U, V int
}

var (
	// ErrVertexRange indicates a vertex index outside [0, n).
	ErrVertexRange = errors.New("graph: vertex out of range")
	// ErrSelfLoop indicates an attempt to add a self loop.
	ErrSelfLoop = errors.New("graph: self loops are not allowed")
)

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{n: n, adj: make([][]int, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// AddEdge inserts the undirected edge {u, v}. Adding an existing edge is a
// no-op. Self loops and out-of-range endpoints are errors.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("%w: edge (%d,%d) with n=%d", ErrVertexRange, u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("%w: (%d,%d)", ErrSelfLoop, u, v)
	}
	if g.HasEdge(u, v) {
		return nil
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.m++
	return nil
}

// MustAddEdge is AddEdge for static construction in tests and generators; it
// panics on invalid input, which indicates a programming error.
func (g *Graph) MustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return false
	}
	// Scan the shorter list.
	a, b := u, v
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, w := range g.adj[a] {
		if w == b {
			return true
		}
	}
	return false
}

// Neighbors returns the adjacency list of v. The returned slice is shared
// with the graph's internal state and must not be modified by the caller.
func (g *Graph) Neighbors(v int) []int {
	if v < 0 || v >= g.n {
		return nil
	}
	return g.adj[v]
}

// NeighborsCopy returns a fresh copy of v's adjacency list, sorted.
func (g *Graph) NeighborsCopy(v int) []int {
	nb := g.Neighbors(v)
	out := make([]int, len(nb))
	copy(out, nb)
	sort.Ints(out)
	return out
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int {
	if v < 0 || v >= g.n {
		return 0
	}
	return len(g.adj[v])
}

// MaxDegree returns the maximum degree Δ of the graph (0 for empty graphs).
func (g *Graph) MaxDegree() int {
	d := 0
	for v := 0; v < g.n; v++ {
		if len(g.adj[v]) > d {
			d = len(g.adj[v])
		}
	}
	return d
}

// Edges returns all edges with U < V, sorted lexicographically.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				es = append(es, Edge{U: u, V: v})
			}
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return es
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.m = g.m
	for v := 0; v < g.n; v++ {
		c.adj[v] = append([]int(nil), g.adj[v]...)
	}
	return c
}

// SortAdjacency sorts every adjacency list in increasing order. Generators
// call this so that iteration order is deterministic.
func (g *Graph) SortAdjacency() {
	for v := 0; v < g.n; v++ {
		sort.Ints(g.adj[v])
	}
}

// BFSDistances returns dist[u] = distG(src, u), with -1 for unreachable
// vertices.
func (g *Graph) BFSDistances(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= g.n {
		return dist
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[u] {
			if dist[w] == -1 {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Dist returns distG(u, v), or -1 if v is unreachable from u.
func (g *Graph) Dist(u, v int) int {
	if u == v {
		if u < 0 || u >= g.n {
			return -1
		}
		return 0
	}
	d := g.BFSDistances(u)
	if v < 0 || v >= g.n {
		return -1
	}
	return d[v]
}

// Ball returns B_r(v) = {u : distG(v, u) <= r}, sorted increasingly.
// A negative radius yields an empty ball.
func (g *Graph) Ball(v, r int) []int {
	if v < 0 || v >= g.n || r < 0 {
		return nil
	}
	dist := map[int]int{v: 0}
	queue := []int{v}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if dist[u] == r {
			continue
		}
		for _, w := range g.adj[u] {
			if _, seen := dist[w]; !seen {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	out := make([]int, 0, len(dist))
	for u := range dist {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// BallWithDist returns, for every u in B_r(v), its distance from v.
func (g *Graph) BallWithDist(v, r int) map[int]int {
	res := make(map[int]int)
	if v < 0 || v >= g.n || r < 0 {
		return res
	}
	res[v] = 0
	queue := []int{v}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if res[u] == r {
			continue
		}
		for _, w := range g.adj[u] {
			if _, seen := res[w]; !seen {
				res[w] = res[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return res
}

// DistToSet returns min over s in set of distG(v, s), or -1 if the set is
// empty or unreachable.
func (g *Graph) DistToSet(v int, set []int) int {
	if len(set) == 0 {
		return -1
	}
	inSet := make(map[int]bool, len(set))
	for _, s := range set {
		inSet[s] = true
	}
	if inSet[v] {
		return 0
	}
	d := g.BFSDistances(v)
	best := -1
	for _, s := range set {
		if s < 0 || s >= g.n || d[s] < 0 {
			continue
		}
		if best == -1 || d[s] < best {
			best = d[s]
		}
	}
	return best
}

// IsConnected reports whether the graph is connected (vacuously true for
// n <= 1).
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	d := g.BFSDistances(0)
	for _, x := range d {
		if x < 0 {
			return false
		}
	}
	return true
}

// Components returns the connected components, each sorted, ordered by their
// minimum vertex.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for v := 0; v < g.n; v++ {
		if seen[v] {
			continue
		}
		comp := []int{}
		queue := []int{v}
		seen[v] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for _, w := range g.adj[u] {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Diameter returns the diameter of the graph (max eccentricity), or -1 if
// the graph is disconnected or empty.
func (g *Graph) Diameter() int {
	if g.n == 0 {
		return -1
	}
	diam := 0
	for v := 0; v < g.n; v++ {
		d := g.BFSDistances(v)
		for _, x := range d {
			if x < 0 {
				return -1
			}
			if x > diam {
				diam = x
			}
		}
	}
	return diam
}

// SetDiameter returns max over u,v in S of distG(u, v) measured in the full
// graph (the "weak diameter" of S), or -1 if some pair is disconnected.
// An empty or singleton set has diameter 0.
func (g *Graph) SetDiameter(set []int) int {
	if len(set) <= 1 {
		return 0
	}
	diam := 0
	for _, u := range set {
		d := g.BFSDistances(u)
		for _, v := range set {
			if d[v] < 0 {
				return -1
			}
			if d[v] > diam {
				diam = d[v]
			}
		}
	}
	return diam
}

// Power returns the k-th power graph G^k: same vertex set, with an edge
// between every pair of distinct vertices at distance <= k in G.
// k <= 0 returns an edgeless graph.
func (g *Graph) Power(k int) *Graph {
	p := New(g.n)
	if k <= 0 {
		return p
	}
	for v := 0; v < g.n; v++ {
		for _, u := range g.Ball(v, k) {
			if u > v {
				p.MustAddEdge(v, u)
			}
		}
	}
	p.SortAdjacency()
	return p
}

// IsTriangleFree reports whether the graph contains no triangle.
func (g *Graph) IsTriangleFree() bool {
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if v < u {
				continue
			}
			for _, w := range g.adj[v] {
				if w > v && g.HasEdge(u, w) {
					return false
				}
			}
		}
	}
	return true
}

// Girth returns the length of a shortest cycle, or -1 if the graph is a
// forest.
func (g *Graph) Girth() int {
	best := -1
	for src := 0; src < g.n; src++ {
		dist := make([]int, g.n)
		parent := make([]int, g.n)
		for i := range dist {
			dist[i] = -1
			parent[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range g.adj[u] {
				if dist[w] == -1 {
					dist[w] = dist[u] + 1
					parent[w] = u
					queue = append(queue, w)
				} else if parent[u] != w {
					// A non-tree edge closes a cycle through src of length
					// at most dist[u]+dist[w]+1.
					c := dist[u] + dist[w] + 1
					if best == -1 || c < best {
						best = c
					}
				}
			}
		}
	}
	return best
}

// LineGraph returns the line graph L(G) together with the edge list of G in
// the order matching L(G)'s vertices: vertex i of L(G) corresponds to
// edges[i] of G, and two vertices of L(G) are adjacent iff the corresponding
// edges of G share an endpoint. This is the duality used to express edge
// models (matchings) as vertex models; it contracts distances by at most a
// constant factor, preserving locality.
func (g *Graph) LineGraph() (*Graph, []Edge) {
	edges := g.Edges()
	idx := make(map[Edge]int, len(edges))
	for i, e := range edges {
		idx[e] = i
	}
	lg := New(len(edges))
	for v := 0; v < g.n; v++ {
		// All edges incident to v form a clique in L(G).
		inc := make([]int, 0, len(g.adj[v]))
		for _, u := range g.adj[v] {
			e := Edge{U: min(u, v), V: max(u, v)}
			inc = append(inc, idx[e])
		}
		for i := 0; i < len(inc); i++ {
			for j := i + 1; j < len(inc); j++ {
				lg.MustAddEdge(inc[i], inc[j])
			}
		}
	}
	lg.SortAdjacency()
	return lg, edges
}

// InducedSubgraph returns the subgraph induced by the vertex set S, together
// with the mapping newIndex -> originalVertex (sorted S) and its inverse.
// Vertices outside [0, n) are ignored; duplicates are deduplicated.
func (g *Graph) InducedSubgraph(s []int) (*Graph, []int, map[int]int) {
	uniq := make(map[int]bool, len(s))
	for _, v := range s {
		if v >= 0 && v < g.n {
			uniq[v] = true
		}
	}
	orig := make([]int, 0, len(uniq))
	for v := range uniq {
		orig = append(orig, v)
	}
	sort.Ints(orig)
	inv := make(map[int]int, len(orig))
	for i, v := range orig {
		inv[v] = i
	}
	sub := New(len(orig))
	for i, v := range orig {
		for _, u := range g.adj[v] {
			if j, ok := inv[u]; ok && j > i {
				sub.MustAddEdge(i, j)
			}
		}
	}
	sub.SortAdjacency()
	return sub, orig, inv
}

// Equal reports whether g and h are identical as labeled graphs (same vertex
// count and same edge set).
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n || g.m != h.m {
		return false
	}
	for v := 0; v < g.n; v++ {
		if len(g.adj[v]) != len(h.adj[v]) {
			return false
		}
		for _, u := range g.adj[v] {
			if !h.HasEdge(v, u) {
				return false
			}
		}
	}
	return true
}

// String returns a compact description of the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d Δ=%d}", g.n, g.m, g.MaxDegree())
}
