package graph

import (
	"fmt"
	"math/rand"
)

// Path returns the path graph P_n: 0-1-2-...-(n-1).
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	g.SortAdjacency()
	return g
}

// Cycle returns the cycle graph C_n (n >= 3); for n < 3 it degenerates to a
// path.
func Cycle(n int) *Graph {
	g := Path(n)
	if n >= 3 {
		g.MustAddEdge(n-1, 0)
	}
	g.SortAdjacency()
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.MustAddEdge(i, j)
		}
	}
	return g
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, i)
	}
	g.SortAdjacency()
	return g
}

// Grid returns the w x h grid graph. Vertex (x, y) has index y*w + x.
func Grid(w, h int) *Graph {
	g := New(w * h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := y*w + x
			if x+1 < w {
				g.MustAddEdge(v, v+1)
			}
			if y+1 < h {
				g.MustAddEdge(v, v+w)
			}
		}
	}
	g.SortAdjacency()
	return g
}

// Torus returns the w x h torus (grid with wraparound). Requires w, h >= 3
// for the result to be simple; smaller dimensions degrade to a grid with
// whatever wrap edges remain simple.
func Torus(w, h int) *Graph {
	g := New(w * h)
	at := func(x, y int) int { return ((y+h)%h)*w + (x+w)%w }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := at(x, y)
			u1, u2 := at(x+1, y), at(x, y+1)
			if u1 != v {
				_ = g.AddEdge(v, u1)
			}
			if u2 != v {
				_ = g.AddEdge(v, u2)
			}
		}
	}
	g.SortAdjacency()
	return g
}

// CompleteTree returns the complete b-ary tree of the given depth (depth 0 is
// a single root). The root is vertex 0 and children are laid out in BFS
// order.
func CompleteTree(b, depth int) *Graph {
	if b < 1 {
		b = 1
	}
	// Count vertices: 1 + b + b^2 + ... + b^depth.
	n := 1
	levelSize := 1
	for d := 0; d < depth; d++ {
		levelSize *= b
		n += levelSize
	}
	g := New(n)
	next := 1
	for v := 0; v < n && next < n; v++ {
		for c := 0; c < b && next < n; c++ {
			g.MustAddEdge(v, next)
			next++
		}
	}
	g.SortAdjacency()
	return g
}

// RandomTree returns a uniformly random labeled tree on n vertices via a
// random Prüfer sequence.
func RandomTree(n int, rng *rand.Rand) *Graph {
	g := New(n)
	if n <= 1 {
		return g
	}
	if n == 2 {
		g.MustAddEdge(0, 1)
		return g
	}
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = rng.Intn(n)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range prufer {
		degree[v]++
	}
	for _, v := range prufer {
		for u := 0; u < n; u++ {
			if degree[u] == 1 {
				g.MustAddEdge(u, v)
				degree[u]--
				degree[v]--
				break
			}
		}
	}
	u, w := -1, -1
	for v := 0; v < n; v++ {
		if degree[v] == 1 {
			if u == -1 {
				u = v
			} else {
				w = v
			}
		}
	}
	g.MustAddEdge(u, w)
	g.SortAdjacency()
	return g
}

// ErdosRenyi returns a G(n, p) random graph.
func ErdosRenyi(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.MustAddEdge(i, j)
			}
		}
	}
	g.SortAdjacency()
	return g
}

// RandomRegular returns a random d-regular graph on n vertices using the
// pairing model with restarts, rejecting self loops and parallel edges.
// It returns an error if n*d is odd, d >= n, or a simple pairing is not
// found within a generous retry budget.
func RandomRegular(n, d int, rng *rand.Rand) (*Graph, error) {
	if d < 0 || d >= n {
		return nil, fmt.Errorf("graph: random regular requires 0 <= d < n, got d=%d n=%d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: random regular requires n*d even, got n=%d d=%d", n, d)
	}
	if d == 0 {
		return New(n), nil
	}
	const maxAttempts = 2000
	points := make([]int, n*d)
	for attempt := 0; attempt < maxAttempts; attempt++ {
		for i := range points {
			points[i] = i
		}
		rng.Shuffle(len(points), func(i, j int) { points[i], points[j] = points[j], points[i] })
		g := New(n)
		ok := true
		for i := 0; i+1 < len(points); i += 2 {
			u, v := points[i]/d, points[i+1]/d
			if u == v || g.HasEdge(u, v) {
				ok = false
				break
			}
			g.MustAddEdge(u, v)
		}
		if ok {
			g.SortAdjacency()
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: random regular pairing failed for n=%d d=%d", n, d)
}

// RandomBipartite returns a random bipartite graph with parts of size a and
// b where each of the a*b candidate edges appears independently with
// probability p. Left part is 0..a-1, right part is a..a+b-1.
func RandomBipartite(a, b int, p float64, rng *rand.Rand) *Graph {
	g := New(a + b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			if rng.Float64() < p {
				g.MustAddEdge(i, a+j)
			}
		}
	}
	g.SortAdjacency()
	return g
}

// BoundedDegreeRandom returns a random connected graph with maximum degree
// at most maxDeg: a random tree plus extra random edges subject to the
// degree cap. Useful for generating workloads with a controlled Δ.
func BoundedDegreeRandom(n, maxDeg, extraEdges int, rng *rand.Rand) *Graph {
	if maxDeg < 2 {
		maxDeg = 2
	}
	// Random tree with bounded degree: attach each new vertex to a uniformly
	// random earlier vertex that still has spare degree.
	g := New(n)
	for v := 1; v < n; v++ {
		for {
			u := rng.Intn(v)
			if g.Degree(u) < maxDeg {
				g.MustAddEdge(u, v)
				break
			}
		}
	}
	for k := 0; k < extraEdges; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) || g.Degree(u) >= maxDeg || g.Degree(v) >= maxDeg {
			continue
		}
		g.MustAddEdge(u, v)
	}
	g.SortAdjacency()
	return g
}
