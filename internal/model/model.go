// Package model builds the concrete joint distributions used in the paper's
// applications (Section 5 of Feng & Yin, PODC 2018) as Gibbs specifications:
// the hardcore model (weighted independent sets), antiferromagnetic 2-spin
// systems (including Ising), proper q- and list-colorings, monomer–dimer
// matchings (as a vertex model on the line graph), and weighted hypergraph
// matchings (as a vertex model on the intersection graph). It also provides
// the uniqueness thresholds at which the paper's computational phase
// transition occurs.
package model

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/gibbs"
	"repro/internal/graph"
)

// Spin values for two-state models.
const (
	// Out marks a vertex excluded from the independent set / an unmatched
	// edge.
	Out = 0
	// In marks a vertex in the independent set / a matched edge.
	In = 1
)

// Hardcore returns the hardcore (weighted independent set) Gibbs
// distribution on g with fugacity λ > 0: configurations are subsets of
// vertices, hard constraints forbid adjacent occupied vertices, and a
// configuration with k occupied vertices has weight λ^k. This is the model
// of the paper's headline phase transition (Section 5).
//
// All factors are emitted as dense weight tables shared across vertices and
// edges, so the compiled engine (gibbs.Compile) adopts them without
// re-enumeration and the closure path reads the same tables.
func Hardcore(g *graph.Graph, lambda float64) (*gibbs.Spec, error) {
	if lambda <= 0 {
		return nil, fmt.Errorf("model: hardcore fugacity must be positive, got %v", lambda)
	}
	activity := activityTable(lambda)
	// (In, In) is forbidden; index is a_u·2 + a_v.
	edge := []float64{1, 1, 1, 0}
	factors := make([]gibbs.Factor, 0, g.N()+g.M())
	for v := 0; v < g.N(); v++ {
		factors = append(factors, gibbs.UnaryTable(v, activity, "activity"))
	}
	for _, e := range g.Edges() {
		factors = append(factors, gibbs.PairTable(e.U, e.V, edge, "hc-edge"))
	}
	return gibbs.NewSpec(g, 2, factors)
}

// activityTable is the shared unary table of a two-state model with
// external field λ: weight 1 for Out, λ for In.
func activityTable(lambda float64) []float64 {
	t := make([]float64, 2)
	t[Out] = 1
	t[In] = lambda
	return t
}

// TwoSpinParams parameterizes a 2-spin system with edge interaction matrix
// [[β, 1], [1, γ]] and external field λ (the (β, γ, λ) convention of
// Li–Lu–Yin, with β the weight of an Out–Out edge and γ the weight of an
// In–In edge). The system is antiferromagnetic when βγ < 1. Hardcore is
// (β, γ, λ) = (1, 0, λ); Ising with uniform coupling is β = γ.
type TwoSpinParams struct {
	Beta, Gamma, Lambda float64
}

// Validate checks admissibility of the parameters.
func (p TwoSpinParams) Validate() error {
	if p.Beta < 0 || p.Gamma < 0 {
		return errors.New("model: 2-spin requires beta, gamma >= 0")
	}
	if p.Beta == 0 && p.Gamma == 0 {
		return errors.New("model: 2-spin requires beta > 0 or gamma > 0")
	}
	if p.Lambda <= 0 {
		return errors.New("model: 2-spin requires lambda > 0")
	}
	return nil
}

// Antiferromagnetic reports whether βγ < 1.
func (p TwoSpinParams) Antiferromagnetic() bool { return p.Beta*p.Gamma < 1 }

// TwoSpin returns the 2-spin Gibbs distribution on g: each vertex takes a
// spin in {Out, In}; each edge (u, v) contributes β when both spins are Out,
// γ when both are In, and 1 otherwise; each In vertex contributes λ.
func TwoSpin(g *graph.Graph, p TwoSpinParams) (*gibbs.Spec, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	activity := activityTable(p.Lambda)
	edge := make([]float64, 4)
	edge[Out*2+Out] = p.Beta
	edge[Out*2+In] = 1
	edge[In*2+Out] = 1
	edge[In*2+In] = p.Gamma
	factors := make([]gibbs.Factor, 0, g.N()+g.M())
	for v := 0; v < g.N(); v++ {
		factors = append(factors, gibbs.UnaryTable(v, activity, "activity"))
	}
	for _, e := range g.Edges() {
		factors = append(factors, gibbs.PairTable(e.U, e.V, edge, "2spin-edge"))
	}
	return gibbs.NewSpec(g, 2, factors)
}

// Ising returns the antiferromagnetic Ising model with edge weight
// β = γ = b (0 < b < 1 for antiferromagnetic) and field λ.
func Ising(g *graph.Graph, b, lambda float64) (*gibbs.Spec, error) {
	return TwoSpin(g, TwoSpinParams{Beta: b, Gamma: b, Lambda: lambda})
}

// Coloring returns the uniform distribution over proper q-colorings of g:
// hard disequality constraints on edges.
func Coloring(g *graph.Graph, q int) (*gibbs.Spec, error) {
	if q < 1 {
		return nil, fmt.Errorf("model: coloring requires q >= 1, got %d", q)
	}
	neq := disequalityTable(q)
	factors := make([]gibbs.Factor, 0, g.M())
	for _, e := range g.Edges() {
		factors = append(factors, gibbs.PairTable(e.U, e.V, neq, "neq"))
	}
	return gibbs.NewSpec(g, q, factors)
}

// disequalityTable is the shared q×q table of the proper-coloring edge
// constraint: 0 on the diagonal, 1 elsewhere.
func disequalityTable(q int) []float64 {
	t := make([]float64, q*q)
	for cu := 0; cu < q; cu++ {
		for cv := 0; cv < q; cv++ {
			if cu != cv {
				t[cu*q+cv] = 1
			}
		}
	}
	return t
}

// ListColoring returns the uniform distribution over proper list colorings
// of g, with lists[v] ⊆ {0..q-1} the available colors at v. This is the
// paradigm example of the paper's introduction; conditioning a q-coloring
// instance on a pinned boundary yields exactly a list-coloring instance
// (Remark 2.2).
func ListColoring(g *graph.Graph, q int, lists [][]int) (*gibbs.Spec, error) {
	if len(lists) != g.N() {
		return nil, fmt.Errorf("model: %d lists for %d vertices", len(lists), g.N())
	}
	factors := make([]gibbs.Factor, 0, g.N()+g.M())
	for v := 0; v < g.N(); v++ {
		allowed := make([]float64, q)
		for _, c := range lists[v] {
			if c < 0 || c >= q {
				return nil, fmt.Errorf("model: color %d outside palette q=%d at vertex %d", c, q, v)
			}
			allowed[c] = 1
		}
		factors = append(factors, gibbs.UnaryTable(v, allowed, "list"))
	}
	neq := disequalityTable(q)
	for _, e := range g.Edges() {
		factors = append(factors, gibbs.PairTable(e.U, e.V, neq, "neq"))
	}
	return gibbs.NewSpec(g, q, factors)
}

// MatchingModel is a monomer–dimer (weighted matching) model expressed as a
// vertex model: the Gibbs specification lives on the line graph L(G), one
// binary variable per edge of the original graph, with a hard "at most one
// matched edge per vertex" constraint realized by pairwise conflicts (edges
// of L(G)) and activity λ per matched edge. Distances in L(G) differ from
// distances in G by at most a factor 2 plus 1, so locality is preserved —
// this is the duality noted at the end of Section 5.
type MatchingModel struct {
	// Spec is the Gibbs specification on the line graph.
	Spec *gibbs.Spec
	// Base is the original graph G.
	Base *graph.Graph
	// EdgeList maps line-graph vertex index -> original edge.
	EdgeList []graph.Edge
	// Lambda is the edge activity.
	Lambda float64
}

// Matching returns the monomer–dimer model on g with edge activity λ > 0.
func Matching(g *graph.Graph, lambda float64) (*MatchingModel, error) {
	if lambda <= 0 {
		return nil, fmt.Errorf("model: matching activity must be positive, got %v", lambda)
	}
	lg, edges := g.LineGraph()
	spec, err := Hardcore(lg, lambda)
	if err != nil {
		return nil, err
	}
	return &MatchingModel{Spec: spec, Base: g, EdgeList: edges, Lambda: lambda}, nil
}

// IsMatching reports whether the line-graph configuration encodes a valid
// matching of the base graph.
func (m *MatchingModel) IsMatching(cfg []int) bool {
	used := make(map[int]bool)
	for i, x := range cfg {
		if x != In {
			continue
		}
		e := m.EdgeList[i]
		if used[e.U] || used[e.V] {
			return false
		}
		used[e.U] = true
		used[e.V] = true
	}
	return true
}

// HypergraphMatchingModel is the weighted hypergraph matching model
// (Song–Yin–Zhao) as a vertex model on the intersection graph of
// hyperedges: a hypergraph matching is an independent set of the
// intersection graph, with activity λ per matched hyperedge.
type HypergraphMatchingModel struct {
	Spec   *gibbs.Spec
	Base   *graph.Hypergraph
	Lambda float64
}

// HypergraphMatching returns the weighted hypergraph matching model on h
// with activity λ > 0.
func HypergraphMatching(h *graph.Hypergraph, lambda float64) (*HypergraphMatchingModel, error) {
	if lambda <= 0 {
		return nil, fmt.Errorf("model: hypergraph matching activity must be positive, got %v", lambda)
	}
	ig := h.IntersectionGraph()
	spec, err := Hardcore(ig, lambda)
	if err != nil {
		return nil, err
	}
	return &HypergraphMatchingModel{Spec: spec, Base: h, Lambda: lambda}, nil
}

// LambdaC returns the hardcore uniqueness threshold on the infinite Δ-regular
// tree, λc(Δ) = (Δ−1)^(Δ−1) / (Δ−2)^Δ (Section 5; Weitz). It requires
// Δ >= 3; for Δ <= 2 uniqueness holds for every λ and the function returns
// +Inf.
func LambdaC(delta int) float64 {
	if delta <= 2 {
		return math.Inf(1)
	}
	d := float64(delta)
	return math.Pow(d-1, d-1) / math.Pow(d-2, d)
}

// LambdaCHypergraph returns the hypergraph matching uniqueness threshold
// λc(r, Δ) = (Δ−1)^(Δ−1) / (r−1) / (Δ−2)^Δ (Song–Yin–Zhao, as quoted in
// Section 5). Requires Δ >= 3 and r >= 2; Δ <= 2 returns +Inf.
func LambdaCHypergraph(r, delta int) float64 {
	if delta <= 2 {
		return math.Inf(1)
	}
	if r < 2 {
		r = 2
	}
	d := float64(delta)
	return math.Pow(d-1, d-1) / (float64(r-1) * math.Pow(d-2, d))
}

// AlphaStar returns α* ≈ 1.76322, the positive root of x = e^{1/x}, the
// coloring threshold of Gamarnik–Katz–Misra quoted in Section 5 (q ≥ αΔ,
// α > α*, triangle-free graphs).
func AlphaStar() float64 {
	// Fixed-point iteration x <- e^{1/x} converges quickly from x0 = 1.7.
	x := 1.7
	for i := 0; i < 128; i++ {
		x = math.Exp(1 / x)
	}
	return x
}

// IsingUniquenessInterval returns the open interval (lo, hi) of edge
// activities b for which the antiferromagnetic/ferromagnetic Ising model
// with no external field is in the uniqueness regime on the Δ-regular tree:
// b ∈ ((Δ−2)/Δ, Δ/(Δ−2)). For Δ <= 2 it returns (0, +Inf).
func IsingUniquenessInterval(delta int) (lo, hi float64) {
	if delta <= 2 {
		return 0, math.Inf(1)
	}
	d := float64(delta)
	return (d - 2) / d, d / (d - 2)
}

// MatchingDecayRate returns the correlation decay rate for the monomer–dimer
// model with activity λ on graphs of maximum degree Δ:
// rate = 1 − 2/(1+√(1+4λΔ)) = 1 − Θ(1/√(λΔ)), following
// Bayati–Gamarnik–Katz–Nair–Tetali. The O(√Δ log³ n) matching sampler of
// Section 5 follows because the SSM radius scales like 1/(1−rate) = Θ(√Δ).
func MatchingDecayRate(lambda float64, delta int) float64 {
	if delta <= 0 || lambda <= 0 {
		return 0
	}
	s := math.Sqrt(1 + 4*lambda*float64(delta))
	return 1 - 2/(1+s)
}

// HardcoreDecayRate returns an upper bound on the per-step contraction of
// the hardcore SAW-tree recursion at fugacity λ on trees of branching Δ−1,
// valid in the uniqueness regime λ < λc(Δ). It returns 1 when λ ≥ λc(Δ)
// (no contraction guaranteed). The bound used is the standard derivative
// bound of the log-ratio recursion at its fixed point.
func HardcoreDecayRate(lambda float64, delta int) float64 {
	if delta <= 2 {
		// On paths the recursion contracts geometrically for every λ.
		return lambda / (1 + lambda)
	}
	if lambda >= LambdaC(delta) {
		return 1
	}
	d := float64(delta - 1)
	// Fixed point x* of x = λ/(1+x)^d; contraction is |f'(x*)| = d·x*/(1+x*).
	// Damped iteration avoids the 2-cycle of the plain recursion near the
	// threshold.
	x := lambda
	for i := 0; i < 512; i++ {
		x = 0.5*x + 0.5*lambda/math.Pow(1+x, d)
	}
	rate := d * x / (1 + x)
	if rate > 1 {
		rate = 1
	}
	return rate
}
