package model

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
	"repro/internal/graph"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func mustInstance(t *testing.T, s *gibbs.Spec) *gibbs.Instance {
	t.Helper()
	in, err := gibbs.NewInstance(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestHardcorePartitionSmall(t *testing.T) {
	// Hardcore on P3 with λ: Z = 1 + 3λ + λ² (independent sets:
	// ∅, {0},{1},{2},{0,2}).
	g := graph.Path(3)
	for _, lambda := range []float64{0.5, 1, 2} {
		s, err := Hardcore(g, lambda)
		if err != nil {
			t.Fatal(err)
		}
		z, err := exact.Partition(mustInstance(t, s))
		if err != nil {
			t.Fatal(err)
		}
		want := 1 + 3*lambda + lambda*lambda
		if !almostEq(z, want, 1e-9) {
			t.Errorf("λ=%v: Z = %v, want %v", lambda, z, want)
		}
	}
}

func TestHardcoreRejectsBadLambda(t *testing.T) {
	if _, err := Hardcore(graph.Path(2), 0); err == nil {
		t.Error("λ=0 accepted")
	}
	if _, err := Hardcore(graph.Path(2), -1); err == nil {
		t.Error("λ<0 accepted")
	}
}

func TestHardcoreCountsIndependentSets(t *testing.T) {
	// λ=1 counts independent sets; C5 has 11.
	s, err := Hardcore(graph.Cycle(5), 1)
	if err != nil {
		t.Fatal(err)
	}
	n, err := exact.CountFeasible(mustInstance(t, s))
	if err != nil {
		t.Fatal(err)
	}
	if n != 11 {
		t.Errorf("C5 independent sets = %d, want 11", n)
	}
}

func TestTwoSpinValidate(t *testing.T) {
	cases := []struct {
		p  TwoSpinParams
		ok bool
	}{
		{TwoSpinParams{Beta: 1, Gamma: 0, Lambda: 1}, true},
		{TwoSpinParams{Beta: 0.5, Gamma: 0.5, Lambda: 2}, true},
		{TwoSpinParams{Beta: -1, Gamma: 1, Lambda: 1}, false},
		{TwoSpinParams{Beta: 0, Gamma: 0, Lambda: 1}, false},
		{TwoSpinParams{Beta: 1, Gamma: 1, Lambda: 0}, false},
	}
	for _, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v", c.p, err)
		}
	}
	if !(TwoSpinParams{Beta: 0.5, Gamma: 0.5, Lambda: 1}).Antiferromagnetic() {
		t.Error("βγ<1 not antiferro")
	}
	if (TwoSpinParams{Beta: 2, Gamma: 1, Lambda: 1}).Antiferromagnetic() {
		t.Error("βγ≥1 antiferro")
	}
}

func TestTwoSpinMatchesHardcore(t *testing.T) {
	// (β, γ) = (1, 0) must reproduce hardcore exactly.
	g := graph.Cycle(4)
	hc, _ := Hardcore(g, 1.5)
	ts, err := TwoSpin(g, TwoSpinParams{Beta: 1, Gamma: 0, Lambda: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	zh, _ := exact.Partition(mustInstance(t, hc))
	zt, _ := exact.Partition(mustInstance(t, ts))
	if !almostEq(zh, zt, 1e-9) {
		t.Errorf("hardcore Z=%v, 2-spin Z=%v", zh, zt)
	}
}

func TestIsingPartitionOnEdge(t *testing.T) {
	// Single edge with β=γ=b, λ=1: Z = 2b + 2.
	g := graph.Path(2)
	s, err := Ising(g, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	z, err := exact.Partition(mustInstance(t, s))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(z, 3, 1e-9) {
		t.Errorf("Ising edge Z = %v, want 3", z)
	}
}

func TestColoringCounts(t *testing.T) {
	// Proper q-colorings of a triangle: q(q-1)(q-2).
	s, err := Coloring(graph.Complete(3), 3)
	if err != nil {
		t.Fatal(err)
	}
	n, err := exact.CountFeasible(mustInstance(t, s))
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Errorf("3-colorings of K3 = %d, want 6", n)
	}
	// Chromatic polynomial of C4 at q=3: (q-1)^4 + (q-1) = 16+2 = 18.
	s2, _ := Coloring(graph.Cycle(4), 3)
	n2, err := exact.CountFeasible(mustInstance(t, s2))
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 18 {
		t.Errorf("3-colorings of C4 = %d, want 18", n2)
	}
	if _, err := Coloring(graph.Path(2), 0); err == nil {
		t.Error("q=0 accepted")
	}
}

func TestListColoring(t *testing.T) {
	g := graph.Path(2)
	lists := [][]int{{0}, {0, 1}}
	s, err := ListColoring(g, 2, lists)
	if err != nil {
		t.Fatal(err)
	}
	// Vertex 0 must be 0, vertex 1 must then be 1: exactly one coloring.
	n, err := exact.CountFeasible(mustInstance(t, s))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("list colorings = %d, want 1", n)
	}
	if _, err := ListColoring(g, 2, [][]int{{0}}); err == nil {
		t.Error("wrong list count accepted")
	}
	if _, err := ListColoring(g, 2, [][]int{{0}, {5}}); err == nil {
		t.Error("color outside palette accepted")
	}
}

func TestListColoringIsSelfReductionOfColoring(t *testing.T) {
	// Pinning vertex 0 of a 3-coloring of P3 to color 0 equals list
	// coloring with lists {1,2} at vertex 1 and {0,1,2} at vertex 2.
	g := graph.Path(3)
	s, _ := Coloring(g, 3)
	in, _ := gibbs.NewInstance(s, dist.Config{0, dist.Unset, dist.Unset})
	m, err := exact.Marginal(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m[0] != 0 {
		t.Errorf("pinned neighbor color has probability %v", m[0])
	}
	if !almostEq(m[1], 0.5, 1e-9) || !almostEq(m[2], 0.5, 1e-9) {
		t.Errorf("conditional marginal = %v", m)
	}
}

func TestMatchingModel(t *testing.T) {
	// Monomer-dimer on P3 (2 edges): Z = 1 + 2λ.
	g := graph.Path(3)
	m, err := Matching(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	z, err := exact.Partition(mustInstance(t, m.Spec))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(z, 5, 1e-9) {
		t.Errorf("monomer-dimer Z = %v, want 5", z)
	}
	// Matchings of C4 with λ=1: Z = 1 + 4 + 2 = 7.
	m2, _ := Matching(graph.Cycle(4), 1)
	z2, err := exact.Partition(mustInstance(t, m2.Spec))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(z2, 7, 1e-9) {
		t.Errorf("C4 matchings = %v, want 7", z2)
	}
	if _, err := Matching(g, 0); err == nil {
		t.Error("λ=0 accepted")
	}
}

func TestIsMatching(t *testing.T) {
	g := graph.Star(4) // edges (0,1), (0,2), (0,3) all share vertex 0
	m, _ := Matching(g, 1)
	if !m.IsMatching([]int{1, 0, 0}) {
		t.Error("single edge rejected")
	}
	if m.IsMatching([]int{1, 1, 0}) {
		t.Error("two edges sharing a vertex accepted")
	}
	if !m.IsMatching([]int{0, 0, 0}) {
		t.Error("empty matching rejected")
	}
}

func TestMatchingFeasibleConfigsAreMatchings(t *testing.T) {
	g := graph.Cycle(5)
	m, _ := Matching(g, 1)
	in := mustInstance(t, m.Spec)
	j, err := exact.JointDistribution(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range j.Support() {
		if !m.IsMatching(cfg) {
			t.Fatalf("feasible config %v is not a matching", cfg)
		}
	}
}

func TestHypergraphMatching(t *testing.T) {
	// Two disjoint hyperedges plus one overlapping both: matchings are
	// subsets of non-intersecting hyperedges.
	h := graph.NewHypergraph(6)
	_ = h.AddEdge(0, 1, 2) // e0
	_ = h.AddEdge(3, 4, 5) // e1 (disjoint from e0)
	_ = h.AddEdge(2, 3)    // e2 (hits both)
	hm, err := HypergraphMatching(h, 1)
	if err != nil {
		t.Fatal(err)
	}
	n, err := exact.CountFeasible(mustInstance(t, hm.Spec))
	if err != nil {
		t.Fatal(err)
	}
	// Matchings: {}, {e0}, {e1}, {e2}, {e0,e1} = 5.
	if n != 5 {
		t.Errorf("hypergraph matchings = %d, want 5", n)
	}
	if _, err := HypergraphMatching(h, -1); err == nil {
		t.Error("negative activity accepted")
	}
}

func TestLambdaC(t *testing.T) {
	// λc(3) = 4, λc(4) = 27/16, λc(5) = 256/243... check known values.
	if !almostEq(LambdaC(3), 4, 1e-9) {
		t.Errorf("λc(3) = %v, want 4", LambdaC(3))
	}
	if !almostEq(LambdaC(4), 27.0/16, 1e-9) {
		t.Errorf("λc(4) = %v, want 27/16", LambdaC(4))
	}
	if !almostEq(LambdaC(5), math.Pow(4, 4)/math.Pow(3, 5), 1e-9) {
		t.Errorf("λc(5) = %v", LambdaC(5))
	}
	if !math.IsInf(LambdaC(2), 1) {
		t.Error("λc(2) should be +Inf")
	}
	// λc is decreasing in Δ.
	for d := 3; d < 20; d++ {
		if LambdaC(d+1) >= LambdaC(d) {
			t.Fatalf("λc not decreasing at Δ=%d", d)
		}
	}
}

func TestLambdaCHypergraph(t *testing.T) {
	// r=2 recovers the graph threshold.
	if !almostEq(LambdaCHypergraph(2, 3), LambdaC(3), 1e-9) {
		t.Errorf("λc(2,3) = %v, want λc(3)", LambdaCHypergraph(2, 3))
	}
	if LambdaCHypergraph(3, 4) >= LambdaCHypergraph(2, 4) {
		t.Error("threshold should shrink with rank")
	}
	if !math.IsInf(LambdaCHypergraph(3, 2), 1) {
		t.Error("Δ≤2 should be +Inf")
	}
}

func TestAlphaStar(t *testing.T) {
	a := AlphaStar()
	if !almostEq(a, math.Exp(1/a), 1e-9) {
		t.Errorf("α* = %v is not a fixed point of e^{1/x}", a)
	}
	if !almostEq(a, 1.76322, 1e-4) {
		t.Errorf("α* = %v, want ≈1.76322", a)
	}
}

func TestIsingUniquenessInterval(t *testing.T) {
	lo, hi := IsingUniquenessInterval(4)
	if !almostEq(lo, 0.5, 1e-12) || !almostEq(hi, 2, 1e-12) {
		t.Errorf("interval = (%v, %v), want (0.5, 2)", lo, hi)
	}
	if !almostEq(lo*hi, 1, 1e-12) {
		t.Error("interval should be symmetric around 1")
	}
	lo2, hi2 := IsingUniquenessInterval(2)
	if lo2 != 0 || !math.IsInf(hi2, 1) {
		t.Error("Δ≤2 should be the whole positive axis")
	}
}

func TestMatchingDecayRate(t *testing.T) {
	// Rate increases with λΔ and stays in [0, 1).
	prev := -1.0
	for _, d := range []int{2, 4, 8, 16, 32} {
		r := MatchingDecayRate(1, d)
		if r <= prev {
			t.Fatalf("rate not increasing at Δ=%d", d)
		}
		if r < 0 || r >= 1 {
			t.Fatalf("rate %v out of range", r)
		}
		prev = r
	}
	// 1/(1-rate) should scale like √Δ: check the ratio across a 4x degree
	// increase is close to 2.
	r4 := 1 / (1 - MatchingDecayRate(1, 16))
	r1 := 1 / (1 - MatchingDecayRate(1, 4))
	if ratio := r4 / r1; ratio < 1.6 || ratio > 2.4 {
		t.Errorf("√Δ scaling violated: ratio = %v", ratio)
	}
	if MatchingDecayRate(0, 4) != 0 || MatchingDecayRate(1, 0) != 0 {
		t.Error("degenerate parameters should give rate 0")
	}
}

func TestHardcoreDecayRate(t *testing.T) {
	// Below threshold: contraction < 1; above: 1.
	if r := HardcoreDecayRate(1, 5); r >= 1 || r <= 0 {
		t.Errorf("rate at λ=1, Δ=5 = %v", r)
	}
	if r := HardcoreDecayRate(5, 3); r != 1 {
		t.Errorf("rate above λc should be 1, got %v", r)
	}
	// Monotone in λ below threshold.
	if HardcoreDecayRate(0.5, 4) >= HardcoreDecayRate(1.5, 4) {
		t.Error("rate should grow with λ")
	}
	// Paths contract for every λ.
	if r := HardcoreDecayRate(10, 2); r >= 1 {
		t.Errorf("path rate = %v", r)
	}
}
