package model_test

import (
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
)

// builders enumerates every model constructor as a named spec factory over
// a random small graph, covering the full satellite checklist: hardcore,
// Ising/2-spin, q- and list-colorings, monomer–dimer matchings, and
// hypergraph matchings.
func builders(t *testing.T, rng *rand.Rand) map[string]*gibbs.Spec {
	t.Helper()
	g := graph.RandomTree(7, rng)
	cyc := graph.Cycle(6)
	specs := make(map[string]*gibbs.Spec)

	hc, err := model.Hardcore(g, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	specs["hardcore"] = hc

	ising, err := model.Ising(cyc, 0.4, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	specs["ising"] = ising

	twoSpin, err := model.TwoSpin(g, model.TwoSpinParams{Beta: 0.3, Gamma: 1.2, Lambda: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	specs["2spin"] = twoSpin

	col, err := model.Coloring(cyc, 3)
	if err != nil {
		t.Fatal(err)
	}
	specs["coloring"] = col

	lists := make([][]int, g.N())
	for v := range lists {
		for c := 0; c < 4; c++ {
			if rng.Intn(4) > 0 {
				lists[v] = append(lists[v], c)
			}
		}
		if len(lists[v]) == 0 {
			lists[v] = []int{rng.Intn(4)}
		}
	}
	lc, err := model.ListColoring(g, 4, lists)
	if err != nil {
		t.Fatal(err)
	}
	specs["list-coloring"] = lc

	m, err := model.Matching(graph.Grid(3, 3), 1.2)
	if err != nil {
		t.Fatal(err)
	}
	specs["matching"] = m.Spec

	h, err := graph.RandomUniformHypergraph(8, 5, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	hm, err := model.HypergraphMatching(h, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	specs["hypergraph-matching"] = hm.Spec

	return specs
}

// randomPartial draws a partial configuration with roughly a third of the
// vertices unset.
func randomPartial(n, q int, rng *rand.Rand) dist.Config {
	c := dist.NewConfig(n)
	for v := range c {
		if rng.Intn(3) > 0 {
			c[v] = rng.Intn(q)
		}
	}
	return c
}

// TestCompiledMatchesClosure is the compiled-vs-closure equivalence
// property test: Weight, PartialWeight, LocallyFeasibleAt, and conditional
// marginals agree exactly (bit-for-bit, no tolerance) between the Spec
// closure path and Compile(Spec) on every model builder.
func TestCompiledMatchesClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for name, spec := range builders(t, rng) {
		t.Run(name, func(t *testing.T) {
			eng := gibbs.Compile(spec)
			n, q := spec.N(), spec.Q
			buf := make([]float64, q)
			for trial := 0; trial < 60; trial++ {
				partial := randomPartial(n, q, rng)
				if got, want := eng.PartialWeight(partial), spec.PartialWeight(partial); got != want {
					t.Fatalf("PartialWeight = %v, want %v (cfg %v)", got, want, partial)
				}
				for v := 0; v < n; v++ {
					if got, want := eng.LocallyFeasibleAt(partial, v), spec.LocallyFeasibleAt(partial, v); got != want {
						t.Fatalf("LocallyFeasibleAt(%d) = %v, want %v (cfg %v)", v, got, want, partial)
					}
				}

				total := dist.NewConfig(n)
				for v := range total {
					total[v] = rng.Intn(q)
				}
				wEng, err1 := eng.Weight(total)
				wSpec, err2 := spec.Weight(total)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("Weight error mismatch: %v vs %v", err1, err2)
				}
				if wEng != wSpec {
					t.Fatalf("Weight = %v, want %v (cfg %v)", wEng, wSpec, total)
				}

				// Conditional marginals on a feasible total configuration:
				// CondWeights against the closure-path product over the
				// factors at v (identical factor order, so identical
				// floats), checked as normalized distributions too.
				feasible, err := spec.GreedyCompletion(dist.NewConfig(n))
				if err != nil {
					// Random list-colorings need not be locally admissible;
					// the conditional check then has no feasible anchor.
					continue
				}
				v := rng.Intn(n)
				w, err := eng.CondWeights(feasible, v, buf)
				if err != nil {
					t.Fatal(err)
				}
				saved := feasible[v]
				totalW := 0.0
				for x := 0; x < q; x++ {
					feasible[v] = x
					want := 1.0
					for _, fi := range eng.FactorsAt(v) {
						f := spec.Factors[fi]
						assign := make([]int, len(f.Scope))
						for j, u := range f.Scope {
							assign[j] = feasible[u]
						}
						want *= f.Eval(assign)
					}
					if w[x] != want {
						t.Fatalf("CondWeights(%d)[%d] = %v, want %v", v, x, w[x], want)
					}
					totalW += w[x]
				}
				feasible[v] = saved
				if totalW <= 0 {
					t.Fatalf("conditional at %d has zero mass on feasible config", v)
				}
			}
		})
	}
}

// TestCompiledRatioDeterministic checks that WeightRatioOnBall is
// deterministic and identical across the legacy and compiled paths for
// multi-vertex difference sets (the satellite fix: the legacy path used to
// iterate a map).
func TestCompiledRatioDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for name, spec := range builders(t, rng) {
		t.Run(name, func(t *testing.T) {
			eng := gibbs.Compile(spec)
			sc := eng.NewScratch()
			n := spec.N()
			base, err := spec.GreedyCompletion(dist.NewConfig(n))
			if err != nil {
				t.Skipf("no greedy feasible base: %v", err)
			}
			for trial := 0; trial < 40; trial++ {
				alt, err := eng.GreedyCompletion(func() dist.Config {
					c := dist.NewConfig(n)
					v := rng.Intn(n)
					c[v] = rng.Intn(spec.Q)
					if !spec.LocallyFeasibleAt(c, v) {
						c[v] = dist.Unset
					}
					return c
				}())
				if err != nil {
					continue
				}
				d := base.DiffersAt(alt)
				if len(d) == 0 {
					continue
				}
				want, errLegacy := spec.WeightRatioOnBall(alt, base, d)
				if errLegacy != nil {
					continue // zero denominator; both paths must agree below
				}
				for rep := 0; rep < 3; rep++ {
					got, err := eng.WeightRatioOnBall(alt, base, d, sc)
					if err != nil {
						t.Fatalf("compiled ratio errored where legacy succeeded: %v", err)
					}
					if got != want {
						t.Fatalf("%s: ratio %v != legacy %v (diff %v)", name, got, want, d)
					}
				}
			}
		})
	}
}

// TestGreedyCompletionEquivalence pins the compiled and closure greedy
// completions to each other on every builder.
func TestGreedyCompletionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for name, spec := range builders(t, rng) {
		t.Run(name, func(t *testing.T) {
			eng := gibbs.Compile(spec)
			for trial := 0; trial < 20; trial++ {
				pin := randomPartial(spec.N(), spec.Q, rng)
				want, err1 := spec.GreedyCompletion(pin)
				got, err2 := eng.GreedyCompletion(pin)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("completion error mismatch: %v vs %v", err1, err2)
				}
				if err1 == nil && !got.Equal(want) {
					t.Fatalf("completion %v != %v", got, want)
				}
			}
		})
	}
}

// TestCompiledWeightSmoke pins a hand-computable weight on both engines.
func TestCompiledWeightSmoke(t *testing.T) {
	g := graph.Cycle(8)
	spec, err := model.Hardcore(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	eng := spec.Compiled()
	cfg := dist.Config{1, 0, 1, 0, 1, 0, 1, 0} // 4 occupied vertices: λ⁴ = 16
	a, err1 := spec.Weight(cfg)
	b, err2 := eng.Weight(cfg)
	if err1 != nil || err2 != nil || a != 16 || b != 16 {
		t.Fatalf("weights = %v/%v (errs %v/%v), want 16", a, b, err1, err2)
	}
}
