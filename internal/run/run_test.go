package run

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
)

func hardcoreInstance(t *testing.T, n int, lambda float64) *gibbs.Instance {
	t.Helper()
	g := graph.Cycle(n)
	spec, err := model.Hardcore(g, lambda)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestPolicyValidation(t *testing.T) {
	in := hardcoreInstance(t, 6, 1.0)
	cases := []struct {
		name string
		p    Policy
	}{
		{"no stages", Policy{}},
		{"empty dynamic", Policy{Stages: []Stage{{}}}},
		{"one chain", Policy{Stages: []Stage{{Dynamic: "chromatic"}}, Chains: 1}},
		{"rhat below 1", Policy{Stages: []Stage{{Dynamic: "chromatic"}}, Rhat: 0.5}},
		{"negative burn-in", Policy{Stages: []Stage{{Dynamic: "chromatic"}}, BurnIn: -1}},
		{"rate above 1", Policy{Stages: []Stage{{Dynamic: "chromatic", MinRate: 1.5}, {Dynamic: "metropolis"}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Drive(in, 1, tc.p)
			var pe *PolicyError
			if !errors.As(err, &pe) {
				t.Errorf("Drive(%+v) error = %v, want *PolicyError", tc.p, err)
			}
		})
	}
	// Dynamics without a batched form are a construction error, not a
	// PolicyError.
	if _, _, err := One(in, "glauber", 1, Policy{}); err == nil {
		t.Error("sequential baseline accepted as a driver stage")
	}
	if _, _, err := One(in, "nosuch", 1, Policy{}); err == nil {
		t.Error("unknown dynamic accepted")
	}
}

// TestDriveConvergesEarly: a fast-mixing instance under a realistic
// threshold stops well before the budget, with a coherent report.
func TestDriveConvergesEarly(t *testing.T) {
	in := hardcoreInstance(t, 8, 1.0)
	rep, m, err := One(in, "chromatic", 5, Policy{
		Chains:     8,
		MaxSweeps:  512,
		CheckEvery: 2,
		BurnIn:     4,
		Rhat:       1.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged || rep.Reason != Converged {
		t.Fatalf("Reason = %q, Converged = %v; want converged (final R̂ %v)", rep.Reason, rep.Converged, rep.Rhat)
	}
	if rep.Sweeps >= 512 {
		t.Errorf("Sweeps = %d, want an early stop < 512", rep.Sweeps)
	}
	// The classic statistic can dip marginally below 1 (varPlus shrinks
	// within by (T-1)/T when chains agree closely).
	if rep.Rhat > 1.1 || rep.Rhat < 0.9 {
		t.Errorf("final R̂ = %v, want within [0.9, 1.1]", rep.Rhat)
	}
	if math.IsNaN(rep.SplitRhat) || rep.SplitVertex < 0 {
		t.Errorf("split diagnostic missing: SplitRhat = %v, SplitVertex = %d", rep.SplitRhat, rep.SplitVertex)
	}
	if rep.Dynamic != "chromatic" || len(rep.Stages) != 1 {
		t.Errorf("Dynamic = %q, %d stages; want one chromatic stage", rep.Dynamic, len(rep.Stages))
	}
	st := rep.Stages[0]
	if len(st.Checks) == 0 || st.Sweeps != rep.Sweeps {
		t.Errorf("stage report incoherent: %+v", st)
	}
	last := st.Checks[len(st.Checks)-1]
	if last.Rhat != rep.Rhat || last.SplitRhat != rep.SplitRhat {
		t.Error("final check and report disagree on R̂")
	}
	if m.Chains() != 8 {
		t.Errorf("returned engine has %d chains, want 8", m.Chains())
	}
	if err := m.Lattice().CheckAssigned(); err != nil {
		t.Errorf("final lattice invalid: %v", err)
	}
	// The chromatic engine counts unconditional updates: rate exactly 1.
	if got := st.Checks[0].Rate; got != 1 {
		t.Errorf("chromatic update rate = %v, want exactly 1", got)
	}
}

// TestDriveBudgetStop: an unreachable target runs the budget out.
func TestDriveBudgetStop(t *testing.T) {
	in := hardcoreInstance(t, 8, 1.0)
	rep, _, err := One(in, "luby", 3, Policy{
		Chains:     4,
		MaxSweeps:  12,
		CheckEvery: 2,
		MinESS:     1e12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Converged || rep.Reason != Budget {
		t.Errorf("Reason = %q, Converged = %v; want budget stop", rep.Reason, rep.Converged)
	}
	if rep.Sweeps != 12 {
		t.Errorf("Sweeps = %d, want the whole budget 12", rep.Sweeps)
	}
}

// TestDriveNoCheckBeforeCadence: a budget shorter than the cadence ends
// with the sentinel diagnostics, not a phantom check.
func TestDriveNoCheckBeforeCadence(t *testing.T) {
	in := hardcoreInstance(t, 6, 1.0)
	rep, _, err := One(in, "chromatic", 1, Policy{MaxSweeps: 3, CheckEvery: 8, Rhat: 1.05})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(rep.Rhat) || rep.WorstVertex != -1 || len(rep.Stages[0].Checks) != 0 {
		t.Errorf("expected no checks: %+v", rep)
	}
	if !math.IsNaN(rep.SplitRhat) || rep.SplitVertex != -1 {
		t.Errorf("expected split sentinels: %+v", rep)
	}
	if rep.Reason != Budget {
		t.Errorf("Reason = %q, want budget", rep.Reason)
	}
}

// TestDriveStageBudgetEscalation: a capped first stage hands its lattice
// to the second, which finishes.
func TestDriveStageBudgetEscalation(t *testing.T) {
	in := hardcoreInstance(t, 8, 1.0)
	rep, _, err := Drive(in, 7, Policy{
		Stages: []Stage{
			{Dynamic: "chromatic", MaxSweeps: 6},
			{Dynamic: "metropolis"},
		},
		Chains:     8,
		MaxSweeps:  512,
		CheckEvery: 2,
		Rhat:       1.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stages) != 2 {
		t.Fatalf("ran %d stages, want 2 (%+v)", len(rep.Stages), rep)
	}
	if rep.Stages[0].Reason != StageBudget || rep.Stages[0].Sweeps != 6 {
		t.Errorf("stage 0 = %+v, want stage-budget exit after 6 sweeps", rep.Stages[0])
	}
	if rep.Dynamic != "metropolis" {
		t.Errorf("finished dynamic = %q, want metropolis", rep.Dynamic)
	}
	if !rep.Converged {
		t.Errorf("escalated run did not converge: %+v", rep)
	}
	if rep.Sweeps != rep.Stages[0].Sweeps+rep.Stages[1].Sweeps {
		t.Errorf("Sweeps = %d, stages sum to %d", rep.Sweeps, rep.Stages[0].Sweeps+rep.Stages[1].Sweeps)
	}
}

// TestDriveRateCollapseEscalation: a Metropolis stage with an acceptance
// floor above its actual rate escalates with RateCollapse.
func TestDriveRateCollapseEscalation(t *testing.T) {
	// High fugacity makes hardcore proposals conflict often: acceptance
	// sits far below the 0.999 floor.
	in := hardcoreInstance(t, 8, 4.0)
	rep, _, err := Drive(in, 11, Policy{
		Stages: []Stage{
			{Dynamic: "metropolis", MinRate: 0.999},
			{Dynamic: "chromatic"},
		},
		Chains:     8,
		MaxSweeps:  512,
		CheckEvery: 2,
		Rhat:       1.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stages[0].Reason != RateCollapse {
		t.Fatalf("stage 0 reason = %q, want rate-collapse (%+v)", rep.Stages[0].Reason, rep.Stages[0])
	}
	ck := rep.Stages[0].Checks[len(rep.Stages[0].Checks)-1]
	if math.IsNaN(ck.Rate) || ck.Rate >= 0.999 {
		t.Errorf("collapse check rate = %v, want < 0.999", ck.Rate)
	}
	if rep.Dynamic != "chromatic" {
		t.Errorf("finished dynamic = %q, want chromatic", rep.Dynamic)
	}
}

// TestDriveDeterministic: (instance, seed, policy) fixes the whole report
// and the final lattice — the contract the corpus property test holds
// across every instance; this is the unit-sized pin.
func TestDriveDeterministic(t *testing.T) {
	in := hardcoreInstance(t, 8, 1.0)
	p := Policy{
		Stages: []Stage{
			{Dynamic: "luby", MaxSweeps: 5},
			{Dynamic: "metropolis"},
		},
		Chains:     6,
		MaxSweeps:  40,
		CheckEvery: 2,
		BurnIn:     2,
		Rhat:       1.05,
		MinESS:     30,
	}
	repA, mA, err := Drive(in, 23, p)
	if err != nil {
		t.Fatal(err)
	}
	repB, mB, err := Drive(in, 23, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(repA, repB) {
		t.Errorf("same (instance, seed, policy), different reports:\n%+v\n%+v", repA, repB)
	}
	for c := 0; c < mA.Chains(); c++ {
		a, b := mA.Chain(c), mB.Chain(c)
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("chain %d differs at vertex %d", c, v)
			}
		}
	}
}
