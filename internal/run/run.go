// Package run is the adaptive run controller: one driver owning the
// advance/observe/decide loop that every consumer of the batched engines
// used to hand-roll (cmd/lsample's private R̂ loop, the experiments' fixed
// sweep budgets). The driver advances any sampler.MultiChain in
// sweep-equivalent chunks, observes the cross-chain diagnostics
// (worst-vertex R̂ in both the whole-chain and split forms, per-vertex
// effective sample size, the engine's acceptance/update rate), and
// decides: stop when the convergence targets
// of the Policy are met, escalate to the next dynamic of an ordered stage
// list when the current one's acceptance rate collapses or its stage
// budget runs out (carrying the chains over via state.Lattice.CopyFrom),
// or give up when the total budget is spent. The outcome is a typed
// Report: rounds used, the per-check diagnostic trajectory, which dynamic
// finished, and why the driver stopped.
//
// Determinism is part of the contract: given (instance, seed, policy) the
// stop decision, the full Report, and the final lattice are
// bit-reproducible. Two things make that true. Per-stage engine seeds are
// derived as dist.StreamSeed(seed, stage), so the escalation path never
// re-uses a stream; and the Policy pins the engines' worker count to a
// fixed default (per-worker RNG streams mean trajectories depend on the
// worker count, and the engines' own default scales with GOMAXPROCS —
// machine-dependent). The corpus property test at the repo root holds the
// driver to this across every instance and every batched dynamic.
package run

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/sampler"
)

// Defaults applied by Policy.withDefaults for fields left zero.
const (
	// DefaultChains is the chain count when Policy.Chains is 0. Sixteen
	// chains give the split diagnostic 2B = 32 sequences and, more to the
	// point, sharpen the between-chain variance estimate of the gating
	// whole-chain R̂ — the statistic's noise shrinks like √(2/(B−1)), and
	// that noise (maximized over vertices) is what decides whether a tight
	// threshold can resolve inside a small sweep budget.
	DefaultChains = 16
	// DefaultMaxSweeps bounds the total run when Policy.MaxSweeps is 0.
	DefaultMaxSweeps = 1024
	// DefaultCheckEvery is the decision cadence in observations (one
	// observation per sweep-equivalent) when Policy.CheckEvery is 0.
	DefaultCheckEvery = 8
	// DefaultWorkers pins the engines' worker count. The engines' own
	// default scales with GOMAXPROCS, and per-worker RNG streams make the
	// trajectory a function of the worker count — a fixed default keeps
	// (instance, seed, policy) → report reproducible across machines.
	DefaultWorkers = 4
)

// PolicyError is the typed validation error of a Policy.
type PolicyError struct {
	Field  string
	Reason string
}

func (e *PolicyError) Error() string {
	return fmt.Sprintf("run: invalid policy: %s: %s", e.Field, e.Reason)
}

// Stage is one entry of a Policy's ordered escalation list.
type Stage struct {
	// Dynamic names a registered batched dynamic (sampler.MultiNames).
	Dynamic string
	// MaxSweeps caps this stage's sweep-equivalents; 0 means no per-stage
	// cap (the stage may use the whole remaining budget). The last stage's
	// cap is also a hard stop — there is nothing to escalate to.
	MaxSweeps int
	// MinRate is the acceptance/update-rate floor (updates per free-vertex
	// cell per sweep-equivalent): when a check observes the stage's rate
	// below it, the driver escalates to the next stage. 0 disables the
	// trigger; it is ignored on the last stage.
	MinRate float64
}

// Policy is the driver's decision rule.
type Policy struct {
	// Stages is the ordered escalation list. Empty is invalid — use One
	// for the common single-dynamic run.
	Stages []Stage
	// Chains is the number of lockstep chains (default DefaultChains,
	// minimum 2 — the diagnostics are cross-chain).
	Chains int
	// BurnIn is the number of sweep-equivalents discarded before
	// observation starts, per stage (the handoff re-burns: the carried
	// lattice is the new dynamic's start, not its stationary sample).
	BurnIn int
	// MaxSweeps is the total sweep-equivalent budget across all stages
	// (default DefaultMaxSweeps).
	MaxSweeps int
	// CheckEvery is the decision cadence in observations (default
	// DefaultCheckEvery): diagnostics are recomputed and the stop/escalate
	// decision retaken every CheckEvery sweep-equivalents.
	CheckEvery int
	// Rhat, when positive, is the convergence threshold on the
	// worst-vertex whole-chain R̂. The gate deliberately uses the classic
	// whole-chain form, not split-R̂: with T observations the split
	// statistic's sampling floor is ≈ √(1+2/(T/2)) per vertex — amplified
	// by the worst-over-vertices max — so tight thresholds like 1.05 are
	// unreachable inside small budgets even on instances that mixed long
	// ago. The split form is still computed at every check
	// (Check.SplitRhat) as the conservative non-stationarity diagnostic.
	Rhat float64
	// MinESS, when positive, is the convergence floor on the
	// smallest per-vertex effective sample size.
	MinESS float64
	// Workers pins the engines' worker count (default DefaultWorkers;
	// negative requests the engines' own machine-dependent default, which
	// forfeits cross-machine reproducibility).
	Workers int
}

// withDefaults returns the policy with zero fields defaulted and validates
// it.
func (p Policy) withDefaults() (Policy, error) {
	if len(p.Stages) == 0 {
		return p, &PolicyError{Field: "Stages", Reason: "need at least one stage"}
	}
	for i, st := range p.Stages {
		if st.Dynamic == "" {
			return p, &PolicyError{Field: fmt.Sprintf("Stages[%d].Dynamic", i), Reason: "empty dynamic name"}
		}
		if st.MaxSweeps < 0 {
			return p, &PolicyError{Field: fmt.Sprintf("Stages[%d].MaxSweeps", i), Reason: "negative stage budget"}
		}
		if st.MinRate < 0 || st.MinRate > 1 {
			return p, &PolicyError{Field: fmt.Sprintf("Stages[%d].MinRate", i), Reason: "rate floor outside [0, 1]"}
		}
	}
	if p.Chains == 0 {
		p.Chains = DefaultChains
	}
	if p.Chains < 2 {
		return p, &PolicyError{Field: "Chains", Reason: "cross-chain diagnostics need ≥ 2 chains"}
	}
	if p.BurnIn < 0 {
		return p, &PolicyError{Field: "BurnIn", Reason: "negative burn-in"}
	}
	if p.MaxSweeps == 0 {
		p.MaxSweeps = DefaultMaxSweeps
	}
	if p.MaxSweeps < 0 {
		return p, &PolicyError{Field: "MaxSweeps", Reason: "negative budget"}
	}
	if p.CheckEvery == 0 {
		p.CheckEvery = DefaultCheckEvery
	}
	if p.CheckEvery < 0 {
		return p, &PolicyError{Field: "CheckEvery", Reason: "negative check cadence"}
	}
	if p.Rhat < 0 {
		return p, &PolicyError{Field: "Rhat", Reason: "negative threshold"}
	}
	if p.Rhat > 0 && p.Rhat < 1 {
		return p, &PolicyError{Field: "Rhat", Reason: "R̂ thresholds below 1 are unreachable"}
	}
	if p.MinESS < 0 {
		return p, &PolicyError{Field: "MinESS", Reason: "negative target"}
	}
	if p.Workers == 0 {
		p.Workers = DefaultWorkers
	}
	return p, nil
}

// StopReason says why the driver stopped or left a stage.
type StopReason string

const (
	// Converged: every active convergence target was met at a check.
	Converged StopReason = "converged"
	// Budget: the total sweep budget ran out before convergence.
	Budget StopReason = "budget"
	// StageBudget: the stage's own cap ran out and the driver escalated.
	StageBudget StopReason = "stage-budget"
	// RateCollapse: the stage's acceptance/update rate fell below its
	// floor and the driver escalated.
	RateCollapse StopReason = "rate-collapse"
)

// Check is one decision point's diagnostics.
type Check struct {
	// Sweep is the cumulative sweep-equivalent count across all stages at
	// this check.
	Sweep int
	// Rounds is the current stage's native round count at this check.
	Rounds int
	// Rhat is the worst-vertex whole-chain R̂ (the gating statistic) and
	// WorstVertex the vertex attaining it.
	Rhat        float64
	WorstVertex int
	// SplitRhat is the worst-vertex split-R̂ diagnostic and SplitVertex
	// the vertex attaining it. It is recorded, not gated on: see
	// Policy.Rhat for why.
	SplitRhat   float64
	SplitVertex int
	// ESS is the smallest per-vertex effective sample size and ESSVertex
	// the vertex attaining it.
	ESS       float64
	ESSVertex int
	// Rate is the stage's acceptance/update rate since the previous check:
	// counter delta per free-vertex cell per sweep-equivalent (NaN when
	// the engine exposes no counter).
	Rate float64
}

// StageReport is one stage's slice of the run.
type StageReport struct {
	// Dynamic is the stage's registry name, SweepRounds its native rounds
	// per sweep-equivalent on this instance.
	Dynamic     string
	SweepRounds int
	// Sweeps and Rounds are the stage's consumption (sweep-equivalents
	// including burn-in, and native rounds).
	Sweeps int
	Rounds int
	// Checks is the stage's decision-point trajectory.
	Checks []Check
	// Reason says how the stage ended: Converged, Budget, or the
	// escalation triggers StageBudget / RateCollapse.
	Reason StopReason
}

// Report is the driver's typed outcome.
type Report struct {
	// Stages is the per-stage trajectory, in execution order.
	Stages []StageReport
	// Dynamic is the dynamic that finished (the last stage run), Sweeps
	// the cumulative sweep-equivalents across stages.
	Dynamic string
	Sweeps  int
	// Reason is the final stage's stop reason; Converged is its
	// convenience form.
	Reason    StopReason
	Converged bool
	// Rhat/WorstVertex (whole-chain, gating), SplitRhat/SplitVertex
	// (split diagnostic), and ESS/ESSVertex are the final check's
	// diagnostics (NaN/-1 when the run ended before any check — budget 0
	// or a cadence longer than the budget).
	Rhat        float64
	WorstVertex int
	SplitRhat   float64
	SplitVertex int
	ESS         float64
	ESSVertex   int
}

// counters is the optional observation surface of the batched engines:
// LocalMetropolis exposes accepted proposals, the Glauber-family engines
// unconditional heat-bath updates.
type accepter interface{ Accepts() int64 }
type updater interface{ Updates() int64 }

// workered is the optional worker-pinning surface of the batched engines.
type workered interface{ SetWorkers(int) }

// counterOf reads the engine's progress counter, preferring acceptance
// (the rate that actually collapses) over unconditional updates.
func counterOf(m sampler.MultiChain) (int64, bool) {
	if a, ok := m.(accepter); ok {
		return a.Accepts(), true
	}
	if u, ok := m.(updater); ok {
		return u.Updates(), true
	}
	return 0, false
}

// One runs a single dynamic under the policy: p.Stages is replaced by the
// one-entry list. It is the common case for cmd/lsample and the
// experiments.
func One(in *gibbs.Instance, dynamic string, seed int64, p Policy) (*Report, sampler.MultiChain, error) {
	p.Stages = []Stage{{Dynamic: dynamic}}
	return Drive(in, seed, p)
}

// Drive runs the policy's escalation list over the instance and returns
// the report together with the engine that finished (its lattice is the
// final state; callers draw samples from its chains). The error path
// covers construction and engine failures; a run that merely fails to
// converge is not an error — it is a Report with Reason Budget.
func Drive(in *gibbs.Instance, seed int64, p Policy) (*Report, sampler.MultiChain, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	nfree := freeCount(in)
	rep := &Report{
		Rhat:        math.NaN(),
		WorstVertex: -1,
		SplitRhat:   math.NaN(),
		SplitVertex: -1,
		ESS:         math.NaN(),
		ESSVertex:   -1,
	}
	var prev sampler.MultiChain
	remaining := p.MaxSweeps
	for si, st := range p.Stages {
		last := si == len(p.Stages)-1
		s, err := sampler.Create(st.Dynamic, in, sampler.Options{
			Chains: p.Chains,
			Seed:   dist.StreamSeed(seed, int64(si)),
		})
		if err != nil {
			return nil, nil, fmt.Errorf("run: stage %d: %w", si, err)
		}
		m, ok := s.(sampler.MultiChain)
		if !ok {
			return nil, nil, fmt.Errorf("run: stage %d: dynamic %q is not a multi-chain engine", si, st.Dynamic)
		}
		if p.Workers > 0 {
			if w, ok := m.(workered); ok {
				w.SetWorkers(p.Workers)
			}
		}
		if prev != nil {
			// Lattice handoff: the previous stage's chains are the new
			// stage's start — the escalation continues the walk, it does
			// not restart it.
			if err := m.Lattice().CopyFrom(prev.Lattice()); err != nil {
				return nil, nil, fmt.Errorf("run: stage %d handoff: %w", si, err)
			}
		}
		sweepRounds, err := sampler.SweepRounds(st.Dynamic, in)
		if err != nil {
			return nil, nil, fmt.Errorf("run: stage %d: %w", si, err)
		}
		budget := remaining
		if st.MaxSweeps > 0 && st.MaxSweeps < budget {
			budget = st.MaxSweeps
		}
		sr := StageReport{Dynamic: st.Dynamic, SweepRounds: sweepRounds, Reason: Budget}
		stageSweeps := 0
		burn := min(p.BurnIn, budget)
		if burn > 0 {
			if err := m.Run(burn * sweepRounds); err != nil {
				return nil, nil, fmt.Errorf("run: stage %d burn-in: %w", si, err)
			}
			stageSweeps += burn
		}
		acc, err := sampler.NewRhat(m)
		if err != nil {
			return nil, nil, fmt.Errorf("run: stage %d: %w", si, err)
		}
		lastCounter, _ := counterOf(m)
		lastCounterSweep := stageSweeps
		sinceCheck := 0
		hasTarget := p.Rhat > 0 || p.MinESS > 0
		for stageSweeps < budget {
			if err := m.Run(sweepRounds); err != nil {
				return nil, nil, fmt.Errorf("run: stage %d: %w", si, err)
			}
			stageSweeps++
			acc.Observe()
			sinceCheck++
			if sinceCheck < p.CheckEvery || !acc.SplitReady() {
				continue
			}
			sinceCheck = 0
			wv, rh, err := acc.Worst()
			if err != nil {
				return nil, nil, fmt.Errorf("run: stage %d: %w", si, err)
			}
			sv, srh, err := acc.WorstSplit()
			if err != nil {
				return nil, nil, fmt.Errorf("run: stage %d: %w", si, err)
			}
			ev, ess, err := acc.MinESS()
			if err != nil {
				return nil, nil, fmt.Errorf("run: stage %d: %w", si, err)
			}
			rate := math.NaN()
			if c, ok := counterOf(m); ok && nfree > 0 && stageSweeps > lastCounterSweep {
				cells := int64(nfree) * int64(p.Chains) * int64(stageSweeps-lastCounterSweep)
				rate = float64(c-lastCounter) / float64(cells)
				lastCounter, lastCounterSweep = c, stageSweeps
			}
			ck := Check{
				Sweep:       rep.Sweeps + stageSweeps,
				Rounds:      m.Rounds(),
				Rhat:        rh,
				WorstVertex: wv,
				SplitRhat:   srh,
				SplitVertex: sv,
				ESS:         ess,
				ESSVertex:   ev,
				Rate:        rate,
			}
			sr.Checks = append(sr.Checks, ck)
			rep.Rhat, rep.WorstVertex = rh, wv
			rep.SplitRhat, rep.SplitVertex = srh, sv
			rep.ESS, rep.ESSVertex = ess, ev
			if hasTarget &&
				(p.Rhat <= 0 || rh <= p.Rhat) &&
				(p.MinESS <= 0 || ess >= p.MinESS) {
				sr.Reason = Converged
				break
			}
			if !last && st.MinRate > 0 && !math.IsNaN(rate) && rate < st.MinRate {
				sr.Reason = RateCollapse
				break
			}
		}
		if sr.Reason == Budget && !last && stageSweeps >= budget && remaining > budget {
			// The stage cap (not the total budget) ran out: escalate.
			sr.Reason = StageBudget
		}
		sr.Sweeps = stageSweeps
		sr.Rounds = m.Rounds()
		rep.Sweeps += stageSweeps
		remaining -= stageSweeps
		rep.Stages = append(rep.Stages, sr)
		rep.Dynamic = st.Dynamic
		rep.Reason = sr.Reason
		if sr.Reason == Converged || remaining <= 0 {
			rep.Converged = sr.Reason == Converged
			return rep, m, nil
		}
		if last {
			return rep, m, nil
		}
		prev = m
	}
	// Unreachable: the last stage always returns above.
	return rep, prev, nil
}

// freeCount returns the number of unpinned vertices of the instance — the
// cell denominator of the rate signal.
func freeCount(in *gibbs.Instance) int {
	return len(in.FreeVertices())
}
