// Package lowerbound implements the lower-bound side of the paper's phase
// transition: the Ω(diam) impossibility for sampling in the non-uniqueness
// regime (quoted in Section 5 from Feng–Sun–Yin, PODC 2017).
//
// The argument has two ingredients, both implemented here:
//
//  1. Independence: the outputs of any t-round LOCAL algorithm at two
//     vertices whose radius-t balls are disjoint are statistically
//     independent, because they are functions of disjoint sets of random
//     bits and inputs. OutputIndependenceGap measures the violation of
//     this product structure for a candidate sampler, which must vanish
//     for genuinely local samplers.
//
//  2. Long-range correlation: in the non-uniqueness regime the target
//     distribution itself correlates far-apart vertices (boundary parity
//     order on the tree). TargetCorrelation computes this exactly.
//
// Combining the two, TVLowerBound gives a floor on the total variation
// distance between the output of ANY t-round LOCAL algorithm and the
// target: if far-apart correlations of strength c survive in µ but cannot
// exist in a t-local output, then d_TV ≥ c/2 until t reaches the scale of
// the distance — on bounded-diameter instances, Ω(diam) rounds.
package lowerbound

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
)

// PairStats accumulates the joint empirical distribution of a pair of
// binary outputs.
type PairStats struct {
	counts [2][2]int
	total  int
}

// Observe records one joint output (x at u, y at v).
func (p *PairStats) Observe(x, y int) error {
	if x < 0 || x > 1 || y < 0 || y > 1 {
		return fmt.Errorf("lowerbound: non-binary output (%d, %d)", x, y)
	}
	p.counts[x][y]++
	p.total++
	return nil
}

// Total returns the number of observations.
func (p *PairStats) Total() int { return p.total }

// Correlation returns the empirical covariance Cov(X, Y) of the two binary
// outputs.
func (p *PairStats) Correlation() (float64, error) {
	if p.total == 0 {
		return 0, errors.New("lowerbound: no observations")
	}
	n := float64(p.total)
	p11 := float64(p.counts[1][1]) / n
	px := float64(p.counts[1][0]+p.counts[1][1]) / n
	py := float64(p.counts[0][1]+p.counts[1][1]) / n
	return p11 - px*py, nil
}

// IndependenceGap returns the TV distance between the empirical joint and
// the product of its marginals — zero (up to sampling noise) for any
// t-round LOCAL algorithm evaluated at vertices with disjoint t-balls.
func (p *PairStats) IndependenceGap() (float64, error) {
	if p.total == 0 {
		return 0, errors.New("lowerbound: no observations")
	}
	n := float64(p.total)
	px := float64(p.counts[1][0]+p.counts[1][1]) / n
	py := float64(p.counts[0][1]+p.counts[1][1]) / n
	gap := 0.0
	for x := 0; x <= 1; x++ {
		for y := 0; y <= 1; y++ {
			joint := float64(p.counts[x][y]) / n
			mx, my := px, py
			if x == 0 {
				mx = 1 - px
			}
			if y == 0 {
				my = 1 - py
			}
			gap += math.Abs(joint - mx*my)
		}
	}
	return gap / 2, nil
}

// TargetCorrelation computes |Cov(Y_u, Y_v)| for the exact distribution of
// the instance — the long-range correlation the distribution retains
// regardless of distance in the non-uniqueness regime.
func TargetCorrelation(in *gibbs.Instance, u, v int) (float64, error) {
	if in.Q() != 2 {
		return 0, fmt.Errorf("lowerbound: binary models only, got q=%d", in.Q())
	}
	j, err := exact.JointDistribution(in)
	if err != nil {
		return 0, err
	}
	var p11, pu, pv float64
	for _, cfg := range j.Support() {
		p := j.Prob(cfg)
		if cfg[u] == 1 {
			pu += p
		}
		if cfg[v] == 1 {
			pv += p
		}
		if cfg[u] == 1 && cfg[v] == 1 {
			p11 += p
		}
	}
	return math.Abs(p11 - pu*pv), nil
}

// TVLowerBound converts a surviving target correlation c between vertices
// whose t-balls are disjoint into a floor on the total variation distance
// of any t-round LOCAL sampler's output ν from the target µ:
//
//	|Cov_µ(Y_u, Y_v)| ≤ |Cov_ν(Y_u, Y_v)| + 4·d_TV(µ, ν) = 0 + 4·d_TV(µ, ν)
//
// (covariance of {0,1} variables changes by at most 4 per unit of TV, and
// t-local outputs at independent views have zero covariance). Hence
// d_TV(µ, ν) ≥ c/4.
func TVLowerBound(targetCorrelation float64) float64 {
	b := targetCorrelation / 4
	if b < 0 {
		return 0
	}
	if b > 1 {
		return 1
	}
	return b
}

// SamplerPair runs a (claimed) sampler repeatedly and accumulates the
// joint statistics of its outputs at u and v. The sampler receives the
// trial index and must return a total binary configuration.
func SamplerPair(u, v, trials int, sample func(trial int) (dist.Config, error)) (*PairStats, error) {
	stats := &PairStats{}
	for i := 0; i < trials; i++ {
		cfg, err := sample(i)
		if err != nil {
			return nil, err
		}
		if u >= len(cfg) || v >= len(cfg) {
			return nil, fmt.Errorf("lowerbound: output too short for vertices %d, %d", u, v)
		}
		if err := stats.Observe(cfg[u], cfg[v]); err != nil {
			return nil, err
		}
	}
	return stats, nil
}
