package lowerbound

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
)

func hardcoreInstance(t *testing.T, g *graph.Graph, lambda float64) *gibbs.Instance {
	t.Helper()
	s, err := model.Hardcore(g, lambda)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestPairStatsBasics(t *testing.T) {
	p := &PairStats{}
	if _, err := p.Correlation(); err == nil {
		t.Error("empty stats correlated")
	}
	if err := p.Observe(2, 0); err == nil {
		t.Error("non-binary accepted")
	}
	// Perfectly correlated stream.
	for i := 0; i < 100; i++ {
		x := i % 2
		if err := p.Observe(x, x); err != nil {
			t.Fatal(err)
		}
	}
	c, err := p.Correlation()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-0.25) > 1e-9 {
		t.Errorf("correlation = %v, want 0.25", c)
	}
	gap, err := p.IndependenceGap()
	if err != nil {
		t.Fatal(err)
	}
	if gap < 0.2 {
		t.Errorf("independence gap %v too small for a perfectly correlated pair", gap)
	}
}

func TestIndependentStreamHasNoGap(t *testing.T) {
	p := &PairStats{}
	rng := rand.New(rand.NewSource(301))
	for i := 0; i < 50000; i++ {
		if err := p.Observe(rng.Intn(2), rng.Intn(2)); err != nil {
			t.Fatal(err)
		}
	}
	gap, err := p.IndependenceGap()
	if err != nil {
		t.Fatal(err)
	}
	if gap > 0.02 {
		t.Errorf("independent stream gap = %v", gap)
	}
}

func TestTargetCorrelationAntipodal(t *testing.T) {
	// Hardcore on an even cycle at large λ: antipodal vertices correlate
	// through the parity classes.
	g := graph.Cycle(8)
	strong := hardcoreInstance(t, g, 8)
	weak := hardcoreInstance(t, g, 0.2)
	cs, err := TargetCorrelation(strong, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := TargetCorrelation(weak, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cs <= cw {
		t.Errorf("correlation should grow with λ: %v vs %v", cs, cw)
	}
	if cs < 0.05 {
		t.Errorf("large-λ antipodal correlation %v unexpectedly small", cs)
	}
}

func TestTargetCorrelationBinaryOnly(t *testing.T) {
	s, err := model.Coloring(graph.Path(3), 3)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TargetCorrelation(in, 0, 2); err == nil {
		t.Error("q=3 accepted")
	}
}

func TestTVLowerBoundClamps(t *testing.T) {
	if TVLowerBound(-1) != 0 {
		t.Error("negative not clamped")
	}
	if TVLowerBound(8) != 1 {
		t.Error("huge not clamped")
	}
	if got := TVLowerBound(0.4); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("bound = %v, want 0.1", got)
	}
}

// TestLocalSamplerObeysIndependence builds an explicitly t-local sampler
// (each vertex decides from its own ball only) and verifies its outputs at
// far-apart vertices show no independence gap, while the true non-unique
// distribution retains correlation — the two halves of the Ω(diam)
// argument.
func TestLocalSamplerObeysIndependence(t *testing.T) {
	// Star of two long paths ("dumbbell" distance): vertices 0 and 11 on
	// a path of length 11 are at distance 11 > 2t for t = 2.
	g := graph.Path(12)
	in := hardcoreInstance(t, g, 6) // large λ: strong correlations in µ
	const tRadius = 2
	rng := rand.New(rand.NewSource(302))
	// A deliberately local (and deliberately wrong) sampler: each vertex
	// flips an independent coin biased by its degree only.
	localSampler := func(int) (dist.Config, error) {
		cfg := make(dist.Config, g.N())
		for v := range cfg {
			if rng.Float64() < 0.3 {
				cfg[v] = 1
			}
		}
		return cfg, nil
	}
	stats, err := SamplerPair(0, 11, 40000, localSampler)
	if err != nil {
		t.Fatal(err)
	}
	gap, err := stats.IndependenceGap()
	if err != nil {
		t.Fatal(err)
	}
	if gap > 0.02 {
		t.Errorf("local sampler shows dependence: %v", gap)
	}
	// The target retains correlation between 0 and 11 (through the
	// even/odd alternation at high fugacity)...
	corr, err := TargetCorrelation(in, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	if corr < 0.01 {
		t.Skipf("target correlation %v too small on this instance", corr)
	}
	// ...so ANY sampler with zero long-range covariance is at least
	// TVLowerBound(corr) away from µ in total variation.
	if TVLowerBound(corr) <= 0 {
		t.Error("no TV floor derived")
	}
	_ = tRadius
}
