// Package local simulates the LOCAL model of distributed computing
// [Linial; Peleg 2000] as used in Section 2 of Feng & Yin, PODC 2018: a
// synchronous message-passing network on a simple undirected graph, where in
// each round every node exchanges (unbounded) messages with its neighbors
// and performs unbounded local computation. Only the number of rounds is
// charged.
//
// The simulator executes each lock-step round on a bounded worker pool
// (one worker per available CPU rather than one goroutine per node), with
// per-worker outboxes merged at the round barrier. Because a
// t-round LOCAL algorithm is information-theoretically equivalent to "each
// node gathers everything within radius t, then computes" (Section 2 of the
// paper), the package also provides Gather, which floods local views for t
// rounds and hands each node its radius-t ball view.
package local

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Message is a point-to-point message delivered at the end of a round.
type Message struct {
	From, To int
	Payload  any
}

// StepFunc is executed by every node each round. It receives the round
// number (starting at 0), the node's current private state, and the inbox of
// messages delivered this round, and returns the new state, the outbox of
// messages to deliver next round, and whether the node halts. Messages may
// only be addressed to graph neighbors.
type StepFunc func(node, round int, state any, inbox []Message) (newState any, outbox []Message, halt bool)

// Network is a LOCAL-model network over a graph with per-node unique IDs.
type Network struct {
	G *graph.Graph
	// IDs assigns each node a unique identifier; defaults to the node index.
	IDs []int
}

// NewNetwork returns a network on g with IDs equal to node indices.
func NewNetwork(g *graph.Graph) *Network {
	ids := make([]int, g.N())
	for i := range ids {
		ids[i] = i
	}
	return &Network{G: g, IDs: ids}
}

var (
	// ErrNotNeighbor indicates a message addressed to a non-neighbor.
	ErrNotNeighbor = errors.New("local: message addressed to non-neighbor")
	// ErrMaxRounds indicates the round budget was exhausted before all
	// nodes halted.
	ErrMaxRounds = errors.New("local: max rounds exceeded")
)

// Result is the outcome of a run.
type Result struct {
	// States holds each node's final state.
	States []any
	// Rounds is the number of synchronous rounds executed.
	Rounds int
}

// Run executes the network in synchronous rounds until every node has
// halted or maxRounds is reached. init provides each node's initial state.
//
// Each round is executed by a bounded worker pool (GOMAXPROCS workers, not
// one goroutine per node): workers pull active nodes off a shared cursor,
// write each node's state and halt flag in place (no two workers ever touch
// the same node), validate and buffer outgoing messages in a per-worker
// outbox, and the outboxes are merged into the next round's inboxes only
// after the round barrier — so message routing never serializes on a
// shared lock.
func (net *Network) Run(maxRounds int, init func(node int) any, step StepFunc) (*Result, error) {
	n := net.G.N()
	states := make([]any, n)
	for v := 0; v < n; v++ {
		states[v] = init(v)
	}
	halted := make([]bool, n)
	inboxes := make([][]Message, n)
	active := make([]int, 0, n)
	for round := 0; round < maxRounds; round++ {
		active = active[:0]
		for v := 0; v < n; v++ {
			if !halted[v] {
				active = append(active, v)
			}
		}
		if len(active) == 0 {
			return &Result{States: states, Rounds: round}, nil
		}
		workers := min(runtime.GOMAXPROCS(0), len(active))
		outboxes := make([][]Message, workers)
		errs := make([]error, workers)
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var buf []Message
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(active) {
						break
					}
					v := active[i]
					st, out, halt := step(v, round, states[v], inboxes[v])
					states[v] = st
					halted[v] = halt
					for _, msg := range out {
						if msg.From != v || !net.G.HasEdge(v, msg.To) {
							if errs[w] == nil {
								errs[w] = fmt.Errorf("%w: %d -> %d", ErrNotNeighbor, v, msg.To)
							}
							continue
						}
						buf = append(buf, msg)
					}
				}
				outboxes[w] = buf
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		next := make([][]Message, n)
		for _, buf := range outboxes {
			for _, msg := range buf {
				next[msg.To] = append(next[msg.To], msg)
			}
		}
		inboxes = next
	}
	for v := 0; v < n; v++ {
		if !halted[v] {
			return &Result{States: states, Rounds: maxRounds}, ErrMaxRounds
		}
	}
	return &Result{States: states, Rounds: maxRounds}, nil
}

// BallView is the information a node has gathered after t rounds: the
// induced topology, inputs, IDs and random seeds of every node within
// distance t.
type BallView struct {
	// Center is the node that gathered the view.
	Center int
	// Radius is the gathering radius t.
	Radius int
	// Nodes lists the vertices in B_t(center), sorted.
	Nodes []int
	// Dist maps each vertex in the ball to its distance from the center.
	Dist map[int]int
	// Inputs maps each vertex in the ball to its local input.
	Inputs map[int]any
	// IDs maps each vertex in the ball to its unique ID.
	IDs map[int]int
	// Edges lists the edges of the induced subgraph on the ball.
	Edges []graph.Edge
}

// nodeInfo is the unit of flooding: one node's local input, ID, and
// incident edges.
type nodeInfo struct {
	node  int
	id    int
	input any
	adj   []int
}

type gatherState struct {
	known map[int]nodeInfo
}

// Gather runs the canonical t-round flooding algorithm: every node
// broadcasts everything it knows each round; after t rounds node v knows
// exactly the radius-t ball around it. It returns one BallView per node and
// consumes exactly t rounds.
func (net *Network) Gather(t int, inputs []any) ([]*BallView, int, error) {
	n := net.G.N()
	if t < 0 {
		return nil, 0, errors.New("local: negative radius")
	}
	init := func(v int) any {
		st := &gatherState{known: map[int]nodeInfo{}}
		var in any
		if inputs != nil {
			in = inputs[v]
		}
		st.known[v] = nodeInfo{node: v, id: net.IDs[v], input: in, adj: net.G.NeighborsCopy(v)}
		return st
	}
	step := func(v, round int, state any, inbox []Message) (any, []Message, bool) {
		st, ok := state.(*gatherState)
		if !ok {
			return state, nil, true
		}
		for _, m := range inbox {
			infos, ok := m.Payload.([]nodeInfo)
			if !ok {
				continue
			}
			for _, info := range infos {
				if _, seen := st.known[info.node]; !seen {
					st.known[info.node] = info
				}
			}
		}
		if round >= t {
			return st, nil, true
		}
		// Broadcast current knowledge to all neighbors.
		payload := make([]nodeInfo, 0, len(st.known))
		for _, info := range st.known {
			payload = append(payload, info)
		}
		out := make([]Message, 0, net.G.Degree(v))
		for _, u := range net.G.Neighbors(v) {
			out = append(out, Message{From: v, To: u, Payload: payload})
		}
		return st, out, false
	}
	res, err := net.Run(t+1, init, step)
	if err != nil {
		return nil, 0, err
	}
	views := make([]*BallView, n)
	for v := 0; v < n; v++ {
		st, ok := res.States[v].(*gatherState)
		if !ok {
			return nil, 0, fmt.Errorf("local: bad gather state at node %d", v)
		}
		views[v] = buildView(net, v, t, st)
	}
	return views, t, nil
}

func buildView(net *Network, v, t int, st *gatherState) *BallView {
	bv := &BallView{
		Center: v,
		Radius: t,
		Dist:   make(map[int]int),
		Inputs: make(map[int]any),
		IDs:    make(map[int]int),
	}
	// Distances are recomputed inside the known subgraph; flooding for t
	// rounds guarantees the known set contains exactly B_t(v) (plus possibly
	// adjacency pointers to outside vertices, which are ignored).
	adj := make(map[int][]int, len(st.known))
	for u, info := range st.known {
		adj[u] = info.adj
	}
	bv.Dist[v] = 0
	queue := []int{v}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if bv.Dist[u] == t {
			continue
		}
		for _, w := range adj[u] {
			if _, known := adj[w]; !known {
				continue
			}
			if _, seen := bv.Dist[w]; !seen {
				bv.Dist[w] = bv.Dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	for u := range bv.Dist {
		info := st.known[u]
		bv.Nodes = append(bv.Nodes, u)
		bv.Inputs[u] = info.input
		bv.IDs[u] = info.id
	}
	sort.Ints(bv.Nodes)
	seen := make(map[graph.Edge]bool)
	for u := range bv.Dist {
		for _, w := range st.known[u].adj {
			if _, ok := bv.Dist[w]; !ok {
				continue
			}
			e := graph.Edge{U: min(u, w), V: max(u, w)}
			if !seen[e] {
				seen[e] = true
				bv.Edges = append(bv.Edges, e)
			}
		}
	}
	sort.Slice(bv.Edges, func(i, j int) bool {
		if bv.Edges[i].U != bv.Edges[j].U {
			return bv.Edges[i].U < bv.Edges[j].U
		}
		return bv.Edges[i].V < bv.Edges[j].V
	})
	return bv
}
