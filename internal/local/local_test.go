package local

import (
	"errors"
	"slices"
	"testing"

	"repro/internal/graph"
)

func TestRunHaltsImmediately(t *testing.T) {
	net := NewNetwork(graph.Path(3))
	res, err := net.Run(10,
		func(v int) any { return v },
		func(v, round int, state any, inbox []Message) (any, []Message, bool) {
			return state, nil, true
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", res.Rounds)
	}
	for v, s := range res.States {
		if s != v {
			t.Errorf("state %d = %v", v, s)
		}
	}
}

func TestRunMessagePassing(t *testing.T) {
	// Broadcast a token from node 0 along a path; node i should receive it
	// at round i.
	n := 5
	net := NewNetwork(graph.Path(n))
	type st struct{ got int }
	res, err := net.Run(n+1,
		func(v int) any {
			if v == 0 {
				return &st{got: 0}
			}
			return &st{got: -1}
		},
		func(v, round int, state any, inbox []Message) (any, []Message, bool) {
			s := state.(*st)
			for _, m := range inbox {
				if s.got == -1 {
					s.got = round
				}
				_ = m
			}
			var out []Message
			if s.got >= 0 {
				for _, u := range net.G.Neighbors(v) {
					out = append(out, Message{From: v, To: u, Payload: "token"})
				}
			}
			halt := s.got >= 0 && round >= n-1
			return s, out, halt
		})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < n; v++ {
		s := res.States[v].(*st)
		if s.got != v {
			t.Errorf("node %d received token at round %d, want %d", v, s.got, v)
		}
	}
}

func TestRunRejectsNonNeighborMessages(t *testing.T) {
	net := NewNetwork(graph.Path(3))
	_, err := net.Run(3,
		func(v int) any { return nil },
		func(v, round int, state any, inbox []Message) (any, []Message, bool) {
			if v == 0 {
				return state, []Message{{From: 0, To: 2, Payload: "cheat"}}, true
			}
			return state, nil, true
		})
	if !errors.Is(err, ErrNotNeighbor) {
		t.Errorf("err = %v, want ErrNotNeighbor", err)
	}
}

func TestRunMaxRounds(t *testing.T) {
	net := NewNetwork(graph.Path(2))
	_, err := net.Run(3,
		func(v int) any { return nil },
		func(v, round int, state any, inbox []Message) (any, []Message, bool) {
			return state, nil, false // never halt
		})
	if !errors.Is(err, ErrMaxRounds) {
		t.Errorf("err = %v, want ErrMaxRounds", err)
	}
}

func TestGatherRadius(t *testing.T) {
	g := graph.Cycle(8)
	net := NewNetwork(g)
	inputs := make([]any, 8)
	for i := range inputs {
		inputs[i] = i * 10
	}
	for _, r := range []int{0, 1, 2, 3} {
		views, rounds, err := net.Gather(r, inputs)
		if err != nil {
			t.Fatal(err)
		}
		if rounds != r {
			t.Errorf("rounds = %d, want %d", rounds, r)
		}
		for v := 0; v < 8; v++ {
			bv := views[v]
			want := g.Ball(v, r)
			if len(bv.Nodes) != len(want) {
				t.Fatalf("radius %d node %d: ball %v, want %v", r, v, bv.Nodes, want)
			}
			for i := range want {
				if bv.Nodes[i] != want[i] {
					t.Fatalf("radius %d node %d: ball %v, want %v", r, v, bv.Nodes, want)
				}
			}
			// Distances and inputs faithful.
			for u, d := range bv.Dist {
				if g.Dist(v, u) != d {
					t.Errorf("view dist(%d,%d) = %d, want %d", v, u, d, g.Dist(v, u))
				}
				if bv.Inputs[u] != u*10 {
					t.Errorf("input of %d = %v", u, bv.Inputs[u])
				}
				if bv.IDs[u] != u {
					t.Errorf("ID of %d = %v", u, bv.IDs[u])
				}
			}
		}
	}
}

func TestGatherInducedEdges(t *testing.T) {
	g := graph.Grid(3, 3)
	net := NewNetwork(g)
	views, _, err := net.Gather(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The center of the grid (vertex 4) sees its 4 incident edges at
	// radius 1 (no edges among its neighbors in a grid).
	bv := views[4]
	if len(bv.Edges) != 4 {
		t.Errorf("center ball edges = %v", bv.Edges)
	}
	for _, e := range bv.Edges {
		if e.U != 4 && e.V != 4 {
			t.Errorf("non-incident edge %v in radius-1 view", e)
		}
	}
}

func TestGatherNegativeRadius(t *testing.T) {
	net := NewNetwork(graph.Path(2))
	if _, _, err := net.Gather(-1, nil); err == nil {
		t.Error("negative radius accepted")
	}
}

func TestGatherCustomIDs(t *testing.T) {
	g := graph.Path(3)
	net := &Network{G: g, IDs: []int{100, 200, 300}}
	views, _, err := net.Gather(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if views[1].IDs[0] != 100 || views[1].IDs[2] != 300 {
		t.Errorf("IDs = %v", views[1].IDs)
	}
}

// TestGatherDisconnected checks that flooding never crosses component
// boundaries: a radius-t ball view must contain exactly the vertices
// reachable within distance t, so vertices in other components — even at
// "distance" 1 in index space — never appear, no matter how large t is.
func TestGatherDisconnected(t *testing.T) {
	// Components: triangle {0,1,2}, edge {3,4}, isolated {5}.
	g := graph.New(6)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(3, 4)
	net := NewNetwork(g)
	views, rounds, err := net.Gather(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 4 {
		t.Errorf("rounds = %d, want 4", rounds)
	}
	want := [][]int{{0, 1, 2}, {0, 1, 2}, {0, 1, 2}, {3, 4}, {3, 4}, {5}}
	for v, bv := range views {
		if !slices.Equal(bv.Nodes, want[v]) {
			t.Errorf("ball of %d = %v, want %v (unreachable nodes must not leak in)", v, bv.Nodes, want[v])
		}
		for u := range bv.Dist {
			if d := g.Dist(v, u); d != bv.Dist[u] {
				t.Errorf("view of %d: Dist[%d] = %d, want %d", v, u, bv.Dist[u], d)
			}
		}
	}
}

// TestGatherIsolatedVertex checks the degenerate ball: an isolated vertex
// sees only itself at every radius, with its own input and ID intact.
func TestGatherIsolatedVertex(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1) // vertex 2 is isolated
	net := NewNetwork(g)
	inputs := []any{"a", "b", "c"}
	for _, radius := range []int{0, 1, 5} {
		views, _, err := net.Gather(radius, inputs)
		if err != nil {
			t.Fatalf("radius %d: %v", radius, err)
		}
		bv := views[2]
		if !slices.Equal(bv.Nodes, []int{2}) {
			t.Errorf("radius %d: isolated ball = %v, want [2]", radius, bv.Nodes)
		}
		if len(bv.Edges) != 0 {
			t.Errorf("radius %d: isolated ball has edges %v", radius, bv.Edges)
		}
		if bv.Inputs[2] != "c" || bv.IDs[2] != 2 || bv.Dist[2] != 0 {
			t.Errorf("radius %d: isolated view corrupted: %+v", radius, bv)
		}
	}
}
