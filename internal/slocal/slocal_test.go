package slocal

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// greedyColoring is a classic SLOCAL(1) algorithm: each node picks the
// smallest color unused by its already-processed neighbors.
type greedyColoring struct {
	g *graph.Graph
}

func (a *greedyColoring) Passes() int           { return 1 }
func (a *greedyColoring) Locality(_, _ int) int { return 1 }
func (a *greedyColoring) Init(_ int) any        { return -1 }
func (a *greedyColoring) Process(_ int, c *Ctx) error {
	v := c.Node()
	used := map[int]bool{}
	for _, u := range a.g.Neighbors(v) {
		if col, ok := c.Read(u).(int); ok && col >= 0 {
			used[col] = true
		}
	}
	col := 0
	for used[col] {
		col++
	}
	c.Write(v, col)
	return nil
}

func TestGreedyColoringAllOrders(t *testing.T) {
	g := graph.Cycle(7)
	rng := rand.New(rand.NewSource(41))
	orders := [][]int{
		IdentityOrder(7),
		ReverseOrder(7),
		RandomOrder(7, rng),
		BoundaryFirstOrder(g),
	}
	for oi, order := range orders {
		res, err := Run(g, &greedyColoring{g: g}, order, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Proper coloring with at most Δ+1 = 3 colors.
		for _, e := range g.Edges() {
			cu := res.States[e.U].(int)
			cv := res.States[e.V].(int)
			if cu == cv {
				t.Errorf("order %d: edge %v monochromatic", oi, e)
			}
			if cu > 2 || cv > 2 {
				t.Errorf("order %d: color exceeds Δ", oi)
			}
		}
		if res.Locality != 1 {
			t.Errorf("locality = %d", res.Locality)
		}
		if res.MaxUsed > 1 {
			t.Errorf("max used radius = %d", res.MaxUsed)
		}
	}
}

// localityViolator tries to read beyond its declared locality.
type localityViolator struct{}

func (a *localityViolator) Passes() int           { return 1 }
func (a *localityViolator) Locality(_, _ int) int { return 1 }
func (a *localityViolator) Init(_ int) any        { return nil }
func (a *localityViolator) Process(_ int, c *Ctx) error {
	if c.Node() == 0 {
		c.Read(3) // distance 3 on a path
	}
	return nil
}

func TestLocalityEnforced(t *testing.T) {
	g := graph.Path(5)
	_, err := Run(g, &localityViolator{}, IdentityOrder(5), rand.New(rand.NewSource(1)))
	if err == nil {
		t.Fatal("locality violation not detected")
	}
}

// multiPass checks pass composition: pass 1 writes values, pass 2 sums
// neighbors' values at radius 2.
type multiPass struct {
	g *graph.Graph
}

func (a *multiPass) Passes() int { return 2 }
func (a *multiPass) Locality(p, _ int) int {
	if p == 0 {
		return 0
	}
	return 2
}
func (a *multiPass) Init(_ int) any { return 0 }
func (a *multiPass) Process(p int, c *Ctx) error {
	v := c.Node()
	if p == 0 {
		c.Write(v, v)
		return nil
	}
	sum := 0
	for _, u := range a.g.Ball(v, 2) {
		if x, ok := c.Read(u).(int); ok {
			sum += x
		}
	}
	c.Write(v, sum)
	return nil
}

func TestMultiPassLocality(t *testing.T) {
	g := graph.Path(6)
	res, err := Run(g, &multiPass{g: g}, IdentityOrder(6), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	// Lemma 4.4: combined locality r1 + 2*r2 = 0 + 4.
	if res.Locality != 4 {
		t.Errorf("combined locality = %d, want 4", res.Locality)
	}
	// Vertex 0 sums ball {0,1,2} = 3 after pass 2 (values from pass 1 are
	// overwritten in scan order, so later vertices see updated sums — the
	// point is just that multi-pass scans compose without error).
	if res.MaxUsed != 2 {
		t.Errorf("max used = %d", res.MaxUsed)
	}
}

func TestCheckOrder(t *testing.T) {
	if err := CheckOrder(3, []int{0, 1, 2}); err != nil {
		t.Error(err)
	}
	if err := CheckOrder(3, []int{0, 1}); !errors.Is(err, ErrOrder) {
		t.Error("short order accepted")
	}
	if err := CheckOrder(3, []int{0, 1, 1}); !errors.Is(err, ErrOrder) {
		t.Error("duplicate accepted")
	}
	if err := CheckOrder(3, []int{0, 1, 5}); !errors.Is(err, ErrOrder) {
		t.Error("out of range accepted")
	}
}

func TestOrderGenerators(t *testing.T) {
	if got := IdentityOrder(3); got[0] != 0 || got[2] != 2 {
		t.Errorf("identity = %v", got)
	}
	if got := ReverseOrder(3); got[0] != 2 || got[2] != 0 {
		t.Errorf("reverse = %v", got)
	}
	rng := rand.New(rand.NewSource(3))
	if err := CheckOrder(10, RandomOrder(10, rng)); err != nil {
		t.Error(err)
	}
	g := graph.Path(5)
	bf := BoundaryFirstOrder(g)
	if err := CheckOrder(5, bf); err != nil {
		t.Error(err)
	}
	if bf[0] != 4 {
		t.Errorf("boundary-first should start farthest from 0: %v", bf)
	}
	if bf[len(bf)-1] != 0 {
		t.Errorf("boundary-first should end at 0: %v", bf)
	}
}

func TestRunBadOrder(t *testing.T) {
	g := graph.Path(3)
	if _, err := Run(g, &greedyColoring{g: g}, []int{0, 0, 1}, rand.New(rand.NewSource(4))); err == nil {
		t.Error("bad order accepted")
	}
}
