// Package slocal implements the sequential local (SLOCAL) model of
// Ghaffari, Kuhn and Maus (STOC 2017), in the randomized variant used by
// Section 3 of Feng & Yin, PODC 2018: an adversary provides an ordering of
// the nodes; the algorithm processes nodes one by one, and when processing
// node v it reads (and, in the multi-pass variant, writes) the states of all
// nodes within a bounded radius of v, then computes v's output with
// unbounded local computation.
//
// The package also provides the locality accounting of Lemma 4.4: a k-pass
// SLOCAL algorithm with per-pass localities r_1..r_k collapses to a
// single-pass algorithm with locality r_1 + 2·Σ_{i≥2} r_i, and write-radius
// r adds r to the locality.
package slocal

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Ctx is the execution context handed to an algorithm while it processes
// one node: it exposes reads and writes of node states within the declared
// locality, and records the maximum radius actually used.
type Ctx struct {
	g        *graph.Graph
	node     int
	locality int
	states   []any
	rng      *rand.Rand
	maxUsed  int
	dist     []int // distances from the processed node
	err      error
}

// Node returns the node currently being processed.
func (c *Ctx) Node() int { return c.node }

// RNG returns the per-run random source. In the SLOCAL model each node holds
// an arbitrarily long private random string; a single shared source consumed
// in processing order is an equivalent realization.
func (c *Ctx) RNG() *rand.Rand { return c.rng }

// Err returns the first access violation recorded on the context.
func (c *Ctx) Err() error { return c.err }

// MaxRadiusUsed returns the largest distance at which the algorithm actually
// read or wrote a state while processing the current node.
func (c *Ctx) MaxRadiusUsed() int { return c.maxUsed }

func (c *Ctx) check(u int) bool {
	if u < 0 || u >= c.g.N() {
		c.recordErr(fmt.Errorf("slocal: node %d out of range", u))
		return false
	}
	d := c.dist[u]
	if d < 0 || d > c.locality {
		c.recordErr(fmt.Errorf("slocal: access to node %d at distance %d exceeds locality %d", u, d, c.locality))
		return false
	}
	if d > c.maxUsed {
		c.maxUsed = d
	}
	return true
}

func (c *Ctx) recordErr(err error) {
	if c.err == nil {
		c.err = err
	}
}

// Read returns the state of node u, which must lie within the locality of
// the processed node.
func (c *Ctx) Read(u int) any {
	if !c.check(u) {
		return nil
	}
	return c.states[u]
}

// Write sets the state of node u, which must lie within the locality. (This
// is the "write into nearby memories" variant; Lemma 4.4(1) converts it to
// write-own-memory at the cost of adding the write radius to the locality.)
func (c *Ctx) Write(u int, state any) {
	if !c.check(u) {
		return
	}
	c.states[u] = state
}

// Algorithm is a (possibly multi-pass) SLOCAL algorithm.
type Algorithm interface {
	// Passes returns the number of sequential passes over the ordering.
	Passes() int
	// Locality returns the read/write radius of pass p (0-indexed) on an
	// n-node graph.
	Locality(p, n int) int
	// Init returns node v's initial state.
	Init(v int) any
	// Process is called once per (pass, node) in order; it may read and
	// write states within the pass locality and must store v's output in
	// v's state by the end of the final pass.
	Process(pass int, c *Ctx) error
}

// Result carries the outcome of a sequential run.
type Result struct {
	// States holds the final per-node states.
	States []any
	// Locality is the combined single-pass locality charged by Lemma 4.4:
	// r_1 + 2·Σ_{i≥2} r_i.
	Locality int
	// MaxUsed is the maximum radius actually accessed across all steps.
	MaxUsed int
}

// ErrOrder indicates an ordering that is not a permutation of the vertices.
var ErrOrder = errors.New("slocal: ordering is not a permutation")

// CheckOrder validates that order is a permutation of 0..n-1.
func CheckOrder(n int, order []int) error {
	if len(order) != n {
		return fmt.Errorf("%w: length %d != n %d", ErrOrder, len(order), n)
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || v >= n || seen[v] {
			return fmt.Errorf("%w: bad entry %d", ErrOrder, v)
		}
		seen[v] = true
	}
	return nil
}

// Run executes the algorithm sequentially on the given ordering with the
// given random source, enforcing the declared localities.
func Run(g *graph.Graph, alg Algorithm, order []int, rng *rand.Rand) (*Result, error) {
	n := g.N()
	if err := CheckOrder(n, order); err != nil {
		return nil, err
	}
	states := make([]any, n)
	for v := 0; v < n; v++ {
		states[v] = alg.Init(v)
	}
	res := &Result{States: states}
	combined := 0
	for p := 0; p < alg.Passes(); p++ {
		r := alg.Locality(p, n)
		if p == 0 {
			combined += r
		} else {
			combined += 2 * r
		}
		for _, v := range order {
			ctx := &Ctx{
				g:        g,
				node:     v,
				locality: r,
				states:   states,
				rng:      rng,
				dist:     g.BFSDistances(v),
			}
			if err := alg.Process(p, ctx); err != nil {
				return nil, fmt.Errorf("slocal: pass %d node %d: %w", p, v, err)
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if ctx.maxUsed > res.MaxUsed {
				res.MaxUsed = ctx.maxUsed
			}
		}
	}
	res.Locality = combined
	return res, nil
}

// Orderings used by tests and experiments; SLOCAL correctness must hold for
// every ordering, so the suite exercises several adversarial choices.

// IdentityOrder returns 0..n-1.
func IdentityOrder(n int) []int {
	o := make([]int, n)
	for i := range o {
		o[i] = i
	}
	return o
}

// ReverseOrder returns n-1..0.
func ReverseOrder(n int) []int {
	o := make([]int, n)
	for i := range o {
		o[i] = n - 1 - i
	}
	return o
}

// RandomOrder returns a uniformly random permutation.
func RandomOrder(n int, rng *rand.Rand) []int {
	o := IdentityOrder(n)
	rng.Shuffle(n, func(i, j int) { o[i], o[j] = o[j], o[i] })
	return o
}

// BoundaryFirstOrder returns an adversarial ordering that processes the
// vertices farthest from vertex 0 first (descending BFS distance, ties by
// index). Long-range information must then flow "inwards", a worst case for
// sequential samplers.
func BoundaryFirstOrder(g *graph.Graph) []int {
	d := g.BFSDistances(0)
	o := IdentityOrder(g.N())
	// Stable selection sort by descending distance keeps ties in index
	// order and avoids importing sort for a 20-line package helper.
	for i := 0; i < len(o); i++ {
		best := i
		for j := i + 1; j < len(o); j++ {
			if d[o[j]] > d[o[best]] {
				best = j
			}
		}
		o[i], o[best] = o[best], o[i]
	}
	return o
}
