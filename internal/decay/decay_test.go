package decay

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func hardcoreInstance(t *testing.T, g *graph.Graph, lambda float64, pinned dist.Config) *gibbs.Instance {
	t.Helper()
	s, err := model.Hardcore(g, lambda)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(s, pinned)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestSAWExactOnTrees(t *testing.T) {
	// On trees the SAW tree is the tree itself: full-depth recursion must
	// match brute force exactly.
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"path6", graph.Path(6)},
		{"star5", graph.Star(5)},
		{"btree", graph.CompleteTree(2, 3)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			for _, lambda := range []float64{0.4, 1, 2.5} {
				est, err := NewHardcoreSAW(g, lambda)
				if err != nil {
					t.Fatal(err)
				}
				in := hardcoreInstance(t, g, lambda, nil)
				for v := 0; v < g.N(); v++ {
					want, err := exact.Marginal(in, v)
					if err != nil {
						t.Fatal(err)
					}
					got, err := est.Marginal(in.Pinned, v, g.N())
					if err != nil {
						t.Fatal(err)
					}
					tv, _ := dist.TV(want, got)
					if tv > 1e-9 {
						t.Fatalf("λ=%v v=%d: SAW %v, exact %v", lambda, v, got, want)
					}
				}
			}
		})
	}
}

func TestSAWWeitzTheoremOnCyclicGraphs(t *testing.T) {
	// Weitz's theorem: at full depth (length of longest self-avoiding
	// walk), the SAW-tree marginal equals the true marginal on ANY graph.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		g := graph.ErdosRenyi(8, 0.35, rng)
		lambda := 0.3 + rng.Float64()*1.5
		est, err := NewHardcoreSAW(g, lambda)
		if err != nil {
			t.Fatal(err)
		}
		in := hardcoreInstance(t, g, lambda, nil)
		for v := 0; v < g.N(); v++ {
			want, err := exact.Marginal(in, v)
			if err != nil {
				t.Fatal(err)
			}
			got, err := est.Marginal(in.Pinned, v, g.N()+1)
			if err != nil {
				t.Fatal(err)
			}
			tv, _ := dist.TV(want, got)
			if tv > 1e-9 {
				t.Fatalf("trial %d λ=%v v=%d: SAW %v, exact %v (graph %v)",
					trial, lambda, v, got, want, g.Edges())
			}
		}
	}
}

func TestSAWWithPinnedBoundary(t *testing.T) {
	// Conditioning must be respected: pin both neighbors of the center of
	// P5 and check the conditional marginal.
	g := graph.Path(5)
	lambda := 1.5
	est, err := NewHardcoreSAW(g, lambda)
	if err != nil {
		t.Fatal(err)
	}
	pin := dist.NewConfig(5)
	pin[1] = 0
	pin[3] = 0
	in := hardcoreInstance(t, g, lambda, pin)
	want, err := exact.Marginal(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := est.Marginal(pin, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	tv, _ := dist.TV(want, got)
	if tv > 1e-9 {
		t.Fatalf("conditional SAW %v, exact %v", got, want)
	}
	// Pinning occupied neighbors forces the center out.
	pin2 := dist.NewConfig(5)
	pin2[1] = 1
	got2, err := est.Marginal(pin2, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got2[model.In] > 1e-12 {
		t.Fatalf("occupied neighbor not excluded: %v", got2)
	}
}

func TestSAWPinnedVertexReturnsPointMass(t *testing.T) {
	g := graph.Path(3)
	est, _ := NewHardcoreSAW(g, 1)
	pin := dist.NewConfig(3)
	pin[0] = 1
	m, err := est.Marginal(pin, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m[1] != 1 {
		t.Fatalf("pinned marginal = %v", m)
	}
}

func TestSAWTruncationErrorDecays(t *testing.T) {
	// In the uniqueness regime the truncation error must decay
	// geometrically with depth.
	g := graph.Cycle(20)
	lambda := 1.0 // uniqueness on Δ=2 for every λ
	est, _ := NewHardcoreSAW(g, lambda)
	in := hardcoreInstance(t, g, lambda, nil)
	want, err := exact.Marginal(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	var errs []float64
	for _, depth := range []int{2, 4, 8, 16} {
		got, err := est.Marginal(in.Pinned, 0, depth)
		if err != nil {
			t.Fatal(err)
		}
		tv, _ := dist.TV(want, got)
		errs = append(errs, tv)
	}
	for i := 1; i < len(errs); i++ {
		if errs[i] > errs[i-1]+1e-12 && errs[i-1] > 1e-13 {
			t.Fatalf("truncation error not decreasing: %v", errs)
		}
	}
	if errs[len(errs)-1] > 1e-4 {
		t.Fatalf("depth-16 error too large: %v", errs)
	}
}

func TestTwoSpinSAWIsingExact(t *testing.T) {
	// Antiferromagnetic Ising on a tree: SAW = exact.
	g := graph.CompleteTree(2, 2)
	p := model.TwoSpinParams{Beta: 0.6, Gamma: 0.6, Lambda: 1.2}
	est, err := NewTwoSpinSAW(g, p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := model.TwoSpin(g, p)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := gibbs.NewInstance(s, nil)
	for v := 0; v < g.N(); v++ {
		want, err := exact.Marginal(in, v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := est.Marginal(in.Pinned, v, g.N())
		if err != nil {
			t.Fatal(err)
		}
		tv, _ := dist.TV(want, got)
		if tv > 1e-9 {
			t.Fatalf("Ising v=%d: SAW %v, exact %v", v, got, want)
		}
	}
}

func TestTwoSpinSAWIsingCycle(t *testing.T) {
	// Weitz reduction holds for general 2-spin systems too.
	g := graph.Cycle(6)
	for _, p := range []model.TwoSpinParams{
		{Beta: 0.5, Gamma: 0.5, Lambda: 1},
		{Beta: 0.8, Gamma: 0.3, Lambda: 1.7},
		{Beta: 1, Gamma: 0, Lambda: 2},
	} {
		est, err := NewTwoSpinSAW(g, p)
		if err != nil {
			t.Fatal(err)
		}
		s, err := model.TwoSpin(g, p)
		if err != nil {
			t.Fatal(err)
		}
		in, _ := gibbs.NewInstance(s, nil)
		for v := 0; v < g.N(); v++ {
			want, err := exact.Marginal(in, v)
			if err != nil {
				t.Fatal(err)
			}
			got, err := est.Marginal(in.Pinned, v, 2*g.N())
			if err != nil {
				t.Fatal(err)
			}
			tv, _ := dist.TV(want, got)
			if tv > 1e-9 {
				t.Fatalf("2-spin %+v v=%d: SAW %v, exact %v", p, v, got, want)
			}
		}
	}
}

func TestSAWInvalidInputs(t *testing.T) {
	g := graph.Path(3)
	est, _ := NewHardcoreSAW(g, 1)
	if _, err := est.Marginal(dist.NewConfig(3), 9, 3); err == nil {
		t.Error("bad vertex accepted")
	}
	if _, err := est.Marginal(dist.NewConfig(2), 0, 3); err == nil {
		t.Error("short pinning accepted")
	}
	if _, err := NewHardcoreSAW(g, -1); err == nil {
		t.Error("negative fugacity accepted")
	}
}

func TestMatchingEstimatorExactOnTrees(t *testing.T) {
	// Path trees of trees are the trees themselves: the BGKNT recursion is
	// exact at full depth.
	for _, g := range []*graph.Graph{graph.Path(6), graph.Star(6), graph.CompleteTree(2, 3)} {
		for _, lambda := range []float64{0.5, 1, 3} {
			m, err := model.Matching(g, lambda)
			if err != nil {
				t.Fatal(err)
			}
			est := NewMatchingEstimator(m)
			in, _ := gibbs.NewInstance(m.Spec, nil)
			for i := range m.EdgeList {
				want, err := exact.Marginal(in, i)
				if err != nil {
					t.Fatal(err)
				}
				got, err := est.Marginal(in.Pinned, i, g.N())
				if err != nil {
					t.Fatal(err)
				}
				tv, _ := dist.TV(want, got)
				if tv > 1e-9 {
					t.Fatalf("matching λ=%v edge %d: est %v, exact %v", lambda, i, got, want)
				}
			}
		}
	}
}

func TestMatchingEstimatorGodsilOnCycles(t *testing.T) {
	// Godsil's theorem: exact at full depth on any graph.
	for _, g := range []*graph.Graph{graph.Cycle(5), graph.Cycle(6), graph.Complete(4)} {
		lambda := 1.3
		m, err := model.Matching(g, lambda)
		if err != nil {
			t.Fatal(err)
		}
		est := NewMatchingEstimator(m)
		in, _ := gibbs.NewInstance(m.Spec, nil)
		for i := range m.EdgeList {
			want, err := exact.Marginal(in, i)
			if err != nil {
				t.Fatal(err)
			}
			got, err := est.Marginal(in.Pinned, i, g.N()+1)
			if err != nil {
				t.Fatal(err)
			}
			tv, _ := dist.TV(want, got)
			if tv > 1e-9 {
				t.Fatalf("graph %v edge %d: est %v, exact %v", g, i, got, want)
			}
		}
	}
}

func TestMatchingEstimatorWithPins(t *testing.T) {
	// Pin one edge In; adjacent edges must then be Out.
	g := graph.Path(4) // edges: (0,1)=0, (1,2)=1, (2,3)=2
	m, _ := model.Matching(g, 1)
	est := NewMatchingEstimator(m)
	pin := dist.NewConfig(3)
	pin[1] = model.In
	got, err := est.Marginal(pin, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got[model.In] > 1e-12 {
		t.Fatalf("edge adjacent to matched edge: %v", got)
	}
	// Compare against exact conditional.
	in, _ := gibbs.NewInstance(m.Spec, pin)
	want, err := exact.Marginal(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := est.Marginal(pin, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	tv, _ := dist.TV(want, got2)
	if tv > 1e-9 {
		t.Fatalf("pinned matching marginal %v, want %v", got2, want)
	}
	// Inconsistent pins detected.
	bad := dist.NewConfig(3)
	bad[0] = model.In
	bad[1] = model.In
	if _, err := est.Marginal(bad, 2, 5); err == nil {
		t.Error("conflicting pinned-In edges accepted")
	}
}

func TestVertexUnmatchedProb(t *testing.T) {
	// Single edge, λ=1: Pr[v unmatched] = 1/2.
	g := graph.Path(2)
	m, _ := model.Matching(g, 1)
	est := NewMatchingEstimator(m)
	p, err := est.VertexUnmatchedProb(dist.NewConfig(1), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(p, 0.5, 1e-12) {
		t.Fatalf("unmatched prob = %v, want 0.5", p)
	}
}

func TestColoringEstimatorExactOnTrees(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Path(5), graph.Star(5), graph.CompleteTree(2, 2)} {
		q := 4
		est, err := NewColoringEstimator(g, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		s, err := model.Coloring(g, q)
		if err != nil {
			t.Fatal(err)
		}
		in, _ := gibbs.NewInstance(s, nil)
		for v := 0; v < g.N(); v++ {
			want, err := exact.Marginal(in, v)
			if err != nil {
				t.Fatal(err)
			}
			got, err := est.Marginal(in.Pinned, v, g.N())
			if err != nil {
				t.Fatal(err)
			}
			tv, _ := dist.TV(want, got)
			if tv > 1e-9 {
				t.Fatalf("coloring v=%d: est %v, exact %v", v, got, want)
			}
		}
	}
}

func TestColoringEstimatorConditional(t *testing.T) {
	// P3 with q=3, pin ends to colors 0 and 1; middle marginal exact.
	g := graph.Path(3)
	est, _ := NewColoringEstimator(g, 3, nil)
	pin := dist.Config{0, dist.Unset, 1}
	s, _ := model.Coloring(g, 3)
	in, _ := gibbs.NewInstance(s, pin)
	want, err := exact.Marginal(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := est.Marginal(pin, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	tv, _ := dist.TV(want, got)
	if tv > 1e-9 {
		t.Fatalf("conditional coloring %v, want %v", got, want)
	}
}

func TestColoringEstimatorApproxOnTriangleFree(t *testing.T) {
	// On triangle-free graphs with q ≥ 2Δ the truncated recursion should be
	// close to exact (GKM regime: α* ≈ 1.763 < 2).
	g := graph.Cycle(8)
	q := 5
	est, _ := NewColoringEstimator(g, q, nil)
	s, _ := model.Coloring(g, q)
	in, _ := gibbs.NewInstance(s, nil)
	want, err := exact.Marginal(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := est.Marginal(in.Pinned, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	tv, _ := dist.TV(want, got)
	if tv > 0.01 {
		t.Fatalf("triangle-free coloring estimate off by %v", tv)
	}
}

func TestColoringEstimatorErrors(t *testing.T) {
	g := graph.Path(2)
	if _, err := NewColoringEstimator(g, 0, nil); err == nil {
		t.Error("q=0 accepted")
	}
	if _, err := NewColoringEstimator(g, 2, [][]int{{0}}); err == nil {
		t.Error("bad list length accepted")
	}
	est, _ := NewColoringEstimator(g, 2, nil)
	if _, err := est.Marginal(dist.NewConfig(2), 7, 2); err == nil {
		t.Error("bad vertex accepted")
	}
	if _, err := est.Marginal(dist.NewConfig(1), 0, 2); err == nil {
		t.Error("short pinning accepted")
	}
}

func TestDepthForError(t *testing.T) {
	d1, err := DepthForError(0.5, 0.01, 100)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DepthForError(0.5, 0.0001, 100)
	if err != nil {
		t.Fatal(err)
	}
	if d2 <= d1 {
		t.Errorf("smaller error should need more depth: %d vs %d", d1, d2)
	}
	// Bound is sufficient: n·α^t ≤ δ.
	if 100*math.Pow(0.5, float64(d1)) > 0.01+1e-12 {
		t.Errorf("depth %d insufficient", d1)
	}
	if _, err := DepthForError(1.0, 0.1, 10); err == nil {
		t.Error("non-contracting rate accepted")
	}
	if _, err := DepthForError(0.5, 0, 10); err == nil {
		t.Error("zero error accepted")
	}
	if d, err := DepthForError(0, 0.1, 10); err != nil || d != 1 {
		t.Errorf("zero rate should give depth 1: %d %v", d, err)
	}
}

func TestMatchingDepthForError(t *testing.T) {
	d, err := MatchingDepthForError(1, 4, 0.01, 64)
	if err != nil || d < 1 {
		t.Fatalf("depth %d err %v", d, err)
	}
	// √Δ scaling: quadrupling Δ roughly doubles the depth.
	d4, _ := MatchingDepthForError(1, 4, 1e-6, 1024)
	d16, _ := MatchingDepthForError(1, 16, 1e-6, 1024)
	ratio := float64(d16) / float64(d4)
	if ratio < 1.4 || ratio > 2.8 {
		t.Errorf("depth ratio = %v, want ≈2 (√Δ scaling)", ratio)
	}
}

// Property: for random pinnings on a tree, SAW marginals match exact
// conditionals (strong form of Weitz on trees).
func TestSAWRandomPinningsProperty(t *testing.T) {
	g := graph.CompleteTree(2, 3)
	lambda := 1.1
	est, _ := NewHardcoreSAW(g, lambda)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pin := dist.NewConfig(g.N())
		// Random feasible pinning on a random subset.
		for v := 0; v < g.N(); v++ {
			if r.Intn(3) == 0 {
				pin[v] = r.Intn(2)
				// Keep local feasibility.
				ok := true
				for _, u := range g.Neighbors(v) {
					if pin[v] == 1 && pin[u] == 1 {
						ok = false
					}
				}
				if !ok {
					pin[v] = 0
				}
			}
		}
		s, err := model.Hardcore(g, lambda)
		if err != nil {
			return false
		}
		in, err := gibbs.NewInstance(s, pin)
		if err != nil {
			return false
		}
		v := r.Intn(g.N())
		if pin[v] != dist.Unset {
			return true
		}
		want, err := exact.Marginal(in, v)
		if err != nil {
			return false
		}
		got, err := est.Marginal(pin, v, g.N())
		if err != nil {
			return false
		}
		tv, _ := dist.TV(want, got)
		return tv < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(33))}); err != nil {
		t.Error(err)
	}
}
