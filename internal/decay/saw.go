// Package decay implements the correlation-decay ("strong spatial mixing")
// marginal estimators that the paper cites as the state of the art and uses
// as inference oracles (Section 5 of Feng & Yin, PODC 2018):
//
//   - Weitz's self-avoiding-walk (SAW) tree recursion for the hardcore model
//     and general antiferromagnetic 2-spin systems [Weitz 06; Li–Lu–Yin 13],
//   - the Bayati–Gamarnik–Katz–Nair–Tetali path-tree recursion for
//     monomer–dimer (matching) marginals [BGKNT 07], and
//   - the Gamarnik–Katz–Misra style recursion for list colorings of
//     triangle-free graphs [GKM 13].
//
// Each estimator computes a vertex (or edge) marginal conditioned on an
// arbitrary pinned partial configuration, truncating its computation tree at
// a given depth t. Under strong spatial mixing the truncation error decays
// exponentially in t, so these estimators realize LOCAL approximate
// inference with t(n, δ) = O(log(n/δ)) rounds; they are the oracles plugged
// into the reductions of Sections 3–5.
package decay

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/model"
)

// ErrPinnedInfeasible indicates a pinned configuration that the estimator
// detects to be infeasible (e.g. two adjacent occupied vertices in the
// hardcore model).
var ErrPinnedInfeasible = errors.New("decay: pinned configuration infeasible")

// ratio represents an odds ratio R = num/den of P(In)/P(Out) without
// dividing, so that pinned vertices (R = 0 or R = ∞) stay exact.
type ratio struct {
	num, den float64
}

func (r ratio) normalized() ratio {
	m := math.Max(r.num, r.den)
	if m <= 0 {
		return r
	}
	return ratio{num: r.num / m, den: r.den / m}
}

// dist2 converts the ratio into a two-symbol distribution (Out, In).
func (r ratio) dist2() (dist.Dist, error) {
	total := r.num + r.den
	if total <= 0 || math.IsNaN(total) {
		return nil, ErrPinnedInfeasible
	}
	return dist.Dist{r.den / total, r.num / total}, nil
}

// TwoSpinSAW is Weitz's SAW-tree marginal estimator for a 2-spin system on
// a fixed graph. The zero value is not usable; construct with NewTwoSpinSAW.
type TwoSpinSAW struct {
	g *graph.Graph
	p model.TwoSpinParams
}

// NewTwoSpinSAW returns a SAW-tree estimator for the 2-spin system with
// parameters p on graph g.
func NewTwoSpinSAW(g *graph.Graph, p model.TwoSpinParams) (*TwoSpinSAW, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &TwoSpinSAW{g: g, p: p}, nil
}

// NewHardcoreSAW returns the SAW estimator for the hardcore model with
// fugacity λ ((β, γ) = (1, 0)).
func NewHardcoreSAW(g *graph.Graph, lambda float64) (*TwoSpinSAW, error) {
	return NewTwoSpinSAW(g, model.TwoSpinParams{Beta: 1, Gamma: 0, Lambda: lambda})
}

// Marginal estimates the conditional marginal distribution of vertex v under
// the pinned partial configuration, truncating the SAW tree at the given
// depth. Depth 0 uses only v's own activity. On trees (and, at full depth,
// on any graph, by Weitz's theorem) the result is exact.
func (e *TwoSpinSAW) Marginal(pinned dist.Config, v, depth int) (dist.Dist, error) {
	if v < 0 || v >= e.g.N() {
		return nil, fmt.Errorf("decay: vertex %d out of range", v)
	}
	if len(pinned) != e.g.N() {
		return nil, fmt.Errorf("decay: pinning length %d != n %d", len(pinned), e.g.N())
	}
	if x := pinned[v]; x != dist.Unset {
		return dist.Point(2, x), nil
	}
	onPath := make(map[int]int) // vertex -> departure neighbor on current walk
	r := e.sawRatio(pinned, v, -1, depth, onPath)
	d, err := r.dist2()
	if err != nil {
		return nil, fmt.Errorf("decay: SAW marginal at %d: %w", v, err)
	}
	return d, nil
}

// sawRatio computes the odds ratio R_u = P(u=In)/P(u=Out) in the SAW tree
// rooted at the walk ending at u, having arrived from `from` (-1 at the
// root). onPath maps each vertex currently on the walk to the neighbor
// through which the walk departed it (used by Weitz's cycle-closing rule).
func (e *TwoSpinSAW) sawRatio(pinned dist.Config, u, from, depth int, onPath map[int]int) ratio {
	if x := pinned[u]; x != dist.Unset {
		if x == model.In {
			return ratio{num: 1, den: 0}
		}
		return ratio{num: 0, den: 1}
	}
	if depth <= 0 {
		// Truncated leaf: treat as a free isolated vertex.
		return ratio{num: e.p.Lambda, den: 1}.normalized()
	}
	out := ratio{num: e.p.Lambda, den: 1}
	for _, w := range e.g.Neighbors(u) {
		if w == from {
			continue
		}
		var rw ratio
		if dep, visited := onPath[w]; visited {
			// Weitz's cycle-closing rule: the walk returns to w, which left
			// through neighbor dep. The leaf copy of w is pinned to In when
			// the returning edge (w, u) is larger than the departing edge
			// (w, dep) in w's local ordering (sorted neighbor index), and to
			// Out when smaller.
			if u > dep {
				rw = ratio{num: 1, den: 0}
			} else {
				rw = ratio{num: 0, den: 1}
			}
		} else {
			onPath[u] = w
			rw = e.sawRatio(pinned, w, u, depth-1, onPath)
			delete(onPath, u)
		}
		// Child contribution: (den + γ·num) when u=In, (β·den + num) when
		// u=Out.
		out = ratio{
			num: out.num * (rw.den + e.p.Gamma*rw.num),
			den: out.den * (e.p.Beta*rw.den + rw.num),
		}.normalized()
	}
	return out
}

// DepthForError returns a truncation depth sufficient for additive error δ
// given an exponential decay rate α ∈ (0, 1): the smallest t with
// C·α^t ≤ δ, using a poly(n) prefactor C = n. Returns an error when the
// rate does not certify decay (α ≥ 1).
func DepthForError(alpha, delta float64, n int) (int, error) {
	if alpha >= 1 || alpha < 0 {
		return 0, fmt.Errorf("decay: rate %v does not certify decay", alpha)
	}
	if delta <= 0 {
		return 0, errors.New("decay: error bound must be positive")
	}
	if alpha == 0 {
		return 1, nil
	}
	c := float64(n)
	if c < 1 {
		c = 1
	}
	t := math.Log(delta/c) / math.Log(alpha)
	if t < 1 {
		t = 1
	}
	return int(math.Ceil(t)), nil
}
