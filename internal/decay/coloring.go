package decay

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/graph"
)

// ColoringEstimator estimates marginals of uniform proper list colorings on
// triangle-free graphs via the Gamarnik–Katz–Misra style computation-tree
// recursion [GKM 13]: for a free vertex v with list L(v),
//
//	P(v = c) ∝ Π_{u ~ v} (1 − P_{u→v}(c)),
//
// where P_{u→v} is computed recursively in the graph with v removed, and
// the recursion is truncated at a given depth with the uniform distribution
// over lists as the base case. On triangle-free graphs with q ≥ αΔ for
// α > α* ≈ 1.763 the recursion contracts, giving strong spatial mixing and
// hence the O(log³ n) coloring sampler of Section 5. On trees the recursion
// is exact at full depth.
type ColoringEstimator struct {
	g     *graph.Graph
	q     int
	lists [][]int // lists[v] = allowed colors at v; nil means all q colors
}

// NewColoringEstimator returns an estimator for proper q-colorings of g.
// lists may be nil to allow every color at every vertex.
func NewColoringEstimator(g *graph.Graph, q int, lists [][]int) (*ColoringEstimator, error) {
	if q < 1 {
		return nil, fmt.Errorf("decay: coloring needs q >= 1, got %d", q)
	}
	if lists != nil && len(lists) != g.N() {
		return nil, fmt.Errorf("decay: %d lists for %d vertices", len(lists), g.N())
	}
	return &ColoringEstimator{g: g, q: q, lists: lists}, nil
}

// allowed returns the list of colors available at v.
func (e *ColoringEstimator) allowed(v int) []int {
	if e.lists == nil || e.lists[v] == nil {
		all := make([]int, e.q)
		for c := range all {
			all[c] = c
		}
		return all
	}
	return e.lists[v]
}

// Marginal estimates the conditional marginal of vertex v under the pinned
// partial configuration, truncated at the given depth.
func (e *ColoringEstimator) Marginal(pinned dist.Config, v, depth int) (dist.Dist, error) {
	if v < 0 || v >= e.g.N() {
		return nil, fmt.Errorf("decay: vertex %d out of range", v)
	}
	if len(pinned) != e.g.N() {
		return nil, fmt.Errorf("decay: pinning length %d != n %d", len(pinned), e.g.N())
	}
	if x := pinned[v]; x != dist.Unset {
		return dist.Point(e.q, x), nil
	}
	removed := make(map[int]bool)
	p := e.marginalRec(pinned, v, depth, removed)
	d, err := dist.FromWeights(p)
	if err != nil {
		return nil, fmt.Errorf("decay: coloring marginal at %d: %w", v, err)
	}
	return d, nil
}

// marginalRec returns an (unnormalized-then-normalized) estimate of the
// color distribution at v in the graph with `removed` vertices deleted.
func (e *ColoringEstimator) marginalRec(pinned dist.Config, v, depth int, removed map[int]bool) []float64 {
	list := e.allowed(v)
	w := make([]float64, e.q)
	if x := pinned[v]; x != dist.Unset {
		w[x] = 1
		return w
	}
	if depth <= 0 {
		// Base case: uniform over the list.
		for _, c := range list {
			w[c] = 1 / float64(len(list))
		}
		return w
	}
	// Gather neighbor color distributions computed in G − v.
	removed[v] = true
	var nb [][]float64
	for _, u := range e.g.Neighbors(v) {
		if removed[u] {
			continue
		}
		nb = append(nb, e.marginalRec(pinned, u, depth-1, removed))
	}
	delete(removed, v)
	total := 0.0
	for _, c := range list {
		p := 1.0
		for _, pu := range nb {
			p *= 1 - pu[c]
			if p <= 0 {
				p = 0
				break
			}
		}
		w[c] = p
		total += p
	}
	if total <= 0 {
		// Degenerate truncation: fall back to uniform over the list, keeping
		// the estimator total. (Cannot happen when q > Δ + 1.)
		for _, c := range list {
			w[c] = 1 / float64(len(list))
		}
		return w
	}
	for c := range w {
		w[c] /= total
	}
	return w
}
