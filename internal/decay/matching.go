package decay

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/model"
)

// MatchingEstimator computes monomer–dimer (weighted matching) marginals via
// the path-tree recursion of Bayati–Gamarnik–Katz–Nair–Tetali [BGKNT 07]
// (Godsil's theorem makes the recursion exact at full depth; truncation
// error decays at rate 1 − Ω(1/√(λΔ)), which yields the paper's
// O(√Δ log³ n) matching sampler). The estimator operates on a
// model.MatchingModel, whose variables are the edges of the base graph; a
// pinned configuration pins edges In (matched) or Out (excluded).
type MatchingEstimator struct {
	m *model.MatchingModel
	// incident[v] lists the line-graph indices of edges incident to v.
	incident [][]int
}

// NewMatchingEstimator returns an estimator for the given matching model.
func NewMatchingEstimator(m *model.MatchingModel) *MatchingEstimator {
	inc := make([][]int, m.Base.N())
	for i, e := range m.EdgeList {
		inc[e.U] = append(inc[e.U], i)
		inc[e.V] = append(inc[e.V], i)
	}
	return &MatchingEstimator{m: m, incident: inc}
}

// pinState captures the effect of a pinned partial configuration on the base
// graph: removed edges (pinned Out) and saturated vertices (endpoints of
// pinned-In edges).
type pinState struct {
	removedEdge []bool
	saturated   []bool
}

func (e *MatchingEstimator) pins(pinned dist.Config) (*pinState, error) {
	if len(pinned) != len(e.m.EdgeList) {
		return nil, fmt.Errorf("decay: pinning length %d != edges %d", len(pinned), len(e.m.EdgeList))
	}
	st := &pinState{
		removedEdge: make([]bool, len(e.m.EdgeList)),
		saturated:   make([]bool, e.m.Base.N()),
	}
	for i, x := range pinned {
		switch x {
		case dist.Unset:
		case model.Out:
			st.removedEdge[i] = true
		case model.In:
			ed := e.m.EdgeList[i]
			if st.saturated[ed.U] || st.saturated[ed.V] {
				return nil, fmt.Errorf("%w: two pinned-In edges share vertex", ErrPinnedInfeasible)
			}
			st.saturated[ed.U] = true
			st.saturated[ed.V] = true
		default:
			return nil, fmt.Errorf("decay: matching pin value %d", x)
		}
	}
	return st, nil
}

// unmatchedProb returns p_v = Pr[v unmatched] in the (pinned) graph with the
// vertices in `excluded` removed, computed on the path tree truncated at the
// given depth:
//
//	p_v = 1 / (1 + λ · Σ_{u ~ v available} p_u(G − v)).
//
// Saturated vertices have p = 0. A truncated leaf uses the worst-case value
// p = 1 (a free vertex with no remaining neighbors).
func (e *MatchingEstimator) unmatchedProb(st *pinState, v, depth int, excluded map[int]bool) float64 {
	if st.saturated[v] {
		return 0
	}
	if depth <= 0 {
		return 1
	}
	sum := 0.0
	excluded[v] = true
	for _, ei := range e.incident[v] {
		if st.removedEdge[ei] {
			continue
		}
		ed := e.m.EdgeList[ei]
		u := ed.U
		if u == v {
			u = ed.V
		}
		if excluded[u] || st.saturated[u] {
			continue
		}
		sum += e.unmatchedProb(st, u, depth-1, excluded)
	}
	delete(excluded, v)
	return 1 / (1 + e.m.Lambda*sum)
}

// Marginal estimates the conditional marginal of edge variable i (a vertex
// of the line graph) under the pinned configuration, truncated at the given
// depth. Using Z(e ∈ M)/Z(e ∉ M) = λ · p_u(G−e) · p_v(G−u):
func (e *MatchingEstimator) Marginal(pinned dist.Config, i, depth int) (dist.Dist, error) {
	if i < 0 || i >= len(e.m.EdgeList) {
		return nil, fmt.Errorf("decay: edge index %d out of range", i)
	}
	if x := pinned[i]; x != dist.Unset {
		return dist.Point(2, x), nil
	}
	st, err := e.pins(pinned)
	if err != nil {
		return nil, err
	}
	ed := e.m.EdgeList[i]
	if st.saturated[ed.U] || st.saturated[ed.V] {
		// An endpoint is already matched by a pinned edge: e cannot be
		// matched.
		return dist.Point(2, model.Out), nil
	}
	// p_u computed in G − e: temporarily remove edge i.
	st.removedEdge[i] = true
	excluded := make(map[int]bool)
	pu := e.unmatchedProb(st, ed.U, depth, excluded)
	// p_v computed in G − u.
	excluded[ed.U] = true
	pv := e.unmatchedProb(st, ed.V, depth, excluded)
	st.removedEdge[i] = false
	r := e.m.Lambda * pu * pv
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return nil, fmt.Errorf("decay: matching marginal ratio degenerate at edge %d", i)
	}
	return dist.Dist{1 / (1 + r), r / (1 + r)}, nil
}

// VertexUnmatchedProb estimates Pr[v unmatched] under the pinned
// configuration, truncated at the given depth. Exposed for the matching
// experiments (E9).
func (e *MatchingEstimator) VertexUnmatchedProb(pinned dist.Config, v, depth int) (float64, error) {
	st, err := e.pins(pinned)
	if err != nil {
		return 0, err
	}
	if v < 0 || v >= e.m.Base.N() {
		return 0, fmt.Errorf("decay: vertex %d out of range", v)
	}
	return e.unmatchedProb(st, v, depth, make(map[int]bool)), nil
}

// MatchingDepthForError returns a truncation depth sufficient for additive
// error δ for the matching model with activity λ on graphs of maximum
// degree Δ, using the BGKNT decay rate.
func MatchingDepthForError(lambda float64, delta int, eps float64, n int) (int, error) {
	rate := model.MatchingDecayRate(lambda, delta)
	return DepthForError(rate, eps, n)
}
