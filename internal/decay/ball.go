package decay

import (
	"fmt"
	"sort"

	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
)

// BallEstimator is the generic inference estimator of Theorem 5.1's
// converse, packaged with the same depth-truncated interface as the
// model-specific recursions: given any locally admissible, local Gibbs
// distribution, it pins the shell Γ = B_{t+ℓ}(v) \ (B_t(v) ∪ Λ) greedily to
// a locally feasible configuration and computes the exact conditional
// marginal within the ball B_{t+ℓ}(v) by enumeration.
//
// This is the estimator that exists for *every* model covered by the
// paper's characterization — no model-specific recursion needed — at the
// cost of exponential local computation in the ball size (the LOCAL model
// does not charge local computation; concretely it is practical for small
// degrees or small radii). With strong spatial mixing at rate α its error
// after truncation at depth t is δ_n(t) = poly(n)·α^t, exactly like the
// specialized estimators.
type BallEstimator struct {
	spec *gibbs.Spec
	eng  *gibbs.Compiled
	ell  int
	// Budget caps the per-ball enumeration; 0 means exact.DefaultBudget.
	Budget int
}

// NewBallEstimator returns the generic estimator for a local Gibbs
// specification. It validates locality (Definition 2.4) once up front and
// runs shell extension and ball enumeration on the compiled engine.
func NewBallEstimator(spec *gibbs.Spec) (*BallEstimator, error) {
	ell, err := spec.Locality()
	if err != nil {
		return nil, err
	}
	return &BallEstimator{spec: spec, eng: spec.Compiled(), ell: ell}, nil
}

// Locality returns the factor diameter ℓ of the specification.
func (e *BallEstimator) Locality() int { return e.ell }

// Marginal estimates the conditional marginal of v under the pinned
// configuration with shell radius `depth` (the LOCAL radius used is
// depth + 2ℓ).
func (e *BallEstimator) Marginal(pinned dist.Config, v, depth int) (dist.Dist, error) {
	if v < 0 || v >= e.spec.N() {
		return nil, fmt.Errorf("decay: vertex %d out of range", v)
	}
	if len(pinned) != e.spec.N() {
		return nil, fmt.Errorf("decay: pinning length %d != n %d", len(pinned), e.spec.N())
	}
	if x := pinned[v]; x != dist.Unset {
		return dist.Point(e.spec.Q, x), nil
	}
	if depth < 0 {
		depth = 0
	}
	g := e.spec.G
	inner := make(map[int]bool)
	for _, u := range g.Ball(v, depth) {
		inner[u] = true
	}
	var shell []int
	for _, u := range g.Ball(v, depth+e.ell) {
		if !inner[u] && pinned[u] == dist.Unset {
			shell = append(shell, u)
		}
	}
	sort.Ints(shell)
	ext := pinned.Clone()
	for _, u := range shell {
		done := false
		for x := 0; x < e.spec.Q; x++ {
			ext[u] = x
			if e.eng.LocallyFeasibleAt(ext, u) {
				done = true
				break
			}
		}
		if !done {
			return nil, fmt.Errorf("decay: shell extension stuck at %d: %w", u, gibbs.ErrInfeasible)
		}
	}
	in, err := gibbs.NewInstance(e.spec, ext)
	if err != nil {
		return nil, err
	}
	budget := e.Budget
	if budget <= 0 {
		budget = exact.DefaultBudget
	}
	return exact.BallMarginalBudget(in, v, g.Ball(v, depth+e.ell), budget)
}
