package decay

import (
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
)

func TestBallEstimatorMatchesSAW(t *testing.T) {
	// On the hardcore model the generic ball estimator and the SAW
	// estimator must both converge to the exact marginal.
	g := graph.Cycle(10)
	lambda := 1.2
	spec, err := model.Hardcore(g, lambda)
	if err != nil {
		t.Fatal(err)
	}
	ball, err := NewBallEstimator(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ball.Locality() != 1 {
		t.Fatalf("hardcore locality = %d", ball.Locality())
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exact.Marginal(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ball.Marginal(in.Pinned, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	tv, _ := dist.TV(want, got)
	if tv > 0.01 {
		t.Errorf("ball estimator off by %v", tv)
	}
}

func TestBallEstimatorErrorDecays(t *testing.T) {
	g := graph.Cycle(14)
	spec, err := model.Hardcore(g, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	ball, err := NewBallEstimator(spec)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exact.Marginal(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	prev := 1.0
	for _, depth := range []int{1, 3, 5} {
		got, err := ball.Marginal(in.Pinned, 0, depth)
		if err != nil {
			t.Fatal(err)
		}
		tv, _ := dist.TV(want, got)
		if tv > prev+1e-12 {
			t.Fatalf("error not decaying: %v then %v at depth %d", prev, tv, depth)
		}
		prev = tv
	}
	if prev > 0.01 {
		t.Errorf("depth-5 error %v", prev)
	}
}

// customNoTriple builds a Gibbs distribution outside the shipped model
// catalogue: binary variables on a cycle where no three consecutive
// vertices may all be occupied, with activity λ per occupied vertex. The
// factor scope {i, i+1, i+2} has diameter 2, exercising ℓ > 1. The model is
// locally admissible (all-zeros always completes), so the generic
// machinery applies.
func customNoTriple(t *testing.T, n int, lambda float64) *gibbs.Spec {
	t.Helper()
	g := graph.Cycle(n)
	var factors []gibbs.Factor
	for v := 0; v < n; v++ {
		v := v
		factors = append(factors, gibbs.Factor{
			Scope: []int{v},
			Eval: func(a []int) float64 {
				if a[0] == 1 {
					return lambda
				}
				return 1
			},
		})
		factors = append(factors, gibbs.Factor{
			Scope: []int{v, (v + 1) % n, (v + 2) % n},
			Eval: func(a []int) float64 {
				if a[0] == 1 && a[1] == 1 && a[2] == 1 {
					return 0
				}
				return 1
			},
		})
	}
	spec, err := gibbs.NewSpec(g, 2, factors)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestBallEstimatorCustomModel(t *testing.T) {
	spec := customNoTriple(t, 11, 1.3)
	ball, err := NewBallEstimator(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ball.Locality() != 2 {
		t.Fatalf("no-triple locality = %d, want 2", ball.Locality())
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exact.Marginal(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ball.Marginal(in.Pinned, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	tv, _ := dist.TV(want, got)
	if tv > 0.01 {
		t.Errorf("custom-model ball estimator off by %v (got %v, want %v)", tv, got, want)
	}
	// Pinned vertex returns its point mass.
	pin := dist.NewConfig(11)
	pin[3] = 1
	m, err := ball.Marginal(pin, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m[1] != 1 {
		t.Errorf("pinned = %v", m)
	}
}

func TestBallEstimatorConditional(t *testing.T) {
	spec := customNoTriple(t, 9, 2.0)
	ball, err := NewBallEstimator(spec)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 10; trial++ {
		pin := dist.NewConfig(9)
		// Random locally feasible pinning.
		for v := 0; v < 9; v++ {
			if rng.Intn(3) == 0 {
				pin[v] = rng.Intn(2)
				if !spec.LocallyFeasible(pin) {
					pin[v] = 0
				}
			}
		}
		in, err := gibbs.NewInstance(spec, pin)
		if err != nil {
			t.Fatal(err)
		}
		v := rng.Intn(9)
		if pin[v] != dist.Unset {
			continue
		}
		want, err := exact.Marginal(in, v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ball.Marginal(pin, v, 5)
		if err != nil {
			t.Fatal(err)
		}
		tv, _ := dist.TV(want, got)
		if tv > 0.02 {
			t.Errorf("trial %d: conditional error %v", trial, tv)
		}
	}
}

func TestBallEstimatorValidation(t *testing.T) {
	spec := customNoTriple(t, 7, 1)
	ball, err := NewBallEstimator(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ball.Marginal(dist.NewConfig(7), 99, 2); err == nil {
		t.Error("bad vertex accepted")
	}
	if _, err := ball.Marginal(dist.NewConfig(3), 0, 2); err == nil {
		t.Error("short pinning accepted")
	}
}
