package decay

import (
	"repro/internal/model"
)

// NewHypergraphMatchingEstimator returns a marginal estimator for the
// weighted hypergraph matching model of Song–Yin–Zhao: a hypergraph
// matching is exactly an independent set of the intersection graph of
// hyperedges, so the Weitz SAW-tree estimator for the hardcore model on
// that graph computes hyperedge marginals, with strong spatial mixing
// below λc(r, Δ) (Section 5 of the paper). Variables are hyperedge indices;
// pinned configurations pin hyperedges In (matched) or Out.
func NewHypergraphMatchingEstimator(m *model.HypergraphMatchingModel) (*TwoSpinSAW, error) {
	return NewHardcoreSAW(m.Spec.G, m.Lambda)
}
