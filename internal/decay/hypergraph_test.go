package decay

import (
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
)

func TestHypergraphMatchingEstimatorExact(t *testing.T) {
	// A small 3-uniform hypergraph; full-depth SAW on the intersection
	// graph must reproduce brute-force hyperedge marginals.
	h := graph.NewHypergraph(7)
	for _, e := range [][]int{{0, 1, 2}, {2, 3, 4}, {4, 5, 6}, {1, 3, 5}} {
		if err := h.AddEdge(e...); err != nil {
			t.Fatal(err)
		}
	}
	for _, lambda := range []float64{0.3, 1, 2} {
		m, err := model.HypergraphMatching(h, lambda)
		if err != nil {
			t.Fatal(err)
		}
		est, err := NewHypergraphMatchingEstimator(m)
		if err != nil {
			t.Fatal(err)
		}
		in, err := gibbs.NewInstance(m.Spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < h.M(); e++ {
			want, err := exact.Marginal(in, e)
			if err != nil {
				t.Fatal(err)
			}
			got, err := est.Marginal(in.Pinned, e, m.Spec.N()+1)
			if err != nil {
				t.Fatal(err)
			}
			tv, _ := dist.TV(want, got)
			if tv > 1e-9 {
				t.Fatalf("λ=%v edge %d: est %v, exact %v", lambda, e, got, want)
			}
		}
	}
}

func TestHypergraphMatchingEstimatorConditional(t *testing.T) {
	// Pinning one hyperedge In excludes every intersecting hyperedge.
	h := graph.NewHypergraph(5)
	_ = h.AddEdge(0, 1, 2)
	_ = h.AddEdge(2, 3)
	_ = h.AddEdge(3, 4)
	m, err := model.HypergraphMatching(h, 1)
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewHypergraphMatchingEstimator(m)
	if err != nil {
		t.Fatal(err)
	}
	pin := dist.NewConfig(3)
	pin[0] = model.In
	got, err := est.Marginal(pin, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got[model.In] > 1e-12 {
		t.Errorf("intersecting hyperedge not excluded: %v", got)
	}
	// Non-intersecting hyperedge 2 keeps a nontrivial marginal.
	in, err := gibbs.NewInstance(m.Spec, pin)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exact.Marginal(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := est.Marginal(pin, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	tv, _ := dist.TV(want, got2)
	if tv > 1e-9 {
		t.Fatalf("conditional hyperedge marginal %v, want %v", got2, want)
	}
}

func TestHypergraphMatchingRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 5; trial++ {
		h, err := graph.RandomUniformHypergraph(8, 5, 3, rng)
		if err != nil {
			t.Fatal(err)
		}
		m, err := model.HypergraphMatching(h, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		est, err := NewHypergraphMatchingEstimator(m)
		if err != nil {
			t.Fatal(err)
		}
		in, err := gibbs.NewInstance(m.Spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < h.M(); e++ {
			want, err := exact.Marginal(in, e)
			if err != nil {
				t.Fatal(err)
			}
			got, err := est.Marginal(in.Pinned, e, m.Spec.N()+1)
			if err != nil {
				t.Fatal(err)
			}
			tv, _ := dist.TV(want, got)
			if tv > 1e-9 {
				t.Fatalf("trial %d edge %d: est %v, exact %v", trial, e, got, want)
			}
		}
	}
}
