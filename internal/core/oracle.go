// Package core implements the contributions of Feng & Yin, "On Local
// Distributed Sampling and Counting" (PODC 2018): the equivalence of
// approximate inference and approximate sampling in the LOCAL model
// (Theorems 3.2 and 3.4), the boosting of additive-error inference to
// multiplicative-error inference for local Gibbs distributions (Lemma 4.1),
// the distributed Jerrum–Valiant–Vazirani exact sampler via local rejection
// sampling (Theorem 4.2 / Proposition 4.3), and the equivalence between
// tractability and strong spatial mixing (Theorem 5.1, Corollaries 5.2 and
// 5.3), together with the round-complexity accounting that yields the
// paper's O(log³ n)-style bounds.
package core

import (
	"errors"
	"fmt"

	"repro/internal/decay"
	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
)

// Oracle is a LOCAL approximate-inference oracle: Marginal returns an
// estimate of the conditional marginal µ^τ_v with total variation error at
// most delta, together with the LOCAL radius (round count) the estimate
// consumed. By Proposition 3.3 inference oracles can be assumed
// deterministic and failure-free, which all implementations here are.
type Oracle interface {
	Marginal(in *gibbs.Instance, v int, delta float64) (dist.Dist, int, error)
}

// MultOracle is an approximate-inference oracle with multiplicative error
// guarantee: err(µ̂_v, µ^τ_v) = max_c |ln µ̂_v(c) − ln µ^τ_v(c)| ≤ eps
// (Section 4.1).
type MultOracle interface {
	MarginalMult(in *gibbs.Instance, v int, eps float64) (dist.Dist, int, error)
}

// ErrNoOracle indicates a reduction invoked without the oracle it requires.
var ErrNoOracle = errors.New("core: missing inference oracle")

// DepthEstimator is a truncated computation-tree marginal estimator (the
// shape shared by the Weitz SAW tree, the BGKNT matching recursion and the
// GKM coloring recursion in internal/decay).
type DepthEstimator interface {
	Marginal(pinned dist.Config, v, depth int) (dist.Dist, error)
}

// DecayOracle adapts a correlation-decay estimator with certified
// exponential decay rate Rate (strong spatial mixing with δ_n(t) =
// poly(n)·Rate^t) into both an additive- and a multiplicative-error
// inference oracle. The multiplicative guarantee reflects the fact —
// explained by Corollary 5.2 of the paper — that the known SSM results for
// these models hold with decay in multiplicative error.
type DecayOracle struct {
	// Est is the underlying estimator.
	Est DepthEstimator
	// Rate is the certified decay rate α ∈ [0, 1).
	Rate float64
	// N is the instance size used in the poly(n) prefactor of the decay
	// bound.
	N int
	// MaxDepth optionally caps the truncation depth (0 = no cap). Capping
	// models a round budget; estimates then carry the error of the capped
	// depth.
	MaxDepth int
}

var (
	_ Oracle     = (*DecayOracle)(nil)
	_ MultOracle = (*DecayOracle)(nil)
)

func (o *DecayOracle) depth(delta float64) (int, error) {
	t, err := decay.DepthForError(o.Rate, delta, o.N)
	if err != nil {
		return 0, err
	}
	if o.MaxDepth > 0 && t > o.MaxDepth {
		t = o.MaxDepth
	}
	return t, nil
}

// Marginal implements Oracle.
func (o *DecayOracle) Marginal(in *gibbs.Instance, v int, delta float64) (dist.Dist, int, error) {
	t, err := o.depth(delta)
	if err != nil {
		return nil, 0, err
	}
	d, err := o.Est.Marginal(in.Pinned, v, t)
	if err != nil {
		return nil, 0, err
	}
	return d, t, nil
}

// MarginalMult implements MultOracle.
func (o *DecayOracle) MarginalMult(in *gibbs.Instance, v int, eps float64) (dist.Dist, int, error) {
	return o.Marginal(in, v, eps)
}

// ExactOracle answers inference queries by exhaustive enumeration — the
// zero-error referee used in tests and small experiments. It reads the
// whole graph, so its reported radius is n (consumers such as the JVV
// bridge construction of Claim 4.6 must treat its information ball as the
// entire instance).
type ExactOracle struct {
	// Radius overrides the radius charged per query; 0 charges n (the
	// honest radius of a global computation).
	Radius int
	// Budget caps enumeration size; 0 means exact.DefaultBudget.
	Budget int
}

var (
	_ Oracle     = (*ExactOracle)(nil)
	_ MultOracle = (*ExactOracle)(nil)
)

// Marginal implements Oracle with zero error.
func (o *ExactOracle) Marginal(in *gibbs.Instance, v int, _ float64) (dist.Dist, int, error) {
	budget := o.Budget
	if budget <= 0 {
		budget = exact.DefaultBudget
	}
	d, err := exact.MarginalBudget(in, v, budget)
	if err != nil {
		return nil, 0, err
	}
	r := o.Radius
	if r <= 0 {
		r = in.N()
	}
	return d, r, nil
}

// MarginalMult implements MultOracle with zero error.
func (o *ExactOracle) MarginalMult(in *gibbs.Instance, v int, eps float64) (dist.Dist, int, error) {
	return o.Marginal(in, v, eps)
}

// NoisyOracle wraps an inner oracle and perturbs each returned marginal by
// mixing with the uniform distribution at weight Noise. It is a fault
// injector: tests use it to check that the reductions degrade gracefully
// (and that the JVV acceptance probabilities flag inconsistent oracles).
type NoisyOracle struct {
	Inner Oracle
	// Noise is the mixing weight toward uniform added on top of the
	// requested accuracy.
	Noise float64
}

var _ Oracle = (*NoisyOracle)(nil)

// Marginal implements Oracle with the injected extra error.
func (o *NoisyOracle) Marginal(in *gibbs.Instance, v int, delta float64) (dist.Dist, int, error) {
	d, r, err := o.Inner.Marginal(in, v, delta)
	if err != nil {
		return nil, 0, err
	}
	mixed, err := dist.Mix(d, dist.Uniform(len(d)), o.Noise)
	if err != nil {
		return nil, 0, err
	}
	return mixed, r, nil
}

// oracleSanity validates an oracle result before it is consumed by a
// reduction.
func oracleSanity(d dist.Dist, q int) error {
	if len(d) != q {
		return fmt.Errorf("core: oracle returned %d-symbol marginal for alphabet %d", len(d), q)
	}
	return d.Validate(1e-9)
}
