package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
)

// SSMInference implements the converse direction of Theorem 5.1: for
// locally admissible, local Gibbs distributions exhibiting strong spatial
// mixing with rate δ_n(·), approximate inference at v with total variation
// error δ is computed with radius t + 2ℓ where t = min{t' : δ_n(t') ≤ δ}:
//
//  1. extend τ to a feasible configuration τ' on the shell
//     Γ = B_{t+ℓ}(v) \ (B_t(v) ∪ Λ) — local admissibility makes a greedy,
//     locally feasible extension globally feasible (condition (14));
//  2. return the exact marginal µ^{τ'}_v computed within B_{t+ℓ}(v), which
//     conditional independence (Proposition 2.1) determines from local
//     information.
//
// The coupling argument of the paper bounds d_TV(µ^{τ'}_v, µ^τ_v) ≤ δ_n(t).
func SSMInference(in *gibbs.Instance, v, t int) (dist.Dist, int, error) {
	q := in.Q()
	if x := in.Pinned[v]; x != dist.Unset {
		return dist.Point(q, x), 0, nil
	}
	ell, err := in.Spec.Locality()
	if err != nil {
		return nil, 0, err
	}
	g := in.Spec.G
	inner := make(map[int]bool)
	for _, u := range g.Ball(v, t) {
		inner[u] = true
	}
	var shell []int
	for _, u := range g.Ball(v, t+ell) {
		if !inner[u] && in.Pinned[u] == dist.Unset {
			shell = append(shell, u)
		}
	}
	sort.Ints(shell)
	// Greedy locally feasible extension of τ onto the shell, checked on the
	// compiled engine.
	eng := in.Spec.Compiled()
	ext := in.Pinned.Clone()
	for _, u := range shell {
		done := false
		for x := 0; x < q; x++ {
			ext[u] = x
			if eng.LocallyFeasibleAt(ext, u) {
				done = true
				break
			}
		}
		if !done {
			return nil, 0, fmt.Errorf("core: SSM inference shell extension stuck at %d: %w", u, gibbs.ErrInfeasible)
		}
	}
	extended := in.PinAll(ext)
	marg, err := exact.BallMarginal(extended, v, g.Ball(v, t+ell))
	if err != nil {
		return nil, 0, err
	}
	return marg, t + 2*ell, nil
}

// SSMOracle packages SSMInference as an additive-error Oracle given a
// certified decay rate (δ_n(t) = n·Rate^t). This realizes "SSM ⇒ inference
// is easy" with t(n, δ) = min{t : δ_n(t) ≤ δ} + O(1). The within-ball
// computation enumerates the ball, so it is practical for small radii or
// small alphabets; the model-specific decay oracles are the scalable path.
type SSMOracle struct {
	// Rate is the certified SSM decay rate α.
	Rate float64
	// MaxRadius caps the shell radius (0 = no cap).
	MaxRadius int
}

var _ Oracle = (*SSMOracle)(nil)

// Marginal implements Oracle via SSMInference.
func (o *SSMOracle) Marginal(in *gibbs.Instance, v int, delta float64) (dist.Dist, int, error) {
	if o.Rate >= 1 || o.Rate < 0 {
		return nil, 0, fmt.Errorf("core: SSM oracle rate %v does not certify decay", o.Rate)
	}
	t := 1
	if o.Rate > 0 {
		x := math.Log(delta/float64(in.N())) / math.Log(o.Rate)
		if x > 1 {
			t = int(math.Ceil(x))
		}
	}
	if o.MaxRadius > 0 && t > o.MaxRadius {
		t = o.MaxRadius
	}
	return SSMInference(in, v, t)
}

// SSMPoint is one measurement of decay: the discrepancy at v between two
// boundary conditions that differ at distance Dist from v.
type SSMPoint struct {
	// Dist is distG(v, D), the distance to the disagreement set.
	Dist int
	// TV is d_TV(µ^σ_v, µ^τ_v).
	TV float64
	// Mult is err(µ^σ_v, µ^τ_v) (may be +Inf if supports differ).
	Mult float64
}

// MeasureSSM empirically measures strong spatial mixing for the instance's
// distribution at vertex v (Definition 5.1, and the forward direction of
// Theorem 5.1): for every distance t = 1..maxDist it pins the sphere at
// distance exactly t from v with every pair drawn from `boundaries`
// (functions producing feasible sphere configurations) and records the
// worst-case discrepancy of the exact conditional marginals at v.
//
// boundaries receives the sorted sphere vertex list and must return a
// feasible configuration on it (entries outside the sphere are ignored).
func MeasureSSM(in *gibbs.Instance, v, maxDist int, boundaries []func(sphere []int) dist.Config) ([]SSMPoint, error) {
	if len(boundaries) < 2 {
		return nil, errors.New("core: MeasureSSM needs at least two boundary conditions")
	}
	g := in.Spec.G
	distFromV := g.BFSDistances(v)
	var points []SSMPoint
	for t := 1; t <= maxDist; t++ {
		var sphere []int
		for u := 0; u < g.N(); u++ {
			if distFromV[u] == t && in.Pinned[u] == dist.Unset {
				sphere = append(sphere, u)
			}
		}
		if len(sphere) == 0 {
			continue
		}
		// Collect the conditional marginals for every boundary condition
		// that is feasible.
		var margs []dist.Dist
		for _, b := range boundaries {
			bc := b(sphere)
			pin := in.Pinned.Clone()
			ok := true
			for _, u := range sphere {
				if bc[u] == dist.Unset {
					ok = false
					break
				}
				pin[u] = bc[u]
			}
			if !ok {
				continue
			}
			cond := in.PinAll(pin)
			if !cond.LocallyFeasible() {
				continue
			}
			feas, err := exact.IsFeasible(cond)
			if err != nil {
				return nil, err
			}
			if !feas {
				continue
			}
			m, err := exact.Marginal(cond, v)
			if err != nil {
				return nil, err
			}
			margs = append(margs, m)
		}
		if len(margs) < 2 {
			continue
		}
		worstTV, worstMult := 0.0, 0.0
		for i := 0; i < len(margs); i++ {
			for j := i + 1; j < len(margs); j++ {
				tv, err := dist.TV(margs[i], margs[j])
				if err != nil {
					return nil, err
				}
				me, err := dist.MultErr(margs[i], margs[j])
				if err != nil {
					return nil, err
				}
				if tv > worstTV {
					worstTV = tv
				}
				if me > worstMult {
					worstMult = me
				}
			}
		}
		points = append(points, SSMPoint{Dist: t, TV: worstTV, Mult: worstMult})
	}
	return points, nil
}

// FitDecayRate fits an exponential decay rate α to measured SSM points by
// least squares on log values (ignoring zero/Inf entries and the useTV
// selector picks TV vs multiplicative error). It returns the fitted α and
// the number of usable points; fewer than two usable points yields α = 0.
func FitDecayRate(points []SSMPoint, useTV bool) (float64, int) {
	var xs, ys []float64
	for _, p := range points {
		val := p.TV
		if !useTV {
			val = p.Mult
		}
		if val <= 0 || math.IsInf(val, 0) || math.IsNaN(val) {
			continue
		}
		xs = append(xs, float64(p.Dist))
		ys = append(ys, math.Log(val))
	}
	if len(xs) < 2 {
		return 0, len(xs)
	}
	// Least-squares slope of ln(val) against distance.
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0, len(xs)
	}
	slope := (n*sxy - sx*sy) / denom
	alpha := math.Exp(slope)
	if alpha > 1 {
		alpha = 1
	}
	return alpha, len(xs)
}

// InferenceImpliesSSM computes the forward direction of Theorem 5.1 as a
// bound: an inference algorithm with radius function t(n, δ) certifies SSM
// with rate δ_n(t) = 2·min{δ : t(n, δ) ≤ t − 1}. For decay oracles with
// radius t(n, δ) = ceil(log_α(δ/n)) this inverts to δ_n(t) = 2n·α^(t−1).
func InferenceImpliesSSM(alpha float64, n, t int) float64 {
	if t <= 1 {
		return 1
	}
	return math.Min(1, 2*float64(n)*math.Pow(alpha, float64(t-1)))
}
