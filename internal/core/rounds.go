package core

import (
	"fmt"
	"math"
)

// RoundBounds collects the paper's round-complexity accounting for a model
// with certified SSM decay rate α on n nodes (Corollary 5.3 and the
// application list of Section 5).
type RoundBounds struct {
	// N is the instance size.
	N int
	// Alpha is the SSM decay rate.
	Alpha float64
	// InferenceRadius is t(n, δ) for the stated δ.
	InferenceRadius int
	// Delta is the inference accuracy the radius was computed for.
	Delta float64
	// JVVLocality is the single-pass SLOCAL locality of local-JVV, 9t + 2ℓ.
	JVVLocality int
	// ExactSamplingRounds is the end-to-end LOCAL bound
	// O(1/(1−α) · log³ n) of Corollary 5.3.
	ExactSamplingRounds int
}

// BoundsForExactSampling computes the Corollary 5.3 accounting: the JVV
// sampler needs multiplicative error 1/n³, which via the boosting lemma
// needs additive error 1/(5qn⁴); with rate α the inference radius is
// t = O(log(n)/(1−α)); three passes give SLOCAL locality O(t) and the
// network decomposition multiplies by O(log² n).
func BoundsForExactSampling(n, q, ell int, alpha float64) (*RoundBounds, error) {
	if alpha < 0 || alpha >= 1 {
		return nil, fmt.Errorf("core: decay rate %v outside [0,1)", alpha)
	}
	if n < 1 {
		return nil, fmt.Errorf("core: n must be positive")
	}
	delta := 1 / (5 * float64(q) * math.Pow(float64(n), 4))
	t := 1
	if alpha > 0 {
		t = int(math.Ceil(math.Log(delta/float64(n)) / math.Log(alpha)))
		if t < 1 {
			t = 1
		}
	}
	logn := math.Log2(float64(n + 1))
	rounds := int(math.Ceil(float64(9*t+2*ell) * logn * logn))
	return &RoundBounds{
		N:                   n,
		Alpha:               alpha,
		InferenceRadius:     t,
		Delta:               delta,
		JVVLocality:         9*t + 2*ell,
		ExactSamplingRounds: rounds,
	}, nil
}

// TheoreticalLog3N returns c · log³ n for shape comparisons in the
// experiment harness.
func TheoreticalLog3N(n int, c float64) float64 {
	l := math.Log2(float64(n + 1))
	return c * l * l * l
}
