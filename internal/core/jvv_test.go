package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/decay"
	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/slocal"
)

// jvvExactnessCheck runs LocalJVV many times and compares the
// conditioned-on-acceptance empirical distribution against brute-force
// ground truth.
func jvvExactnessCheck(t *testing.T, in *gibbs.Instance, o MultOracle, cfg JVVConfig, trials int, tol float64, seed int64) {
	t.Helper()
	truth, err := exact.JointDistribution(in)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	emp := dist.NewEmpirical(in.N())
	accepted := 0
	minQ := 1.0
	for i := 0; i < trials; i++ {
		res, err := LocalJVV(in, o, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range res.AcceptProbs {
			if q < minQ {
				minQ = q
			}
		}
		if !res.Accepted() {
			continue
		}
		accepted++
		emp.Observe(res.Config)
	}
	if accepted == 0 {
		t.Fatal("JVV never accepted")
	}
	// Per-node acceptance obeys Claim 4.7 up to the oracle's slack:
	// q ≥ e^{−5/n²}.
	n := float64(in.N())
	if lower := math.Exp(-5 / (n * n)); minQ < lower-1e-6 {
		t.Errorf("acceptance probability %v below theoretical bound %v", minQ, lower)
	}
	// Overall acceptance is Π q ≈ e^{−3/n} (Lemma 4.8's 1 − O(1/n); the
	// constant matters at these small n). Allow statistical slack below it.
	accRate := float64(accepted) / float64(trials)
	if want := math.Exp(-5 / n); accRate < 0.85*want {
		t.Errorf("acceptance rate %v below 0.85·e^{-5/n} = %v", accRate, 0.85*want)
	}
	got, err := emp.Joint()
	if err != nil {
		t.Fatal(err)
	}
	tv, err := dist.TVJoint(truth, got)
	if err != nil {
		t.Fatal(err)
	}
	if tv > tol {
		t.Errorf("JVV conditional distribution TV = %v > %v (accepted %d)", tv, tol, accepted)
	}
}

func TestJVVExactnessHardcoreCycleExactOracle(t *testing.T) {
	g := graph.Cycle(5)
	in := hardcoreInstance(t, g, 1.5, nil)
	jvvExactnessCheck(t, in, &ExactOracle{}, JVVConfig{FullRatio: true}, 30000, 0.02, 71)
}

func TestJVVExactnessHardcoreDecayOracle(t *testing.T) {
	// The real pipeline: SAW-tree multiplicative oracle. With eps = 1/n³
	// the conditional output is exact up to a vanishing bias; statistically
	// indistinguishable at these sample sizes.
	g := graph.Cycle(6)
	lambda := 1.0
	in := hardcoreInstance(t, g, lambda, nil)
	o := sawOracle(t, g, lambda)
	jvvExactnessCheck(t, in, o, JVVConfig{}, 30000, 0.02, 72)
}

func TestJVVExactnessWithPinning(t *testing.T) {
	// Self-reducibility: exactness holds for conditioned instances too.
	g := graph.Path(5)
	pin := dist.Config{1, dist.Unset, dist.Unset, dist.Unset, 0}
	in := hardcoreInstance(t, g, 2, pin)
	jvvExactnessCheck(t, in, &ExactOracle{}, JVVConfig{FullRatio: true}, 20000, 0.02, 73)
}

func TestJVVExactnessColoring(t *testing.T) {
	// A different locally admissible model: 3-colorings of C4 (18 of them).
	s, err := model.Coloring(graph.Cycle(4), 3)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	jvvExactnessCheck(t, in, &ExactOracle{}, JVVConfig{FullRatio: true}, 30000, 0.03, 74)
}

func TestJVVExactnessIsing(t *testing.T) {
	s, err := model.Ising(graph.Cycle(5), 0.6, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	jvvExactnessCheck(t, in, &ExactOracle{}, JVVConfig{FullRatio: true}, 30000, 0.02, 75)
}

func TestJVVEnumerateCompletionAgrees(t *testing.T) {
	// The general completion strategy must also be exact.
	g := graph.Cycle(4)
	in := hardcoreInstance(t, g, 1.2, nil)
	jvvExactnessCheck(t, in, &ExactOracle{},
		JVVConfig{FullRatio: true, BallCompletion: CompleteEnumerate}, 20000, 0.025, 76)
}

func TestJVVAdversarialOrders(t *testing.T) {
	g := graph.Path(5)
	in := hardcoreInstance(t, g, 1.8, nil)
	rng := rand.New(rand.NewSource(77))
	for _, order := range [][]int{
		slocal.ReverseOrder(5),
		slocal.BoundaryFirstOrder(g),
		slocal.RandomOrder(5, rng),
	} {
		jvvExactnessCheck(t, in, &ExactOracle{},
			JVVConfig{FullRatio: true, Order: order}, 15000, 0.03, 78)
	}
}

func TestJVVGroundStateFeasible(t *testing.T) {
	g := graph.Grid(3, 3)
	in := hardcoreInstance(t, g, 1, nil)
	rng := rand.New(rand.NewSource(79))
	res, err := LocalJVV(in, &ExactOracle{}, JVVConfig{FullRatio: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	w, err := in.Spec.Weight(res.GroundState)
	if err != nil || w <= 0 {
		t.Errorf("ground state infeasible: w=%v err=%v", w, err)
	}
	w, err = in.Spec.Weight(res.Config)
	if err != nil || w <= 0 {
		t.Errorf("candidate infeasible: w=%v err=%v", w, err)
	}
	if res.Locality <= 0 {
		t.Errorf("locality = %d", res.Locality)
	}
}

func TestJVVAcceptProbBounds(t *testing.T) {
	// Claim 4.7: e^{−5/n²} ≤ q ≤ 1 with a true multiplicative oracle.
	g := graph.Cycle(8)
	lambda := 0.7
	in := hardcoreInstance(t, g, lambda, nil)
	o := sawOracle(t, g, lambda)
	rng := rand.New(rand.NewSource(80))
	n := float64(in.N())
	for i := 0; i < 50; i++ {
		res, err := LocalJVV(in, o, JVVConfig{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		for v, q := range res.AcceptProbs {
			if q < math.Exp(-5/n)-1e-6 || q > 1 {
				t.Fatalf("q_%d = %v outside [e^{-5/n}, 1]", v, q)
			}
		}
	}
}

func TestJVVFailureRateSmall(t *testing.T) {
	// Lemma 4.8: failure probability O(1/n).
	g := graph.Cycle(8)
	in := hardcoreInstance(t, g, 1, nil)
	o := sawOracle(t, g, 1)
	rng := rand.New(rand.NewSource(81))
	failures := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		res, err := LocalJVV(in, o, JVVConfig{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted() {
			failures++
		}
	}
	// e^{-5/n} ≈ 0.53 failure mass bound is loose; in practice with
	// accurate oracles the rate is tiny. Assert well below 5/n.
	if rate := float64(failures) / trials; rate > 5/float64(g.N()) {
		t.Errorf("failure rate %v exceeds 5/n", rate)
	}
}

func TestJVVEmptyAndTrivialInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	// Fully pinned instance: nothing to sample, always accepted.
	g := graph.Path(2)
	in := hardcoreInstance(t, g, 1, dist.Config{0, 1})
	res, err := LocalJVV(in, &ExactOracle{}, JVVConfig{FullRatio: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted() {
		t.Error("fully pinned instance rejected")
	}
	if res.Config[0] != 0 || res.Config[1] != 1 {
		t.Errorf("pinned output = %v", res.Config)
	}
}

func TestJVVNilOracle(t *testing.T) {
	g := graph.Path(2)
	in := hardcoreInstance(t, g, 1, nil)
	if _, err := LocalJVV(in, nil, JVVConfig{}, rand.New(rand.NewSource(83))); err == nil {
		t.Error("nil oracle accepted")
	}
}

func TestJVVLOCALEndToEnd(t *testing.T) {
	// Theorem 4.2 end to end: decomposition-scheduled JVV with combined
	// failure bits and round accounting.
	g := graph.Cycle(10)
	lambda := 0.8
	in := hardcoreInstance(t, g, lambda, nil)
	o := sawOracle(t, g, lambda)
	rng := rand.New(rand.NewSource(84))
	res, rounds, err := JVVLOCAL(in, o, JVVConfig{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rounds <= 0 {
		t.Errorf("rounds = %d", rounds)
	}
	if len(res.Failed) != g.N() {
		t.Errorf("failure vector length %d", len(res.Failed))
	}
	w, err := in.Spec.Weight(res.Config)
	if err != nil || w <= 0 {
		t.Errorf("JVVLOCAL output infeasible: %v %v", w, err)
	}
	// Statistical exactness of the scheduled variant on a marginal.
	truth, err := exact.Marginal(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	hits, total := 0, 0
	const trials = 3000
	for i := 0; i < trials; i++ {
		r, _, err := JVVLOCAL(in, o, JVVConfig{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Accepted() {
			continue
		}
		total++
		if r.Config[0] == model.In {
			hits++
		}
	}
	got := float64(hits) / float64(total)
	if math.Abs(got-truth[model.In]) > 0.035 {
		t.Errorf("JVVLOCAL marginal = %v, want %v", got, truth[model.In])
	}
}

func TestJVVMatchingModel(t *testing.T) {
	// Edge-model exactness through the line-graph duality, with the BGKNT
	// oracle.
	g := graph.Cycle(5)
	lambda := 1.5
	m, err := model.Matching(g, lambda)
	if err != nil {
		t.Fatal(err)
	}
	est := decayMatchingOracle(t, m)
	in, err := gibbs.NewInstance(m.Spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	jvvExactnessCheck(t, in, est, JVVConfig{}, 30000, 0.025, 85)
}

func decayMatchingOracle(t testing.TB, m *model.MatchingModel) *DecayOracle {
	t.Helper()
	// Note: the decay oracle wraps the matching estimator; rate from BGKNT.
	rate := model.MatchingDecayRate(m.Lambda, m.Base.MaxDegree())
	return &DecayOracle{Est: matchingAdapter{m}, Rate: rate, N: m.Spec.N()}
}

// matchingAdapter adapts decay.MatchingEstimator to the DepthEstimator
// interface shape used by DecayOracle.
type matchingAdapter struct {
	m *model.MatchingModel
}

func (a matchingAdapter) Marginal(pinned dist.Config, v, depth int) (dist.Dist, error) {
	return decay.NewMatchingEstimator(a.m).Marginal(pinned, v, depth)
}
