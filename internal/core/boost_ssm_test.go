package core

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
)

func TestBoostAchievesMultiplicativeError(t *testing.T) {
	// Lemma 4.1: boosting an additive-error oracle yields multiplicative
	// error ε.
	g := graph.Cycle(10)
	lambda := 1.0
	in := hardcoreInstance(t, g, lambda, nil)
	o := sawOracle(t, g, lambda)
	for _, eps := range []float64{0.5, 0.1} {
		res, err := Boost(in, o, 0, eps)
		if err != nil {
			t.Fatal(err)
		}
		want, err := exact.Marginal(in, 0)
		if err != nil {
			t.Fatal(err)
		}
		me, err := dist.MultErr(res.Marginal, want)
		if err != nil {
			t.Fatal(err)
		}
		if me > eps {
			t.Errorf("eps=%v: multiplicative error %v exceeds bound", eps, me)
		}
		if res.Radius <= 0 {
			t.Errorf("radius = %d", res.Radius)
		}
	}
}

func TestBoostPinnedVertex(t *testing.T) {
	g := graph.Path(4)
	pin := dist.Config{1, dist.Unset, dist.Unset, dist.Unset}
	in := hardcoreInstance(t, g, 1, pin)
	o := sawOracle(t, g, 1)
	res, err := Boost(in, o, 0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Marginal[1] != 1 {
		t.Errorf("pinned boost marginal = %v", res.Marginal)
	}
}

func TestBoostConditionalInstance(t *testing.T) {
	// Boost must respect existing pinnings (self-reducibility).
	g := graph.Cycle(8)
	pin := dist.NewConfig(8)
	pin[4] = model.In
	in := hardcoreInstance(t, g, 1.2, pin)
	o := sawOracle(t, g, 1.2)
	res, err := Boost(in, o, 0, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exact.Marginal(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	me, err := dist.MultErr(res.Marginal, want)
	if err != nil {
		t.Fatal(err)
	}
	if me > 0.2 {
		t.Errorf("conditional boost error %v", me)
	}
}

func TestBoostInputValidation(t *testing.T) {
	g := graph.Path(3)
	in := hardcoreInstance(t, g, 1, nil)
	o := sawOracle(t, g, 1)
	if _, err := Boost(in, nil, 0, 0.1); err == nil {
		t.Error("nil oracle accepted")
	}
	if _, err := Boost(in, o, 0, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := Boost(in, o, 0, 1.5); err == nil {
		t.Error("eps>1 accepted")
	}
}

func TestBoostOracleFeedsJVV(t *testing.T) {
	// The Theorem 4.2 composition: additive decay oracle → boosting →
	// multiplicative oracle → local JVV, statistically exact.
	g := graph.Cycle(5)
	lambda := 0.8
	in := hardcoreInstance(t, g, lambda, nil)
	add := sawOracle(t, g, lambda)
	mult := &BoostOracle{Additive: add}
	// Modest eps keeps the boosting shell radius small enough for the
	// within-ball enumeration at test sizes.
	jvvExactnessCheck(t, in, mult, JVVConfig{Eps: 0.01, FullRatio: true}, 8000, 0.04, 91)
}

func TestSSMInferenceAccuracy(t *testing.T) {
	// Theorem 5.1 converse: shell pinning + within-ball exact marginal is
	// within δ_n(t) of the truth.
	g := graph.Cycle(12)
	lambda := 1.0
	in := hardcoreInstance(t, g, lambda, nil)
	want, err := exact.Marginal(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = math.Inf(1)
	for _, radius := range []int{1, 2, 4} {
		got, used, err := SSMInference(in, 0, radius)
		if err != nil {
			t.Fatal(err)
		}
		if used < radius {
			t.Errorf("used radius %d < %d", used, radius)
		}
		tv, _ := dist.TV(got, want)
		if tv > prev+1e-9 {
			t.Errorf("SSM inference error not shrinking: %v then %v", prev, tv)
		}
		prev = tv
	}
	if prev > 0.05 {
		t.Errorf("radius-4 SSM inference error %v", prev)
	}
}

func TestSSMInferencePinnedVertex(t *testing.T) {
	g := graph.Path(5)
	pin := dist.Config{dist.Unset, dist.Unset, 1, dist.Unset, dist.Unset}
	in := hardcoreInstance(t, g, 1, pin)
	got, _, err := SSMInference(in, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != 1 {
		t.Errorf("pinned SSM marginal = %v", got)
	}
}

func TestSSMOracle(t *testing.T) {
	g := graph.Cycle(10)
	lambda := 0.9
	in := hardcoreInstance(t, g, lambda, nil)
	rate := model.HardcoreDecayRate(lambda, 2)
	o := &SSMOracle{Rate: rate, MaxRadius: 4}
	got, radius, err := o.Marginal(in, 3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exact.Marginal(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	tv, _ := dist.TV(got, want)
	if tv > 0.05 {
		t.Errorf("SSM oracle error %v (radius %d)", tv, radius)
	}
	bad := &SSMOracle{Rate: 1.5}
	if _, _, err := bad.Marginal(in, 0, 0.1); err == nil {
		t.Error("non-decaying rate accepted")
	}
}

func TestMeasureSSMHardcoreUniqueness(t *testing.T) {
	// In the uniqueness regime the measured discrepancy must decay with
	// distance; the fitted rate certifies exponential decay.
	g := graph.Path(13)
	lambda := 1.0 // Δ=2: always unique
	in := hardcoreInstance(t, g, lambda, nil)
	v := 6
	boundaries := []func([]int) dist.Config{
		func(sphere []int) dist.Config {
			c := dist.NewConfig(13)
			for _, u := range sphere {
				c[u] = model.Out
			}
			return c
		},
		func(sphere []int) dist.Config {
			c := dist.NewConfig(13)
			for _, u := range sphere {
				c[u] = model.In
			}
			return c
		},
	}
	points, err := MeasureSSM(in, v, 6, boundaries)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 4 {
		t.Fatalf("too few SSM points: %v", points)
	}
	for i := 1; i < len(points); i++ {
		if points[i].TV > points[i-1].TV+1e-9 {
			t.Errorf("TV not decaying: %v", points)
		}
	}
	alpha, used := FitDecayRate(points, true)
	if used < 3 {
		t.Fatalf("fit used only %d points", used)
	}
	if alpha <= 0 || alpha >= 1 {
		t.Errorf("fitted rate %v not certifying decay", alpha)
	}
	// Corollary 5.2: multiplicative error decays at the same rate.
	alphaMult, usedMult := FitDecayRate(points, false)
	if usedMult >= 3 && math.Abs(alphaMult-alpha) > 0.25 {
		t.Errorf("TV rate %v and multiplicative rate %v diverge", alpha, alphaMult)
	}
}

func TestMeasureSSMNeedsTwoBoundaries(t *testing.T) {
	g := graph.Path(5)
	in := hardcoreInstance(t, g, 1, nil)
	if _, err := MeasureSSM(in, 2, 2, nil); err == nil {
		t.Error("no boundaries accepted")
	}
}

func TestInferenceImpliesSSMBound(t *testing.T) {
	// δ_n(t) = 2n·α^{t−1} decreases in t and is ≤ 1.
	prev := 2.0
	for tt := 1; tt <= 30; tt++ {
		d := InferenceImpliesSSM(0.7, 100, tt)
		if d > prev+1e-12 {
			t.Fatalf("bound not monotone at t=%d", tt)
		}
		if d > 1 {
			t.Fatalf("bound exceeds 1")
		}
		prev = d
	}
	if InferenceImpliesSSM(0.7, 100, 200) > 1e-20 {
		t.Error("bound should vanish at large t")
	}
}

func TestBoundsForExactSampling(t *testing.T) {
	b, err := BoundsForExactSampling(1024, 2, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if b.InferenceRadius <= 0 || b.ExactSamplingRounds <= 0 {
		t.Errorf("degenerate bounds: %+v", b)
	}
	if b.JVVLocality != 9*b.InferenceRadius+2 {
		t.Errorf("locality accounting wrong: %+v", b)
	}
	// Rounds grow polylogarithmically: n → n² should grow by a constant
	// factor, far from linearly.
	b2, err := BoundsForExactSampling(1024*1024, 2, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	growth := float64(b2.ExactSamplingRounds) / float64(b.ExactSamplingRounds)
	if growth > 20 {
		t.Errorf("rounds grew by %vx for n², not polylog", growth)
	}
	if _, err := BoundsForExactSampling(10, 2, 1, 1.0); err == nil {
		t.Error("rate 1 accepted")
	}
	if _, err := BoundsForExactSampling(0, 2, 1, 0.5); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestTheoreticalLog3N(t *testing.T) {
	if TheoreticalLog3N(1, 1) <= 0 {
		t.Error("nonpositive log³")
	}
	if TheoreticalLog3N(1000, 1) <= TheoreticalLog3N(10, 1) {
		t.Error("log³ not increasing")
	}
}

func TestBoostShellIsOutsideInnerBall(t *testing.T) {
	g := graph.Cycle(16)
	lambda := 0.5
	in := hardcoreInstance(t, g, lambda, nil)
	o := sawOracle(t, g, lambda)
	res, err := Boost(in, o, 0, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	// The shell must not intersect the inner ball of radius t where
	// t = radius of the additive oracle at ε/(5qn): reconstruct t from
	// the reported 2t+ℓ.
	ell := 1
	tRadius := (res.Radius - ell) / 2
	for _, u := range res.Shell {
		if d := g.Dist(0, u); d <= tRadius {
			t.Errorf("shell vertex %d at distance %d inside inner ball (t=%d)", u, d, tRadius)
		}
	}
	for v, x := range res.ShellPins {
		inShell := false
		for _, u := range res.Shell {
			if u == v {
				inShell = true
			}
		}
		if x != dist.Unset && !inShell {
			t.Errorf("pin outside shell at %d", v)
		}
	}
}

// Referenced helper kept close to the SSM tests: the gibbs import is used
// by several subtests through hardcoreInstance.
var _ = gibbs.ErrInfeasible
