package core

import (
	"testing"

	"repro/internal/decay"
	"repro/internal/gibbs"
	"repro/internal/graph"
)

// noTripleSpec builds a Gibbs distribution outside the model catalogue
// (binary variables on a cycle, no three consecutive occupied, activity λ;
// factor diameter ℓ = 2) to demonstrate that the JVV sampler works for
// arbitrary locally admissible local Gibbs distributions through the
// generic ball estimator — the full generality Theorem 4.2 claims.
func noTripleSpec(t testing.TB, n int, lambda float64) *gibbs.Spec {
	t.Helper()
	g := graph.Cycle(n)
	var factors []gibbs.Factor
	for v := 0; v < n; v++ {
		factors = append(factors, gibbs.Factor{
			Scope: []int{v},
			Eval: func(a []int) float64 {
				if a[0] == 1 {
					return lambda
				}
				return 1
			},
		})
		factors = append(factors, gibbs.Factor{
			Scope: []int{v, (v + 1) % n, (v + 2) % n},
			Eval: func(a []int) float64 {
				if a[0] == 1 && a[1] == 1 && a[2] == 1 {
					return 0
				}
				return 1
			},
		})
	}
	spec, err := gibbs.NewSpec(g, 2, factors)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestJVVGenericModelViaBallEstimator(t *testing.T) {
	// The complete generic pipeline: custom constraint model → generic
	// ball estimator → DecayOracle → LocalJVV; conditioned-on-acceptance
	// output must be exactly the Gibbs measure.
	spec := noTripleSpec(t, 8, 1.5)
	ball, err := decay.NewBallEstimator(spec)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The chain contracts comfortably on a cycle; 0.6 is a safe certified
	// rate for this activity. No depth cap: a capped oracle violates its
	// multiplicative contract, and the clamped acceptance probabilities
	// would bias the output (exactly the failure mode the fault-injection
	// tests exercise).
	o := &DecayOracle{Est: ball, Rate: 0.6, N: spec.N()}
	jvvExactnessCheck(t, in, o, JVVConfig{}, 15000, 0.06, 97)
}

func TestSSMInferenceGenericModel(t *testing.T) {
	// Theorem 5.1's converse on the custom model: radius-t inference
	// converges to the exact marginal.
	spec := noTripleSpec(t, 10, 1.0)
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, radius, err := SSMInference(in, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if radius < 4 {
		t.Errorf("radius %d < requested", radius)
	}
	o := &ExactOracle{}
	want, _, err := o.Marginal(in, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	tv := 0.0
	for c := range got {
		d := got[c] - want[c]
		if d < 0 {
			d = -d
		}
		tv += d
	}
	if tv/2 > 0.02 {
		t.Errorf("generic SSM inference off by %v", tv/2)
	}
}
