package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/decay"
	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/slocal"
)

func hardcoreInstance(t testing.TB, g *graph.Graph, lambda float64, pinned dist.Config) *gibbs.Instance {
	t.Helper()
	s, err := model.Hardcore(g, lambda)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(s, pinned)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func sawOracle(t testing.TB, g *graph.Graph, lambda float64) *DecayOracle {
	t.Helper()
	est, err := decay.NewHardcoreSAW(g, lambda)
	if err != nil {
		t.Fatal(err)
	}
	rate := model.HardcoreDecayRate(lambda, g.MaxDegree())
	if rate >= 1 {
		t.Fatalf("test model not in uniqueness regime: λ=%v Δ=%d", lambda, g.MaxDegree())
	}
	return &DecayOracle{Est: est, Rate: rate, N: g.N()}
}

func TestDecayOracleAccuracy(t *testing.T) {
	g := graph.Cycle(10)
	lambda := 1.0
	in := hardcoreInstance(t, g, lambda, nil)
	o := sawOracle(t, g, lambda)
	for _, delta := range []float64{0.1, 0.01, 1e-4} {
		got, radius, err := o.Marginal(in, 0, delta)
		if err != nil {
			t.Fatal(err)
		}
		want, err := exact.Marginal(in, 0)
		if err != nil {
			t.Fatal(err)
		}
		tv, _ := dist.TV(got, want)
		if tv > delta {
			t.Errorf("delta=%v: error %v exceeds bound (radius %d)", delta, tv, radius)
		}
	}
}

func TestDecayOracleRadiusGrowsWithAccuracy(t *testing.T) {
	g := graph.Cycle(10)
	o := sawOracle(t, g, 1.0)
	in := hardcoreInstance(t, g, 1.0, nil)
	_, r1, err := o.Marginal(in, 0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	_, r2, err := o.Marginal(in, 0, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if r2 <= r1 {
		t.Errorf("radius should grow: %d vs %d", r1, r2)
	}
}

func TestSequentialSampleExactOracle(t *testing.T) {
	// With the exact oracle the sequential sampler is a perfect sampler;
	// verify its empirical joint distribution against ground truth.
	g := graph.Cycle(5)
	in := hardcoreInstance(t, g, 1.5, nil)
	truth, err := exact.JointDistribution(in)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	emp := dist.NewEmpirical(5)
	const trials = 30000
	order := slocal.IdentityOrder(5)
	for i := 0; i < trials; i++ {
		cfg, _, err := SequentialSample(in, &ExactOracle{}, order, 0.001, rng)
		if err != nil {
			t.Fatal(err)
		}
		emp.Observe(cfg)
	}
	got, err := emp.Joint()
	if err != nil {
		t.Fatal(err)
	}
	tv, err := dist.TVJoint(truth, got)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.02 {
		t.Errorf("sequential sampler TV = %v", tv)
	}
}

func TestSequentialSampleAllOrders(t *testing.T) {
	// Theorem 3.2 holds for every ordering; check a marginal statistic on
	// several adversarial orderings.
	g := graph.Path(6)
	in := hardcoreInstance(t, g, 2, nil)
	truthMarg, err := exact.Marginal(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(62))
	orders := [][]int{
		slocal.IdentityOrder(6),
		slocal.ReverseOrder(6),
		slocal.RandomOrder(6, rng),
		slocal.BoundaryFirstOrder(g),
	}
	const trials = 20000
	for oi, order := range orders {
		hits := 0
		for i := 0; i < trials; i++ {
			cfg, _, err := SequentialSample(in, &ExactOracle{}, order, 0.001, rng)
			if err != nil {
				t.Fatal(err)
			}
			if cfg[3] == model.In {
				hits++
			}
		}
		got := float64(hits) / trials
		if math.Abs(got-truthMarg[model.In]) > 0.02 {
			t.Errorf("order %d: P[v3 occupied] = %v, want %v", oi, got, truthMarg[model.In])
		}
	}
}

func TestSequentialSampleDecayOracleTV(t *testing.T) {
	// With the SAW decay oracle at error δ the joint output must be within
	// δ (plus sampling noise) of the target.
	g := graph.Cycle(6)
	lambda := 0.8
	in := hardcoreInstance(t, g, lambda, nil)
	o := sawOracle(t, g, lambda)
	truth, err := exact.JointDistribution(in)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(63))
	emp := dist.NewEmpirical(6)
	const trials = 30000
	order := slocal.IdentityOrder(6)
	for i := 0; i < trials; i++ {
		cfg, _, err := SequentialSample(in, o, order, 0.01, rng)
		if err != nil {
			t.Fatal(err)
		}
		emp.Observe(cfg)
	}
	got, err := emp.Joint()
	if err != nil {
		t.Fatal(err)
	}
	tv, err := dist.TVJoint(truth, got)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.01+0.02 {
		t.Errorf("decay-oracle sampler TV = %v", tv)
	}
}

func TestSequentialSampleRespectsPinning(t *testing.T) {
	g := graph.Path(4)
	pin := dist.Config{1, dist.Unset, dist.Unset, 0}
	in := hardcoreInstance(t, g, 1, pin)
	rng := rand.New(rand.NewSource(64))
	cfg, _, err := SequentialSample(in, &ExactOracle{}, slocal.IdentityOrder(4), 0.01, rng)
	if err != nil {
		t.Fatal(err)
	}
	if cfg[0] != 1 || cfg[3] != 0 {
		t.Errorf("pinning violated: %v", cfg)
	}
	if cfg[1] == 1 {
		t.Errorf("neighbor of pinned occupied vertex occupied: %v", cfg)
	}
}

func TestSequentialSampleErrors(t *testing.T) {
	g := graph.Path(3)
	in := hardcoreInstance(t, g, 1, nil)
	rng := rand.New(rand.NewSource(65))
	if _, _, err := SequentialSample(in, nil, slocal.IdentityOrder(3), 0.1, rng); err == nil {
		t.Error("nil oracle accepted")
	}
	if _, _, err := SequentialSample(in, &ExactOracle{}, []int{0, 0, 1}, 0.1, rng); err == nil {
		t.Error("bad order accepted")
	}
	if _, _, err := SequentialSample(in, &ExactOracle{}, slocal.IdentityOrder(3), 0, rng); err == nil {
		t.Error("zero delta accepted")
	}
}

func TestSampleLOCALEndToEnd(t *testing.T) {
	// Theorem 3.2 end to end: decomposition + chromatic schedule + scan.
	g := graph.Cycle(12)
	lambda := 0.9
	in := hardcoreInstance(t, g, lambda, nil)
	o := sawOracle(t, g, lambda)
	rng := rand.New(rand.NewSource(66))
	res, err := SampleLOCAL(in, o, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Config.IsTotal() {
		t.Fatal("partial output")
	}
	w, err := in.Spec.Weight(res.Config)
	if err != nil || w <= 0 {
		t.Errorf("infeasible sample: w=%v err=%v", w, err)
	}
	if res.Rounds <= 0 {
		t.Errorf("rounds = %d", res.Rounds)
	}
	// Statistical check on a marginal.
	truth, err := exact.Marginal(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	hits, total := 0, 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		r, err := SampleLOCAL(in, o, 0.05, rng)
		if err != nil {
			t.Fatal(err)
		}
		if r.FailureCount() > 0 {
			continue
		}
		total++
		if r.Config[0] == model.In {
			hits++
		}
	}
	got := float64(hits) / float64(total)
	if math.Abs(got-truth[model.In]) > 0.03 {
		t.Errorf("LOCAL sampler marginal = %v, want %v", got, truth[model.In])
	}
}

func TestInferenceFromSampling(t *testing.T) {
	// Theorem 3.4: marginals reconstructed from the sampler.
	g := graph.Cycle(6)
	lambda := 1.2
	in := hardcoreInstance(t, g, lambda, nil)
	o := sawOracle(t, g, lambda)
	rng := rand.New(rand.NewSource(67))
	sample := func(r *rand.Rand) (*SampleResult, error) {
		cfg, rad, err := SequentialSample(in, o, slocal.IdentityOrder(6), 0.01, r)
		if err != nil {
			return nil, err
		}
		return &SampleResult{Config: cfg, Failed: make([]bool, 6), Rounds: rad}, nil
	}
	got, err := InferenceFromSampling(in, sample, 2, 20000, rng)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exact.Marginal(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	tv, _ := dist.TV(got, want)
	if tv > 0.03 {
		t.Errorf("reconstructed marginal off by %v", tv)
	}
	if _, err := InferenceFromSampling(in, sample, 2, 0, rng); err == nil {
		t.Error("zero runs accepted")
	}
}

func TestNoisyOracleInjectsError(t *testing.T) {
	g := graph.Cycle(6)
	in := hardcoreInstance(t, g, 1, nil)
	clean := &ExactOracle{}
	noisy := &NoisyOracle{Inner: clean, Noise: 0.2}
	a, _, err := clean.Marginal(in, 0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := noisy.Marginal(in, 0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	tv, _ := dist.TV(a, b)
	if tv == 0 {
		t.Error("noise had no effect")
	}
	if err := b.Validate(1e-9); err != nil {
		t.Errorf("noisy marginal not a distribution: %v", err)
	}
}
