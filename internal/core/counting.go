package core

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/slocal"
)

// CountResult is the outcome of chain-rule counting.
type CountResult struct {
	// LogZ is the estimated log partition function ln Z(τ).
	LogZ float64
	// Terms is the number of chain-rule factors (free vertices).
	Terms int
	// MaxRadius is the largest oracle radius consumed by any term.
	MaxRadius int
}

// EstimateLogPartition estimates the (conditional) log partition function
// ln Z(τ) of the instance by the self-reducibility decomposition the paper
// inherits from Jerrum [9]: fix any feasible configuration σ ⊇ τ and any
// ordering v_1..v_n of the free vertices; then
//
//	µ^τ(σ) = Π_i µ^{τ ∧ σ(v_1..v_{i−1})}_{v_i}(σ(v_i))
//	Z(τ)   = w(σ) / µ^τ(σ),
//
// so ln Z is computable from n marginal estimates — exactly how "counting"
// reduces to "inference" for self-reducible problems (Section 1). With a
// multiplicative-error-ε oracle the estimate carries error at most n·ε in
// ln Z. The feasible σ is constructed by pass-1-style pinning at oracle
// modes.
func EstimateLogPartition(in *gibbs.Instance, o MultOracle, order []int, eps float64) (*CountResult, error) {
	if o == nil {
		return nil, ErrNoOracle
	}
	n := in.N()
	if order == nil {
		order = slocal.IdentityOrder(n)
	}
	if err := slocal.CheckOrder(n, order); err != nil {
		return nil, err
	}
	if eps <= 0 {
		eps = 1 / math.Pow(float64(n)+1, 3)
	}
	res := &CountResult{}
	// Build a feasible σ ⊇ τ and accumulate the chain-rule log product on
	// the fly.
	cur := in
	sigma := in.Pinned.Clone()
	logMu := 0.0
	for _, v := range order {
		if sigma[v] != dist.Unset {
			continue
		}
		mu, r, err := o.MarginalMult(cur, v, eps)
		if err != nil {
			return nil, fmt.Errorf("core: log partition at %d: %w", v, err)
		}
		if r > res.MaxRadius {
			res.MaxRadius = r
		}
		c := mu.ArgMax()
		if c < 0 || mu[c] <= 0 {
			return nil, fmt.Errorf("%w: vertex %d", ErrGroundState, v)
		}
		logMu += math.Log(mu[c])
		sigma[v] = c
		cur, err = cur.Pin(v, c)
		if err != nil {
			return nil, err
		}
		res.Terms++
	}
	w, err := in.Spec.Weight(sigma)
	if err != nil {
		return nil, err
	}
	if w <= 0 {
		return nil, fmt.Errorf("%w: chain-rule anchor infeasible", gibbs.ErrInfeasible)
	}
	res.LogZ = math.Log(w) - logMu
	return res, nil
}
