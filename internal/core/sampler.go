package core

import (
	"fmt"
	"math/rand"

	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/netdecomp"
	"repro/internal/slocal"
)

// SampleResult is the outcome of a sampling reduction.
type SampleResult struct {
	// Config is the sampled total configuration Y.
	Config dist.Config
	// Failed[v] is the local failure indicator F_v; conditioned on no
	// failures, Config follows the promised distribution.
	Failed []bool
	// Rounds is the LOCAL round complexity charged.
	Rounds int
	// SLOCALLocality is the locality of the underlying SLOCAL scan.
	SLOCALLocality int
}

// FailureCount returns the number of locally failed nodes.
func (r *SampleResult) FailureCount() int {
	c := 0
	for _, f := range r.Failed {
		if f {
			c++
		}
	}
	return c
}

// SequentialSample implements the SLOCAL sampler in the proof of Theorem
// 3.2: scanning the free vertices in the given order, it samples each
// vertex from the oracle's estimate of the conditional marginal given all
// previously fixed values (and the instance pinning), with per-vertex
// additive error delta/n. A coupling argument gives total variation error
// at most delta for the joint output, for every ordering.
//
// The returned locality is the maximum oracle radius used, which is the
// SLOCAL locality of the scan.
func SequentialSample(in *gibbs.Instance, o Oracle, order []int, delta float64, rng *rand.Rand) (dist.Config, int, error) {
	if o == nil {
		return nil, 0, ErrNoOracle
	}
	n := in.N()
	if err := slocal.CheckOrder(n, order); err != nil {
		return nil, 0, err
	}
	if delta <= 0 {
		return nil, 0, fmt.Errorf("core: sampling error bound must be positive, got %v", delta)
	}
	perVertex := delta / float64(n)
	cur := in
	cfg := in.Pinned.Clone()
	maxRadius := 0
	for _, v := range order {
		if cfg[v] != dist.Unset {
			continue
		}
		mu, r, err := o.Marginal(cur, v, perVertex)
		if err != nil {
			return nil, 0, fmt.Errorf("core: sequential sample at %d: %w", v, err)
		}
		if err := oracleSanity(mu, in.Q()); err != nil {
			return nil, 0, err
		}
		if r > maxRadius {
			maxRadius = r
		}
		x := mu.Sample(rng)
		cfg[v] = x
		cur, err = cur.Pin(v, x)
		if err != nil {
			return nil, 0, err
		}
	}
	return cfg, maxRadius, nil
}

// seqSamplerSLOCAL wraps SequentialSample's per-vertex step as a one-pass
// slocal.Algorithm so that the simulation path through the SLOCAL machinery
// (locality enforcement, Lemma 4.4 accounting) is exercised end to end.
type seqSamplerSLOCAL struct {
	in       *gibbs.Instance
	o        Oracle
	perV     float64
	locality int
	cfg      dist.Config
	radius   int
}

var _ slocal.Algorithm = (*seqSamplerSLOCAL)(nil)

func (a *seqSamplerSLOCAL) Passes() int           { return 1 }
func (a *seqSamplerSLOCAL) Locality(_, _ int) int { return a.locality }
func (a *seqSamplerSLOCAL) Init(v int) any        { return a.in.Pinned[v] }
func (a *seqSamplerSLOCAL) Process(_ int, c *slocal.Ctx) error {
	v := c.Node()
	if a.cfg[v] != dist.Unset {
		c.Write(v, a.cfg[v])
		return nil
	}
	cur := a.in.PinAll(a.cfg)
	mu, r, err := a.o.Marginal(cur, v, a.perV)
	if err != nil {
		return err
	}
	if r > a.radius {
		a.radius = r
	}
	x := mu.Sample(c.RNG())
	a.cfg[v] = x
	c.Write(v, x)
	return nil
}

// SampleLOCAL implements Theorem 3.2 end to end: it builds the randomized
// (O(log n), O(log n)) network decomposition of the power graph G^(t+1)
// (with t the oracle radius for error delta/n), derives the chromatic
// scheduling order, and simulates the SLOCAL sequential sampler on that
// order. Nodes in clusters that violated the decomposition's promised
// bounds raise their local failure bits (the Lemma 3.1 failures F”_v);
// conditioned on no failure the output distribution is exactly that of the
// SLOCAL sampler on some ordering, hence within delta of the target.
func SampleLOCAL(in *gibbs.Instance, o Oracle, delta float64, rng *rand.Rand) (*SampleResult, error) {
	if o == nil {
		return nil, ErrNoOracle
	}
	n := in.N()
	// Probe the oracle radius at the accuracy the scan will use.
	probeV := 0
	if free := in.FreeVertices(); len(free) > 0 {
		probeV = free[0]
	}
	_, t, err := o.Marginal(in, probeV, delta/float64(n))
	if err != nil {
		return nil, fmt.Errorf("core: oracle probe: %w", err)
	}
	power := in.Spec.G.Power(t + 1)
	dec, err := netdecomp.BallCarving(power, netdecomp.Params{}, rng)
	if err != nil {
		return nil, err
	}
	order := dec.ScheduleOrder()
	alg := &seqSamplerSLOCAL{
		in:       in,
		o:        o,
		perV:     delta / float64(n),
		locality: maxLocality(in, t),
		cfg:      in.Pinned.Clone(),
	}
	if _, err := slocal.Run(in.Spec.G, alg, order, rng); err != nil {
		return nil, err
	}
	res := &SampleResult{
		Config:         alg.cfg,
		Failed:         append([]bool(nil), dec.Failed...),
		Rounds:         dec.SimulationRounds(t),
		SLOCALLocality: alg.locality,
	}
	return res, nil
}

// maxLocality bounds the SLOCAL read radius: the oracle radius t, but never
// more than the graph can offer.
func maxLocality(in *gibbs.Instance, t int) int {
	n := in.N()
	if t > n {
		return n
	}
	if t < 0 {
		return 0
	}
	return t
}

// InferenceFromSampling implements Theorem 3.4: given a LOCAL approximate
// sampler (here: any function returning a SampleResult), the marginal of v
// is reconstructed from the distribution of the sampler's output at v. The
// paper reconstructs µ̃_v exactly by enumerating the sampler's random bits
// within radius t; enumerating random bits is replaced here by Monte Carlo
// averaging over `runs` independent executions, which converges to the same
// µ̃_v (the substitution is recorded in DESIGN.md). The returned marginal
// carries error at most delta + ε₀ + statistical noise, where ε₀ bounds the
// sampler's failure mass.
func InferenceFromSampling(in *gibbs.Instance, sample func(*rand.Rand) (*SampleResult, error), v, runs int, rng *rand.Rand) (dist.Dist, error) {
	if runs <= 0 {
		return nil, fmt.Errorf("core: inference from sampling needs runs > 0")
	}
	counts := make([]float64, in.Q())
	for i := 0; i < runs; i++ {
		res, err := sample(rng)
		if err != nil {
			return nil, err
		}
		x := res.Config[v]
		if x < 0 || x >= in.Q() {
			return nil, fmt.Errorf("core: sampler produced symbol %d outside alphabet", x)
		}
		counts[x]++
	}
	return dist.FromWeights(counts)
}
