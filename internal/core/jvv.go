package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/netdecomp"
	"repro/internal/slocal"
)

// JVVConfig tunes the local-JVV exact sampler.
type JVVConfig struct {
	// Eps is the multiplicative inference error fed to the oracle; the
	// paper uses 1/n³. Zero selects 1/n³.
	Eps float64
	// BallCompletion selects how pass 3 constructs the bridging
	// configuration σ_i inside B_t(v_i): greedy local completion (valid for
	// locally admissible distributions, the default) or exhaustive ball
	// enumeration (valid for all local Gibbs distributions, exponential in
	// the ball size).
	BallCompletion CompletionMode
	// FullRatio disables the B_{2t} restriction of equation (11) and
	// computes the µ̂ ratio over every scan position. The restriction is
	// exact only for genuinely t-local oracles (all decay oracles are);
	// referee oracles that read the whole graph (ExactOracle) must set
	// FullRatio for the telescoping of Lemma 4.8 to hold.
	FullRatio bool
	// Order optionally fixes the SLOCAL scan order (adversarial input);
	// nil lets the caller-level scheduler decide.
	Order []int
}

// CompletionMode selects the σ_i construction strategy in pass 3.
type CompletionMode int

const (
	// CompleteGreedy extends partial configurations greedily, relying on
	// local admissibility (Definition 2.5).
	CompleteGreedy CompletionMode = iota + 1
	// CompleteEnumerate searches all configurations of the ball interior,
	// the fully general strategy of Claim 4.6.
	CompleteEnumerate
)

// JVVResult reports the outcome of the local-JVV sampler.
type JVVResult struct {
	// Config is the candidate sample Y.
	Config dist.Config
	// Failed[v] is the local rejection indicator F'_v of pass 3.
	Failed []bool
	// GroundState is the feasible configuration σ₀ built in pass 1.
	GroundState dist.Config
	// AcceptProbs records the per-node acceptance probabilities q_{v_i}.
	AcceptProbs []float64
	// Locality is the SLOCAL locality of the three passes combined
	// (Lemma 4.4: t + 2t + 2(3t+ℓ) = O(t)).
	Locality int
	// OracleRadius is the radius t used by the multiplicative oracle.
	OracleRadius int
}

// Accepted reports whether no node rejected.
func (r *JVVResult) Accepted() bool {
	for _, f := range r.Failed {
		if f {
			return false
		}
	}
	return true
}

// ErrGroundState indicates pass 1 failed to construct a feasible ground
// state (the oracle reported no positive symbol).
var ErrGroundState = errors.New("core: JVV ground state construction failed")

// LocalJVV runs the three-pass local rejection sampling algorithm of
// Section 4.2 as an SLOCAL algorithm on the given ordering:
//
//	Pass 1 builds a feasible ground state σ₀ by pinning each vertex to a
//	symbol of positive estimated marginal.
//	Pass 2 samples the candidate Y vertex by vertex from the estimated
//	conditional marginals (so Y ~ µ̂^τ with err(µ̂^τ, µ^τ) ≤ 1/n² by
//	Claim 4.5).
//	Pass 3 walks a bridge σ₀ = σ̃₀, σ̃₁, ..., σ̃_n = Y of feasible
//	configurations, each step changing only the ball B_t(v_i), and accepts
//	at v_i with probability
//
//	    q_{v_i} = (µ̂^τ(σ̃_{i−1}) · w(σ̃_i)) / (µ̂^τ(σ̃_i) · w(σ̃_{i−1})) · e^{−3/n²},
//
//	whose telescoped product cancels every µ̂ term except constants, so
//	Pr[Y = σ ∧ accept] ∝ w(σ): conditioned on acceptance the output is
//	*exactly* µ^τ (Lemma 4.8).
//
// Note on the paper's notation: the paper samples F'_{v_i} = 1 "with
// probability q_{v_i}" while also calling F'_{v_i} = 1 a failure; since
// q_{v_i} ∈ [e^{−5/n²}, 1] is the quantity whose product must be the
// success probability, the intended semantics — implemented here — is that
// v_i accepts with probability q_{v_i} and fails otherwise, giving total
// failure probability 1 − Π q_{v_i} = O(1/n).
func LocalJVV(in *gibbs.Instance, o MultOracle, cfg JVVConfig, rng *rand.Rand) (*JVVResult, error) {
	if o == nil {
		return nil, ErrNoOracle
	}
	n := in.N()
	if n == 0 {
		return &JVVResult{Config: dist.Config{}, Failed: nil}, nil
	}
	eps := cfg.Eps
	if eps <= 0 {
		eps = 1 / math.Pow(float64(n), 3)
	}
	mode := cfg.BallCompletion
	if mode == 0 {
		mode = CompleteGreedy
	}
	order := cfg.Order
	if order == nil {
		order = slocal.IdentityOrder(n)
	}
	if err := slocal.CheckOrder(n, order); err != nil {
		return nil, err
	}
	ell, err := in.Spec.Locality()
	if err != nil {
		return nil, err
	}
	// Pass 3 evaluates factors in its inner loops; run it on the compiled
	// engine with reusable ratio scratch.
	eng := in.Spec.Compiled()
	scratch := eng.NewScratch()

	res := &JVVResult{
		Failed:      make([]bool, n),
		AcceptProbs: make([]float64, n),
	}
	for i := range res.AcceptProbs {
		res.AcceptProbs[i] = 1
	}

	// Pass 1: ground state σ₀.
	ground := in.Pinned.Clone()
	cur := in
	t := 0
	for _, v := range order {
		if ground[v] != dist.Unset {
			continue
		}
		mu, r, err := o.MarginalMult(cur, v, eps)
		if err != nil {
			return nil, fmt.Errorf("core: JVV pass 1 at %d: %w", v, err)
		}
		if r > t {
			t = r
		}
		c := mu.ArgMax()
		if c < 0 || mu[c] <= 0 {
			return nil, fmt.Errorf("%w: vertex %d", ErrGroundState, v)
		}
		ground[v] = c
		cur, err = cur.Pin(v, c)
		if err != nil {
			return nil, err
		}
	}
	res.GroundState = ground
	res.OracleRadius = t

	// Pass 2: candidate Y.
	y := in.Pinned.Clone()
	cur = in
	for _, v := range order {
		if y[v] != dist.Unset {
			continue
		}
		mu, _, err := o.MarginalMult(cur, v, eps)
		if err != nil {
			return nil, fmt.Errorf("core: JVV pass 2 at %d: %w", v, err)
		}
		if err := oracleSanity(mu, in.Q()); err != nil {
			return nil, err
		}
		x := mu.Sample(rng)
		y[v] = x
		cur, err = cur.Pin(v, x)
		if err != nil {
			return nil, err
		}
	}
	res.Config = y

	// Pass 3: bridge σ̃_{i-1} → σ̃_i and acceptance sampling.
	sigma := ground.Clone()
	damp := math.Exp(-3 / (float64(n) * float64(n)))
	for i, v := range order {
		if in.Pinned[v] != dist.Unset {
			// Pinned vertices agree in every configuration; q = 1.
			continue
		}
		next, err := bridgeStep(in, eng, sigma, y, order, i, t, mode)
		if err != nil {
			return nil, fmt.Errorf("core: JVV pass 3 bridge at %d: %w", v, err)
		}
		q, err := acceptProb(in, eng, scratch, o, sigma, next, order, i, t, eps, damp, cfg.FullRatio)
		if err != nil {
			return nil, fmt.Errorf("core: JVV pass 3 accept at %d: %w", v, err)
		}
		res.AcceptProbs[v] = q
		if rng.Float64() >= q {
			res.Failed[v] = true
		}
		sigma = next
	}
	// Lemma 4.4 locality accounting for the three passes with localities
	// t, t, 3t+ℓ.
	res.Locality = t + 2*t + 2*(3*t+ell)
	return res, nil
}

// bridgeStep constructs σ̃_i from σ̃_{i−1}: a feasible configuration that
// agrees with Y on order[0..i] and with σ̃_{i−1} outside B_t(v_i)
// (invariants (6), (7), (8) of the paper; existence is Claim 4.6).
func bridgeStep(in *gibbs.Instance, eng *gibbs.Compiled, prev, y dist.Config, order []int, i, t int, mode CompletionMode) (dist.Config, error) {
	v := order[i]
	if prev[v] == y[v] {
		// Nothing to change; σ̃_i = σ̃_{i−1} already satisfies the
		// invariants.
		return prev, nil
	}
	g := in.Spec.G
	ball := g.Ball(v, t)
	inBall := make(map[int]bool, len(ball))
	for _, u := range ball {
		inBall[u] = true
	}
	fixedByY := make(map[int]bool, i+1)
	for j := 0; j <= i; j++ {
		fixedByY[order[j]] = true
	}
	// Constraints: outside the ball keep σ̃_{i−1}; inside the ball, pinned
	// vertices keep τ and already-scanned vertices take Y.
	base := dist.NewConfig(in.N())
	for u := 0; u < in.N(); u++ {
		switch {
		case !inBall[u]:
			base[u] = prev[u]
		case in.Pinned[u] != dist.Unset:
			base[u] = in.Pinned[u]
		case fixedByY[u]:
			base[u] = y[u]
		}
	}
	switch mode {
	case CompleteGreedy:
		out, err := eng.GreedyCompletion(base)
		if err != nil {
			return nil, err
		}
		return out, nil
	case CompleteEnumerate:
		return completeByEnumeration(in, eng, base)
	default:
		return nil, fmt.Errorf("core: unknown completion mode %d", mode)
	}
}

// completeByEnumeration finds a positive-weight extension of base by
// exhaustive search over the free variables (the general strategy of Claim
// 4.6; exponential in the number of free ball vertices).
func completeByEnumeration(in *gibbs.Instance, eng *gibbs.Compiled, base dist.Config) (dist.Config, error) {
	free := base.Free()
	q := in.Q()
	cfg := base.Clone()
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(free) {
			w, err := eng.Weight(cfg)
			return err == nil && w > 0
		}
		u := free[k]
		for x := 0; x < q; x++ {
			cfg[u] = x
			if !eng.LocallyFeasibleAt(cfg, u) {
				continue
			}
			if rec(k + 1) {
				return true
			}
		}
		cfg[u] = dist.Unset
		return false
	}
	if !rec(0) {
		return nil, fmt.Errorf("%w: no feasible completion", gibbs.ErrInfeasible)
	}
	return cfg, nil
}

// acceptProb computes q_{v_i} per equation (9), using the B_{2t}(v_i)
// restriction of equation (11) for the µ̂^τ ratio and the ball restriction
// of equation (12) for the weight ratio.
func acceptProb(in *gibbs.Instance, eng *gibbs.Compiled, scratch *gibbs.Scratch, o MultOracle, prev, next dist.Config, order []int, i, t int, eps, damp float64, fullRatio bool) (float64, error) {
	v := order[i]
	if prev.Equal(next) {
		// σ̃_i = σ̃_{i−1}: both ratios are 1.
		return damp, nil
	}
	g := in.Spec.G
	ball2t := g.Ball(v, 2*t)
	in2t := make(map[int]bool, len(ball2t))
	for _, u := range ball2t {
		in2t[u] = true
	}
	// µ̂^τ(σ̃_{i−1}) / µ̂^τ(σ̃_i) restricted to scan positions inside
	// B_{2t}(v): for positions outside, the prefix pinnings agree within
	// the oracle's radius, so the marginals cancel exactly.
	logRatio := 0.0
	prefixPrev := in.Pinned.Clone()
	prefixNext := in.Pinned.Clone()
	for _, u := range order {
		if in.Pinned[u] != dist.Unset {
			continue
		}
		if fullRatio || in2t[u] {
			instPrev := in.PinAll(prefixPrev)
			muPrev, _, err := o.MarginalMult(instPrev, u, eps)
			if err != nil {
				return 0, err
			}
			instNext := in.PinAll(prefixNext)
			muNext, _, err := o.MarginalMult(instNext, u, eps)
			if err != nil {
				return 0, err
			}
			pPrev, pNext := muPrev[prev[u]], muNext[next[u]]
			if pPrev <= 0 || pNext <= 0 {
				return 0, fmt.Errorf("core: zero oracle marginal on bridge configuration at %d", u)
			}
			logRatio += math.Log(pPrev) - math.Log(pNext)
		}
		prefixPrev[u] = prev[u]
		prefixNext[u] = next[u]
	}
	// w(σ̃_i) / w(σ̃_{i−1}) over factors touching the changed ball.
	diff := prev.DiffersAt(next)
	wRatio, err := eng.WeightRatioOnBall(next, prev, diff, scratch)
	if err != nil {
		return 0, err
	}
	if wRatio <= 0 {
		return 0, fmt.Errorf("core: bridge configuration infeasible (weight ratio %v)", wRatio)
	}
	q := math.Exp(logRatio) * wRatio * damp
	if math.IsNaN(q) || q < 0 {
		return 0, fmt.Errorf("core: acceptance probability degenerate: %v", q)
	}
	if q > 1 {
		// With a true multiplicative oracle q ≤ e^{−1/n²} < 1; clamping
		// guards against slightly out-of-spec oracles (fault injection).
		q = 1
	}
	return q, nil
}

// JVVLOCAL realizes Theorem 4.2 end to end in the LOCAL model: it builds a
// network decomposition of the power graph G^(r+1), where r = 9t + 2ℓ is
// the single-pass SLOCAL locality of local-JVV (Lemma 4.4), derives the
// chromatic scheduling order, runs LocalJVV on it, and merges the rejection
// failures F' with the decomposition failures F”. Conditioned on no
// failure the output is distributed exactly as µ^τ.
func JVVLOCAL(in *gibbs.Instance, o MultOracle, cfg JVVConfig, rng *rand.Rand) (*JVVResult, int, error) {
	n := in.N()
	if n == 0 {
		return &JVVResult{}, 0, nil
	}
	eps := cfg.Eps
	if eps <= 0 {
		eps = 1 / math.Pow(float64(n), 3)
	}
	probeV := 0
	if free := in.FreeVertices(); len(free) > 0 {
		probeV = free[0]
	}
	_, t, err := o.MarginalMult(in, probeV, eps)
	if err != nil {
		return nil, 0, fmt.Errorf("core: oracle probe: %w", err)
	}
	ell, err := in.Spec.Locality()
	if err != nil {
		return nil, 0, err
	}
	r := 9*t + 2*ell
	power := in.Spec.G.Power(r + 1)
	dec, err := netdecomp.BallCarving(power, netdecomp.Params{}, rng)
	if err != nil {
		return nil, 0, err
	}
	cfg.Order = dec.ScheduleOrder()
	res, err := LocalJVV(in, o, cfg, rng)
	if err != nil {
		return nil, 0, err
	}
	for v := 0; v < n; v++ {
		if dec.Failed[v] {
			res.Failed[v] = true
		}
	}
	return res, dec.SimulationRounds(r), nil
}
