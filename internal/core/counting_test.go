package core

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/slocal"
)

func TestEstimateLogPartitionExactOracle(t *testing.T) {
	// With the zero-error oracle the chain-rule estimate equals ln Z
	// exactly.
	for _, tc := range []struct {
		name   string
		g      *graph.Graph
		lambda float64
	}{
		{"path5", graph.Path(5), 1},
		{"cycle6", graph.Cycle(6), 2},
		{"grid3x3", graph.Grid(3, 3), 0.7},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := hardcoreInstance(t, tc.g, tc.lambda, nil)
			want, err := exact.LogPartition(in)
			if err != nil {
				t.Fatal(err)
			}
			res, err := EstimateLogPartition(in, &ExactOracle{}, nil, 1e-12)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(res.LogZ-want) > 1e-9 {
				t.Errorf("lnZ = %v, want %v", res.LogZ, want)
			}
			if res.Terms != tc.g.N() {
				t.Errorf("terms = %d", res.Terms)
			}
		})
	}
}

func TestEstimateLogPartitionDecayOracle(t *testing.T) {
	// With an ε-multiplicative oracle the error is at most n·ε.
	g := graph.Cycle(12)
	lambda := 1.0
	in := hardcoreInstance(t, g, lambda, nil)
	o := sawOracle(t, g, lambda)
	want, err := exact.LogPartition(in)
	if err != nil {
		t.Fatal(err)
	}
	eps := 1e-4
	res, err := EstimateLogPartition(in, o, nil, eps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.LogZ-want) > float64(g.N())*eps {
		t.Errorf("lnZ error %v exceeds n·ε = %v", math.Abs(res.LogZ-want), float64(g.N())*eps)
	}
	if res.MaxRadius <= 0 {
		t.Errorf("radius = %d", res.MaxRadius)
	}
}

func TestEstimateLogPartitionConditional(t *testing.T) {
	// Conditional partition functions (self-reducibility) work too.
	g := graph.Path(6)
	pin := dist.Config{1, dist.Unset, dist.Unset, dist.Unset, dist.Unset, 0}
	in := hardcoreInstance(t, g, 1.5, pin)
	want, err := exact.LogPartition(in)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EstimateLogPartition(in, &ExactOracle{}, nil, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.LogZ-want) > 1e-9 {
		t.Errorf("conditional lnZ = %v, want %v", res.LogZ, want)
	}
	if res.Terms != 4 {
		t.Errorf("terms = %d, want 4 free vertices", res.Terms)
	}
}

func TestEstimateLogPartitionOrderInvariance(t *testing.T) {
	// Every ordering yields the same ln Z with an exact oracle (the chain
	// rule holds in any order).
	g := graph.Cycle(7)
	in := hardcoreInstance(t, g, 2, nil)
	ref, err := EstimateLogPartition(in, &ExactOracle{}, slocal.IdentityOrder(7), 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range [][]int{
		slocal.ReverseOrder(7),
		slocal.BoundaryFirstOrder(g),
	} {
		res, err := EstimateLogPartition(in, &ExactOracle{}, order, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.LogZ-ref.LogZ) > 1e-9 {
			t.Errorf("order-dependent lnZ: %v vs %v", res.LogZ, ref.LogZ)
		}
	}
}

func TestEstimateLogPartitionCountsColorings(t *testing.T) {
	// Boolean factors: Z counts feasible configurations; C4 has 18 proper
	// 3-colorings.
	s, err := model.Coloring(graph.Cycle(4), 3)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EstimateLogPartition(in, &ExactOracle{}, nil, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if got := math.Exp(res.LogZ); math.Abs(got-18) > 1e-6 {
		t.Errorf("counted %v colorings, want 18", got)
	}
}

func TestEstimateLogPartitionErrors(t *testing.T) {
	g := graph.Path(3)
	in := hardcoreInstance(t, g, 1, nil)
	if _, err := EstimateLogPartition(in, nil, nil, 0.1); err == nil {
		t.Error("nil oracle accepted")
	}
	if _, err := EstimateLogPartition(in, &ExactOracle{}, []int{0, 0, 1}, 0.1); err == nil {
		t.Error("bad order accepted")
	}
}
