package core

import (
	"fmt"
	"sort"

	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
)

// BoostResult reports the outcome of the boosting algorithm A×.
type BoostResult struct {
	// Marginal is the boosted estimate of µ^τ_v, accurate within
	// multiplicative error ε.
	Marginal dist.Dist
	// Radius is the LOCAL radius consumed: 2t + ℓ with t the additive
	// oracle's radius at error ε/(5qn).
	Radius int
	// Shell is the pinned shell Γ = B_{t+ℓ}(v) \ (B_t(v) ∪ Λ).
	Shell []int
	// ShellPins records the values chosen on the shell.
	ShellPins dist.Config
}

// Boost implements the boosting lemma (Lemma 4.1): for local Gibbs
// distributions, approximate inference with additive (total variation)
// error δ = ε/(5qn) is boosted to approximate inference with multiplicative
// error ε. The algorithm A× at node v:
//
//  1. lets t be the additive oracle's radius at error ε/(5qn), and ℓ the
//     locality of the Gibbs distribution;
//  2. enumerates the shell Γ = B_{t+ℓ}(v) \ (B_t(v) ∪ Λ) in increasing ID
//     order, pinning each shell vertex to the mode of the oracle's estimated
//     conditional marginal (each such extension stays feasible because the
//     mode has probability ≥ 1/q − δ > 0);
//  3. returns the marginal of v computed exactly within the ball
//     B = B_{t+ℓ}(v), which by conditional independence (Proposition 2.1)
//     is fully determined by local information once Γ ∪ Λ separates the
//     ball interior from the rest of the graph.
//
// The within-ball enumeration runs on the spec's compiled evaluation engine
// (via exact.BallMarginal), and the locality ℓ is served from the spec's
// cache, so repeated Boost calls pay neither factor-closure dispatch nor
// locality recomputation.
//
// The chain-rule telescoping of the paper shows the result is within
// multiplicative error ε of µ^τ_v.
func Boost(in *gibbs.Instance, o Oracle, v int, eps float64) (*BoostResult, error) {
	if o == nil {
		return nil, ErrNoOracle
	}
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("core: boosting needs 0 < eps < 1, got %v", eps)
	}
	n := in.N()
	q := in.Q()
	if x := in.Pinned[v]; x != dist.Unset {
		return &BoostResult{Marginal: dist.Point(q, x)}, nil
	}
	ell, err := in.Spec.Locality()
	if err != nil {
		return nil, err
	}
	delta := eps / (5 * float64(q) * float64(n))
	// Probe the oracle's radius at this accuracy.
	_, t, err := o.Marginal(in, v, delta)
	if err != nil {
		return nil, err
	}
	g := in.Spec.G
	inner := make(map[int]bool)
	for _, u := range g.Ball(v, t) {
		inner[u] = true
	}
	var shell []int
	for _, u := range g.Ball(v, t+ell) {
		if !inner[u] && in.Pinned[u] == dist.Unset {
			shell = append(shell, u)
		}
	}
	sort.Ints(shell)
	// Pin the shell one vertex at a time at the oracle's mode.
	cur := in
	pins := dist.NewConfig(n)
	for _, u := range shell {
		mu, _, err := o.Marginal(cur, u, delta)
		if err != nil {
			return nil, fmt.Errorf("core: boost shell marginal at %d: %w", u, err)
		}
		if err := oracleSanity(mu, q); err != nil {
			return nil, err
		}
		c := mu.ArgMax()
		pins[u] = c
		cur, err = cur.Pin(u, c)
		if err != nil {
			return nil, err
		}
	}
	// Exact within-ball computation of µ^{τ_m}_v.
	ball := g.Ball(v, t+ell)
	marg, err := exact.BallMarginal(cur, v, ball)
	if err != nil {
		return nil, fmt.Errorf("core: boost ball marginal: %w", err)
	}
	return &BoostResult{
		Marginal:  marg,
		Radius:    2*t + ell,
		Shell:     shell,
		ShellPins: pins,
	}, nil
}

// BoostOracle packages Boost as a MultOracle, so that any additive-error
// oracle can feed the distributed JVV sampler (this is how Theorem 4.2
// follows from Lemma 4.1 plus Proposition 4.3).
type BoostOracle struct {
	// Additive is the total-variation-error oracle being boosted.
	Additive Oracle
}

var _ MultOracle = (*BoostOracle)(nil)

// MarginalMult implements MultOracle via Lemma 4.1.
func (o *BoostOracle) MarginalMult(in *gibbs.Instance, v int, eps float64) (dist.Dist, int, error) {
	res, err := Boost(in, o.Additive, v, eps)
	if err != nil {
		return nil, 0, err
	}
	return res.Marginal, res.Radius, nil
}
