package spec

// dynamics_test.go is the corpus-wide property test: every registered
// dynamic, run on instances loaded from the committed corpus documents,
// agrees with the exact referee.
//
// Two properties, mirroring the per-dynamic stationarity suites:
//
//  1. One-round invariance (Monte-Carlo µP = µ): chains initialized with
//     exact samples from µ and advanced one round must still be
//     µ-distributed — regardless of mixing time, so this runs on every
//     corpus instance including the non-uniqueness ones. Batched dynamics
//     only: the injection goes through MultiChain.Lattice.
//  2. Mixing TV: from the canonical start, a generous sweep budget must
//     bring the empirical distribution within the sampling-noise envelope
//     of µ. Restricted to the fast-mixing corpus instances, every
//     registered dynamic including the sequential baseline.

import (
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/sampler"
)

// tvEnvelope is the acceptance threshold for an empirical distribution of
// `samples` draws against a truth with the given support size.
func tvEnvelope(support, samples int) float64 {
	return 2.5 * dist.ExpectedTVNoise(support, samples)
}

// TestCorpusOneRoundInvariance draws exact samples into every chain of
// each batched dynamic, advances one round, and requires the pooled
// post-round samples to stay within the noise envelope of µ.
func TestCorpusOneRoundInvariance(t *testing.T) {
	corpus := loadCorpus(t)
	const chains, rounds = 32, 50
	for name, f := range corpus {
		t.Run(name, func(t *testing.T) {
			b, err := f.Build()
			if err != nil {
				t.Fatal(err)
			}
			in := b.Instance
			truth, err := exact.JointDistribution(in)
			if err != nil {
				t.Fatal(err)
			}
			for _, algo := range sampler.MultiNames() {
				t.Run(algo, func(t *testing.T) {
					s, err := sampler.Create(algo, in, sampler.Options{Chains: chains, Seed: 7})
					if err != nil {
						t.Fatal(err)
					}
					m, ok := s.(sampler.MultiChain)
					if !ok {
						t.Fatalf("batched %q is not a MultiChain", algo)
					}
					rng := rand.New(rand.NewSource(99))
					emp := dist.NewJoint(in.N())
					for r := 0; r < rounds; r++ {
						for c := 0; c < chains; c++ {
							sigma, err := truth.Sample(rng)
							if err != nil {
								t.Fatal(err)
							}
							if err := m.Lattice().SetChain(c, sigma); err != nil {
								t.Fatal(err)
							}
						}
						if err := m.Run(1); err != nil {
							t.Fatal(err)
						}
						for c := 0; c < chains; c++ {
							emp.Add(m.Chain(c), 1)
						}
					}
					if err := emp.Normalize(); err != nil {
						t.Fatal(err)
					}
					tv, err := dist.TVJoint(truth, emp)
					if err != nil {
						t.Fatal(err)
					}
					if env := tvEnvelope(truth.Len(), chains*rounds); tv > env {
						t.Errorf("one round of %s moved µ: TV = %.4f > envelope %.4f", algo, tv, env)
					}
				})
			}
		})
	}
}

// mixingCorpus names the corpus instances small and fast-mixing enough
// for the empirical mixing check (the above-λc and critical hardcore
// entries are deliberately excluded: slow mixing is their point).
var mixingCorpus = []string{
	"hardcore-tree15-below",
	"ising-torus3-low",
	"matching-grid3",
	"wcsp-explicit-pinned",
	"hypermatching-arity3",
}

// TestCorpusMixingTV runs every registered dynamic from the canonical
// start with a generous sweep budget and checks the empirical
// distribution against the exact referee.
func TestCorpusMixingTV(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo mixing check")
	}
	corpus := loadCorpus(t)
	const sweeps = 32
	for _, name := range mixingCorpus {
		f, ok := corpus[name]
		if !ok {
			t.Fatalf("mixing corpus names unknown instance %q", name)
		}
		t.Run(name, func(t *testing.T) {
			b, err := f.Build()
			if err != nil {
				t.Fatal(err)
			}
			in := b.Instance
			truth, err := exact.JointDistribution(in)
			if err != nil {
				t.Fatal(err)
			}
			multi := map[string]bool{}
			for _, algo := range sampler.MultiNames() {
				multi[algo] = true
			}
			for _, algo := range sampler.Names() {
				t.Run(algo, func(t *testing.T) {
					sweep, err := sampler.SweepRounds(algo, in)
					if err != nil {
						t.Fatal(err)
					}
					emp := dist.NewJoint(in.N())
					samples := 0
					if multi[algo] {
						// One batched engine, independent chains: every
						// reset reseeds all chains from the canonical start.
						const chains, resets = 32, 20
						s, err := sampler.Create(algo, in, sampler.Options{Chains: chains, Seed: 3})
						if err != nil {
							t.Fatal(err)
						}
						m := s.(sampler.MultiChain)
						for r := 0; r < resets; r++ {
							if err := m.Reset(int64(1000 + r)); err != nil {
								t.Fatal(err)
							}
							if err := m.Run(sweeps * sweep); err != nil {
								t.Fatal(err)
							}
							for c := 0; c < chains; c++ {
								emp.Add(m.Chain(c), 1)
								samples++
							}
						}
					} else {
						const trials = 400
						s, err := sampler.Create(algo, in, sampler.Options{Seed: 3})
						if err != nil {
							t.Fatal(err)
						}
						for i := 0; i < trials; i++ {
							if err := s.Reset(int64(2000 + i)); err != nil {
								t.Fatal(err)
							}
							if err := s.Run(sweeps * sweep); err != nil {
								t.Fatal(err)
							}
							emp.Add(s.State(), 1)
							samples++
						}
					}
					if err := emp.Normalize(); err != nil {
						t.Fatal(err)
					}
					tv, err := dist.TVJoint(truth, emp)
					if err != nil {
						t.Fatal(err)
					}
					if env := tvEnvelope(truth.Len(), samples); tv > env {
						t.Errorf("%s after %d sweeps: TV = %.4f > envelope %.4f (%d samples, support %d)",
							algo, sweeps, tv, env, samples, truth.Len())
					}
				})
			}
		})
	}
}
