package spec

// encode.go serializes instances back into the schema. Every factor the
// internal/model builders emit is table-backed, so any built instance —
// including the matching and hypergraph-matching models, whose instances
// live on derived graphs — round-trips: Encode writes the instance's
// interaction graph as an explicit edge list and its factors as explicit
// tables, preserving factor order, and Build on the result reconstructs a
// gibbs.Instance whose weights (and exact partition function) match the
// original bit for bit.

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/graph"
)

// Encode serializes the instance as an explicit-factors document on the
// instance's own interaction graph. Factors must be table-backed; a
// closure-only factor is not serializable and is reported as *Error.
func Encode(name string, in *gibbs.Instance) (*File, error) {
	g := GraphFrom(in.Spec.G)
	return encodeOn(name, g, in)
}

// EncodeWithGraph is Encode with a caller-declared graph (typically a
// named generator) replacing the explicit edge list. The declaration is
// verified: it must build to exactly the instance's interaction graph.
func EncodeWithGraph(name string, g Graph, in *gibbs.Instance) (*File, error) {
	if err := g.validate(); err != nil {
		return nil, err
	}
	if len(g.Hyperedges) > 0 {
		return nil, errf("graph.hyperedges", "explicit-factors documents live on the interaction graph; declare its edges or a generator kind")
	}
	var built *graph.Graph
	if g.Kind != "" {
		gg, err := graph.Build(g.Kind, g.N)
		if err != nil {
			return nil, errf("graph.kind", "%v", err)
		}
		built = gg
	} else {
		gg := graph.New(g.N)
		for i, e := range g.Edges {
			if err := gg.AddEdge(e[0], e[1]); err != nil {
				return nil, errf(fmt.Sprintf("graph.edges[%d]", i), "%v", err)
			}
		}
		gg.SortAdjacency()
		built = gg
	}
	if !built.Equal(in.Spec.G) {
		return nil, errf("graph", "declared graph does not match the instance's interaction graph")
	}
	return encodeOn(name, g, in)
}

func encodeOn(name string, g Graph, in *gibbs.Instance) (*File, error) {
	f := &File{Version: Version, Name: name, Graph: g, Q: in.Q()}
	f.Factors = make([]Factor, len(in.Spec.Factors))
	for i, fc := range in.Spec.Factors {
		if fc.Table == nil {
			return nil, errf(fmt.Sprintf("factors[%d]", i), "factor %q has no weight table; closure factors are not serializable", fc.Name)
		}
		f.Factors[i] = Factor{
			Scope: append([]int(nil), fc.Scope...),
			Table: append([]float64(nil), fc.Table...),
			Name:  fc.Name,
		}
	}
	for v, x := range in.Pinned {
		if x != dist.Unset {
			f.Pin = append(f.Pin, Pin{V: v, X: x})
		}
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// GraphFrom declares g as an explicit edge list.
func GraphFrom(g *graph.Graph) Graph {
	out := Graph{N: g.N()}
	for _, e := range g.Edges() {
		out.Edges = append(out.Edges, [2]int{e.U, e.V})
	}
	return out
}
