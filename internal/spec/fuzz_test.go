package spec

// fuzz_test.go is the loader's no-panic contract under fire. FuzzLoadSpec
// drives arbitrary bytes through parse → validate → compile and enforces
// two properties:
//
//   - The pipeline never panics: malformed input is always a typed error.
//     The expansion-cost guard (MaxBuildWeights) is part of this contract —
//     a few bytes of JSON must not buy an allocation explosion.
//   - Valid documents are canonical: if Parse accepts, the document
//     re-marshals, re-parses, and re-marshals to bit-identical bytes, and
//     a successful Build rebuilds identically from the canonical form.
//
// The committed seeds live in testdata/fuzz/FuzzLoadSpec/ (the corpus
// documents are added programmatically as well). CI runs this target for
// a short smoke window on every push; longer local runs with
//
//	go test ./internal/spec -run '^$' -fuzz FuzzLoadSpec -fuzztime 30s
//
// grow the cached corpus.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func FuzzLoadSpec(f *testing.F) {
	// Seed with the whole committed corpus: the fuzzer mutates from real
	// documents of every schema shape.
	paths, err := filepath.Glob(filepath.Join(corpusDir, "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"version":1,"graph":{"kind":"cycle","n":4},"model":{"kind":"hardcore","lambda":1}}`))
	f.Add([]byte(`{"version":1,"graph":{"n":2,"edges":[[0,1]]},"q":2,"factors":[{"scope":[0,1],"table":[1,0,0,1]}]}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := Parse(data)
		if err != nil {
			// Malformed input must carry the typed error, never panic.
			var se *Error
			if !errorsAs(err, &se) {
				t.Fatalf("Parse returned a non-*Error: %T %v", err, err)
			}
			return
		}
		// A document Parse accepted must marshal canonically.
		canon, err := doc.Marshal()
		if err != nil {
			t.Fatalf("valid document failed to marshal: %v", err)
		}
		doc2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form failed to re-parse: %v", err)
		}
		canon2, err := doc2.Marshal()
		if err != nil {
			t.Fatalf("canonical form failed to re-marshal: %v", err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("marshal is not canonical:\n%s\nvs\n%s", canon, canon2)
		}
		// Compilation may reject (semantic bounds), but never panics, and
		// success must be reproducible from the canonical form.
		if _, err := doc.Build(); err != nil {
			var se *Error
			if !errorsAs(err, &se) {
				t.Fatalf("Build returned a non-*Error: %T %v", err, err)
			}
			return
		}
		if _, err := doc2.Build(); err != nil {
			t.Fatalf("canonical form failed to rebuild: %v", err)
		}
	})
}

// errorsAs is errors.As without the reflective import dance in the hot
// fuzz loop.
func errorsAs(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}
