package spec

// roundtrip_test.go is the encoder's contract: every instance the
// internal/model builders produce — all factors table-backed, including
// the matching models on their derived graphs — serializes through the
// schema and rebuilds to an instance whose exact partition function
// matches the original bit for bit (math.Float64bits equality, not an
// epsilon).

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
)

// builderInstances constructs one instance per model builder, plus pinned
// variants, directly through the internal/model API.
func builderInstances(t *testing.T) map[string]*gibbs.Instance {
	t.Helper()
	out := make(map[string]*gibbs.Instance)
	mk := func(name string, spec *gibbs.Spec, err error, pinned dist.Config) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		in, err := gibbs.NewInstance(spec, pinned)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = in
	}

	hc, err := model.Hardcore(graph.Cycle(8), 1.7)
	mk("hardcore", hc, err, nil)

	hcPin, err := model.Hardcore(graph.Path(6), 0.9)
	pin := dist.NewConfig(6)
	pin[0], pin[3] = model.Out, model.Out
	mk("hardcore-pinned", hcPin, err, pin)

	is, err := model.Ising(graph.Torus(3, 3), 0.7, 1.3)
	mk("ising", is, err, nil)

	ts, err := model.TwoSpin(graph.Cycle(6), model.TwoSpinParams{Beta: 1.4, Gamma: 0.6, Lambda: 0.8})
	mk("twospin", ts, err, nil)

	col, err := model.Coloring(graph.Grid(3, 3), 4)
	mk("coloring", col, err, nil)

	lc, err := model.ListColoring(graph.Path(5), 4,
		[][]int{{0, 1}, {1, 2, 3}, {0, 2}, {1, 3}, {0, 1, 2, 3}})
	mk("listcoloring", lc, err, nil)

	mm, err := model.Matching(graph.Grid(3, 3), 2.1)
	if err != nil {
		t.Fatal(err)
	}
	mk("matching", mm.Spec, nil, nil)

	h := graph.NewHypergraph(6)
	for _, e := range [][]int{{0, 1, 2}, {2, 3, 4}, {4, 5, 0}, {1, 3, 5}} {
		if err := h.AddEdge(e...); err != nil {
			t.Fatal(err)
		}
	}
	hm, err := model.HypergraphMatching(h, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	mk("hypermatching", hm.Spec, nil, nil)

	return out
}

// TestBuilderRoundTrip encodes each builder instance, marshals it to the
// canonical document, re-parses and rebuilds, and compares the exact
// partition functions by bit pattern.
func TestBuilderRoundTrip(t *testing.T) {
	for name, in := range builderInstances(t) {
		t.Run(name, func(t *testing.T) {
			want, err := exact.Partition(in)
			if err != nil {
				t.Fatal(err)
			}
			f, err := Encode(name, in)
			if err != nil {
				t.Fatal(err)
			}
			data, err := f.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			back, err := Parse(data)
			if err != nil {
				t.Fatal(err)
			}
			b, err := back.Build()
			if err != nil {
				t.Fatal(err)
			}
			got, err := exact.Partition(b.Instance)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("Partition bits changed across the round trip: %x vs %x", got, want)
			}
			// The rebuilt instance must agree on shape, not just on Z.
			if b.Instance.N() != in.N() || b.Instance.Q() != in.Q() {
				t.Errorf("shape changed: n=%d q=%d, want n=%d q=%d", b.Instance.N(), b.Instance.Q(), in.N(), in.Q())
			}
		})
	}
}

// TestEncodeWithGraphVerifies pins EncodeWithGraph's declaration check: a
// generator kind matching the instance's interaction graph is accepted
// and round-trips, a mismatched one is a typed error.
func TestEncodeWithGraphVerifies(t *testing.T) {
	spec, err := model.Hardcore(graph.Cycle(8), 1.7)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, err := EncodeWithGraph("hc", Graph{Kind: "cycle", N: 8}, in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := exact.Partition(in)
	got, _ := exact.Partition(b.Instance)
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("named-generator round trip changed Z: %x vs %x", got, want)
	}
	if _, err := EncodeWithGraph("hc", Graph{Kind: "path", N: 8}, in); err == nil {
		t.Error("mismatched generator declaration accepted")
	}
	var se *Error
	if _, err := EncodeWithGraph("hc", Graph{Kind: "nosuch", N: 8}, in); !asSpecError(err, &se) {
		t.Errorf("unknown generator returned %v, want *Error", err)
	}
}

func asSpecError(err error, target **Error) bool {
	if err == nil {
		return false
	}
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}
