// Package spec defines the versioned, serializable instance schema: a
// declarative JSON description of a sampling/counting instance (graph,
// model or explicit factor tables, vertex domains, pinnings) together with
// a validating loader that compiles it into a gibbs.Instance and an
// encoder that serializes any table-backed instance back into the schema.
//
// The schema is the single construction path every entry point goes
// through: cmd/lsample's legacy -model/-graph/-n flags synthesize a File
// and -spec loads one from disk, both compiled by Build; the curated
// corpus under testdata/corpus/ is a set of committed Files spanning the
// paper's regimes (hardcore below/at/above λc, the Ising uniqueness
// interval endpoints, q = Δ and q = 2Δ colorings, high-degree hubs, an
// arity-3 hypergraph matching); and the same format is the wire format a
// sampling service can accept.
//
// A File declares its graph either as a named generator from the
// internal/graph registry ({"kind": "torus", "n": 4}) or as an explicit
// edge list ({"n": 6, "edges": [[0,1], ...]}); hypergraph-backed models
// declare hyperedges instead. The distribution is either a named model
// ({"kind": "hardcore", "lambda": 2}) expanded by the internal/model
// builders, or explicit factor weight tables in the big-endian mixed-radix
// encoding of gibbs.Factor. Optional vertex domains compile to 0/1 unary
// factors appended after the declared factors, and pins become the
// instance's pinned partial configuration (the paper's self-reducibility).
//
// Every operation returns the typed *Error on malformed input — never a
// panic — and Marshal is canonical: parsing a valid document and
// re-marshaling it is idempotent bit-for-bit, which the FuzzLoadSpec
// target enforces.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Version is the current schema version; Parse rejects every other value
// so old readers fail loudly instead of misinterpreting newer documents.
const Version = 1

// Schema size caps. The loader is exposed to untrusted input (spec files,
// the fuzzer, eventually a service), so every dimension that controls an
// allocation is bounded: named generators are capped tighter because
// grid/torus square their parameter.
const (
	// MaxGeneratorN caps the size parameter of a named graph generator.
	MaxGeneratorN = 256
	// MaxVertices caps the vertex count of an explicit edge/hyperedge list.
	MaxVertices = 1 << 16
	// MaxEdges caps the number of explicit edges or hyperedges.
	MaxEdges = 1 << 16
	// MaxFactors caps the number of explicit factors.
	MaxFactors = 1 << 16
	// MaxScope caps the arity of one explicit factor or hyperedge.
	MaxScope = 8
	// MaxQ caps the alphabet size of an explicit-factors document.
	MaxQ = 1 << 10
	// MaxTable caps the entry count of one explicit factor table.
	MaxTable = 1 << 20
)

// Error is the typed error of every schema operation: Path locates the
// offending field in the document ("graph.n", "factors[3].table") and Msg
// says what is wrong with it. Malformed specs always come back as *Error —
// the loader's no-panic contract, enforced by FuzzLoadSpec.
type Error struct {
	Path string
	Msg  string
}

func (e *Error) Error() string {
	if e.Path == "" {
		return "spec: " + e.Msg
	}
	return "spec: " + e.Path + ": " + e.Msg
}

func errf(path, format string, args ...any) *Error {
	return &Error{Path: path, Msg: fmt.Sprintf(format, args...)}
}

// File is one schema document: a complete declarative instance.
type File struct {
	// Version must equal Version.
	Version int `json:"version"`
	// Name identifies the instance (corpus key, diagnostics).
	Name string `json:"name,omitempty"`
	// Graph declares the input graph.
	Graph Graph `json:"graph"`
	// Model declares a named model expanded by internal/model. Exactly one
	// of Model and the explicit-factors form (Q, Factors) must be used.
	Model *Model `json:"model,omitempty"`
	// Q is the alphabet size of the explicit-factors form (zero with
	// Model, whose builders fix their own alphabet).
	Q int `json:"q,omitempty"`
	// Factors are explicit weight tables over scope assignments, in the
	// big-endian mixed-radix encoding of gibbs.Factor.Table.
	Factors []Factor `json:"factors,omitempty"`
	// Domains restrict the symbols available at individual vertices; each
	// compiles to a 0/1 unary factor appended after the declared factors.
	Domains []Domain `json:"domains,omitempty"`
	// Pin is the instance's pinned partial configuration τ. For the
	// matching/hypermatching models, vertices here (and in Domains) index
	// the instance's interaction graph — edges of the base graph — not the
	// base graph itself.
	Pin []Pin `json:"pin,omitempty"`
}

// Graph declares the input graph: exactly one of a named generator
// (Kind, N), an explicit edge list (N, Edges), or an explicit hyperedge
// list (N, Hyperedges; only with the hypermatching model).
type Graph struct {
	// Kind names a generator from the internal/graph registry.
	Kind string `json:"kind,omitempty"`
	// N is the generator's size parameter, or the vertex count of an
	// explicit edge/hyperedge list.
	N int `json:"n"`
	// Edges lists undirected edges as [u, v] pairs.
	Edges [][2]int `json:"edges,omitempty"`
	// Hyperedges lists hyperedges as vertex sets.
	Hyperedges [][]int `json:"hyperedges,omitempty"`
}

// Model declares a named model. Parameters not used by the kind must be
// left zero — the strictness keeps documents canonical.
type Model struct {
	// Kind is one of: hardcore, ising, twospin, coloring, listcoloring,
	// matching, hypermatching.
	Kind string `json:"kind"`
	// Lambda is the fugacity/activity (hardcore, ising, twospin, matching,
	// hypermatching).
	Lambda float64 `json:"lambda,omitempty"`
	// Beta is the edge activity (ising: β = γ = Beta; twospin: the
	// Out–Out weight).
	Beta float64 `json:"beta,omitempty"`
	// Gamma is the In–In edge weight (twospin only).
	Gamma float64 `json:"gamma,omitempty"`
	// Q is the palette size (coloring, listcoloring).
	Q int `json:"q,omitempty"`
	// Lists are the per-vertex color lists (listcoloring only).
	Lists [][]int `json:"lists,omitempty"`
}

// Factor is one explicit weight table over the configurations of its
// scope: Table[i] is the weight of the assignment with big-endian
// mixed-radix index i = Σ_j assign[j]·q^(s−1−j).
type Factor struct {
	Scope []int     `json:"scope"`
	Table []float64 `json:"table"`
	Name  string    `json:"name,omitempty"`
}

// Domain restricts vertex V to the symbols in Allow.
type Domain struct {
	V     int   `json:"v"`
	Allow []int `json:"allow"`
}

// Pin pins vertex V to symbol X.
type Pin struct {
	V int `json:"v"`
	X int `json:"x"`
}

// Parse decodes and validates a schema document. Unknown fields, trailing
// content, a wrong version, and every structural defect are *Error.
func Parse(data []byte) (*File, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, errf("", "invalid JSON: %v", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, errf("", "trailing content after the document")
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Marshal serializes the document canonically (fixed field order, two-space
// indent, trailing newline). Only valid documents serialize, so a parsed
// File re-marshals bit-identically: Marshal ∘ Parse ∘ Marshal = Marshal.
func (f *File) Marshal() ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		// Unreachable for validated documents (all values finite), kept as
		// a typed error rather than a silent fallback.
		return nil, errf("", "encode: %v", err)
	}
	return append(b, '\n'), nil
}

// Validate checks every structural property of the document that does not
// require building the graph: the version, the graph declaration shape,
// the model/factors exclusivity, factor table shapes and nonnegativity,
// and domain/pin well-formedness. Bounds that depend on the built instance
// (vertex indices vs the generated graph, symbols vs a model's alphabet)
// are checked by Build.
func (f *File) Validate() error {
	if f.Version != Version {
		return errf("version", "got %d, want %d", f.Version, Version)
	}
	if err := f.Graph.validate(); err != nil {
		return err
	}
	hasModel := f.Model != nil
	hasFactors := f.Q != 0 || len(f.Factors) > 0
	switch {
	case hasModel && hasFactors:
		return errf("", "model and explicit factors are mutually exclusive")
	case !hasModel && !hasFactors:
		return errf("", "need a model or an explicit alphabet q (with factors)")
	}
	if len(f.Graph.Hyperedges) > 0 && (!hasModel || f.Model.Kind != "hypermatching") {
		return errf("graph.hyperedges", "hyperedges require the hypermatching model")
	}
	if hasModel {
		if err := f.Model.validate(); err != nil {
			return err
		}
	} else {
		if f.Q < 1 || f.Q > MaxQ {
			return errf("q", "alphabet size %d outside [1, %d]", f.Q, MaxQ)
		}
		if len(f.Factors) > MaxFactors {
			return errf("factors", "%d factors exceed the cap %d", len(f.Factors), MaxFactors)
		}
		for i, fc := range f.Factors {
			if err := fc.validate(i, f.Q); err != nil {
				return err
			}
		}
	}
	seenDom := map[int]bool{}
	for i, d := range f.Domains {
		path := fmt.Sprintf("domains[%d]", i)
		if d.V < 0 {
			return errf(path+".v", "negative vertex %d", d.V)
		}
		if seenDom[d.V] {
			return errf(path+".v", "vertex %d has two domains", d.V)
		}
		seenDom[d.V] = true
		if len(d.Allow) == 0 {
			return errf(path+".allow", "empty domain")
		}
		seenSym := map[int]bool{}
		for _, x := range d.Allow {
			if x < 0 {
				return errf(path+".allow", "negative symbol %d", x)
			}
			if seenSym[x] {
				return errf(path+".allow", "symbol %d repeated", x)
			}
			seenSym[x] = true
		}
	}
	seenPin := map[int]bool{}
	for i, p := range f.Pin {
		path := fmt.Sprintf("pin[%d]", i)
		if p.V < 0 {
			return errf(path+".v", "negative vertex %d", p.V)
		}
		if seenPin[p.V] {
			return errf(path+".v", "vertex %d pinned twice", p.V)
		}
		seenPin[p.V] = true
		if p.X < 0 {
			return errf(path+".x", "negative symbol %d", p.X)
		}
	}
	return nil
}

func (g *Graph) validate() error {
	explicit := len(g.Edges) > 0 || len(g.Hyperedges) > 0
	switch {
	case g.Kind != "" && explicit:
		return errf("graph", "a named kind and an explicit edge list are mutually exclusive")
	case len(g.Edges) > 0 && len(g.Hyperedges) > 0:
		return errf("graph", "edges and hyperedges are mutually exclusive")
	case g.Kind != "":
		if g.N < 1 || g.N > MaxGeneratorN {
			return errf("graph.n", "generator size %d outside [1, %d]", g.N, MaxGeneratorN)
		}
		return nil
	}
	// Explicit vertex set (possibly with no edges at all).
	if g.N < 1 || g.N > MaxVertices {
		return errf("graph.n", "vertex count %d outside [1, %d]", g.N, MaxVertices)
	}
	if len(g.Edges) > MaxEdges {
		return errf("graph.edges", "%d edges exceed the cap %d", len(g.Edges), MaxEdges)
	}
	for i, e := range g.Edges {
		path := fmt.Sprintf("graph.edges[%d]", i)
		if e[0] < 0 || e[0] >= g.N || e[1] < 0 || e[1] >= g.N {
			return errf(path, "edge (%d, %d) outside vertex range [0, %d)", e[0], e[1], g.N)
		}
		if e[0] == e[1] {
			return errf(path, "self loop at vertex %d", e[0])
		}
	}
	if len(g.Hyperedges) > MaxEdges {
		return errf("graph.hyperedges", "%d hyperedges exceed the cap %d", len(g.Hyperedges), MaxEdges)
	}
	for i, e := range g.Hyperedges {
		path := fmt.Sprintf("graph.hyperedges[%d]", i)
		if len(e) == 0 {
			return errf(path, "empty hyperedge")
		}
		if len(e) > MaxScope {
			return errf(path, "hyperedge of size %d exceeds the cap %d", len(e), MaxScope)
		}
		for _, v := range e {
			if v < 0 || v >= g.N {
				return errf(path, "vertex %d outside range [0, %d)", v, g.N)
			}
		}
	}
	return nil
}

// modelParams says which parameters each model kind consumes; everything
// else must be zero so a document has exactly one spelling.
var modelParams = map[string]struct{ lambda, beta, gamma, q, lists bool }{
	"hardcore":      {lambda: true},
	"ising":         {lambda: true, beta: true},
	"twospin":       {lambda: true, beta: true, gamma: true},
	"coloring":      {q: true},
	"listcoloring":  {q: true, lists: true},
	"matching":      {lambda: true},
	"hypermatching": {lambda: true},
}

func (m *Model) validate() error {
	p, ok := modelParams[m.Kind]
	if !ok {
		return errf("model.kind", "unknown model %q", m.Kind)
	}
	if !p.lambda && m.Lambda != 0 {
		return errf("model.lambda", "model %q takes no lambda", m.Kind)
	}
	if !p.beta && m.Beta != 0 {
		return errf("model.beta", "model %q takes no beta", m.Kind)
	}
	if !p.gamma && m.Gamma != 0 {
		return errf("model.gamma", "model %q takes no gamma", m.Kind)
	}
	if !p.q && m.Q != 0 {
		return errf("model.q", "model %q takes no q", m.Kind)
	}
	if !p.lists && m.Lists != nil {
		return errf("model.lists", "model %q takes no lists", m.Kind)
	}
	for _, v := range []struct {
		name string
		x    float64
	}{{"lambda", m.Lambda}, {"beta", m.Beta}, {"gamma", m.Gamma}} {
		if math.IsNaN(v.x) || math.IsInf(v.x, 0) {
			return errf("model."+v.name, "must be finite, got %v", v.x)
		}
	}
	if p.q && (m.Q < 1 || m.Q > MaxQ) {
		return errf("model.q", "palette size %d outside [1, %d]", m.Q, MaxQ)
	}
	// List contents are checked against the palette by the builder; the
	// schema only bounds the shape.
	if m.Lists != nil && len(m.Lists) > MaxVertices {
		return errf("model.lists", "%d lists exceed the cap %d", len(m.Lists), MaxVertices)
	}
	return nil
}

func (fc *Factor) validate(i, q int) error {
	path := fmt.Sprintf("factors[%d]", i)
	if len(fc.Scope) == 0 {
		return errf(path+".scope", "empty scope")
	}
	if len(fc.Scope) > MaxScope {
		return errf(path+".scope", "arity %d exceeds the cap %d", len(fc.Scope), MaxScope)
	}
	for _, v := range fc.Scope {
		if v < 0 {
			return errf(path+".scope", "negative vertex %d", v)
		}
	}
	want := 1
	for range fc.Scope {
		if want > MaxTable/q {
			return errf(path+".table", "table over q^%d assignments too large", len(fc.Scope))
		}
		want *= q
	}
	if len(fc.Table) != want {
		return errf(path+".table", "%d entries, want q^%d = %d", len(fc.Table), len(fc.Scope), want)
	}
	for j, w := range fc.Table {
		// !(w >= 0) also catches NaN, which JSON cannot carry but a
		// programmatically built File could.
		if !(w >= 0) || math.IsInf(w, 0) {
			return errf(fmt.Sprintf("%s.table[%d]", path, j), "weights must be finite and nonnegative, got %v", w)
		}
	}
	return nil
}
