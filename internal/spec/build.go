package spec

// build.go compiles a validated document into a gibbs.Instance. Build is
// the single construction codepath behind every entry point: the factor
// list it hands to gibbs.NewSpec preserves the document's order (declared
// factors first, then domain factors in declaration order), so the weight
// products — and therefore the exact partition function — are bit-for-bit
// reproducible across loads.

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
)

// Built is the compiled form of a document: the instance plus the
// intermediate objects consumers need (the declared input graph for
// reporting, the matching-model wrappers for rendering and oracles).
type Built struct {
	// File is the document this was built from.
	File *File
	// Instance is the compiled sampling/counting instance.
	Instance *gibbs.Instance
	// Input is the declared graph. For the matching and hypermatching
	// models the instance itself lives on a derived graph (line graph,
	// intersection graph) — Instance.Spec.G — while Input (or Hyper) is
	// what the document declared.
	Input *graph.Graph
	// Hyper is the declared hypergraph (hypermatching only).
	Hyper *graph.Hypergraph
	// Matching is the matching-model wrapper (matching only).
	Matching *model.MatchingModel
	// HyperMatching is the hypergraph-matching wrapper (hypermatching
	// only).
	HyperMatching *model.HypergraphMatchingModel
}

// ModelKind returns the document's model kind, or "wcsp" for the
// explicit-factors form.
func (b *Built) ModelKind() string {
	if b.File.Model != nil {
		return b.File.Model.Kind
	}
	return "wcsp"
}

// GraphKind returns the declared graph's kind: the generator name, or
// "explicit"/"hypergraph" for explicit lists.
func (b *Built) GraphKind() string {
	switch {
	case b.File.Graph.Kind != "":
		return b.File.Graph.Kind
	case b.Hyper != nil:
		return "hypergraph"
	default:
		return "explicit"
	}
}

// Build validates the document and compiles it into an instance. All
// errors — including model-builder rejections such as a non-positive
// fugacity — come back as *Error locating the offending field.
func (f *File) Build() (*Built, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	b := &Built{File: f}

	// The declared graph.
	switch {
	case len(f.Graph.Hyperedges) > 0:
		h := graph.NewHypergraph(f.Graph.N)
		for i, e := range f.Graph.Hyperedges {
			if err := h.AddEdge(e...); err != nil {
				return nil, errf(fmt.Sprintf("graph.hyperedges[%d]", i), "%v", err)
			}
		}
		b.Hyper = h
	case f.Graph.Kind != "":
		g, err := graph.Build(f.Graph.Kind, f.Graph.N)
		if err != nil {
			return nil, errf("graph.kind", "%v", err)
		}
		b.Input = g
	default:
		g := graph.New(f.Graph.N)
		for i, e := range f.Graph.Edges {
			if err := g.AddEdge(e[0], e[1]); err != nil {
				return nil, errf(fmt.Sprintf("graph.edges[%d]", i), "%v", err)
			}
		}
		g.SortAdjacency()
		b.Input = g
	}

	// The Gibbs specification: a named model or explicit factors.
	var spec *gibbs.Spec
	if f.Model != nil {
		if err := f.Model.boundCost(b); err != nil {
			return nil, err
		}
		s, err := f.Model.build(b)
		if err != nil {
			return nil, err
		}
		spec = s
	} else {
		factors := make([]gibbs.Factor, len(f.Factors))
		for i, fc := range f.Factors {
			factors[i] = gibbs.Factor{Scope: fc.Scope, Table: fc.Table, Name: fc.Name}
		}
		s, err := gibbs.NewSpec(b.Input, f.Q, factors)
		if err != nil {
			return nil, errf("factors", "%v", err)
		}
		spec = s
	}

	// Vertex domains compile to 0/1 unary factors appended after the
	// declared factors, in declaration order.
	if len(f.Domains) > 0 {
		factors := append([]gibbs.Factor(nil), spec.Factors...)
		for i, d := range f.Domains {
			path := fmt.Sprintf("domains[%d]", i)
			if d.V >= spec.N() {
				return nil, errf(path+".v", "vertex %d outside the instance's %d vertices", d.V, spec.N())
			}
			allowed := make([]float64, spec.Q)
			for _, x := range d.Allow {
				if x >= spec.Q {
					return nil, errf(path+".allow", "symbol %d outside alphabet q=%d", x, spec.Q)
				}
				allowed[x] = 1
			}
			factors = append(factors, gibbs.UnaryTable(d.V, allowed, "domain"))
		}
		s, err := gibbs.NewSpec(spec.G, spec.Q, factors)
		if err != nil {
			return nil, errf("domains", "%v", err)
		}
		spec = s
	}

	pinned := dist.NewConfig(spec.N())
	for i, p := range f.Pin {
		path := fmt.Sprintf("pin[%d]", i)
		if p.V >= spec.N() {
			return nil, errf(path+".v", "vertex %d outside the instance's %d vertices", p.V, spec.N())
		}
		if p.X >= spec.Q {
			return nil, errf(path+".x", "symbol %d outside alphabet q=%d", p.X, spec.Q)
		}
		pinned[p.V] = p.X
	}
	in, err := gibbs.NewInstance(spec, pinned)
	if err != nil {
		return nil, errf("pin", "%v", err)
	}
	b.Instance = in
	return b, nil
}

// MaxBuildWeights caps the total weight-table entries a named model may
// expand to. The schema's per-field caps bound what the document itself
// can allocate, but a model expansion multiplies fields — a large
// generator times a large palette (coloring emits a q² table per edge),
// or a hypergraph whose intersection graph is quadratic in the hyperedge
// count — so the loader bounds the product before expanding. Untrusted
// input must not be able to buy gigabytes with a hundred bytes of JSON.
const MaxBuildWeights = 1 << 24

// boundCost rejects model expansions whose factor tables would exceed
// MaxBuildWeights entries, using only degree arithmetic on the declared
// graph (no expansion-sized allocation happens before the check).
func (m *Model) boundCost(b *Built) error {
	q := 2 // hardcore, ising, twospin, matching, hypermatching
	switch m.Kind {
	case "coloring", "listcoloring":
		q = m.Q
	}
	var cost int
	switch {
	case m.Kind == "hypermatching" && b.Hyper != nil:
		// The instance lives on the intersection graph: one vertex per
		// hyperedge, and Σ_v C(deg v, 2) bounds its edge count.
		h := b.Hyper
		cost = h.M()
		for v := 0; v < h.N(); v++ {
			d := h.VertexDegree(v)
			cost += d * (d - 1) / 2 * q * q
			if cost > MaxBuildWeights {
				break
			}
		}
	case m.Kind == "matching" && b.Input != nil:
		// Line graph: one vertex per edge, Σ_v C(deg v, 2) edges.
		g := b.Input
		cost = g.M()
		for v := 0; v < g.N(); v++ {
			d := g.Degree(v)
			cost += d * (d - 1) / 2 * q * q
			if cost > MaxBuildWeights {
				break
			}
		}
	case b.Input != nil:
		cost = b.Input.N()*q + b.Input.M()*q*q
	}
	if cost > MaxBuildWeights {
		return errf("model", "model %q on this graph would expand to more than %d weight-table entries", m.Kind, MaxBuildWeights)
	}
	return nil
}

// build expands a named model on the built graph. Vertex-count-dependent
// checks (lists length) surface here as *Error.
func (m *Model) build(b *Built) (*gibbs.Spec, error) {
	wrap := func(s *gibbs.Spec, err error) (*gibbs.Spec, error) {
		if err != nil {
			return nil, errf("model", "%v", err)
		}
		return s, nil
	}
	switch m.Kind {
	case "hardcore":
		return wrap(model.Hardcore(b.Input, m.Lambda))
	case "ising":
		return wrap(model.Ising(b.Input, m.Beta, m.Lambda))
	case "twospin":
		return wrap(model.TwoSpin(b.Input, model.TwoSpinParams{Beta: m.Beta, Gamma: m.Gamma, Lambda: m.Lambda}))
	case "coloring":
		return wrap(model.Coloring(b.Input, m.Q))
	case "listcoloring":
		return wrap(model.ListColoring(b.Input, m.Q, m.Lists))
	case "matching":
		mm, err := model.Matching(b.Input, m.Lambda)
		if err != nil {
			return nil, errf("model", "%v", err)
		}
		b.Matching = mm
		return mm.Spec, nil
	case "hypermatching":
		if b.Hyper == nil {
			return nil, errf("graph", "the hypermatching model needs an explicit hyperedge list")
		}
		hm, err := model.HypergraphMatching(b.Hyper, m.Lambda)
		if err != nil {
			return nil, errf("model", "%v", err)
		}
		b.HyperMatching = hm
		return hm.Spec, nil
	default:
		// Unreachable after Validate; kept as a typed error for defense.
		return nil, errf("model.kind", "unknown model %q", m.Kind)
	}
}
