package spec

// spec_test.go pins the schema's validation surface: every malformed
// document is a typed *Error naming the offending field, valid documents
// marshal canonically, and the caps hold.

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/exact"
)

func validDoc() *File {
	return &File{
		Version: Version,
		Name:    "t",
		Graph:   Graph{Kind: "cycle", N: 8},
		Model:   &Model{Kind: "hardcore", Lambda: 1.5},
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(f *File)
		path string // required Error.Path prefix
	}{
		{"wrong version", func(f *File) { f.Version = 2 }, "version"},
		{"kind and edges", func(f *File) { f.Graph.Edges = [][2]int{{0, 1}} }, "graph"},
		{"generator too large", func(f *File) { f.Graph.N = MaxGeneratorN + 1 }, "graph.n"},
		{"generator nonpositive", func(f *File) { f.Graph.N = 0 }, "graph.n"},
		{"model and factors", func(f *File) { f.Q = 2 }, ""},
		{"neither model nor factors", func(f *File) { f.Model = nil }, ""},
		{"unknown model", func(f *File) { f.Model.Kind = "nosuch" }, "model.kind"},
		{"unused param", func(f *File) { f.Model.Q = 3 }, "model.q"},
		{"nan lambda", func(f *File) { f.Model.Lambda = math.NaN() }, "model.lambda"},
		{"inf lambda", func(f *File) { f.Model.Lambda = math.Inf(1) }, "model.lambda"},
		{"hyperedges without hypermatching", func(f *File) {
			f.Graph = Graph{N: 4, Hyperedges: [][]int{{0, 1, 2}}}
		}, "graph.hyperedges"},
		{"duplicate pin", func(f *File) { f.Pin = []Pin{{V: 1, X: 0}, {V: 1, X: 1}} }, "pin[1].v"},
		{"negative pin symbol", func(f *File) { f.Pin = []Pin{{V: 1, X: -1}} }, "pin[0].x"},
		{"duplicate domain", func(f *File) {
			f.Domains = []Domain{{V: 0, Allow: []int{0}}, {V: 0, Allow: []int{1}}}
		}, "domains[1].v"},
		{"empty domain", func(f *File) { f.Domains = []Domain{{V: 0}} }, "domains[0].allow"},
		{"repeated domain symbol", func(f *File) { f.Domains = []Domain{{V: 0, Allow: []int{1, 1}}} }, "domains[0].allow"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := validDoc()
			tc.mut(f)
			err := f.Validate()
			var se *Error
			if !errors.As(err, &se) {
				t.Fatalf("Validate() = %v, want *Error", err)
			}
			if !strings.HasPrefix(se.Path, tc.path) {
				t.Errorf("error path %q, want prefix %q (%v)", se.Path, tc.path, se)
			}
		})
	}
}

func TestValidateExplicitFactors(t *testing.T) {
	base := func() *File {
		return &File{
			Version: Version,
			Graph:   Graph{N: 3, Edges: [][2]int{{0, 1}, {1, 2}}},
			Q:       2,
			Factors: []Factor{{Scope: []int{0, 1}, Table: []float64{1, 2, 3, 4}}},
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid explicit document rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(f *File)
		path string
	}{
		{"edge out of range", func(f *File) { f.Graph.Edges[0] = [2]int{0, 3} }, "graph.edges[0]"},
		{"self loop", func(f *File) { f.Graph.Edges[0] = [2]int{1, 1} }, "graph.edges[0]"},
		{"q over cap", func(f *File) { f.Q = MaxQ + 1 }, "q"},
		{"empty scope", func(f *File) { f.Factors[0].Scope = nil }, "factors[0].scope"},
		{"scope over cap", func(f *File) { f.Factors[0].Scope = make([]int, MaxScope+1) }, "factors[0].scope"},
		{"negative scope vertex", func(f *File) { f.Factors[0].Scope = []int{-1} }, "factors[0].scope"},
		{"table size mismatch", func(f *File) { f.Factors[0].Table = []float64{1} }, "factors[0].table"},
		{"negative weight", func(f *File) { f.Factors[0].Table[2] = -1 }, "factors[0].table[2]"},
		{"nan weight", func(f *File) { f.Factors[0].Table[0] = math.NaN() }, "factors[0].table[0]"},
		{"inf weight", func(f *File) { f.Factors[0].Table[0] = math.Inf(1) }, "factors[0].table[0]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := base()
			tc.mut(f)
			err := f.Validate()
			var se *Error
			if !errors.As(err, &se) {
				t.Fatalf("Validate() = %v, want *Error", err)
			}
			if !strings.HasPrefix(se.Path, tc.path) {
				t.Errorf("error path %q, want prefix %q (%v)", se.Path, tc.path, se)
			}
		})
	}
}

func TestParseStrictness(t *testing.T) {
	bad := []struct {
		name string
		data string
	}{
		{"empty", ""},
		{"not json", "nope"},
		{"unknown field", `{"version":1,"bogus":true,"graph":{"kind":"cycle","n":4},"model":{"kind":"hardcore","lambda":1}}`},
		{"trailing content", `{"version":1,"graph":{"kind":"cycle","n":4},"model":{"kind":"hardcore","lambda":1}} {"more":1}`},
		{"wrong version", `{"version":7,"graph":{"kind":"cycle","n":4},"model":{"kind":"hardcore","lambda":1}}`},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			var se *Error
			if _, err := Parse([]byte(tc.data)); !errors.As(err, &se) {
				t.Errorf("Parse accepted, or returned a non-*Error: %v", err)
			}
		})
	}
}

// TestMarshalCanonical pins the canonicalization law the fuzz target
// enforces at scale: Marshal ∘ Parse ∘ Marshal = Marshal.
func TestMarshalCanonical(t *testing.T) {
	data, err := validDoc().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	again, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Errorf("re-marshal is not canonical:\n%s\nvs\n%s", data, again)
	}
	if data[len(data)-1] != '\n' {
		t.Error("canonical form lacks the trailing newline")
	}
}

// TestBuildSemanticErrors pins the loader errors only Build can detect
// (they depend on the built graph or the model's alphabet).
func TestBuildSemanticErrors(t *testing.T) {
	cases := []struct {
		name string
		f    *File
		path string
	}{
		{"pin vertex out of range", &File{
			Version: Version, Graph: Graph{Kind: "cycle", N: 4},
			Model: &Model{Kind: "hardcore", Lambda: 1},
			Pin:   []Pin{{V: 9, X: 0}},
		}, "pin[0].v"},
		{"pin symbol out of range", &File{
			Version: Version, Graph: Graph{Kind: "cycle", N: 4},
			Model: &Model{Kind: "hardcore", Lambda: 1},
			Pin:   []Pin{{V: 0, X: 5}},
		}, "pin[0].x"},
		{"domain vertex out of range", &File{
			Version: Version, Graph: Graph{Kind: "cycle", N: 4},
			Model:   &Model{Kind: "hardcore", Lambda: 1},
			Domains: []Domain{{V: 7, Allow: []int{0}}},
		}, "domains[0].v"},
		{"domain symbol out of range", &File{
			Version: Version, Graph: Graph{Kind: "cycle", N: 4},
			Model:   &Model{Kind: "hardcore", Lambda: 1},
			Domains: []Domain{{V: 0, Allow: []int{3}}},
		}, "domains[0].allow"},
		{"unknown generator", &File{
			Version: Version, Graph: Graph{Kind: "nosuch", N: 4},
			Model: &Model{Kind: "hardcore", Lambda: 1},
		}, "graph.kind"},
		{"builder rejection", &File{
			Version: Version, Graph: Graph{Kind: "cycle", N: 4},
			Model: &Model{Kind: "hardcore", Lambda: -2},
		}, "model"},
		{"hypermatching without hyperedges", &File{
			Version: Version, Graph: Graph{Kind: "cycle", N: 4},
			Model: &Model{Kind: "hypermatching", Lambda: 1},
		}, "graph"},
		{"coloring palette explosion", &File{
			Version: Version, Graph: Graph{Kind: "torus", N: 200},
			Model: &Model{Kind: "coloring", Q: 1000},
		}, "model"},
		{"factor scope vs graph", &File{
			Version: Version, Graph: Graph{N: 2, Edges: [][2]int{{0, 1}}},
			Q:       2,
			Factors: []Factor{{Scope: []int{5}, Table: []float64{1, 1}}},
		}, "factors"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.f.Build()
			var se *Error
			if !errors.As(err, &se) {
				t.Fatalf("Build() = %v, want *Error", err)
			}
			if !strings.HasPrefix(se.Path, tc.path) {
				t.Errorf("error path %q, want prefix %q (%v)", se.Path, tc.path, se)
			}
		})
	}
}

// TestBuildDomainsAndPins checks the semantics Build gives domains and
// pins: a domain halves the star's leaf alphabet, a pin fixes a vertex.
func TestBuildDomainsAndPins(t *testing.T) {
	f := &File{
		Version: Version,
		Graph:   Graph{Kind: "path", N: 3},
		Q:       2,
		Factors: []Factor{{Scope: []int{0, 1}, Table: []float64{1, 1, 1, 1}, Name: "free"}},
		Domains: []Domain{{V: 2, Allow: []int{0}}},
		Pin:     []Pin{{V: 0, X: 1}},
	}
	b, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Instance.Pinned[0]; got != 1 {
		t.Errorf("pin not applied: Pinned[0] = %d", got)
	}
	free := b.Instance.FreeVertices()
	for _, v := range free {
		if v == 0 {
			t.Error("pinned vertex 0 reported free")
		}
	}
	// 2 free vertices, vertex 2 restricted to symbol 0 → 2 configurations.
	// All factor weights are 1, so Z counts them.
	z, err := exact.Partition(b.Instance)
	if err != nil {
		t.Fatal(err)
	}
	if z != 2 {
		t.Errorf("Z = %g, want 2 (domain or pin not enforced)", z)
	}
}
