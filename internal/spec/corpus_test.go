package spec

// corpus_test.go curates the committed instance corpus under
// testdata/corpus/ and holds it to the schema's contracts. The corpus is
// table-driven — corpusEntries is the source of truth, and the committed
// JSON documents plus the golden partition values are regenerated with
//
//	go test ./internal/spec -run TestCorpus -update
//
// The entries span the paper's regimes: hardcore below/at/above the
// uniqueness threshold λc(Δ) = (Δ−1)^(Δ−1)/(Δ−2)^Δ (λc(3) = 4 on the
// binary tree), the Ising uniqueness interval ((Δ−2)/Δ, Δ/(Δ−2)) = (½, 2)
// endpoints on the Δ = 4 torus, q = Δ and q = 2Δ colorings, a high-degree
// star hub, a monomer–dimer model on the grid's line graph, an arity-3
// hypergraph matching, list coloring, and an explicit weighted CSP with a
// ternary factor, a vertex domain, and a pin.

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"testing"

	"repro/internal/exact"
)

var update = flag.Bool("update", false, "rewrite the corpus documents and golden partition values")

const corpusDir = "../../testdata/corpus"
const goldenFile = "golden_partition.json"

func corpusEntries() []*File {
	hardcoreTree := func(name string, lambda float64) *File {
		return &File{
			Version: Version,
			Name:    name,
			Graph:   Graph{Kind: "tree", N: 15},
			Model:   &Model{Kind: "hardcore", Lambda: lambda},
		}
	}
	isingTorus := func(name string, beta float64) *File {
		return &File{
			Version: Version,
			Name:    name,
			Graph:   Graph{Kind: "torus", N: 3},
			Model:   &Model{Kind: "ising", Beta: beta, Lambda: 1},
		}
	}
	nae := make([]float64, 27)
	for i := range nae {
		a, b, c := i/9, i/3%3, i%3
		if a == b && b == c {
			nae[i] = 0.25
		} else {
			nae[i] = 1
		}
	}
	return []*File{
		// Hardcore on the 15-vertex binary tree (Δ = 3, λc = 4): the
		// uniqueness regime, the critical point, and the non-uniqueness
		// regime where the paper's Ω(diam) lower bound applies.
		hardcoreTree("hardcore-tree15-below", 2),
		hardcoreTree("hardcore-tree15-critical", 4),
		hardcoreTree("hardcore-tree15-above", 6),
		// Ising on the 3×3 torus (Δ = 4): both endpoints of the uniqueness
		// interval (½, 2).
		isingTorus("ising-torus3-low", 0.5),
		isingTorus("ising-torus3-high", 2),
		// Colorings at the q = Δ and q = 2Δ landmarks.
		{
			Version: Version,
			Name:    "coloring-grid3-qeqdelta",
			Graph:   Graph{Kind: "grid", N: 3},
			Model:   &Model{Kind: "coloring", Q: 4},
		},
		{
			Version: Version,
			Name:    "coloring-tree7-q2delta",
			Graph:   Graph{Kind: "tree", N: 7},
			Model:   &Model{Kind: "coloring", Q: 6},
		},
		// A high-degree hub: the star's center has Δ = 11.
		{
			Version: Version,
			Name:    "hardcore-star12-hub",
			Graph:   Graph{Kind: "star", N: 12},
			Model:   &Model{Kind: "hardcore", Lambda: 1.5},
		},
		// Monomer–dimer on the 3×3 grid: the instance lives on the line
		// graph (12 edge-vertices).
		{
			Version: Version,
			Name:    "matching-grid3",
			Graph:   Graph{Kind: "grid", N: 3},
			Model:   &Model{Kind: "matching", Lambda: 2},
		},
		// An arity-3 (3-uniform) hypergraph matching: the instance lives on
		// the intersection graph of the four hyperedges.
		{
			Version: Version,
			Name:    "hypermatching-arity3",
			Graph:   Graph{N: 6, Hyperedges: [][]int{{0, 1, 2}, {2, 3, 4}, {4, 5, 0}, {1, 3, 5}}},
			Model:   &Model{Kind: "hypermatching", Lambda: 1.2},
		},
		// List coloring with genuinely distinct per-vertex palettes.
		{
			Version: Version,
			Name:    "listcoloring-path5",
			Graph:   Graph{Kind: "path", N: 5},
			Model:   &Model{Kind: "listcoloring", Q: 4, Lists: [][]int{{0, 1}, {1, 2, 3}, {0, 2}, {1, 3}, {0, 1, 2, 3}}},
		},
		// An explicit weighted CSP: explicit edges, a ternary factor on a
		// clique, a vertex domain, and a pin — every schema feature the
		// named models don't exercise.
		{
			Version: Version,
			Name:    "wcsp-explicit-pinned",
			Graph:   Graph{N: 4, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}}},
			Q:       3,
			Factors: []Factor{
				{Scope: []int{0}, Table: []float64{1, 2, 0.5}, Name: "field"},
				{Scope: []int{0, 1}, Table: []float64{1, 0.8, 1, 0.8, 1, 1.2, 1, 1.2, 1}, Name: "pair"},
				{Scope: []int{0, 1, 2}, Table: nae, Name: "nae"},
			},
			Domains: []Domain{{V: 3, Allow: []int{0, 2}}},
			Pin:     []Pin{{V: 1, X: 1}},
		},
	}
}

// loadCorpus reads every committed corpus document.
func loadCorpus(t *testing.T) map[string]*File {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(corpusDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]*File)
	for _, path := range paths {
		if filepath.Base(path) == goldenFile {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		out[f.Name] = f
	}
	return out
}

// TestCorpusUpToDate pins the committed documents to the table: every
// entry's canonical marshaling must match its file byte for byte, and no
// stray documents may sit in the corpus directory.
func TestCorpusUpToDate(t *testing.T) {
	entries := corpusEntries()
	if len(entries) < 10 {
		t.Fatalf("corpus has %d entries, want ≥ 10", len(entries))
	}
	if *update {
		if err := os.MkdirAll(corpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	names := map[string]bool{}
	for _, f := range entries {
		names[f.Name] = true
		data, err := f.Marshal()
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		path := filepath.Join(corpusDir, f.Name+".json")
		if *update {
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		committed, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to regenerate)", f.Name, err)
		}
		if !bytes.Equal(committed, data) {
			t.Errorf("%s: committed document differs from the table (run with -update)", f.Name)
		}
	}
	paths, err := filepath.Glob(filepath.Join(corpusDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range paths {
		base := filepath.Base(path)
		if base == goldenFile {
			continue
		}
		if !names[base[:len(base)-len(".json")]] {
			t.Errorf("stray corpus document %s not in the table", base)
		}
	}
}

// readGolden decodes the golden partition values (hex-float strings keyed
// by instance name, so the pins are exact to the bit).
func readGolden(t *testing.T) map[string]float64 {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(corpusDir, goldenFile))
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	var raw map[string]string
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64, len(raw))
	for name, hex := range raw {
		z, err := strconv.ParseFloat(hex, 64)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = z
	}
	return out
}

// TestCorpusGoldenPartition decodes every corpus document, compiles it,
// and pins its exact partition function bit for bit against the committed
// golden value.
func TestCorpusGoldenPartition(t *testing.T) {
	corpus := loadCorpus(t)
	if *update {
		vals := make(map[string]string, len(corpus))
		for name, f := range corpus {
			b, err := f.Build()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			z, err := exact.Partition(b.Instance)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			vals[name] = strconv.FormatFloat(z, 'x', -1, 64)
		}
		names := make([]string, 0, len(vals))
		for name := range vals {
			names = append(names, name)
		}
		sort.Strings(names)
		var buf bytes.Buffer
		buf.WriteString("{\n")
		for i, name := range names {
			comma := ","
			if i == len(names)-1 {
				comma = ""
			}
			buf.WriteString("  " + strconv.Quote(name) + ": " + strconv.Quote(vals[name]) + comma + "\n")
		}
		buf.WriteString("}\n")
		if err := os.WriteFile(filepath.Join(corpusDir, goldenFile), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	golden := readGolden(t)
	if len(golden) != len(corpus) {
		t.Errorf("golden file has %d entries, corpus has %d", len(golden), len(corpus))
	}
	for name, f := range corpus {
		t.Run(name, func(t *testing.T) {
			b, err := f.Build()
			if err != nil {
				t.Fatal(err)
			}
			z, err := exact.Partition(b.Instance)
			if err != nil {
				t.Fatal(err)
			}
			want, ok := golden[name]
			if !ok {
				t.Fatalf("no golden value (run with -update)")
			}
			if z != want {
				t.Errorf("Partition = %x, golden %x", z, want)
			}
		})
	}
}

// TestCorpusEncodeRoundTrip re-encodes every compiled corpus instance as
// an explicit-factors document, marshals and re-parses it, and requires
// the rebuilt instance's partition function to match bit for bit.
func TestCorpusEncodeRoundTrip(t *testing.T) {
	for name, f := range loadCorpus(t) {
		t.Run(name, func(t *testing.T) {
			b, err := f.Build()
			if err != nil {
				t.Fatal(err)
			}
			want, err := exact.Partition(b.Instance)
			if err != nil {
				t.Fatal(err)
			}
			enc, err := Encode(f.Name, b.Instance)
			if err != nil {
				t.Fatal(err)
			}
			data, err := enc.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			back, err := Parse(data)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := back.Build()
			if err != nil {
				t.Fatal(err)
			}
			got, err := exact.Partition(rb.Instance)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("round-tripped Partition = %x, want %x", got, want)
			}
		})
	}
}
