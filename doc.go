// Package repro is a from-scratch Go reproduction of Feng & Yin,
// "On Local Distributed Sampling and Counting" (PODC 2018,
// arXiv:1802.06686).
//
// The library lives under internal/: the LOCAL and SLOCAL model simulators,
// network decompositions, Gibbs distributions and concrete models, the
// correlation-decay inference oracles, and the paper's reductions (the
// sampling/inference equivalence, the boosting lemma, the distributed JVV
// exact sampler, and the strong-spatial-mixing characterization). The
// performance substrate — the compact state lattice, the compiled
// factor-table engine with its fused sweep-plan batch kernel plus the
// per-vertex conditional-CDF cache layered on the plans, and the
// batched multi-chain sampler it drives — is documented in README.md,
// as is the adaptive run controller (internal/run) that drives any
// batched dynamic to R̂/ESS convergence targets with acceptance-rate
// escalation between dynamics.
// Instances are declared through the versioned JSON schema of
// internal/spec (loader, encoder, and the curated corpus under
// testdata/corpus/), which every entry point compiles through one
// codepath. The runnable entry points are the commands under cmd/ and the
// examples under examples/; the experiment suite that reproduces every
// claim of the paper is internal/experiment, benchmarked from
// bench_test.go in this directory.
//
// See README.md, DESIGN.md and EXPERIMENTS.md for the complete map.
package repro
