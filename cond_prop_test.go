package repro_test

// cond_prop_test.go: the conditional-CDF cache equivalence property. PR 10
// layers per-vertex neighborhood-code LUTs (gibbs.CondCache) under the
// fused batch kernels; nothing downstream may be able to tell. The test
// pins that corpus-wide: for every instance of testdata/corpus/, on
// compact and forced-wide lattices, every registered batched dynamic
// driven by the adaptive controller must produce BIT-IDENTICAL reports and
// final lattices with the cache disabled (every draw on the sweep-plan
// walk) and enabled — same seed, same uniforms, same symbols. The cache
// coverage itself is asserted non-trivial so the comparison cannot pass
// vacuously.

import (
	"reflect"
	"testing"

	"repro/internal/gibbs"
	"repro/internal/run"
	"repro/internal/sampler"
	"repro/internal/state"
)

func TestCondCacheBitIdenticalAcrossCorpus(t *testing.T) {
	const seed = 20260808
	policy := run.Policy{
		Chains:     6,
		BurnIn:     2,
		MaxSweeps:  10,
		CheckEvery: 2,
		Rhat:       1.1,
		MinESS:     50,
		Workers:    3,
	}
	for name, in := range corpusInstances(t) {
		t.Run(name, func(t *testing.T) {
			eng := in.Spec.Compiled()
			st := eng.CondStats()
			if st.Cached == 0 || st.Bytes == 0 {
				t.Fatalf("cache covers nothing on %s (stats %+v) — the comparison would be vacuous", name, st)
			}
			for _, rep := range []struct {
				name string
				wide bool
			}{{"compact", false}, {"wide", true}} {
				t.Run(rep.name, func(t *testing.T) {
					restore := func() {}
					if rep.wide {
						restore = state.SetCompactLimitForTest(0)
					}
					defer restore()
					for _, dyn := range sampler.MultiNames() {
						t.Run(dyn, func(t *testing.T) {
							eng.SetCondMode(gibbs.CondOff)
							repOff, mOff, err := run.One(in, dyn, seed, policy)
							eng.SetCondMode(gibbs.CondAuto)
							if err != nil {
								t.Fatal(err)
							}
							repOn, mOn, err := run.One(in, dyn, seed, policy)
							if err != nil {
								t.Fatal(err)
							}
							if !reflect.DeepEqual(repOff, repOn) {
								t.Errorf("cache changed the report:\noff: %+v\non:  %+v", repOff, repOn)
							}
							sameChains(t, mOff, mOn)
						})
					}
				})
			}
		})
	}
}
