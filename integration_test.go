// Integration tests exercising complete pipelines across packages: the
// full Theorem 4.2 stack (decay oracle → boosting → JVV → network
// decomposition scheduling), cross-model agreement between all inference
// paths, fault injection, and the Glauber-dynamics baseline comparison.
package repro_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/construct"
	"repro/internal/core"
	"repro/internal/decay"
	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
	"repro/internal/glauber"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/model"
	"repro/internal/netdecomp"
	"repro/internal/slocal"
)

func hardcoreSetup(t testing.TB, g *graph.Graph, lambda float64) (*gibbs.Instance, *core.DecayOracle) {
	t.Helper()
	spec, err := model.Hardcore(g, lambda)
	if err != nil {
		t.Fatal(err)
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	est, err := decay.NewHardcoreSAW(g, lambda)
	if err != nil {
		t.Fatal(err)
	}
	rate := model.HardcoreDecayRate(lambda, g.MaxDegree())
	return in, &core.DecayOracle{Est: est, Rate: rate, N: g.N()}
}

// TestFourInferencePathsAgree checks that every inference path in the
// repository — brute force, SAW decay, SSM shell-pinning, and boosting —
// lands on the same marginal within its promised accuracy.
func TestFourInferencePathsAgree(t *testing.T) {
	g := graph.Cycle(10)
	lambda := 1.1
	in, o := hardcoreSetup(t, g, lambda)
	pin := dist.NewConfig(g.N())
	pin[5] = model.In
	in = in.PinAll(pin)

	truth, err := exact.Marginal(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Path 2: SAW decay oracle.
	saw, _, err := o.Marginal(in, 0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Path 3: SSM shell-pinned ball enumeration.
	ssm, _, err := core.SSMInference(in, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Path 4: boosting.
	boost, err := core.Boost(in, o, 0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string]dist.Dist{"saw": saw, "ssm": ssm, "boost": boost.Marginal} {
		tv, err := dist.TV(got, truth)
		if err != nil {
			t.Fatal(err)
		}
		if tv > 0.05 {
			t.Errorf("%s path off by %v (got %v, want %v)", name, tv, got, truth)
		}
	}
}

// TestFullTheorem42Stack runs the complete composition the paper builds:
// additive decay oracle → boosting lemma → multiplicative oracle → local
// JVV → Lemma 3.1 scheduling through a real network decomposition; the
// scheduled order must be a valid permutation, failures certified, and the
// output exactly distributed (statistically).
func TestFullTheorem42Stack(t *testing.T) {
	g := graph.Cycle(6)
	lambda := 1.0
	in, add := hardcoreSetup(t, g, lambda)
	mult := &core.BoostOracle{Additive: add}

	truth, err := exact.JointDistribution(in)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(201))
	emp := dist.NewEmpirical(g.N())
	const trials = 4000
	for i := 0; i < trials; i++ {
		res, rounds, err := core.JVVLOCAL(in, mult, core.JVVConfig{Eps: 0.01, FullRatio: true}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if rounds <= 0 {
			t.Fatal("no rounds charged")
		}
		if !res.Accepted() {
			continue
		}
		emp.Observe(res.Config)
	}
	got, err := emp.Joint()
	if err != nil {
		t.Fatal(err)
	}
	tv, err := dist.TVJoint(truth, got)
	if err != nil {
		t.Fatal(err)
	}
	if noise := dist.ExpectedTVNoise(truth.Len(), emp.Total()); tv > noise {
		t.Errorf("stacked JVV TV = %v exceeds noise %v", tv, noise)
	}
}

// TestNoisyOracleIsDetectedByAcceptance injects oracle bias and checks the
// JVV acceptance machinery notices: acceptance probabilities drop below
// the clean-oracle profile (the rejection step is exactly what protects
// exactness).
func TestNoisyOracleIsDetectedByAcceptance(t *testing.T) {
	g := graph.Cycle(8)
	in, clean := hardcoreSetup(t, g, 1.0)
	noisy := &noisyMult{inner: clean, noise: 0.25}
	rng := rand.New(rand.NewSource(202))
	minClean, minNoisy := 1.0, 1.0
	infeasibleDetections := 0
	for i := 0; i < 200; i++ {
		rc, err := core.LocalJVV(in, clean, core.JVVConfig{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range rc.AcceptProbs {
			if q < minClean {
				minClean = q
			}
		}
		rn, err := core.LocalJVV(in, noisy, core.JVVConfig{}, rng)
		if err != nil {
			// An out-of-spec oracle can hand pass 2 a candidate outside the
			// support; the bridge machinery detects and reports it rather
			// than silently emitting a biased sample.
			infeasibleDetections++
			continue
		}
		for _, q := range rn.AcceptProbs {
			if q < minNoisy {
				minNoisy = q
			}
		}
	}
	if minNoisy >= minClean && infeasibleDetections == 0 {
		t.Errorf("noise not reflected anywhere: clean min %v, noisy min %v, detections %d",
			minClean, minNoisy, infeasibleDetections)
	}
	// The clean oracle's acceptance stays in the Claim 4.7 band.
	n := float64(g.N())
	if minClean < math.Exp(-5/(n*n))-1e-6 {
		t.Errorf("clean acceptance %v below Claim 4.7 bound", minClean)
	}
}

// noisyMult injects multiplicative-error violations into a MultOracle.
type noisyMult struct {
	inner core.MultOracle
	noise float64
}

func (o *noisyMult) MarginalMult(in *gibbs.Instance, v int, eps float64) (dist.Dist, int, error) {
	d, r, err := o.inner.MarginalMult(in, v, eps)
	if err != nil {
		return nil, 0, err
	}
	mixed, err := dist.Mix(d, dist.Uniform(len(d)), o.noise)
	if err != nil {
		return nil, 0, err
	}
	return mixed, r, nil
}

// TestStarvedDecompositionCertifiesFailures runs the Theorem 3.2 pipeline
// with a deliberately starved decomposition and checks that the failures
// are certified, never silent.
func TestStarvedDecompositionCertifiesFailures(t *testing.T) {
	g := graph.Path(120)
	rng := rand.New(rand.NewSource(203))
	dec, err := netdecomp.BallCarving(g, netdecomp.Params{ColorBudget: 1, RadiusBudget: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if dec.FailureCount() == 0 {
		t.Skip("lucky run: no starvation this seed")
	}
	if err := dec.Validate(g, 0); err != nil {
		t.Fatalf("starved decomposition structurally invalid: %v", err)
	}
	order := dec.ScheduleOrder()
	if err := slocal.CheckOrder(g.N(), order); err != nil {
		t.Fatalf("starved schedule not a permutation: %v", err)
	}
}

// TestGlauberBaselineAgreesWithJVV compares the two samplers the repo
// provides — Glauber dynamics (classical MCMC baseline) and local-JVV
// (the paper's exact sampler) — on the same instance: both must converge
// to the same distribution, with JVV exact by construction.
func TestGlauberBaselineAgreesWithJVV(t *testing.T) {
	g := graph.Cycle(6)
	in, o := hardcoreSetup(t, g, 1.3)
	rng := rand.New(rand.NewSource(204))
	const trials = 5000
	jvvEmp := dist.NewEmpirical(g.N())
	glauberEmp := dist.NewEmpirical(g.N())
	for i := 0; i < trials; i++ {
		res, err := core.LocalJVV(in, o, core.JVVConfig{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted() {
			jvvEmp.Observe(res.Config)
		}
		cfg, err := glauber.Sample(in, 25, rng)
		if err != nil {
			t.Fatal(err)
		}
		glauberEmp.Observe(cfg)
	}
	a, err := jvvEmp.Joint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := glauberEmp.Joint()
	if err != nil {
		t.Fatal(err)
	}
	tv, err := dist.TVJoint(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.06 {
		t.Errorf("JVV and Glauber disagree: TV = %v", tv)
	}
}

// TestGatherThenInferLOCAL runs inference through the real message-passing
// engine: nodes gather their radius-t balls by flooding, then each computes
// its SAW marginal from the gathered view only — verifying that the decay
// oracle truly is t-local (it needs nothing outside the gathered ball).
func TestGatherThenInferLOCAL(t *testing.T) {
	g := graph.Cycle(16)
	lambda := 0.9
	in, o := hardcoreSetup(t, g, lambda)
	delta := 0.02
	_, radius, err := o.Marginal(in, 0, delta)
	if err != nil {
		t.Fatal(err)
	}
	net := local.NewNetwork(g)
	views, rounds, err := net.Gather(radius, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != radius {
		t.Fatalf("gather rounds %d != radius %d", rounds, radius)
	}
	for v := 0; v < g.N(); v++ {
		// Rebuild the local subgraph from the gathered view and run the
		// estimator on it.
		sub := graph.New(g.N())
		for _, e := range views[v].Edges {
			if err := sub.AddEdge(e.U, e.V); err != nil {
				t.Fatal(err)
			}
		}
		localEst, err := decay.NewHardcoreSAW(sub, lambda)
		if err != nil {
			t.Fatal(err)
		}
		gotLocal, err := localEst.Marginal(dist.NewConfig(g.N()), v, radius)
		if err != nil {
			t.Fatal(err)
		}
		gotGlobal, _, err := o.Marginal(in, v, delta)
		if err != nil {
			t.Fatal(err)
		}
		tv, err := dist.TV(gotLocal, gotGlobal)
		if err != nil {
			t.Fatal(err)
		}
		if tv > 1e-12 {
			t.Fatalf("node %d: ball-view inference differs from global (%v vs %v) — oracle is not %d-local", v, gotLocal, gotGlobal, radius)
		}
	}
}

// TestConstructionVsSamplingRounds contrasts the two tasks end to end:
// Luby MIS constructs a feasible configuration and the JVV pipeline samples
// one; both run in polylog rounds, but only the sampler matches the Gibbs
// measure (checked in internal/construct; here we check both terminate with
// valid outputs on the same graph).
func TestConstructionVsSamplingRounds(t *testing.T) {
	g := graph.Cycle(20)
	net := local.NewNetwork(g)
	mis, err := construct.LubyMIS(net, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := construct.Verify(g, mis); err != nil {
		t.Fatal(err)
	}
	in, o := hardcoreSetup(t, g, 1.0)
	rng := rand.New(rand.NewSource(205))
	res, rounds, err := core.JVVLOCAL(in, o, core.JVVConfig{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if w, err := in.Spec.Weight(res.Config); err != nil || w <= 0 {
		t.Fatalf("sampler output infeasible: %v %v", w, err)
	}
	if mis.Rounds <= 0 || rounds <= 0 {
		t.Fatalf("degenerate round counts: MIS %d, JVV %d", mis.Rounds, rounds)
	}
}
