package repro_test

// lattice_prop_test.go: the representation-independence property of the
// compact state container. internal/state picks uint8 cells for q ≤ 255
// and falls back to []int above; nothing downstream may depend on which
// one is in play. The test pins that exactly: for every model builder of
// internal/model, every in-process engine (sequential Glauber, LubyGlauber,
// LocalMetropolis, ChromaticGlauber, the multi-chain batch) and the exact
// enumerator produce BIT-IDENTICAL results under a shared seed whether the
// lattice is compact or forced wide — same kernels, same float operation
// order, same RNG consumption, different cell width only.

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/psample"
	"repro/internal/sampler"
	"repro/internal/state"
)

// propInstances builds one instance per model builder (all six), small
// enough for the exact referee.
func propInstances(t *testing.T) map[string]*gibbs.Instance {
	t.Helper()
	out := make(map[string]*gibbs.Instance)
	add := func(name string, spec *gibbs.Spec, err error, pin dist.Config) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		in, err := gibbs.NewInstance(spec, pin)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = in
	}

	hc, err := model.Hardcore(graph.Cycle(8), 1.2)
	add("hardcore", hc, err, nil)

	is, err := model.Ising(graph.Cycle(8), 0.6, 0.9)
	pin := dist.NewConfig(8)
	pin[2] = 1
	add("ising-pinned", is, err, pin)

	col, err := model.Coloring(graph.Grid(2, 3), 4)
	add("coloring", col, err, nil)

	lc, err := model.ListColoring(graph.Path(4), 4, [][]int{{0, 1, 2}, {1, 2, 3}, {0, 1, 3}, {0, 2, 3}})
	add("list-coloring", lc, err, nil)

	m, err := model.Matching(graph.Cycle(6), 1.3)
	if err != nil {
		t.Fatal(err)
	}
	add("matching", m.Spec, nil, nil)

	h := graph.NewHypergraph(6)
	for _, e := range [][]int{{0, 1, 2}, {2, 3, 4}, {3, 4, 5}} {
		if err := h.AddEdge(e...); err != nil {
			t.Fatal(err)
		}
	}
	hm, err := model.HypergraphMatching(h, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	add("hypergraph-matching", hm.Spec, nil, nil)

	return out
}

// runEngines executes every engine on the instance under one seed and
// returns the final chain states, keyed by engine name.
func runEngines(t *testing.T, in *gibbs.Instance, seed int64) map[string]dist.Config {
	t.Helper()
	out := make(map[string]dist.Config)
	for _, name := range sampler.Names() {
		if name == "metropolis" {
			// LocalMetropolis needs table-backed acceptance factors; skip
			// uniformly (representation cannot change MetropolisReady).
			r, err := psample.NewRules(in)
			if err != nil {
				t.Fatal(err)
			}
			if r.MetropolisReady() != nil {
				continue
			}
		}
		s, err := sampler.Create(name, in, sampler.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		sweep, err := sampler.SweepRounds(name, in)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(6 * sweep); err != nil {
			t.Fatal(err)
		}
		out[name] = s.State()
	}
	r, err := psample.NewRules(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sampler.NewBatch(r, 5, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Run(6); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < b.Chains(); c++ {
		out["batch-chain"] = append(out["batch-chain"], b.Chain(c)...)
	}
	return out
}

// TestCompactAndWideLatticesBitIdentical is the property test: compact-cell
// and []int-fallback lattices must produce bit-identical chains for every
// model builder and every engine under a shared seed, and the exact
// enumerator must produce the bit-identical partition function.
func TestCompactAndWideLatticesBitIdentical(t *testing.T) {
	const seed = 20260730
	for name, in := range propInstances(t) {
		t.Run(name, func(t *testing.T) {
			compact := runEngines(t, in, seed)
			zc, err := exact.Partition(in)
			if err != nil {
				t.Fatal(err)
			}
			restore := state.SetCompactLimitForTest(0)
			wide := runEngines(t, in, seed)
			zw, err := exact.Partition(in)
			restore()
			if err != nil {
				t.Fatal(err)
			}
			if zc != zw {
				t.Errorf("Partition: compact %v != wide %v", zc, zw)
			}
			if len(compact) != len(wide) {
				t.Fatalf("engine sets differ: %d vs %d", len(compact), len(wide))
			}
			for eng, cfg := range compact {
				wcfg, ok := wide[eng]
				if !ok {
					t.Errorf("engine %s missing from wide run", eng)
					continue
				}
				if !cfg.Equal(wcfg) {
					t.Errorf("engine %s: compact chain %v != wide chain %v", eng, cfg, wcfg)
				}
			}
		})
	}
}
