// Counting demonstrates the "counting" side of the paper's title: the
// global quantity ln Z (log partition function / log number of solutions)
// is decomposed via self-reducibility into the local marginal probabilities
// that distributed inference computes (Section 1; the decomposition is
// Jerrum's chain rule [9]). Each chain-rule factor is one LOCAL inference
// query, so counting reduces to n local computations of radius O(log n).
//
// Run with: go run ./examples/counting
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/decay"
	"repro/internal/exact"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Count independent sets (hardcore λ=1 makes Z the count) on cycles.
	fmt.Println("counting independent sets via distributed inference (chain rule):")
	fmt.Printf("%-6s %-14s %-14s %-10s %-8s\n", "n", "estimated Z", "exact Z", "|lnZ err|", "radius")
	for _, n := range []int{8, 12, 16, 20} {
		g := graph.Cycle(n)
		spec, err := model.Hardcore(g, 1.0)
		if err != nil {
			return err
		}
		in, err := gibbs.NewInstance(spec, nil)
		if err != nil {
			return err
		}
		est, err := decay.NewHardcoreSAW(g, 1.0)
		if err != nil {
			return err
		}
		oracle := &core.DecayOracle{
			Est:  est,
			Rate: model.HardcoreDecayRate(1.0, g.MaxDegree()),
			N:    n,
		}
		res, err := core.EstimateLogPartition(in, oracle, nil, 1e-6)
		if err != nil {
			return err
		}
		want, err := exact.LogPartition(in)
		if err != nil {
			return err
		}
		fmt.Printf("%-6d %-14.2f %-14.2f %-10.2g %-8d\n",
			n, math.Exp(res.LogZ), math.Exp(want), math.Abs(res.LogZ-want), res.MaxRadius)
	}
	// Independent sets of C_n are the Lucas numbers L(n); e.g. L(8) = 47.
	fmt.Println("\n(independent sets of C_n are the Lucas numbers: 47, 322, 2207, 15127)")

	// Conditional counting (self-reducibility): the number of independent
	// sets of C12 containing vertex 0.
	g := graph.Cycle(12)
	spec, err := model.Hardcore(g, 1.0)
	if err != nil {
		return err
	}
	pinned, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		return err
	}
	pinned, err = pinned.Pin(0, model.In)
	if err != nil {
		return err
	}
	est, err := decay.NewHardcoreSAW(g, 1.0)
	if err != nil {
		return err
	}
	oracle := &core.DecayOracle{Est: est, Rate: 0.5, N: g.N()}
	res, err := core.EstimateLogPartition(pinned, oracle, nil, 1e-6)
	if err != nil {
		return err
	}
	want, err := exact.LogPartition(pinned)
	if err != nil {
		return err
	}
	fmt.Printf("\nindependent sets of C12 containing v0: estimated %.2f, exact %.0f\n",
		math.Exp(res.LogZ), math.Exp(want))
	return nil
}
