// Quickstart: sample exactly from the hardcore model (weighted independent
// sets) on a cycle using the distributed JVV sampler of Feng & Yin (PODC
// 2018), and verify the result against brute-force enumeration.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/decay"
	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A network: the 12-cycle. In the LOCAL model every vertex is a
	//    processor and edges are communication links.
	g := graph.Cycle(12)

	// 2. A joint distribution: the hardcore model at fugacity λ = 1
	//    (uniform over independent sets). Δ = 2, so we are far inside the
	//    uniqueness regime λ < λc(Δ).
	const lambda = 1.0
	spec, err := model.Hardcore(g, lambda)
	if err != nil {
		return err
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		return err
	}

	// 3. An approximate-inference oracle: Weitz's self-avoiding-walk tree
	//    recursion, which realizes LOCAL inference with radius O(log n)
	//    thanks to strong spatial mixing (Theorem 5.1).
	est, err := decay.NewHardcoreSAW(g, lambda)
	if err != nil {
		return err
	}
	oracle := &core.DecayOracle{
		Est:  est,
		Rate: model.HardcoreDecayRate(lambda, g.MaxDegree()),
		N:    g.N(),
	}

	// 4. Exact sampling via the distributed JVV sampler (Theorem 4.2):
	//    conditioned on no local failure, the output is distributed
	//    *exactly* according to the model.
	rng := rand.New(rand.NewSource(42))
	// Failures are locally certified and rare (O(1/n)); retry on rejection.
	var (
		res    *core.JVVResult
		rounds int
	)
	for attempt := 0; attempt < 10; attempt++ {
		res, rounds, err = core.JVVLOCAL(in, oracle, core.JVVConfig{}, rng)
		if err != nil {
			return err
		}
		if res.Accepted() {
			break
		}
	}
	fmt.Printf("sampled independent set (LOCAL rounds: %d, accepted: %v):\n  %v\n",
		rounds, res.Accepted(), occupied(res.Config))

	// 5. Verify exactness statistically against brute-force enumeration.
	truth, err := exact.JointDistribution(in)
	if err != nil {
		return err
	}
	emp := dist.NewEmpirical(g.N())
	const trials = 4000
	for i := 0; i < trials; i++ {
		r, err := core.LocalJVV(in, oracle, core.JVVConfig{}, rng)
		if err != nil {
			return err
		}
		if r.Accepted() {
			emp.Observe(r.Config)
		}
	}
	got, err := emp.Joint()
	if err != nil {
		return err
	}
	tv, err := dist.TVJoint(truth, got)
	if err != nil {
		return err
	}
	fmt.Printf("TV(empirical over %d accepted samples, exact) = %.4f (sampling noise ~%.3f)\n",
		emp.Total(), tv, dist.ExpectedTVNoise(truth.Len(), emp.Total()))
	return nil
}

func occupied(c dist.Config) []int {
	var out []int
	for v, x := range c {
		if x == model.In {
			out = append(out, v)
		}
	}
	return out
}
