// Hardcorephase demonstrates the paper's headline result: the first
// computational phase transition for distributed sampling, at the hardcore
// uniqueness threshold λc(Δ) = (Δ−1)^(Δ−1)/(Δ−2)^Δ.
//
// It sweeps the fugacity λ across λc(3) = 4 on binary trees and prints (a)
// the boundary-to-root correlation as a function of depth — exponential
// decay below λc, persistence above — and (b) the locality an inference
// algorithm needs for fixed accuracy, which jumps from O(log 1/ε) to the
// full tree depth (the Ω(diam) regime of [FSY17]).
//
// Run with: go run ./examples/hardcorephase
package main

import (
	"fmt"
	"log"

	"repro/internal/experiment"
	"repro/internal/model"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const delta = 3
	fmt.Printf("hardcore model on the Δ=%d regular tree; λc(%d) = %g\n\n",
		delta, delta, model.LambdaC(delta))

	corr, err := experiment.E8PhaseTransition(delta,
		[]float64{0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0},
		[]int{4, 8, 12, 16})
	if err != nil {
		return err
	}
	fmt.Println(corr.String())

	radius, err := experiment.E8RequiredRadius(delta,
		[]float64{0.25, 0.5, 1.5, 4.0}, 14, 0.02)
	if err != nil {
		return err
	}
	fmt.Println(radius.String())

	fmt.Println("interpretation: below λc the required locality is flat in the")
	fmt.Println("instance size (O(log³ n) exact sampling, Corollary 5.3); above λc")
	fmt.Println("it reaches the tree depth — no o(diam)-round algorithm can sample,")
	fmt.Println("matching the lower bound quoted in Section 5.")
	return nil
}
