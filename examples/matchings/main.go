// Matchings demonstrates the O(√Δ log³ n) exact matching sampler of
// Section 5: monomer–dimer configurations are sampled exactly on a
// bounded-degree graph through the line-graph duality, with inference
// provided by the Bayati–Gamarnik–Katz–Nair–Tetali correlation-decay
// recursion, and the √Δ scaling of the required locality is measured.
//
// Run with: go run ./examples/matchings
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/decay"
	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/experiment"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Exact sampling of matchings on the 4x4 grid at activity λ = 1.5.
	g := graph.Grid(4, 4)
	const lambda = 1.5
	m, err := model.Matching(g, lambda)
	if err != nil {
		return err
	}
	in, err := gibbs.NewInstance(m.Spec, nil)
	if err != nil {
		return err
	}
	oracle := &core.DecayOracle{
		Est:  decay.NewMatchingEstimator(m),
		Rate: model.MatchingDecayRate(lambda, g.MaxDegree()),
		N:    m.Spec.N(),
	}
	rng := rand.New(rand.NewSource(7))
	res, rounds, err := core.JVVLOCAL(in, oracle, core.JVVConfig{}, rng)
	if err != nil {
		return err
	}
	fmt.Printf("grid 4x4, λ=%.1f: sampled matching in %d LOCAL rounds (accepted=%v):\n",
		lambda, rounds, res.Accepted())
	for i, x := range res.Config {
		if x == model.In {
			e := m.EdgeList[i]
			fmt.Printf("  edge (%d,%d)\n", e.U, e.V)
		}
	}
	if !m.IsMatching(res.Config) {
		return fmt.Errorf("output is not a matching")
	}

	// Verify an edge marginal against brute force.
	want, err := exact.Marginal(in, 0)
	if err != nil {
		return err
	}
	got, _, err := oracle.Marginal(in, 0, 1e-6)
	if err != nil {
		return err
	}
	tv, err := dist.TV(got, want)
	if err != nil {
		return err
	}
	fmt.Printf("\nedge-0 marginal: BGKNT %.5f vs exact %.5f (TV %.2g)\n\n",
		got[model.In], want[model.In], tv)

	// The √Δ scaling behind O(√Δ log³ n).
	tab, err := experiment.E9Matchings([]int{3, 5, 9, 17, 33, 65}, 1.0, 1e-4, 0)
	if err != nil {
		return err
	}
	fmt.Println(tab.String())
	return nil
}
