package main

import "testing"

// TestRun keeps the example compiling and executing end to end.
func TestRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example run")
	}
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
