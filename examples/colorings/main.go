// Colorings demonstrates distributed sampling and inference for proper
// q-colorings (the paradigm problem of the paper's introduction): a uniform
// proper coloring of a triangle-free graph is sampled exactly with the
// distributed JVV sampler, conditioning on a partially pinned boundary
// (self-reducibility: the conditioned instance is a list-coloring
// instance), in the Gamarnik–Katz–Misra regime q ≥ αΔ, α > α* ≈ 1.763.
//
// Run with: go run ./examples/colorings
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/decay"
	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/experiment"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A triangle-free graph: the 14-cycle (Δ = 2), colored with q = 4 ≥
	// α*Δ colors; pin two vertices to fixed colors to exercise
	// self-reducibility.
	g := graph.Cycle(14)
	const q = 4
	spec, err := model.Coloring(g, q)
	if err != nil {
		return err
	}
	pin := dist.NewConfig(g.N())
	pin[0] = 0
	pin[7] = 1
	in, err := gibbs.NewInstance(spec, pin)
	if err != nil {
		return err
	}
	fmt.Printf("uniform proper %d-coloring of C%d conditioned on v0=0, v7=1\n", q, g.N())
	fmt.Printf("(q/Δ = %.2f vs α* ≈ %.3f — inside the GKM regime)\n\n", float64(q)/float64(g.MaxDegree()), model.AlphaStar())

	est, err := decay.NewColoringEstimator(g, q, nil)
	if err != nil {
		return err
	}
	oracle := &core.DecayOracle{Est: est, Rate: 0.7, N: g.N()}

	rng := rand.New(rand.NewSource(11))
	res, rounds, err := core.JVVLOCAL(in, oracle, core.JVVConfig{}, rng)
	if err != nil {
		return err
	}
	fmt.Printf("sampled coloring in %d LOCAL rounds (accepted=%v):\n  ", rounds, res.Accepted())
	for v, c := range res.Config {
		fmt.Printf("%d:%d ", v, c)
	}
	fmt.Println()
	for _, e := range g.Edges() {
		if res.Config[e.U] == res.Config[e.V] {
			return fmt.Errorf("edge %v monochromatic", e)
		}
	}
	if res.Config[0] != 0 || res.Config[7] != 1 {
		return fmt.Errorf("pinning violated")
	}

	// Inference check: marginal at a vertex adjacent to a pin.
	want, err := exact.Marginal(in, 1)
	if err != nil {
		return err
	}
	got, _, err := oracle.Marginal(in, 1, 1e-4)
	if err != nil {
		return err
	}
	tv, err := dist.TV(got, want)
	if err != nil {
		return err
	}
	fmt.Printf("\nmarginal at v1 (neighbor of pinned v0): GKM %v vs exact %v (TV %.2g)\n\n", got, want, tv)

	// The q ≥ αΔ regime sweep.
	tab, err := experiment.E10Colorings(4, []int{5, 6, 7, 8, 10, 12}, 1e-3, 0)
	if err != nil {
		return err
	}
	fmt.Println(tab.String())
	return nil
}
