package repro_test

// plan_prop_test.go: the sweep-plan equivalence property. The fused batch
// kernels of PR 6 run a compiled per-vertex instruction stream
// (gibbs.SweepPlan) instead of interpreting the factor graph; nothing
// downstream may be able to tell. The test pins that exactly: for every
// model builder of internal/model, the planned weights
// (CondWeightsBatchPlan) must be BIT-IDENTICAL to the interpreted kernel
// (CondWeightsBatch) at every vertex and chain span — on the dense-table
// and the closure-fallback engine, on compact and forced-wide lattices —
// with the chain states drawn from real batched sweeps.

import (
	"testing"

	"repro/internal/gibbs"
	"repro/internal/psample"
	"repro/internal/sampler"
	"repro/internal/state"
)

// closureEngine recompiles the spec with every factor stripped to its Eval
// closure and the table cap at zero, so all factors take the closure path
// (explicit tables are adopted verbatim regardless of cap, so stripping is
// the only way to force the fallback).
func closureEngine(t *testing.T, s *gibbs.Spec) *gibbs.Compiled {
	t.Helper()
	fs := make([]gibbs.Factor, len(s.Factors))
	for i, f := range s.Factors {
		fs[i] = gibbs.Factor{Scope: f.Scope, Eval: f.Eval, Name: f.Name}
	}
	s2, err := gibbs.NewSpec(s.G, s.Q, fs)
	if err != nil {
		t.Fatal(err)
	}
	return gibbs.CompileCap(s2, 0)
}

func TestSweepPlanBitIdenticalToBatchKernel(t *testing.T) {
	const (
		seed = 20260807
		B    = 6
	)
	for name, in := range propInstances(t) {
		t.Run(name, func(t *testing.T) {
			for _, rep := range []struct {
				name string
				wide bool
			}{{"compact", false}, {"wide", true}} {
				t.Run(rep.name, func(t *testing.T) {
					restore := func() {}
					if rep.wide {
						restore = state.SetCompactLimitForTest(0)
					}
					defer restore()
					r, err := psample.NewRules(in)
					if err != nil {
						t.Fatal(err)
					}
					// Real sweep states, not synthetic ones: run a few
					// batched sweeps so the compared conditionals sit on
					// configurations the engine actually visits.
					b, err := sampler.NewBatch(r, B, seed)
					if err != nil {
						t.Fatal(err)
					}
					if err := b.Run(3); err != nil {
						t.Fatal(err)
					}
					lat := b.Lattice()
					if lat.Compact() == rep.wide {
						t.Fatalf("lattice Compact() = %v with wide=%v", lat.Compact(), rep.wide)
					}
					engines := []struct {
						name string
						eng  *gibbs.Compiled
					}{
						{"table", in.Spec.Compiled()},
						{"closure", closureEngine(t, in.Spec)},
					}
					for _, e := range engines {
						eng := e.eng
						q := eng.Q()
						sc := gibbs.NewBatchScratch(B)
						ref := make([]float64, B*q)
						got := make([]float64, B*q)
						for v := 0; v < eng.N(); v++ {
							for _, span := range [][2]int{{0, B}, {1, 4}, {B - 1, B}} {
								c0, c1 := span[0], span[1]
								want, err := eng.CondWeightsBatch(lat, v, c0, c1, ref, sc)
								if err != nil {
									t.Fatal(err)
								}
								w, err := eng.CondWeightsBatchPlan(lat, v, c0, c1, got, sc)
								if err != nil {
									t.Fatal(err)
								}
								for i := range want {
									if w[i] != want[i] {
										t.Fatalf("%s engine v=%d span=[%d,%d) entry %d: plan %v != interpreted %v",
											e.name, v, c0, c1, i, w[i], want[i])
									}
								}
							}
						}
					}
				})
			}
		})
	}
}
