package repro_test

// run_prop_test.go: the adaptive-driver determinism property. The run
// package's contract is that (instance, seed, policy) fixes the stop
// decision, the full Report, and the final lattice bit-for-bit; the unit
// test in internal/run pins it on one instance, this test holds it across
// the whole declarative corpus — every instance of testdata/corpus/ under
// every registered batched dynamic, a two-stage escalation with the
// lattice handoff, and the ChromaticGlauber LOCAL harness. The CI race
// job runs these, so any data race on the shared per-worker RNG streams
// or the observation buffer surfaces here too.

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/gibbs"
	"repro/internal/local"
	"repro/internal/psample"
	"repro/internal/run"
	"repro/internal/sampler"
	"repro/internal/spec"
)

// corpusInstances loads every instance document of testdata/corpus/
// (golden_partition.json is an oracle fixture, not a spec).
func corpusInstances(t *testing.T) map[string]*gibbs.Instance {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("empty corpus")
	}
	out := make(map[string]*gibbs.Instance)
	for _, p := range paths {
		name := filepath.Base(p)
		if name == "golden_partition.json" {
			continue
		}
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		f, err := spec.Parse(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := f.Build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[strings.TrimSuffix(name, ".json")] = b.Instance
	}
	return out
}

// sameChains fails the test unless the two engines hold identical
// configurations on every chain.
func sameChains(t *testing.T, a, b sampler.MultiChain) {
	t.Helper()
	if a.Chains() != b.Chains() {
		t.Fatalf("chain counts differ: %d vs %d", a.Chains(), b.Chains())
	}
	for c := 0; c < a.Chains(); c++ {
		ca, cb := a.Chain(c), b.Chain(c)
		for v := range ca {
			if ca[v] != cb[v] {
				t.Fatalf("chain %d differs at vertex %d: %d vs %d", c, v, ca[v], cb[v])
			}
		}
	}
}

func TestDriverDeterministicAcrossCorpus(t *testing.T) {
	const seed = 17
	policy := run.Policy{
		Chains:     6,
		BurnIn:     2,
		MaxSweeps:  20,
		CheckEvery: 2,
		Rhat:       1.1,
		MinESS:     50,
		Workers:    3,
	}
	for name, in := range corpusInstances(t) {
		t.Run(name, func(t *testing.T) {
			for _, dyn := range sampler.MultiNames() {
				t.Run(dyn, func(t *testing.T) {
					repA, mA, err := run.One(in, dyn, seed, policy)
					if err != nil {
						t.Fatal(err)
					}
					repB, mB, err := run.One(in, dyn, seed, policy)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(repA, repB) {
						t.Errorf("same (instance, seed, policy), different reports:\n%+v\n%+v", repA, repB)
					}
					sameChains(t, mA, mB)
				})
			}
			// The escalation path: a capped chromatic stage hands its
			// lattice to metropolis; the handoff must reproduce too.
			t.Run("escalation", func(t *testing.T) {
				p := policy
				p.Stages = []run.Stage{
					{Dynamic: "chromatic", MaxSweeps: 4},
					{Dynamic: "metropolis"},
				}
				repA, mA, err := run.Drive(in, seed, p)
				if err != nil {
					t.Fatal(err)
				}
				repB, mB, err := run.Drive(in, seed, p)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(repA, repB) {
					t.Errorf("escalation reports differ:\n%+v\n%+v", repA, repB)
				}
				sameChains(t, mA, mB)
			})
		})
	}
}

// TestChromaticLOCALDeterministicAcrossCorpus: the message-passing harness
// under the same contract — (instance, seed) fixes the output configuration
// and the LOCAL round count on every corpus instance.
func TestChromaticLOCALDeterministicAcrossCorpus(t *testing.T) {
	const (
		seed   = 29
		sweeps = 4
	)
	for name, in := range corpusInstances(t) {
		t.Run(name, func(t *testing.T) {
			r, err := psample.NewRules(in)
			if err != nil {
				t.Fatal(err)
			}
			cfgA, roundsA, err := psample.ChromaticGlauberLOCAL(local.NewNetwork(in.Spec.G), r, sweeps, seed)
			if err != nil {
				t.Fatal(err)
			}
			cfgB, roundsB, err := psample.ChromaticGlauberLOCAL(local.NewNetwork(in.Spec.G), r, sweeps, seed)
			if err != nil {
				t.Fatal(err)
			}
			if roundsA != roundsB {
				t.Fatalf("round counts differ: %d vs %d", roundsA, roundsB)
			}
			for v := range cfgA {
				if cfgA[v] != cfgB[v] {
					t.Fatalf("output differs at vertex %d: %d vs %d", v, cfgA[v], cfgB[v])
				}
			}
		})
	}
}
