// Command lbench runs the reproduction experiment suite (E1–E12) and
// prints one paper-shaped table per experiment, mirroring the claims of
// Feng & Yin, PODC 2018.
//
// Usage:
//
//	lbench [-quick] [-seed N] [-only E4]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lbench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced workloads (smoke run)")
	seed := fs.Int64("seed", 1, "random seed")
	only := fs.String("only", "", "comma-separated experiment IDs to print (e.g. E4,E8)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	tables, err := experiment.RunSuite(experiment.SuiteParams{Quick: *quick, Seed: *seed})
	if err != nil {
		return err
	}
	for _, t := range tables {
		if len(want) > 0 && !want[strings.ToUpper(t.ID)] {
			continue
		}
		fmt.Println(t.String())
	}
	return nil
}
