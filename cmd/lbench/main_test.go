package main

import "testing"

func TestRunQuickFiltered(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run")
	}
	// Restrict printing to two experiments; the whole suite still executes,
	// so keep it quick.
	if err := run([]string{"-quick", "-seed", "2", "-only", "E3,E5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nosuchflag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
