// Command lsample draws a sample from a Gibbs model using the distributed
// samplers of the paper: the exact local-JVV sampler (Theorem 4.2), the
// approximate sequential sampler (Theorem 3.2), or any dynamics from the
// internal/sampler registry (glauber, luby, metropolis, chromatic) run on
// the sharded in-process engines. -chains runs the dynamic's batched
// multi-chain engine: B independent chains advanced in lockstep over one
// shared compiled engine. -cpuprofile and -memprofile write pprof profiles
// of the whole run.
//
// Instances are declarative: -spec loads a schema document (see
// internal/spec and testdata/corpus/), and the legacy -model/-graph/-n
// flags synthesize the equivalent document — both are compiled by the same
// loader, so a spec file and the flags that describe the same instance
// produce bit-identical sample streams for the same seed.
//
// Adaptive stopping: -converge 'rhat<1.05' and/or -min-ess route the run
// through the internal/run driver — the chains advance in sweep-equivalent
// chunks and stop as soon as the cross-chain diagnostics meet the targets
// instead of exhausting the fixed budget (-sweeps/-rounds become the
// budget ceiling). -algo then accepts a comma-separated escalation list
// ("chromatic,metropolis"): when a stage's acceptance rate falls below
// -min-rate the driver hands the chains to the next dynamic. -rhat alone
// reports the diagnostics after the full budget, through the same driver.
//
// Usage:
//
//	lsample -model hardcore -graph cycle -n 24 -lambda 1.0 -sampler jvv
//	lsample -spec testdata/corpus/hardcore-tree15-below.json -algo glauber
//	lsample -model coloring -graph tree -n 40 -q 5
//	lsample -model matching -graph grid -n 16 -lambda 2
//	lsample -model hardcore -graph torus -n 16 -algo luby -rounds 200
//	lsample -model coloring -graph grid -n 10 -q 6 -algo metropolis
//	lsample -model ising -graph cycle -n 64 -beta 0.8 -algo glauber -sweeps 50
//	lsample -model hardcore -graph torus -n 24 -algo chromatic -chains 32
//	lsample -model ising -graph torus -n 16 -algo metropolis -chains 16 -rhat
//	lsample -spec testdata/corpus/hardcore-tree15-below.json -algo chromatic \
//	    -converge 'rhat<1.05'
//	lsample -model hardcore -graph torus -n 16 -lambda 3 \
//	    -algo metropolis,chromatic -min-rate 0.5 -converge 'rhat<1.1' -min-ess 200
//	lsample -model hardcore -graph torus -n 24 -algo chromatic -chains 64 \
//	    -sweeps 500 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/decay"
	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
	adaptive "repro/internal/run"
	"repro/internal/sampler"
	"repro/internal/spec"
	"repro/internal/state"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		// The state container validates the lattice shape (q bounds, chain
		// count) once at construction; surface its typed error with the
		// flags that produced it instead of a bare engine trace.
		var de *state.DomainError
		if errors.As(err, &de) {
			fmt.Fprintln(os.Stderr, "lsample: the requested model/chain shape is not representable:", err)
			fmt.Fprintln(os.Stderr, "lsample: check -q, -chains, and the model parameters")
			os.Exit(1)
		}
		// Schema defects carry their document path; point at the field.
		var se *spec.Error
		if errors.As(err, &se) {
			fmt.Fprintln(os.Stderr, "lsample: invalid instance spec:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "lsample:", err)
		os.Exit(1)
	}
}

type options struct {
	specPath string
	model    string
	graph    string
	n        int
	lambda   float64
	q        int
	beta     float64
	seed     int64
	sampler  string
	delta    float64
	algo     string
	rounds   int
	sweeps   int
	chains   int
	rhat     bool
	converge string
	minESS   float64
	burnin   int
	minRate  float64
	cpuprof  string
	memprof  string
	cond     string
	verbose  bool
	// chainsSet records whether -chains appeared on the command line: the
	// adaptive driver defaults an unset -chains to a useful batch, but an
	// explicit -chains 1 stays an error (the diagnostics are cross-chain).
	chainsSet bool
}

// startProfiles wires the optional pprof outputs around the run: CPU
// profiling starts immediately, and the returned stop function finishes
// the CPU profile and writes a GC-settled heap profile. Profiles cover
// the whole run (setup + sampling) — profile long runs (-sweeps, -chains)
// so the fused kernels dominate the samples.
func startProfiles(o options) (stop func() error, err error) {
	var cpuFile *os.File
	if o.cpuprof != "" {
		cpuFile, err = os.Create(o.cpuprof)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if o.memprof != "" {
			f, err := os.Create(o.memprof)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

// legacyInstanceFlags are the flags that describe an instance; they
// conflict with -spec, which is the complete description.
var legacyInstanceFlags = map[string]bool{
	"model": true, "graph": true, "n": true, "lambda": true, "q": true, "beta": true,
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("lsample", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.specPath, "spec", "", "declarative instance spec file (JSON; overrides -model/-graph/-n/-lambda/-q/-beta)")
	fs.StringVar(&o.model, "model", "hardcore", "model: hardcore | ising | coloring | matching")
	fs.StringVar(&o.graph, "graph", "cycle", "graph: "+strings.Join(graph.GeneratorNames(), " | "))
	fs.IntVar(&o.n, "n", 24, "graph size parameter (vertices, or side for grid/torus)")
	fs.Float64Var(&o.lambda, "lambda", 1.0, "fugacity / activity")
	fs.IntVar(&o.q, "q", 5, "colors (coloring model)")
	fs.Float64Var(&o.beta, "beta", 0.6, "Ising edge activity")
	fs.Int64Var(&o.seed, "seed", 1, "random seed")
	fs.StringVar(&o.sampler, "sampler", "jvv", "sampler: jvv (exact) | seq (approximate)")
	fs.Float64Var(&o.delta, "delta", 0.01, "TV error for the approximate sampler")
	fs.StringVar(&o.algo, "algo", "", "dynamics instead of -sampler: "+strings.Join(sampler.Names(), " | "))
	fs.IntVar(&o.rounds, "rounds", 0, "rounds for -algo (0 = -sweeps sweep-equivalents)")
	fs.IntVar(&o.sweeps, "sweeps", 64, "sweep-equivalents for -algo when -rounds is 0")
	fs.IntVar(&o.chains, "chains", 1, "independent chains for the batched multi-chain engines (-algo "+strings.Join(sampler.MultiNames(), " | ")+")")
	fs.BoolVar(&o.rhat, "rhat", false, "report the worst-vertex cross-chain Gelman–Rubin R̂ (needs a batched -algo and -chains ≥ 2)")
	fs.StringVar(&o.converge, "converge", "", "adaptive stopping criterion, e.g. 'rhat<1.05': stop as soon as the worst-vertex R̂ meets the threshold (needs a batched -algo)")
	fs.Float64Var(&o.minESS, "min-ess", 0, "adaptive stopping floor on the per-vertex effective sample size (combines with -converge)")
	fs.IntVar(&o.burnin, "burnin", 0, "sweep-equivalents discarded before the adaptive driver starts observing")
	fs.Float64Var(&o.minRate, "min-rate", 0, "acceptance-rate floor per sweep-equivalent: below it the driver escalates to the next dynamic of the comma-separated -algo list")
	fs.StringVar(&o.cpuprof, "cpuprofile", "", "write a CPU profile of the whole run to this file")
	fs.StringVar(&o.memprof, "memprofile", "", "write a GC-settled heap profile at exit to this file")
	fs.StringVar(&o.cond, "cond", "auto", "conditional-CDF cache: auto (greedy under the byte budget) | on (cache every eligible vertex) | off (always walk the sweep plan)")
	fs.BoolVar(&o.verbose, "v", false, "verbose: print engine details (conditional-CDF cache coverage)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "chains" {
			o.chainsSet = true
		}
	})
	if o.chains == 0 {
		return fmt.Errorf("-chains 0 names no engine: 1 is the single-chain engine, B ≥ 2 the batched one")
	}
	if o.specPath != "" {
		var conflict []string
		fs.Visit(func(f *flag.Flag) {
			if legacyInstanceFlags[f.Name] {
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			return fmt.Errorf("-spec conflicts with %s: the spec file is the complete instance description", strings.Join(conflict, " "))
		}
	}
	stop, err := startProfiles(o)
	if err != nil {
		return err
	}
	err = sample(out, o)
	if perr := stop(); err == nil {
		err = perr
	}
	return err
}

// instanceSpec returns the declarative instance description: the -spec
// file when given, otherwise the document the legacy flags synthesize.
// Either way the instance is compiled by the same loader — the single
// construction codepath.
func instanceSpec(o options) (*spec.File, error) {
	if o.specPath != "" {
		data, err := os.ReadFile(o.specPath)
		if err != nil {
			return nil, err
		}
		return spec.Parse(data)
	}
	return legacySpec(o)
}

// legacySpec synthesizes the schema document described by the legacy
// -model/-graph/-n/-lambda/-q/-beta flags.
func legacySpec(o options) (*spec.File, error) {
	g := spec.Graph{Kind: strings.ToLower(o.graph), N: o.n}
	m := spec.Model{Kind: strings.ToLower(o.model)}
	switch m.Kind {
	case "hardcore", "matching":
		m.Lambda = o.lambda
	case "ising":
		m.Beta = o.beta
		m.Lambda = o.lambda
	case "coloring":
		m.Q = o.q
	default:
		return nil, fmt.Errorf("unknown model %q", o.model)
	}
	f := &spec.File{
		Version: spec.Version,
		Name:    fmt.Sprintf("%s-%s-%d", m.Kind, g.Kind, o.n),
		Graph:   g,
		Model:   &m,
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// sample is the profiled section of run: everything from model
// construction through the sampling itself.
func sample(out *os.File, o options) error {
	f, err := instanceSpec(o)
	if err != nil {
		return err
	}
	b, err := f.Build()
	if err != nil {
		return err
	}
	in, render := b.Instance, renderFor(b)
	mode, err := parseCondMode(o.cond)
	if err != nil {
		return err
	}
	eng := in.Spec.Compiled()
	eng.SetCondMode(mode)
	if o.verbose {
		// CondStats forces the lazy cache build, so the coverage line is
		// accurate before any sampling starts.
		if st := eng.CondStats(); mode == gibbs.CondOff {
			fmt.Fprintf(out, "cond-cache: mode=off (every draw walks the sweep plan)\n")
		} else {
			fmt.Fprintf(out, "cond-cache: mode=%s cached=%d/%d vertices bytes=%d\n", o.cond, st.Cached, st.Total, st.Bytes)
		}
	}
	rng := rand.New(rand.NewSource(o.seed))

	if o.algo != "" {
		return runAlgo(out, b, render, o)
	}
	if o.chains != 1 {
		return fmt.Errorf("-chains %d needs a batched -algo (%s); the -sampler path draws one exact/approximate sample — try -algo chromatic -chains %d", o.chains, strings.Join(sampler.MultiNames(), " | "), max(o.chains, 2))
	}
	if o.rhat {
		return fmt.Errorf("-rhat needs a batched -algo (%s) and -chains ≥ 2; the -sampler path draws one exact/approximate sample — try -algo chromatic -chains 8 -rhat", strings.Join(sampler.MultiNames(), " | "))
	}
	if o.converge != "" || o.minESS > 0 {
		return fmt.Errorf("-converge/-min-ess need a batched -algo (%s); the -sampler path draws one exact/approximate sample — try -algo chromatic -converge 'rhat<1.05'", strings.Join(sampler.MultiNames(), " | "))
	}

	oracle, err := buildOracle(b, o)
	if err != nil {
		return err
	}
	g := b.Input
	fmt.Fprintf(out, "model=%s graph=%s n=%d Δ=%d sampler=%s\n", b.ModelKind(), b.GraphKind(), g.N(), g.MaxDegree(), o.sampler)
	switch o.sampler {
	case "jvv":
		res, rounds, err := core.JVVLOCAL(in, oracle, core.JVVConfig{}, rng)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "rounds=%d locality=%d accepted=%v failures=%d\n",
			rounds, res.Locality, res.Accepted(), countTrue(res.Failed))
		fmt.Fprintln(out, render(res.Config))
	case "seq":
		res, err := core.SampleLOCAL(in, oracle, o.delta, rng)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "rounds=%d locality=%d failures=%d (TV error ≤ %g conditioned on success)\n",
			res.Rounds, res.SLOCALLocality, res.FailureCount(), o.delta)
		fmt.Fprintln(out, render(res.Config))
	default:
		return fmt.Errorf("unknown sampler %q", o.sampler)
	}
	return nil
}

// parseCondMode maps the -cond flag to a cache mode. The draws are
// bit-identical in every mode (the cache is an equivalence-preserving
// speedup), so off exists for ablation and on for instances whose LUTs
// exceed the default byte budget.
func parseCondMode(s string) (gibbs.CondMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "auto", "":
		return gibbs.CondAuto, nil
	case "on":
		return gibbs.CondOn, nil
	case "off":
		return gibbs.CondOff, nil
	default:
		return 0, fmt.Errorf("unknown -cond mode %q: the conditional-CDF cache modes are auto | on | off — try -cond auto", s)
	}
}

// parseConverge parses the -converge criterion. The only supported form
// is "rhat<THRESHOLD" (optionally "rhat<=THRESHOLD"); spaces are ignored.
func parseConverge(s string) (float64, error) {
	c := strings.ReplaceAll(strings.ToLower(s), " ", "")
	rest, ok := strings.CutPrefix(c, "rhat<")
	if !ok {
		return 0, fmt.Errorf("unrecognized -converge criterion %q (supported: 'rhat<THRESHOLD', e.g. -converge 'rhat<1.05')", s)
	}
	rest = strings.TrimPrefix(rest, "=")
	x, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return 0, fmt.Errorf("-converge %q: threshold %q is not a number", s, rest)
	}
	return x, nil
}

// runAlgo runs the -algo path: any dynamics from the internal/sampler
// registry, the batched multi-chain engine when -chains > 1, or the
// adaptive driver when a stopping criterion (-converge/-min-ess/-rhat) is
// given. All degree-based heuristics use the instance's interaction graph,
// which differs from the input graph for the matching model (a vertex
// model on the line graph).
func runAlgo(out *os.File, b *spec.Built, render func(dist.Config) string, o options) error {
	in := b.Instance
	stages := strings.Split(strings.ToLower(o.algo), ",")
	for i, name := range stages {
		stages[i] = strings.TrimSpace(name)
		if _, ok := sampler.Lookup(stages[i]); !ok {
			return fmt.Errorf("unknown algo %q (have %s)", stages[i], strings.Join(sampler.Names(), " | "))
		}
	}
	useDriver := o.converge != "" || o.minESS > 0 || o.rhat
	if len(stages) > 1 && !useDriver {
		return fmt.Errorf("-algo escalation lists need the adaptive driver: add -converge 'rhat<1.05', -min-ess, or -rhat")
	}
	if useDriver {
		// -converge/-min-ess without -chains get a useful default batch;
		// the report-only -rhat keeps its explicit-chains contract, and an
		// explicit -chains 1 is always an error (diagnostics are
		// cross-chain).
		if !o.chainsSet && o.chains == 1 && !o.rhat {
			o.chains = adaptive.DefaultChains
		}
		if o.chains < 2 && o.chains >= 0 {
			return fmt.Errorf("-rhat/-converge/-min-ess are cross-chain diagnostics and need a batched -algo (%s) with -chains ≥ 2 — try -algo %s -chains 8", strings.Join(sampler.MultiNames(), " | "), stages[0])
		}
	}
	algo := stages[0]
	delta := in.Spec.G.MaxDegree()
	fmt.Fprintf(out, "model=%s graph=%s n=%d Δ=%d algo=%s\n", b.ModelKind(), b.GraphKind(), in.N(), delta, strings.Join(stages, ","))
	sweep, err := sampler.SweepRounds(algo, in)
	if err != nil {
		return err
	}
	if useDriver {
		return runDriver(out, in, render, stages, sweep, o)
	}
	rounds := o.rounds
	if rounds <= 0 {
		rounds = max(o.sweeps, 1) * sweep
	}
	if o.chains != 1 {
		return runBatch(out, in, render, algo, rounds, o)
	}
	s, err := sampler.Create(algo, in, sampler.Options{Seed: o.seed})
	if err != nil {
		return err
	}
	if err := s.Run(rounds); err != nil {
		return err
	}
	fmt.Fprintf(out, "rounds=%d%s\n", s.Rounds(), samplerStats(s))
	fmt.Fprintln(out, render(s.State()))
	return nil
}

// runBatch runs B independent chains of the chosen dynamics in lockstep
// on its batched multi-chain engine and renders the first chain (every
// chain is an equally valid sample; the point of the batch is throughput
// per chain, reported by the BenchmarkBatch* suite).
func runBatch(out *os.File, in *gibbs.Instance, render func(dist.Config) string, algo string, rounds int, o options) error {
	s, err := sampler.Create(algo, in, sampler.Options{Chains: o.chains, Seed: o.seed})
	if err != nil {
		return err
	}
	m, ok := s.(sampler.MultiChain)
	if !ok {
		return fmt.Errorf("dynamic %q built no multi-chain engine for -chains %d", algo, o.chains)
	}
	if err := m.Run(rounds); err != nil {
		return err
	}
	fmt.Fprintf(out, "rounds=%d chains=%d%s%s\n", m.Rounds(), m.Chains(), batchStats(m), samplerStats(m))
	fmt.Fprintln(out, render(m.Chain(0)))
	return nil
}

// runDriver routes the run through the adaptive controller: advance in
// sweep-equivalents, observe the cross-chain diagnostics after every one,
// stop at the -converge/-min-ess targets (or report-only at the budget for
// bare -rhat), escalating down the -algo list on -min-rate collapse. The
// sweep budget is -sweeps, or -rounds converted at the first stage's
// sweep-equivalent rate.
func runDriver(out *os.File, in *gibbs.Instance, render func(dist.Config) string, stages []string, sweep int, o options) error {
	p := adaptive.Policy{
		Chains:     o.chains,
		BurnIn:     o.burnin,
		CheckEvery: 1,
		MinESS:     o.minESS,
	}
	if o.converge != "" {
		rhat, err := parseConverge(o.converge)
		if err != nil {
			return err
		}
		p.Rhat = rhat
	}
	p.MaxSweeps = max(o.sweeps, 1)
	if o.rounds > 0 {
		p.MaxSweeps = (o.rounds + sweep - 1) / sweep
	}
	for i, name := range stages {
		st := adaptive.Stage{Dynamic: name}
		if i < len(stages)-1 {
			st.MinRate = o.minRate
		}
		p.Stages = append(p.Stages, st)
	}
	rep, m, err := adaptive.Drive(in, o.seed, p)
	if err != nil {
		return err
	}
	for i, sr := range rep.Stages {
		fmt.Fprintf(out, "stage=%d dynamic=%s sweeps=%d rounds=%d checks=%d reason=%s\n",
			i, sr.Dynamic, sr.Sweeps, sr.Rounds, len(sr.Checks), sr.Reason)
	}
	if math.IsNaN(rep.Rhat) {
		fmt.Fprintf(out, "rhat: no checks within the %d-sweep budget (the diagnostics need ≥ 4 observations)\n", rep.Sweeps)
	} else {
		fmt.Fprintf(out, "rhat=%.4f worst-vertex=%d split-rhat=%.4f ess=%.1f ess-vertex=%d sweeps=%d stop=%s (R̂ ≈ 1 ⇔ chains converged)\n",
			rep.Rhat, rep.WorstVertex, rep.SplitRhat, rep.ESS, rep.ESSVertex, rep.Sweeps, rep.Reason)
	}
	fmt.Fprintf(out, "rounds=%d chains=%d%s%s\n", m.Rounds(), m.Chains(), batchStats(m), samplerStats(m))
	fmt.Fprintln(out, render(m.Chain(0)))
	return nil
}

// batchStats surfaces the chromatic engine's schedule width when the
// batched dynamic has one (the other batched engines are scheduleless).
func batchStats(m sampler.MultiChain) string {
	if b, ok := m.(interface{ Classes() [][]int }); ok {
		return fmt.Sprintf(" stages/sweep=%d", len(b.Classes()))
	}
	return ""
}

// samplerStats surfaces the optional per-dynamic counters through the
// uniform interface.
func samplerStats(s sampler.Sampler) string {
	var b strings.Builder
	if u, ok := s.(interface{ Updates() int64 }); ok {
		fmt.Fprintf(&b, " updates=%d", u.Updates())
	}
	if a, ok := s.(interface{ Accepts() int64 }); ok {
		fmt.Fprintf(&b, " accepts=%d", a.Accepts())
	}
	return b.String()
}

// renderFor picks the configuration renderer from the built instance:
// model-specific views for the named models, a generic value listing for
// explicit-factor documents.
func renderFor(b *spec.Built) func(dist.Config) string {
	switch {
	case b.Matching != nil:
		mm := b.Matching
		return func(c dist.Config) string {
			var sb strings.Builder
			sb.WriteString("matched edges:")
			for i, x := range c {
				if x == model.In {
					e := mm.EdgeList[i]
					fmt.Fprintf(&sb, " (%d,%d)", e.U, e.V)
				}
			}
			return sb.String()
		}
	case b.HyperMatching != nil:
		hm := b.HyperMatching
		return func(c dist.Config) string {
			var sb strings.Builder
			sb.WriteString("matched hyperedges:")
			for i, x := range c {
				if x == model.In {
					fmt.Fprintf(&sb, " %v", hm.Base.Edge(i))
				}
			}
			return sb.String()
		}
	}
	switch b.ModelKind() {
	case "hardcore":
		return renderBinary("occupied")
	case "ising", "twospin":
		return renderBinary("spin-up")
	case "coloring", "listcoloring":
		return renderColors("colors")
	default: // explicit-factors documents
		return renderColors("values")
	}
}

// buildOracle returns the inference oracle the jvv/seq samplers need,
// enforcing the uniqueness-regime preconditions of their analyses. The
// oracles are model-specific, so explicit-factor documents are restricted
// to the -algo dynamics.
func buildOracle(b *spec.Built, o options) (*core.DecayOracle, error) {
	m := b.File.Model
	if m == nil {
		return nil, fmt.Errorf("the jvv/seq samplers need a named model (their decay oracles are model-specific); explicit-factor specs run with -algo %s", strings.Join(sampler.Names(), " | "))
	}
	g := b.Input
	switch m.Kind {
	case "hardcore":
		est, err := decay.NewHardcoreSAW(g, m.Lambda)
		if err != nil {
			return nil, err
		}
		rate := model.HardcoreDecayRate(m.Lambda, g.MaxDegree())
		if rate >= 1 {
			return nil, fmt.Errorf("λ=%g is not in the uniqueness regime for Δ=%d (λc=%g): no SSM oracle available — the paper's Ω(diam) lower bound applies", m.Lambda, g.MaxDegree(), model.LambdaC(g.MaxDegree()))
		}
		return &core.DecayOracle{Est: est, Rate: rate, N: g.N()}, nil
	case "ising", "twospin":
		p := model.TwoSpinParams{Beta: m.Beta, Gamma: m.Gamma, Lambda: m.Lambda}
		if m.Kind == "ising" {
			p.Gamma = m.Beta
		}
		est, err := decay.NewTwoSpinSAW(g, p)
		if err != nil {
			return nil, err
		}
		if p.Beta == p.Gamma {
			lo, hi := model.IsingUniquenessInterval(g.MaxDegree())
			if p.Beta <= lo || p.Beta >= hi {
				return nil, fmt.Errorf("b=%g outside the uniqueness interval (%g, %g) for Δ=%d", p.Beta, lo, hi, g.MaxDegree())
			}
		}
		// Conservative rate from the distance to the interval boundary.
		return &core.DecayOracle{Est: est, Rate: 0.9, N: g.N()}, nil
	case "coloring", "listcoloring":
		est, err := decay.NewColoringEstimator(g, m.Q, m.Lists)
		if err != nil {
			return nil, err
		}
		if float64(m.Q) < model.AlphaStar()*float64(g.MaxDegree()) {
			fmt.Fprintf(os.Stderr, "lsample: warning: q=%d below α*Δ=%.2f — the GKM guarantee does not apply\n", m.Q, model.AlphaStar()*float64(g.MaxDegree()))
		}
		return &core.DecayOracle{Est: est, Rate: 0.8, N: g.N()}, nil
	case "matching":
		if b.Matching == nil {
			return nil, fmt.Errorf("matching model not constructed")
		}
		est := decay.NewMatchingEstimator(b.Matching)
		rate := model.MatchingDecayRate(m.Lambda, g.MaxDegree())
		return &core.DecayOracle{Est: est, Rate: rate, N: b.Matching.Spec.N()}, nil
	case "hypermatching":
		if b.HyperMatching == nil {
			return nil, fmt.Errorf("hypergraph matching model not constructed")
		}
		est, err := decay.NewHypergraphMatchingEstimator(b.HyperMatching)
		if err != nil {
			return nil, err
		}
		rate := model.MatchingDecayRate(m.Lambda, b.Hyper.MaxVertexDegree())
		return &core.DecayOracle{Est: est, Rate: rate, N: b.HyperMatching.Spec.N()}, nil
	default:
		return nil, fmt.Errorf("model %q has no decay oracle; run it with -algo %s", m.Kind, strings.Join(sampler.Names(), " | "))
	}
}

func renderBinary(label string) func(dist.Config) string {
	return func(c dist.Config) string {
		var b strings.Builder
		fmt.Fprintf(&b, "%s vertices:", label)
		for v, x := range c {
			if x == model.In {
				fmt.Fprintf(&b, " %d", v)
			}
		}
		return b.String()
	}
}

func renderColors(label string) func(dist.Config) string {
	return func(c dist.Config) string {
		var b strings.Builder
		b.WriteString(label + ":")
		for v, x := range c {
			fmt.Fprintf(&b, " %d:%d", v, x)
		}
		return b.String()
	}
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}
