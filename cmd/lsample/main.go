// Command lsample draws a sample from a Gibbs model on a generated graph
// using the distributed samplers of the paper: the exact local-JVV sampler
// (Theorem 4.2), the approximate sequential sampler (Theorem 3.2), or the
// Section 1.2 parallel dynamics (LubyGlauber / LocalMetropolis) run on the
// sharded in-process engine, with sequential Glauber as the baseline.
//
// Usage:
//
//	lsample -model hardcore -graph cycle -n 24 -lambda 1.0 -sampler jvv
//	lsample -model coloring -graph tree -n 40 -q 5
//	lsample -model matching -graph grid -n 16 -lambda 2
//	lsample -model hardcore -graph torus -n 16 -algo luby -rounds 200
//	lsample -model coloring -graph grid -n 10 -q 6 -algo metropolis
//	lsample -model ising -graph cycle -n 64 -beta 0.8 -algo glauber -sweeps 50
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/decay"
	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/glauber"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/psample"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lsample:", err)
		os.Exit(1)
	}
}

type options struct {
	model   string
	graph   string
	n       int
	lambda  float64
	q       int
	beta    float64
	seed    int64
	sampler string
	delta   float64
	algo    string
	rounds  int
	sweeps  int
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("lsample", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.model, "model", "hardcore", "model: hardcore | ising | coloring | matching")
	fs.StringVar(&o.graph, "graph", "cycle", "graph: cycle | path | grid | tree | torus")
	fs.IntVar(&o.n, "n", 24, "graph size parameter (vertices, or side for grid/torus)")
	fs.Float64Var(&o.lambda, "lambda", 1.0, "fugacity / activity")
	fs.IntVar(&o.q, "q", 5, "colors (coloring model)")
	fs.Float64Var(&o.beta, "beta", 0.6, "Ising edge activity")
	fs.Int64Var(&o.seed, "seed", 1, "random seed")
	fs.StringVar(&o.sampler, "sampler", "jvv", "sampler: jvv (exact) | seq (approximate)")
	fs.Float64Var(&o.delta, "delta", 0.01, "TV error for the approximate sampler")
	fs.StringVar(&o.algo, "algo", "", "parallel dynamics instead of -sampler: luby | metropolis | glauber")
	fs.IntVar(&o.rounds, "rounds", 0, "rounds for -algo luby/metropolis (0 = heuristic default)")
	fs.IntVar(&o.sweeps, "sweeps", 64, "sweeps for -algo glauber")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := buildGraph(o.graph, o.n)
	if err != nil {
		return err
	}
	in, render, mm, err := buildInstance(g, o)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(o.seed))

	if o.algo != "" {
		return runAlgo(out, in, render, o)
	}

	oracle, err := buildOracle(g, mm, o)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "model=%s graph=%s n=%d Δ=%d sampler=%s\n", o.model, o.graph, g.N(), g.MaxDegree(), o.sampler)
	switch o.sampler {
	case "jvv":
		res, rounds, err := core.JVVLOCAL(in, oracle, core.JVVConfig{}, rng)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "rounds=%d locality=%d accepted=%v failures=%d\n",
			rounds, res.Locality, res.Accepted(), countTrue(res.Failed))
		fmt.Fprintln(out, render(res.Config))
	case "seq":
		res, err := core.SampleLOCAL(in, oracle, o.delta, rng)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "rounds=%d locality=%d failures=%d (TV error ≤ %g conditioned on success)\n",
			res.Rounds, res.SLOCALLocality, res.FailureCount(), o.delta)
		fmt.Fprintln(out, render(res.Config))
	default:
		return fmt.Errorf("unknown sampler %q", o.sampler)
	}
	return nil
}

// runAlgo runs the -algo path: the parallel dynamics on the sharded
// in-process engine, or the sequential Glauber baseline. All degree-based
// heuristics use the instance's interaction graph, which differs from the
// input graph for the matching model (a vertex model on the line graph).
func runAlgo(out *os.File, in *gibbs.Instance, render func(dist.Config) string, o options) error {
	algo := strings.ToLower(o.algo)
	delta := in.Spec.G.MaxDegree()
	fmt.Fprintf(out, "model=%s graph=%s n=%d Δ=%d algo=%s\n", o.model, o.graph, in.N(), delta, algo)
	switch algo {
	case "glauber":
		rng := rand.New(rand.NewSource(o.seed))
		chain, err := glauber.New(in)
		if err != nil {
			return err
		}
		if err := chain.Run(o.sweeps*max(1, in.N()), rng); err != nil {
			return err
		}
		fmt.Fprintf(out, "sweeps=%d updates=%d\n", o.sweeps, chain.Steps())
		fmt.Fprintln(out, render(chain.State()))
		return nil
	case "luby", "metropolis":
		rules, err := psample.NewRules(in)
		if err != nil {
			return err
		}
		rounds := o.rounds
		if algo == "luby" {
			if rounds <= 0 {
				// ~16 sweep-equivalents: a vertex is selected with
				// probability ≥ 1/(Δ+1) per round.
				rounds = 16 * (delta + 1)
			}
			s, err := psample.NewLubyGlauber(rules, o.seed)
			if err != nil {
				return err
			}
			if err := s.Run(rounds); err != nil {
				return err
			}
			fmt.Fprintf(out, "rounds=%d updates=%d\n", s.Rounds(), s.Updates())
			fmt.Fprintln(out, render(s.State()))
			return nil
		}
		if rounds <= 0 {
			rounds = 200
		}
		s, err := psample.NewLocalMetropolis(rules, o.seed)
		if err != nil {
			return err
		}
		if err := s.Run(rounds); err != nil {
			return err
		}
		fmt.Fprintf(out, "rounds=%d accepts=%d\n", s.Rounds(), s.Accepts())
		fmt.Fprintln(out, render(s.State()))
		return nil
	default:
		return fmt.Errorf("unknown algo %q", o.algo)
	}
}

func buildGraph(kind string, n int) (*graph.Graph, error) {
	switch strings.ToLower(kind) {
	case "cycle":
		return graph.Cycle(n), nil
	case "path":
		return graph.Path(n), nil
	case "grid":
		return graph.Grid(n, n), nil
	case "torus":
		return graph.Torus(n, n), nil
	case "tree":
		// Complete binary tree with ~n vertices.
		depth := 1
		for (1<<(depth+2))-1 <= n {
			depth++
		}
		return graph.CompleteTree(2, depth), nil
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}

// buildInstance returns the model instance and a renderer for sampled
// configurations; for the matching model it also returns the constructed
// MatchingModel so the oracle is derived from the same object. Regime
// checks that only concern the decay-oracle samplers live in buildOracle.
func buildInstance(g *graph.Graph, o options) (*gibbs.Instance, func(dist.Config) string, *model.MatchingModel, error) {
	switch strings.ToLower(o.model) {
	case "hardcore":
		spec, err := model.Hardcore(g, o.lambda)
		if err != nil {
			return nil, nil, nil, err
		}
		in, err := gibbs.NewInstance(spec, nil)
		if err != nil {
			return nil, nil, nil, err
		}
		return in, renderBinary("occupied"), nil, nil
	case "ising":
		p := model.TwoSpinParams{Beta: o.beta, Gamma: o.beta, Lambda: o.lambda}
		spec, err := model.TwoSpin(g, p)
		if err != nil {
			return nil, nil, nil, err
		}
		in, err := gibbs.NewInstance(spec, nil)
		if err != nil {
			return nil, nil, nil, err
		}
		return in, renderBinary("spin-up"), nil, nil
	case "coloring":
		spec, err := model.Coloring(g, o.q)
		if err != nil {
			return nil, nil, nil, err
		}
		in, err := gibbs.NewInstance(spec, nil)
		if err != nil {
			return nil, nil, nil, err
		}
		return in, renderColors, nil, nil
	case "matching":
		m, err := model.Matching(g, o.lambda)
		if err != nil {
			return nil, nil, nil, err
		}
		in, err := gibbs.NewInstance(m.Spec, nil)
		if err != nil {
			return nil, nil, nil, err
		}
		render := func(c dist.Config) string {
			var b strings.Builder
			b.WriteString("matched edges:")
			for i, x := range c {
				if x == model.In {
					e := m.EdgeList[i]
					fmt.Fprintf(&b, " (%d,%d)", e.U, e.V)
				}
			}
			return b.String()
		}
		return in, render, m, nil
	default:
		return nil, nil, nil, fmt.Errorf("unknown model %q", o.model)
	}
}

// buildOracle returns the inference oracle the jvv/seq samplers need,
// enforcing the uniqueness-regime preconditions of their analyses. mm is
// the matching model built by buildInstance (nil for other models).
func buildOracle(g *graph.Graph, mm *model.MatchingModel, o options) (*core.DecayOracle, error) {
	switch strings.ToLower(o.model) {
	case "hardcore":
		est, err := decay.NewHardcoreSAW(g, o.lambda)
		if err != nil {
			return nil, err
		}
		rate := model.HardcoreDecayRate(o.lambda, g.MaxDegree())
		if rate >= 1 {
			return nil, fmt.Errorf("λ=%g is not in the uniqueness regime for Δ=%d (λc=%g): no SSM oracle available — the paper's Ω(diam) lower bound applies", o.lambda, g.MaxDegree(), model.LambdaC(g.MaxDegree()))
		}
		return &core.DecayOracle{Est: est, Rate: rate, N: g.N()}, nil
	case "ising":
		p := model.TwoSpinParams{Beta: o.beta, Gamma: o.beta, Lambda: o.lambda}
		est, err := decay.NewTwoSpinSAW(g, p)
		if err != nil {
			return nil, err
		}
		lo, hi := model.IsingUniquenessInterval(g.MaxDegree())
		if o.beta <= lo || o.beta >= hi {
			return nil, fmt.Errorf("b=%g outside the uniqueness interval (%g, %g) for Δ=%d", o.beta, lo, hi, g.MaxDegree())
		}
		// Conservative rate from the distance to the interval boundary.
		return &core.DecayOracle{Est: est, Rate: 0.9, N: g.N()}, nil
	case "coloring":
		est, err := decay.NewColoringEstimator(g, o.q, nil)
		if err != nil {
			return nil, err
		}
		if float64(o.q) < model.AlphaStar()*float64(g.MaxDegree()) {
			fmt.Fprintf(os.Stderr, "lsample: warning: q=%d below α*Δ=%.2f — the GKM guarantee does not apply\n", o.q, model.AlphaStar()*float64(g.MaxDegree()))
		}
		return &core.DecayOracle{Est: est, Rate: 0.8, N: g.N()}, nil
	case "matching":
		if mm == nil {
			return nil, fmt.Errorf("matching model not constructed")
		}
		est := decay.NewMatchingEstimator(mm)
		rate := model.MatchingDecayRate(o.lambda, g.MaxDegree())
		return &core.DecayOracle{Est: est, Rate: rate, N: mm.Spec.N()}, nil
	default:
		return nil, fmt.Errorf("unknown model %q", o.model)
	}
}

func renderBinary(label string) func(dist.Config) string {
	return func(c dist.Config) string {
		var b strings.Builder
		fmt.Fprintf(&b, "%s vertices:", label)
		for v, x := range c {
			if x == model.In {
				fmt.Fprintf(&b, " %d", v)
			}
		}
		return b.String()
	}
}

func renderColors(c dist.Config) string {
	var b strings.Builder
	b.WriteString("colors:")
	for v, x := range c {
		fmt.Fprintf(&b, " %d:%d", v, x)
	}
	return b.String()
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}
