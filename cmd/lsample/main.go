// Command lsample draws a sample from a Gibbs model on a generated graph
// using the distributed samplers of the paper: the exact local-JVV sampler
// (Theorem 4.2) or the approximate sequential sampler (Theorem 3.2).
//
// Usage:
//
//	lsample -model hardcore -graph cycle -n 24 -lambda 1.0 -sampler jvv
//	lsample -model coloring -graph tree -n 40 -q 5
//	lsample -model matching -graph grid -n 16 -lambda 2
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/decay"
	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lsample:", err)
		os.Exit(1)
	}
}

type options struct {
	model   string
	graph   string
	n       int
	lambda  float64
	q       int
	beta    float64
	seed    int64
	sampler string
	delta   float64
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("lsample", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.model, "model", "hardcore", "model: hardcore | ising | coloring | matching")
	fs.StringVar(&o.graph, "graph", "cycle", "graph: cycle | path | grid | tree | torus")
	fs.IntVar(&o.n, "n", 24, "graph size parameter (vertices, or side for grid/torus)")
	fs.Float64Var(&o.lambda, "lambda", 1.0, "fugacity / activity")
	fs.IntVar(&o.q, "q", 5, "colors (coloring model)")
	fs.Float64Var(&o.beta, "beta", 0.6, "Ising edge activity")
	fs.Int64Var(&o.seed, "seed", 1, "random seed")
	fs.StringVar(&o.sampler, "sampler", "jvv", "sampler: jvv (exact) | seq (approximate)")
	fs.Float64Var(&o.delta, "delta", 0.01, "TV error for the approximate sampler")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := buildGraph(o.graph, o.n)
	if err != nil {
		return err
	}
	in, oracle, render, err := buildModel(g, o)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(o.seed))
	fmt.Fprintf(out, "model=%s graph=%s n=%d Δ=%d sampler=%s\n", o.model, o.graph, g.N(), g.MaxDegree(), o.sampler)

	switch o.sampler {
	case "jvv":
		res, rounds, err := core.JVVLOCAL(in, oracle, core.JVVConfig{}, rng)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "rounds=%d locality=%d accepted=%v failures=%d\n",
			rounds, res.Locality, res.Accepted(), countTrue(res.Failed))
		fmt.Fprintln(out, render(res.Config))
	case "seq":
		res, err := core.SampleLOCAL(in, oracle, o.delta, rng)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "rounds=%d locality=%d failures=%d (TV error ≤ %g conditioned on success)\n",
			res.Rounds, res.SLOCALLocality, res.FailureCount(), o.delta)
		fmt.Fprintln(out, render(res.Config))
	default:
		return fmt.Errorf("unknown sampler %q", o.sampler)
	}
	return nil
}

func buildGraph(kind string, n int) (*graph.Graph, error) {
	switch strings.ToLower(kind) {
	case "cycle":
		return graph.Cycle(n), nil
	case "path":
		return graph.Path(n), nil
	case "grid":
		return graph.Grid(n, n), nil
	case "torus":
		return graph.Torus(n, n), nil
	case "tree":
		// Complete binary tree with ~n vertices.
		depth := 1
		for (1<<(depth+2))-1 <= n {
			depth++
		}
		return graph.CompleteTree(2, depth), nil
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}

// buildModel returns the instance, an inference oracle appropriate for the
// model, and a renderer for sampled configurations.
func buildModel(g *graph.Graph, o options) (*gibbs.Instance, *core.DecayOracle, func(dist.Config) string, error) {
	switch strings.ToLower(o.model) {
	case "hardcore":
		spec, err := model.Hardcore(g, o.lambda)
		if err != nil {
			return nil, nil, nil, err
		}
		in, err := gibbs.NewInstance(spec, nil)
		if err != nil {
			return nil, nil, nil, err
		}
		est, err := decay.NewHardcoreSAW(g, o.lambda)
		if err != nil {
			return nil, nil, nil, err
		}
		rate := model.HardcoreDecayRate(o.lambda, g.MaxDegree())
		if rate >= 1 {
			return nil, nil, nil, fmt.Errorf("λ=%g is not in the uniqueness regime for Δ=%d (λc=%g): no SSM oracle available — the paper's Ω(diam) lower bound applies", o.lambda, g.MaxDegree(), model.LambdaC(g.MaxDegree()))
		}
		return in, &core.DecayOracle{Est: est, Rate: rate, N: g.N()}, renderBinary("occupied"), nil
	case "ising":
		p := model.TwoSpinParams{Beta: o.beta, Gamma: o.beta, Lambda: o.lambda}
		spec, err := model.TwoSpin(g, p)
		if err != nil {
			return nil, nil, nil, err
		}
		in, err := gibbs.NewInstance(spec, nil)
		if err != nil {
			return nil, nil, nil, err
		}
		est, err := decay.NewTwoSpinSAW(g, p)
		if err != nil {
			return nil, nil, nil, err
		}
		lo, hi := model.IsingUniquenessInterval(g.MaxDegree())
		if o.beta <= lo || o.beta >= hi {
			return nil, nil, nil, fmt.Errorf("b=%g outside the uniqueness interval (%g, %g) for Δ=%d", o.beta, lo, hi, g.MaxDegree())
		}
		// Conservative rate from the distance to the interval boundary.
		rate := 0.9
		return in, &core.DecayOracle{Est: est, Rate: rate, N: g.N()}, renderBinary("spin-up"), nil
	case "coloring":
		spec, err := model.Coloring(g, o.q)
		if err != nil {
			return nil, nil, nil, err
		}
		in, err := gibbs.NewInstance(spec, nil)
		if err != nil {
			return nil, nil, nil, err
		}
		est, err := decay.NewColoringEstimator(g, o.q, nil)
		if err != nil {
			return nil, nil, nil, err
		}
		if float64(o.q) < model.AlphaStar()*float64(g.MaxDegree()) {
			fmt.Fprintf(os.Stderr, "lsample: warning: q=%d below α*Δ=%.2f — the GKM guarantee does not apply\n", o.q, model.AlphaStar()*float64(g.MaxDegree()))
		}
		rate := 0.8
		return in, &core.DecayOracle{Est: est, Rate: rate, N: g.N()}, renderColors, nil
	case "matching":
		m, err := model.Matching(g, o.lambda)
		if err != nil {
			return nil, nil, nil, err
		}
		in, err := gibbs.NewInstance(m.Spec, nil)
		if err != nil {
			return nil, nil, nil, err
		}
		est := decay.NewMatchingEstimator(m)
		rate := model.MatchingDecayRate(o.lambda, g.MaxDegree())
		render := func(c dist.Config) string {
			var b strings.Builder
			b.WriteString("matched edges:")
			for i, x := range c {
				if x == model.In {
					e := m.EdgeList[i]
					fmt.Fprintf(&b, " (%d,%d)", e.U, e.V)
				}
			}
			return b.String()
		}
		return in, &core.DecayOracle{Est: est, Rate: rate, N: m.Spec.N()}, render, nil
	default:
		return nil, nil, nil, fmt.Errorf("unknown model %q", o.model)
	}
}

func renderBinary(label string) func(dist.Config) string {
	return func(c dist.Config) string {
		var b strings.Builder
		fmt.Fprintf(&b, "%s vertices:", label)
		for v, x := range c {
			if x == model.In {
				fmt.Fprintf(&b, " %d", v)
			}
		}
		return b.String()
	}
}

func renderColors(c dist.Config) string {
	var b strings.Builder
	b.WriteString("colors:")
	for v, x := range c {
		fmt.Fprintf(&b, " %d:%d", v, x)
	}
	return b.String()
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}
